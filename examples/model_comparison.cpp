// Cascade-model comparison: select seeds under both IC and LT on the same
// network and cross-evaluate them. Demonstrates that the same RIS
// machinery drives both models (only the RR generator changes) and that
// seeds tuned for one model are usually — but not always — strong under
// the other.
//
// Usage: example_model_comparison [--quick]

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>

#include "subsim/algo/registry.h"
#include "subsim/benchsup/reporting.h"
#include "subsim/util/string_util.h"
#include "subsim/eval/spread_estimator.h"
#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"

namespace {

std::size_t Overlap(const std::vector<subsim::NodeId>& a,
                    const std::vector<subsim::NodeId>& b) {
  std::size_t shared = 0;
  for (subsim::NodeId v : a) {
    shared += std::find(b.begin(), b.end(), v) != b.end() ? 1 : 0;
  }
  return shared;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const subsim::NodeId n = quick ? 4000 : 20000;
  const std::uint32_t k = 20;

  std::printf("Building a %u-node network (power-law configuration) ...\n",
              n);
  subsim::Result<subsim::EdgeList> edges =
      subsim::GeneratePowerLawConfiguration(n, 2.1, n / 10, 12.0, 5);
  if (!edges.ok()) {
    std::fprintf(stderr, "error: %s\n", edges.status().ToString().c_str());
    return 1;
  }
  // WC weights: valid for IC, and sum to exactly 1 per node, so the same
  // graph is LT-feasible.
  if (const subsim::Status status = subsim::AssignWeights(
          subsim::WeightModel::kWeightedCascade, {}, &edges.value());
      !status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  subsim::Result<subsim::Graph> graph =
      subsim::BuildGraph(std::move(edges).value());
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.status().ToString().c_str());
    return 1;
  }

  const auto algorithm = subsim::MakeImAlgorithm("opim-c");
  if (!algorithm.ok()) {
    return 1;
  }

  subsim::ImOptions options;
  options.k = k;
  options.epsilon = 0.1;
  options.rng_seed = 33;

  // Seeds tuned for IC (SUBSIM generator) ...
  options.generator = subsim::GeneratorKind::kSubsimIc;
  const auto ic_result = (*algorithm)->Run(*graph, options);
  // ... and for LT (live-edge walk generator).
  options.generator = subsim::GeneratorKind::kLt;
  const auto lt_result = (*algorithm)->Run(*graph, options);
  if (!ic_result.ok() || !lt_result.ok()) {
    std::fprintf(stderr, "error: %s %s\n",
                 ic_result.status().ToString().c_str(),
                 lt_result.status().ToString().c_str());
    return 1;
  }

  // Cross-evaluate all four combinations with forward simulation.
  subsim::SpreadEstimator ic_eval(
      *graph, subsim::CascadeModel::kIndependentCascade);
  subsim::SpreadEstimator lt_eval(*graph,
                                  subsim::CascadeModel::kLinearThreshold);
  const std::uint64_t sims = quick ? 2000 : 10000;
  subsim::Rng rng(44);

  subsim::TablePrinter table(
      {"seed set", "IC spread", "LT spread", "select time"});
  table.AddRow({"IC-optimized",
                subsim::FormatDouble(
                    ic_eval.Estimate(ic_result->seeds, sims, rng).spread, 1),
                subsim::FormatDouble(
                    lt_eval.Estimate(ic_result->seeds, sims, rng).spread, 1),
                subsim::HumanSeconds(ic_result->seconds)});
  table.AddRow({"LT-optimized",
                subsim::FormatDouble(
                    ic_eval.Estimate(lt_result->seeds, sims, rng).spread, 1),
                subsim::FormatDouble(
                    lt_eval.Estimate(lt_result->seeds, sims, rng).spread, 1),
                subsim::HumanSeconds(lt_result->seconds)});

  std::printf("\nCross-model evaluation (k = %u):\n\n", k);
  table.Print(std::cout);
  std::printf("\nSeed-set overlap: %zu / %u nodes shared.\n",
              Overlap(ic_result->seeds, lt_result->seeds), k);
  return 0;
}
