// Quickstart: the five-minute tour of the subsim library.
//
//   1. generate (or load) a social graph,
//   2. assign IC propagation probabilities,
//   3. pick k seeds with OPIM-C + the SUBSIM RR-set generator
//      (the paper's "SUBSIM" configuration),
//   4. validate the seeds with forward Monte-Carlo simulation.
//
// Usage: example_quickstart [edge_list.txt]
//   With a file argument, reads a "src dst" edge list (SNAP format);
//   otherwise generates a 10k-node scale-free network.

#include <cstdio>
#include <string>

#include "subsim/algo/registry.h"
#include "subsim/eval/spread_estimator.h"
#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/graph_io.h"
#include "subsim/graph/weight_models.h"
#include "subsim/util/logging.h"

namespace {

constexpr std::uint64_t kSeed = 2020;

subsim::Result<subsim::EdgeList> LoadOrGenerate(int argc, char** argv) {
  if (argc > 1) {
    std::printf("Loading edge list from %s ...\n", argv[1]);
    return subsim::ReadEdgeListText(argv[1]);
  }
  std::printf("Generating a 10,000-node scale-free network ...\n");
  return subsim::GenerateBarabasiAlbert(10000, 4, /*undirected=*/false,
                                        kSeed);
}

}  // namespace

int main(int argc, char** argv) {
  // 1. Obtain a graph.
  subsim::Result<subsim::EdgeList> edges = LoadOrGenerate(argc, argv);
  if (!edges.ok()) {
    std::fprintf(stderr, "error: %s\n", edges.status().ToString().c_str());
    return 1;
  }

  // 2. Weighted Cascade: p(u, v) = 1 / in-degree(v).
  subsim::Status weighted = subsim::AssignWeights(
      subsim::WeightModel::kWeightedCascade, {}, &edges.value());
  if (!weighted.ok()) {
    std::fprintf(stderr, "error: %s\n", weighted.ToString().c_str());
    return 1;
  }
  subsim::Result<subsim::Graph> graph =
      subsim::BuildGraph(std::move(edges).value());
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("Graph ready: %u nodes, %llu edges.\n\n", graph->num_nodes(),
              static_cast<unsigned long long>(graph->num_edges()));

  // 3. Influence maximization: OPIM-C chassis + SUBSIM RR generation.
  const auto algorithm = subsim::MakeImAlgorithm("opim-c");
  if (!algorithm.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 algorithm.status().ToString().c_str());
    return 1;
  }
  subsim::ImOptions options;
  options.k = 10;
  options.epsilon = 0.1;
  options.rng_seed = kSeed;
  options.generator = subsim::GeneratorKind::kSubsimIc;

  const subsim::Result<subsim::ImResult> result =
      (*algorithm)->Run(*graph, options);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("Selected %zu seeds in %.3fs using %llu RR sets:\n  ",
              result->seeds.size(), result->seconds,
              static_cast<unsigned long long>(result->num_rr_sets));
  for (subsim::NodeId v : result->seeds) {
    std::printf("%u ", v);
  }
  std::printf(
      "\nCertified: influence >= %.1f, optimum <= %.1f "
      "(ratio %.3f >= 1 - 1/e - eps).\n\n",
      result->influence_lower_bound, result->optimal_upper_bound,
      result->approx_ratio);

  // 4. Independent validation by forward simulation.
  subsim::SpreadEstimator estimator(
      *graph, subsim::CascadeModel::kIndependentCascade);
  subsim::Rng rng(kSeed + 1);
  const subsim::SpreadEstimate estimate =
      estimator.Estimate(result->seeds, 10000, rng);
  std::printf(
      "Monte-Carlo validation (10k cascades): spread = %.1f +- %.1f nodes.\n",
      estimate.spread, 2.0 * estimate.std_error);
  return 0;
}
