// Viral marketing budget planning — the application the paper's
// introduction motivates: a company gives its product to k influencers and
// wants the expected adoption for each candidate budget.
//
// The example sweeps budgets, reports expected adoption and the marginal
// value of each extra seed (diminishing returns from submodularity), and
// shows how the certified bounds let a planner defend the numbers.
//
// Usage: example_viral_marketing [--quick]

#include <cstdio>
#include <cstring>
#include <iostream>

#include "subsim/algo/registry.h"
#include "subsim/benchsup/reporting.h"
#include "subsim/util/string_util.h"
#include "subsim/eval/spread_estimator.h"
#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const subsim::NodeId num_customers = quick ? 5000 : 30000;

  // A customer network: undirected friendships, heavy-tailed popularity.
  std::printf("Building a %u-customer friendship network ...\n",
              num_customers);
  subsim::Result<subsim::EdgeList> edges =
      subsim::GenerateBarabasiAlbert(num_customers, 5, /*undirected=*/true,
                                     /*seed=*/99);
  if (!edges.ok()) {
    std::fprintf(stderr, "error: %s\n", edges.status().ToString().c_str());
    return 1;
  }
  // Word-of-mouth propagation: each recommendation convinces a friend with
  // probability inversely proportional to how many friends they have.
  if (const subsim::Status status = subsim::AssignWeights(
          subsim::WeightModel::kWeightedCascade, {}, &edges.value());
      !status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  subsim::Result<subsim::Graph> graph =
      subsim::BuildGraph(std::move(edges).value());
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.status().ToString().c_str());
    return 1;
  }

  const auto algorithm = subsim::MakeImAlgorithm("opim-c");
  if (!algorithm.ok()) {
    return 1;
  }

  subsim::SpreadEstimator estimator(
      *graph, subsim::CascadeModel::kIndependentCascade);

  subsim::TablePrinter table({"budget k", "expected adopters", "per-seed",
                              "certified >=", "time"});
  for (const std::uint32_t k : {1u, 5u, 10u, 25u, 50u, 100u}) {
    subsim::ImOptions options;
    options.k = k;
    options.epsilon = 0.1;
    options.rng_seed = 7;
    options.generator = subsim::GeneratorKind::kSubsimIc;
    const subsim::Result<subsim::ImResult> result =
        (*algorithm)->Run(*graph, options);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }

    subsim::Rng rng(11);
    const double spread =
        estimator.Estimate(result->seeds, quick ? 2000 : 10000, rng).spread;
    table.AddRow({std::to_string(k), subsim::FormatDouble(spread, 1),
                  subsim::FormatDouble(spread / k, 1),
                  subsim::FormatDouble(result->influence_lower_bound, 1),
                  subsim::HumanSeconds(result->seconds)});
  }

  std::printf("\nCampaign planning table (adoption by seeding budget):\n\n");
  table.Print(std::cout);
  std::printf(
      "\nNote the diminishing per-seed return — the submodularity that\n"
      "makes the greedy (1 - 1/e)-approximation possible.\n");
  return 0;
}
