// High-influence networks: the regime the HIST algorithm was built for.
//
// When propagation probabilities are high (viral products, breaking news),
// a single reverse-reachable set can engulf a large fraction of the graph,
// and classic RIS solvers grind. This example dials the influence level up
// (the paper's WC-variant theta knob), then shows HIST's hit-and-stop
// truncation collapsing the average RR-set size and the running time while
// the seed quality stays put.
//
// Usage: example_high_influence [--quick]

#include <cstdio>
#include <cstring>
#include <iostream>

#include "subsim/algo/registry.h"
#include "subsim/benchsup/reporting.h"
#include "subsim/util/string_util.h"
#include "subsim/eval/spread_estimator.h"
#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const subsim::NodeId n = quick ? 5000 : 20000;
  const std::uint32_t k = 50;
  const double theta = 3.0;  // WC-variant influence level

  std::printf(
      "Building a %u-node network with amplified propagation "
      "(theta = %.1f) ...\n",
      n, theta);
  subsim::Result<subsim::EdgeList> edges = subsim::GenerateBarabasiAlbert(
      n, 3, /*undirected=*/true, /*seed=*/123);
  if (!edges.ok()) {
    std::fprintf(stderr, "error: %s\n", edges.status().ToString().c_str());
    return 1;
  }
  subsim::WeightModelParams params;
  params.wc_variant_theta = theta;
  if (const subsim::Status status = subsim::AssignWeights(
          subsim::WeightModel::kWcVariant, params, &edges.value());
      !status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  subsim::Result<subsim::Graph> graph =
      subsim::BuildGraph(std::move(edges).value());
  if (!graph.ok()) {
    std::fprintf(stderr, "error: %s\n", graph.status().ToString().c_str());
    return 1;
  }

  subsim::SpreadEstimator estimator(
      *graph, subsim::CascadeModel::kIndependentCascade);

  subsim::TablePrinter table({"algorithm", "time", "RR sets", "avg RR size",
                              "sentinels", "MC spread"});
  struct Config {
    const char* label;
    const char* algorithm;
    subsim::GeneratorKind generator;
  };
  const Config configs[] = {
      {"OPIM-C", "opim-c", subsim::GeneratorKind::kVanillaIc},
      {"SUBSIM", "opim-c", subsim::GeneratorKind::kSubsimIc},
      {"HIST", "hist", subsim::GeneratorKind::kVanillaIc},
      {"HIST+SUBSIM", "hist", subsim::GeneratorKind::kSubsimIc},
  };

  for (const Config& config : configs) {
    const auto algorithm = subsim::MakeImAlgorithm(config.algorithm);
    if (!algorithm.ok()) {
      return 1;
    }
    subsim::ImOptions options;
    options.k = k;
    options.epsilon = 0.1;
    options.rng_seed = 17;
    options.generator = config.generator;
    const subsim::Result<subsim::ImResult> result =
        (*algorithm)->Run(*graph, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", config.label,
                   result.status().ToString().c_str());
      return 1;
    }
    subsim::Rng rng(18);
    const double spread =
        estimator.Estimate(result->seeds, quick ? 1000 : 5000, rng).spread;
    table.AddRow(
        {config.label, subsim::HumanSeconds(result->seconds),
         std::to_string(result->num_rr_sets),
         subsim::FormatDouble(result->average_rr_size(), 1),
         result->sentinel_size > 0 ? std::to_string(result->sentinel_size)
                                   : std::string("-"),
         subsim::FormatDouble(spread, 1)});
  }

  std::printf("\nHigh-influence comparison (k = %u):\n\n", k);
  table.Print(std::cout);
  std::printf(
      "\nHIST's sentinel set lets RR generation stop at first hit — watch\n"
      "the avg RR size column — while the Monte-Carlo spread stays level.\n");
  return 0;
}
