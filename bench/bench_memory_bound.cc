// Memory-bounded scale: what the delta-varint arena and the HLL coverage
// sketches actually buy, measured on the calibrated WC stand-ins.
//
// Full mode sweeps the RR-size ladder and prints, per rung: raw vs
// encoded arena bytes, the compression ratio, exact vs sketch-guided
// greedy coverage, and the number of exact refinements the error-adaptive
// tie-breaker needed.
//
// `--smoke` is the CI gate (non-zero exit on failure):
//   - the two encodings hold the identical logical sample stream;
//   - compression ratio >= 3x on the dense-WC rung (the delta gaps on a
//     calibrated graph fit one varint byte, so anything under ~3.5x means
//     the encoder regressed);
//   - sketch-guided greedy coverage within 5% of exact greedy — far
//     looser than the (eps, delta) the refinement targets, so it fails
//     only when refinement stops working;
//   - with --metrics-json, the run exports the `rr.arena_bytes` and
//     `coverage.hll_bytes` gauges in the standard schema.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "subsim/benchsup/reporting.h"
#include "subsim/coverage/hll_sketch.h"
#include "subsim/coverage/max_coverage.h"
#include "subsim/rrset/parallel_fill.h"
#include "subsim/rrset/rr_collection.h"
#include "subsim/rrset/rr_encoding.h"

namespace {

struct EncodedPair {
  subsim::RrCollection raw;
  subsim::RrCollection delta;
};

/// Fills `count` RR sets from the same stream into a raw and a
/// delta-varint collection; the streams are identical by construction, so
/// any logical divergence is a decode bug.
subsim::Result<EncodedPair> FillBoth(const subsim::Graph& graph,
                                     std::uint64_t seed, std::size_t count,
                                     subsim_bench::BenchObs* obs) {
  EncodedPair pair{
      subsim::RrCollection(graph.num_nodes(), subsim::RrEncoding::kRaw),
      subsim::RrCollection(graph.num_nodes(),
                           subsim::RrEncoding::kDeltaVarint)};
  for (subsim::RrCollection* out : {&pair.raw, &pair.delta}) {
    subsim::RngStream rng = subsim::MakeRngStream(seed, 1);
    subsim::FillRequest request;
    request.kind = subsim::GeneratorKind::kSubsimIc;
    request.graph = &graph;
    request.rng = &rng;
    request.count = count;
    request.obs = obs->Context();
    if (const subsim::Status status = subsim::FillCollection(request, out);
        !status.ok()) {
      return status;
    }
  }
  return pair;
}

bool LogicallyIdentical(const subsim::RrCollection& raw,
                        const subsim::RrCollection& delta) {
  if (raw.num_sets() != delta.num_sets() ||
      raw.total_nodes() != delta.total_nodes()) {
    return false;
  }
  // The inverted index is the seed-determining structure; it must match
  // row for row. (Set bodies differ only in order: delta stores sorted.)
  for (subsim::NodeId v = 0; v < raw.num_graph_nodes(); ++v) {
    const auto a = raw.SetsContaining(v);
    const auto b = delta.SetsContaining(v);
    if (a.size() != b.size() || !std::equal(a.begin(), a.end(), b.begin())) {
      return false;
    }
  }
  return true;
}

struct RungResult {
  double ratio = 0.0;
  double coverage_fraction = 0.0;  // approx / exact greedy coverage
  std::uint64_t raw_bytes = 0;
  std::uint64_t delta_bytes = 0;
  std::uint64_t exact_coverage = 0;
  std::uint64_t approx_coverage = 0;
  bool identical = false;
};

subsim::Result<RungResult> RunRung(const subsim::Graph& graph,
                                   std::uint64_t seed, std::size_t count,
                                   std::uint32_t k,
                                   std::uint32_t hll_precision,
                                   subsim_bench::BenchObs* obs) {
  auto pair = FillBoth(graph, seed, count, obs);
  if (!pair.ok()) {
    return pair.status();
  }
  RungResult result;
  result.raw_bytes = pair->raw.arena_bytes();
  result.delta_bytes = pair->delta.arena_bytes();
  result.ratio = result.delta_bytes == 0
                     ? 0.0
                     : static_cast<double>(result.raw_bytes) /
                           static_cast<double>(result.delta_bytes);
  result.identical = LogicallyIdentical(pair->raw, pair->delta);

  subsim::CoverageGreedyOptions exact_options;
  exact_options.k = k;
  const subsim::CoverageGreedyResult exact =
      subsim::RunCoverageGreedy(pair->delta, exact_options);
  subsim::CoverageGreedyOptions approx_options = exact_options;
  approx_options.approx_coverage = true;
  approx_options.hll_precision = hll_precision;
  approx_options.metrics = obs->Context().metrics;
  const subsim::CoverageGreedyResult approx =
      subsim::RunCoverageGreedy(pair->delta, approx_options);
  result.exact_coverage = exact.total_coverage();
  result.approx_coverage = approx.total_coverage();
  result.coverage_fraction =
      exact.total_coverage() == 0
          ? 1.0
          : static_cast<double>(approx.total_coverage()) /
                static_cast<double>(exact.total_coverage());
  return result;
}

int RunSmoke(const subsim::ExperimentArgs& args) {
  subsim_bench::BenchObs obs(args);
  // Dense rung: n ~= 5000 with RR sets averaging ~400 nodes, so the
  // sorted gaps almost all fit one varint byte.
  auto calibrated = subsim_bench::BuildCalibrated(
      "pokec-s", /*scale=*/0.05, args.seed, subsim::WeightModel::kWcVariant,
      /*target_avg_rr_size=*/400.0);
  if (!calibrated.ok()) {
    std::fprintf(stderr, "calibration: %s\n",
                 calibrated.status().ToString().c_str());
    return 1;
  }
  std::printf("smoke graph: n=%u avg_rr=%.0f (theta=%.4g)\n",
              calibrated->graph.num_nodes(),
              calibrated->achieved_avg_rr_size, calibrated->parameter);

  const std::uint32_t precision = 8;
  auto rung = RunRung(calibrated->graph, args.seed, /*count=*/4000,
                      /*k=*/50, precision, &obs);
  if (!rung.ok()) {
    std::fprintf(stderr, "%s\n", rung.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "arena: raw %llu B, delta %llu B, ratio %.2fx (bar: 3x)\n"
      "coverage: exact %llu, hll(p=%u, rse=%.1f%%) %llu -> %.2f%% "
      "(bar: 95%%)\n",
      static_cast<unsigned long long>(rung->raw_bytes),
      static_cast<unsigned long long>(rung->delta_bytes), rung->ratio,
      static_cast<unsigned long long>(rung->exact_coverage), precision,
      100.0 * subsim::HllRelativeStdError(precision),
      static_cast<unsigned long long>(rung->approx_coverage),
      100.0 * rung->coverage_fraction);

  if (!obs.Write()) {
    return 1;
  }
  bool ok = true;
  if (!rung->identical) {
    std::fprintf(stderr, "FAIL: encodings disagree on the sample stream\n");
    ok = false;
  }
  if (rung->ratio < 3.0) {
    std::fprintf(stderr, "FAIL: compression ratio %.2fx < 3x\n", rung->ratio);
    ok = false;
  }
  if (rung->coverage_fraction < 0.95) {
    std::fprintf(stderr, "FAIL: sketch coverage %.2f%% of exact < 95%%\n",
                 100.0 * rung->coverage_fraction);
    ok = false;
  }
  if (ok) {
    std::printf("ok: encoded stream identical, ratio and sketch quality "
                "within bars\n");
  }
  return ok ? 0 : 1;
}

int RunFull(const subsim::ExperimentArgs& args) {
  subsim_bench::BenchObs obs(args);
  subsim::TablePrinter table({"avg_rr", "raw MB", "delta MB", "ratio",
                              "exact cov", "hll cov", "quality",
                              "identical"});
  for (const double target : subsim_bench::RrSizeLadder(args.quick)) {
    auto calibrated = subsim_bench::BuildCalibrated(
        "pokec-s", args.scale, args.seed, subsim::WeightModel::kWcVariant,
        target);
    if (!calibrated.ok()) {
      std::fprintf(stderr, "calibration(%g): %s\n", target,
                   calibrated.status().ToString().c_str());
      return 1;
    }
    const std::size_t count = args.quick ? 4000 : 20000;
    auto rung = RunRung(calibrated->graph, args.seed, count, /*k=*/100,
                        /*hll_precision=*/10, &obs);
    if (!rung.ok()) {
      std::fprintf(stderr, "%s\n", rung.status().ToString().c_str());
      return 1;
    }
    table.AddRow({subsim::FormatDouble(calibrated->achieved_avg_rr_size, 0),
                  subsim::FormatDouble(rung->raw_bytes / 1048576.0, 2),
                  subsim::FormatDouble(rung->delta_bytes / 1048576.0, 2),
                  subsim::FormatDouble(rung->ratio, 2),
                  std::to_string(rung->exact_coverage),
                  std::to_string(rung->approx_coverage),
                  subsim::FormatDouble(rung->coverage_fraction, 4),
                  rung->identical ? "yes" : "NO"});
  }
  table.Print(std::cout);
  return obs.Write() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  const auto args = subsim::ExperimentArgs::Parse(
      static_cast<int>(rest.size()), rest.data(), /*default_scale=*/0.25);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  return smoke ? RunSmoke(*args) : RunFull(*args);
}
