// Figure 4: running time vs k in the high-influence WC-variant setting —
// HIST, HIST+SUBSIM, and OPIM-C.
//
// Defaults sweep k up to 500; the paper goes to 2000, which is feasible
// here with --scale<=0.1 (the OPIM-C baseline alone needs multi-GB RR
// storage at k=2000 in the high-influence setting — the very scalability
// wall HIST removes).
// Paper shape to reproduce: HIST at least an order of magnitude faster
// than OPIM-C, the gap widening with k (a larger budget lets phase 1 pick
// a more aggressive sentinel set); HIST+SUBSIM adds up to another order.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "subsim/algo/registry.h"
#include "subsim/benchsup/reporting.h"
#include "subsim/util/string_util.h"

int main(int argc, char** argv) {
  const auto args = subsim::ExperimentArgs::Parse(argc, argv, 0.12);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  const double target = subsim_bench::HighInfluenceTarget(args->quick);
  const std::vector<std::uint32_t> k_values =
      args->quick
          ? std::vector<std::uint32_t>{10, 100}
          : std::vector<std::uint32_t>{1, 10, 50, 100, 200, 500};

  std::printf(
      "Figure 4: time vs k, WC variant @ avg RR size ~%.0f (seconds)\n\n",
      target);
  for (const std::string& dataset : subsim::SelectDatasets(*args)) {
    const auto calibrated = subsim_bench::BuildCalibrated(
        dataset, args->scale, args->seed, subsim::WeightModel::kWcVariant,
        target);
    if (!calibrated.ok()) {
      std::fprintf(stderr, "%s: %s\n", dataset.c_str(),
                   calibrated.status().ToString().c_str());
      return 1;
    }

    subsim::TablePrinter table({"k", "OPIM-C", "HIST", "HIST+SUBSIM",
                                "HIST vs OPIM-C", "sentinel b"});
    for (const std::uint32_t k : k_values) {
      if (k >= calibrated->graph.num_nodes()) {
        continue;
      }
      subsim::ImOptions options;
      options.k = k;
      options.epsilon = 0.1;
      options.rng_seed = args->seed;

      const auto opim = subsim::MakeImAlgorithm("opim-c");
      const auto hist = subsim::MakeImAlgorithm("hist");
      if (!opim.ok() || !hist.ok()) {
        return 1;
      }
      const auto opim_result = (*opim)->Run(calibrated->graph, options);
      const auto hist_result = (*hist)->Run(calibrated->graph, options);
      options.generator = subsim::GeneratorKind::kSubsimIc;
      const auto hist_subsim_result =
          (*hist)->Run(calibrated->graph, options);
      if (!opim_result.ok() || !hist_result.ok() ||
          !hist_subsim_result.ok()) {
        std::fprintf(stderr, "%s k=%u: run failed\n", dataset.c_str(), k);
        return 1;
      }

      table.AddRow({std::to_string(k),
                    subsim::FormatDouble(opim_result->seconds, 3),
                    subsim::FormatDouble(hist_result->seconds, 3),
                    subsim::FormatDouble(hist_subsim_result->seconds, 3),
                    subsim::FormatSpeedup(opim_result->seconds,
                                          hist_result->seconds),
                    std::to_string(hist_result->sentinel_size)});
    }
    std::printf("--- %s (theta = %.2f) ---\n", dataset.c_str(),
                calibrated->parameter);
    table.Print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper): HIST's advantage over OPIM-C grows with k;\n"
      "HIST+SUBSIM <= HIST <= OPIM-C at every k.\n");
  return 0;
}
