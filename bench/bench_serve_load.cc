// Load generator for the HTTP serving stack — the serving subsystem's
// acceptance bench. Runs an in-process `HttpServer` + `ServeApp` +
// `QueryEngine` on an ephemeral port and drives it through `HttpClient`
// (tests and benches may not touch raw sockets) in four phases:
//
//   1. closed-loop: N clients, each issuing its next request as soon as
//      the previous answer lands (classic throughput probe). Asserts a
//      p99 latency bar on the warm steady state.
//   2. open-loop: requests dispatched on a fixed arrival schedule
//      regardless of completions (the arrival pattern that actually
//      exposes queueing). Same p99 bar, measured including queue time.
//   3. coalescing: K identical cold queries launched together must
//      generate ~one cold run's worth of RR sets, not K of them.
//   4. overload + degradation: a deliberately tiny server (1 worker, 1
//      queue slot) under a burst must shed with 429 + Retry-After within
//      the expected ceiling, and a 1 ms `deadline_ms` query must come
//      back degraded with the achieved bound annotated (or be shed).
//
// Any violated assertion exits non-zero, so CI can run this under
// `--smoke` (smaller counts, same checks) as a regression gate.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"
#include "subsim/net/http_client.h"
#include "subsim/net/http_server.h"
#include "subsim/net/serve_app.h"
#include "subsim/serve/graph_registry.h"
#include "subsim/serve/query.h"
#include "subsim/serve/query_engine.h"

namespace {

using Clock = std::chrono::steady_clock;

int g_failures = 0;

void Check(bool ok, const char* what) {
  std::printf("%-58s %s\n", what, ok ? "PASS" : "FAIL");
  if (!ok) {
    ++g_failures;
  }
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const std::size_t index = std::min(
      values.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(values.size())));
  return values[index];
}

/// Pulls `"name":<number>` out of the /metricsz JSON; 0 when absent.
double ScrapeNumber(const std::string& json, const std::string& name) {
  const std::string needle = "\"" + name + "\":";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) {
    return 0.0;
  }
  return std::strtod(json.c_str() + at + needle.size(), nullptr);
}

subsim::Result<subsim::Graph> BuildBenchGraph() {
  auto list = subsim::GenerateBarabasiAlbert(2000, 4, false, 23);
  if (!list.ok()) {
    return list.status();
  }
  if (const subsim::Status status = subsim::AssignWeights(
          subsim::WeightModel::kWeightedCascade, {}, &list.value());
      !status.ok()) {
    return status;
  }
  return subsim::BuildGraph(std::move(list).value());
}

std::string QueryLine(std::uint32_t k, std::uint64_t seed, double eps) {
  return "graph=bench algo=opim-c k=" + std::to_string(k) +
         " eps=" + std::to_string(eps) + " seed=" + std::to_string(seed) +
         " generator=subsim";
}

/// One timed POST; returns latency in milliseconds, records failures.
double TimedPost(subsim::HttpClient* client, const std::string& body,
                 std::atomic<int>* errors) {
  const auto start = Clock::now();
  const auto response = client->Post("/v1/select_seeds", body);
  const double ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();
  if (!response.ok() || response->status_code != 200) {
    errors->fetch_add(1);
  }
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    }
  }
  const int kClients = smoke ? 2 : 4;
  const int kRequestsPerClient = smoke ? 6 : 25;
  const int kOpenLoopRequests = smoke ? 12 : 60;
  const double kOpenLoopIntervalMs = smoke ? 20.0 : 10.0;
  const int kCoalesceFanout = smoke ? 4 : 8;
  const int kBurst = 8;
  // Generous on purpose: the bar catches order-of-magnitude regressions
  // (a lost TCP_NODELAY, an accidental cold run per request), not CI
  // scheduler jitter.
  const double kP99BarMs = 2000.0;

  auto graph = BuildBenchGraph();
  if (!graph.ok()) {
    std::fprintf(stderr, "graph build failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  subsim::GraphRegistry registry;
  if (!registry.Register("bench", std::move(graph).value()).ok()) {
    return 1;
  }
  subsim::QueryEngineOptions engine_options;
  engine_options.num_workers = 4;
  subsim::QueryEngine engine(&registry, engine_options);
  subsim::ServeApp app(&engine);
  subsim::HttpServer::Options server_options;
  server_options.num_workers = 4;
  server_options.metrics = &engine.metrics();
  subsim::HttpServer server(
      [&app](const subsim::HttpRequest& request,
             const subsim::HttpRequestContext& context) {
        return app.Handle(request, context);
      },
      server_options);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    return 1;
  }
  const std::uint16_t port = server.port();
  std::printf("bench_serve_load: port=%u smoke=%d\n", port, smoke ? 1 : 0);

  // Warm the cache so the latency phases measure serving, not sampling.
  {
    subsim::HttpClient client("127.0.0.1", port);
    for (std::uint32_t k = 2; k <= 10; k += 2) {
      (void)client.Post("/v1/select_seeds", QueryLine(k, 1, 0.3));
    }
  }

  // --- Phase 1: closed loop ------------------------------------------
  std::vector<double> closed_latencies;
  {
    std::atomic<int> errors{0};
    std::vector<std::vector<double>> per_client(kClients);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        subsim::HttpClient client("127.0.0.1", port);
        for (int i = 0; i < kRequestsPerClient; ++i) {
          const std::uint32_t k = 2 + 2 * static_cast<std::uint32_t>(
                                          (c + i) % 5);  // warm mix
          per_client[c].push_back(
              TimedPost(&client, QueryLine(k, 1, 0.3), &errors));
        }
      });
    }
    for (std::thread& t : clients) {
      t.join();
    }
    for (const auto& v : per_client) {
      closed_latencies.insert(closed_latencies.end(), v.begin(), v.end());
    }
    const double p50 = Quantile(closed_latencies, 0.5);
    const double p99 = Quantile(closed_latencies, 0.99);
    std::printf("closed-loop: n=%zu p50=%.2fms p99=%.2fms errors=%d\n",
                closed_latencies.size(), p50, p99, errors.load());
    Check(errors.load() == 0, "closed-loop: all requests answered 200");
    Check(p99 <= kP99BarMs, "closed-loop: p99 under the bar");
  }

  // --- Phase 2: open loop --------------------------------------------
  {
    std::atomic<int> errors{0};
    std::vector<double> latencies(kOpenLoopRequests, 0.0);
    std::vector<std::thread> inflight;
    const auto epoch = Clock::now();
    for (int i = 0; i < kOpenLoopRequests; ++i) {
      // Fixed arrival schedule: dispatch happens at i * interval whether
      // or not earlier requests came back (that is the point).
      const auto due =
          epoch + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          static_cast<double>(i) * kOpenLoopIntervalMs));
      std::this_thread::sleep_until(due);
      inflight.emplace_back([&, i] {
        subsim::HttpClient client("127.0.0.1", port);
        const std::uint32_t k =
            2 + 2 * static_cast<std::uint32_t>(i % 5);
        latencies[i] = TimedPost(&client, QueryLine(k, 1, 0.3), &errors);
      });
    }
    for (std::thread& t : inflight) {
      t.join();
    }
    const double p50 = Quantile(latencies, 0.5);
    const double p99 = Quantile(latencies, 0.99);
    std::printf("open-loop:   n=%d p50=%.2fms p99=%.2fms errors=%d\n",
                kOpenLoopRequests, p50, p99, errors.load());
    Check(errors.load() == 0, "open-loop: all requests answered 200");
    Check(p99 <= kP99BarMs, "open-loop: p99 under the bar");
  }

  // --- Phase 3: coalescing sublinearity ------------------------------
  {
    subsim::HttpClient client("127.0.0.1", port);
    const auto before_solo = client.Get("/metricsz");
    // Solo cold query on a fresh sketch key: the per-run sampling bill.
    (void)client.Post("/v1/select_seeds", QueryLine(6, 101, 0.15));
    const auto after_solo = client.Get("/metricsz");
    const double solo_sets =
        ScrapeNumber(after_solo->body, "rr.sets_generated") -
        ScrapeNumber(before_solo->body, "rr.sets_generated");

    // Exact reference bill for the fan-out query: the same cold query on
    // a private engine (identical counter-based streams, so identical
    // schedule) tells us what ONE run must generate.
    const std::string fan_query = QueryLine(6, 202, 0.15);
    double reference_sets = 0.0;
    {
      subsim::QueryEngine reference(&registry);
      const auto parsed = subsim::ParseSelectSeedsQuery(fan_query);
      const subsim::QueryResponse response = reference.Execute(*parsed);
      reference_sets =
          static_cast<double>(response.stats.rr_sets_generated);
    }

    // Fan out the SAME cold query (another fresh seed) concurrently.
    std::vector<std::thread> fan;
    for (int i = 0; i < kCoalesceFanout; ++i) {
      fan.emplace_back([&] {
        subsim::HttpClient c("127.0.0.1", port);
        (void)c.Post("/v1/select_seeds", fan_query);
      });
    }
    for (std::thread& t : fan) {
      t.join();
    }
    const auto after_fan = client.Get("/metricsz");
    const double fan_sets =
        ScrapeNumber(after_fan->body, "rr.sets_generated") -
        ScrapeNumber(after_solo->body, "rr.sets_generated");
    const double coalesced =
        ScrapeNumber(after_fan->body, "serve.coalesced");
    std::printf(
        "coalescing:  solo=%.0f sets, one-run bill=%.0f, "
        "%dx concurrent=%.0f sets, coalesced=%.0f\n",
        solo_sets, reference_sets, kCoalesceFanout, fan_sets, coalesced);
    Check(solo_sets > 0, "coalescing: solo cold query generated sets");
    // The sublinearity bar: the whole fan-out pays ONE run's sampling
    // bill (identical queries share one fill, they don't multiply it).
    Check(reference_sets > 0 && fan_sets <= 1.25 * reference_sets,
          "coalescing: concurrent identical queries share the fill");
  }

  // --- Phase 4: overload shedding + deadline degradation -------------
  {
    // A deliberately tiny second server over the same app: 1 worker, 1
    // queue slot, so a burst must shed.
    subsim::HttpServer::Options tiny_options;
    tiny_options.num_workers = 1;
    tiny_options.max_pending = 1;
    tiny_options.metrics = &engine.metrics();
    subsim::HttpServer tiny(
        [&app](const subsim::HttpRequest& request,
               const subsim::HttpRequestContext& context) {
          return app.Handle(request, context);
        },
        tiny_options);
    if (!tiny.Start().ok()) {
      std::fprintf(stderr, "tiny server start failed\n");
      return 1;
    }
    std::atomic<int> shed{0};
    std::atomic<int> ok{0};
    std::atomic<int> retry_after_seen{0};
    std::vector<std::thread> burst;
    for (int i = 0; i < kBurst; ++i) {
      burst.emplace_back([&, i] {
        // Slight arrival stagger: gives the worker a chance to dequeue
        // the first connection, so "at least two served" holds on any
        // scheduler, while the cold heavy queries (fresh seed each) keep
        // the worker busy far longer than the whole arrival span.
        std::this_thread::sleep_for(std::chrono::milliseconds(2 * i));
        subsim::HttpClient client("127.0.0.1", tiny.port());
        const auto response = client.Post(
            "/v1/select_seeds",
            QueryLine(10, 300 + static_cast<std::uint64_t>(i), 0.1));
        if (!response.ok()) {
          return;
        }
        if (response->status_code == 429) {
          shed.fetch_add(1);
          if (response->FindHeader("Retry-After") != nullptr) {
            retry_after_seen.fetch_add(1);
          }
        } else if (response->status_code == 200) {
          ok.fetch_add(1);
        }
      });
    }
    for (std::thread& t : burst) {
      t.join();
    }
    std::printf("overload:    burst=%d ok=%d shed=%d\n", kBurst, ok.load(),
                shed.load());
    Check(shed.load() >= 1, "overload: burst produced 429 shedding");
    // Shed-rate ceiling: capacity is worker + queue slot, so at least two
    // requests of the burst must land, whatever the interleaving.
    Check(shed.load() <= kBurst - 2,
          "overload: shed rate stays under the ceiling");
    Check(shed.load() == 0 || retry_after_seen.load() >= 1,
          "overload: shed responses carry Retry-After");
    tiny.Stop();

    // Deadline degradation: a 1 ms budget on a cold heavy query either
    // comes back degraded with the achieved bound annotated, or is shed.
    subsim::HttpClient client("127.0.0.1", port);
    const auto degraded = client.Post(
        "/v1/select_seeds", QueryLine(8, 999, 0.1) + " deadline_ms=1");
    const bool got = degraded.ok();
    const bool was_shed = got && degraded->status_code == 429;
    const bool was_degraded =
        got && degraded->status_code == 200 &&
        degraded->body.find("\"deadline_hit\":true") != std::string::npos &&
        degraded->body.find("\"achieved_eps\":") != std::string::npos;
    Check(was_shed || was_degraded,
          "deadline: 1ms budget answers degraded with achieved bound");
  }

  // --- Final scrape: the SLO gauges moved ----------------------------
  {
    subsim::HttpClient client("127.0.0.1", port);
    const auto metrics = client.Get("/metricsz");
    Check(metrics.ok() && metrics->status_code == 200,
          "metricsz: final scrape succeeds");
    if (metrics.ok()) {
      const double queue_p99 =
          ScrapeNumber(metrics->body, "slo.queue_us_p99");
      const double exec_p99 = ScrapeNumber(metrics->body, "slo.exec_us_p99");
      std::printf("slo gauges:  queue_us_p99=%.0f exec_us_p99=%.0f\n",
                  queue_p99, exec_p99);
      Check(exec_p99 > 0, "metricsz: exec_us p99 gauge is live");
    }
  }

  server.Stop();
  if (g_failures > 0) {
    std::fprintf(stderr, "bench_serve_load: %d check(s) FAILED\n",
                 g_failures);
    return 1;
  }
  std::printf("bench_serve_load: all checks passed\n");
  return 0;
}
