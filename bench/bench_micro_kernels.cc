// Micro-benchmarks (google-benchmark) for the hot kernels: RNG draws,
// geometric skips, alias-table sampling, subset sampling, and single
// RR-set generation. Useful for catching regressions in the primitives
// the figure-level numbers are built from.

#include <benchmark/benchmark.h>

#include <vector>

#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"
#include "subsim/random/alias_table.h"
#include "subsim/random/geometric.h"
#include "subsim/random/rng.h"
#include "subsim/rrset/subsim_ic_generator.h"
#include "subsim/rrset/vanilla_ic_generator.h"
#include "subsim/sampling/sampler_factory.h"
#include "subsim/util/check.h"

namespace subsim {
namespace {

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextU64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_RngUniformInt(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.UniformInt(1000000));
  }
}
BENCHMARK(BM_RngUniformInt);

void BM_GeometricSample(benchmark::State& state) {
  Rng rng(1);
  const double inv_log_q = GeometricInvLogQ(0.01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleGeometricFast(rng, inv_log_q));
  }
}
BENCHMARK(BM_GeometricSample);

void BM_AliasTableSample(benchmark::State& state) {
  std::vector<double> weights(state.range(0));
  Rng init(2);
  for (auto& w : weights) {
    w = init.NextDouble() + 0.01;
  }
  AliasTable table(weights);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(rng));
  }
}
BENCHMARK(BM_AliasTableSample)->Arg(16)->Arg(4096);

void BM_SubsetSampler(benchmark::State& state, SamplerKind kind) {
  const std::size_t h = state.range(0);
  std::vector<double> probs(h, 2.0 / static_cast<double>(h));
  auto sampler = MakeSubsetSampler(kind, std::move(probs));
  Rng rng(4);
  std::vector<std::uint32_t> out;
  for (auto _ : state) {
    out.clear();
    (*sampler)->Sample(rng, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK_CAPTURE(BM_SubsetSampler, naive, SamplerKind::kNaive)
    ->Arg(64)
    ->Arg(4096);
BENCHMARK_CAPTURE(BM_SubsetSampler, geometric, SamplerKind::kGeometric)
    ->Arg(64)
    ->Arg(4096);
BENCHMARK_CAPTURE(BM_SubsetSampler, bucket, SamplerKind::kBucket)
    ->Arg(64)
    ->Arg(4096);

const Graph& BenchGraph() {
  static const Graph* const kGraph = [] {
    Result<EdgeList> list = GenerateBarabasiAlbert(50000, 10, false, 5);
    const Status weights =
        AssignWeights(WeightModel::kWeightedCascade, {}, &list.value());
    SUBSIM_CHECK(weights.ok(), "bench graph weights: %s",
                 weights.ToString().c_str());
    return new Graph(BuildGraph(std::move(list).value()).value());
  }();
  return *kGraph;
}

void BM_RrGenerateVanilla(benchmark::State& state) {
  VanillaIcGenerator generator(BenchGraph());
  Rng rng(6);
  std::vector<NodeId> out;
  for (auto _ : state) {
    generator.Generate(rng, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_RrGenerateVanilla);

void BM_RrGenerateSubsim(benchmark::State& state) {
  SubsimIcGenerator generator(BenchGraph());
  Rng rng(6);
  std::vector<NodeId> out;
  for (auto _ : state) {
    generator.Generate(rng, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_RrGenerateSubsim);

}  // namespace
}  // namespace subsim

BENCHMARK_MAIN();
