// Micro-benchmarks (google-benchmark) for the hot kernels: RNG draws,
// geometric skips, alias-table sampling, subset sampling, and RR-set
// generation (single-set and whole-fill, scalar vs batched kernel).
// Useful for catching regressions in the primitives the figure-level
// numbers are built from.
//
// `--smoke` switches to a self-checking mode for CI: it times scalar vs
// batched fills per generator kind (min over repetitions), verifies the
// two kernels produce byte-identical collections, and fails if the
// batched kernel is slower than the scalar one.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"
#include "subsim/random/alias_table.h"
#include "subsim/random/geometric.h"
#include "subsim/random/rng.h"
#include "subsim/rrset/parallel_fill.h"
#include "subsim/rrset/subsim_ic_generator.h"
#include "subsim/rrset/vanilla_ic_generator.h"
#include "subsim/sampling/sampler_factory.h"
#include "subsim/util/check.h"

namespace subsim {
namespace {

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextU64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_RngUniformInt(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.UniformInt(1000000));
  }
}
BENCHMARK(BM_RngUniformInt);

void BM_GeometricSample(benchmark::State& state) {
  Rng rng(1);
  const double inv_log_q = GeometricInvLogQ(0.01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleGeometricFast(rng, inv_log_q));
  }
}
BENCHMARK(BM_GeometricSample);

void BM_AliasTableSample(benchmark::State& state) {
  std::vector<double> weights(state.range(0));
  Rng init(2);
  for (auto& w : weights) {
    w = init.NextDouble() + 0.01;
  }
  AliasTable table(weights);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Sample(rng));
  }
}
BENCHMARK(BM_AliasTableSample)->Arg(16)->Arg(4096);

void BM_SubsetSampler(benchmark::State& state, SamplerKind kind) {
  const std::size_t h = state.range(0);
  std::vector<double> probs(h, 2.0 / static_cast<double>(h));
  auto sampler = MakeSubsetSampler(kind, std::move(probs));
  Rng rng(4);
  std::vector<std::uint32_t> out;
  for (auto _ : state) {
    out.clear();
    (*sampler)->Sample(rng, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK_CAPTURE(BM_SubsetSampler, naive, SamplerKind::kNaive)
    ->Arg(64)
    ->Arg(4096);
BENCHMARK_CAPTURE(BM_SubsetSampler, geometric, SamplerKind::kGeometric)
    ->Arg(64)
    ->Arg(4096);
BENCHMARK_CAPTURE(BM_SubsetSampler, bucket, SamplerKind::kBucket)
    ->Arg(64)
    ->Arg(4096);

const Graph& BenchGraph() {
  static const Graph* const kGraph = [] {
    Result<EdgeList> list = GenerateBarabasiAlbert(50000, 10, false, 5);
    const Status weights =
        AssignWeights(WeightModel::kWeightedCascade, {}, &list.value());
    SUBSIM_CHECK(weights.ok(), "bench graph weights: %s",
                 weights.ToString().c_str());
    return new Graph(BuildGraph(std::move(list).value()).value());
  }();
  return *kGraph;
}

/// DRAM-resident WC graph for the fill benchmarks and the smoke guard:
/// 8M nodes / 80M edges puts the traversal working set (in-sources +
/// per-node descriptors + visited stamps, ~500 MB) beyond any L3, which
/// is the regime the batched kernel is built for — its speedup is
/// memory-level parallelism across lanes, so on a cache-resident graph
/// (`BenchGraph`) it merely ties the scalar kernel while paying its
/// pipeline overhead. Built lazily: only the fill benchmarks and
/// `--smoke` pay the ~15 s construction.
const Graph& DramFillGraph() {
  static const Graph* const kGraph = [] {
    Result<EdgeList> list = GenerateBarabasiAlbert(8000000, 10, false, 5);
    const Status weights =
        AssignWeights(WeightModel::kWeightedCascade, {}, &list.value());
    SUBSIM_CHECK(weights.ok(), "fill graph weights: %s",
                 weights.ToString().c_str());
    return new Graph(BuildGraph(std::move(list).value()).value());
  }();
  return *kGraph;
}

void BM_RrGenerateVanilla(benchmark::State& state) {
  VanillaIcGenerator generator(BenchGraph());
  Rng rng(6);
  std::vector<NodeId> out;
  for (auto _ : state) {
    generator.Generate(rng, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_RrGenerateVanilla);

void BM_RrGenerateSubsim(benchmark::State& state) {
  SubsimIcGenerator generator(BenchGraph());
  Rng rng(6);
  std::vector<NodeId> out;
  for (auto _ : state) {
    generator.Generate(rng, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_RrGenerateSubsim);

// Whole-fill throughput, scalar vs batched kernel on the same stream —
// the pair of numbers behind the batched kernel's speedup claim. Runs on
// the DRAM-resident graph; expect >= 2x for vanilla WC. Manual timing
// covers the `FillCollection` call only: constructing the 8M-entry
// inverted index inside `RrCollection` costs ~100 ms per iteration in
// both arms and scales with the graph, not the fill, so wall-clocking it
// would bury the kernel difference (the per-fill kernel setup — worker
// scratch, epoch stamps — stays inside the timed region and is amortized
// over a realistic per-fill set count: IMM-style theta on a graph this
// size is hundreds of thousands of sets).
void BM_Fill(benchmark::State& state, GeneratorKind kind, FillKernel kernel) {
  const Graph& graph = DramFillGraph();
  constexpr std::size_t kSetsPerIteration = 131072;
  std::uint64_t sets = 0;
  for (auto _ : state) {
    RrCollection collection(graph.num_nodes());
    RngStream stream = MakeRngStream(11, 1);
    const auto start = std::chrono::steady_clock::now();
    const Status status = FillCollection(
        {.kind = kind, .graph = &graph, .rng = &stream,
         .count = kSetsPerIteration, .num_threads = 1, .sentinels = {},
         .obs = {}, .kernel = kernel},
        &collection);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    SUBSIM_CHECK(status.ok(), "bench fill: %s", status.ToString().c_str());
    benchmark::DoNotOptimize(collection.total_nodes());
    state.SetIterationTime(elapsed.count());
    sets += kSetsPerIteration;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sets));
}
BENCHMARK_CAPTURE(BM_Fill, vanilla_scalar, GeneratorKind::kVanillaIc,
                  FillKernel::kScalar)
    ->UseManualTime();
BENCHMARK_CAPTURE(BM_Fill, vanilla_batched, GeneratorKind::kVanillaIc,
                  FillKernel::kBatched)
    ->UseManualTime();
BENCHMARK_CAPTURE(BM_Fill, subsim_scalar, GeneratorKind::kSubsimIc,
                  FillKernel::kScalar)
    ->UseManualTime();
BENCHMARK_CAPTURE(BM_Fill, subsim_batched, GeneratorKind::kSubsimIc,
                  FillKernel::kBatched)
    ->UseManualTime();
BENCHMARK_CAPTURE(BM_Fill, lt_scalar, GeneratorKind::kLt, FillKernel::kScalar)
    ->UseManualTime();
BENCHMARK_CAPTURE(BM_Fill, lt_batched, GeneratorKind::kLt,
                  FillKernel::kBatched)
    ->UseManualTime();

// ---------------------------------------------------------------------------
// --smoke: CI guard. Byte-identity plus a "batched must not be slower"
// assertion per generator kind, on min-over-reps single-thread timings.

double TimeFillSeconds(const Graph& graph, GeneratorKind kind,
                       FillKernel kernel, std::size_t count) {
  RrCollection collection(graph.num_nodes());
  RngStream stream = MakeRngStream(11, 1);
  const auto start = std::chrono::steady_clock::now();
  const Status status = FillCollection(
      {.kind = kind, .graph = &graph, .rng = &stream, .count = count,
       .num_threads = 1, .sentinels = {}, .obs = {}, .kernel = kernel},
      &collection);
  const auto stop = std::chrono::steady_clock::now();
  SUBSIM_CHECK(status.ok(), "smoke fill: %s", status.ToString().c_str());
  return std::chrono::duration<double>(stop - start).count();
}

bool CollectionsIdentical(const RrCollection& a, const RrCollection& b) {
  if (a.num_sets() != b.num_sets()) {
    return false;
  }
  for (RrId id = 0; id < a.num_sets(); ++id) {
    const auto sa = a.View(id).ToVector();
    const auto sb = b.View(id).ToVector();
    if (sa.size() != sb.size() ||
        !std::equal(sa.begin(), sa.end(), sb.begin()) ||
        a.HitSentinel(id) != b.HitSentinel(id)) {
      return false;
    }
  }
  return true;
}

int RunSmoke() {
  struct Case {
    const char* label;
    GeneratorKind kind;
    /// Allowed batched/scalar time ratio on the DRAM-resident graph.
    /// Vanilla WC is the headline case (measures ~0.5-0.65 even at smoke
    /// scale, i.e. >= 1.5x) so it must win with margin. SUBSIM and LT
    /// batched win at fill scale (~1.15x in BM_Fill), but their scalar
    /// baselines share the packed-descriptor fast paths and a 20k-set
    /// smoke leaves little cold-cache traversal to pipeline, so at this
    /// scale they tie — the bar is "not slower" plus noise headroom for
    /// shared CI runners.
    double max_ratio;
  };
  const Case cases[] = {
      {"vanilla", GeneratorKind::kVanillaIc, 0.90},
      {"subsim", GeneratorKind::kSubsimIc, 1.10},
      {"lt", GeneratorKind::kLt, 1.10},
  };
  const Graph& graph = DramFillGraph();
  constexpr std::size_t kSets = 20000;
  constexpr int kReps = 3;

  bool ok = true;
  for (const Case& c : cases) {
    RrCollection scalar_out(graph.num_nodes());
    RrCollection batched_out(graph.num_nodes());
    RngStream scalar_stream = MakeRngStream(11, 1);
    RngStream batched_stream = MakeRngStream(11, 1);
    Status status = FillCollection(
        {.kind = c.kind, .graph = &graph, .rng = &scalar_stream,
         .count = kSets, .num_threads = 1, .sentinels = {}, .obs = {},
         .kernel = FillKernel::kScalar},
        &scalar_out);
    SUBSIM_CHECK(status.ok(), "smoke fill: %s", status.ToString().c_str());
    status = FillCollection(
        {.kind = c.kind, .graph = &graph, .rng = &batched_stream,
         .count = kSets, .num_threads = 1, .sentinels = {}, .obs = {},
         .kernel = FillKernel::kBatched},
        &batched_out);
    SUBSIM_CHECK(status.ok(), "smoke fill: %s", status.ToString().c_str());
    if (!CollectionsIdentical(scalar_out, batched_out)) {
      std::printf("FAIL %-8s kernels diverge (scalar != batched)\n", c.label);
      ok = false;
      continue;
    }

    // Judge on the best per-rep ratio, not the ratio of per-arm bests:
    // the two arms of a rep run back to back, so interference that slows
    // the whole machine for a while (CI neighbors, hypervisor steal time)
    // inflates both and cancels in the ratio, whereas min-per-arm across
    // reps can pair a quiet scalar rep with a noisy batched one.
    double scalar_best = 0.0;
    double batched_best = 0.0;
    double ratio = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      const double s = TimeFillSeconds(graph, c.kind, FillKernel::kScalar,
                                       kSets);
      const double b = TimeFillSeconds(graph, c.kind, FillKernel::kBatched,
                                       kSets);
      scalar_best = rep == 0 ? s : std::min(scalar_best, s);
      batched_best = rep == 0 ? b : std::min(batched_best, b);
      ratio = rep == 0 ? b / s : std::min(ratio, b / s);
    }
    const bool pass = ratio <= c.max_ratio;
    std::printf("%s %-8s scalar %8.2f ms  batched %8.2f ms  speedup %5.2fx\n",
                pass ? "ok  " : "FAIL", c.label, scalar_best * 1e3,
                batched_best * 1e3, 1.0 / ratio);
    ok = ok && pass;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace subsim

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      return subsim::RunSmoke();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
