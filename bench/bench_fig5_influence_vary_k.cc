// Figure 5: expected influence of the returned seed set vs k in the
// high-influence WC-variant setting.
//
// Paper shape to reproduce: influence rises steeply with k on all
// datasets, with HIST matching OPIM-C's quality (their curves coincide) —
// HIST's speed does not come from weaker seeds. Influence is measured by
// forward Monte-Carlo simulation.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "subsim/algo/registry.h"
#include "subsim/benchsup/reporting.h"
#include "subsim/eval/spread_estimator.h"
#include "subsim/util/string_util.h"

int main(int argc, char** argv) {
  const auto args = subsim::ExperimentArgs::Parse(argc, argv, 0.12);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  const double target = subsim_bench::HighInfluenceTarget(args->quick);
  const std::vector<std::uint32_t> k_values =
      args->quick
          ? std::vector<std::uint32_t>{10, 100}
          : std::vector<std::uint32_t>{1, 10, 50, 100, 200, 500};
  const std::uint64_t simulations = args->quick ? 500 : 1000;

  std::printf(
      "Figure 5: expected influence vs k, WC variant @ avg RR size ~%.0f\n\n",
      target);
  for (const std::string& dataset : subsim::SelectDatasets(*args)) {
    const auto calibrated = subsim_bench::BuildCalibrated(
        dataset, args->scale, args->seed, subsim::WeightModel::kWcVariant,
        target);
    if (!calibrated.ok()) {
      std::fprintf(stderr, "%s: %s\n", dataset.c_str(),
                   calibrated.status().ToString().c_str());
      return 1;
    }
    subsim::SpreadEstimator estimator(
        calibrated->graph, subsim::CascadeModel::kIndependentCascade);

    subsim::TablePrinter table({"k", "HIST influence", "OPIM-C influence",
                                "influence %n", "HIST/OPIM-C"});
    for (const std::uint32_t k : k_values) {
      if (k >= calibrated->graph.num_nodes()) {
        continue;
      }
      subsim::ImOptions options;
      options.k = k;
      options.epsilon = 0.1;
      options.rng_seed = args->seed;

      const auto hist = subsim::MakeImAlgorithm("hist");
      const auto opim = subsim::MakeImAlgorithm("opim-c");
      if (!hist.ok() || !opim.ok()) {
        return 1;
      }
      const auto hist_result = (*hist)->Run(calibrated->graph, options);
      const auto opim_result = (*opim)->Run(calibrated->graph, options);
      if (!hist_result.ok() || !opim_result.ok()) {
        std::fprintf(stderr, "%s k=%u: run failed\n", dataset.c_str(), k);
        return 1;
      }

      subsim::Rng rng(args->seed + 1);
      const double hist_spread =
          estimator.Estimate(hist_result->seeds, simulations, rng).spread;
      const double opim_spread =
          estimator.Estimate(opim_result->seeds, simulations, rng).spread;
      table.AddRow(
          {std::to_string(k), subsim::FormatDouble(hist_spread, 1),
           subsim::FormatDouble(opim_spread, 1),
           subsim::FormatDouble(
               100.0 * hist_spread / calibrated->graph.num_nodes(), 1) +
               "%",
           subsim::FormatDouble(hist_spread / opim_spread, 3)});
    }
    std::printf("--- %s ---\n", dataset.c_str());
    table.Print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper): influence climbs sharply from k=1 to\n"
      "k=2000; HIST/OPIM-C quality ratio stays ~1.0 throughout.\n");
  return 0;
}
