// Incremental RR repair on graph update: the dynamic-graphs win.
//
// A warm serving cache holds SampleStores sampled on version v of a graph.
// When an update batch publishes v+1, the engine regenerates ONLY the RR
// sets whose reverse traversal touched a mutated edge's target (found via
// the collection's inverted index) and carries every other set forward —
// cost proportional to the affected sets, not to the store. This bench
// measures that proportionality directly: batches touching 1, 4, 16, and
// 64 edges against one warmed engine, with a full cold resample as the
// baseline.
//
// Pass criteria (checked, non-zero exit on failure):
//   - for every batch, sets_repaired equals the independently computed
//     number of committed sets containing a dirty node (repair is exact:
//     nothing extra is regenerated);
//   - repaired fraction grows monotonically (non-strictly) with batch
//     size, and the 1-edge batch repairs < 50% of the store;
//   - every post-update warm answer is bit-identical to a cold engine's
//     answer on the updated snapshot.

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "subsim/benchsup/reporting.h"
#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/graph_update.h"
#include "subsim/graph/weight_models.h"
#include "subsim/serve/graph_registry.h"
#include "subsim/serve/query.h"
#include "subsim/serve/query_engine.h"
#include "subsim/util/string_util.h"

namespace {

constexpr std::uint64_t kSeed = 13;
constexpr double kEpsilon = 0.15;

subsim::Result<subsim::Graph> BuildBenchGraph() {
  auto list = subsim::GenerateBarabasiAlbert(3000, 4, false, kSeed);
  if (!list.ok()) {
    return list.status();
  }
  if (const subsim::Status status = subsim::AssignWeights(
          subsim::WeightModel::kWeightedCascade, {}, &list.value());
      !status.ok()) {
    return status;
  }
  return subsim::BuildGraph(std::move(list).value());
}

subsim::SelectSeedsQuery MakeQuery() {
  subsim::SelectSeedsQuery query;
  query.graph = "bench";
  query.algo = "opim-c";
  query.k = 10;
  query.epsilon = kEpsilon;
  query.rng_seed = kSeed;
  query.generator = subsim::GeneratorKind::kSubsimIc;
  return query;
}

/// Weight-halves `count` distinct edges, spread across the edge list so
/// the dirty frontier isn't one hub.
subsim::UpdateBatch MakeBatch(const subsim::Graph& graph, std::size_t count) {
  const subsim::EdgeList list = graph.ToEdgeList();
  subsim::UpdateBatch batch;
  std::unordered_set<std::uint64_t> used;
  const std::size_t stride = list.edges.size() / (count * 2 + 1) + 1;
  for (std::size_t i = 0; i < list.edges.size() && batch.ops.size() < count;
       i += stride) {
    const subsim::Edge& e = list.edges[i];
    const std::uint64_t key =
        (static_cast<std::uint64_t>(e.src) << 32) | e.dst;
    if (!used.insert(key).second) {
      continue;
    }
    batch.ops.push_back({subsim::EdgeOpKind::kSetWeight, e.src, e.dst,
                         e.weight * 0.5});
  }
  return batch;
}

/// Ground truth for sets_repaired: committed sets (both streams) of every
/// cached entry that contain at least one dirty node.
std::uint64_t CountAffectedSets(const subsim::QueryEngine& engine,
                                const std::string& graph_name,
                                std::uint64_t version,
                                const std::vector<subsim::NodeId>& dirty) {
  std::uint64_t affected = 0;
  for (const auto& [key, entry] :
       engine.cache().EntriesForGraph(graph_name, version)) {
    const subsim::SampleStore& store = *entry->store;
    const subsim::SampleStore::ReadGuard read = store.Read();
    for (std::size_t s = 0; s < subsim::SampleStore::kNumStreams; ++s) {
      const subsim::RrCollectionView view = read.View(s, store.num_sets(s));
      std::vector<std::uint8_t> hit(view.num_sets(), 0);
      for (const subsim::NodeId v : dirty) {
        for (const subsim::RrId id : view.SetsContaining(v)) {
          hit[id] = 1;
        }
      }
      for (const std::uint8_t h : hit) {
        affected += h;
      }
    }
  }
  return affected;
}

}  // namespace

int main() {
  auto graph = BuildBenchGraph();
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  subsim::GraphRegistry registry;
  if (const subsim::Status status =
          registry.Register("bench", std::move(graph).value());
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  subsim::QueryEngine engine(&registry);

  // Warm the cache once; every update then repairs this store.
  const subsim::SelectSeedsQuery query = MakeQuery();
  const subsim::QueryResponse cold0 = engine.Execute(query);
  if (!cold0.status.ok()) {
    std::fprintf(stderr, "%s\n", cold0.status.ToString().c_str());
    return 1;
  }

  std::printf(
      "Incremental repair vs batch size: BA n=3000 WC, opim-c k=%u "
      "eps=%.2g, store warmed with %llu sets\n\n",
      query.k, kEpsilon,
      static_cast<unsigned long long>(cold0.result.num_rr_sets));

  subsim::TablePrinter table({"batch edges", "dirty nodes", "sets repaired",
                              "sets kept", "repaired %", "repair s",
                              "warm==cold"});
  bool all_exact = true;
  bool all_match = true;
  std::vector<double> repaired_fractions;

  for (const std::size_t batch_edges : {1u, 4u, 16u, 64u}) {
    // Build the batch against the CURRENT snapshot (weights halve
    // cumulatively across rounds; the op stays valid either way).
    auto snapshot = registry.GetSnapshot("bench");
    if (!snapshot.ok()) {
      return 1;
    }
    const subsim::UpdateBatch batch =
        MakeBatch(*snapshot->graph, batch_edges);

    // Ground truth BEFORE the update mutates the cache.
    auto preview = subsim::ApplyEdgeUpdates(*snapshot->graph, batch);
    if (!preview.ok()) {
      std::fprintf(stderr, "%s\n", preview.status().ToString().c_str());
      return 1;
    }
    const std::uint64_t expected = CountAffectedSets(
        engine, "bench", snapshot->version, preview->dirty_nodes);

    auto outcome = engine.ApplyGraphUpdates("bench", batch);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
      return 1;
    }
    const bool exact = outcome->sets_repaired == expected;
    all_exact = all_exact && exact;
    const double total = static_cast<double>(outcome->sets_repaired +
                                             outcome->sets_kept);
    const double fraction =
        total == 0.0 ? 0.0 : static_cast<double>(outcome->sets_repaired) /
                                 total;
    repaired_fractions.push_back(fraction);

    // Post-update warm answer vs a cold engine on the same snapshot.
    const subsim::QueryResponse warm = engine.Execute(query);
    subsim::QueryEngine cold_engine(&registry);
    const subsim::QueryResponse cold = cold_engine.Execute(query);
    const bool match = warm.status.ok() && cold.status.ok() &&
                       warm.result.seeds == cold.result.seeds &&
                       warm.result.num_rr_sets == cold.result.num_rr_sets;
    all_match = all_match && match;

    char percent[32];
    std::snprintf(percent, sizeof(percent), "%.1f%%", fraction * 100.0);
    table.AddRow({std::to_string(batch.ops.size()),
                  std::to_string(preview->dirty_nodes.size()),
                  std::to_string(outcome->sets_repaired) +
                      (exact ? "" : " (EXPECTED " + std::to_string(expected) +
                                        ")"),
                  std::to_string(outcome->sets_kept), percent,
                  subsim::HumanSeconds(outcome->repair_seconds),
                  match ? "identical" : "MISMATCH"});
  }
  table.Print(std::cout);

  // Each round's store differs (earlier repairs resampled some sets), so
  // allow a small absolute slack on the monotonicity check.
  bool monotone = true;
  for (std::size_t i = 1; i < repaired_fractions.size(); ++i) {
    monotone = monotone &&
               repaired_fractions[i] + 0.02 >= repaired_fractions[i - 1];
  }

  if (!all_exact) {
    std::printf("\nFAIL: repair regenerated sets outside the affected "
                "frontier\n");
    return 1;
  }
  if (!all_match) {
    std::printf("\nFAIL: post-update warm answers diverged from cold\n");
    return 1;
  }
  if (!monotone) {
    std::printf("\nFAIL: repaired fraction not monotone in batch size\n");
    return 1;
  }
  if (repaired_fractions.front() >= 0.5) {
    std::printf("\nFAIL: 1-edge batch repaired %.1f%% of the store "
                "(incrementality bar is < 50%%)\n",
                repaired_fractions.front() * 100.0);
    return 1;
  }
  std::printf("\nPASS: repair exact on every batch, fraction monotone "
              "(%.1f%% at 1 edge -> %.1f%% at 64), all answers "
              "identical to cold\n",
              repaired_fractions.front() * 100.0,
              repaired_fractions.back() * 100.0);
  return 0;
}
