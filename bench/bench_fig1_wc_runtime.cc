// Figure 1: running time under the WC model — SUBSIM vs IMM vs SSA vs
// OPIM-C, varying k on each dataset.
//
// Paper shape to reproduce: SUBSIM (OPIM-C chassis + SUBSIM generator)
// fastest everywhere — up to 15x over OPIM-C, ~an order over SSA, up to
// three orders over IMM; every algorithm gets cheaper per seed as k grows
// (theta ~ 1/k at fixed quality).

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "subsim/algo/registry.h"
#include "subsim/benchsup/experiment.h"
#include "subsim/benchsup/reporting.h"
#include "subsim/util/string_util.h"

namespace {

struct AlgoConfig {
  const char* label;
  const char* algorithm;
  subsim::GeneratorKind generator;
  /// Which RR-generation kernel the algorithm's fills run; the streams are
  /// byte-identical, so arms differing only here isolate kernel speed.
  subsim::FillKernel kernel;
};

/// Acceptance gate for the observability layer: attaching a live registry
/// + tracer to the SUBSIM config must stay within 2% of the
/// uninstrumented runtime. Interleaves repetitions and compares the min
/// of each arm (min-of-reps is the standard noise filter for this); a
/// 10ms absolute allowance keeps sub-second quick runs from failing on
/// scheduler jitter alone.
bool CheckMetricsOverhead(const subsim::Graph& graph, std::uint64_t seed) {
  constexpr int kReps = 3;
  const auto run_once = [&](const subsim::ObsContext& obs) -> double {
    const auto algorithm = subsim::MakeImAlgorithm("opim-c");
    if (!algorithm.ok()) {
      return -1.0;
    }
    subsim::ImOptions options;
    options.k = 50;
    options.epsilon = 0.1;
    options.rng_seed = seed;
    options.generator = subsim::GeneratorKind::kSubsimIc;
    options.obs = obs;
    const auto result = (*algorithm)->Run(graph, options);
    return result.ok() ? result->seconds : -1.0;
  };

  subsim::MetricsRegistry metrics;
  subsim::PhaseTracer tracer(/*max_spans=*/8192, &metrics);
  double plain = -1.0;
  double instrumented = -1.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const double p = run_once(subsim::ObsContext{});
    const double i = run_once(subsim::ObsContext{&metrics, &tracer});
    if (p < 0.0 || i < 0.0) {
      std::fprintf(stderr, "metrics overhead check: run failed\n");
      return false;
    }
    plain = rep == 0 ? p : std::min(plain, p);
    instrumented = rep == 0 ? i : std::min(instrumented, i);
  }

  const double budget = plain * 1.02 + 0.010;
  const double pct = plain > 0.0 ? (instrumented / plain - 1.0) * 100.0 : 0.0;
  std::printf("metrics overhead: base %.3fs, instrumented %.3fs (%+.2f%%) %s\n",
              plain, instrumented, pct,
              instrumented <= budget ? "OK (within 2%)" : "FAIL (over 2%)");
  return instrumented <= budget;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = subsim::ExperimentArgs::Parse(argc, argv, 0.15);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }

  const std::vector<std::uint32_t> k_values =
      args->quick ? std::vector<std::uint32_t>{10, 200}
                  : std::vector<std::uint32_t>{1, 10, 50, 200, 1000, 2000};
  // The two SUBSIM arms differ only in the fill kernel (identical sample
  // streams, identical seeds), so their ratio is the batched kernel's
  // end-to-end speedup inside a full IM run.
  const AlgoConfig configs[] = {
      {"IMM", "imm", subsim::GeneratorKind::kVanillaIc,
       subsim::FillKernel::kAuto},
      {"SSA", "ssa", subsim::GeneratorKind::kVanillaIc,
       subsim::FillKernel::kAuto},
      {"OPIM-C", "opim-c", subsim::GeneratorKind::kVanillaIc,
       subsim::FillKernel::kAuto},
      {"SUBSIM/scalar", "opim-c", subsim::GeneratorKind::kSubsimIc,
       subsim::FillKernel::kScalar},
      {"SUBSIM", "opim-c", subsim::GeneratorKind::kSubsimIc,
       subsim::FillKernel::kBatched},
  };

  std::printf(
      "Figure 1: WC model running time (seconds), eps=0.1, delta=1/n\n\n");
  subsim_bench::BenchObs obs(*args);
  const std::vector<std::string> datasets = subsim::SelectDatasets(*args);
  for (const std::string& dataset : datasets) {
    const auto graph = subsim::BuildDatasetGraph(
        dataset, args->scale, args->seed,
        subsim::WeightModel::kWeightedCascade, {});
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", dataset.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }

    subsim::TablePrinter table({"k", "IMM", "SSA", "OPIM-C", "SUBSIM/scalar",
                                "SUBSIM", "SUBSIM vs OPIM-C",
                                "kernel speedup"});
    for (const std::uint32_t k : k_values) {
      std::vector<std::string> row = {std::to_string(k)};
      double opim_seconds = 0.0;
      double subsim_seconds = 0.0;
      double subsim_scalar_seconds = 0.0;
      for (const AlgoConfig& config : configs) {
        const auto algorithm = subsim::MakeImAlgorithm(config.algorithm);
        if (!algorithm.ok()) {
          return 1;
        }
        subsim::ImOptions options;
        options.k = k;
        options.epsilon = 0.1;
        options.rng_seed = args->seed;
        options.generator = config.generator;
        options.fill_kernel = config.kernel;
        options.obs = obs.Context();
        const auto result = (*algorithm)->Run(*graph, options);
        if (!result.ok()) {
          std::fprintf(stderr, "%s k=%u: %s\n", config.label, k,
                       result.status().ToString().c_str());
          return 1;
        }
        row.push_back(subsim::FormatDouble(result->seconds, 3));
        if (std::string(config.label) == "OPIM-C") {
          opim_seconds = result->seconds;
        }
        if (std::string(config.label) == "SUBSIM/scalar") {
          subsim_scalar_seconds = result->seconds;
        }
        if (std::string(config.label) == "SUBSIM") {
          subsim_seconds = result->seconds;
        }
      }
      row.push_back(subsim::FormatSpeedup(opim_seconds, subsim_seconds));
      row.push_back(
          subsim::FormatSpeedup(subsim_scalar_seconds, subsim_seconds));
      table.AddRow(std::move(row));
    }
    std::printf("--- %s ---\n", dataset.c_str());
    table.Print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper): SUBSIM < OPIM-C < SSA << IMM at every k.\n");

  if (!obs.Write()) {
    return 1;
  }
  // Self-asserted acceptance criterion for the observability layer.
  if (!datasets.empty()) {
    const auto check_graph = subsim::BuildDatasetGraph(
        datasets.front(), args->scale, args->seed,
        subsim::WeightModel::kWeightedCascade, {});
    if (!check_graph.ok() ||
        !CheckMetricsOverhead(*check_graph, args->seed)) {
      return 1;
    }
  }
  return 0;
}
