// Figure 1: running time under the WC model — SUBSIM vs IMM vs SSA vs
// OPIM-C, varying k on each dataset.
//
// Paper shape to reproduce: SUBSIM (OPIM-C chassis + SUBSIM generator)
// fastest everywhere — up to 15x over OPIM-C, ~an order over SSA, up to
// three orders over IMM; every algorithm gets cheaper per seed as k grows
// (theta ~ 1/k at fixed quality).

#include <cstdio>
#include <iostream>
#include <vector>

#include "subsim/algo/registry.h"
#include "subsim/benchsup/experiment.h"
#include "subsim/benchsup/reporting.h"
#include "subsim/util/string_util.h"

namespace {

struct AlgoConfig {
  const char* label;
  const char* algorithm;
  subsim::GeneratorKind generator;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = subsim::ExperimentArgs::Parse(argc, argv, 0.15);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }

  const std::vector<std::uint32_t> k_values =
      args->quick ? std::vector<std::uint32_t>{10, 200}
                  : std::vector<std::uint32_t>{1, 10, 50, 200, 1000, 2000};
  const AlgoConfig configs[] = {
      {"IMM", "imm", subsim::GeneratorKind::kVanillaIc},
      {"SSA", "ssa", subsim::GeneratorKind::kVanillaIc},
      {"OPIM-C", "opim-c", subsim::GeneratorKind::kVanillaIc},
      {"SUBSIM", "opim-c", subsim::GeneratorKind::kSubsimIc},
  };

  std::printf(
      "Figure 1: WC model running time (seconds), eps=0.1, delta=1/n\n\n");
  for (const std::string& dataset : subsim::SelectDatasets(*args)) {
    const auto graph = subsim::BuildDatasetGraph(
        dataset, args->scale, args->seed,
        subsim::WeightModel::kWeightedCascade, {});
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", dataset.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }

    subsim::TablePrinter table(
        {"k", "IMM", "SSA", "OPIM-C", "SUBSIM", "SUBSIM vs OPIM-C"});
    for (const std::uint32_t k : k_values) {
      std::vector<std::string> row = {std::to_string(k)};
      double opim_seconds = 0.0;
      double subsim_seconds = 0.0;
      for (const AlgoConfig& config : configs) {
        const auto algorithm = subsim::MakeImAlgorithm(config.algorithm);
        if (!algorithm.ok()) {
          return 1;
        }
        subsim::ImOptions options;
        options.k = k;
        options.epsilon = 0.1;
        options.rng_seed = args->seed;
        options.generator = config.generator;
        const auto result = (*algorithm)->Run(*graph, options);
        if (!result.ok()) {
          std::fprintf(stderr, "%s k=%u: %s\n", config.label, k,
                       result.status().ToString().c_str());
          return 1;
        }
        row.push_back(subsim::FormatDouble(result->seconds, 3));
        if (std::string(config.label) == "OPIM-C") {
          opim_seconds = result->seconds;
        }
        if (std::string(config.label) == "SUBSIM") {
          subsim_seconds = result->seconds;
        }
      }
      row.push_back(subsim::FormatSpeedup(opim_seconds, subsim_seconds));
      table.AddRow(std::move(row));
    }
    std::printf("--- %s ---\n", dataset.c_str());
    table.Print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper): SUBSIM < OPIM-C < SSA << IMM at every k.\n");
  return 0;
}
