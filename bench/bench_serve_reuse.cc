// Serving-cache reuse: the win the serve subsystem exists for.
//
// A stream of growing-k queries against one graph is the canonical serving
// workload (an analyst ratcheting the budget up). Cold, every query pays
// its full RR-sampling bill from scratch; warm, the shared `SampleStore`
// means each query only generates the gap beyond the longest prefix any
// earlier query committed. Counter-based sample streams make this reuse
// exact: every warm answer is bit-identical to the cold solve with the
// same options, whatever thread count filled the store.
//
// Pass criteria (checked, non-zero exit on failure):
//   - warm runs generate >= 5x fewer new RR sets than cold runs in total;
//   - every warm seed set equals the equivalent cold solve's seed set.

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "subsim/algo/registry.h"
#include "subsim/benchsup/reporting.h"
#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"
#include "subsim/serve/graph_registry.h"
#include "subsim/serve/query.h"
#include "subsim/serve/query_engine.h"
#include "subsim/util/string_util.h"

namespace {

constexpr std::uint64_t kSeed = 13;
constexpr double kEpsilon = 0.1;

subsim::Result<subsim::Graph> BuildBenchGraph() {
  auto list = subsim::GenerateBarabasiAlbert(3000, 4, false, kSeed);
  if (!list.ok()) {
    return list.status();
  }
  if (const subsim::Status status = subsim::AssignWeights(
          subsim::WeightModel::kWeightedCascade, {}, &list.value());
      !status.ok()) {
    return status;
  }
  return subsim::BuildGraph(std::move(list).value());
}

subsim::SelectSeedsQuery MakeQuery(const std::string& algo,
                                   std::uint32_t k) {
  subsim::SelectSeedsQuery query;
  query.graph = "bench";
  query.algo = algo;
  query.k = k;
  query.epsilon = kEpsilon;
  query.rng_seed = kSeed;
  query.generator = subsim::GeneratorKind::kSubsimIc;
  return query;
}

}  // namespace

int main() {
  auto graph = BuildBenchGraph();
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  subsim::GraphRegistry registry;
  if (const subsim::Status status =
          registry.Register("bench", std::move(graph).value());
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  const std::vector<std::uint32_t> k_values = {5,  10, 15, 20, 25,
                                               30, 35, 40, 45, 50};
  std::printf(
      "Serving-cache reuse: growing-k query stream, BA n=3000 WC, "
      "eps=%.2g, seed=%llu\n\n",
      kEpsilon, static_cast<unsigned long long>(kSeed));

  bool all_seeds_match = true;
  std::uint64_t grand_cold = 0;
  std::uint64_t grand_warm = 0;
  double grand_cold_seconds = 0.0;
  double grand_warm_seconds = 0.0;

  for (const std::string algo : {"opim-c", "imm"}) {
    auto algorithm = subsim::MakeImAlgorithm(algo);
    if (!algorithm.ok()) {
      std::fprintf(stderr, "%s\n", algorithm.status().ToString().c_str());
      return 1;
    }
    auto snapshot = registry.Get("bench");
    if (!snapshot.ok()) {
      return 1;
    }

    subsim::QueryEngine engine(&registry);
    subsim::TablePrinter table({"k", "cold sets", "warm new", "warm reused",
                                "cold s", "warm s", "seeds"});
    std::uint64_t cold_total = 0;
    std::uint64_t warm_total = 0;

    for (const std::uint32_t k : k_values) {
      const subsim::SelectSeedsQuery query = MakeQuery(algo, k);

      const auto cold = (*algorithm)->Run(**snapshot, query.ToImOptions());
      if (!cold.ok()) {
        std::fprintf(stderr, "cold %s k=%u: %s\n", algo.c_str(), k,
                     cold.status().ToString().c_str());
        return 1;
      }
      const subsim::QueryResponse warm = engine.Execute(query);
      if (!warm.status.ok()) {
        std::fprintf(stderr, "warm %s k=%u: %s\n", algo.c_str(), k,
                     warm.status.ToString().c_str());
        return 1;
      }

      const bool match = warm.result.seeds == cold->seeds;
      all_seeds_match = all_seeds_match && match;
      cold_total += cold->num_rr_sets;
      warm_total += warm.stats.rr_sets_generated;
      grand_cold_seconds += cold->seconds;
      grand_warm_seconds += warm.stats.exec_seconds;

      table.AddRow({std::to_string(k), std::to_string(cold->num_rr_sets),
                    std::to_string(warm.stats.rr_sets_generated),
                    std::to_string(warm.stats.rr_sets_reused),
                    subsim::HumanSeconds(cold->seconds),
                    subsim::HumanSeconds(warm.stats.exec_seconds),
                    match ? "identical" : "MISMATCH"});
    }

    std::printf("%s:\n", algo.c_str());
    table.Print(std::cout);
    const double ratio =
        warm_total == 0 ? 0.0
                        : static_cast<double>(cold_total) /
                              static_cast<double>(warm_total);
    std::printf("  cold generated %llu sets, warm generated %llu (%.1fx "
                "fewer)\n\n",
                static_cast<unsigned long long>(cold_total),
                static_cast<unsigned long long>(warm_total), ratio);
    grand_cold += cold_total;
    grand_warm += warm_total;
  }

  const double overall =
      grand_warm == 0 ? 0.0
                      : static_cast<double>(grand_cold) /
                            static_cast<double>(grand_warm);
  std::printf("overall: cold %llu sets in %s, warm %llu sets in %s "
              "(%.1fx fewer new sets)\n",
              static_cast<unsigned long long>(grand_cold),
              subsim::HumanSeconds(grand_cold_seconds).c_str(),
              static_cast<unsigned long long>(grand_warm),
              subsim::HumanSeconds(grand_warm_seconds).c_str(), overall);

  if (!all_seeds_match) {
    std::printf("FAIL: warm seed sets diverged from cold solves\n");
    return 1;
  }
  if (overall < 5.0) {
    std::printf("FAIL: reuse ratio %.1fx below the 5x bar\n", overall);
    return 1;
  }
  std::printf("PASS: warm/cold seeds identical, reuse ratio %.1fx\n",
              overall);
  return 0;
}
