// Ablation: standalone subset-sampler strategies across set sizes and
// probability shapes (DESIGN.md "sampler choice" design choice).
//
// For the same probability vector, compare nanoseconds per Sample() call:
//   naive     — one coin per element (vanilla behaviour, O(h));
//   geometric — skips (uniform probabilities only, O(1 + mu));
//   bucket    — Bringmann-Panagiotou buckets + alias hops (O(1 + mu));
//   sorted    — index-free position buckets (O(1 + mu + log h)).
// The crossover structure justifies the SUBSIM generator's per-node plan
// dispatch: naive only ever wins when h is tiny.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "subsim/benchsup/experiment.h"
#include "subsim/benchsup/reporting.h"
#include "subsim/random/rng.h"
#include "subsim/sampling/sampler_factory.h"
#include "subsim/util/timer.h"

namespace {

std::vector<double> MakeProbs(const std::string& shape, std::size_t h) {
  std::vector<double> probs(h);
  if (shape == "uniform-1/h") {
    for (auto& p : probs) {
      p = 1.0 / static_cast<double>(h);
    }
  } else if (shape == "zipf") {
    // Descending 1/rank, scaled so mu ~ log(h).
    for (std::size_t i = 0; i < h; ++i) {
      probs[i] = 1.0 / static_cast<double>(i + 1);
    }
  } else {  // "random": iid uniforms scaled to mu ~ 2.
    subsim::Rng rng(17);
    for (auto& p : probs) {
      p = rng.NextDouble() * 4.0 / static_cast<double>(h);
      if (p > 1.0) {
        p = 1.0;
      }
    }
  }
  return probs;
}

double NanosPerSample(const subsim::SubsetSampler& sampler, int iterations) {
  subsim::Rng rng(23);
  std::vector<std::uint32_t> out;
  subsim::WallTimer timer;
  std::size_t sink = 0;
  for (int i = 0; i < iterations; ++i) {
    out.clear();
    sampler.Sample(rng, &out);
    sink += out.size();
  }
  const double nanos = timer.ElapsedSeconds() * 1e9 / iterations;
  // Keep the compiler from optimizing the loop away.
  if (sink == static_cast<std::size_t>(-1)) {
    std::printf("impossible\n");
  }
  return nanos;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = subsim::ExperimentArgs::Parse(argc, argv, 0.25);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  const int iterations = args->quick ? 20000 : 100000;

  std::printf("Ablation: subset-sampler cost (ns per Sample call)\n\n");
  subsim::TablePrinter table({"shape", "h", "mu", "naive", "geometric",
                              "bucket", "sorted"});
  for (const char* shape : {"uniform-1/h", "zipf", "random"}) {
    for (const std::size_t h : {16ul, 256ul, 4096ul, 65536ul}) {
      std::vector<double> probs = MakeProbs(shape, h);

      // Large-h naive cells cost ~200us per draw; scale iterations so no
      // cell dominates the run while keeping >= 2k draws of statistics.
      const int cell_iterations =
          h >= 4096 ? std::max(2000, iterations / 20) : iterations;
      auto measure = [&](subsim::SamplerKind kind) -> std::string {
        std::vector<double> copy = probs;
        if (kind == subsim::SamplerKind::kSorted) {
          std::sort(copy.begin(), copy.end(), std::greater<>());
        }
        const auto sampler = subsim::MakeSubsetSampler(kind, std::move(copy));
        if (!sampler.ok()) {
          return "n/a";
        }
        return subsim::FormatDouble(
            NanosPerSample(**sampler, cell_iterations), 0);
      };

      double mu = 0.0;
      for (double p : probs) {
        mu += p;
      }
      table.AddRow({shape, std::to_string(h), subsim::FormatDouble(mu, 2),
                    measure(subsim::SamplerKind::kNaive),
                    measure(subsim::SamplerKind::kGeometric),
                    measure(subsim::SamplerKind::kBucket),
                    measure(subsim::SamplerKind::kSorted)});
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected: naive cost grows linearly in h; the three subset\n"
      "samplers stay ~flat (O(1 + mu)), which is Lemma 3/5 in action.\n");
  return 0;
}
