// Ablation: Linear Threshold RR generation and IM cost.
//
// The paper's Section 3.2 extension: under LT the per-step sampling cost
// is already O(1) (one live in-edge draw), so the existing generator needs
// no SUBSIM-style modification and IM runs in O(k n log n / eps^2). This
// bench validates that claim's practical face:
//   * LT RR generation throughput is degree-independent (compare per-set
//     cost against vanilla IC, whose cost scales with degree);
//   * OPIM-C under the LT generator is in the same time band as
//     OPIM-C+SUBSIM under IC.

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "subsim/algo/registry.h"
#include "subsim/benchsup/experiment.h"
#include "subsim/benchsup/reporting.h"
#include "subsim/rrset/generator_factory.h"
#include "subsim/util/string_util.h"
#include "subsim/util/timer.h"

namespace {

double TimePerSet(subsim::RrGenerator& generator, std::size_t count,
                  std::uint64_t seed) {
  subsim::Rng rng(seed);
  std::vector<subsim::NodeId> scratch;
  subsim::WallTimer timer;
  for (std::size_t i = 0; i < count; ++i) {
    generator.Generate(rng, &scratch);
  }
  return timer.ElapsedSeconds() * 1e9 / static_cast<double>(count);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = subsim::ExperimentArgs::Parse(argc, argv, 0.15);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  const std::size_t rr_count = args->quick ? 20000 : 50000;
  const std::uint32_t k = args->quick ? 20 : 100;

  std::printf(
      "Ablation: LT model — RR generation cost and IM runtime (k=%u)\n\n",
      k);
  subsim::TablePrinter table({"dataset", "avg deg", "IC vanilla ns/set",
                              "IC subsim ns/set", "LT ns/set",
                              "OPIM-C+SUBSIM(IC)", "OPIM-C(LT)"});
  for (const std::string& dataset : subsim::SelectDatasets(*args)) {
    // WC weights: valid for IC and sum to exactly 1 per node (LT-feasible).
    const auto graph = subsim::BuildDatasetGraph(
        dataset, args->scale, args->seed,
        subsim::WeightModel::kWeightedCascade, {});
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", dataset.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }

    double per_set[3] = {0, 0, 0};
    const subsim::GeneratorKind kinds[3] = {
        subsim::GeneratorKind::kVanillaIc, subsim::GeneratorKind::kSubsimIc,
        subsim::GeneratorKind::kLt};
    for (int i = 0; i < 3; ++i) {
      auto generator = subsim::MakeRrGenerator(kinds[i], *graph);
      if (!generator.ok()) {
        std::fprintf(stderr, "%s: %s\n", dataset.c_str(),
                     generator.status().ToString().c_str());
        return 1;
      }
      per_set[i] = TimePerSet(**generator, rr_count, args->seed);
    }

    const auto opim = subsim::MakeImAlgorithm("opim-c");
    if (!opim.ok()) {
      return 1;
    }
    subsim::ImOptions options;
    options.k = k;
    options.epsilon = 0.1;
    options.rng_seed = args->seed;
    options.generator = subsim::GeneratorKind::kSubsimIc;
    const auto ic_run = (*opim)->Run(*graph, options);
    options.generator = subsim::GeneratorKind::kLt;
    const auto lt_run = (*opim)->Run(*graph, options);
    if (!ic_run.ok() || !lt_run.ok()) {
      std::fprintf(stderr, "%s: IM run failed\n", dataset.c_str());
      return 1;
    }

    table.AddRow({dataset,
                  subsim::FormatDouble(graph->average_degree(), 1),
                  subsim::FormatDouble(per_set[0], 0),
                  subsim::FormatDouble(per_set[1], 0),
                  subsim::FormatDouble(per_set[2], 0),
                  subsim::HumanSeconds(ic_run->seconds),
                  subsim::HumanSeconds(lt_run->seconds)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected: vanilla IC cost grows with the average degree; SUBSIM\n"
      "and LT stay in the size-of-RR-set band, and the two IM columns sit\n"
      "within a small factor of each other — the Section 3.2 claim.\n");
  return 0;
}
