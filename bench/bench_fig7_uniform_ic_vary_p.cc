// Figure 7: running time vs influence level (Uniform IC), k = 200.
//
// The paper varies p so the average RR-set size walks the ladder
// {50, 400, 1K, 4K, 8K, 32K}; we use the scaled ladder from bench_common.
// Paper shape to reproduce: at the lowest rung HIST is already competitive
// with OPIM-C; as the average size grows, HIST's advantage expands to ~2
// orders of magnitude, and HIST+SUBSIM stays at least as fast as HIST.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "subsim/algo/registry.h"
#include "subsim/benchsup/reporting.h"
#include "subsim/util/string_util.h"

int main(int argc, char** argv) {
  const auto args = subsim::ExperimentArgs::Parse(argc, argv, 0.12);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  const std::uint32_t k = args->quick ? 50 : 200;

  std::printf("Figure 7: time vs avg RR size, Uniform IC, k=%u (seconds)\n\n",
              k);
  for (const std::string& dataset : subsim::SelectDatasets(*args)) {
    subsim::TablePrinter table({"avg RR size", "p", "OPIM-C", "HIST",
                                "HIST+SUBSIM", "HIST vs OPIM-C"});
    for (const double target : subsim_bench::RrSizeLadder(args->quick)) {
      const auto calibrated = subsim_bench::BuildCalibrated(
          dataset, args->scale, args->seed, subsim::WeightModel::kUniformIc,
          target);
      if (!calibrated.ok()) {
        std::fprintf(stderr, "%s: %s\n", dataset.c_str(),
                     calibrated.status().ToString().c_str());
        return 1;
      }
      if (calibrated->saturated) {
        std::printf("(%s: target %.0f saturates the graph; skipping)\n",
                    dataset.c_str(), target);
        continue;
      }

      subsim::ImOptions options;
      options.k = k;
      options.epsilon = 0.1;
      options.rng_seed = args->seed;

      const auto opim = subsim::MakeImAlgorithm("opim-c");
      const auto hist = subsim::MakeImAlgorithm("hist");
      if (!opim.ok() || !hist.ok()) {
        return 1;
      }
      const auto opim_result = (*opim)->Run(calibrated->graph, options);
      const auto hist_result = (*hist)->Run(calibrated->graph, options);
      options.generator = subsim::GeneratorKind::kSubsimIc;
      const auto hist_subsim_result =
          (*hist)->Run(calibrated->graph, options);
      if (!opim_result.ok() || !hist_result.ok() ||
          !hist_subsim_result.ok()) {
        std::fprintf(stderr, "%s target=%.0f: run failed\n",
                     dataset.c_str(), target);
        return 1;
      }

      table.AddRow({subsim::FormatDouble(calibrated->achieved_avg_rr_size, 0),
                    subsim::FormatDouble(calibrated->parameter, 4),
                    subsim::FormatDouble(opim_result->seconds, 3),
                    subsim::FormatDouble(hist_result->seconds, 3),
                    subsim::FormatDouble(hist_subsim_result->seconds, 3),
                    subsim::FormatSpeedup(opim_result->seconds,
                                          hist_result->seconds)});
    }
    std::printf("--- %s ---\n", dataset.c_str());
    table.Print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper): the HIST-vs-OPIM-C speedup grows\n"
      "monotonically with the average RR size (competitive at ~50, up to\n"
      "two orders of magnitude at the top rung).\n");
  return 0;
}
