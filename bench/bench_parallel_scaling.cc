// Parallel fill scaling: the thread-invariance contract plus the payoff.
//
// One FillCollection request is timed at 1/2/4/8 threads on the WC
// benchmark graph. Because every RR set is a pure function of
// (base_seed, set_index), every thread count must produce the same
// ordered sample stream — this binary re-checks that byte for byte before
// trusting any timing, so a scheduler regression can never masquerade as
// a speedup.
//
// Pass criteria (checked, non-zero exit on failure):
//   - every thread count's stream is byte-identical to the 1-thread run;
//   - >= 3x fill speedup at 8 threads (enforced only when the machine
//     actually has >= 8 hardware threads; reported otherwise).
//
// --metrics-json=FILE additionally dumps `bench.speedup_t<N>` gauges and
// the fill counters in the standard observability schema.

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "subsim/benchsup/reporting.h"
#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"
#include "subsim/rrset/parallel_fill.h"
#include "subsim/util/threading.h"
#include "subsim/util/timer.h"

namespace {

subsim::Result<subsim::Graph> BuildBenchGraph(std::uint64_t seed) {
  auto list = subsim::GenerateBarabasiAlbert(20000, 4, true, seed);
  if (!list.ok()) {
    return list.status();
  }
  if (const subsim::Status status = subsim::AssignWeights(
          subsim::WeightModel::kWeightedCascade, {}, &list.value());
      !status.ok()) {
    return status;
  }
  return subsim::BuildGraph(std::move(list).value());
}

bool Identical(const subsim::RrCollection& a, const subsim::RrCollection& b) {
  if (a.num_sets() != b.num_sets() || a.total_nodes() != b.total_nodes()) {
    return false;
  }
  for (subsim::RrId id = 0; id < a.num_sets(); ++id) {
    const auto sa = a.View(id).ToVector();
    const auto sb = b.View(id).ToVector();
    if (sa.size() != sb.size() ||
        !std::equal(sa.begin(), sa.end(), sb.begin())) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = subsim::ExperimentArgs::Parse(argc, argv, 1.0);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  subsim_bench::BenchObs obs(*args);

  auto graph = BuildBenchGraph(args->seed);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const std::size_t count = args->quick ? 20000 : 100000;
  const int reps = args->quick ? 1 : 3;
  const unsigned hardware = subsim::ResolveNumThreads(0);

  std::printf(
      "Parallel fill scaling: BA n=%u WC, %zu SUBSIM-IC RR sets, "
      "seed=%llu, %u hardware threads\n\n",
      graph->num_nodes(), count,
      static_cast<unsigned long long>(args->seed), hardware);

  auto fill = [&](unsigned threads, subsim::RrCollection* out) {
    subsim::RngStream rng = subsim::MakeRngStream(args->seed, 1);
    subsim::FillRequest request;
    request.kind = subsim::GeneratorKind::kSubsimIc;
    request.graph = &*graph;
    request.rng = &rng;
    request.count = count;
    request.num_threads = threads;
    request.obs = obs.Context();
    return subsim::FillCollection(request, out);
  };

  subsim::TablePrinter table({"threads", "best s", "sets/s", "speedup",
                              "identical"});
  subsim::RrCollection reference(graph->num_nodes());
  double base_seconds = 0.0;
  double speedup_at_8 = 0.0;
  bool all_identical = true;

  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    double best = 0.0;
    subsim::RrCollection collection(graph->num_nodes());
    for (int rep = 0; rep < reps; ++rep) {
      subsim::RrCollection fresh(graph->num_nodes());
      const subsim::WallTimer timer;
      if (const subsim::Status status = fill(threads, &fresh); !status.ok()) {
        std::fprintf(stderr, "fill t=%u: %s\n", threads,
                     status.ToString().c_str());
        return 1;
      }
      const double seconds = timer.ElapsedSeconds();
      if (rep == 0 || seconds < best) {
        best = seconds;
      }
      collection = std::move(fresh);
    }

    bool identical = true;
    if (threads == 1) {
      reference = std::move(collection);
      base_seconds = best;
    } else {
      identical = Identical(reference, collection);
      all_identical = all_identical && identical;
    }
    const double speedup = base_seconds / best;
    if (threads == 8) {
      speedup_at_8 = speedup;
    }
    if (obs.enabled()) {
      obs.Context()
          .metrics->Gauge("bench.speedup_t" + std::to_string(threads))
          .Set(speedup);
    }
    table.AddRow({std::to_string(threads),
                  subsim::FormatDouble(best, 3),
                  subsim::FormatDouble(static_cast<double>(count) / best, 0),
                  subsim::FormatDouble(speedup, 2),
                  identical ? "yes" : "NO"});
  }
  table.Print(std::cout);

  if (!obs.Write()) {
    return 1;
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "\nFAIL: sample streams differ across thread counts\n");
    return 1;
  }
  std::printf("\nall thread counts byte-identical to the 1-thread stream\n");

  if (hardware >= 8 && speedup_at_8 < 3.0) {
    std::fprintf(stderr, "FAIL: speedup at 8 threads %.2fx < 3x\n",
                 speedup_at_8);
    return 1;
  }
  if (hardware < 8) {
    std::printf("speedup bar skipped: only %u hardware threads\n", hardware);
  } else {
    std::printf("speedup at 8 threads: %.2fx (bar: 3x)\n", speedup_at_8);
  }
  return 0;
}
