#ifndef SUBSIM_BENCH_BENCH_COMMON_H_
#define SUBSIM_BENCH_BENCH_COMMON_H_

// Shared helpers for the figure-reproduction binaries: influence-level
// calibration on top of the dataset stand-ins.
//
// The paper's theta_50 ... theta_32K / p_50 ... p_32K settings target
// absolute average RR-set sizes on million-node graphs. At bench scale the
// same absolute targets would engulf the whole graph, so the suite uses a
// scaled ladder (kRrSizeLadder) and reports which rung plays the role of
// which paper setting in EXPERIMENTS.md.

#include <cstdio>
#include <string>
#include <vector>

#include "subsim/benchsup/calibration.h"
#include "subsim/benchsup/datasets.h"
#include "subsim/benchsup/experiment.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"
#include "subsim/obs/metrics.h"
#include "subsim/obs/obs_context.h"
#include "subsim/obs/obs_json.h"
#include "subsim/obs/phase_tracer.h"

namespace subsim_bench {

/// Per-binary observability hook: every bench that constructs one of
/// these and attaches `Context()` to its `ImOptions` emits the same
/// metrics JSON schema as `subsim_cli run --metrics-json` (see
/// docs/observability.md). Disabled (all no-ops) unless the user passed
/// --metrics-json=FILE.
class BenchObs {
 public:
  explicit BenchObs(const subsim::ExperimentArgs& args)
      : path_(args.metrics_json), tracer_(/*max_spans=*/8192, &metrics_) {}

  bool enabled() const { return !path_.empty(); }

  /// ObsContext to drop into ImOptions (empty when disabled, so the
  /// instrumentation handles stay no-ops and the timed loops are clean).
  subsim::ObsContext Context() {
    return enabled() ? subsim::ObsContext{&metrics_, &tracer_}
                     : subsim::ObsContext{};
  }

  /// Writes the snapshot to the --metrics-json path ("-" = stdout).
  /// Returns false (after printing the error) if the file cannot open.
  bool Write() const {
    if (!enabled()) {
      return true;
    }
    const std::string json = subsim::ObsJson(metrics_.Snapshot(), &tracer_);
    if (path_ == "-") {
      std::fputs(json.c_str(), stdout);
      return true;
    }
    std::FILE* out = std::fopen(path_.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path_.c_str());
      return false;
    }
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::fprintf(stderr, "metrics: %s\n", path_.c_str());
    return true;
  }

 private:
  const std::string path_;
  subsim::MetricsRegistry metrics_;  // declared before the tracer using it
  subsim::PhaseTracer tracer_;
};

/// Average-RR-size targets standing in for the paper's
/// {50, 400, 1K, 4K, 8K, 32K} ladder at bench scale.
inline std::vector<double> RrSizeLadder(bool quick) {
  return quick ? std::vector<double>{50.0, 400.0}
               : std::vector<double>{50.0, 200.0, 400.0, 1000.0};
}

/// The "high influence" rung used by Figures 3-5, standing in for the
/// paper's theta_4K: ~3-6% of the graph per RR set at bench scale. The
/// 1000-rung (Figures 6/7's ladder top) is heavier than single-core
/// defaults allow for the k=500 sweeps of Figures 4/5.
inline double HighInfluenceTarget(bool quick) { return quick ? 200.0 : 400.0; }

struct CalibratedGraph {
  subsim::Graph graph;
  double parameter = 0.0;
  double achieved_avg_rr_size = 0.0;
  bool saturated = false;
};

/// Builds `dataset` at `scale` and calibrates the influence parameter
/// (WC-variant theta or Uniform-IC p) so SUBSIM-generated RR sets average
/// `target_avg_rr_size` nodes.
inline subsim::Result<CalibratedGraph> BuildCalibrated(
    const std::string& dataset, double scale, std::uint64_t seed,
    subsim::WeightModel model, double target_avg_rr_size) {
  const auto spec = subsim::FindDataset(dataset);
  if (!spec.ok()) {
    return spec.status();
  }
  const auto edges = subsim::MakeDataset(*spec, scale, seed);
  if (!edges.ok()) {
    return edges.status();
  }

  subsim::Result<subsim::CalibrationResult> calibration =
      model == subsim::WeightModel::kWcVariant
          ? subsim::CalibrateWcVariantTheta(*edges, target_avg_rr_size, seed)
          : subsim::CalibrateUniformP(*edges, target_avg_rr_size, seed);
  if (!calibration.ok()) {
    return calibration.status();
  }

  subsim::WeightModelParams params;
  if (model == subsim::WeightModel::kWcVariant) {
    params.wc_variant_theta = calibration->parameter;
  } else {
    params.uniform_p = calibration->parameter;
  }
  subsim::EdgeList weighted = *edges;
  if (const subsim::Status status =
          subsim::AssignWeights(model, params, &weighted);
      !status.ok()) {
    return status;
  }
  auto graph = subsim::BuildGraph(std::move(weighted));
  if (!graph.ok()) {
    return graph.status();
  }

  CalibratedGraph result{std::move(graph).value(), calibration->parameter,
                         calibration->achieved_avg_size,
                         calibration->saturated};
  return result;
}

}  // namespace subsim_bench

#endif  // SUBSIM_BENCH_BENCH_COMMON_H_
