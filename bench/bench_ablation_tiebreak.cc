// Ablation: Algorithm 6's out-degree tie-break vs plain Algorithm 1 for
// sentinel selection (DESIGN.md "revised greedy" design choice).
//
// The paper argues that among equally-covering candidates, picking the one
// with the larger out-degree yields sentinels that truncate more future RR
// sets. This ablation isolates exactly that choice: select b sentinels
// from the same RR collection with and without the tie-break, then measure
// the hit rate and the average truncated RR-set size on fresh samples.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "subsim/benchsup/reporting.h"
#include "subsim/coverage/max_coverage.h"
#include "subsim/rrset/subsim_ic_generator.h"
#include "subsim/util/string_util.h"

namespace {

struct TruncationStats {
  double hit_rate = 0.0;
  double avg_size = 0.0;
};

TruncationStats MeasureTruncation(const subsim::Graph& graph,
                                  const std::vector<subsim::NodeId>& sentinels,
                                  std::size_t samples, std::uint64_t seed) {
  subsim::SubsimIcGenerator generator(graph);
  generator.SetSentinels(sentinels);
  subsim::Rng rng(seed);
  std::vector<subsim::NodeId> scratch;
  std::uint64_t hits = 0;
  std::uint64_t total_nodes = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    hits += generator.Generate(rng, &scratch) ? 1 : 0;
    total_nodes += scratch.size();
  }
  return {static_cast<double>(hits) / samples,
          static_cast<double>(total_nodes) / samples};
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = subsim::ExperimentArgs::Parse(argc, argv, 0.12);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  const std::uint32_t b = 16;       // sentinel budget under comparison
  const std::size_t pool = 2000;    // RR sets used for selection
  const std::size_t samples = args->quick ? 2000 : 10000;
  const double target = subsim_bench::HighInfluenceTarget(args->quick);

  std::printf(
      "Ablation: out-degree tie-break (Algorithm 6) vs plain greedy "
      "(Algorithm 1)\nSentinels: b=%u, measured on %zu fresh RR sets\n\n",
      b, samples);
  subsim::TablePrinter table({"dataset", "alg1 hit%", "alg6 hit%",
                              "alg1 avg size", "alg6 avg size",
                              "size advantage"});
  for (const std::string& dataset : subsim::SelectDatasets(*args)) {
    const auto calibrated = subsim_bench::BuildCalibrated(
        dataset, args->scale, args->seed, subsim::WeightModel::kWcVariant,
        target);
    if (!calibrated.ok()) {
      std::fprintf(stderr, "%s: %s\n", dataset.c_str(),
                   calibrated.status().ToString().c_str());
      return 1;
    }
    const subsim::Graph& graph = calibrated->graph;

    subsim::RrCollection collection(graph.num_nodes());
    {
      subsim::SubsimIcGenerator generator(graph);
      subsim::Rng rng(args->seed);
      generator.Fill(rng, pool, &collection);
    }

    subsim::CoverageGreedyOptions plain;
    plain.k = b;
    subsim::CoverageGreedyOptions revised = plain;
    revised.tie_break_by_out_degree = true;
    revised.graph = &graph;

    const auto plain_greedy = RunCoverageGreedy(collection, plain);
    const auto revised_greedy = RunCoverageGreedy(collection, revised);

    const TruncationStats alg1 = MeasureTruncation(
        graph, plain_greedy.seeds, samples, args->seed + 1);
    const TruncationStats alg6 = MeasureTruncation(
        graph, revised_greedy.seeds, samples, args->seed + 1);

    table.AddRow({dataset, subsim::FormatDouble(100.0 * alg1.hit_rate, 1),
                  subsim::FormatDouble(100.0 * alg6.hit_rate, 1),
                  subsim::FormatDouble(alg1.avg_size, 1),
                  subsim::FormatDouble(alg6.avg_size, 1),
                  subsim::FormatSpeedup(alg1.avg_size, alg6.avg_size)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected: Algorithm 6's sentinels are hit at least as often and\n"
      "truncate RR sets at least as hard (ties are common under WC-style\n"
      "coverage, so the tie-break has real freedom to act).\n");
  return 0;
}
