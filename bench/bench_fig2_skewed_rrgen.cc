// Figure 2: RR-set generation cost under skewed edge-weight distributions
// (exponential and Weibull, per-node normalized), vanilla vs SUBSIM.
//
// Paper shape to reproduce: SUBSIM beats the vanilla generator on every
// dataset — up to 38x under exponential and 25x under Weibull — because
// the vanilla loop flips one coin per in-edge while the subset samplers
// pay only O(1 + mu) per activated node. The paper generates 2^10 x 1000
// RR sets; we default to a scaled count (override with --quick for less).

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "subsim/benchsup/datasets.h"
#include "subsim/benchsup/experiment.h"
#include "subsim/benchsup/reporting.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/rrset/subsim_ic_generator.h"
#include "subsim/rrset/vanilla_ic_generator.h"
#include "subsim/util/string_util.h"
#include "subsim/util/timer.h"

namespace {

double TimeGeneration(subsim::RrGenerator& generator, std::size_t count,
                      std::uint64_t seed) {
  subsim::Rng rng(seed);
  std::vector<subsim::NodeId> scratch;
  subsim::WallTimer timer;
  for (std::size_t i = 0; i < count; ++i) {
    generator.Generate(rng, &scratch);
  }
  return timer.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = subsim::ExperimentArgs::Parse(argc, argv, 0.25);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  const std::size_t rr_count = args->quick ? 20000 : 50000;

  std::printf(
      "Figure 2: skewed-distribution RR generation cost (%zu RR sets)\n\n",
      rr_count);
  for (const char* distribution : {"exponential", "weibull"}) {
    const subsim::WeightModel model =
        std::string(distribution) == "exponential"
            ? subsim::WeightModel::kExponential
            : subsim::WeightModel::kWeibull;

    subsim::TablePrinter table({"dataset", "vanilla", "SUBSIM(bucket)",
                                "SUBSIM(sorted)", "bucket speedup",
                                "sorted speedup"});
    for (const std::string& dataset : subsim::SelectDatasets(*args)) {
      subsim::WeightModelParams params;
      params.seed = args->seed;

      // Two builds of the same weighted graph: natural order for the
      // bucket-indexed sampler, weight-sorted for the index-free one.
      const auto graph = subsim::BuildDatasetGraph(
          dataset, args->scale, args->seed, model, params,
          /*sort_in_edges=*/false);
      const auto sorted_graph = subsim::BuildDatasetGraph(
          dataset, args->scale, args->seed, model, params,
          /*sort_in_edges=*/true);
      if (!graph.ok() || !sorted_graph.ok()) {
        std::fprintf(stderr, "%s: build failed\n", dataset.c_str());
        return 1;
      }

      subsim::VanillaIcGenerator vanilla(*graph);
      subsim::SubsimIcGenerator bucket(
          *graph, subsim::GeneralIcStrategy::kBucketIndexed);
      subsim::SubsimIcGenerator sorted(
          *sorted_graph, subsim::GeneralIcStrategy::kSortedIndexFree);

      const double vanilla_s = TimeGeneration(vanilla, rr_count, args->seed);
      const double bucket_s = TimeGeneration(bucket, rr_count, args->seed);
      const double sorted_s = TimeGeneration(sorted, rr_count, args->seed);

      table.AddRow({dataset, subsim::HumanSeconds(vanilla_s),
                    subsim::HumanSeconds(bucket_s),
                    subsim::HumanSeconds(sorted_s),
                    subsim::FormatSpeedup(vanilla_s, bucket_s),
                    subsim::FormatSpeedup(vanilla_s, sorted_s)});
    }
    std::printf("--- %s distribution ---\n", distribution);
    table.Print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper): SUBSIM wins on every dataset; the gap\n"
      "roughly tracks the degree skew (paper: up to 38x exponential,\n"
      "25x Weibull). The indexed bucket sampler can fall to ~parity with\n"
      "vanilla on flat-degree graphs — the paper's own caveat about index\n"
      "overheads (Section 3.3) and its motivation for the index-free\n"
      "sorted variant, which stays ahead everywhere.\n");
  return 0;
}
