// Figure 3: RR-set statistics of HIST vs OPIM-C in the high-influence
// WC-variant setting.
//   (a) number of RR sets generated in HIST's sentinel-selection phase vs
//       the number OPIM-C generates in total (paper: ~2 orders less);
//   (b) average RR-set size of HIST vs OPIM-C (paper: up to 700x smaller).

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "subsim/algo/registry.h"
#include "subsim/benchsup/reporting.h"
#include "subsim/util/string_util.h"

int main(int argc, char** argv) {
  const auto args = subsim::ExperimentArgs::Parse(argc, argv, 0.12);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  const std::uint32_t k = args->quick ? 50 : 200;
  const double target = subsim_bench::HighInfluenceTarget(args->quick);

  std::printf(
      "Figure 3: RR-set statistics, WC variant @ avg RR size ~%.0f, "
      "k=%u\n\n",
      target, k);
  subsim::TablePrinter table({"dataset", "OPIM-C #RR", "HIST ph1 #RR",
                              "ratio", "OPIM-C avg size", "HIST avg size",
                              "size reduction"});
  for (const std::string& dataset : subsim::SelectDatasets(*args)) {
    const auto calibrated = subsim_bench::BuildCalibrated(
        dataset, args->scale, args->seed, subsim::WeightModel::kWcVariant,
        target);
    if (!calibrated.ok()) {
      std::fprintf(stderr, "%s: %s\n", dataset.c_str(),
                   calibrated.status().ToString().c_str());
      return 1;
    }

    subsim::ImOptions options;
    options.k = k;
    options.epsilon = 0.1;
    options.rng_seed = args->seed;

    const auto opim = subsim::MakeImAlgorithm("opim-c");
    const auto hist = subsim::MakeImAlgorithm("hist");
    if (!opim.ok() || !hist.ok()) {
      return 1;
    }
    const auto opim_result = (*opim)->Run(calibrated->graph, options);
    const auto hist_result = (*hist)->Run(calibrated->graph, options);
    if (!opim_result.ok() || !hist_result.ok()) {
      std::fprintf(stderr, "%s: run failed\n", dataset.c_str());
      return 1;
    }

    const double rr_ratio =
        hist_result->phase1_rr_sets > 0
            ? static_cast<double>(opim_result->num_rr_sets) /
                  static_cast<double>(hist_result->phase1_rr_sets)
            : 0.0;
    const double size_reduction =
        hist_result->average_rr_size() > 0.0
            ? opim_result->average_rr_size() / hist_result->average_rr_size()
            : 0.0;
    table.AddRow({dataset, std::to_string(opim_result->num_rr_sets),
                  std::to_string(hist_result->phase1_rr_sets),
                  subsim::FormatDouble(rr_ratio, 1) + "x",
                  subsim::FormatDouble(opim_result->average_rr_size(), 1),
                  subsim::FormatDouble(hist_result->average_rr_size(), 1),
                  subsim::FormatDouble(size_reduction, 1) + "x"});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper): phase-1 needs far fewer RR sets than\n"
      "OPIM-C (loose sentinel target), and hit-and-stop truncation cuts\n"
      "the average RR size by orders of magnitude (up to 700x).\n"
      "Scale note: on the flat-degree undirected stand-ins the phase-1\n"
      "verification (Lemma 6's theta') converges later at bench scale, so\n"
      "the #RR advantage shows mainly on the hub-dominated datasets; the\n"
      "size reduction — the driver of Figures 4/6/7 — holds everywhere.\n");
  return 0;
}
