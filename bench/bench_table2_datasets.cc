// Table 2: summary of datasets.
//
// Paper: Pokec (directed, 1.6M/30.6M), Orkut (undirected, 3.1M/117.2M),
// Twitter (directed, 41.7M/1.5B), Friendster (undirected, 65.6M/1.8B).
// This binary prints the synthetic stand-ins actually used by the bench
// suite at the requested --scale, alongside the originals they model.

#include <cstdio>
#include <iostream>

#include "subsim/benchsup/datasets.h"
#include "subsim/benchsup/experiment.h"
#include "subsim/benchsup/reporting.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/graph_stats.h"
#include "subsim/util/string_util.h"

int main(int argc, char** argv) {
  const auto args = subsim::ExperimentArgs::Parse(argc, argv, 0.25);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }

  std::printf("Table 2: summary of datasets (stand-ins at scale %.2f)\n\n",
              args->scale);
  subsim::TablePrinter table({"dataset", "stands in for", "type", "n", "m",
                              "avg deg", "max in-deg"});
  for (const subsim::DatasetSpec& spec : subsim::StandardDatasets()) {
    const auto edges = subsim::MakeDataset(spec, args->scale, args->seed);
    if (!edges.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   edges.status().ToString().c_str());
      return 1;
    }
    const auto graph = subsim::BuildGraph(*edges);
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    const subsim::GraphStats stats = subsim::ComputeGraphStats(*graph);
    table.AddRow({spec.name, spec.stands_in_for,
                  spec.undirected ? "undirected" : "directed",
                  subsim::HumanCount(stats.num_nodes),
                  subsim::HumanCount(stats.num_edges),
                  subsim::FormatDouble(stats.average_degree, 1),
                  subsim::HumanCount(stats.max_in_degree)});
  }
  table.Print(std::cout);
  std::printf(
      "\nShape notes: directed stand-ins use a power-law configuration\n"
      "model (Twitter-like hubs); undirected ones use preferential\n"
      "attachment. Densities (m/n) track the directed representation of\n"
      "the originals.\n");
  return 0;
}
