// Ablation: guaranteed RIS algorithms vs degree heuristics — the
// introduction's motivating comparison ("most algorithms rely on
// heuristics ... but fail to provide the desired approximation guarantee").
//
// For each dataset under WC, select k seeds with OPIM-C+SUBSIM and with the
// three degree heuristics, then score all four by forward Monte-Carlo
// spread. Heuristics are orders of magnitude faster but give up spread —
// how much depends on how degree-aligned influence is.

#include <cstdio>
#include <iostream>

#include "subsim/algo/registry.h"
#include "subsim/benchsup/experiment.h"
#include "subsim/benchsup/reporting.h"
#include "subsim/eval/spread_estimator.h"
#include "subsim/util/string_util.h"

int main(int argc, char** argv) {
  const auto args = subsim::ExperimentArgs::Parse(argc, argv, 0.15);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  const std::uint32_t k = args->quick ? 20 : 50;
  const std::uint64_t sims = args->quick ? 1000 : 5000;

  std::printf(
      "Ablation: certified greedy vs degree heuristics (WC, k=%u)\n\n", k);
  for (const std::string& dataset : subsim::SelectDatasets(*args)) {
    const auto graph = subsim::BuildDatasetGraph(
        dataset, args->scale, args->seed,
        subsim::WeightModel::kWeightedCascade, {});
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", dataset.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    subsim::SpreadEstimator estimator(
        *graph, subsim::CascadeModel::kIndependentCascade);

    subsim::TablePrinter table(
        {"algorithm", "time", "MC spread", "spread vs certified"});
    double certified_spread = 0.0;
    for (const char* name :
         {"opim-c", "degree-discount", "single-discount", "max-degree"}) {
      const auto algorithm = subsim::MakeImAlgorithm(name);
      if (!algorithm.ok()) {
        return 1;
      }
      subsim::ImOptions options;
      options.k = k;
      options.epsilon = 0.1;
      options.rng_seed = args->seed;
      options.generator = subsim::GeneratorKind::kSubsimIc;
      const auto result = (*algorithm)->Run(*graph, options);
      if (!result.ok()) {
        std::fprintf(stderr, "%s: %s\n", name,
                     result.status().ToString().c_str());
        return 1;
      }
      subsim::Rng rng(args->seed + 1);
      const double spread =
          estimator.Estimate(result->seeds, sims, rng).spread;
      if (std::string(name) == "opim-c") {
        certified_spread = spread;
      }
      table.AddRow({name, subsim::HumanSeconds(result->seconds),
                    subsim::FormatDouble(spread, 1),
                    subsim::FormatDouble(
                        certified_spread > 0 ? 100.0 * spread /
                                                   certified_spread
                                             : 100.0,
                        1) +
                        "%"});
    }
    std::printf("--- %s ---\n", dataset.c_str());
    table.Print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Expected: heuristics are fastest and can even match the greedy on\n"
      "strongly degree-aligned graphs — but they carry no guarantee, and\n"
      "on degree-misaligned instances (or mistuned discounts) they cede\n"
      "a substantial fraction of the spread. The greedy's value is the\n"
      "certified floor, not winning every instance.\n");
  return 0;
}
