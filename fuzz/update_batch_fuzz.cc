// Fuzz harness for the graph-update wire format — the batch text
// `POST /v1/update_graph` and the CLI `update` subcommand accept from
// clients. Arbitrary bytes may yield an error Status but must never crash,
// trip a sanitizer, or allocate unboundedly (kMaxUpdateOps). Batches that
// parse are additionally applied to a small fixed graph: ApplyEdgeUpdates
// must either reject them cleanly or produce a well-formed successor
// snapshot whose dirty frontier is sorted, unique, and in range.
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>

#include "subsim/graph/graph.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/graph_update.h"
#include "subsim/graph/types.h"

namespace {

// 6-node fixture with a few edges; built once per process.
const subsim::Graph& FixtureGraph() {
  static const subsim::Graph* graph = [] {
    subsim::EdgeList list;
    list.num_nodes = 6;
    list.edges = {{0, 1, 0.5}, {1, 2, 0.5}, {2, 3, 0.25},
                  {3, 4, 0.25}, {4, 5, 0.5}, {5, 0, 0.5},
                  {0, 3, 0.125}};
    subsim::Result<subsim::Graph> built =
        subsim::BuildGraph(std::move(list));
    if (!built.ok()) {
      __builtin_trap();
    }
    return new subsim::Graph(std::move(built).value());
  }();
  return *graph;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  subsim::Result<subsim::GraphUpdateRequest> request =
      subsim::ParseGraphUpdateRequest(text);
  if (!request.ok()) {
    return 0;
  }
  if (request->graph.empty() || request->batch.ops.empty() ||
      request->batch.ops.size() > subsim::kMaxUpdateOps) {
    __builtin_trap();  // parser contract: non-empty name, 1..cap ops
  }
  const subsim::Graph& graph = FixtureGraph();
  subsim::Result<subsim::EdgeUpdateResult> updated =
      subsim::ApplyEdgeUpdates(graph, request->batch);
  if (!updated.ok()) {
    return 0;  // clean rejection (bad endpoints, missing edges, ...)
  }
  // Successor-snapshot invariants.
  if (updated->graph.num_nodes() != graph.num_nodes()) {
    __builtin_trap();
  }
  const subsim::NodeId n = graph.num_nodes();
  subsim::NodeId previous = 0;
  bool first = true;
  for (const subsim::NodeId v : updated->dirty_nodes) {
    if (v >= n || (!first && v <= previous)) {
      __builtin_trap();  // dirty frontier must be sorted, unique, in range
    }
    previous = v;
    first = false;
  }
  return 0;
}
