// Minimal libFuzzer-compatible driver for toolchains without
// -fsanitize=fuzzer (gcc): replays each file named on the command line
// through LLVMFuzzerTestOneInput once and exits. This is what the ctest
// corpus smoke runs on every build; actual coverage-guided fuzzing needs
// the clang build (see docs/static_analysis.md).
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <input-file>...\n"
                 "(standalone replay driver; build with clang and "
                 "SUBSIM_FUZZ=ON for coverage-guided fuzzing)\n",
                 argv[0]);
    return 0;
  }
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    ++replayed;
  }
  std::fprintf(stderr, "replayed %d input(s), no crashes\n", replayed);
  return 0;
}
