// Fuzz harness for SelectSeedsQuery text parsing — the line format the
// serving layer accepts from clients (`graph=dblp algo=opim-c k=50 ...`).
// Arbitrary bytes may yield an error Status but must never crash or trip a
// sanitizer; accepted queries must additionally survive being re-rendered
// through the JSON formatter (escaping of hostile graph/algo names).
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "subsim/serve/query.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view line(reinterpret_cast<const char*>(data), size);
  subsim::Result<subsim::SelectSeedsQuery> query =
      subsim::ParseSelectSeedsQuery(line);
  if (query.ok()) {
    subsim::QueryResponse response;
    response.query = *query;
    response.status = subsim::Status::Ok();
    const std::string json = subsim::FormatQueryResponseJson(response);
    if (json.empty()) {
      __builtin_trap();  // the formatter must always produce an object
    }
  }
  return 0;
}
