// Fuzz harness for the untrusted graph-ingestion surface: the binary
// edge-list snapshot parser (header fields drive allocations) and the SNAP
// text parser (field splitting, integer/double parsing). The contract under
// fuzzing: arbitrary bytes may yield an error Status but must never crash,
// hang, overflow an allocation, or trip a sanitizer.
//
// Built two ways (fuzz/CMakeLists.txt): with clang as a libFuzzer binary
// (-fsanitize=fuzzer), elsewhere linked against standalone_driver.cc which
// replays corpus files passed on the command line — the form the ctest
// corpus smoke uses.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "subsim/graph/graph_io.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  {
    std::istringstream in(bytes);
    // SUBSIM-NOLINT-NEXTLINE(status-discarded): fuzzing for crashes, not outcomes
    (void)subsim::ParseEdgeListBinary(in, "<fuzz>");
  }
  {
    std::istringstream in(bytes);
    subsim::EdgeListReadOptions options;
    // Steer both parser modes from the input so the corpus covers them.
    options.undirected = (size % 2) != 0;
    options.read_weights = (size % 3) != 0;
    // SUBSIM-NOLINT-NEXTLINE(status-discarded): fuzzing for crashes, not outcomes
    (void)subsim::ParseEdgeListText(in, options, "<fuzz>");
  }
  return 0;
}
