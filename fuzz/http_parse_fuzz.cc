// Fuzz harness for the incremental HTTP/1.1 request parser — the only
// code that touches bytes straight off a socket. Arbitrary input may
// produce a parse error but must never crash, trip a sanitizer, or break
// the parser's own invariants. The first input byte picks a chunking
// pattern so the same payload is exercised through different Consume()
// boundaries (one-shot, byte-at-a-time, mixed), since incremental parsers
// love to hide bugs exactly at chunk seams.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "subsim/net/http.h"

namespace {

using subsim::HttpRequestParser;

void CheckInvariants(const HttpRequestParser& parser) {
  switch (parser.state()) {
    case HttpRequestParser::State::kComplete: {
      const subsim::HttpRequest& request = parser.request();
      // A complete request always carries a validated request line.
      if (request.method.empty() || request.target.empty() ||
          request.version.empty()) {
        __builtin_trap();
      }
      break;
    }
    case HttpRequestParser::State::kError:
      if (parser.error().ok()) {
        __builtin_trap();  // kError must come with an explanation
      }
      break;
    case HttpRequestParser::State::kNeedMore:
      break;
  }
}

void Feed(HttpRequestParser* parser, std::string_view payload,
          std::size_t chunk) {
  while (!payload.empty() &&
         parser->state() == HttpRequestParser::State::kNeedMore) {
    const std::size_t n = std::min(chunk, payload.size());
    (void)parser->Consume(payload.substr(0, n));
    payload.remove_prefix(n);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) {
    return 0;
  }
  // Small limits so the fuzzer reaches the limit-handling paths with
  // short inputs instead of needing 16KB of head first.
  HttpRequestParser::Limits limits;
  limits.max_head_bytes = 512;
  limits.max_body_bytes = 256;

  const std::uint8_t mode = data[0];
  const std::string_view payload(reinterpret_cast<const char*>(data + 1),
                                 size - 1);

  HttpRequestParser parser(limits);
  const std::size_t chunk =
      mode == 0 ? payload.size() + 1 : (mode % 7) + 1;  // one-shot or tiny
  Feed(&parser, payload, chunk);
  CheckInvariants(parser);

  // Chunking must never change the outcome: replay one-shot and compare.
  HttpRequestParser oneshot(limits);
  (void)oneshot.Consume(payload);
  CheckInvariants(oneshot);
  if (oneshot.state() != parser.state()) {
    __builtin_trap();
  }
  if (oneshot.state() == HttpRequestParser::State::kComplete &&
      (oneshot.request().method != parser.request().method ||
       oneshot.request().target != parser.request().target ||
       oneshot.request().body != parser.request().body)) {
    __builtin_trap();
  }

  // A completed parse hands back pipelined bytes and resets cleanly.
  if (parser.state() == HttpRequestParser::State::kComplete) {
    const std::string rest = parser.TakeRemainder();
    parser.Reset();
    Feed(&parser, rest, chunk);
    CheckInvariants(parser);
  }
  return 0;
}
