// Negative-compile fixture: acquires a capability on one path and returns
// without releasing it. Clang's -Wthread-safety must reject this.
#include <cstdint>

#include "subsim/util/mutex.h"
#include "subsim/util/thread_annotations.h"

namespace {

class Leaky {
 public:
  bool TakeIfPositive(std::int64_t delta) {
    mu_.Lock();
    if (delta > 0) {
      value_ += delta;
      return true;  // lock still held on this path: -Wthread-safety error
    }
    mu_.Unlock();
    return false;
  }

 private:
  subsim::Mutex mu_;
  std::int64_t value_ SUBSIM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Leaky leaky;
  return leaky.TakeIfPositive(1) ? 0 : 1;
}
