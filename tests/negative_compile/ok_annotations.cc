// Positive control for the thread-safety negative-compile suite: a
// correctly annotated, correctly locked class. Must compile under every
// compiler, including clang with -Wthread-safety promoted to an error —
// proving the bad_*.cc failures come from the seeded violations, not from
// the harness flags.
#include <cstdint>

#include "subsim/util/mutex.h"
#include "subsim/util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() SUBSIM_EXCLUDES(mu_) {
    const subsim::MutexLock lock(mu_);
    ++value_;
  }

  std::uint64_t Get() const SUBSIM_EXCLUDES(mu_) {
    const subsim::MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable subsim::Mutex mu_;
  std::uint64_t value_ SUBSIM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return static_cast<int>(counter.Get() - 1);
}
