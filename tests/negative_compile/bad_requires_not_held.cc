// Negative-compile fixture: calls a SUBSIM_REQUIRES(mu_) method without
// holding the mutex. Clang's -Wthread-safety must reject this.
#include <cstdint>

#include "subsim/util/mutex.h"
#include "subsim/util/thread_annotations.h"

namespace {

class Store {
 public:
  std::uint64_t SizeLocked() const SUBSIM_REQUIRES(mu_) { return size_; }

  std::uint64_t Size() const {
    return SizeLocked();  // precondition not met: -Wthread-safety error
  }

 private:
  mutable subsim::Mutex mu_;
  std::uint64_t size_ SUBSIM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  const Store store;
  return static_cast<int>(store.Size());
}
