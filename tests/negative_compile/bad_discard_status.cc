// Negative-compile fixture: drops a [[nodiscard]] Status on the floor.
// Unlike the thread-safety fixtures this must fail under EVERY compiler
// (-Werror promotes -Wunused-result), so it runs unconditionally — the one
// negative-compile test that exercises the contract on gcc-only machines.
#include "subsim/util/status.h"

namespace {

subsim::Status Flush() { return subsim::Status::Ok(); }

}  // namespace

int main() {
  Flush();  // SUBSIM-NOLINT(status-discarded): negative-compile fixture — the discard is the point
  return 0;
}
