// Positive control for bad_discard_status.cc: the sanctioned explicit
// discard — a (void) cast with a reasoned suppression — compiles clean
// under -Werror everywhere.
#include "subsim/util/status.h"

namespace {

subsim::Status Flush() { return subsim::Status::Ok(); }

}  // namespace

int main() {
  // SUBSIM-NOLINT-NEXTLINE(status-discarded): best-effort flush at exit
  (void)Flush();
  return 0;
}
