// Negative-compile fixture: reads and writes a SUBSIM_GUARDED_BY field
// without holding its mutex. Clang's -Wthread-safety must reject this
// translation unit; the ctest registration runs it clang-only with
// WILL_FAIL so a successful compile fails the test.
#include <cstdint>

#include "subsim/util/mutex.h"
#include "subsim/util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() {
    ++value_;  // guarded access, no lock: -Wthread-safety error
  }

  std::uint64_t Get() const {
    return value_;  // guarded access, no lock: -Wthread-safety error
  }

 private:
  mutable subsim::Mutex mu_;
  std::uint64_t value_ SUBSIM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return static_cast<int>(counter.Get() - 1);
}
