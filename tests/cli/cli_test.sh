#!/bin/sh
# Integration test for tools/subsim_cli: exercises every subcommand
# end-to-end through the shell interface, including failure paths.
# Usage: cli_test.sh <path-to-subsim_cli>
set -u

CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
FAILURES=0

check() {
  # check <description> <expected-exit> <command...>
  desc="$1"; expected="$2"; shift 2
  "$@" > "$WORK/out.txt" 2> "$WORK/err.txt"
  actual=$?
  if [ "$actual" -ne "$expected" ]; then
    echo "FAIL: $desc (exit $actual, expected $expected)"
    sed 's/^/    /' "$WORK/err.txt" | head -3
    FAILURES=$((FAILURES + 1))
  else
    echo "ok: $desc"
  fi
}

expect_in_output() {
  # expect_in_output <description> <pattern>
  if grep -q "$2" "$WORK/out.txt"; then
    echo "ok: $1"
  else
    echo "FAIL: $1 (pattern '$2' not in output)"
    sed 's/^/    /' "$WORK/out.txt" | head -5
    FAILURES=$((FAILURES + 1))
  fi
}

# --- happy path: generate -> weight -> stats -> run -> calibrate ---
check "generate ba graph" 0 \
  "$CLI" generate --type=ba --nodes=2000 --degree=8 --undirected \
  --seed=5 --out="$WORK/raw.txt"
expect_in_output "generate reports counts" "2000 nodes"

check "weight with wc model" 0 \
  "$CLI" weight --in="$WORK/raw.txt" --model=wc --out="$WORK/wc.txt"

check "stats prints summary" 0 "$CLI" stats --in="$WORK/wc.txt"
expect_in_output "stats shows node count" "n=2000"

check "run hist with evaluation" 0 \
  "$CLI" run --in="$WORK/wc.txt" --algo=hist --k=5 --eps=0.2 \
  --seed=3 --evaluate=500
expect_in_output "run prints seeds" "seeds:"
expect_in_output "run prints certified bounds" "certified:"
expect_in_output "run prints monte-carlo spread" "monte-carlo spread"

check "run degree heuristic" 0 \
  "$CLI" run --in="$WORK/wc.txt" --algo=degree-discount --k=5

# --- observability: run --metrics-json golden schema ---
check "run emits metrics json" 0 \
  "$CLI" run --in="$WORK/wc.txt" --algo=opim-c --k=5 --eps=0.2 \
  --seed=3 --threads=1 --metrics-json="$WORK/metrics.json"
expect_in_output "run reports metrics path" "metrics:"
MJSON="$WORK/metrics.json"
if [ -s "$MJSON" ]; then
  echo "ok: metrics json written"
else
  echo "FAIL: metrics json missing or empty"
  FAILURES=$((FAILURES + 1))
fi

# Top-level schema markers.
for pattern in '"schema_version":1' '"counters":{' '"gauges":{' \
    '"histograms":{' '"rr.set_size":{"count":' '"spans":\[' \
    '"name":"opim_c.run"'; do
  if grep -q "$pattern" "$MJSON"; then
    echo "ok: metrics json has $pattern"
  else
    echo "FAIL: metrics json missing $pattern"
    FAILURES=$((FAILURES + 1))
  fi
done

# Counter keys must match the documented schema exactly (values vary
# with the doubling schedule, so only the keys are golden).
sed -n 's/.*"counters":{\([^}]*\)}.*/\1/p' "$MJSON" | tr ',' '\n' \
  | sed 's/:.*//' | sort > "$WORK/counter_keys.txt"
cat > "$WORK/counter_keys_golden.txt" <<'EOF'
"fill.chunks_claimed"
"fill.substream_forks"
"rr.batch_chunks"
"rr.edges_examined"
"rr.geometric_skips"
"rr.nodes_added"
"rr.prefetch_lines"
"rr.rejection_accepts"
"rr.sentinel_hits"
"rr.sets_generated"
"store.fill_rounds"
"store.sets_generated"
EOF
if diff "$WORK/counter_keys_golden.txt" "$WORK/counter_keys.txt" \
    > "$WORK/keys.diff" 2>&1; then
  echo "ok: metrics counter keys match golden schema"
else
  echo "FAIL: metrics counter keys diverge from golden schema"
  sed 's/^/    /' "$WORK/keys.diff"
  FAILURES=$((FAILURES + 1))
fi

# Value checks with tolerance: every RR set the stores generated is
# counted once, and the certified ratio is a probability.
SETS=$(sed -n 's/.*"rr.sets_generated":\([0-9]*\).*/\1/p' "$MJSON")
STORE_SETS=$(sed -n 's/.*"store.sets_generated":\([0-9]*\).*/\1/p' "$MJSON")
HIST_COUNT=$(sed -n 's/.*"rr.set_size":{"count":\([0-9]*\).*/\1/p' "$MJSON")
if [ -n "$SETS" ] && [ "$SETS" -gt 0 ] && [ "$SETS" = "$STORE_SETS" ] \
    && [ "$SETS" = "$HIST_COUNT" ]; then
  echo "ok: metrics set counts agree ($SETS sets)"
else
  echo "FAIL: metrics set counts inconsistent" \
       "(rr=$SETS store=$STORE_SETS hist=$HIST_COUNT)"
  FAILURES=$((FAILURES + 1))
fi
# Every set is drawn from its own counter-based substream, so the fork
# count must equal the set count regardless of --threads.
FORKS=$(sed -n 's/.*"fill.substream_forks":\([0-9]*\).*/\1/p' "$MJSON")
if [ -n "$FORKS" ] && [ "$FORKS" = "$SETS" ]; then
  echo "ok: one substream fork per RR set ($FORKS)"
else
  echo "FAIL: substream forks ($FORKS) != sets generated ($SETS)"
  FAILURES=$((FAILURES + 1))
fi
RATIO=$(sed -n 's/.*"opim_c.approx_ratio":\([0-9.eE+-]*\).*/\1/p' "$MJSON")
if [ -n "$RATIO" ] && \
    awk "BEGIN{exit !($RATIO > 0.0 && $RATIO <= 1.0)}"; then
  echo "ok: certified approx ratio in (0, 1] ($RATIO)"
else
  echo "FAIL: opim_c.approx_ratio missing or out of range ($RATIO)"
  FAILURES=$((FAILURES + 1))
fi

check "calibrate uniform p" 0 \
  "$CLI" calibrate --in="$WORK/raw.txt" --model=uniform --target=50
expect_in_output "calibrate reports p" "p = "

check "generate er graph" 0 \
  "$CLI" generate --type=er --nodes=500 --degree=4 --seed=2 \
  --out="$WORK/er.txt"
check "weight uniform with p" 0 \
  "$CLI" weight --in="$WORK/er.txt" --model=uniform --p=0.02 \
  --out="$WORK/er_u.txt"
check "run imm on er graph" 0 \
  "$CLI" run --in="$WORK/er_u.txt" --algo=imm --k=3 --eps=0.25

# --- serving: batch + serve subcommands ---
cat > "$WORK/queries.txt" <<'EOF'
# three queries, the third repeats the first so it must hit the cache
graph=wc algo=opim-c k=3 eps=0.3 seed=7
graph=wc algo=imm k=3 eps=0.3 seed=7
graph=wc algo=opim-c k=3 eps=0.3 seed=7
EOF
check "batch executes query file" 0 \
  "$CLI" batch --graph=wc="$WORK/wc.txt" --in="$WORK/queries.txt" \
  --workers=2
if [ "$(grep -c '"seeds":\[[0-9]' "$WORK/out.txt")" = "3" ]; then
  echo "ok: batch returns three non-empty seed sets"
else
  echo "FAIL: batch seed sets missing"
  sed 's/^/    /' "$WORK/out.txt" | head -5
  FAILURES=$((FAILURES + 1))
fi
expect_in_output "batch repeat query hits the cache" '"cache_hit":true'

check "batch reads queries from stdin" 0 \
  sh -c "echo 'graph=wc k=2 eps=0.3' | '$CLI' batch --graph=wc='$WORK/wc.txt'"
expect_in_output "stdin batch returns seeds" '"seeds":\[[0-9]'

check "batch reports parse errors per line" 0 \
  sh -c "echo 'graph=wc k=oops' | '$CLI' batch --graph=wc='$WORK/wc.txt'"
expect_in_output "bad query line yields error json" '"ok":false'

check "serve answers a REPL session" 0 \
  sh -c "printf 'graphs\ngraph=wc k=2 eps=0.3 seed=4\nstats\nquit\n' \
    | '$CLI' serve --graph=wc='$WORK/wc.txt'"
expect_in_output "serve lists graphs" '"graphs":\["wc"\]'
expect_in_output "serve answers query" '"seeds":\[[0-9]'
expect_in_output "serve reports cache stats" '"cache_entries"'
expect_in_output "serve stats folds in metrics" '"schema_version":1'
expect_in_output "serve stats counts queries" '"serve.queries":1'

check "batch requires at least one graph" 1 \
  sh -c "echo 'graph=wc k=2' | '$CLI' batch"
check "batch rejects malformed graph spec" 1 \
  sh -c "echo x | '$CLI' batch --graph=justaname"

# --- failure paths ---
check "no arguments shows usage" 2 "$CLI"
check "unknown command shows usage" 2 "$CLI" frobnicate
check "generate requires --out" 1 "$CLI" generate --type=ba --nodes=100
check "unknown algorithm rejected" 1 \
  "$CLI" run --in="$WORK/wc.txt" --algo=bogus
check "missing file is an error" 1 "$CLI" stats --in=/nonexistent/g.txt
check "malformed flag rejected" 1 "$CLI" stats -in=x
check "bad k rejected" 1 "$CLI" run --in="$WORK/wc.txt" --k=0
check "unknown weight model rejected" 1 \
  "$CLI" weight --in="$WORK/raw.txt" --model=nope --out="$WORK/x.txt"

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES CLI checks failed"
  exit 1
fi
echo "all CLI checks passed"
