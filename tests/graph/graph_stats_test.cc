#include "subsim/graph/graph_stats.h"

#include <gtest/gtest.h>

#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"

namespace subsim {
namespace {

TEST(GraphStatsTest, EmptyGraph) {
  Result<Graph> graph = BuildGraph(EdgeList{});
  ASSERT_TRUE(graph.ok());
  const GraphStats stats = ComputeGraphStats(*graph);
  EXPECT_EQ(stats.num_nodes, 0u);
  EXPECT_EQ(stats.num_edges, 0u);
  EXPECT_DOUBLE_EQ(stats.average_degree, 0.0);
  EXPECT_DOUBLE_EQ(stats.isolated_in_fraction, 0.0);
}

TEST(GraphStatsTest, StarStatistics) {
  EdgeList list = MakeStar(4);  // 0 -> {1,2,3,4}
  for (Edge& e : list.edges) {
    e.weight = 0.25;
  }
  Result<Graph> graph = BuildGraph(std::move(list));
  ASSERT_TRUE(graph.ok());
  const GraphStats stats = ComputeGraphStats(*graph);
  EXPECT_EQ(stats.num_nodes, 5u);
  EXPECT_EQ(stats.num_edges, 4u);
  EXPECT_DOUBLE_EQ(stats.average_degree, 0.8);
  EXPECT_EQ(stats.max_out_degree, 4u);
  EXPECT_EQ(stats.max_in_degree, 1u);
  // Only the center has in-degree 0.
  EXPECT_DOUBLE_EQ(stats.isolated_in_fraction, 0.2);
  EXPECT_DOUBLE_EQ(stats.max_in_weight_sum, 0.25);
  EXPECT_DOUBLE_EQ(stats.avg_in_weight_sum, 4 * 0.25 / 5.0);
}

TEST(GraphStatsTest, WcWeightsGiveUnitInSums) {
  Result<EdgeList> list = GenerateErdosRenyi(200, 1500, 5);
  ASSERT_TRUE(list.ok());
  ASSERT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  ASSERT_TRUE(graph.ok());
  const GraphStats stats = ComputeGraphStats(*graph);
  EXPECT_NEAR(stats.max_in_weight_sum, 1.0, 1e-9);
  // avg = fraction of nodes with at least one in-edge.
  EXPECT_LE(stats.avg_in_weight_sum, 1.0 + 1e-9);
  EXPECT_GT(stats.avg_in_weight_sum, 0.9);  // ER(200,1500): few isolated
}

TEST(GraphStatsTest, ToStringMentionsCoreFields) {
  EdgeList list = MakePath(3);
  for (Edge& e : list.edges) {
    e.weight = 0.5;
  }
  Result<Graph> graph = BuildGraph(std::move(list));
  ASSERT_TRUE(graph.ok());
  const std::string text = ComputeGraphStats(*graph).ToString();
  EXPECT_NE(text.find("n=3"), std::string::npos);
  EXPECT_NE(text.find("m=2"), std::string::npos);
  EXPECT_NE(text.find("avg_deg"), std::string::npos);
}

}  // namespace
}  // namespace subsim
