#include "subsim/graph/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <utility>

#include "subsim/graph/graph_builder.h"
#include "subsim/graph/graph_stats.h"

namespace subsim {
namespace {

GraphStats StatsOf(EdgeList list) {
  for (Edge& e : list.edges) {
    e.weight = 0.1;
  }
  Result<Graph> graph = BuildGraph(std::move(list));
  EXPECT_TRUE(graph.ok());
  return ComputeGraphStats(*graph);
}

TEST(ErdosRenyiTest, ProducesRequestedCounts) {
  const Result<EdgeList> list = GenerateErdosRenyi(500, 3000, 1);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->num_nodes, 500u);
  EXPECT_EQ(list->edges.size(), 3000u);
}

TEST(ErdosRenyiTest, EdgesAreDistinctAndLoopFree) {
  const Result<EdgeList> list = GenerateErdosRenyi(100, 2000, 2);
  ASSERT_TRUE(list.ok());
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const Edge& e : list->edges) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_TRUE(seen.emplace(e.src, e.dst).second) << "duplicate edge";
  }
}

TEST(ErdosRenyiTest, DeterministicPerSeed) {
  const Result<EdgeList> a = GenerateErdosRenyi(100, 500, 7);
  const Result<EdgeList> b = GenerateErdosRenyi(100, 500, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->edges.size(), b->edges.size());
  for (std::size_t i = 0; i < a->edges.size(); ++i) {
    EXPECT_EQ(a->edges[i].src, b->edges[i].src);
    EXPECT_EQ(a->edges[i].dst, b->edges[i].dst);
  }
}

TEST(ErdosRenyiTest, RejectsInfeasibleDensity) {
  EXPECT_FALSE(GenerateErdosRenyi(10, 100, 1).ok());  // > 0.5 * n * (n-1)
  EXPECT_FALSE(GenerateErdosRenyi(1, 0, 1).ok());
}

TEST(BarabasiAlbertTest, DirectedShape) {
  const Result<EdgeList> list =
      GenerateBarabasiAlbert(2000, 5, /*undirected=*/false, 3);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->num_nodes, 2000u);
  // Seed clique contributes (m+1)m edges; each later node adds m.
  const std::size_t expected = 6u * 5u + (2000u - 6u) * 5u;
  EXPECT_EQ(list->edges.size(), expected);
}

TEST(BarabasiAlbertTest, UndirectedIsSymmetric) {
  const Result<EdgeList> list =
      GenerateBarabasiAlbert(500, 3, /*undirected=*/true, 4);
  ASSERT_TRUE(list.ok());
  std::set<std::pair<NodeId, NodeId>> edges;
  for (const Edge& e : list->edges) {
    edges.emplace(e.src, e.dst);
  }
  for (const auto& [s, d] : edges) {
    EXPECT_TRUE(edges.count({d, s})) << s << "->" << d << " missing reverse";
  }
}

TEST(BarabasiAlbertTest, ProducesHeavyTail) {
  const Result<EdgeList> list =
      GenerateBarabasiAlbert(5000, 4, /*undirected=*/false, 5);
  ASSERT_TRUE(list.ok());
  const GraphStats stats = StatsOf(*list);
  // A hub should accumulate far more than the average in-degree.
  EXPECT_GT(stats.max_in_degree, 20 * stats.average_degree);
}

TEST(BarabasiAlbertTest, RejectsBadParameters) {
  EXPECT_FALSE(GenerateBarabasiAlbert(10, 0, false, 1).ok());
  EXPECT_FALSE(GenerateBarabasiAlbert(5, 5, false, 1).ok());
}

TEST(BarabasiAlbertTest, NoDuplicateTargetsPerNode) {
  const Result<EdgeList> list =
      GenerateBarabasiAlbert(1000, 4, /*undirected=*/false, 11);
  ASSERT_TRUE(list.ok());
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const Edge& e : list->edges) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_TRUE(seen.emplace(e.src, e.dst).second)
        << "duplicate edge " << e.src << "->" << e.dst;
  }
}

// Regression test: the attachment loop used to emit each node's targets in
// std::unordered_set iteration order, which is implementation-defined — the
// same seed produced different graphs on different standard libraries (and
// the divergence compounds, since emission order feeds the preferential-
// attachment pool). The stream is now a pure function of the seed, so its
// checksum is a portable constant; a change here means the generated-graph
// byte stream changed for everyone and benchmarks/goldens are invalidated.
TEST(BarabasiAlbertTest, EdgeStreamIsPortablyDeterministic) {
  const Result<EdgeList> list =
      GenerateBarabasiAlbert(300, 3, /*undirected=*/false, 42);
  ASSERT_TRUE(list.ok());
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&hash](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (8 * i)) & 0xff;
      hash *= 1099511628211ull;  // FNV-1a prime
    }
  };
  for (const Edge& e : list->edges) {
    mix(e.src);
    mix(e.dst);
  }
  EXPECT_EQ(hash, 0xaeebfbcbe40e2deaull);
}

TEST(PowerLawConfigurationTest, HitsTargetDensityApproximately) {
  const Result<EdgeList> list =
      GeneratePowerLawConfiguration(20000, 2.1, 2000, 10.0, 6);
  ASSERT_TRUE(list.ok());
  const double avg =
      static_cast<double>(list->edges.size()) / list->num_nodes;
  EXPECT_GT(avg, 7.0);
  EXPECT_LT(avg, 13.0);
}

TEST(PowerLawConfigurationTest, HeavyTailExists) {
  const Result<EdgeList> list =
      GeneratePowerLawConfiguration(20000, 2.0, 2000, 10.0, 7);
  ASSERT_TRUE(list.ok());
  const GraphStats stats = StatsOf(*list);
  EXPECT_GT(stats.max_in_degree, 100u);
}

TEST(PowerLawConfigurationTest, NoSelfLoops) {
  const Result<EdgeList> list =
      GeneratePowerLawConfiguration(1000, 2.2, 100, 5.0, 8);
  ASSERT_TRUE(list.ok());
  for (const Edge& e : list->edges) {
    EXPECT_NE(e.src, e.dst);
  }
}

TEST(PowerLawConfigurationTest, RejectsBadParameters) {
  EXPECT_FALSE(GeneratePowerLawConfiguration(1, 2.0, 10, 5.0, 1).ok());
  EXPECT_FALSE(GeneratePowerLawConfiguration(100, 0.9, 10, 5.0, 1).ok());
  EXPECT_FALSE(GeneratePowerLawConfiguration(100, 2.0, 10, 50.0, 1).ok());
}

TEST(WattsStrogatzTest, RingShapeWithoutRewiring) {
  const Result<EdgeList> list = GenerateWattsStrogatz(100, 2, 0.0, 9);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->edges.size(), 100u * 2u * 2u);
  const GraphStats stats = StatsOf(*list);
  EXPECT_EQ(stats.max_out_degree, 4u);  // 2 per side, both directions
}

TEST(WattsStrogatzTest, RewiringKeepsEdgeCount) {
  const Result<EdgeList> list = GenerateWattsStrogatz(100, 3, 0.3, 10);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->edges.size(), 100u * 3u * 2u);
}

TEST(WattsStrogatzTest, RejectsBadParameters) {
  EXPECT_FALSE(GenerateWattsStrogatz(2, 1, 0.1, 1).ok());
  EXPECT_FALSE(GenerateWattsStrogatz(10, 5, 0.1, 1).ok());
  EXPECT_FALSE(GenerateWattsStrogatz(10, 2, 1.5, 1).ok());
}

TEST(DeterministicShapesTest, Path) {
  const EdgeList list = MakePath(4);
  EXPECT_EQ(list.num_nodes, 4u);
  ASSERT_EQ(list.edges.size(), 3u);
  EXPECT_EQ(list.edges[0].src, 0u);
  EXPECT_EQ(list.edges[2].dst, 3u);
}

TEST(DeterministicShapesTest, Cycle) {
  const EdgeList list = MakeCycle(4);
  EXPECT_EQ(list.edges.size(), 4u);
  EXPECT_EQ(list.edges.back().src, 3u);
  EXPECT_EQ(list.edges.back().dst, 0u);
}

TEST(DeterministicShapesTest, Star) {
  const EdgeList list = MakeStar(5);
  EXPECT_EQ(list.num_nodes, 6u);
  EXPECT_EQ(list.edges.size(), 5u);
  for (const Edge& e : list.edges) {
    EXPECT_EQ(e.src, 0u);
  }
}

TEST(DeterministicShapesTest, Complete) {
  const EdgeList list = MakeComplete(5);
  EXPECT_EQ(list.edges.size(), 20u);
}

TEST(DeterministicShapesTest, Bipartite) {
  const EdgeList list = MakeBipartite(2, 3);
  EXPECT_EQ(list.num_nodes, 5u);
  EXPECT_EQ(list.edges.size(), 6u);
  for (const Edge& e : list.edges) {
    EXPECT_LT(e.src, 2u);
    EXPECT_GE(e.dst, 2u);
  }
}

}  // namespace
}  // namespace subsim
