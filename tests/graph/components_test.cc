#include "subsim/graph/components.h"

#include <gtest/gtest.h>

#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"

namespace subsim {
namespace {

Graph FromEdges(NodeId n, std::vector<Edge> edges) {
  EdgeList list;
  list.num_nodes = n;
  list.edges = std::move(edges);
  Result<Graph> graph = BuildGraph(std::move(list));
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(ComponentsTest, EmptyGraph) {
  const Graph graph = FromEdges(0, {});
  const ComponentInfo info = ComputeWeakComponents(graph);
  EXPECT_EQ(info.num_components(), 0u);
  EXPECT_DOUBLE_EQ(info.giant_fraction(0), 0.0);
}

TEST(ComponentsTest, IsolatedNodesAreSingletons) {
  const Graph graph = FromEdges(4, {});
  const ComponentInfo info = ComputeWeakComponents(graph);
  EXPECT_EQ(info.num_components(), 4u);
  for (NodeId size : info.sizes) {
    EXPECT_EQ(size, 1u);
  }
}

TEST(ComponentsTest, DirectionIsIgnored) {
  // 0 -> 1 and 2 -> 1: all weakly connected even though 0 cannot reach 2.
  const Graph graph = FromEdges(3, {{0, 1, 0.5}, {2, 1, 0.5}});
  const ComponentInfo info = ComputeWeakComponents(graph);
  EXPECT_EQ(info.num_components(), 1u);
  EXPECT_EQ(info.sizes[0], 3u);
}

TEST(ComponentsTest, TwoComponentsSortedBySize) {
  const Graph graph = FromEdges(
      7, {{0, 1, 0.5}, {1, 2, 0.5}, {3, 4, 0.5}, {4, 5, 0.5}, {5, 6, 0.5}});
  const ComponentInfo info = ComputeWeakComponents(graph);
  ASSERT_EQ(info.num_components(), 2u);
  EXPECT_EQ(info.sizes[0], 4u);  // {3,4,5,6}
  EXPECT_EQ(info.sizes[1], 3u);  // {0,1,2}
  EXPECT_EQ(info.component_of[3], 0u);
  EXPECT_EQ(info.component_of[0], 1u);
  EXPECT_NEAR(info.giant_fraction(7), 4.0 / 7.0, 1e-12);
}

TEST(ComponentsTest, LabelsAreConsistentWithinComponent) {
  const Graph graph = FromEdges(
      6, {{0, 1, 0.5}, {2, 3, 0.5}, {4, 5, 0.5}, {1, 2, 0.5}});
  const ComponentInfo info = ComputeWeakComponents(graph);
  ASSERT_EQ(info.num_components(), 2u);
  EXPECT_EQ(info.component_of[0], info.component_of[3]);
  EXPECT_EQ(info.component_of[4], info.component_of[5]);
  EXPECT_NE(info.component_of[0], info.component_of[4]);
}

TEST(ComponentsTest, SizesSumToN) {
  Result<EdgeList> list = GenerateErdosRenyi(500, 600, 3);
  ASSERT_TRUE(list.ok());
  for (Edge& e : list->edges) {
    e.weight = 0.1;
  }
  Result<Graph> graph = BuildGraph(std::move(list).value());
  ASSERT_TRUE(graph.ok());
  const ComponentInfo info = ComputeWeakComponents(*graph);
  NodeId total = 0;
  for (NodeId i = 1; i < info.num_components(); ++i) {
    EXPECT_LE(info.sizes[i], info.sizes[i - 1]) << "sizes not sorted";
  }
  for (NodeId size : info.sizes) {
    total += size;
  }
  EXPECT_EQ(total, graph->num_nodes());
}

TEST(ComponentsTest, BaGraphIsConnected) {
  Result<EdgeList> list = GenerateBarabasiAlbert(2000, 3, false, 4);
  ASSERT_TRUE(list.ok());
  for (Edge& e : list->edges) {
    e.weight = 0.1;
  }
  Result<Graph> graph = BuildGraph(std::move(list).value());
  ASSERT_TRUE(graph.ok());
  const ComponentInfo info = ComputeWeakComponents(*graph);
  EXPECT_EQ(info.num_components(), 1u);
  EXPECT_DOUBLE_EQ(info.giant_fraction(graph->num_nodes()), 1.0);
}

}  // namespace
}  // namespace subsim
