#include "subsim/graph/graph_update.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "subsim/graph/graph.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/types.h"

namespace subsim {
namespace {

// Small hand-built graph: edges fan into node 3 so in-row dirtiness is easy
// to reason about.
//
//   0 -> 1 (0.5)   0 -> 2 (0.25)   1 -> 3 (0.5)   2 -> 3 (0.5)
Graph FanGraph() {
  EdgeList list;
  list.num_nodes = 5;
  list.edges = {{0, 1, 0.5}, {0, 2, 0.25}, {1, 3, 0.5}, {2, 3, 0.5}};
  Result<Graph> graph = BuildGraph(std::move(list));
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

double WeightOf(const Graph& graph, NodeId src, NodeId dst) {
  for (const Edge& e : graph.ToEdgeList().edges) {
    if (e.src == src && e.dst == dst) {
      return e.weight;
    }
  }
  return -1.0;  // not found
}

TEST(ApplyEdgeUpdatesTest, InsertDeleteAndWeightChange) {
  const Graph base = FanGraph();
  UpdateBatch batch;
  batch.ops.push_back({EdgeOpKind::kInsert, 4, 0, 0.75});
  batch.ops.push_back({EdgeOpKind::kDelete, 0, 2, 0.0});
  batch.ops.push_back({EdgeOpKind::kSetWeight, 1, 3, 0.125});

  Result<EdgeUpdateResult> updated = ApplyEdgeUpdates(base, batch);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  const Graph& graph = updated->graph;
  EXPECT_EQ(graph.num_nodes(), base.num_nodes());
  EXPECT_EQ(graph.num_edges(), base.num_edges());  // +1 insert, -1 delete
  EXPECT_DOUBLE_EQ(WeightOf(graph, 4, 0), 0.75);
  EXPECT_DOUBLE_EQ(WeightOf(graph, 0, 2), -1.0);
  EXPECT_DOUBLE_EQ(WeightOf(graph, 1, 3), 0.125);
  // Untouched edges survive with their weights.
  EXPECT_DOUBLE_EQ(WeightOf(graph, 0, 1), 0.5);
  EXPECT_DOUBLE_EQ(WeightOf(graph, 2, 3), 0.5);
  // The base graph is untouched (pure function).
  EXPECT_DOUBLE_EQ(WeightOf(base, 0, 2), 0.25);

  // Dirty = sorted-unique dst endpoints of the ops: {0, 2, 3}.
  EXPECT_EQ(updated->dirty_nodes, (std::vector<NodeId>{0, 2, 3}));
}

TEST(ApplyEdgeUpdatesTest, DirtyNodesDeduplicated) {
  const Graph base = FanGraph();
  UpdateBatch batch;
  batch.ops.push_back({EdgeOpKind::kSetWeight, 1, 3, 0.1});
  batch.ops.push_back({EdgeOpKind::kSetWeight, 2, 3, 0.1});
  Result<EdgeUpdateResult> updated = ApplyEdgeUpdates(base, batch);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->dirty_nodes, std::vector<NodeId>{3});
}

TEST(ApplyEdgeUpdatesTest, OpsApplyInOrder) {
  const Graph base = FanGraph();
  // Delete then re-insert with a new weight: legal because ops are ordered.
  UpdateBatch batch;
  batch.ops.push_back({EdgeOpKind::kDelete, 0, 1, 0.0});
  batch.ops.push_back({EdgeOpKind::kInsert, 0, 1, 0.9});
  Result<EdgeUpdateResult> updated = ApplyEdgeUpdates(base, batch);
  ASSERT_TRUE(updated.ok());
  EXPECT_DOUBLE_EQ(WeightOf(updated->graph, 0, 1), 0.9);
}

TEST(ApplyEdgeUpdatesTest, RejectsInvalidOpsAtomically) {
  const Graph base = FanGraph();
  const auto expect_rejected = [&](EdgeOp bad, const char* what) {
    UpdateBatch batch;
    batch.ops.push_back({EdgeOpKind::kSetWeight, 0, 1, 0.9});  // valid
    batch.ops.push_back(bad);
    Result<EdgeUpdateResult> updated = ApplyEdgeUpdates(base, batch);
    EXPECT_FALSE(updated.ok()) << what;
    EXPECT_EQ(updated.status().code(), StatusCode::kInvalidArgument) << what;
    // Op index is surfaced for the client.
    EXPECT_NE(updated.status().ToString().find("op 1"), std::string::npos)
        << updated.status().ToString();
  };
  expect_rejected({EdgeOpKind::kInsert, 2, 2, 0.5}, "self-loop insert");
  expect_rejected({EdgeOpKind::kInsert, 0, 1, 0.5}, "insert existing");
  expect_rejected({EdgeOpKind::kInsert, 5, 0, 0.5}, "src out of range");
  expect_rejected({EdgeOpKind::kInsert, 0, 5, 0.5}, "dst out of range");
  expect_rejected({EdgeOpKind::kInsert, 4, 0, 1.5}, "weight > 1");
  expect_rejected({EdgeOpKind::kInsert, 4, 0, -0.1}, "weight < 0");
  expect_rejected({EdgeOpKind::kDelete, 3, 0, 0.0}, "delete missing");
  expect_rejected({EdgeOpKind::kSetWeight, 3, 0, 0.5}, "weight missing");

  UpdateBatch empty;
  EXPECT_FALSE(ApplyEdgeUpdates(base, empty).ok());
}

TEST(ParseGraphUpdateRequestTest, ParsesFullBatch) {
  Result<GraphUpdateRequest> parsed = ParseGraphUpdateRequest(
      "# comment\n"
      "graph=social expect_version=7\n"
      "insert 4 0 0.75\n"
      "\n"
      "delete 0 2\n"
      "weight\t1 3 0.125\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->graph, "social");
  EXPECT_EQ(parsed->batch.expect_version, 7u);
  ASSERT_EQ(parsed->batch.ops.size(), 3u);
  EXPECT_EQ(parsed->batch.ops[0].kind, EdgeOpKind::kInsert);
  EXPECT_EQ(parsed->batch.ops[0].src, 4u);
  EXPECT_EQ(parsed->batch.ops[0].dst, 0u);
  EXPECT_DOUBLE_EQ(parsed->batch.ops[0].weight, 0.75);
  EXPECT_EQ(parsed->batch.ops[1].kind, EdgeOpKind::kDelete);
  EXPECT_EQ(parsed->batch.ops[2].kind, EdgeOpKind::kSetWeight);
}

TEST(ParseGraphUpdateRequestTest, DefaultsExpectVersionToUnconditional) {
  Result<GraphUpdateRequest> parsed =
      ParseGraphUpdateRequest("graph=g\ndelete 1 2\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->batch.expect_version, 0u);
}

TEST(ParseGraphUpdateRequestTest, RejectsMalformedInput) {
  const auto expect_bad = [](std::string_view text, const char* what) {
    Result<GraphUpdateRequest> parsed = ParseGraphUpdateRequest(text);
    EXPECT_FALSE(parsed.ok()) << what;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << what;
  };
  expect_bad("", "empty input");
  expect_bad("insert 0 1 0.5\n", "missing header");
  expect_bad("graph=g\n", "no ops");
  expect_bad("graph=\ninsert 0 1 0.5\n", "empty graph name");
  expect_bad("graph=g\ninsert 0 1\n", "insert missing weight");
  expect_bad("graph=g\ndelete 0 1 0.5\n", "delete extra token");
  expect_bad("graph=g\nweight 0 1\n", "weight missing value");
  expect_bad("graph=g\nfrobnicate 0 1\n", "unknown op");
  expect_bad("graph=g\ninsert x 1 0.5\n", "non-numeric id");
  expect_bad("graph=g\ninsert 0 1 nope\n", "non-numeric weight");
  expect_bad("graph=g\ninsert 4294967296 1 0.5\n", "id beyond NodeId");
  expect_bad("graph=g expect_version=abc\ninsert 0 1 0.5\n",
             "bad expect_version");
}

TEST(ParseGraphUpdateRequestTest, ErrorsCarryLineNumbers) {
  Result<GraphUpdateRequest> parsed =
      ParseGraphUpdateRequest("graph=g\ninsert 0 1 0.5\nbogus\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("line 3"), std::string::npos)
      << parsed.status().ToString();
}

TEST(ParseGraphUpdateRequestTest, EnforcesOpCap) {
  std::string text = "graph=g\n";
  // Build just past the cap; each op line is cheap to parse so this stays
  // fast even at 2^20 + 1 lines.
  for (std::size_t i = 0; i <= kMaxUpdateOps; ++i) {
    text += "delete 0 1\n";
  }
  Result<GraphUpdateRequest> parsed = ParseGraphUpdateRequest(text);
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().ToString().find("ops"), std::string::npos);
}

TEST(EdgeOpKindNameTest, NamesAllKinds) {
  EXPECT_STREQ(EdgeOpKindName(EdgeOpKind::kInsert), "insert");
  EXPECT_STREQ(EdgeOpKindName(EdgeOpKind::kDelete), "delete");
  EXPECT_STREQ(EdgeOpKindName(EdgeOpKind::kSetWeight), "weight");
}

}  // namespace
}  // namespace subsim
