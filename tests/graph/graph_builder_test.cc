#include "subsim/graph/graph_builder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "subsim/graph/generators.h"

namespace subsim {
namespace {

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder builder(0);
  Result<Graph> graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), 0u);
  EXPECT_EQ(graph->num_edges(), 0u);
  EXPECT_DOUBLE_EQ(graph->average_degree(), 0.0);
}

TEST(GraphBuilderTest, NodesWithoutEdges) {
  GraphBuilder builder(5);
  Result<Graph> graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_nodes(), 5u);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(graph->OutDegree(v), 0u);
    EXPECT_EQ(graph->InDegree(v), 0u);
    EXPECT_DOUBLE_EQ(graph->InWeightSum(v), 0.0);
  }
}

TEST(GraphBuilderTest, AdjacencyIsConsistentBothDirections) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 0.5);
  builder.AddEdge(0, 2, 0.25);
  builder.AddEdge(1, 2, 1.0);
  builder.AddEdge(3, 0, 0.1);
  Result<Graph> graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());

  EXPECT_EQ(graph->num_edges(), 4u);
  EXPECT_EQ(graph->OutDegree(0), 2u);
  EXPECT_EQ(graph->InDegree(2), 2u);
  EXPECT_EQ(graph->InDegree(0), 1u);

  // Out view of node 0.
  const auto out0 = graph->OutNeighbors(0);
  const auto w0 = graph->OutWeights(0);
  ASSERT_EQ(out0.size(), 2u);
  EXPECT_EQ(out0[0], 1u);
  EXPECT_DOUBLE_EQ(w0[0], 0.5);
  EXPECT_EQ(out0[1], 2u);
  EXPECT_DOUBLE_EQ(w0[1], 0.25);

  // In view of node 2: sources {0, 1} with weights {0.25, 1.0}.
  const auto in2 = graph->InNeighbors(2);
  const auto iw2 = graph->InWeights(2);
  ASSERT_EQ(in2.size(), 2u);
  double sum = 0.0;
  for (std::size_t i = 0; i < in2.size(); ++i) {
    if (in2[i] == 0) {
      EXPECT_DOUBLE_EQ(iw2[i], 0.25);
    } else {
      EXPECT_EQ(in2[i], 1u);
      EXPECT_DOUBLE_EQ(iw2[i], 1.0);
    }
    sum += iw2[i];
  }
  EXPECT_DOUBLE_EQ(graph->InWeightSum(2), sum);
}

TEST(GraphBuilderTest, RejectsOutOfRangeEndpoint) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 3, 0.5);  // 3 is out of range
  const Result<Graph> graph = std::move(builder).Build();
  EXPECT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, RejectsWeightAboveOne) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 1.5);
  EXPECT_FALSE(std::move(builder).Build().ok());
}

TEST(GraphBuilderTest, RejectsNegativeWeight) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, -0.1);
  EXPECT_FALSE(std::move(builder).Build().ok());
}

TEST(GraphBuilderTest, RejectsNonFiniteWeight) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(std::move(builder).Build().ok());
}

TEST(GraphBuilderTest, SelfLoopsRemovedByDefault) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 0, 0.5);
  builder.AddEdge(0, 1, 0.5);
  Result<Graph> graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 1u);
}

TEST(GraphBuilderTest, SelfLoopsKeptWhenRequested) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 0, 0.5);
  GraphBuildOptions options;
  options.remove_self_loops = false;
  Result<Graph> graph = std::move(builder).Build(options);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 1u);
  EXPECT_EQ(graph->InDegree(0), 1u);
}

TEST(GraphBuilderTest, MergeParallelEdgesKeepsMaxWeight) {
  GraphBuilder builder(2);
  builder.AddEdge(0, 1, 0.3);
  builder.AddEdge(0, 1, 0.8);
  builder.AddEdge(0, 1, 0.5);
  GraphBuildOptions options;
  options.merge_parallel_edges = true;
  Result<Graph> graph = std::move(builder).Build(options);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 1u);
  EXPECT_DOUBLE_EQ(graph->OutWeights(0)[0], 0.8);
}

TEST(GraphBuilderTest, UndirectedEdgeAddsBothDirections) {
  GraphBuilder builder(2);
  builder.AddUndirectedEdge(0, 1, 0.4);
  Result<Graph> graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->num_edges(), 2u);
  EXPECT_EQ(graph->OutDegree(0), 1u);
  EXPECT_EQ(graph->OutDegree(1), 1u);
}

TEST(GraphBuilderTest, SortInEdgesByWeightDescending) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 3, 0.2);
  builder.AddEdge(1, 3, 0.9);
  builder.AddEdge(2, 3, 0.5);
  GraphBuildOptions options;
  options.sort_in_edges_by_weight = true;
  Result<Graph> graph = std::move(builder).Build(options);
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(graph->in_sorted_by_weight());
  const auto weights = graph->InWeights(3);
  ASSERT_EQ(weights.size(), 3u);
  EXPECT_DOUBLE_EQ(weights[0], 0.9);
  EXPECT_DOUBLE_EQ(weights[1], 0.5);
  EXPECT_DOUBLE_EQ(weights[2], 0.2);
  const auto sources = graph->InNeighbors(3);
  EXPECT_EQ(sources[0], 1u);
  EXPECT_EQ(sources[1], 2u);
  EXPECT_EQ(sources[2], 0u);
}

TEST(GraphBuilderTest, UniformInWeightsDetection) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 2, 0.5);
  builder.AddEdge(1, 2, 0.5);
  builder.AddEdge(0, 3, 0.5);
  builder.AddEdge(1, 3, 0.25);
  Result<Graph> graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(graph->HasUniformInWeights(2));
  EXPECT_FALSE(graph->HasUniformInWeights(3));
  EXPECT_TRUE(graph->HasUniformInWeights(0));  // no in-edges: trivially true
}

TEST(GraphBuilderTest, ToEdgeListRoundTrips) {
  EdgeList original;
  original.num_nodes = 5;
  original.edges = {{0, 1, 0.1}, {1, 2, 0.2}, {2, 0, 0.3}, {4, 3, 0.4}};
  Result<Graph> graph = BuildGraph(original);
  ASSERT_TRUE(graph.ok());
  EdgeList round = graph->ToEdgeList();
  EXPECT_EQ(round.num_nodes, original.num_nodes);
  ASSERT_EQ(round.edges.size(), original.edges.size());

  auto key = [](const Edge& e) {
    return std::tuple(e.src, e.dst, e.weight);
  };
  std::sort(original.edges.begin(), original.edges.end(),
            [&](const Edge& a, const Edge& b) { return key(a) < key(b); });
  std::sort(round.edges.begin(), round.edges.end(),
            [&](const Edge& a, const Edge& b) { return key(a) < key(b); });
  for (std::size_t i = 0; i < round.edges.size(); ++i) {
    EXPECT_EQ(key(round.edges[i]), key(original.edges[i]));
  }
}

TEST(GraphBuilderTest, BuildGraphFromGeneratedShapes) {
  for (EdgeList list : {MakePath(6), MakeCycle(5), MakeStar(7),
                        MakeComplete(4), MakeBipartite(3, 4)}) {
    for (Edge& e : list.edges) {
      e.weight = 0.5;
    }
    const NodeId n = list.num_nodes;
    const std::size_t m = list.edges.size();
    Result<Graph> graph = BuildGraph(std::move(list));
    ASSERT_TRUE(graph.ok());
    EXPECT_EQ(graph->num_nodes(), n);
    EXPECT_EQ(graph->num_edges(), m);
  }
}

}  // namespace
}  // namespace subsim
