#include "subsim/graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>

namespace subsim {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }

  void WriteFile(const std::string& path, const std::string& contents) {
    std::ofstream out(path);
    out << contents;
  }
};

TEST_F(GraphIoTest, ReadsBasicEdgeList) {
  const std::string path = TempPath("basic.txt");
  WriteFile(path,
            "# comment line\n"
            "% another comment\n"
            "0 1\n"
            "1 2\n"
            "\n"
            "2 0\n");
  const Result<EdgeList> list = ReadEdgeListText(path);
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  EXPECT_EQ(list->num_nodes, 3u);
  ASSERT_EQ(list->edges.size(), 3u);
  EXPECT_EQ(list->edges[0].src, 0u);
  EXPECT_EQ(list->edges[0].dst, 1u);
  EXPECT_DOUBLE_EQ(list->edges[0].weight, 0.0);
}

TEST_F(GraphIoTest, ReadsWeights) {
  const std::string path = TempPath("weighted.txt");
  WriteFile(path, "0 1 0.25\n1 0 0.75\n");
  const Result<EdgeList> list = ReadEdgeListText(path);
  ASSERT_TRUE(list.ok());
  EXPECT_DOUBLE_EQ(list->edges[0].weight, 0.25);
  EXPECT_DOUBLE_EQ(list->edges[1].weight, 0.75);
}

TEST_F(GraphIoTest, IgnoresWeightsWhenDisabled) {
  const std::string path = TempPath("weights_off.txt");
  WriteFile(path, "0 1 0.25\n");
  EdgeListReadOptions options;
  options.read_weights = false;
  const Result<EdgeList> list = ReadEdgeListText(path, options);
  ASSERT_TRUE(list.ok());
  EXPECT_DOUBLE_EQ(list->edges[0].weight, 0.0);
}

TEST_F(GraphIoTest, UndirectedDoublesEdges) {
  const std::string path = TempPath("undirected.txt");
  WriteFile(path, "0 1\n1 2\n");
  EdgeListReadOptions options;
  options.undirected = true;
  const Result<EdgeList> list = ReadEdgeListText(path, options);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->edges.size(), 4u);
}

TEST_F(GraphIoTest, AcceptsCommaAndTabSeparators) {
  const std::string path = TempPath("seps.txt");
  WriteFile(path, "0,1\n1\t2\n");
  const Result<EdgeList> list = ReadEdgeListText(path);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->edges.size(), 2u);
}

TEST_F(GraphIoTest, MissingFileIsIoError) {
  const Result<EdgeList> list = ReadEdgeListText("/nonexistent/file.txt");
  EXPECT_FALSE(list.ok());
  EXPECT_EQ(list.status().code(), StatusCode::kIoError);
}

TEST_F(GraphIoTest, MalformedLineIsInvalidArgument) {
  const std::string path = TempPath("bad.txt");
  WriteFile(path, "0 1\nnot numbers\n");
  const Result<EdgeList> list = ReadEdgeListText(path);
  EXPECT_FALSE(list.ok());
  EXPECT_EQ(list.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(GraphIoTest, SingleColumnLineIsRejected) {
  const std::string path = TempPath("single.txt");
  WriteFile(path, "42\n");
  EXPECT_FALSE(ReadEdgeListText(path).ok());
}

TEST_F(GraphIoTest, MalformedWeightIsRejected) {
  const std::string path = TempPath("badweight.txt");
  WriteFile(path, "0 1 zebra\n");
  EXPECT_FALSE(ReadEdgeListText(path).ok());
}

TEST_F(GraphIoTest, NodeIdOverflowIsRejected) {
  const std::string path = TempPath("overflow.txt");
  WriteFile(path, "0 4294967295\n");  // reserved sentinel value
  EXPECT_FALSE(ReadEdgeListText(path).ok());
}

TEST_F(GraphIoTest, EmptyFileYieldsEmptyList) {
  const std::string path = TempPath("empty.txt");
  WriteFile(path, "# only comments\n");
  const Result<EdgeList> list = ReadEdgeListText(path);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->num_nodes, 0u);
  EXPECT_TRUE(list->edges.empty());
}

TEST_F(GraphIoTest, TextRoundTrip) {
  EdgeList original;
  original.num_nodes = 4;
  original.edges = {{0, 1, 0.5}, {2, 3, 0.125}, {3, 0, 1.0}};
  const std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(WriteEdgeListText(original, path).ok());
  const Result<EdgeList> loaded = ReadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes, 4u);
  ASSERT_EQ(loaded->edges.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(loaded->edges[i].src, original.edges[i].src);
    EXPECT_EQ(loaded->edges[i].dst, original.edges[i].dst);
    EXPECT_DOUBLE_EQ(loaded->edges[i].weight, original.edges[i].weight);
  }
}

TEST_F(GraphIoTest, BinaryRoundTrip) {
  EdgeList original;
  original.num_nodes = 1000;
  for (NodeId i = 0; i + 1 < 1000; ++i) {
    original.edges.push_back(
        Edge{i, static_cast<NodeId>(i + 1), 1.0 / (i + 1)});
  }
  const std::string path = TempPath("roundtrip.bin");
  ASSERT_TRUE(WriteEdgeListBinary(original, path).ok());
  const Result<EdgeList> loaded = ReadEdgeListBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes, original.num_nodes);
  ASSERT_EQ(loaded->edges.size(), original.edges.size());
  for (std::size_t i = 0; i < original.edges.size(); ++i) {
    EXPECT_EQ(loaded->edges[i].src, original.edges[i].src);
    EXPECT_EQ(loaded->edges[i].dst, original.edges[i].dst);
    EXPECT_DOUBLE_EQ(loaded->edges[i].weight, original.edges[i].weight);
  }
}

TEST_F(GraphIoTest, BinaryRejectsWrongMagic) {
  const std::string path = TempPath("notbinary.bin");
  WriteFile(path, "this is not a subsim binary file at all");
  const Result<EdgeList> loaded = ReadEdgeListBinary(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(GraphIoTest, BinaryRejectsEmptyFile) {
  const std::string path = TempPath("empty.bin");
  WriteFile(path, "");
  const Result<EdgeList> loaded = ReadEdgeListBinary(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(GraphIoTest, BinaryRejectsTruncatedHeader) {
  // Valid magic but the file ends before the counts.
  const std::string path = TempPath("header_only.bin");
  const std::uint64_t magic = 0x53554253494d4731ull;
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.close();
  const Result<EdgeList> loaded = ReadEdgeListBinary(path);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(GraphIoTest, BinaryRejectsEdgeCountBeyondFileSize) {
  // A header claiming 2^56 edges in a 3-edge file must fail fast with
  // InvalidArgument instead of attempting a petabyte allocation.
  EdgeList original;
  original.num_nodes = 4;
  original.edges = {{0, 1, 0.5}, {1, 2, 0.5}, {2, 3, 0.5}};
  const std::string path = TempPath("liar.bin");
  ASSERT_TRUE(WriteEdgeListBinary(original, path).ok());
  std::fstream patch(path,
                     std::ios::binary | std::ios::in | std::ios::out);
  patch.seekp(2 * sizeof(std::uint64_t));
  const std::uint64_t huge_m = 1ull << 56;
  patch.write(reinterpret_cast<const char*>(&huge_m), sizeof(huge_m));
  patch.close();
  const Result<EdgeList> loaded = ReadEdgeListBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(GraphIoTest, BinaryRejectsNodeCountOverflow) {
  EdgeList original;
  original.num_nodes = 2;
  original.edges = {{0, 1, 0.5}};
  const std::string path = TempPath("big_n.bin");
  ASSERT_TRUE(WriteEdgeListBinary(original, path).ok());
  std::fstream patch(path,
                     std::ios::binary | std::ios::in | std::ios::out);
  patch.seekp(sizeof(std::uint64_t));
  const std::uint64_t huge_n = 1ull << 40;
  patch.write(reinterpret_cast<const char*>(&huge_n), sizeof(huge_n));
  patch.close();
  const Result<EdgeList> loaded = ReadEdgeListBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(GraphIoTest, BinaryRejectsEdgeReferencingNodeOutOfRange) {
  // Payload is well-formed bytes-wise but one edge points past num_nodes;
  // trusting it would corrupt every CSR build downstream.
  EdgeList original;
  original.num_nodes = 3;
  original.edges = {{0, 1, 0.5}, {7, 2, 0.5}};
  const std::string path = TempPath("bad_id.bin");
  ASSERT_TRUE(WriteEdgeListBinary(original, path).ok());
  const Result<EdgeList> loaded = ReadEdgeListBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(GraphIoTest, BinaryRejectsTruncatedPayload) {
  EdgeList original;
  original.num_nodes = 10;
  original.edges = {{0, 1, 0.5}, {1, 2, 0.5}};
  const std::string path = TempPath("truncated.bin");
  ASSERT_TRUE(WriteEdgeListBinary(original, path).ok());
  // Chop off the last few bytes.
  std::ifstream in(path, std::ios::binary);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  WriteFile(path, data.substr(0, data.size() - 5));
  EXPECT_FALSE(ReadEdgeListBinary(path).ok());
}

}  // namespace
}  // namespace subsim
