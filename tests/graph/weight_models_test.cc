#include "subsim/graph/weight_models.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"

namespace subsim {
namespace {

EdgeList SmallTestGraph() {
  // 5 nodes; node 3 has in-degree 3, node 4 in-degree 1, node 1 in-degree 1.
  EdgeList list;
  list.num_nodes = 5;
  list.edges = {{0, 3, 0}, {1, 3, 0}, {2, 3, 0}, {3, 4, 0}, {0, 1, 0}};
  return list;
}

TEST(WeightModelsTest, WeightedCascadeIsInverseInDegree) {
  EdgeList list = SmallTestGraph();
  ASSERT_TRUE(AssignWeights(WeightModel::kWeightedCascade, {}, &list).ok());
  for (const Edge& e : list.edges) {
    if (e.dst == 3) {
      EXPECT_DOUBLE_EQ(e.weight, 1.0 / 3.0);
    } else {
      EXPECT_DOUBLE_EQ(e.weight, 1.0);
    }
  }
}

TEST(WeightModelsTest, LinearThresholdMatchesWeightedCascade) {
  EdgeList wc = SmallTestGraph();
  EdgeList lt = SmallTestGraph();
  ASSERT_TRUE(AssignWeights(WeightModel::kWeightedCascade, {}, &wc).ok());
  ASSERT_TRUE(AssignWeights(WeightModel::kLinearThreshold, {}, &lt).ok());
  for (std::size_t i = 0; i < wc.edges.size(); ++i) {
    EXPECT_DOUBLE_EQ(wc.edges[i].weight, lt.edges[i].weight);
  }
}

TEST(WeightModelsTest, UniformSetsConstantP) {
  EdgeList list = SmallTestGraph();
  WeightModelParams params;
  params.uniform_p = 0.05;
  ASSERT_TRUE(AssignWeights(WeightModel::kUniformIc, params, &list).ok());
  for (const Edge& e : list.edges) {
    EXPECT_DOUBLE_EQ(e.weight, 0.05);
  }
}

TEST(WeightModelsTest, UniformRejectsOutOfRangeP) {
  EdgeList list = SmallTestGraph();
  WeightModelParams params;
  params.uniform_p = 1.5;
  EXPECT_FALSE(AssignWeights(WeightModel::kUniformIc, params, &list).ok());
  params.uniform_p = -0.1;
  EXPECT_FALSE(AssignWeights(WeightModel::kUniformIc, params, &list).ok());
}

TEST(WeightModelsTest, WcVariantScalesAndClamps) {
  EdgeList list = SmallTestGraph();
  WeightModelParams params;
  params.wc_variant_theta = 2.0;
  ASSERT_TRUE(AssignWeights(WeightModel::kWcVariant, params, &list).ok());
  for (const Edge& e : list.edges) {
    if (e.dst == 3) {
      EXPECT_DOUBLE_EQ(e.weight, 2.0 / 3.0);
    } else {
      EXPECT_DOUBLE_EQ(e.weight, 1.0);  // clamped at 1
    }
  }
}

TEST(WeightModelsTest, WcVariantThetaOneIsWeightedCascade) {
  EdgeList variant = SmallTestGraph();
  EdgeList wc = SmallTestGraph();
  WeightModelParams params;
  params.wc_variant_theta = 1.0;
  ASSERT_TRUE(AssignWeights(WeightModel::kWcVariant, params, &variant).ok());
  ASSERT_TRUE(AssignWeights(WeightModel::kWeightedCascade, {}, &wc).ok());
  for (std::size_t i = 0; i < wc.edges.size(); ++i) {
    EXPECT_DOUBLE_EQ(variant.edges[i].weight, wc.edges[i].weight);
  }
}

void ExpectPerNodeInSumsEqualOne(const EdgeList& list) {
  std::map<NodeId, double> sums;
  for (const Edge& e : list.edges) {
    sums[e.dst] += e.weight;
  }
  for (const auto& [node, sum] : sums) {
    EXPECT_NEAR(sum, 1.0, 1e-9) << "node " << node;
  }
}

TEST(WeightModelsTest, ExponentialNormalizesPerNode) {
  EdgeList list = SmallTestGraph();
  WeightModelParams params;
  params.seed = 11;
  ASSERT_TRUE(AssignWeights(WeightModel::kExponential, params, &list).ok());
  ExpectPerNodeInSumsEqualOne(list);
  for (const Edge& e : list.edges) {
    EXPECT_GE(e.weight, 0.0);
    EXPECT_LE(e.weight, 1.0);
  }
}

TEST(WeightModelsTest, WeibullNormalizesPerNode) {
  EdgeList list = SmallTestGraph();
  WeightModelParams params;
  params.seed = 13;
  ASSERT_TRUE(AssignWeights(WeightModel::kWeibull, params, &list).ok());
  ExpectPerNodeInSumsEqualOne(list);
}

TEST(WeightModelsTest, SkewedModelsAreSkewed) {
  // On a larger graph, exponential weights into the same node should not be
  // all equal (that is the whole point of the skewed settings).
  Result<EdgeList> generated = GenerateErdosRenyi(200, 2000, 3);
  ASSERT_TRUE(generated.ok());
  EdgeList list = std::move(generated).value();
  WeightModelParams params;
  params.seed = 17;
  ASSERT_TRUE(AssignWeights(WeightModel::kExponential, params, &list).ok());
  Result<Graph> graph = BuildGraph(std::move(list));
  ASSERT_TRUE(graph.ok());
  int nonuniform = 0;
  for (NodeId v = 0; v < graph->num_nodes(); ++v) {
    if (graph->InDegree(v) >= 2 && !graph->HasUniformInWeights(v)) {
      ++nonuniform;
    }
  }
  EXPECT_GT(nonuniform, 0);
}

TEST(WeightModelsTest, TrivalencyUsesThreeLevels) {
  Result<EdgeList> generated = GenerateErdosRenyi(100, 1000, 5);
  ASSERT_TRUE(generated.ok());
  EdgeList list = std::move(generated).value();
  WeightModelParams params;
  params.seed = 19;
  ASSERT_TRUE(AssignWeights(WeightModel::kTrivalency, params, &list).ok());
  std::map<double, int> histogram;
  for (const Edge& e : list.edges) {
    ++histogram[e.weight];
  }
  ASSERT_EQ(histogram.size(), 3u);
  EXPECT_TRUE(histogram.count(0.1));
  EXPECT_TRUE(histogram.count(0.01));
  EXPECT_TRUE(histogram.count(0.001));
}

TEST(WeightModelsTest, DeterministicGivenSeed) {
  EdgeList a = SmallTestGraph();
  EdgeList b = SmallTestGraph();
  WeightModelParams params;
  params.seed = 23;
  ASSERT_TRUE(AssignWeights(WeightModel::kWeibull, params, &a).ok());
  ASSERT_TRUE(AssignWeights(WeightModel::kWeibull, params, &b).ok());
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.edges[i].weight, b.edges[i].weight);
  }
}

TEST(WeightModelsTest, ParseAndNameRoundTrip) {
  for (WeightModel model :
       {WeightModel::kWeightedCascade, WeightModel::kUniformIc,
        WeightModel::kWcVariant, WeightModel::kExponential,
        WeightModel::kWeibull, WeightModel::kTrivalency,
        WeightModel::kLinearThreshold}) {
    const Result<WeightModel> parsed = ParseWeightModel(WeightModelName(model));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, model);
  }
  EXPECT_FALSE(ParseWeightModel("bogus").ok());
}

}  // namespace
}  // namespace subsim
