#include "subsim/sampling/subset_sampler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "subsim/sampling/bucket_sampler.h"
#include "subsim/sampling/geometric_sampler.h"
#include "subsim/sampling/inline_sampling.h"
#include "subsim/sampling/naive_sampler.h"
#include "subsim/sampling/sampler_factory.h"
#include "subsim/sampling/sorted_sampler.h"

namespace subsim {
namespace {

TEST(NaiveSamplerTest, ZeroProbabilityNeverSampled) {
  NaiveSubsetSampler sampler({0.0, 1.0, 0.0});
  Rng rng(1);
  std::vector<std::uint32_t> out;
  for (int i = 0; i < 100; ++i) {
    out.clear();
    sampler.Sample(rng, &out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 1u);
  }
}

TEST(NaiveSamplerTest, ExpectedCountIsSum) {
  NaiveSubsetSampler sampler({0.25, 0.5, 0.75});
  EXPECT_DOUBLE_EQ(sampler.expected_count(), 1.5);
  EXPECT_EQ(sampler.size(), 3u);
  EXPECT_STREQ(sampler.name(), "naive");
}

TEST(GeometricSamplerTest, ProbabilityOneSamplesEverything) {
  GeometricSubsetSampler sampler(10, 1.0);
  Rng rng(2);
  std::vector<std::uint32_t> out;
  sampler.Sample(rng, &out);
  ASSERT_EQ(out.size(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out[i], i);
  }
}

TEST(GeometricSamplerTest, ProbabilityZeroSamplesNothing) {
  GeometricSubsetSampler sampler(10, 0.0);
  Rng rng(3);
  std::vector<std::uint32_t> out;
  for (int i = 0; i < 100; ++i) {
    sampler.Sample(rng, &out);
  }
  EXPECT_TRUE(out.empty());
}

TEST(GeometricSamplerTest, EmptySetYieldsNothing) {
  GeometricSubsetSampler sampler(0, 0.5);
  Rng rng(4);
  std::vector<std::uint32_t> out;
  sampler.Sample(rng, &out);
  EXPECT_TRUE(out.empty());
}

TEST(GeometricSamplerTest, IndicesInRangeAndStrictlyIncreasing) {
  GeometricSubsetSampler sampler(50, 0.3);
  Rng rng(5);
  std::vector<std::uint32_t> out;
  for (int trial = 0; trial < 200; ++trial) {
    out.clear();
    sampler.Sample(rng, &out);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_LT(out[i], 50u);
      if (i > 0) {
        EXPECT_GT(out[i], out[i - 1]);
      }
    }
  }
}

TEST(BucketSamplerTest, HandlesMixedMagnitudes) {
  BucketSubsetSampler sampler({0.9, 0.5, 0.1, 0.01, 0.001, 1e-6});
  EXPECT_EQ(sampler.size(), 6u);
  EXPECT_NEAR(sampler.expected_count(), 1.511001, 1e-6);
  EXPECT_GE(sampler.num_buckets(), 4u);
  Rng rng(6);
  std::vector<std::uint32_t> out;
  for (int i = 0; i < 1000; ++i) {
    out.clear();
    sampler.Sample(rng, &out);
    std::set<std::uint32_t> unique(out.begin(), out.end());
    EXPECT_EQ(unique.size(), out.size()) << "duplicate emission";
    for (std::uint32_t v : out) {
      EXPECT_LT(v, 6u);
    }
  }
}

TEST(BucketSamplerTest, AllZeroProbabilitiesYieldNothing) {
  BucketSubsetSampler sampler({0.0, 0.0, 0.0});
  Rng rng(7);
  std::vector<std::uint32_t> out;
  sampler.Sample(rng, &out);
  EXPECT_TRUE(out.empty());
}

TEST(BucketSamplerTest, CertainElementsAlwaysSampled) {
  BucketSubsetSampler sampler({1.0, 0.0, 1.0});
  Rng rng(8);
  std::vector<std::uint32_t> out;
  for (int i = 0; i < 50; ++i) {
    out.clear();
    sampler.Sample(rng, &out);
    std::sort(out.begin(), out.end());
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 0u);
    EXPECT_EQ(out[1], 2u);
  }
}

TEST(SortedSamplerTest, RequiresNonIncreasing) {
  // Construction with increasing probabilities must die (checked).
  EXPECT_DEATH(SortedSubsetSampler({0.1, 0.9}), "non-increasing");
}

TEST(SortedSamplerTest, SamplesValidIndices) {
  SortedSubsetSampler sampler({0.9, 0.4, 0.4, 0.2, 0.05, 0.01});
  Rng rng(9);
  std::vector<std::uint32_t> out;
  for (int i = 0; i < 500; ++i) {
    out.clear();
    sampler.Sample(rng, &out);
    std::set<std::uint32_t> unique(out.begin(), out.end());
    EXPECT_EQ(unique.size(), out.size());
    for (std::uint32_t v : out) {
      EXPECT_LT(v, 6u);
    }
  }
}

TEST(SortedSamplerTest, LeadingOnesAlwaysIncluded) {
  SortedSubsetSampler sampler({1.0, 1.0, 0.5});
  Rng rng(10);
  std::vector<std::uint32_t> out;
  for (int i = 0; i < 50; ++i) {
    out.clear();
    sampler.Sample(rng, &out);
    ASSERT_GE(out.size(), 2u);
    EXPECT_EQ(out[0], 0u);
    EXPECT_EQ(out[1], 1u);
  }
}

TEST(SamplerFactoryTest, AutoPicksGeometricForUniform) {
  const auto sampler =
      MakeSubsetSampler(SamplerKind::kAuto, {0.5, 0.5, 0.5});
  ASSERT_TRUE(sampler.ok());
  EXPECT_STREQ((*sampler)->name(), "geometric");
}

TEST(SamplerFactoryTest, AutoPicksSortedForDescending) {
  const auto sampler =
      MakeSubsetSampler(SamplerKind::kAuto, {0.5, 0.4, 0.3});
  ASSERT_TRUE(sampler.ok());
  EXPECT_STREQ((*sampler)->name(), "sorted");
}

TEST(SamplerFactoryTest, AutoPicksBucketForUnsorted) {
  const auto sampler =
      MakeSubsetSampler(SamplerKind::kAuto, {0.3, 0.4, 0.2});
  ASSERT_TRUE(sampler.ok());
  EXPECT_STREQ((*sampler)->name(), "bucket");
}

TEST(SamplerFactoryTest, GeometricRejectsNonUniform) {
  EXPECT_FALSE(
      MakeSubsetSampler(SamplerKind::kGeometric, {0.5, 0.1}).ok());
}

TEST(SamplerFactoryTest, SortedRejectsIncreasing) {
  EXPECT_FALSE(MakeSubsetSampler(SamplerKind::kSorted, {0.1, 0.9}).ok());
}

TEST(SamplerFactoryTest, ParseRoundTrip) {
  for (SamplerKind kind :
       {SamplerKind::kNaive, SamplerKind::kGeometric, SamplerKind::kBucket,
        SamplerKind::kSorted, SamplerKind::kAuto}) {
    const auto parsed = ParseSamplerKind(SamplerKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseSamplerKind("nope").ok());
}

TEST(InlineSamplingTest, UniformSkipsCoverFullRangeAtHighP) {
  Rng rng(11);
  std::vector<std::uint32_t> out;
  SampleUniformSubsetSkips(100, GeometricInvLogQ(0.99), rng,
                           [&](std::uint32_t i) { out.push_back(i); });
  EXPECT_GT(out.size(), 90u);
  EXPECT_LT(out.back(), 100u);
}

TEST(InlineSamplingTest, SampleAllElements) {
  std::vector<std::uint32_t> out;
  SampleAllElements(5, [&](std::uint32_t i) { out.push_back(i); });
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace subsim
