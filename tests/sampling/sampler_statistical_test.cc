// Statistical correctness of every subset sampler: each element's empirical
// inclusion frequency must match its specified probability, and sampling of
// distinct elements must be (pairwise) independent. These are the properties
// the SUBSIM analysis (Lemma 3 / Lemma 5) relies on.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "subsim/sampling/sampler_factory.h"

namespace subsim {
namespace {

struct StatCase {
  std::string label;
  SamplerKind kind;
  std::vector<double> probs;
};

std::vector<StatCase> StatCases() {
  const std::vector<double> uniform_small(20, 0.15);
  const std::vector<double> uniform_tiny(64, 0.02);
  const std::vector<double> descending = {0.95, 0.6,  0.6,  0.3, 0.25,
                                          0.2,  0.12, 0.05, 0.02, 0.01};
  const std::vector<double> mixed = {0.02, 0.9, 0.001, 0.45, 0.25,
                                     0.13, 0.7, 0.08,  0.3,  0.6};
  const std::vector<double> with_extremes = {1.0, 0.5, 0.0, 0.25, 1.0, 0.0};

  return {
      {"naive/uniform", SamplerKind::kNaive, uniform_small},
      {"naive/mixed", SamplerKind::kNaive, mixed},
      {"geometric/uniform", SamplerKind::kGeometric, uniform_small},
      {"geometric/tiny", SamplerKind::kGeometric, uniform_tiny},
      {"bucket/mixed", SamplerKind::kBucket, mixed},
      {"bucket/descending", SamplerKind::kBucket, descending},
      {"bucket/extremes", SamplerKind::kBucket, with_extremes},
      {"sorted/descending", SamplerKind::kSorted, descending},
  };
}

class SamplerStatisticalTest : public ::testing::TestWithParam<StatCase> {};

TEST_P(SamplerStatisticalTest, InclusionFrequenciesMatchProbabilities) {
  const StatCase& test_case = GetParam();
  const auto sampler =
      MakeSubsetSampler(test_case.kind, test_case.probs);
  ASSERT_TRUE(sampler.ok()) << sampler.status().ToString();

  constexpr int kTrials = 120000;
  Rng rng(0xC0FFEE);
  std::vector<int> counts(test_case.probs.size(), 0);
  std::vector<std::uint32_t> out;
  for (int t = 0; t < kTrials; ++t) {
    out.clear();
    (*sampler)->Sample(rng, &out);
    for (std::uint32_t i : out) {
      ASSERT_LT(i, counts.size());
      ++counts[i];
    }
  }

  for (std::size_t i = 0; i < test_case.probs.size(); ++i) {
    const double p = test_case.probs[i];
    const double expected = kTrials * p;
    const double sigma = std::sqrt(kTrials * p * (1.0 - p));
    EXPECT_NEAR(counts[i], expected, 5.0 * sigma + 1.0)
        << test_case.label << " element " << i << " p=" << p;
  }
}

TEST_P(SamplerStatisticalTest, PairwiseJointFrequencyMatchesIndependence) {
  const StatCase& test_case = GetParam();
  // Pick the two highest-probability elements with p in (0, 1) so joint
  // counts are well populated.
  int first = -1;
  int second = -1;
  for (std::size_t i = 0; i < test_case.probs.size(); ++i) {
    const double p = test_case.probs[i];
    if (p <= 0.0 || p >= 1.0) {
      continue;
    }
    if (first < 0 || p > test_case.probs[first]) {
      second = first;
      first = static_cast<int>(i);
    } else if (second < 0 || p > test_case.probs[second]) {
      second = static_cast<int>(i);
    }
  }
  if (first < 0 || second < 0) {
    GTEST_SKIP() << "not enough fractional-probability elements";
  }

  const auto sampler =
      MakeSubsetSampler(test_case.kind, test_case.probs);
  ASSERT_TRUE(sampler.ok());

  constexpr int kTrials = 120000;
  Rng rng(0xFEEDFACE);
  int joint = 0;
  std::vector<std::uint32_t> out;
  for (int t = 0; t < kTrials; ++t) {
    out.clear();
    (*sampler)->Sample(rng, &out);
    bool has_first = false;
    bool has_second = false;
    for (std::uint32_t i : out) {
      has_first |= (static_cast<int>(i) == first);
      has_second |= (static_cast<int>(i) == second);
    }
    joint += (has_first && has_second) ? 1 : 0;
  }

  const double p_joint =
      test_case.probs[first] * test_case.probs[second];
  const double expected = kTrials * p_joint;
  const double sigma = std::sqrt(kTrials * p_joint * (1.0 - p_joint));
  EXPECT_NEAR(joint, expected, 5.0 * sigma + 1.0)
      << test_case.label << " joint of elements " << first << "," << second;
}

INSTANTIATE_TEST_SUITE_P(
    AllSamplers, SamplerStatisticalTest, ::testing::ValuesIn(StatCases()),
    [](const ::testing::TestParamInfo<StatCase>& info) {
      std::string name = info.param.label;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

// The sampled-count distribution should also match across samplers: compare
// the mean subset size of the bucket sampler against the naive sampler on
// the same probabilities (both estimate mu).
TEST(SamplerCrossValidationTest, BucketAndNaiveAgreeOnMeanSize) {
  const std::vector<double> probs = {0.02, 0.9, 0.001, 0.45, 0.25,
                                     0.13, 0.7, 0.08,  0.3,  0.6};
  const auto naive = MakeSubsetSampler(SamplerKind::kNaive, probs);
  const auto bucket = MakeSubsetSampler(SamplerKind::kBucket, probs);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(bucket.ok());

  constexpr int kTrials = 200000;
  auto mean_size = [&](const SubsetSampler& sampler, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::uint32_t> out;
    std::uint64_t total = 0;
    for (int t = 0; t < kTrials; ++t) {
      out.clear();
      sampler.Sample(rng, &out);
      total += out.size();
    }
    return static_cast<double>(total) / kTrials;
  };

  const double mu = (*naive)->expected_count();
  EXPECT_NEAR(mean_size(**naive, 1), mu, 0.02);
  EXPECT_NEAR(mean_size(**bucket, 2), mu, 0.02);
}

}  // namespace
}  // namespace subsim
