// Concurrency soak for MetricsRegistry: 16 writer threads hammer shared
// counters, a histogram, and a gauge while a reader snapshots the whole
// registry in a loop. Run under the TSan preset in CI, this is the data-
// race gate for the sharded relaxed-atomic write path; the final
// snapshot additionally proves no increment is ever lost.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "subsim/obs/metrics.h"
#include "subsim/obs/phase_tracer.h"

namespace subsim {
namespace {

TEST(MetricsConcurrencyTest, WritersAndSnapshotReaderDoNotRace) {
  constexpr int kWriters = 16;
  constexpr int kOpsPerWriter = 20000;

  MetricsRegistry registry;
  std::atomic<int> running{kWriters};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&registry, &running, t] {
      // Half the threads acquire handles up front (the hot-path idiom),
      // the other half exercise concurrent find-or-create registration.
      MetricsRegistry::CounterHandle counter = registry.Counter("soak.ops");
      MetricsRegistry::HistogramHandle histogram =
          registry.Histogram("soak.sizes");
      MetricsRegistry::GaugeHandle gauge = registry.Gauge("soak.level");
      for (int i = 0; i < kOpsPerWriter; ++i) {
        if (t % 2 == 0) {
          counter.Increment();
          histogram.Observe(static_cast<std::uint64_t>(i % 257));
          gauge.Set(static_cast<double>(i));
        } else {
          registry.Counter("soak.ops").Increment();
          registry.Histogram("soak.sizes")
              .Observe(static_cast<std::uint64_t>(i % 257));
          registry.Gauge("soak.level").Set(static_cast<double>(i));
        }
      }
      running.fetch_sub(1, std::memory_order_release);
    });
  }

  // Reader: snapshot continuously while the writers run. Counts observed
  // mid-flight must be monotone non-decreasing and never overshoot.
  std::uint64_t last_count = 0;
  while (running.load(std::memory_order_acquire) > 0) {
    const MetricsSnapshot snapshot = registry.Snapshot();
    const auto it = snapshot.counters.find("soak.ops");
    const std::uint64_t count = it == snapshot.counters.end() ? 0 : it->second;
    EXPECT_GE(count, last_count);
    EXPECT_LE(count,
              static_cast<std::uint64_t>(kWriters) * kOpsPerWriter);
    last_count = count;
  }
  for (std::thread& writer : writers) {
    writer.join();
  }

  const MetricsSnapshot final_snapshot = registry.Snapshot();
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kWriters) * kOpsPerWriter;
  EXPECT_EQ(final_snapshot.counters.at("soak.ops"), expected);
  const HistogramSnapshot sizes = final_snapshot.histograms.at("soak.sizes");
  EXPECT_EQ(sizes.count, expected);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t bucket : sizes.buckets) {
    bucket_total += bucket;
  }
  EXPECT_EQ(bucket_total, expected);
  // The gauge holds one of the written values (last write wins).
  const double level = final_snapshot.gauges.at("soak.level");
  EXPECT_GE(level, 0.0);
  EXPECT_LT(level, static_cast<double>(kOpsPerWriter));
}

TEST(MetricsConcurrencyTest, ConcurrentSpansRecordWithoutRacing) {
  MetricsRegistry registry;
  PhaseTracer tracer(/*max_spans=*/1 << 14, &registry);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &tracer] {
      MetricsRegistry::CounterHandle counter = registry.Counter("span.work");
      for (int i = 0; i < kSpansPerThread; ++i) {
        PhaseScope outer(&tracer, "outer");
        counter.Add(2);
        PhaseScope inner(&tracer, "inner");
        counter.Add(1);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  EXPECT_EQ(tracer.Spans().size(),
            static_cast<std::size_t>(2 * kThreads * kSpansPerThread));
  EXPECT_EQ(tracer.dropped_spans(), 0u);
  EXPECT_EQ(registry.Snapshot().counters.at("span.work"),
            static_cast<std::uint64_t>(3 * kThreads * kSpansPerThread));
}

}  // namespace
}  // namespace subsim
