// Unit tests for the observability layer: MetricsRegistry handle
// semantics, histogram bucketing, snapshot deltas, PhaseTracer span
// recording, and the exported JSON shape.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "subsim/obs/metrics.h"
#include "subsim/obs/obs_json.h"
#include "subsim/obs/phase_tracer.h"

namespace subsim {
namespace {

TEST(MetricsRegistryTest, CounterAccumulatesAcrossHandles) {
  MetricsRegistry registry;
  MetricsRegistry::CounterHandle a = registry.Counter("x");
  MetricsRegistry::CounterHandle b = registry.Counter("x");  // same metric
  a.Add(3);
  b.Increment();
  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.count("x"), 1u);
  EXPECT_EQ(snapshot.counters.at("x"), 4u);
}

TEST(MetricsRegistryTest, DefaultConstructedHandlesAreNoOps) {
  MetricsRegistry::CounterHandle counter;
  MetricsRegistry::GaugeHandle gauge;
  MetricsRegistry::HistogramHandle histogram;
  counter.Add(7);
  gauge.Set(1.0);
  histogram.Observe(5);  // must not crash
}

TEST(MetricsRegistryTest, GaugeIsLastWriteWins) {
  MetricsRegistry registry;
  MetricsRegistry::GaugeHandle g = registry.Gauge("ratio");
  g.Set(0.25);
  g.Set(-3.5);
  EXPECT_DOUBLE_EQ(registry.Snapshot().gauges.at("ratio"), -3.5);
}

TEST(MetricsRegistryTest, HistogramBucketIndexLog2Scheme) {
  using Handle = MetricsRegistry::HistogramHandle;
  EXPECT_EQ(Handle::BucketIndex(0), 0u);
  EXPECT_EQ(Handle::BucketIndex(1), 1u);   // [1, 2)
  EXPECT_EQ(Handle::BucketIndex(2), 2u);   // [2, 4)
  EXPECT_EQ(Handle::BucketIndex(3), 2u);
  EXPECT_EQ(Handle::BucketIndex(4), 3u);   // [4, 8)
  EXPECT_EQ(Handle::BucketIndex(7), 3u);
  EXPECT_EQ(Handle::BucketIndex(1ull << 31), 32u);
  EXPECT_EQ(Handle::BucketIndex((1ull << 32) - 1), 32u);
  // Everything >= 2^32 lands in the overflow bucket.
  EXPECT_EQ(Handle::BucketIndex(1ull << 32),
            HistogramSnapshot::kNumBuckets - 1);
  EXPECT_EQ(Handle::BucketIndex(~0ull), HistogramSnapshot::kNumBuckets - 1);
}

TEST(MetricsRegistryTest, HistogramCountSumMeanAndQuantile) {
  MetricsRegistry registry;
  MetricsRegistry::HistogramHandle h = registry.Histogram("sizes");
  for (std::uint64_t v : {0ull, 1ull, 1ull, 6ull, 40ull}) {
    h.Observe(v);
  }
  const HistogramSnapshot snapshot =
      registry.Snapshot().histograms.at("sizes");
  EXPECT_EQ(snapshot.count, 5u);
  EXPECT_EQ(snapshot.sum, 48u);
  EXPECT_DOUBLE_EQ(snapshot.Mean(), 48.0 / 5.0);
  EXPECT_EQ(snapshot.buckets[0], 1u);
  EXPECT_EQ(snapshot.buckets[1], 2u);
  EXPECT_EQ(snapshot.buckets[3], 1u);  // 6 in [4, 8)
  EXPECT_EQ(snapshot.buckets[6], 1u);  // 40 in [32, 64)
  // Median observation (1) sits in bucket 1, upper edge 2.
  EXPECT_DOUBLE_EQ(snapshot.ApproxQuantile(0.5), 2.0);
  // The max observation sits in bucket [32, 64).
  EXPECT_DOUBLE_EQ(snapshot.ApproxQuantile(1.0), 64.0);
}

TEST(MetricsRegistryTest, CounterDeltaSinceOmitsUnchanged) {
  MetricsRegistry registry;
  MetricsRegistry::CounterHandle a = registry.Counter("a");
  MetricsRegistry::CounterHandle b = registry.Counter("b");
  a.Add(2);
  b.Add(5);
  const MetricsSnapshot before = registry.Snapshot();
  a.Add(10);
  const auto delta = registry.Snapshot().CounterDeltaSince(before);
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta.at("a"), 10u);
}

TEST(MetricsRegistryTest, WritesFromManyThreadsAllLand) {
  MetricsRegistry registry;
  MetricsRegistry::CounterHandle counter = registry.Counter("n");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter]() mutable {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(registry.Snapshot().counters.at("n"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(PhaseTracerTest, RecordsNestedSpansWithDepths) {
  PhaseTracer tracer;
  {
    PhaseScope outer(&tracer, "outer");
    { PhaseScope inner(&tracer, "inner"); }
  }
  const std::vector<PhaseSpan> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 2u);
  // Children complete (and record) before their parent.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0);
  EXPECT_GE(spans[1].seconds, spans[0].seconds);
}

TEST(PhaseTracerTest, SpanAttributesCounterDeltas) {
  MetricsRegistry registry;
  PhaseTracer tracer(/*max_spans=*/16, &registry);
  MetricsRegistry::CounterHandle counter = registry.Counter("work");
  counter.Add(5);  // before the span: must not be attributed
  {
    PhaseScope span(&tracer, "phase");
    counter.Add(3);
  }
  const std::vector<PhaseSpan> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].counter_deltas.count("work"), 1u);
  EXPECT_EQ(spans[0].counter_deltas.at("work"), 3u);
}

TEST(PhaseTracerTest, BoundedRetentionCountsDrops) {
  PhaseTracer tracer(/*max_spans=*/2);
  for (int i = 0; i < 5; ++i) {
    PhaseScope span(&tracer, "s");
  }
  EXPECT_EQ(tracer.Spans().size(), 2u);
  EXPECT_EQ(tracer.dropped_spans(), 3u);
}

TEST(PhaseTracerTest, NullTracerDegradesToStopwatch) {
  PhaseScope span(nullptr, "free-standing");
  EXPECT_GE(span.ElapsedSeconds(), 0.0);
  span.Close();  // idempotent, no tracer to record into
  span.Close();
}

TEST(ObsJsonTest, EmitsDocumentedSchema) {
  MetricsRegistry registry;
  PhaseTracer tracer(/*max_spans=*/16, &registry);
  registry.Counter("rr.sets_generated").Add(12);
  registry.Gauge("opim_c.approx_ratio").Set(0.73);
  registry.Histogram("rr.set_size").Observe(9);
  { PhaseScope span(&tracer, "opim_c.run"); }

  const std::string json = ObsJson(registry.Snapshot(), &tracer);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"counters\":{\"rr.sets_generated\":12}"),
            std::string::npos);
  EXPECT_NE(json.find("\"opim_c.approx_ratio\":0.73"), std::string::npos);
  EXPECT_NE(json.find("\"rr.set_size\":{\"count\":1,\"sum\":9"),
            std::string::npos);
  EXPECT_NE(json.find("\"spans\":[{\"name\":\"opim_c.run\""),
            std::string::npos);
  // Nothing was dropped, so the key is omitted.
  EXPECT_EQ(json.find("dropped_spans"), std::string::npos);

  // The fields variant splices into an enclosing object.
  const std::string fields = ObsJsonFields(registry.Snapshot(), &tracer);
  EXPECT_EQ(fields.rfind("\"schema_version\":1", 0), 0u);
  EXPECT_EQ("{" + fields + "}", ObsJson(registry.Snapshot(), &tracer)
                                    .substr(0, fields.size() + 2));
}

}  // namespace
}  // namespace subsim
