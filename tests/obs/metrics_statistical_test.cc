// Statistical harness for the generator instrumentation: the numbers the
// metrics registry reports must be *correct*, not just monotone.
//
// On a WC-weighted Erdős–Rényi graph (every in-list uniform, so SUBSIM
// runs the geometric-skip plan) two identities pin the counters down:
//
//  * `rr.set_size` histogram: SUBSIM samples the same RR-set distribution
//    as the vanilla generator (paper Section 3), so the metrics-reported
//    histogram must match the vanilla generator's empirical sizes within
//    chi-square tolerance.
//
//  * `rr.geometric_skips`: the skip kernel draws exactly emits+1
//    geometric samples per call (documented on SampleUniformSubsetSkips).
//    Under WC weights each in-list has p = 1/indeg, so a processed node
//    emits Binomial(indeg, 1/indeg) live edges — expectation exactly 1 —
//    and every added node is processed exactly once (the cycle backbone
//    keeps indeg >= 1 everywhere). Hence E[skips] = 2 * nodes_added.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"
#include "subsim/obs/metrics.h"
#include "subsim/obs/obs_context.h"
#include "subsim/rrset/parallel_fill.h"
#include "subsim/rrset/rr_collection.h"
#include "subsim/rrset/subsim_ic_generator.h"
#include "subsim/rrset/vanilla_ic_generator.h"

namespace subsim {
namespace {

constexpr NodeId kNodes = 200;
constexpr int kSets = 20000;

/// ER graph with a cycle backbone (indeg >= 1 everywhere) under WC
/// weights: every in-list is uniform with p = 1/indeg.
Graph WcErdosRenyiGraph() {
  Result<EdgeList> er = GenerateErdosRenyi(kNodes, 1200, 11);
  EXPECT_TRUE(er.ok());
  EdgeList list = std::move(er).value();
  for (NodeId v = 0; v < kNodes; ++v) {
    list.edges.push_back(Edge{v, (v + 1) % kNodes, 0.0});
  }
  EXPECT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list).ok());
  Result<Graph> graph = BuildGraph(std::move(list));
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

/// Two-sample chi-square over the log2 buckets, pooling sparse tail cells
/// so every cell has enough mass for the asymptotic to hold. With equal
/// sample counts the statistic is sum (a-b)^2 / (a+b).
double TwoSampleChiSquare(
    const std::array<std::uint64_t, HistogramSnapshot::kNumBuckets>& a,
    const std::array<std::uint64_t, HistogramSnapshot::kNumBuckets>& b,
    int* degrees_of_freedom) {
  double statistic = 0.0;
  int cells = 0;
  double pooled_a = 0.0;
  double pooled_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    pooled_a += static_cast<double>(a[i]);
    pooled_b += static_cast<double>(b[i]);
    if (pooled_a + pooled_b >= 16.0) {
      const double diff = pooled_a - pooled_b;
      statistic += diff * diff / (pooled_a + pooled_b);
      ++cells;
      pooled_a = pooled_b = 0.0;
    }
  }
  if (pooled_a + pooled_b > 0.0) {  // leftover tail mass
    const double diff = pooled_a - pooled_b;
    statistic += diff * diff / (pooled_a + pooled_b);
    ++cells;
  }
  *degrees_of_freedom = cells > 1 ? cells - 1 : 1;
  return statistic;
}

TEST(MetricsStatisticalTest, SetSizeHistogramMatchesVanillaEmpirical) {
  const Graph graph = WcErdosRenyiGraph();

  // SUBSIM fill with metrics attached: sizes land in `rr.set_size`.
  MetricsRegistry registry;
  SubsimIcGenerator subsim(graph, GeneralIcStrategy::kAuto,
                           /*naive_fallback_degree=*/0);
  RrCollection collection(kNodes);
  Rng subsim_rng(21);
  subsim.Fill(subsim_rng, kSets, &collection,
              ObsContext{&registry, nullptr});
  const MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramSnapshot sizes = snapshot.histograms.at("rr.set_size");
  ASSERT_EQ(sizes.count, static_cast<std::uint64_t>(kSets));
  EXPECT_EQ(snapshot.counters.at("rr.sets_generated"),
            static_cast<std::uint64_t>(kSets));
  EXPECT_EQ(snapshot.counters.at("rr.nodes_added"), sizes.sum);

  // Vanilla reference: bucket the empirical sizes with the same scheme.
  VanillaIcGenerator vanilla(graph);
  std::array<std::uint64_t, HistogramSnapshot::kNumBuckets> reference{};
  std::vector<NodeId> out;
  Rng vanilla_rng(22);
  for (int i = 0; i < kSets; ++i) {
    vanilla.Generate(vanilla_rng, &out);
    ++reference[MetricsRegistry::HistogramHandle::BucketIndex(out.size())];
  }

  int df = 0;
  const double statistic =
      TwoSampleChiSquare(sizes.buckets, reference, &df);
  // ~5-sigma acceptance band for a chi-square with df degrees of freedom
  // (mean df, variance 2*df): loose enough never to flake on a fixed
  // seed, tight enough that a mis-counted histogram (off-by-one bucket,
  // dropped sets) fails by orders of magnitude.
  EXPECT_LT(statistic, df + 5.0 * std::sqrt(2.0 * df) + 10.0)
      << "df=" << df;
}

TEST(MetricsStatisticalTest, GeometricSkipCountMatchesExpectation) {
  const Graph graph = WcErdosRenyiGraph();

  MetricsRegistry registry;
  SubsimIcGenerator subsim(graph, GeneralIcStrategy::kAuto,
                           /*naive_fallback_degree=*/0);
  RrCollection collection(kNodes);
  Rng rng(31);
  subsim.Fill(rng, kSets, &collection, ObsContext{&registry, nullptr});
  const MetricsSnapshot snapshot = registry.Snapshot();

  const std::uint64_t skips = snapshot.counters.at("rr.geometric_skips");
  const std::uint64_t nodes = snapshot.counters.at("rr.nodes_added");
  // draws = emits + 1 per call, one call per added node, E[emits] = 1
  // under WC: E[skips] = 2 * nodes_added. The emit count concentrates
  // hard over ~nodes_added Binomial summands, so 2% is many sigma.
  EXPECT_NEAR(static_cast<double>(skips), 2.0 * static_cast<double>(nodes),
              0.02 * 2.0 * static_cast<double>(nodes));

  // The uniform-skip plan never runs rejection sampling.
  EXPECT_EQ(snapshot.counters.at("rr.rejection_accepts"), 0u);

  // Cross-generator sanity: vanilla explores the same distribution, so
  // total nodes agree within a few percent at this sample count.
  VanillaIcGenerator vanilla(graph);
  std::vector<NodeId> out;
  Rng vanilla_rng(32);
  std::uint64_t vanilla_nodes = 0;
  for (int i = 0; i < kSets; ++i) {
    vanilla.Generate(vanilla_rng, &out);
    vanilla_nodes += out.size();
  }
  EXPECT_NEAR(static_cast<double>(nodes),
              static_cast<double>(vanilla_nodes),
              0.05 * static_cast<double>(vanilla_nodes));
}

/// Denser ER graph whose every in-degree clears the SUBSIM naive-fallback
/// threshold (16): a `FillCollection` SUBSIM fill — which uses the default
/// fallback — then runs the geometric-skip plan for *every* processed
/// node, so the skip-count identity applies to both kernels.
Graph DenseWcErdosRenyiGraph() {
  Result<EdgeList> er = GenerateErdosRenyi(kNodes, 8000, 13);
  EXPECT_TRUE(er.ok());
  EdgeList list = std::move(er).value();
  for (NodeId v = 0; v < kNodes; ++v) {
    list.edges.push_back(Edge{v, (v + 1) % kNodes, 0.0});
  }
  EXPECT_TRUE(AssignWeights(WeightModel::kWeightedCascade, {}, &list).ok());
  Result<Graph> graph = BuildGraph(std::move(list));
  EXPECT_TRUE(graph.ok());
  for (NodeId v = 0; v < kNodes; ++v) {
    EXPECT_GE(graph.value().InNeighbors(v).size(),
              static_cast<std::size_t>(
                  SubsimIcGenerator::kDefaultNaiveFallbackDegree))
        << "node " << v << " would take the naive plan";
  }
  return std::move(graph).value();
}

MetricsSnapshot FillSnapshot(const Graph& graph, FillKernel kernel,
                             std::uint64_t seed, std::size_t count) {
  MetricsRegistry registry;
  RrCollection collection(graph.num_nodes());
  RngStream rng = MakeRngStream(seed, 1);
  FillRequest request;
  request.kind = GeneratorKind::kSubsimIc;
  request.graph = &graph;
  request.rng = &rng;
  request.count = count;
  request.obs = ObsContext{&registry, nullptr};
  request.kernel = kernel;
  EXPECT_TRUE(FillCollection(request, &collection).ok());
  return registry.Snapshot();
}

TEST(MetricsStatisticalTest, BatchedSetSizesMatchScalarDistribution) {
  // Independent seeds on purpose: with a shared seed the streams are
  // byte-identical (pinned elsewhere), which would make this vacuous.
  // Sampled independently, the two kernels must still draw from the same
  // RR-size distribution — a chi-square over the `rr.set_size` histogram
  // catches a batched kernel that is subtly wrong but self-consistent.
  const Graph graph = DenseWcErdosRenyiGraph();
  const HistogramSnapshot scalar =
      FillSnapshot(graph, FillKernel::kScalar, 61, kSets)
          .histograms.at("rr.set_size");
  const HistogramSnapshot batched =
      FillSnapshot(graph, FillKernel::kBatched, 62, kSets)
          .histograms.at("rr.set_size");
  ASSERT_EQ(scalar.count, static_cast<std::uint64_t>(kSets));
  ASSERT_EQ(batched.count, static_cast<std::uint64_t>(kSets));

  int df = 0;
  const double statistic =
      TwoSampleChiSquare(scalar.buckets, batched.buckets, &df);
  EXPECT_LT(statistic, df + 5.0 * std::sqrt(2.0 * df) + 10.0) << "df=" << df;
}

TEST(MetricsStatisticalTest, BatchedCountersExactlyEqualScalarSameSeed) {
  // Same seed: byte-identical streams mean the semantic counters — and
  // the skip draws behind them — must agree *exactly*, not statistically.
  const Graph graph = DenseWcErdosRenyiGraph();
  const MetricsSnapshot scalar =
      FillSnapshot(graph, FillKernel::kScalar, 71, 4000);
  const MetricsSnapshot batched =
      FillSnapshot(graph, FillKernel::kBatched, 71, 4000);
  for (const char* key :
       {"rr.sets_generated", "rr.nodes_added", "rr.edges_examined",
        "rr.geometric_skips", "rr.rejection_accepts", "rr.sentinel_hits"}) {
    EXPECT_EQ(scalar.counters.at(key), batched.counters.at(key)) << key;
  }
  EXPECT_EQ(scalar.histograms.at("rr.set_size").buckets,
            batched.histograms.at("rr.set_size").buckets);

  // Kernel-implementation counters are the one place the kernels differ.
  EXPECT_EQ(scalar.counters.at("rr.batch_chunks"), 0u);
  EXPECT_GT(batched.counters.at("rr.batch_chunks"), 0u);
  EXPECT_GT(batched.counters.at("rr.prefetch_lines"), 0u);

  // Every in-degree clears the fallback threshold, so each processed node
  // is one skip-kernel call: draws = emits + 1, E[emits] = 1 under WC,
  // hence skips == 2 * nodes_added in expectation (2% is many sigma at
  // this sample size) — for the batched kernel just like the scalar one.
  const double nodes =
      static_cast<double>(batched.counters.at("rr.nodes_added"));
  const double skips =
      static_cast<double>(batched.counters.at("rr.geometric_skips"));
  EXPECT_NEAR(skips, 2.0 * nodes, 0.02 * 2.0 * nodes);
}

TEST(MetricsStatisticalTest, AttachingMetricsDoesNotPerturbRngStream) {
  const Graph graph = WcErdosRenyiGraph();

  SubsimIcGenerator plain(graph, GeneralIcStrategy::kAuto, 0);
  RrCollection plain_sets(kNodes);
  Rng plain_rng(41);
  plain.Fill(plain_rng, 500, &plain_sets);

  MetricsRegistry registry;
  SubsimIcGenerator instrumented(graph, GeneralIcStrategy::kAuto, 0);
  RrCollection obs_sets(kNodes);
  Rng obs_rng(41);
  instrumented.Fill(obs_rng, 500, &obs_sets,
                    ObsContext{&registry, nullptr});

  ASSERT_EQ(plain_sets.num_sets(), obs_sets.num_sets());
  for (std::size_t i = 0; i < plain_sets.num_sets(); ++i) {
    const auto a = plain_sets.View(static_cast<RrId>(i)).ToVector();
    const auto b = obs_sets.View(static_cast<RrId>(i)).ToVector();
    ASSERT_EQ(a.size(), b.size()) << "set " << i;
    for (std::size_t j = 0; j < a.size(); ++j) {
      ASSERT_EQ(a[j], b[j]) << "set " << i << " pos " << j;
    }
  }
}

}  // namespace
}  // namespace subsim
