// Regression test for HIST's truncation metering: on a high-influence
// fixture the whole point of the sentinel set (paper Section 4) is that
// truncated RR sets stop early, so the metrics must show (a) sentinel
// hits actually happening and (b) truncated sets strictly smaller on
// average than untruncated ones. A regression that disables hit-and-stop
// (or meters the phases into the wrong counters) trips this immediately.

#include <gtest/gtest.h>

#include <cstdint>

#include "subsim/algo/registry.h"
#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"
#include "subsim/obs/metrics.h"
#include "subsim/obs/obs_context.h"

namespace subsim {
namespace {

/// Dense uniform-IC ER graph: cascades routinely cover a large fraction
/// of the graph, so sentinels truncate aggressively.
Graph HighInfluenceGraph() {
  Result<EdgeList> er = GenerateErdosRenyi(300, 2400, 7);
  EXPECT_TRUE(er.ok());
  WeightModelParams params;
  params.uniform_p = 0.25;
  EXPECT_TRUE(
      AssignWeights(WeightModel::kUniformIc, params, &er.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(er).value());
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(HistMetricsTest, TruncatedSetsAreSmallerAndSentinelsHit) {
  const Graph graph = HighInfluenceGraph();
  const auto hist = MakeImAlgorithm("hist");
  ASSERT_TRUE(hist.ok());

  MetricsRegistry registry;
  ImOptions options;
  options.k = 5;
  options.epsilon = 0.3;
  options.rng_seed = 13;
  options.generator = GeneratorKind::kSubsimIc;
  options.num_threads = 1;
  options.obs = ObsContext{&registry, nullptr};

  const Result<ImResult> result = (*hist)->Run(graph, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->sentinel_size, 0u);

  const MetricsSnapshot snapshot = registry.Snapshot();
  const std::uint64_t truncated_sets =
      snapshot.counters.at("hist.truncated_sets");
  const std::uint64_t truncated_nodes =
      snapshot.counters.at("hist.truncated_nodes");
  const std::uint64_t untruncated_sets =
      snapshot.counters.at("hist.untruncated_sets");
  const std::uint64_t untruncated_nodes =
      snapshot.counters.at("hist.untruncated_nodes");
  const std::uint64_t sentinel_hit_sets =
      snapshot.counters.at("hist.sentinel_hit_sets");

  ASSERT_GT(truncated_sets, 0u);
  ASSERT_GT(untruncated_sets, 0u);

  // Sentinel hit-rate must be positive: on this fixture most cascades
  // reach a high-influence sentinel.
  EXPECT_GT(sentinel_hit_sets, 0u);
  EXPECT_LE(sentinel_hit_sets, truncated_sets);

  // Average truncated size strictly below average untruncated size —
  // the truncation saving the paper's two-phase analysis banks on.
  const double truncated_avg = static_cast<double>(truncated_nodes) /
                               static_cast<double>(truncated_sets);
  const double untruncated_avg = static_cast<double>(untruncated_nodes) /
                                 static_cast<double>(untruncated_sets);
  EXPECT_LT(truncated_avg, untruncated_avg)
      << "truncated avg " << truncated_avg << " vs untruncated avg "
      << untruncated_avg;

  // The fills are metered exhaustively: every phase-1/phase-2 set is
  // either truncated or untruncated, and together they are all the sets.
  EXPECT_EQ(truncated_sets + untruncated_sets,
            snapshot.counters.at("rr.sets_generated"));
}

}  // namespace
}  // namespace subsim
