#include "subsim/eval/exact_spread.h"

#include <gtest/gtest.h>

#include "subsim/eval/spread_estimator.h"
#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"

namespace subsim {
namespace {

Graph TinyGraph() {
  EdgeList list;
  list.num_nodes = 4;
  list.edges = {{0, 1, 0.5}, {1, 2, 0.5}, {0, 3, 0.25}, {3, 2, 1.0}};
  Result<Graph> graph = BuildGraph(std::move(list));
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(ExactSpreadTest, HandComputedChain) {
  // 0 -> 1 (0.5) -> 2 (0.5): I({0}) = 1 + 0.5 + 0.25.
  EdgeList list = MakePath(3);
  list.edges[0].weight = 0.5;
  list.edges[1].weight = 0.5;
  Result<Graph> graph = BuildGraph(std::move(list));
  ASSERT_TRUE(graph.ok());
  const std::vector<NodeId> seeds = {0};
  const Result<double> spread = ExactSpreadIc(*graph, seeds);
  ASSERT_TRUE(spread.ok());
  EXPECT_NEAR(*spread, 1.75, 1e-12);
}

TEST(ExactSpreadTest, HandComputedDiamond) {
  // I({0}) on the tiny graph: node 0 always; node 1 w.p. 0.5; node 3 w.p.
  // 0.25; node 2 = 1 - (1 - 0.25)(1 - 0.25) with paths 0-1-2 (0.25) and
  // 0-3-2 (0.25), independent edges -> Pr = 1 - 0.75 * 0.75 = 0.4375.
  const Graph graph = TinyGraph();
  const std::vector<NodeId> seeds = {0};
  const Result<double> spread = ExactSpreadIc(graph, seeds);
  ASSERT_TRUE(spread.ok());
  EXPECT_NEAR(*spread, 1.0 + 0.5 + 0.25 + 0.4375, 1e-12);
}

TEST(ExactSpreadTest, AllSeedsCoverGraph) {
  const Graph graph = TinyGraph();
  const std::vector<NodeId> seeds = {0, 1, 2, 3};
  const Result<double> spread = ExactSpreadIc(graph, seeds);
  ASSERT_TRUE(spread.ok());
  EXPECT_NEAR(*spread, 4.0, 1e-12);
}

TEST(ExactSpreadTest, RefusesLargeGraphs) {
  EdgeList list = MakeComplete(7);  // 42 edges > 24 limit
  for (Edge& e : list.edges) {
    e.weight = 0.1;
  }
  Result<Graph> graph = BuildGraph(std::move(list));
  ASSERT_TRUE(graph.ok());
  const std::vector<NodeId> seeds = {0};
  EXPECT_FALSE(ExactSpreadIc(*graph, seeds).ok());
}

TEST(ExactInfluenceProbabilityTest, HandComputed) {
  const Graph graph = TinyGraph();
  Result<double> p = ExactInfluenceProbabilityIc(graph, 0, 2);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 0.4375, 1e-12);

  p = ExactInfluenceProbabilityIc(graph, 2, 0);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 0.0, 1e-12);  // no reverse path

  p = ExactInfluenceProbabilityIc(graph, 3, 2);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 1.0, 1e-12);  // weight-1 edge

  p = ExactInfluenceProbabilityIc(graph, 1, 1);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 1.0, 1e-12);  // self-reachability
}

TEST(ExactSpreadTest, AgreesWithMonteCarlo) {
  const Graph graph = TinyGraph();
  SpreadEstimator estimator(graph, CascadeModel::kIndependentCascade);
  Rng rng(1);
  const std::vector<NodeId> seeds = {0, 3};
  const Result<double> exact = ExactSpreadIc(graph, seeds);
  ASSERT_TRUE(exact.ok());
  const SpreadEstimate mc = estimator.Estimate(seeds, 300000, rng);
  EXPECT_NEAR(mc.spread, *exact, 5.0 * mc.std_error + 1e-3);
}

TEST(ExactOptimalSeedSetTest, FindsObviousOptimum) {
  // Star center dominates any leaf.
  EdgeList list = MakeStar(4);
  for (Edge& e : list.edges) {
    e.weight = 0.9;
  }
  Result<Graph> graph = BuildGraph(std::move(list));
  ASSERT_TRUE(graph.ok());
  const Result<ExactOptimum> best = ExactOptimalSeedSetIc(*graph, 1);
  ASSERT_TRUE(best.ok());
  ASSERT_EQ(best->seeds.size(), 1u);
  EXPECT_EQ(best->seeds[0], 0u);
  EXPECT_NEAR(best->spread, 1.0 + 4 * 0.9, 1e-12);
}

TEST(ExactOptimalSeedSetTest, KTwoPicksComplementaryNodes) {
  // Two disjoint chains: optimum must take one node from each.
  EdgeList list;
  list.num_nodes = 4;
  list.edges = {{0, 1, 1.0}, {2, 3, 1.0}};
  Result<Graph> graph = BuildGraph(std::move(list));
  ASSERT_TRUE(graph.ok());
  const Result<ExactOptimum> best = ExactOptimalSeedSetIc(*graph, 2);
  ASSERT_TRUE(best.ok());
  EXPECT_NEAR(best->spread, 4.0, 1e-12);
  ASSERT_EQ(best->seeds.size(), 2u);
  EXPECT_TRUE((best->seeds[0] == 0 && best->seeds[1] == 2));
}

TEST(ExactOptimalSeedSetTest, ValidatesArguments) {
  const Graph graph = TinyGraph();
  EXPECT_FALSE(ExactOptimalSeedSetIc(graph, 0).ok());
  EXPECT_FALSE(ExactOptimalSeedSetIc(graph, 5).ok());
}

}  // namespace
}  // namespace subsim
