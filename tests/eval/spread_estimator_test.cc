#include "subsim/eval/spread_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"

namespace subsim {
namespace {

Graph BuildWeighted(EdgeList list, double weight) {
  for (Edge& e : list.edges) {
    e.weight = weight;
  }
  Result<Graph> graph = BuildGraph(std::move(list));
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(SpreadEstimatorIcTest, SeedsAlwaysCounted) {
  const Graph graph = BuildWeighted(MakePath(5), 0.0);
  SpreadEstimator estimator(graph, CascadeModel::kIndependentCascade);
  Rng rng(1);
  const std::vector<NodeId> seeds = {0, 3};
  const SpreadEstimate estimate = estimator.Estimate(seeds, 100, rng);
  EXPECT_DOUBLE_EQ(estimate.spread, 2.0);
  EXPECT_DOUBLE_EQ(estimate.std_error, 0.0);
}

TEST(SpreadEstimatorIcTest, FullWeightPathSpreadsToEnd) {
  const Graph graph = BuildWeighted(MakePath(6), 1.0);
  SpreadEstimator estimator(graph, CascadeModel::kIndependentCascade);
  Rng rng(2);
  const std::vector<NodeId> seeds = {2};
  const SpreadEstimate estimate = estimator.Estimate(seeds, 50, rng);
  EXPECT_DOUBLE_EQ(estimate.spread, 4.0);  // nodes 2,3,4,5
}

TEST(SpreadEstimatorIcTest, MatchesClosedFormOnTwoNodeChain) {
  // 0 -> 1 with p = 0.3: I({0}) = 1.3.
  EdgeList list = MakePath(2);
  list.edges[0].weight = 0.3;
  Result<Graph> graph = BuildGraph(std::move(list));
  ASSERT_TRUE(graph.ok());
  SpreadEstimator estimator(*graph, CascadeModel::kIndependentCascade);
  Rng rng(3);
  const std::vector<NodeId> seeds = {0};
  const SpreadEstimate estimate = estimator.Estimate(seeds, 200000, rng);
  EXPECT_NEAR(estimate.spread, 1.3, 5.0 * estimate.std_error + 1e-3);
}

TEST(SpreadEstimatorIcTest, MatchesClosedFormOnStar) {
  // Star 0 -> {1..4} with p = 0.25: I({0}) = 1 + 4 * 0.25 = 2.
  const Graph graph = BuildWeighted(MakeStar(4), 0.25);
  SpreadEstimator estimator(graph, CascadeModel::kIndependentCascade);
  Rng rng(4);
  const std::vector<NodeId> seeds = {0};
  const SpreadEstimate estimate = estimator.Estimate(seeds, 200000, rng);
  EXPECT_NEAR(estimate.spread, 2.0, 5.0 * estimate.std_error + 1e-3);
}

TEST(SpreadEstimatorIcTest, DuplicateSeedsCountOnce) {
  const Graph graph = BuildWeighted(MakePath(3), 0.0);
  SpreadEstimator estimator(graph, CascadeModel::kIndependentCascade);
  Rng rng(5);
  const std::vector<NodeId> seeds = {1, 1, 1};
  EXPECT_DOUBLE_EQ(estimator.Estimate(seeds, 10, rng).spread, 1.0);
}

TEST(SpreadEstimatorLtTest, SeedsAlwaysCounted) {
  const Graph graph = BuildWeighted(MakePath(4), 0.0);
  SpreadEstimator estimator(graph, CascadeModel::kLinearThreshold);
  Rng rng(6);
  const std::vector<NodeId> seeds = {1};
  EXPECT_DOUBLE_EQ(estimator.Estimate(seeds, 50, rng).spread, 1.0);
}

TEST(SpreadEstimatorLtTest, MatchesClosedFormOnChain) {
  // LT chain 0 -> 1 -> 2, weight 0.4 each: node 1 activates iff
  // lambda_1 <= 0.4 (prob 0.4); then node 2 likewise.
  // I({0}) = 1 + 0.4 + 0.16 = 1.56.
  const Graph graph = BuildWeighted(MakePath(3), 0.4);
  SpreadEstimator estimator(graph, CascadeModel::kLinearThreshold);
  Rng rng(7);
  const std::vector<NodeId> seeds = {0};
  const SpreadEstimate estimate = estimator.Estimate(seeds, 200000, rng);
  EXPECT_NEAR(estimate.spread, 1.56, 5.0 * estimate.std_error + 2e-3);
}

TEST(SpreadEstimatorLtTest, ThresholdAccumulatesAcrossNeighbors) {
  // Node 2 has in-edges from 0 and 1 with weight 0.5 each. Seeding both
  // guarantees activation (sum = 1 >= lambda); seeding one gives 0.5.
  EdgeList list;
  list.num_nodes = 3;
  list.edges = {{0, 2, 0.5}, {1, 2, 0.5}};
  Result<Graph> graph = BuildGraph(std::move(list));
  ASSERT_TRUE(graph.ok());
  SpreadEstimator estimator(*graph, CascadeModel::kLinearThreshold);
  Rng rng(8);

  const std::vector<NodeId> both = {0, 1};
  const SpreadEstimate with_both = estimator.Estimate(both, 20000, rng);
  EXPECT_NEAR(with_both.spread, 3.0, 0.01);

  const std::vector<NodeId> one = {0};
  const SpreadEstimate with_one = estimator.Estimate(one, 200000, rng);
  EXPECT_NEAR(with_one.spread, 1.5, 5.0 * with_one.std_error + 2e-3);
}

TEST(SpreadEstimatorTest, LargerSeedSetNeverHurts) {
  Result<EdgeList> list = GenerateErdosRenyi(300, 2400, 9);
  ASSERT_TRUE(list.ok());
  ASSERT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  ASSERT_TRUE(graph.ok());
  SpreadEstimator estimator(*graph, CascadeModel::kIndependentCascade);
  Rng rng(10);
  const std::vector<NodeId> small = {0, 1};
  const std::vector<NodeId> large = {0, 1, 2, 3, 4, 5};
  const double spread_small = estimator.Estimate(small, 20000, rng).spread;
  const double spread_large = estimator.Estimate(large, 20000, rng).spread;
  EXPECT_GE(spread_large, spread_small);
}

TEST(SpreadEstimatorTest, ZeroSimulationsGiveEmptyEstimate) {
  const Graph graph = BuildWeighted(MakePath(3), 0.5);
  SpreadEstimator estimator(graph, CascadeModel::kIndependentCascade);
  Rng rng(11);
  const std::vector<NodeId> seeds = {0};
  const SpreadEstimate estimate = estimator.Estimate(seeds, 0, rng);
  EXPECT_DOUBLE_EQ(estimate.spread, 0.0);
  EXPECT_EQ(estimate.simulations, 0u);
}

TEST(CascadeModelTest, Names) {
  EXPECT_STREQ(CascadeModelName(CascadeModel::kIndependentCascade), "IC");
  EXPECT_STREQ(CascadeModelName(CascadeModel::kLinearThreshold), "LT");
}

}  // namespace
}  // namespace subsim
