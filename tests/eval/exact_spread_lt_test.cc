#include "subsim/eval/exact_spread_lt.h"

#include <gtest/gtest.h>

#include <cmath>

#include "subsim/eval/spread_estimator.h"
#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/rrset/lt_generator.h"

namespace subsim {
namespace {

Graph BuildWeighted(EdgeList list, double weight) {
  for (Edge& e : list.edges) {
    e.weight = weight;
  }
  Result<Graph> graph = BuildGraph(std::move(list));
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(ExactSpreadLtTest, ChainMatchesHandComputation) {
  // 0 -> 1 -> 2 with weight 0.4: I({0}) = 1 + 0.4 + 0.16.
  const Graph graph = BuildWeighted(MakePath(3), 0.4);
  const std::vector<NodeId> seeds = {0};
  const Result<double> spread = ExactSpreadLt(graph, seeds);
  ASSERT_TRUE(spread.ok()) << spread.status().ToString();
  EXPECT_NEAR(*spread, 1.56, 1e-12);
}

TEST(ExactSpreadLtTest, SharedTargetAccumulates) {
  // 0 -> 2 (0.5) and 1 -> 2 (0.5): seeding both, node 2's live edge comes
  // from an active node with probability 0.5 + 0.5 = 1... careful: under
  // live-edge LT node 2 keeps exactly one of the two edges (each w.p. 0.5)
  // and both sources are active, so 2 activates with probability 1.
  EdgeList list;
  list.num_nodes = 3;
  list.edges = {{0, 2, 0.5}, {1, 2, 0.5}};
  Result<Graph> graph = BuildGraph(std::move(list));
  ASSERT_TRUE(graph.ok());

  const std::vector<NodeId> both = {0, 1};
  Result<double> spread = ExactSpreadLt(*graph, both);
  ASSERT_TRUE(spread.ok());
  EXPECT_NEAR(*spread, 3.0, 1e-12);

  const std::vector<NodeId> one = {0};
  spread = ExactSpreadLt(*graph, one);
  ASSERT_TRUE(spread.ok());
  EXPECT_NEAR(*spread, 1.5, 1e-12);
}

TEST(ExactSpreadLtTest, AgreesWithForwardMonteCarlo) {
  EdgeList list;
  list.num_nodes = 5;
  list.edges = {{0, 1, 0.6}, {1, 2, 0.3}, {0, 2, 0.3}, {2, 3, 0.8},
                {3, 4, 0.5}, {1, 4, 0.2}};
  Result<Graph> graph = BuildGraph(std::move(list));
  ASSERT_TRUE(graph.ok());

  const std::vector<NodeId> seeds = {0};
  const Result<double> exact = ExactSpreadLt(*graph, seeds);
  ASSERT_TRUE(exact.ok());

  SpreadEstimator estimator(*graph, CascadeModel::kLinearThreshold);
  Rng rng(1);
  const SpreadEstimate mc = estimator.Estimate(seeds, 400000, rng);
  EXPECT_NEAR(mc.spread, *exact, 5.0 * mc.std_error + 1e-3);
}

TEST(ExactSpreadLtTest, AgreesWithLtRrSetFrequencies) {
  // Lemma 1 under LT: Pr[u in random RR set] * n = I({u}).
  EdgeList list;
  list.num_nodes = 4;
  list.edges = {{0, 1, 0.7}, {1, 2, 0.5}, {2, 3, 0.4}, {0, 3, 0.3}};
  Result<Graph> graph = BuildGraph(std::move(list));
  ASSERT_TRUE(graph.ok());

  auto generator = LtGenerator::Create(*graph);
  ASSERT_TRUE(generator.ok());
  constexpr int kTrials = 300000;
  Rng rng(2);
  std::vector<NodeId> out;
  std::vector<int> counts(4, 0);
  for (int t = 0; t < kTrials; ++t) {
    (*generator)->Generate(rng, &out);
    for (NodeId v : out) {
      ++counts[v];
    }
  }
  for (NodeId u = 0; u < 4; ++u) {
    const NodeId seed_array[1] = {u};
    const Result<double> influence = ExactSpreadLt(*graph, seed_array);
    ASSERT_TRUE(influence.ok());
    const double expected = *influence / 4.0;
    const double freq = static_cast<double>(counts[u]) / kTrials;
    const double sigma = std::sqrt(expected * (1.0 - expected) / kTrials);
    EXPECT_NEAR(freq, expected, 5.0 * sigma + 1e-4) << "node " << u;
  }
}

TEST(ExactSpreadLtTest, RefusesOverweightedGraphs) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 2, 0.9);
  builder.AddEdge(1, 2, 0.9);
  Result<Graph> graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  const std::vector<NodeId> seeds = {0};
  EXPECT_FALSE(ExactSpreadLt(*graph, seeds).ok());
}

TEST(ExactSpreadLtTest, RefusesHugeWorldCounts) {
  EdgeList list = MakeComplete(12);
  for (Edge& e : list.edges) {
    e.weight = 1.0 / 11.0;
  }
  Result<Graph> graph = BuildGraph(std::move(list));
  ASSERT_TRUE(graph.ok());
  const std::vector<NodeId> seeds = {0};
  EXPECT_FALSE(ExactSpreadLt(*graph, seeds, /*max_worlds=*/1000).ok());
}

TEST(ExactInfluenceProbabilityLtTest, HandComputedChain) {
  const Graph graph = BuildWeighted(MakePath(3), 0.4);
  Result<double> p = ExactInfluenceProbabilityLt(graph, 0, 2);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 0.16, 1e-12);
  p = ExactInfluenceProbabilityLt(graph, 2, 0);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(*p, 0.0, 1e-12);
}

}  // namespace
}  // namespace subsim
