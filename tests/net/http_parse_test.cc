// Unit tests for the socket-free HTTP/1.1 request parser: framing,
// incremental feeding in arbitrary chunk sizes, header validation, limits,
// pipelining via TakeRemainder, and response serialization. Anything that
// gets past these tests is also continuously exercised by
// fuzz/http_parse_fuzz.cc.

#include "subsim/net/http.h"

#include <gtest/gtest.h>

#include <string>

namespace subsim {
namespace {

using State = HttpRequestParser::State;

TEST(HttpParseTest, ParsesSimpleGet) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Consume("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"),
            State::kComplete);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/healthz");
  EXPECT_EQ(parser.request().version, "HTTP/1.1");
  EXPECT_TRUE(parser.request().body.empty());
  ASSERT_NE(parser.request().FindHeader("host"), nullptr);
  EXPECT_EQ(*parser.request().FindHeader("HOST"), "x");
}

TEST(HttpParseTest, ParsesPostWithBody) {
  HttpRequestParser parser;
  const std::string wire =
      "POST /v1/select_seeds HTTP/1.1\r\n"
      "Content-Length: 11\r\n"
      "\r\n"
      "graph=g k=5";
  ASSERT_EQ(parser.Consume(wire), State::kComplete);
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().body, "graph=g k=5");
}

TEST(HttpParseTest, ByteAtATimeFeedMatchesOneShot) {
  const std::string wire =
      "POST /q HTTP/1.1\r\nContent-Length: 5\r\nX-A: b\r\n\r\nhello";
  HttpRequestParser parser;
  for (const char c : wire) {
    ASSERT_NE(parser.Consume(std::string_view(&c, 1)), State::kError);
  }
  ASSERT_EQ(parser.state(), State::kComplete);
  EXPECT_EQ(parser.request().body, "hello");
  ASSERT_NE(parser.request().FindHeader("x-a"), nullptr);
}

TEST(HttpParseTest, ToleratesBareLfLineEndings) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Consume("GET / HTTP/1.1\nHost: x\n\n"), State::kComplete);
  EXPECT_EQ(parser.request().target, "/");
}

TEST(HttpParseTest, NeedsMoreUntilBodyArrives) {
  HttpRequestParser parser;
  EXPECT_EQ(parser.Consume("POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\nab"),
            State::kNeedMore);
  EXPECT_EQ(parser.Consume("cd"), State::kComplete);
  EXPECT_EQ(parser.request().body, "abcd");
}

TEST(HttpParseTest, PipelinedBytesLandInRemainder) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Consume("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"),
            State::kComplete);
  EXPECT_EQ(parser.request().target, "/a");
  const std::string rest = parser.TakeRemainder();
  parser.Reset();
  ASSERT_EQ(parser.Consume(rest), State::kComplete);
  EXPECT_EQ(parser.request().target, "/b");
}

TEST(HttpParseTest, RejectsMalformedRequestLine) {
  const char* bad[] = {
      "GET\r\n\r\n",                     // missing target/version
      "GET / HTTP/2.0\r\n\r\n",          // unsupported version
      "G3T / HTTP/1.1\r\n\r\n",          // non-alpha method
      "GET /a b HTTP/1.1\r\n\r\n",       // space in target
      " GET / HTTP/1.1\r\n\r\n",         // leading space
  };
  for (const char* wire : bad) {
    HttpRequestParser parser;
    EXPECT_EQ(parser.Consume(wire), State::kError) << wire;
    EXPECT_FALSE(parser.error().ok()) << wire;
  }
}

TEST(HttpParseTest, RejectsMalformedHeaders) {
  const char* bad[] = {
      "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
      "GET / HTTP/1.1\r\nBad Name: x\r\n\r\n",
      "GET / HTTP/1.1\r\n: empty\r\n\r\n",
      "GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n",
      "GET / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\n",
  };
  for (const char* wire : bad) {
    HttpRequestParser parser;
    EXPECT_EQ(parser.Consume(wire), State::kError) << wire;
  }
}

TEST(HttpParseTest, RejectsTransferEncoding) {
  HttpRequestParser parser;
  EXPECT_EQ(
      parser.Consume("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
      State::kError);
}

TEST(HttpParseTest, EnforcesHeadLimit) {
  HttpRequestParser::Limits limits;
  limits.max_head_bytes = 64;
  HttpRequestParser parser(limits);
  const std::string wire =
      "GET / HTTP/1.1\r\nX-Pad: " + std::string(128, 'a') + "\r\n\r\n";
  EXPECT_EQ(parser.Consume(wire), State::kError);
}

TEST(HttpParseTest, EnforcesBodyLimit) {
  HttpRequestParser::Limits limits;
  limits.max_body_bytes = 8;
  HttpRequestParser parser(limits);
  EXPECT_EQ(parser.Consume("POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n"),
            State::kError);
}

TEST(HttpParseTest, ErrorStateIsStickyUntilReset) {
  HttpRequestParser parser;
  ASSERT_EQ(parser.Consume("BROKEN\r\n\r\n"), State::kError);
  EXPECT_EQ(parser.Consume("GET / HTTP/1.1\r\n\r\n"), State::kError);
  parser.Reset();
  EXPECT_EQ(parser.Consume("GET / HTTP/1.1\r\n\r\n"), State::kComplete);
}

TEST(HttpParseTest, WantsCloseSemantics) {
  HttpRequestParser keep;
  ASSERT_EQ(keep.Consume("GET / HTTP/1.1\r\n\r\n"), State::kComplete);
  EXPECT_FALSE(keep.request().WantsClose());

  HttpRequestParser close;
  ASSERT_EQ(close.Consume("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"),
            State::kComplete);
  EXPECT_TRUE(close.request().WantsClose());

  HttpRequestParser legacy;
  ASSERT_EQ(legacy.Consume("GET / HTTP/1.0\r\n\r\n"), State::kComplete);
  EXPECT_TRUE(legacy.request().WantsClose());
}

TEST(HttpParseTest, FormatsResponseWithContentLength) {
  HttpResponse response;
  response.status_code = 429;
  response.headers.emplace_back("Retry-After", "1");
  response.body = "slow down";
  const std::string wire = FormatHttpResponse(response, /*close=*/true);
  EXPECT_NE(wire.find("HTTP/1.1 429 "), std::string::npos);
  EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 9\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\nslow down"), std::string::npos);
}

}  // namespace
}  // namespace subsim
