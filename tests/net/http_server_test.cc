// End-to-end tests for the HTTP serving stack: server + client round
// trips, the ServeApp routes, bit-identical seeds between the wire and a
// direct engine call, and a deterministic overload-shedding scenario
// (1 worker + 1 queue slot + 3 concurrent requests = exactly one 429).
//
// Everything talks to the server through `HttpClient` — tests are outside
// src/subsim/net/ and therefore not allowed to make raw socket calls.

#include "subsim/net/http_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <utility>

#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"
#include "subsim/net/http_client.h"
#include "subsim/net/serve_app.h"
#include "subsim/serve/query.h"
#include "subsim/serve/query_engine.h"

namespace subsim {
namespace {

Graph ServeGraph(std::uint64_t seed) {
  Result<EdgeList> list = GenerateBarabasiAlbert(300, 3, false, seed);
  EXPECT_TRUE(list.ok());
  EXPECT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

/// The "seeds":[...] slice of a response JSON line; empty when absent.
std::string ExtractSeeds(const std::string& json) {
  const std::size_t start = json.find("\"seeds\":[");
  if (start == std::string::npos) {
    return "";
  }
  const std::size_t end = json.find(']', start);
  return json.substr(start, end - start + 1);
}

class ServeAppServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_.Register("g", ServeGraph(33)).ok());
    engine_ = std::make_unique<QueryEngine>(&registry_);
    app_ = std::make_unique<ServeApp>(engine_.get());
    HttpServer::Options options;
    options.num_workers = 2;
    options.metrics = &engine_->metrics();
    server_ = std::make_unique<HttpServer>(
        [this](const HttpRequest& request, const HttpRequestContext& context) {
          return app_->Handle(request, context);
        },
        options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Stop(); }

  GraphRegistry registry_;
  std::unique_ptr<QueryEngine> engine_;
  std::unique_ptr<ServeApp> app_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(ServeAppServerTest, HealthzReportsGraphs) {
  HttpClient client("127.0.0.1", server_->port());
  const auto response = client.Get("/healthz");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code, 200);
  EXPECT_NE(response->body.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(response->body.find("\"graphs\":1"), std::string::npos);
}

TEST_F(ServeAppServerTest, SelectSeedsMatchesDirectExecuteBitForBit) {
  const std::string query_line = "graph=g algo=opim-c k=6 eps=0.3 seed=11";
  HttpClient client("127.0.0.1", server_->port());
  const auto wire = client.Post("/v1/select_seeds", query_line);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  ASSERT_EQ(wire->status_code, 200) << wire->body;

  Result<SelectSeedsQuery> query = ParseSelectSeedsQuery(query_line);
  ASSERT_TRUE(query.ok());
  const QueryResponse direct = engine_->Execute(*query);
  ASSERT_TRUE(direct.status.ok());

  const std::string wire_seeds = ExtractSeeds(wire->body);
  const std::string direct_seeds =
      ExtractSeeds(FormatQueryResponseJson(direct));
  ASSERT_FALSE(wire_seeds.empty());
  EXPECT_EQ(wire_seeds, direct_seeds);
}

TEST_F(ServeAppServerTest, KeepAliveReusesOneConnection) {
  HttpClient client("127.0.0.1", server_->port());
  for (int i = 0; i < 3; ++i) {
    const auto response = client.Get("/healthz");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status_code, 200);
  }
  // All three rode the same accepted connection.
  const MetricsSnapshot snapshot = engine_->metrics().Snapshot();
  EXPECT_EQ(snapshot.counters.at("http.accepted"), 1u);
  EXPECT_GE(snapshot.counters.at("http.requests"), 3u);
}

TEST_F(ServeAppServerTest, MetricszCarriesGoldenKeysBeforeTraffic) {
  HttpClient client("127.0.0.1", server_->port());
  const auto response = client.Get("/metricsz");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status_code, 200);
  // Dashboards key on these names; they must exist even before the first
  // query (eager registration in QueryEngine / ServeApp / HttpServer).
  for (const char* key :
       {"\"serve.queries\"", "\"serve.shed\"", "\"serve.errors\"",
        "\"serve.coalesced\"", "\"serve.deadline_hits\"",
        "\"serve.queue_us\"", "\"serve.exec_us\"", "\"slo.queue_us_p50\"",
        "\"slo.queue_us_p99\"", "\"slo.exec_us_p50\"",
        "\"slo.exec_us_p99\"", "\"http.accepted\"", "\"http.requests\""}) {
    EXPECT_NE(response->body.find(key), std::string::npos) << key;
  }
}

TEST_F(ServeAppServerTest, BadInputsGetFourHundreds) {
  HttpClient client("127.0.0.1", server_->port());

  const auto missing = client.Get("/no/such/route");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status_code, 404);

  const auto wrong_method = client.Get("/v1/select_seeds");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status_code, 405);

  const auto bad_query = client.Post("/v1/select_seeds", "k=not-a-number");
  ASSERT_TRUE(bad_query.ok());
  EXPECT_EQ(bad_query->status_code, 400);

  const auto unknown_graph =
      client.Post("/v1/select_seeds", "graph=missing k=3");
  ASSERT_TRUE(unknown_graph.ok());
  EXPECT_EQ(unknown_graph->status_code, 404);
}

TEST_F(ServeAppServerTest, ExpiredDeadlineIsShedBeforeExecution) {
  // deadline_ms covers queue + exec; the queue alone cannot have consumed
  // it here, so drive the degraded path through the engine instead: a
  // 1 ms budget on a cold heavy query must still return a valid response
  // (either completed in time, or degraded with deadline_hit).
  HttpClient client("127.0.0.1", server_->port());
  const auto response = client.Post(
      "/v1/select_seeds", "graph=g algo=opim-c k=6 eps=0.1 deadline_ms=1");
  ASSERT_TRUE(response.ok());
  // Whatever happened, the answer is well-formed and carries a bound.
  EXPECT_TRUE(response->status_code == 200 || response->status_code == 429)
      << response->body;
  if (response->status_code == 200) {
    EXPECT_NE(ExtractSeeds(response->body), "");
  }
}

// The deterministic shed scenario: one worker pinned by a blocking
// handler, one queue slot occupied, so a third concurrent connection must
// bounce with 429 + Retry-After from the acceptor.
TEST(HttpServerShedTest, ThirdConcurrentRequestIsShedWith429) {
  MetricsRegistry metrics;
  std::atomic<int> entered{0};
  std::promise<void> release_promise;
  std::shared_future<void> release(release_promise.get_future());

  HttpServer::Options options;
  options.num_workers = 1;
  options.max_pending = 1;
  options.metrics = &metrics;
  HttpServer server(
      [&](const HttpRequest&, const HttpRequestContext&) {
        entered.fetch_add(1);
        release.wait();
        HttpResponse response;
        response.body = "done";
        return response;
      },
      options);
  ASSERT_TRUE(server.Start().ok());

  const auto wait_until = [](const std::function<bool()>& ready) {
    for (int i = 0; i < 5000 && !ready(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return ready();
  };

  // First request occupies the only worker.
  std::thread first([&] {
    HttpClient client("127.0.0.1", server.port());
    const auto response = client.Get("/a");
    EXPECT_TRUE(response.ok());
    EXPECT_EQ(response->status_code, 200);
  });
  ASSERT_TRUE(wait_until([&] { return entered.load() == 1; }));

  // Second occupies the single queue slot (accepted but not picked up).
  std::thread second([&] {
    HttpClient client("127.0.0.1", server.port());
    const auto response = client.Get("/b");
    EXPECT_TRUE(response.ok());
    EXPECT_EQ(response->status_code, 200);
  });
  ASSERT_TRUE(wait_until([&] {
    return metrics.Snapshot().counters.at("http.accepted") >= 2;
  }));

  // Third must be shed by the acceptor: fast 429, Retry-After set.
  HttpClient third("127.0.0.1", server.port());
  const auto shed = third.Get("/c");
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->status_code, 429);
  ASSERT_NE(shed->FindHeader("Retry-After"), nullptr);
  EXPECT_GE(metrics.Snapshot().counters.at("serve.shed"), 1u);

  release_promise.set_value();
  first.join();
  second.join();
  server.Stop();
}

// Stopping with a connection mid-flight must not hang or crash; queued
// connections drain with 503.
TEST(HttpServerShutdownTest, StopWithIdleKeepAliveConnection) {
  MetricsRegistry metrics;
  HttpServer::Options options;
  options.num_workers = 1;
  options.io_timeout_seconds = 1;
  options.metrics = &metrics;
  HttpServer server(
      [](const HttpRequest&, const HttpRequestContext&) {
        return HttpResponse{};
      },
      options);
  ASSERT_TRUE(server.Start().ok());

  HttpClient client("127.0.0.1", server.port());
  const auto response = client.Get("/x");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 200);
  // The connection is now idle and kept alive; Stop must still return.
  server.Stop();
}

}  // namespace
}  // namespace subsim
