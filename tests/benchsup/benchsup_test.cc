#include <gtest/gtest.h>

#include <sstream>

#include "subsim/benchsup/calibration.h"
#include "subsim/benchsup/datasets.h"
#include "subsim/benchsup/experiment.h"
#include "subsim/benchsup/reporting.h"
#include "subsim/graph/graph_stats.h"

namespace subsim {
namespace {

TEST(DatasetsTest, FourStandardDatasets) {
  const auto& specs = StandardDatasets();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "pokec-s");
  EXPECT_EQ(specs[1].name, "orkut-s");
  EXPECT_EQ(specs[2].name, "twitter-s");
  EXPECT_EQ(specs[3].name, "friendster-s");
}

TEST(DatasetsTest, FindByName) {
  EXPECT_TRUE(FindDataset("twitter-s").ok());
  EXPECT_FALSE(FindDataset("twitter").ok());
}

TEST(DatasetsTest, ScaledInstanceHasExpectedShape) {
  const Result<DatasetSpec> spec = FindDataset("pokec-s");
  ASSERT_TRUE(spec.ok());
  const Result<EdgeList> list = MakeDataset(*spec, 0.05, 1);
  ASSERT_TRUE(list.ok());
  EXPECT_GE(list->num_nodes, 2000u);
  const double avg =
      static_cast<double>(list->edges.size()) / list->num_nodes;
  // Density within a factor ~1.6 of the target.
  EXPECT_GT(avg, spec->avg_degree / 1.6);
  EXPECT_LT(avg, spec->avg_degree * 1.6);
}

TEST(DatasetsTest, UndirectedStandInsAreSymmetric) {
  const Result<DatasetSpec> spec = FindDataset("orkut-s");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->undirected);
}

TEST(DatasetsTest, InvalidScaleRejected) {
  const Result<DatasetSpec> spec = FindDataset("pokec-s");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(MakeDataset(*spec, 0.0, 1).ok());
  EXPECT_FALSE(MakeDataset(*spec, 1.5, 1).ok());
}

TEST(DatasetsTest, DeterministicPerSeed) {
  const Result<DatasetSpec> spec = FindDataset("twitter-s");
  ASSERT_TRUE(spec.ok());
  const Result<EdgeList> a = MakeDataset(*spec, 0.03, 9);
  const Result<EdgeList> b = MakeDataset(*spec, 0.03, 9);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->edges.size(), b->edges.size());
  for (std::size_t i = 0; i < a->edges.size(); i += 97) {
    EXPECT_EQ(a->edges[i].src, b->edges[i].src);
    EXPECT_EQ(a->edges[i].dst, b->edges[i].dst);
  }
}

TEST(CalibrationTest, WcVariantHitsTarget) {
  const Result<DatasetSpec> spec = FindDataset("pokec-s");
  ASSERT_TRUE(spec.ok());
  const Result<EdgeList> list = MakeDataset(*spec, 0.04, 2);
  ASSERT_TRUE(list.ok());
  const Result<CalibrationResult> calibration =
      CalibrateWcVariantTheta(*list, 50.0, 3);
  ASSERT_TRUE(calibration.ok()) << calibration.status().ToString();
  EXPECT_FALSE(calibration->saturated);
  EXPECT_GT(calibration->achieved_avg_size, 25.0);
  EXPECT_LT(calibration->achieved_avg_size, 100.0);
  EXPECT_GT(calibration->parameter, 0.0);
}

TEST(CalibrationTest, UniformPHitsTarget) {
  const Result<DatasetSpec> spec = FindDataset("pokec-s");
  ASSERT_TRUE(spec.ok());
  const Result<EdgeList> list = MakeDataset(*spec, 0.04, 2);
  ASSERT_TRUE(list.ok());
  const Result<CalibrationResult> calibration =
      CalibrateUniformP(*list, 50.0, 3);
  ASSERT_TRUE(calibration.ok());
  EXPECT_GT(calibration->achieved_avg_size, 25.0);
  EXPECT_LT(calibration->achieved_avg_size, 100.0);
  EXPECT_GT(calibration->parameter, 0.0);
  EXPECT_LE(calibration->parameter, 1.0);
}

TEST(CalibrationTest, MonotoneInTarget) {
  const Result<DatasetSpec> spec = FindDataset("pokec-s");
  ASSERT_TRUE(spec.ok());
  const Result<EdgeList> list = MakeDataset(*spec, 0.04, 2);
  ASSERT_TRUE(list.ok());
  const Result<CalibrationResult> small =
      CalibrateWcVariantTheta(*list, 20.0, 3);
  const Result<CalibrationResult> large =
      CalibrateWcVariantTheta(*list, 200.0, 3);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_LT(small->parameter, large->parameter);
}

TEST(CalibrationTest, RejectsBadTarget) {
  const Result<DatasetSpec> spec = FindDataset("pokec-s");
  ASSERT_TRUE(spec.ok());
  const Result<EdgeList> list = MakeDataset(*spec, 0.04, 2);
  ASSERT_TRUE(list.ok());
  EXPECT_FALSE(CalibrateWcVariantTheta(*list, 0.5, 3).ok());
}

TEST(ReportingTest, TableAlignsAndPrintsAllRows) {
  TablePrinter table({"dataset", "time", "speedup"});
  table.AddRow({"pokec-s", "1.25", "3.1x"});
  table.AddRow({"twitter-s", "10.50", "12.0x"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("dataset"), std::string::npos);
  EXPECT_NE(text.find("pokec-s"), std::string::npos);
  EXPECT_NE(text.find("12.0x"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
}

TEST(ReportingTest, FormatHelpers) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatSpeedup(10.0, 2.0), "5.0x");
  EXPECT_EQ(FormatSpeedup(10.0, 0.0), "-");
}

TEST(ExperimentArgsTest, ParsesAllFlags) {
  const char* argv[] = {"bench", "--scale=0.5", "--seed=11",
                        "--datasets=pokec-s,orkut-s", "--quick"};
  const Result<ExperimentArgs> args =
      ExperimentArgs::Parse(5, const_cast<char**>(argv), 0.25);
  ASSERT_TRUE(args.ok()) << args.status().ToString();
  EXPECT_DOUBLE_EQ(args->scale, 0.5);
  EXPECT_EQ(args->seed, 11u);
  EXPECT_TRUE(args->quick);
  ASSERT_EQ(args->datasets.size(), 2u);
  EXPECT_EQ(args->datasets[0], "pokec-s");
}

TEST(ExperimentArgsTest, DefaultsApply) {
  const char* argv[] = {"bench"};
  const Result<ExperimentArgs> args =
      ExperimentArgs::Parse(1, const_cast<char**>(argv), 0.3);
  ASSERT_TRUE(args.ok());
  EXPECT_DOUBLE_EQ(args->scale, 0.3);
  EXPECT_EQ(args->seed, 7u);
  EXPECT_FALSE(args->quick);
  EXPECT_EQ(SelectDatasets(*args).size(), 4u);
}

TEST(ExperimentArgsTest, RejectsUnknownFlagAndBadValues) {
  {
    const char* argv[] = {"bench", "--typo=1"};
    EXPECT_FALSE(
        ExperimentArgs::Parse(2, const_cast<char**>(argv), 0.25).ok());
  }
  {
    const char* argv[] = {"bench", "--scale=2.0"};
    EXPECT_FALSE(
        ExperimentArgs::Parse(2, const_cast<char**>(argv), 0.25).ok());
  }
  {
    const char* argv[] = {"bench", "--datasets=bogus"};
    EXPECT_FALSE(
        ExperimentArgs::Parse(2, const_cast<char**>(argv), 0.25).ok());
  }
}

TEST(BuildDatasetGraphTest, ProducesWeightedGraph) {
  WeightModelParams params;
  const Result<Graph> graph =
      BuildDatasetGraph("pokec-s", 0.03, 5, WeightModel::kWeightedCascade,
                        params);
  ASSERT_TRUE(graph.ok());
  const GraphStats stats = ComputeGraphStats(*graph);
  EXPECT_GE(stats.num_nodes, 2000u);
  // WC: every node with in-edges has weight sum exactly 1.
  EXPECT_LE(stats.max_in_weight_sum, 1.0 + 1e-9);
}

}  // namespace
}  // namespace subsim
