// Deadline-budgeted degradation contract (docs/serving.md): OPIM-C and
// IMM check the budget only at round boundaries, always finish round one,
// and a degraded run evaluates an exact prefix of the un-budgeted run's
// sample stream. `Deadline::AlreadyExpired()` makes the "budget gone"
// case deterministic — no clock, no flakiness.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "subsim/algo/registry.h"
#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"
#include "subsim/util/deadline.h"

namespace subsim {
namespace {

Graph DeadlineGraph() {
  Result<EdgeList> list = GenerateBarabasiAlbert(800, 4, false, 99);
  EXPECT_TRUE(list.ok());
  EXPECT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

const Graph& SharedGraph() {
  static const Graph* const kGraph = new Graph(DeadlineGraph());
  return *kGraph;
}

ImOptions BaseOptions() {
  ImOptions options;
  options.k = 8;
  options.epsilon = 0.1;  // tight: forces several doubling rounds
  options.rng_seed = 42;
  options.generator = GeneratorKind::kSubsimIc;
  return options;
}

class DeadlineDegradationTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(DeadlineDegradationTest, UnsetDeadlineChangesNothing) {
  const auto algorithm = MakeImAlgorithm(GetParam());
  ASSERT_TRUE(algorithm.ok());
  ImOptions options = BaseOptions();
  const Result<ImResult> plain = (*algorithm)->Run(SharedGraph(), options);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->deadline_hit);

  options.deadline = Deadline();  // explicitly unset
  const Result<ImResult> again = (*algorithm)->Run(SharedGraph(), options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(plain->seeds, again->seeds);
  EXPECT_EQ(plain->num_rr_sets, again->num_rr_sets);
}

TEST_P(DeadlineDegradationTest, ExpiredBudgetStillReturnsSeedsWithBound) {
  const auto algorithm = MakeImAlgorithm(GetParam());
  ASSERT_TRUE(algorithm.ok());
  ImOptions options = BaseOptions();
  options.deadline = Deadline::AlreadyExpired();

  const Result<ImResult> degraded = (*algorithm)->Run(SharedGraph(), options);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->deadline_hit);
  EXPECT_EQ(degraded->seeds.size(), options.k);
  // The achieved bound is honest: looser than (or equal to) requested.
  EXPECT_GT(degraded->achieved_epsilon, 0.0);

  // Fewer sets than the full-budget run: the budget actually truncated.
  const Result<ImResult> full =
      (*algorithm)->Run(SharedGraph(), BaseOptions());
  ASSERT_TRUE(full.ok());
  EXPECT_LT(degraded->num_rr_sets, full->num_rr_sets);
}

TEST_P(DeadlineDegradationTest, DegradedRunIsDeterministic) {
  const auto algorithm = MakeImAlgorithm(GetParam());
  ASSERT_TRUE(algorithm.ok());
  ImOptions options = BaseOptions();
  options.deadline = Deadline::AlreadyExpired();

  const Result<ImResult> a = (*algorithm)->Run(SharedGraph(), options);
  const Result<ImResult> b = (*algorithm)->Run(SharedGraph(), options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->seeds, b->seeds);
  EXPECT_EQ(a->num_rr_sets, b->num_rr_sets);
  EXPECT_DOUBLE_EQ(a->achieved_epsilon, b->achieved_epsilon);
}

TEST_P(DeadlineDegradationTest, AchievedEpsilonTracksFullRun) {
  // A completed (un-truncated) run reports an achieved epsilon no worse
  // than what a degraded run of the same query certifies.
  const auto algorithm = MakeImAlgorithm(GetParam());
  ASSERT_TRUE(algorithm.ok());

  const Result<ImResult> full =
      (*algorithm)->Run(SharedGraph(), BaseOptions());
  ASSERT_TRUE(full.ok());

  ImOptions degraded_options = BaseOptions();
  degraded_options.deadline = Deadline::AlreadyExpired();
  const Result<ImResult> degraded =
      (*algorithm)->Run(SharedGraph(), degraded_options);
  ASSERT_TRUE(degraded.ok());

  EXPECT_LE(full->achieved_epsilon, degraded->achieved_epsilon);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, DeadlineDegradationTest,
                         ::testing::Values("opim-c", "imm"));

TEST(DeadlineTest, SentinelSemantics) {
  const Deadline unset;
  EXPECT_FALSE(unset.is_set());
  EXPECT_FALSE(unset.Expired());

  const Deadline gone = Deadline::AlreadyExpired();
  EXPECT_TRUE(gone.is_set());
  EXPECT_TRUE(gone.Expired());
  EXPECT_EQ(gone.RemainingSeconds(), 0.0);

  const Deadline later = Deadline::AfterSeconds(60.0);
  EXPECT_TRUE(later.is_set());
  EXPECT_FALSE(later.Expired());
  EXPECT_GT(later.RemainingSeconds(), 0.0);
}

}  // namespace
}  // namespace subsim
