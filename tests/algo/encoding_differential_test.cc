// Storage-encoding invariance, end to end: every RR-based algorithm must
// select the same seeds and draw the same number of RR sets whether the
// arena stores raw discovery order or delta-varint blocks, across
// generator kinds and thread counts. The encoding is a pure storage knob —
// the sample stream and the inverted index never change — so any
// divergence here means a decode bug, not a tuning difference.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "subsim/algo/registry.h"
#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"
#include "subsim/rrset/rr_encoding.h"

namespace subsim {
namespace {

Graph DiffGraph() {
  Result<EdgeList> list = GenerateBarabasiAlbert(800, 4, false, 19);
  EXPECT_TRUE(list.ok());
  EXPECT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

const Graph& SharedDiffGraph() {
  static const Graph* const kGraph = new Graph(DiffGraph());
  return *kGraph;
}

using DiffCase = std::tuple<std::string, GeneratorKind, unsigned>;

class EncodingDifferentialTest
    : public ::testing::TestWithParam<DiffCase> {};

TEST_P(EncodingDifferentialTest, SeedsInvariantUnderEncoding) {
  const auto& [name, kind, threads] = GetParam();
  const auto algorithm = MakeImAlgorithm(name);
  ASSERT_TRUE(algorithm.ok());
  const Graph& graph = SharedDiffGraph();

  ImOptions options;
  options.k = 8;
  options.epsilon = 0.25;
  options.rng_seed = 1234;
  options.generator = kind;
  options.num_threads = threads;

  options.rr_encoding = RrEncoding::kRaw;
  const Result<ImResult> raw = (*algorithm)->Run(graph, options);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();

  options.rr_encoding = RrEncoding::kDeltaVarint;
  const Result<ImResult> delta = (*algorithm)->Run(graph, options);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();

  EXPECT_EQ(raw->seeds, delta->seeds);
  EXPECT_EQ(raw->num_rr_sets, delta->num_rr_sets);
  EXPECT_DOUBLE_EQ(raw->influence_lower_bound, delta->influence_lower_bound);
  EXPECT_DOUBLE_EQ(raw->optimal_upper_bound, delta->optimal_upper_bound);
}

INSTANTIATE_TEST_SUITE_P(
    AlgoByGeneratorByThreads, EncodingDifferentialTest,
    ::testing::Combine(
        ::testing::Values("imm", "tim+", "opim-c", "ssa", "hist"),
        ::testing::Values(GeneratorKind::kVanillaIc,
                          GeneratorKind::kSubsimIc),
        ::testing::Values(1u, 8u)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      name += std::get<1>(info.param) == GeneratorKind::kSubsimIc
                  ? "_subsim"
                  : "_vanilla";
      name += "_t" + std::to_string(std::get<2>(info.param));
      return name;
    });

TEST(EncodingDifferentialTest, LtGeneratorAlsoInvariant) {
  // LT RR sets have a different shape (single live in-neighbour walks);
  // cover the third generator on one algorithm rather than the full grid.
  const Graph& graph = SharedDiffGraph();
  const auto algorithm = MakeImAlgorithm("imm");
  ASSERT_TRUE(algorithm.ok());
  ImOptions options;
  options.k = 5;
  options.epsilon = 0.3;
  options.rng_seed = 77;
  options.generator = GeneratorKind::kLt;

  options.rr_encoding = RrEncoding::kRaw;
  const Result<ImResult> raw = (*algorithm)->Run(graph, options);
  ASSERT_TRUE(raw.ok());
  options.rr_encoding = RrEncoding::kDeltaVarint;
  const Result<ImResult> delta = (*algorithm)->Run(graph, options);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(raw->seeds, delta->seeds);
  EXPECT_EQ(raw->num_rr_sets, delta->num_rr_sets);
}

TEST(ApproxCoverageSmokeTest, AlgorithmsAcceptApproxCoverage) {
  // End-to-end smoke for the (ε, δ) sketch path: the run must succeed,
  // return k distinct seeds, and stay deterministic across repeats. Seed
  // *values* may differ from the exact run on near-ties, so only shape and
  // determinism are asserted here; quality is bench_memory_bound's job.
  const Graph& graph = SharedDiffGraph();
  for (const char* name : {"imm", "opim-c"}) {
    const auto algorithm = MakeImAlgorithm(name);
    ASSERT_TRUE(algorithm.ok());
    ImOptions options;
    options.k = 8;
    options.epsilon = 0.25;
    options.rng_seed = 555;
    options.approx_coverage = true;
    options.rr_encoding = RrEncoding::kDeltaVarint;
    const Result<ImResult> a = (*algorithm)->Run(graph, options);
    ASSERT_TRUE(a.ok()) << name << ": " << a.status().ToString();
    EXPECT_EQ(a->seeds.size(), 8u) << name;
    const Result<ImResult> b = (*algorithm)->Run(graph, options);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->seeds, b->seeds) << name << ": approx runs must reproduce";
    EXPECT_EQ(a->num_rr_sets, b->num_rr_sets) << name;
  }
}

}  // namespace
}  // namespace subsim
