// Behavioural tests shared by every IM algorithm: option validation,
// determinism, sane accounting, certified-bound consistency, and seed
// quality against a Monte-Carlo oracle on mid-size graphs.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>

#include "subsim/algo/registry.h"
#include "subsim/eval/spread_estimator.h"
#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"
#include "subsim/util/math.h"

namespace subsim {
namespace {

Graph MidSizeWcGraph() {
  Result<EdgeList> list = GenerateBarabasiAlbert(1500, 4, false, 77);
  EXPECT_TRUE(list.ok());
  EXPECT_TRUE(AssignWeights(WeightModel::kWeightedCascade, {},
                            &list.value())
                  .ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

class ImAlgorithmTest : public ::testing::TestWithParam<std::string> {
 protected:
  static const Graph& SharedGraph() {
    static const Graph* const kGraph = new Graph(MidSizeWcGraph());
    return *kGraph;
  }
};

TEST_P(ImAlgorithmTest, RegistryProvidesAlgorithm) {
  const auto algorithm = MakeImAlgorithm(GetParam());
  ASSERT_TRUE(algorithm.ok());
  EXPECT_STREQ((*algorithm)->name(), GetParam().c_str());
}

TEST_P(ImAlgorithmTest, RejectsInvalidOptions) {
  const auto algorithm = MakeImAlgorithm(GetParam());
  ASSERT_TRUE(algorithm.ok());
  const Graph& graph = SharedGraph();

  ImOptions options;
  options.k = 0;
  EXPECT_FALSE((*algorithm)->Run(graph, options).ok());

  options.k = graph.num_nodes() + 1;
  EXPECT_FALSE((*algorithm)->Run(graph, options).ok());

  options.k = 5;
  options.epsilon = 0.0;
  EXPECT_FALSE((*algorithm)->Run(graph, options).ok());

  options.epsilon = 0.7;  // >= 1 - 1/e
  EXPECT_FALSE((*algorithm)->Run(graph, options).ok());
}

TEST_P(ImAlgorithmTest, ReturnsKDistinctValidSeeds) {
  if (GetParam() == "celf-mc") {
    GTEST_SKIP() << "simulation greedy is too slow on 1500 nodes";
  }
  const auto algorithm = MakeImAlgorithm(GetParam());
  ASSERT_TRUE(algorithm.ok());
  const Graph& graph = SharedGraph();

  ImOptions options;
  options.k = 10;
  options.epsilon = 0.2;
  options.rng_seed = 5;
  const Result<ImResult> result = (*algorithm)->Run(graph, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(result->seeds.size(), 10u);
  std::set<NodeId> unique(result->seeds.begin(), result->seeds.end());
  EXPECT_EQ(unique.size(), result->seeds.size());
  for (NodeId v : result->seeds) {
    EXPECT_LT(v, graph.num_nodes());
  }
  EXPECT_GT(result->num_rr_sets, 0u);
  EXPECT_GE(result->seconds, 0.0);
}

TEST_P(ImAlgorithmTest, DeterministicAcrossRuns) {
  if (GetParam() == "celf-mc") {
    GTEST_SKIP() << "simulation greedy is too slow on 1500 nodes";
  }
  const auto algorithm = MakeImAlgorithm(GetParam());
  ASSERT_TRUE(algorithm.ok());
  const Graph& graph = SharedGraph();

  ImOptions options;
  options.k = 8;
  options.epsilon = 0.25;
  options.rng_seed = 99;
  const Result<ImResult> a = (*algorithm)->Run(graph, options);
  const Result<ImResult> b = (*algorithm)->Run(graph, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->seeds, b->seeds);
  EXPECT_EQ(a->num_rr_sets, b->num_rr_sets);
}

TEST_P(ImAlgorithmTest, SubsimGeneratorGivesSameGuaranteeDifferentCost) {
  if (GetParam() == "celf-mc") {
    GTEST_SKIP() << "generator does not apply to simulation greedy";
  }
  const auto algorithm = MakeImAlgorithm(GetParam());
  ASSERT_TRUE(algorithm.ok());
  const Graph& graph = SharedGraph();

  ImOptions options;
  options.k = 10;
  options.epsilon = 0.2;
  options.rng_seed = 31;
  options.generator = GeneratorKind::kSubsimIc;
  const Result<ImResult> result = (*algorithm)->Run(graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->seeds.size(), 10u);

  // Seed quality should match the vanilla run within MC noise.
  options.generator = GeneratorKind::kVanillaIc;
  const Result<ImResult> vanilla = (*algorithm)->Run(graph, options);
  ASSERT_TRUE(vanilla.ok());

  SpreadEstimator estimator(graph, CascadeModel::kIndependentCascade);
  Rng rng(7);
  const double spread_subsim =
      estimator.Estimate(result->seeds, 3000, rng).spread;
  const double spread_vanilla =
      estimator.Estimate(vanilla->seeds, 3000, rng).spread;
  EXPECT_GT(spread_subsim, 0.85 * spread_vanilla);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ImAlgorithmTest,
                         ::testing::Values("imm", "tim+", "opim-c", "ssa", "hist",
                                           "celf-mc"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) { if (!std::isalnum(static_cast<unsigned char>(c))) c = '_'; }
                           return name;
                         });

TEST(ImRegistryTest, UnknownNameFails) {
  EXPECT_FALSE(MakeImAlgorithm("nonsense").ok());
}

TEST(ImRegistryTest, NamesListMatchesRegistry) {
  for (const std::string& name : ImAlgorithmNames()) {
    EXPECT_TRUE(MakeImAlgorithm(name).ok()) << name;
  }
}

TEST(CertifiedBoundsTest, OpimAndHistCertifyTargetRatio) {
  const Graph graph = MidSizeWcGraph();
  for (const char* name : {"opim-c", "hist"}) {
    const auto algorithm = MakeImAlgorithm(name);
    ASSERT_TRUE(algorithm.ok());
    ImOptions options;
    options.k = 10;
    options.epsilon = 0.3;
    options.rng_seed = 3;
    const Result<ImResult> result = (*algorithm)->Run(graph, options);
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_GT(result->influence_lower_bound, 0.0) << name;
    EXPECT_GT(result->optimal_upper_bound, 0.0) << name;
    EXPECT_LE(result->influence_lower_bound,
              result->optimal_upper_bound * 1.0001)
        << name;
    EXPECT_GE(result->approx_ratio, kOneMinusInvE - options.epsilon - 1e-9)
        << name << ": certified ratio should meet the target on an easy "
                   "instance";
  }
}

TEST(CertifiedBoundsTest, BoundsBracketTrueSpread) {
  const Graph graph = MidSizeWcGraph();
  const auto algorithm = MakeImAlgorithm("opim-c");
  ASSERT_TRUE(algorithm.ok());
  ImOptions options;
  options.k = 5;
  options.epsilon = 0.2;
  options.rng_seed = 17;
  const Result<ImResult> result = (*algorithm)->Run(graph, options);
  ASSERT_TRUE(result.ok());

  SpreadEstimator estimator(graph, CascadeModel::kIndependentCascade);
  Rng rng(23);
  const SpreadEstimate estimate =
      estimator.Estimate(result->seeds, 20000, rng);
  // Lower bound holds for the selected set; upper bound holds for OPT >=
  // selected spread. Allow MC noise.
  EXPECT_LE(result->influence_lower_bound,
            estimate.spread + 6.0 * estimate.std_error + 1.0);
  EXPECT_GE(result->optimal_upper_bound,
            estimate.spread - 6.0 * estimate.std_error - 1.0);
}

TEST(LtModelTest, AlgorithmsRunUnderLtGenerator) {
  const Graph graph = MidSizeWcGraph();  // WC weights are LT-feasible
  for (const char* name : {"imm", "opim-c"}) {
    const auto algorithm = MakeImAlgorithm(name);
    ASSERT_TRUE(algorithm.ok());
    ImOptions options;
    options.k = 5;
    options.epsilon = 0.25;
    options.generator = GeneratorKind::kLt;
    options.rng_seed = 11;
    const Result<ImResult> result = (*algorithm)->Run(graph, options);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    EXPECT_EQ(result->seeds.size(), 5u);
  }
}

}  // namespace
}  // namespace subsim
