// HIST-specific behaviour: sentinel machinery, phase accounting, RR-size
// reduction in high-influence settings, and quality parity with OPIM-C.

#include <gtest/gtest.h>

#include <set>

#include "subsim/algo/hist.h"
#include "subsim/algo/opim_c.h"
#include "subsim/util/math.h"
#include "subsim/eval/spread_estimator.h"
#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"

namespace subsim {
namespace {

Graph HighInfluenceGraph(double theta, std::uint64_t seed = 55) {
  // Undirected attachment: hubs are reachable in reverse, so RR sets in a
  // high-influence configuration really do blow up (and sentinels on those
  // hubs really do truncate them) — the regime HIST targets.
  Result<EdgeList> list = GenerateBarabasiAlbert(3000, 3, true, seed);
  EXPECT_TRUE(list.ok());
  WeightModelParams params;
  params.wc_variant_theta = theta;
  EXPECT_TRUE(
      AssignWeights(WeightModel::kWcVariant, params, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(HistTest, SentinelSizeIsReportedAndPositive) {
  const Graph graph = HighInfluenceGraph(3.0);
  Hist hist;
  ImOptions options;
  options.k = 20;
  options.epsilon = 0.25;
  options.rng_seed = 1;
  const Result<ImResult> result = hist.Run(graph, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->sentinel_size, 0u);
  EXPECT_LE(result->sentinel_size, options.k);
  EXPECT_GT(result->phase1_rr_sets, 0u);
  if (result->sentinel_size < options.k) {
    EXPECT_GT(result->phase2_rr_sets, 0u);
  }
  EXPECT_EQ(result->num_rr_sets,
            result->phase1_rr_sets + result->phase2_rr_sets);
}

TEST(HistTest, SeedsIncludeSentinelsAndAreDistinct) {
  const Graph graph = HighInfluenceGraph(3.0);
  Hist hist;
  ImOptions options;
  options.k = 15;
  options.epsilon = 0.25;
  options.rng_seed = 2;
  const Result<ImResult> result = hist.Run(graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->seeds.size(), 15u);
  const std::set<NodeId> unique(result->seeds.begin(), result->seeds.end());
  EXPECT_EQ(unique.size(), result->seeds.size());
}

TEST(HistTest, AverageRrSizeSmallerThanOpimC) {
  // The headline effect (Figure 3b): hit-and-stop truncation collapses the
  // average RR-set size in high-influence settings.
  const Graph graph = HighInfluenceGraph(4.0);
  ImOptions options;
  options.k = 50;
  options.epsilon = 0.3;
  options.rng_seed = 3;

  const Result<ImResult> hist_result = Hist().Run(graph, options);
  const Result<ImResult> opim_result = OpimC().Run(graph, options);
  ASSERT_TRUE(hist_result.ok());
  ASSERT_TRUE(opim_result.ok());

  EXPECT_LT(hist_result->average_rr_size(),
            0.5 * opim_result->average_rr_size())
      << "hist=" << hist_result->average_rr_size()
      << " opim=" << opim_result->average_rr_size();
}

TEST(HistTest, QualityParityWithOpimC) {
  const Graph graph = HighInfluenceGraph(3.0);
  ImOptions options;
  options.k = 20;
  options.epsilon = 0.25;
  options.rng_seed = 4;

  const Result<ImResult> hist_result = Hist().Run(graph, options);
  const Result<ImResult> opim_result = OpimC().Run(graph, options);
  ASSERT_TRUE(hist_result.ok());
  ASSERT_TRUE(opim_result.ok());

  SpreadEstimator estimator(graph, CascadeModel::kIndependentCascade);
  Rng rng(5);
  const double hist_spread =
      estimator.Estimate(hist_result->seeds, 3000, rng).spread;
  const double opim_spread =
      estimator.Estimate(opim_result->seeds, 3000, rng).spread;
  EXPECT_GT(hist_spread, 0.9 * opim_spread)
      << "hist=" << hist_spread << " opim=" << opim_spread;
}

TEST(HistTest, CertifiedRatioMeetsTarget) {
  const Graph graph = HighInfluenceGraph(3.0);
  Hist hist;
  ImOptions options;
  options.k = 20;
  options.epsilon = 0.3;
  options.rng_seed = 6;
  const Result<ImResult> result = hist.Run(graph, options);
  ASSERT_TRUE(result.ok());
  if (result->sentinel_size < options.k) {
    EXPECT_GE(result->approx_ratio, kOneMinusInvE - options.epsilon - 1e-9);
  }
}

TEST(HistTest, WorksWithSubsimGenerator) {
  const Graph graph = HighInfluenceGraph(3.0);
  Hist hist;
  ImOptions options;
  options.k = 20;
  options.epsilon = 0.25;
  options.rng_seed = 7;
  options.generator = GeneratorKind::kSubsimIc;
  const Result<ImResult> result = hist.Run(graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->seeds.size(), 20u);
}

TEST(HistTest, KEqualsOneDegeneratesGracefully) {
  const Graph graph = HighInfluenceGraph(2.0);
  Hist hist;
  ImOptions options;
  options.k = 1;
  options.epsilon = 0.3;
  options.rng_seed = 8;
  const Result<ImResult> result = hist.Run(graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->seeds.size(), 1u);
}

TEST(HistTest, LowInfluenceGraphStillCorrect) {
  // HIST is designed for high influence but must stay correct at WC.
  Result<EdgeList> list = GenerateErdosRenyi(800, 4000, 9);
  ASSERT_TRUE(list.ok());
  ASSERT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  ASSERT_TRUE(graph.ok());

  Hist hist;
  ImOptions options;
  options.k = 10;
  options.epsilon = 0.3;
  options.rng_seed = 10;
  const Result<ImResult> result = hist.Run(*graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->seeds.size(), 10u);
}

}  // namespace
}  // namespace subsim
