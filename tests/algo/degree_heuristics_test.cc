#include "subsim/algo/degree_heuristics.h"

#include <gtest/gtest.h>

#include <set>

#include "subsim/algo/registry.h"
#include "subsim/eval/spread_estimator.h"
#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"

namespace subsim {
namespace {

Graph UniformGraph(NodeId n, double p, std::uint64_t seed) {
  Result<EdgeList> list = GenerateBarabasiAlbert(n, 4, false, seed);
  EXPECT_TRUE(list.ok());
  WeightModelParams params;
  params.uniform_p = p;
  EXPECT_TRUE(
      AssignWeights(WeightModel::kUniformIc, params, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(DegreeHeuristicsTest, RegistryNames) {
  for (const char* name : {"max-degree", "single-discount",
                           "degree-discount"}) {
    const auto algorithm = MakeImAlgorithm(name);
    ASSERT_TRUE(algorithm.ok()) << name;
    EXPECT_STREQ((*algorithm)->name(), name);
  }
}

TEST(DegreeHeuristicsTest, MaxDegreePicksTopOutDegrees) {
  // Star: center out-degree 6, leaves 0.
  EdgeList list = MakeStar(6);
  for (Edge& e : list.edges) {
    e.weight = 0.1;
  }
  Result<Graph> graph = BuildGraph(std::move(list));
  ASSERT_TRUE(graph.ok());

  DegreeHeuristic heuristic(DegreeHeuristicKind::kMaxDegree);
  ImOptions options;
  options.k = 1;
  const auto result = heuristic.Run(*graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->seeds[0], 0u);
}

TEST(DegreeHeuristicsTest, SingleDiscountAvoidsRedundantNeighborhoods) {
  // Two hubs: 0 -> {2,3,4}; 1 -> {2,3,5,6}. MaxDegree picks 1 then 0.
  // SingleDiscount also picks 1 first; then 0's discounted degree is
  // 3 - 2 = 1 (neighbors 2,3 already... wait, discount counts seeded
  // in-neighbors of the *candidate*, i.e. edges from seeds into the
  // candidate). Construct overlap through direct edges instead:
  // 1 -> 0 makes 0's discount kick in once 1 is seeded.
  EdgeList list;
  list.num_nodes = 8;
  list.edges = {{0, 2, 0.1}, {0, 3, 0.1}, {0, 4, 0.1}, {1, 2, 0.1},
                {1, 3, 0.1}, {1, 5, 0.1}, {1, 6, 0.1}, {1, 0, 0.1},
                {7, 4, 0.1}, {7, 5, 0.1}, {7, 6, 0.1}};
  Result<Graph> graph = BuildGraph(std::move(list));
  ASSERT_TRUE(graph.ok());

  DegreeHeuristic heuristic(DegreeHeuristicKind::kSingleDiscount);
  ImOptions options;
  options.k = 2;
  const auto result = heuristic.Run(*graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->seeds[0], 1u);  // out-degree 5
  // Node 0 (degree 3, discounted to 2 by the seeded in-neighbor 1) ties
  // with node 7 (degree 3, undiscounted)... 7 wins with 3 > 2.
  EXPECT_EQ(result->seeds[1], 7u);
}

TEST(DegreeHeuristicsTest, ReturnsKDistinctSeeds) {
  const Graph graph = UniformGraph(500, 0.05, 3);
  for (DegreeHeuristicKind kind : {DegreeHeuristicKind::kMaxDegree,
                                   DegreeHeuristicKind::kSingleDiscount,
                                   DegreeHeuristicKind::kDegreeDiscount}) {
    DegreeHeuristic heuristic(kind);
    ImOptions options;
    options.k = 25;
    const auto result = heuristic.Run(graph, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->seeds.size(), 25u);
    const std::set<NodeId> unique(result->seeds.begin(),
                                  result->seeds.end());
    EXPECT_EQ(unique.size(), 25u);
  }
}

TEST(DegreeHeuristicsTest, DiscountBeatsPlainDegreeOnUniformIc) {
  // The DegreeDiscount paper's headline: on Uniform IC, discounting beats
  // raw degree. Verify by Monte-Carlo spread comparison.
  const Graph graph = UniformGraph(3000, 0.05, 5);
  ImOptions options;
  options.k = 30;

  const auto degree =
      DegreeHeuristic(DegreeHeuristicKind::kMaxDegree).Run(graph, options);
  const auto discount = DegreeHeuristic(DegreeHeuristicKind::kDegreeDiscount)
                            .Run(graph, options);
  ASSERT_TRUE(degree.ok());
  ASSERT_TRUE(discount.ok());

  SpreadEstimator estimator(graph, CascadeModel::kIndependentCascade);
  Rng rng(7);
  const double spread_degree =
      estimator.Estimate(degree->seeds, 5000, rng).spread;
  const double spread_discount =
      estimator.Estimate(discount->seeds, 5000, rng).spread;
  EXPECT_GE(spread_discount, 0.98 * spread_degree)
      << spread_discount << " vs " << spread_degree;
}

TEST(DegreeHeuristicsTest, GreedyWithGuaranteeBeatsHeuristics) {
  // The motivation for the whole RIS line: heuristics can trail the
  // guaranteed greedy. Use WC (degree-misaligned influence).
  Result<EdgeList> list = GenerateBarabasiAlbert(2000, 4, false, 9);
  ASSERT_TRUE(list.ok());
  ASSERT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  ASSERT_TRUE(graph.ok());

  ImOptions options;
  options.k = 20;
  options.epsilon = 0.1;
  options.rng_seed = 11;
  const auto opim = MakeImAlgorithm("opim-c");
  ASSERT_TRUE(opim.ok());
  const auto guaranteed = (*opim)->Run(*graph, options);
  const auto heuristic =
      DegreeHeuristic(DegreeHeuristicKind::kMaxDegree).Run(*graph, options);
  ASSERT_TRUE(guaranteed.ok());
  ASSERT_TRUE(heuristic.ok());

  SpreadEstimator estimator(*graph, CascadeModel::kIndependentCascade);
  Rng rng(13);
  const double spread_guaranteed =
      estimator.Estimate(guaranteed->seeds, 5000, rng).spread;
  const double spread_heuristic =
      estimator.Estimate(heuristic->seeds, 5000, rng).spread;
  EXPECT_GE(spread_guaranteed, spread_heuristic * 0.999);
}

TEST(DegreeHeuristicsTest, ValidatesOptions) {
  const Graph graph = UniformGraph(100, 0.1, 1);
  DegreeHeuristic heuristic(DegreeHeuristicKind::kDegreeDiscount);
  ImOptions options;
  options.k = 0;
  EXPECT_FALSE(heuristic.Run(graph, options).ok());
}

}  // namespace
}  // namespace subsim
