#include "subsim/algo/theta.h"

#include <gtest/gtest.h>

#include <cmath>

#include "subsim/util/math.h"

namespace subsim {
namespace {

TEST(InitialThetaTest, MatchesThreeLogOneOverDelta) {
  EXPECT_EQ(InitialTheta(1.0 / std::exp(1.0)), 3u);  // 3 * ln(e) = 3
  EXPECT_EQ(InitialTheta(0.5), 3u);                  // ceil(3 * 0.693) = 3
  EXPECT_EQ(InitialTheta(0.01),
            static_cast<std::uint64_t>(std::ceil(3.0 * std::log(100.0))));
}

TEST(HistPhase1ThetaMaxTest, MatchesEquationThree) {
  const NodeId n = 10000;
  const std::uint32_t k = 50;
  const double eps1 = 0.05;
  const double delta1 = 1.0 / n;
  const double ln6d = std::log(6.0 / delta1);
  const double root = std::sqrt(ln6d) + std::sqrt(LogNChooseK(n, k) + ln6d);
  const double expected = 2.0 * n * root * root / (eps1 * eps1 * k);
  EXPECT_EQ(HistPhase1ThetaMax(n, k, eps1, delta1),
            static_cast<std::uint64_t>(std::ceil(expected)));
}

TEST(HistPhase2ThetaMaxTest, MatchesEquationFour) {
  const NodeId n = 10000;
  const std::uint32_t k = 50;
  const std::uint32_t b = 10;
  const double eps2 = 0.05;
  const double delta2 = 1.0 / n;
  const double ln9d = std::log(9.0 / delta2);
  const double root =
      std::sqrt(ln9d) +
      std::sqrt(kOneMinusInvE * (LogNChooseK(n - b, k - b) + ln9d));
  const double expected = 2.0 * n * root * root / (eps2 * eps2 * k);
  EXPECT_EQ(HistPhase2ThetaMax(n, k, b, eps2, delta2),
            static_cast<std::uint64_t>(std::ceil(expected)));
}

TEST(HistPhase2ThetaMaxTest, LargerSentinelNeedsFewerSamples) {
  // ln C(n-b, k-b) shrinks as b grows, so theta_max shrinks too — the
  // pruning benefit HIST banks on.
  const NodeId n = 100000;
  const std::uint32_t k = 200;
  const double eps2 = 0.05;
  const double delta2 = 1e-5;
  const std::uint64_t b0 = HistPhase2ThetaMax(n, k, 0, eps2, delta2);
  const std::uint64_t b100 = HistPhase2ThetaMax(n, k, 100, eps2, delta2);
  const std::uint64_t b199 = HistPhase2ThetaMax(n, k, 199, eps2, delta2);
  EXPECT_GT(b0, b100);
  EXPECT_GT(b100, b199);
}

TEST(OpimThetaMaxTest, GrowsWithTighterEpsilon) {
  const NodeId n = 50000;
  EXPECT_GT(OpimThetaMax(n, 100, 0.05, 1e-5),
            OpimThetaMax(n, 100, 0.1, 1e-5));
}

TEST(OpimThetaMaxTest, ShrinksWithLargerK) {
  // OPT >= k: more seeds means fewer required samples per the k-replacement.
  const NodeId n = 50000;
  EXPECT_GT(OpimThetaMax(n, 10, 0.1, 1e-5),
            OpimThetaMax(n, 1000, 0.1, 1e-5));
}

TEST(DoublingIterationsTest, CoversThetaMax) {
  EXPECT_EQ(DoublingIterations(10, 10), 1u);
  EXPECT_EQ(DoublingIterations(10, 5), 1u);
  // 10 -> 20 -> 40 -> 80: four sizes processed, last >= 80.
  EXPECT_EQ(DoublingIterations(10, 80), 4u);
  EXPECT_EQ(DoublingIterations(10, 81), 5u);
  // Final processed size must always reach theta_max.
  for (std::uint64_t theta_max : {1ull, 7ull, 100ull, 12345ull}) {
    const std::uint32_t iterations = DoublingIterations(3, theta_max);
    EXPECT_GE(3ull << (iterations - 1), theta_max);
  }
}

}  // namespace
}  // namespace subsim
