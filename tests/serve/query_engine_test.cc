// End-to-end tests for the serving engine: warm results must be
// bit-identical to cold ones, concurrent queries must share one cache
// safely (this is the TSan acceptance test), and non-reusable algorithms
// must bypass the cache entirely.

#include "subsim/serve/query_engine.h"

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "subsim/algo/registry.h"
#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"
#include "subsim/serve/query.h"
#include "subsim/util/deadline.h"

namespace subsim {
namespace {

Graph ServeGraph(std::uint64_t seed) {
  Result<EdgeList> list = GenerateBarabasiAlbert(400, 3, false, seed);
  EXPECT_TRUE(list.ok());
  EXPECT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

SelectSeedsQuery BaseQuery(const std::string& graph_name) {
  SelectSeedsQuery query;
  query.graph = graph_name;
  query.algo = "opim-c";
  query.k = 5;
  query.epsilon = 0.3;
  query.rng_seed = 17;
  query.generator = GeneratorKind::kSubsimIc;
  return query;
}

class QueryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_.Register("g", ServeGraph(21)).ok());
  }

  GraphRegistry registry_;
};

TEST_F(QueryEngineTest, WarmRepeatMatchesColdAndHitsCache) {
  QueryEngine engine(&registry_);
  const SelectSeedsQuery query = BaseQuery("g");

  const QueryResponse cold = engine.Execute(query);
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  EXPECT_TRUE(cold.stats.cache_eligible);
  EXPECT_FALSE(cold.stats.cache_hit);
  EXPECT_GT(cold.stats.rr_sets_generated, 0u);
  EXPECT_EQ(cold.stats.rr_sets_reused, 0u);
  ASSERT_FALSE(cold.result.seeds.empty());

  const QueryResponse warm = engine.Execute(query);
  ASSERT_TRUE(warm.status.ok()) << warm.status.ToString();
  EXPECT_TRUE(warm.stats.cache_hit);
  EXPECT_EQ(warm.stats.rr_sets_generated, 0u);
  EXPECT_EQ(warm.stats.rr_sets_reused, warm.result.num_rr_sets);
  EXPECT_EQ(warm.result.seeds, cold.result.seeds);
  EXPECT_EQ(warm.result.num_rr_sets, cold.result.num_rr_sets);
  EXPECT_DOUBLE_EQ(warm.result.estimated_spread, cold.result.estimated_spread);
}

TEST_F(QueryEngineTest, EngineResultMatchesDirectAlgorithmRun) {
  QueryEngine engine(&registry_);
  const SelectSeedsQuery query = BaseQuery("g");

  const QueryResponse served = engine.Execute(query);
  ASSERT_TRUE(served.status.ok()) << served.status.ToString();

  Result<std::shared_ptr<const Graph>> graph = registry_.Get("g");
  ASSERT_TRUE(graph.ok());
  Result<std::unique_ptr<ImAlgorithm>> algo = MakeImAlgorithm(query.algo);
  ASSERT_TRUE(algo.ok());
  Result<ImResult> direct = (*algo)->Run(**graph, query.ToImOptions());
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  EXPECT_EQ(served.result.seeds, direct->seeds);
  EXPECT_EQ(served.result.num_rr_sets, direct->num_rr_sets);
  EXPECT_DOUBLE_EQ(served.result.estimated_spread, direct->estimated_spread);
}

TEST_F(QueryEngineTest, GrowingKReusesEarlierSamples) {
  QueryEngine engine(&registry_);
  SelectSeedsQuery query = BaseQuery("g");
  query.k = 2;
  const QueryResponse small = engine.Execute(query);
  ASSERT_TRUE(small.status.ok());

  query.k = 10;
  const QueryResponse large = engine.Execute(query);
  ASSERT_TRUE(large.status.ok());
  EXPECT_TRUE(large.stats.cache_hit);
  EXPECT_GT(large.stats.rr_sets_reused, 0u);
  // Only the schedule gap beyond the k = 2 run should be freshly sampled.
  EXPECT_LT(large.stats.rr_sets_generated, large.result.num_rr_sets);
}

TEST_F(QueryEngineTest, ConcurrentQueriesShareOneCache) {
  // The TSan acceptance scenario: >= 4 in-flight queries, one shared cache,
  // mixed algorithms and ks, all racing against the same store entries.
  QueryEngineOptions options;
  options.num_workers = 4;
  QueryEngine engine(&registry_, options);

  std::vector<std::future<QueryResponse>> futures;
  for (int round = 0; round < 2; ++round) {
    for (const std::uint32_t k : {2u, 4u, 6u, 8u}) {
      SelectSeedsQuery query = BaseQuery("g");
      query.k = k;
      futures.push_back(engine.Submit(std::move(query)));
      SelectSeedsQuery imm_query = BaseQuery("g");
      imm_query.algo = "imm";
      imm_query.k = k;
      futures.push_back(engine.Submit(std::move(imm_query)));
    }
  }
  ASSERT_EQ(futures.size(), 16u);

  std::vector<QueryResponse> responses;
  responses.reserve(futures.size());
  for (auto& future : futures) {
    responses.push_back(future.get());
  }
  for (const QueryResponse& response : responses) {
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_FALSE(response.result.seeds.empty());
    EXPECT_TRUE(response.stats.cache_eligible);
  }
  // One entry per (algo) since graph/generator/seed agree across queries.
  EXPECT_EQ(engine.cache().num_entries(), 2u);

  // Determinism survives the race: re-running any query warm gives the same
  // seeds the concurrent run produced.
  for (const QueryResponse& response : responses) {
    const QueryResponse again = engine.Execute(response.query);
    ASSERT_TRUE(again.status.ok());
    EXPECT_EQ(again.result.seeds, response.result.seeds)
        << "algo=" << response.query.algo << " k=" << response.query.k;
  }
}

TEST_F(QueryEngineTest, WarmHitsMatchColdMultiThreadedRun) {
  // Generation thread count is an execution knob, not query identity:
  // a cold run on an 8-thread engine, a cold run on a 1-thread engine,
  // and a warm cache hit must all return identical results.
  QueryEngineOptions eight;
  eight.num_threads = 8;
  QueryEngine parallel_engine(&registry_, eight);
  QueryEngine sequential_engine(&registry_);
  const SelectSeedsQuery query = BaseQuery("g");

  const QueryResponse cold_parallel = parallel_engine.Execute(query);
  ASSERT_TRUE(cold_parallel.status.ok()) << cold_parallel.status.ToString();
  EXPECT_FALSE(cold_parallel.stats.cache_hit);

  const QueryResponse cold_sequential = sequential_engine.Execute(query);
  ASSERT_TRUE(cold_sequential.status.ok());
  EXPECT_EQ(cold_parallel.result.seeds, cold_sequential.result.seeds);
  EXPECT_EQ(cold_parallel.result.num_rr_sets,
            cold_sequential.result.num_rr_sets);
  EXPECT_DOUBLE_EQ(cold_parallel.result.estimated_spread,
                   cold_sequential.result.estimated_spread);

  // Warm hit on the parallel engine reuses the multi-threaded samples.
  const QueryResponse warm = parallel_engine.Execute(query);
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.stats.cache_hit);
  EXPECT_EQ(warm.result.seeds, cold_parallel.result.seeds);
  EXPECT_DOUBLE_EQ(warm.result.estimated_spread,
                   cold_parallel.result.estimated_spread);

  // A grown-k warm query extends the 8-thread store and still matches a
  // cold 1-thread run of the bigger query.
  SelectSeedsQuery bigger = query;
  bigger.k = 9;
  const QueryResponse grown = parallel_engine.Execute(bigger);
  ASSERT_TRUE(grown.status.ok());
  EXPECT_TRUE(grown.stats.cache_hit);
  const QueryResponse cold_bigger = sequential_engine.Execute(bigger);
  ASSERT_TRUE(cold_bigger.status.ok());
  EXPECT_EQ(grown.result.seeds, cold_bigger.result.seeds);
}

TEST_F(QueryEngineTest, HistBypassesTheCache) {
  QueryEngine engine(&registry_);
  SelectSeedsQuery query = BaseQuery("g");
  query.algo = "hist";
  const QueryResponse response = engine.Execute(query);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_FALSE(response.stats.cache_eligible);
  EXPECT_FALSE(response.stats.cache_hit);
  EXPECT_EQ(response.stats.rr_sets_reused, 0u);
  EXPECT_EQ(response.stats.rr_sets_generated, response.result.num_rr_sets);
  EXPECT_EQ(engine.cache().num_entries(), 0u);
}

TEST_F(QueryEngineTest, UnknownGraphAndAlgoFailCleanly) {
  QueryEngine engine(&registry_);
  SelectSeedsQuery query = BaseQuery("nope");
  const QueryResponse missing_graph = engine.Execute(query);
  EXPECT_FALSE(missing_graph.status.ok());

  query = BaseQuery("g");
  query.algo = "not-an-algorithm";
  const QueryResponse missing_algo = engine.Execute(query);
  EXPECT_FALSE(missing_algo.status.ok());

  // Submitted failures surface through the future, not as exceptions.
  SelectSeedsQuery bad = BaseQuery("nope");
  QueryResponse via_pool = engine.Submit(std::move(bad)).get();
  EXPECT_FALSE(via_pool.status.ok());
}

TEST_F(QueryEngineTest, InvalidateGraphDropsCacheEntries) {
  QueryEngine engine(&registry_);
  ASSERT_TRUE(engine.Execute(BaseQuery("g")).status.ok());
  SelectSeedsQuery imm_query = BaseQuery("g");
  imm_query.algo = "imm";
  ASSERT_TRUE(engine.Execute(imm_query).status.ok());
  ASSERT_EQ(engine.cache().num_entries(), 2u);

  EXPECT_EQ(engine.InvalidateGraph("g"), 2u);
  EXPECT_EQ(engine.cache().num_entries(), 0u);

  // Next query re-populates against the current snapshot.
  const QueryResponse after = engine.Execute(BaseQuery("g"));
  ASSERT_TRUE(after.status.ok());
  EXPECT_FALSE(after.stats.cache_hit);
}

TEST_F(QueryEngineTest, PerQueryMetricsFoldIntoEngineStats) {
  QueryEngine engine(&registry_);

  const QueryResponse cold = engine.Execute(BaseQuery("g"));
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  const QueryResponse warm = engine.Execute(BaseQuery("g"));
  ASSERT_TRUE(warm.status.ok());
  SelectSeedsQuery bad = BaseQuery("nope");
  EXPECT_FALSE(engine.Execute(bad).status.ok());

  const MetricsSnapshot snapshot = engine.metrics().Snapshot();
  EXPECT_EQ(snapshot.counters.at("serve.queries"), 3u);
  EXPECT_EQ(snapshot.counters.at("serve.errors"), 1u);
  // Query execution latencies all land in the histogram...
  EXPECT_EQ(snapshot.histograms.at("serve.exec_us").count, 3u);
  // ...and the algorithm + generator work of both successful queries
  // flowed into the same registry (the cold fill generated RR sets).
  EXPECT_GE(snapshot.counters.at("rr.sets_generated"),
            cold.stats.rr_sets_generated);
  EXPECT_GT(snapshot.counters.count("store.fill_rounds"), 0u);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("serve.cache_entries"), 1.0);

  // The engine run traces spans for both serve and algorithm phases.
  bool saw_exec = false;
  bool saw_algo = false;
  for (const PhaseSpan& span : engine.tracer().Spans()) {
    saw_exec = saw_exec || span.name == "serve.exec";
    saw_algo = saw_algo || span.name == "opim_c.run";
  }
  EXPECT_TRUE(saw_exec);
  EXPECT_TRUE(saw_algo);
}

TEST_F(QueryEngineTest, StatsJsonMergesCacheAndMetrics) {
  QueryEngine engine(&registry_);
  ASSERT_TRUE(engine.Execute(BaseQuery("g")).status.ok());

  const std::string json = engine.StatsJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  // Cache keys keep their documented names (the serve REPL's `stats`
  // output is greppable on "cache_entries")...
  EXPECT_NE(json.find("\"cache_entries\":1"), std::string::npos);
  EXPECT_NE(json.find("\"cache_misses\":1"), std::string::npos);
  // ...and the observability fields ride along in the same object.
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"serve.queries\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rr.set_size\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\":["), std::string::npos);
}

TEST_F(QueryEngineTest, DestructionRacesInFlightQueries) {
  // Shutdown-ordering regression test (run under TSan in CI): destroy the
  // engine while 16 submitted queries are anywhere between queued and
  // executing. Every future must yield a value — either a real answer or a
  // clean kUnavailable — and never a broken_promise or a crash.
  std::vector<std::future<QueryResponse>> futures;
  {
    QueryEngineOptions options;
    options.num_workers = 4;
    QueryEngine engine(&registry_, options);
    for (int i = 0; i < 16; ++i) {
      SelectSeedsQuery query = BaseQuery("g");
      query.k = 2 + static_cast<std::uint32_t>(i % 5);
      query.rng_seed = static_cast<std::uint64_t>(i);  // all cold: slow
      futures.push_back(engine.Submit(std::move(query)));
    }
    // Engine destructor runs here, racing the in-flight work.
  }
  int answered = 0;
  for (auto& future : futures) {
    const QueryResponse response = future.get();  // must not throw
    if (response.status.ok()) {
      ++answered;
      EXPECT_FALSE(response.result.seeds.empty());
    } else {
      EXPECT_EQ(response.status.code(), StatusCode::kUnavailable)
          << response.status.ToString();
    }
  }
  // The current destructor drains the queue, so everything got a real
  // answer; the invariant that matters is "no future is ever abandoned".
  EXPECT_GE(answered, 0);
}

TEST_F(QueryEngineTest, ConcurrentIdenticalQueriesCoalesce) {
  // Same SketchKey + same k from many threads: one leader fills, the
  // others subscribe to the fill instead of re-running it. Total sets
  // generated must equal one cold run's worth (sublinear in callers), and
  // every caller gets identical seeds.
  QueryEngineOptions options;
  options.num_workers = 8;
  QueryEngine engine(&registry_, options);

  SelectSeedsQuery query = BaseQuery("g");
  query.epsilon = 0.12;  // slow enough that callers overlap

  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(engine.Submit(query));
  }
  std::vector<QueryResponse> responses;
  for (auto& future : futures) {
    responses.push_back(future.get());
  }

  std::uint64_t generated = 0;
  for (const QueryResponse& response : responses) {
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.result.seeds, responses.front().result.seeds);
    generated += response.stats.rr_sets_generated;
  }
  // Coalescing bar: the group generated exactly what one cold run needs
  // (followers reuse the leader's sets; nobody duplicates the fill).
  const QueryResponse cold_reference = [&] {
    QueryEngine fresh(&registry_);
    return fresh.Execute(query);
  }();
  ASSERT_TRUE(cold_reference.status.ok());
  EXPECT_EQ(generated, cold_reference.stats.rr_sets_generated);
}

TEST_F(QueryEngineTest, ExpiredDeadlineIsShedBeforeExecution) {
  QueryEngine engine(&registry_);
  QueryEngine::ExecContext ctx;
  ctx.deadline = Deadline::AlreadyExpired();
  const QueryResponse response = engine.Execute(BaseQuery("g"), ctx);
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded)
      << response.status.ToString();
  EXPECT_NE(engine.StatsJson().find("\"serve.shed\":1"), std::string::npos);
}

TEST_F(QueryEngineTest, DeadlineDegradedRunIsAPrefixOfTheFullRun) {
  // The degradation contract end to end: a degraded run's sets are an
  // exact prefix of the full run's sample stream, so a full-budget query
  // arriving after a degraded one (same SketchKey) reuses every degraded
  // set and still returns seeds bit-identical to a cold full run.
  const auto algorithm = MakeImAlgorithm("opim-c");
  ASSERT_TRUE(algorithm.ok());
  const Result<std::shared_ptr<const Graph>> graph = registry_.Get("g");
  ASSERT_TRUE(graph.ok());

  ImOptions options;
  options.k = 5;
  options.epsilon = 0.15;
  options.rng_seed = 17;
  options.generator = GeneratorKind::kSubsimIc;

  // Degraded run into a fresh store: stops at the first round boundary.
  auto shared_store = (*algorithm)->MakeSampleStore(**graph, options);
  ASSERT_TRUE(shared_store.ok());
  ImOptions degraded_options = options;
  degraded_options.deadline = Deadline::AlreadyExpired();
  const Result<ImResult> degraded = (*algorithm)->RunWithStore(
      **graph, degraded_options, shared_store->get());
  ASSERT_TRUE(degraded.ok());
  ASSERT_TRUE(degraded->deadline_hit);
  const std::uint64_t prefix_sets = (*shared_store)->total_generated();
  ASSERT_GT(prefix_sets, 0u);

  // Full run over the SAME store: extends the prefix, never resamples it.
  const Result<ImResult> warm =
      (*algorithm)->RunWithStore(**graph, options, shared_store->get());
  ASSERT_TRUE(warm.ok());
  EXPECT_FALSE(warm->deadline_hit);
  EXPECT_GE((*shared_store)->total_generated(), prefix_sets);

  // And matches a cold full-budget run bit for bit.
  const Result<ImResult> cold = (*algorithm)->Run(**graph, options);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(warm->seeds, cold->seeds);
  EXPECT_EQ(warm->num_rr_sets, cold->num_rr_sets);
}

TEST(QueryParseTest, RoundTripsThroughEngine) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Register("g", ServeGraph(5)).ok());
  QueryEngine engine(&registry);

  Result<SelectSeedsQuery> parsed = ParseSelectSeedsQuery(
      "graph=g algo=opim-c k=3 eps=0.3 seed=9 generator=subsim");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const QueryResponse response = engine.Execute(*parsed);
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.result.seeds.size(), 3u);

  const std::string json = FormatQueryResponseJson(response);
  EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(json.find("\"seeds\":["), std::string::npos);
  EXPECT_NE(json.find("\"cache_hit\":false"), std::string::npos);
}

}  // namespace
}  // namespace subsim
