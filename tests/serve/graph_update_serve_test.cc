// End-to-end tests for dynamic graphs in the serving layer: the
// stale-sketch regression (the bug versioned SketchKeys exist to kill),
// incremental cache repair on update, graph removal, the HTTP routes, and
// the eviction-vs-update race (run under TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/graph_update.h"
#include "subsim/graph/weight_models.h"
#include "subsim/net/serve_app.h"
#include "subsim/serve/query.h"
#include "subsim/serve/query_engine.h"

namespace subsim {
namespace {

Graph ServeGraph(std::uint64_t seed) {
  Result<EdgeList> list = GenerateBarabasiAlbert(400, 3, false, seed);
  EXPECT_TRUE(list.ok());
  EXPECT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

SelectSeedsQuery BaseQuery(const std::string& graph_name) {
  SelectSeedsQuery query;
  query.graph = graph_name;
  query.algo = "opim-c";
  query.k = 5;
  query.epsilon = 0.3;
  query.rng_seed = 17;
  query.generator = GeneratorKind::kSubsimIc;
  return query;
}

/// Halves the weight of a handful of distinct edges — valid for every
/// generator kind and guaranteed to perturb RR sampling.
UpdateBatch ShrinkBatch(const Graph& graph) {
  const EdgeList list = graph.ToEdgeList();
  UpdateBatch batch;
  const std::size_t stride = list.edges.size() / 4 + 1;
  for (std::size_t i = 0; i < list.edges.size() && batch.ops.size() < 3;
       i += stride) {
    const Edge& e = list.edges[i];
    batch.ops.push_back({EdgeOpKind::kSetWeight, e.src, e.dst,
                         e.weight * 0.5});
  }
  EXPECT_FALSE(batch.ops.empty());
  return batch;
}

class GraphUpdateServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_.Register("g", ServeGraph(21)).ok());
  }

  GraphRegistry registry_;
};

TEST_F(GraphUpdateServeTest, StaleSketchRegressionOnReRegister) {
  // The headline bug: warm a sketch, swap the graph under the same name
  // WITHOUT calling InvalidateGraph, and query again. Before versioned
  // keys the second query would hit the stale sketch and return seeds
  // sampled on the old topology; now the version bump makes the old entry
  // unreachable, so the answer must equal a fresh engine's.
  QueryEngine engine(&registry_);
  const SelectSeedsQuery query = BaseQuery("g");
  ASSERT_TRUE(engine.Execute(query).status.ok());
  ASSERT_EQ(engine.cache().num_entries(), 1u);

  ASSERT_TRUE(registry_.Register("g", ServeGraph(99)).ok());
  // Deliberately no InvalidateGraph("g") here.

  const QueryResponse after_swap = engine.Execute(query);
  ASSERT_TRUE(after_swap.status.ok()) << after_swap.status.ToString();
  EXPECT_FALSE(after_swap.stats.cache_hit);

  GraphRegistry fresh_registry;
  ASSERT_TRUE(fresh_registry.Register("g", ServeGraph(99)).ok());
  QueryEngine fresh_engine(&fresh_registry);
  const QueryResponse fresh = fresh_engine.Execute(query);
  ASSERT_TRUE(fresh.status.ok());
  EXPECT_EQ(after_swap.result.seeds, fresh.result.seeds);
  EXPECT_EQ(after_swap.result.num_rr_sets, fresh.result.num_rr_sets);
  EXPECT_DOUBLE_EQ(after_swap.result.estimated_spread,
                   fresh.result.estimated_spread);
}

TEST_F(GraphUpdateServeTest, ApplyUpdatesRepairsWarmCacheBitIdentically) {
  QueryEngine engine(&registry_);
  const SelectSeedsQuery query = BaseQuery("g");
  ASSERT_TRUE(engine.Execute(query).status.ok());
  ASSERT_EQ(engine.cache().num_entries(), 1u);

  const UpdateBatch batch = ShrinkBatch(ServeGraph(21));
  Result<QueryEngine::GraphUpdateOutcome> outcome =
      engine.ApplyGraphUpdates("g", batch);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->previous_version, 1u);
  EXPECT_EQ(outcome->version, 2u);
  EXPECT_EQ(outcome->entries_repaired, 1u);
  EXPECT_EQ(outcome->entries_dropped, 0u);
  EXPECT_GT(outcome->sets_repaired, 0u);
  EXPECT_GT(outcome->sets_kept, 0u);
  // The repaired entry replaced the old-version one; nothing stale stays.
  EXPECT_EQ(engine.cache().num_entries(), 1u);

  // Post-update query: warm (the repair kept the cache hot across the
  // version bump) and bit-identical to a fresh engine on the new topology.
  const QueryResponse warm = engine.Execute(query);
  ASSERT_TRUE(warm.status.ok()) << warm.status.ToString();
  EXPECT_TRUE(warm.stats.cache_hit);

  Result<EdgeUpdateResult> updated = ApplyEdgeUpdates(ServeGraph(21), batch);
  ASSERT_TRUE(updated.ok());
  GraphRegistry fresh_registry;
  ASSERT_TRUE(
      fresh_registry.Register("g", std::move(updated->graph)).ok());
  QueryEngine fresh_engine(&fresh_registry);
  const QueryResponse fresh = fresh_engine.Execute(query);
  ASSERT_TRUE(fresh.status.ok());
  EXPECT_EQ(warm.result.seeds, fresh.result.seeds);
  EXPECT_EQ(warm.result.num_rr_sets, fresh.result.num_rr_sets);
  EXPECT_DOUBLE_EQ(warm.result.estimated_spread,
                   fresh.result.estimated_spread);

  // Update observability landed in the engine metrics.
  const MetricsSnapshot snapshot = engine.metrics().Snapshot();
  EXPECT_EQ(snapshot.counters.at("update.batches"), 1u);
  EXPECT_EQ(snapshot.counters.at("update.sets_repaired"),
            outcome->sets_repaired);
  EXPECT_EQ(snapshot.counters.at("update.sets_kept"), outcome->sets_kept);
  EXPECT_EQ(snapshot.histograms.at("update.repair_us").count, 1u);
}

TEST_F(GraphUpdateServeTest, VersionSkewRejectsWithoutSideEffects) {
  QueryEngine engine(&registry_);
  ASSERT_TRUE(engine.Execute(BaseQuery("g")).status.ok());

  UpdateBatch batch = ShrinkBatch(ServeGraph(21));
  batch.expect_version = 999;
  Result<QueryEngine::GraphUpdateOutcome> outcome =
      engine.ApplyGraphUpdates("g", batch);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kFailedPrecondition);

  // Nothing was published and the cache is untouched.
  Result<GraphSnapshot> snapshot = registry_.GetSnapshot("g");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->version, 1u);
  EXPECT_EQ(engine.cache().num_entries(), 1u);
  EXPECT_TRUE(engine.Execute(BaseQuery("g")).stats.cache_hit);

  // The matching expect_version goes through.
  batch.expect_version = 1;
  EXPECT_TRUE(engine.ApplyGraphUpdates("g", batch).ok());
}

TEST_F(GraphUpdateServeTest, UpdateAndRemoveUnknownGraphFailCleanly) {
  QueryEngine engine(&registry_);
  Result<QueryEngine::GraphUpdateOutcome> outcome =
      engine.ApplyGraphUpdates("nope", ShrinkBatch(ServeGraph(21)));
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kNotFound);

  Result<std::size_t> removed = engine.RemoveGraph("nope");
  ASSERT_FALSE(removed.ok());
  EXPECT_EQ(removed.status().code(), StatusCode::kNotFound);
}

TEST_F(GraphUpdateServeTest, RemoveGraphEndToEnd) {
  QueryEngine engine(&registry_);
  ASSERT_TRUE(engine.Execute(BaseQuery("g")).status.ok());
  ASSERT_EQ(engine.cache().num_entries(), 1u);

  Result<std::size_t> removed = engine.RemoveGraph("g");
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1u);
  EXPECT_FALSE(registry_.Contains("g"));
  EXPECT_EQ(engine.cache().num_entries(), 0u);

  const QueryResponse after = engine.Execute(BaseQuery("g"));
  EXPECT_EQ(after.status.code(), StatusCode::kNotFound)
      << after.status.ToString();
  EXPECT_FALSE(engine.RemoveGraph("g").ok());
}

TEST_F(GraphUpdateServeTest, EvictionVsUpdateRace) {
  // TSan scenario: queries with rotating seeds force misses + budget
  // evictions while an updater thread keeps publishing new versions and
  // repairing entries. Every operation must succeed; no operation may
  // observe a torn snapshot.
  QueryEngineOptions options;
  options.cache.max_bytes = 1 << 18;  // tight: evictions happen constantly
  QueryEngine engine(&registry_, options);

  const EdgeList base_edges = ServeGraph(21).ToEdgeList();
  const Edge toggled = base_edges.edges.front();

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread updater([&] {
    for (int round = 0; round < 8; ++round) {
      UpdateBatch batch;
      const double weight =
          (round % 2 == 0) ? toggled.weight * 0.5 : toggled.weight;
      batch.ops.push_back(
          {EdgeOpKind::kSetWeight, toggled.src, toggled.dst, weight});
      if (!engine.ApplyGraphUpdates("g", batch).ok()) {
        failures.fetch_add(1);
      }
    }
    stop.store(true);
  });

  std::vector<std::thread> query_threads;
  for (unsigned t = 0; t < 3; ++t) {
    query_threads.emplace_back([&, t] {
      std::uint64_t seed = 100 + t;
      while (!stop.load()) {
        SelectSeedsQuery query = BaseQuery("g");
        query.k = 2;
        query.epsilon = 0.5;
        query.rng_seed = seed++;  // new SketchKey every time: miss + insert
        if (!engine.Execute(query).status.ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  updater.join();
  for (std::thread& thread : query_threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  Result<GraphSnapshot> snapshot = registry_.GetSnapshot("g");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->version, 9u);  // 1 initial + 8 updates

  // The engine still answers correctly after the storm.
  const QueryResponse final_response = engine.Execute(BaseQuery("g"));
  EXPECT_TRUE(final_response.status.ok())
      << final_response.status.ToString();
}

// ---------------------------------------------------------------------------
// HTTP routes (driven through ServeApp::Handle directly; no sockets).

HttpRequest PostRequest(const std::string& target, const std::string& body) {
  HttpRequest request;
  request.method = "POST";
  request.target = target;
  request.body = body;
  return request;
}

TEST_F(GraphUpdateServeTest, UpdateGraphRoute) {
  QueryEngine engine(&registry_);
  ServeApp app(&engine);
  ASSERT_TRUE(engine.Execute(BaseQuery("g")).status.ok());

  const Edge edge = ServeGraph(21).ToEdgeList().edges.front();
  const std::string body = "graph=g expect_version=1\nweight " +
                           std::to_string(edge.src) + " " +
                           std::to_string(edge.dst) + " " +
                           std::to_string(edge.weight * 0.5) + "\n";
  const HttpResponse ok_response =
      app.Handle(PostRequest("/v1/update_graph", body), HttpRequestContext{});
  EXPECT_EQ(ok_response.status_code, 200) << ok_response.body;
  EXPECT_NE(ok_response.body.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(ok_response.body.find("\"version\":2"), std::string::npos);
  EXPECT_NE(ok_response.body.find("\"entries_repaired\":1"),
            std::string::npos);

  // Version skew -> 409 (the header still says expect_version=1).
  const HttpResponse skew =
      app.Handle(PostRequest("/v1/update_graph", body), HttpRequestContext{});
  EXPECT_EQ(skew.status_code, 409) << skew.body;

  // Parse error -> 400; unknown graph -> 404; wrong method -> 405.
  EXPECT_EQ(app.Handle(PostRequest("/v1/update_graph", "not a batch"),
                       HttpRequestContext{})
                .status_code,
            400);
  EXPECT_EQ(app.Handle(PostRequest("/v1/update_graph",
                                   "graph=nope\ndelete 0 1\n"),
                       HttpRequestContext{})
                .status_code,
            404);
  HttpRequest get = PostRequest("/v1/update_graph", body);
  get.method = "GET";
  EXPECT_EQ(app.Handle(get, HttpRequestContext{}).status_code, 405);
}

TEST_F(GraphUpdateServeTest, RemoveGraphRoute) {
  QueryEngine engine(&registry_);
  ServeApp app(&engine);
  ASSERT_TRUE(engine.Execute(BaseQuery("g")).status.ok());

  const HttpResponse removed = app.Handle(
      PostRequest("/v1/remove_graph", "graph=g"), HttpRequestContext{});
  EXPECT_EQ(removed.status_code, 200) << removed.body;
  EXPECT_NE(removed.body.find("\"cache_entries_dropped\":1"),
            std::string::npos);
  EXPECT_FALSE(registry_.Contains("g"));

  EXPECT_EQ(app.Handle(PostRequest("/v1/remove_graph", "graph=g"),
                       HttpRequestContext{})
                .status_code,
            404);
  EXPECT_EQ(app.Handle(PostRequest("/v1/remove_graph", "bogus body"),
                       HttpRequestContext{})
                .status_code,
            400);
}

}  // namespace
}  // namespace subsim
