#include "subsim/serve/graph_registry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/graph_io.h"
#include "subsim/graph/graph_update.h"
#include "subsim/graph/weight_models.h"

namespace subsim {
namespace {

Graph TinyGraph(std::uint64_t seed) {
  Result<EdgeList> list = GenerateBarabasiAlbert(100, 2, false, seed);
  EXPECT_TRUE(list.ok());
  EXPECT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(GraphRegistryTest, RegisterAndGet) {
  GraphRegistry registry;
  EXPECT_FALSE(registry.Contains("g"));
  EXPECT_FALSE(registry.Get("g").ok());

  ASSERT_TRUE(registry.Register("g", TinyGraph(1)).ok());
  EXPECT_TRUE(registry.Contains("g"));
  Result<std::shared_ptr<const Graph>> graph = registry.Get("g");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ((*graph)->num_nodes(), 100u);
  EXPECT_EQ(registry.Names(), std::vector<std::string>{"g"});
}

TEST(GraphRegistryTest, RejectsEmptyName) {
  GraphRegistry registry;
  EXPECT_FALSE(registry.Register("", TinyGraph(1)).ok());
  EXPECT_FALSE(registry.LoadFromFile("", "/nonexistent").ok());
}

TEST(GraphRegistryTest, ReplacementKeepsOldSnapshotsAlive) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Register("g", TinyGraph(1)).ok());
  Result<std::shared_ptr<const Graph>> old_snapshot = registry.Get("g");
  ASSERT_TRUE(old_snapshot.ok());
  const std::size_t old_edges = (*old_snapshot)->num_edges();

  // Re-register under the same name: in-flight holders keep the old graph,
  // new lookups see the new one.
  ASSERT_TRUE(registry.Register("g", TinyGraph(2)).ok());
  Result<std::shared_ptr<const Graph>> new_snapshot = registry.Get("g");
  ASSERT_TRUE(new_snapshot.ok());
  EXPECT_NE(old_snapshot->get(), new_snapshot->get());
  EXPECT_EQ((*old_snapshot)->num_edges(), old_edges);
}

TEST(GraphRegistryTest, VersionsAreMonotonicAndNeverReused) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Register("a", TinyGraph(1)).ok());
  ASSERT_TRUE(registry.Register("b", TinyGraph(2)).ok());

  Result<GraphSnapshot> a = registry.GetSnapshot("a");
  Result<GraphSnapshot> b = registry.GetSnapshot("b");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->version, 1u);
  EXPECT_EQ(b->version, 2u);

  // Re-registering bumps the version; erase + re-register never reuses a
  // retired version (the counter is registry-global).
  ASSERT_TRUE(registry.Register("a", TinyGraph(3)).ok());
  Result<GraphSnapshot> a2 = registry.GetSnapshot("a");
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2->version, 3u);

  EXPECT_TRUE(registry.Erase("a"));
  ASSERT_TRUE(registry.Register("a", TinyGraph(4)).ok());
  Result<GraphSnapshot> a3 = registry.GetSnapshot("a");
  ASSERT_TRUE(a3.ok());
  EXPECT_EQ(a3->version, 4u);
}

TEST(GraphRegistryTest, EraseRemovesOnlyThatName) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Register("a", TinyGraph(1)).ok());
  ASSERT_TRUE(registry.Register("b", TinyGraph(2)).ok());
  EXPECT_TRUE(registry.Erase("a"));
  EXPECT_FALSE(registry.Erase("a"));  // already gone
  EXPECT_FALSE(registry.Contains("a"));
  EXPECT_TRUE(registry.Contains("b"));
  EXPECT_FALSE(registry.GetSnapshot("a").ok());
}

TEST(GraphRegistryTest, ApplyUpdatesPublishesNewVersion) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Register("g", TinyGraph(1)).ok());
  Result<GraphSnapshot> before = registry.GetSnapshot("g");
  ASSERT_TRUE(before.ok());
  const Edge edge = before->graph->ToEdgeList().edges.front();

  UpdateBatch batch;
  batch.ops.push_back(
      {EdgeOpKind::kSetWeight, edge.src, edge.dst, edge.weight * 0.5});
  Result<GraphRegistry::UpdateResult> updated =
      registry.ApplyUpdates("g", batch);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  EXPECT_EQ(updated->previous.version, before->version);
  EXPECT_EQ(updated->snapshot.version, before->version + 1);
  EXPECT_EQ(updated->dirty_nodes, std::vector<NodeId>{edge.dst});
  // The old snapshot object is untouched; the new one is what lookups see.
  EXPECT_NE(updated->snapshot.graph.get(), before->graph.get());
  Result<GraphSnapshot> after = registry.GetSnapshot("g");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->graph.get(), updated->snapshot.graph.get());
  EXPECT_EQ(after->version, updated->snapshot.version);
}

TEST(GraphRegistryTest, ApplyUpdatesArbitratesExpectVersion) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Register("g", TinyGraph(1)).ok());
  const Edge edge =
      registry.GetSnapshot("g")->graph->ToEdgeList().edges.front();

  UpdateBatch batch;
  batch.expect_version = 42;  // actual version is 1
  batch.ops.push_back(
      {EdgeOpKind::kSetWeight, edge.src, edge.dst, edge.weight * 0.5});
  Result<GraphRegistry::UpdateResult> skewed =
      registry.ApplyUpdates("g", batch);
  ASSERT_FALSE(skewed.ok());
  EXPECT_EQ(skewed.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.GetSnapshot("g")->version, 1u);  // nothing published

  batch.expect_version = 1;
  EXPECT_TRUE(registry.ApplyUpdates("g", batch).ok());
  EXPECT_EQ(registry.GetSnapshot("g")->version, 2u);

  // Unknown name and invalid batch fail without publishing anything.
  EXPECT_EQ(registry.ApplyUpdates("nope", batch).status().code(),
            StatusCode::kNotFound);
  UpdateBatch empty;
  EXPECT_EQ(registry.ApplyUpdates("g", empty).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.GetSnapshot("g")->version, 2u);
}

TEST(GraphRegistryTest, LoadFromFileRoundTrips) {
  Result<EdgeList> list = GenerateBarabasiAlbert(60, 2, false, 9);
  ASSERT_TRUE(list.ok());
  ASSERT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  const std::string path =
      ::testing::TempDir() + "/graph_registry_test_edges.txt";
  ASSERT_TRUE(WriteEdgeListText(*list, path).ok());

  GraphRegistry registry;
  ASSERT_TRUE(registry.LoadFromFile("disk", path).ok());
  Result<std::shared_ptr<const Graph>> graph = registry.Get("disk");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ((*graph)->num_nodes(), 60u);
  std::remove(path.c_str());

  EXPECT_FALSE(registry.LoadFromFile("missing", path + ".gone").ok());
  EXPECT_FALSE(registry.Contains("missing"));
}

}  // namespace
}  // namespace subsim
