#include "subsim/serve/graph_registry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/graph_io.h"
#include "subsim/graph/weight_models.h"

namespace subsim {
namespace {

Graph TinyGraph(std::uint64_t seed) {
  Result<EdgeList> list = GenerateBarabasiAlbert(100, 2, false, seed);
  EXPECT_TRUE(list.ok());
  EXPECT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(GraphRegistryTest, RegisterAndGet) {
  GraphRegistry registry;
  EXPECT_FALSE(registry.Contains("g"));
  EXPECT_FALSE(registry.Get("g").ok());

  ASSERT_TRUE(registry.Register("g", TinyGraph(1)).ok());
  EXPECT_TRUE(registry.Contains("g"));
  Result<std::shared_ptr<const Graph>> graph = registry.Get("g");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ((*graph)->num_nodes(), 100u);
  EXPECT_EQ(registry.Names(), std::vector<std::string>{"g"});
}

TEST(GraphRegistryTest, RejectsEmptyName) {
  GraphRegistry registry;
  EXPECT_FALSE(registry.Register("", TinyGraph(1)).ok());
  EXPECT_FALSE(registry.LoadFromFile("", "/nonexistent").ok());
}

TEST(GraphRegistryTest, ReplacementKeepsOldSnapshotsAlive) {
  GraphRegistry registry;
  ASSERT_TRUE(registry.Register("g", TinyGraph(1)).ok());
  Result<std::shared_ptr<const Graph>> old_snapshot = registry.Get("g");
  ASSERT_TRUE(old_snapshot.ok());
  const std::size_t old_edges = (*old_snapshot)->num_edges();

  // Re-register under the same name: in-flight holders keep the old graph,
  // new lookups see the new one.
  ASSERT_TRUE(registry.Register("g", TinyGraph(2)).ok());
  Result<std::shared_ptr<const Graph>> new_snapshot = registry.Get("g");
  ASSERT_TRUE(new_snapshot.ok());
  EXPECT_NE(old_snapshot->get(), new_snapshot->get());
  EXPECT_EQ((*old_snapshot)->num_edges(), old_edges);
}

TEST(GraphRegistryTest, LoadFromFileRoundTrips) {
  Result<EdgeList> list = GenerateBarabasiAlbert(60, 2, false, 9);
  ASSERT_TRUE(list.ok());
  ASSERT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  const std::string path =
      ::testing::TempDir() + "/graph_registry_test_edges.txt";
  ASSERT_TRUE(WriteEdgeListText(*list, path).ok());

  GraphRegistry registry;
  ASSERT_TRUE(registry.LoadFromFile("disk", path).ok());
  Result<std::shared_ptr<const Graph>> graph = registry.Get("disk");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ((*graph)->num_nodes(), 60u);
  std::remove(path.c_str());

  EXPECT_FALSE(registry.LoadFromFile("missing", path + ".gone").ok());
  EXPECT_FALSE(registry.Contains("missing"));
}

}  // namespace
}  // namespace subsim
