#include "subsim/serve/rr_sketch_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"

namespace subsim {
namespace {

std::shared_ptr<const Graph> TinyGraph(std::uint64_t seed) {
  Result<EdgeList> list = GenerateBarabasiAlbert(120, 2, false, seed);
  EXPECT_TRUE(list.ok());
  EXPECT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  EXPECT_TRUE(graph.ok());
  return std::make_shared<const Graph>(std::move(graph).value());
}

RrSketchCache::StoreFactory SequentialFactory(std::uint64_t seed) {
  return [seed](const Graph& graph) {
    return SampleStore::Create(
        graph, GeneratorKind::kSubsimIc,
        {MakeRngStream(seed, 1), MakeRngStream(seed, 2)});
  };
}

SketchKey KeyFor(const std::string& graph, std::uint64_t seed) {
  SketchKey key;
  key.graph = graph;
  key.algo = "opim-c";
  key.generator = GeneratorKind::kSubsimIc;
  key.rng_seed = seed;
  return key;
}

TEST(RrSketchCacheTest, MissThenHitSharesOneStore) {
  RrSketchCache cache;
  const auto graph = TinyGraph(1);

  Result<RrSketchCache::Lookup> first =
      cache.GetOrCreate(KeyFor("g", 7), graph, SequentialFactory(7));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->hit);
  ASSERT_TRUE(first->entry->store->EnsureSets(0, 64).ok());

  Result<RrSketchCache::Lookup> second =
      cache.GetOrCreate(KeyFor("g", 7), graph, SequentialFactory(7));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->hit);
  EXPECT_EQ(second->entry.get(), first->entry.get());
  EXPECT_EQ(second->entry->store->num_sets(0), 64u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.num_entries(), 1u);
}

TEST(RrSketchCacheTest, DistinctKeysGetDistinctStores) {
  RrSketchCache cache;
  const auto graph = TinyGraph(1);
  const auto a = cache.GetOrCreate(KeyFor("g", 1), graph,
                                   SequentialFactory(1));
  const auto b = cache.GetOrCreate(KeyFor("g", 2), graph,
                                   SequentialFactory(2));
  SketchKey lt_key = KeyFor("g", 1);
  lt_key.generator = GeneratorKind::kVanillaIc;
  const auto c = cache.GetOrCreate(lt_key, graph, [](const Graph& target) {
    return SampleStore::Create(
        target, GeneratorKind::kVanillaIc,
        {MakeRngStream(1, 1), MakeRngStream(1, 2)});
  });
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_NE(a->entry.get(), b->entry.get());
  EXPECT_NE(a->entry.get(), c->entry.get());
  EXPECT_EQ(cache.num_entries(), 3u);
}

TEST(RrSketchCacheTest, EraseGraphDropsOnlyThatGraph) {
  RrSketchCache cache;
  const auto graph = TinyGraph(1);
  ASSERT_TRUE(
      cache.GetOrCreate(KeyFor("a", 1), graph, SequentialFactory(1)).ok());
  ASSERT_TRUE(
      cache.GetOrCreate(KeyFor("a", 2), graph, SequentialFactory(2)).ok());
  ASSERT_TRUE(
      cache.GetOrCreate(KeyFor("b", 1), graph, SequentialFactory(1)).ok());
  EXPECT_EQ(cache.EraseGraph("a"), 2u);
  EXPECT_EQ(cache.num_entries(), 1u);
  // "b" survives and still hits.
  const auto lookup =
      cache.GetOrCreate(KeyFor("b", 1), graph, SequentialFactory(1));
  ASSERT_TRUE(lookup.ok());
  EXPECT_TRUE(lookup->hit);
}

TEST(RrSketchCacheTest, BudgetEvictionIsLeastRecentlyUsedFirst) {
  RrSketchCache::Options options;
  options.max_bytes = 1;  // anything with content is over budget
  RrSketchCache cache(options);
  const auto graph = TinyGraph(1);

  const auto first =
      cache.GetOrCreate(KeyFor("g", 1), graph, SequentialFactory(1));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->entry->store->EnsureSets(0, 256).ok());
  const auto second =
      cache.GetOrCreate(KeyFor("g", 2), graph, SequentialFactory(2));
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->entry->store->EnsureSets(0, 256).ok());

  cache.EnforceBudget();
  EXPECT_EQ(cache.num_entries(), 0u);
  EXPECT_EQ(cache.evictions(), 2u);

  // Evicted entries stay usable by their holders.
  EXPECT_EQ(first->entry->store->num_sets(0), 256u);

  // Re-lookup misses (the cache dropped its reference).
  const auto again =
      cache.GetOrCreate(KeyFor("g", 1), graph, SequentialFactory(1));
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->hit);
}

TEST(RrSketchCacheTest, LruOrderPrefersRecentlyUsedEntries) {
  RrSketchCache::Options options;
  options.max_bytes = 512ull << 20;
  RrSketchCache cache(options);
  const auto graph = TinyGraph(1);

  const auto a = cache.GetOrCreate(KeyFor("g", 1), graph,
                                   SequentialFactory(1));
  const auto b = cache.GetOrCreate(KeyFor("g", 2), graph,
                                   SequentialFactory(2));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a->entry->store->EnsureSets(0, 512).ok());
  ASSERT_TRUE(b->entry->store->EnsureSets(0, 512).ok());
  // Touch "1" so "2" is the LRU victim.
  ASSERT_TRUE(
      cache.GetOrCreate(KeyFor("g", 1), graph, SequentialFactory(1)).ok());

  // Shrink the budget to roughly one store and evict.
  const std::uint64_t one_store = a->entry->store->ApproxMemoryBytes();
  RrSketchCache::Options tight;
  tight.max_bytes = one_store + one_store / 2;
  RrSketchCache tight_cache(tight);
  const auto ta = tight_cache.GetOrCreate(KeyFor("g", 1), graph,
                                          SequentialFactory(1));
  const auto tb = tight_cache.GetOrCreate(KeyFor("g", 2), graph,
                                          SequentialFactory(2));
  ASSERT_TRUE(ta.ok() && tb.ok());
  ASSERT_TRUE(ta->entry->store->EnsureSets(0, 512).ok());
  ASSERT_TRUE(tb->entry->store->EnsureSets(0, 512).ok());
  ASSERT_TRUE(tight_cache
                  .GetOrCreate(KeyFor("g", 1), graph, SequentialFactory(1))
                  .ok());  // "1" most recent
  tight_cache.EnforceBudget();
  EXPECT_EQ(tight_cache.num_entries(), 1u);
  const auto survivor = tight_cache.GetOrCreate(KeyFor("g", 1), graph,
                                                SequentialFactory(1));
  ASSERT_TRUE(survivor.ok());
  EXPECT_TRUE(survivor->hit) << "the recently used entry must survive";
}

TEST(RrSketchCacheTest, ZeroBudgetDisablesRetention) {
  RrSketchCache::Options options;
  options.max_bytes = 0;
  RrSketchCache cache(options);
  const auto graph = TinyGraph(1);
  const auto first =
      cache.GetOrCreate(KeyFor("g", 1), graph, SequentialFactory(1));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->hit);
  EXPECT_EQ(cache.num_entries(), 0u);
  const auto second =
      cache.GetOrCreate(KeyFor("g", 1), graph, SequentialFactory(1));
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->hit);
}

TEST(RrSketchCacheTest, FactoryFailurePropagates) {
  RrSketchCache cache;
  const auto graph = TinyGraph(1);
  const auto lookup = cache.GetOrCreate(
      KeyFor("g", 1), graph,
      [](const Graph&) -> Result<std::unique_ptr<SampleStore>> {
        return Status::FailedPrecondition("no store for you");
      });
  EXPECT_FALSE(lookup.ok());
  EXPECT_EQ(cache.num_entries(), 0u);
}

TEST(RrSketchCacheTest, BudgetEvictionRacesConcurrentLookups) {
  // The TSan scenario for the admission-era cache: a tiny byte budget so
  // evictions fire constantly, reader threads hammering GetOrCreate +
  // EnsureSets (growing entries past the budget), and a dedicated thread
  // spinning EnforceBudget. Entries are shared_ptr-owned, so an evicted
  // entry a reader still holds must stay valid until the reader drops it.
  RrSketchCache::Options options;
  options.max_bytes = 4 * 1024;  // less than one grown store: constant churn
  RrSketchCache cache(options);
  const auto graph = TinyGraph(7);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < 60; ++i) {
        // 8 distinct keys cycling: misses, hits, and re-creations after
        // eviction all happen during the run.
        const std::uint64_t seed = static_cast<std::uint64_t>((t + i) % 8);
        const auto lookup =
            cache.GetOrCreate(KeyFor("g", seed), graph,
                              SequentialFactory(seed));
        if (!lookup.ok()) {
          failures.fetch_add(1);
          continue;
        }
        // Grow the store while it may concurrently be evicted.
        if (!lookup->entry->store->EnsureSets(0, 64 * (i % 4 + 1)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  std::thread evictor([&] {
    while (!stop.load()) {
      cache.EnforceBudget();
      std::this_thread::yield();
    }
  });
  for (std::thread& reader : readers) {
    reader.join();
  }
  stop.store(true);
  evictor.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(cache.evictions(), 0u);
  // The budget is enforced once the dust settles.
  cache.EnforceBudget();
  EXPECT_LE(cache.ApproxMemoryBytes(), options.max_bytes);
}

TEST(SketchKeyTest, OrderingAndEquality) {
  const SketchKey a = KeyFor("a", 1);
  SketchKey b = KeyFor("a", 1);
  EXPECT_TRUE(a == b);
  b.rng_seed = 2;
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a < b || b < a);
  EXPECT_NE(a.ToString(), b.ToString());
}

}  // namespace
}  // namespace subsim
