#include "subsim/serve/rr_sketch_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"

namespace subsim {
namespace {

std::shared_ptr<const Graph> TinyGraph(std::uint64_t seed) {
  Result<EdgeList> list = GenerateBarabasiAlbert(120, 2, false, seed);
  EXPECT_TRUE(list.ok());
  EXPECT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  EXPECT_TRUE(graph.ok());
  return std::make_shared<const Graph>(std::move(graph).value());
}

RrSketchCache::StoreFactory SequentialFactory(std::uint64_t seed) {
  return [seed](const Graph& graph) {
    return SampleStore::Create(
        graph, GeneratorKind::kSubsimIc,
        {MakeRngStream(seed, 1), MakeRngStream(seed, 2)});
  };
}

SketchKey KeyFor(const std::string& graph, std::uint64_t seed) {
  SketchKey key;
  key.graph = graph;
  key.algo = "opim-c";
  key.generator = GeneratorKind::kSubsimIc;
  key.rng_seed = seed;
  return key;
}

TEST(RrSketchCacheTest, MissThenHitSharesOneStore) {
  RrSketchCache cache;
  const auto graph = TinyGraph(1);

  Result<RrSketchCache::Lookup> first =
      cache.GetOrCreate(KeyFor("g", 7), graph, SequentialFactory(7));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->hit);
  ASSERT_TRUE(first->entry->store->EnsureSets(0, 64).ok());

  Result<RrSketchCache::Lookup> second =
      cache.GetOrCreate(KeyFor("g", 7), graph, SequentialFactory(7));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->hit);
  EXPECT_EQ(second->entry.get(), first->entry.get());
  EXPECT_EQ(second->entry->store->num_sets(0), 64u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.num_entries(), 1u);
}

TEST(RrSketchCacheTest, DistinctKeysGetDistinctStores) {
  RrSketchCache cache;
  const auto graph = TinyGraph(1);
  const auto a = cache.GetOrCreate(KeyFor("g", 1), graph,
                                   SequentialFactory(1));
  const auto b = cache.GetOrCreate(KeyFor("g", 2), graph,
                                   SequentialFactory(2));
  SketchKey lt_key = KeyFor("g", 1);
  lt_key.generator = GeneratorKind::kVanillaIc;
  const auto c = cache.GetOrCreate(lt_key, graph, [](const Graph& target) {
    return SampleStore::Create(
        target, GeneratorKind::kVanillaIc,
        {MakeRngStream(1, 1), MakeRngStream(1, 2)});
  });
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_NE(a->entry.get(), b->entry.get());
  EXPECT_NE(a->entry.get(), c->entry.get());
  EXPECT_EQ(cache.num_entries(), 3u);
}

TEST(RrSketchCacheTest, EraseGraphDropsOnlyThatGraph) {
  RrSketchCache cache;
  const auto graph = TinyGraph(1);
  ASSERT_TRUE(
      cache.GetOrCreate(KeyFor("a", 1), graph, SequentialFactory(1)).ok());
  ASSERT_TRUE(
      cache.GetOrCreate(KeyFor("a", 2), graph, SequentialFactory(2)).ok());
  ASSERT_TRUE(
      cache.GetOrCreate(KeyFor("b", 1), graph, SequentialFactory(1)).ok());
  EXPECT_EQ(cache.EraseGraph("a"), 2u);
  EXPECT_EQ(cache.num_entries(), 1u);
  // "b" survives and still hits.
  const auto lookup =
      cache.GetOrCreate(KeyFor("b", 1), graph, SequentialFactory(1));
  ASSERT_TRUE(lookup.ok());
  EXPECT_TRUE(lookup->hit);
}

TEST(RrSketchCacheTest, BudgetEvictionIsLeastRecentlyUsedFirst) {
  RrSketchCache::Options options;
  options.max_bytes = 1;  // anything with content is over budget
  RrSketchCache cache(options);
  const auto graph = TinyGraph(1);

  const auto first =
      cache.GetOrCreate(KeyFor("g", 1), graph, SequentialFactory(1));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->entry->store->EnsureSets(0, 256).ok());
  const auto second =
      cache.GetOrCreate(KeyFor("g", 2), graph, SequentialFactory(2));
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->entry->store->EnsureSets(0, 256).ok());

  cache.EnforceBudget();
  EXPECT_EQ(cache.num_entries(), 0u);
  EXPECT_EQ(cache.evictions(), 2u);

  // Evicted entries stay usable by their holders.
  EXPECT_EQ(first->entry->store->num_sets(0), 256u);

  // Re-lookup misses (the cache dropped its reference).
  const auto again =
      cache.GetOrCreate(KeyFor("g", 1), graph, SequentialFactory(1));
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->hit);
}

TEST(RrSketchCacheTest, LruOrderPrefersRecentlyUsedEntries) {
  RrSketchCache::Options options;
  options.max_bytes = 512ull << 20;
  RrSketchCache cache(options);
  const auto graph = TinyGraph(1);

  const auto a = cache.GetOrCreate(KeyFor("g", 1), graph,
                                   SequentialFactory(1));
  const auto b = cache.GetOrCreate(KeyFor("g", 2), graph,
                                   SequentialFactory(2));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a->entry->store->EnsureSets(0, 512).ok());
  ASSERT_TRUE(b->entry->store->EnsureSets(0, 512).ok());
  // Touch "1" so "2" is the LRU victim.
  ASSERT_TRUE(
      cache.GetOrCreate(KeyFor("g", 1), graph, SequentialFactory(1)).ok());

  // Shrink the budget to roughly one store and evict.
  const std::uint64_t one_store = a->entry->store->ApproxMemoryBytes();
  RrSketchCache::Options tight;
  tight.max_bytes = one_store + one_store / 2;
  RrSketchCache tight_cache(tight);
  const auto ta = tight_cache.GetOrCreate(KeyFor("g", 1), graph,
                                          SequentialFactory(1));
  const auto tb = tight_cache.GetOrCreate(KeyFor("g", 2), graph,
                                          SequentialFactory(2));
  ASSERT_TRUE(ta.ok() && tb.ok());
  ASSERT_TRUE(ta->entry->store->EnsureSets(0, 512).ok());
  ASSERT_TRUE(tb->entry->store->EnsureSets(0, 512).ok());
  ASSERT_TRUE(tight_cache
                  .GetOrCreate(KeyFor("g", 1), graph, SequentialFactory(1))
                  .ok());  // "1" most recent
  tight_cache.EnforceBudget();
  EXPECT_EQ(tight_cache.num_entries(), 1u);
  const auto survivor = tight_cache.GetOrCreate(KeyFor("g", 1), graph,
                                                SequentialFactory(1));
  ASSERT_TRUE(survivor.ok());
  EXPECT_TRUE(survivor->hit) << "the recently used entry must survive";
}

TEST(RrSketchCacheTest, ZeroBudgetDisablesRetention) {
  RrSketchCache::Options options;
  options.max_bytes = 0;
  RrSketchCache cache(options);
  const auto graph = TinyGraph(1);
  const auto first =
      cache.GetOrCreate(KeyFor("g", 1), graph, SequentialFactory(1));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->hit);
  EXPECT_EQ(cache.num_entries(), 0u);
  const auto second =
      cache.GetOrCreate(KeyFor("g", 1), graph, SequentialFactory(1));
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->hit);
}

TEST(RrSketchCacheTest, FactoryFailurePropagates) {
  RrSketchCache cache;
  const auto graph = TinyGraph(1);
  const auto lookup = cache.GetOrCreate(
      KeyFor("g", 1), graph,
      [](const Graph&) -> Result<std::unique_ptr<SampleStore>> {
        return Status::FailedPrecondition("no store for you");
      });
  EXPECT_FALSE(lookup.ok());
  EXPECT_EQ(cache.num_entries(), 0u);
}

TEST(RrSketchCacheTest, BudgetEvictionRacesConcurrentLookups) {
  // The TSan scenario for the admission-era cache: a tiny byte budget so
  // evictions fire constantly, reader threads hammering GetOrCreate +
  // EnsureSets (growing entries past the budget), and a dedicated thread
  // spinning EnforceBudget. Entries are shared_ptr-owned, so an evicted
  // entry a reader still holds must stay valid until the reader drops it.
  RrSketchCache::Options options;
  options.max_bytes = 4 * 1024;  // less than one grown store: constant churn
  RrSketchCache cache(options);
  const auto graph = TinyGraph(7);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < 60; ++i) {
        // 8 distinct keys cycling: misses, hits, and re-creations after
        // eviction all happen during the run.
        const std::uint64_t seed = static_cast<std::uint64_t>((t + i) % 8);
        const auto lookup =
            cache.GetOrCreate(KeyFor("g", seed), graph,
                              SequentialFactory(seed));
        if (!lookup.ok()) {
          failures.fetch_add(1);
          continue;
        }
        // Grow the store while it may concurrently be evicted.
        if (!lookup->entry->store->EnsureSets(0, 64 * (i % 4 + 1)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  std::thread evictor([&] {
    while (!stop.load()) {
      cache.EnforceBudget();
      std::this_thread::yield();
    }
  });
  for (std::thread& reader : readers) {
    reader.join();
  }
  stop.store(true);
  evictor.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(cache.evictions(), 0u);
  // The budget is enforced once the dust settles.
  cache.EnforceBudget();
  EXPECT_LE(cache.ApproxMemoryBytes(), options.max_bytes);
}

TEST(RrSketchCacheTest, LostRaceCountsAsLostRaceNotHit) {
  // Two threads miss the same key concurrently; the factory blocks until
  // both are inside it, so exactly one insert wins and the other finds the
  // winner's entry on its second look. The loser built a store for nothing
  // — it must land in lost_races(), not inflate hits().
  RrSketchCache cache;
  const auto graph = TinyGraph(1);

  std::atomic<int> in_factory{0};
  const RrSketchCache::StoreFactory blocking_factory =
      [&](const Graph& target) {
        in_factory.fetch_add(1);
        while (in_factory.load() < 2) {
          std::this_thread::yield();
        }
        return SampleStore::Create(target, GeneratorKind::kSubsimIc,
                                   {MakeRngStream(3, 1), MakeRngStream(3, 2)});
      };

  std::optional<Result<RrSketchCache::Lookup>> results[2];
  std::thread racer([&] {
    results[1].emplace(
        cache.GetOrCreate(KeyFor("g", 3), graph, blocking_factory));
  });
  results[0].emplace(
      cache.GetOrCreate(KeyFor("g", 3), graph, blocking_factory));
  racer.join();

  ASSERT_TRUE(results[0]->ok() && results[1]->ok());
  // Both callers share the winner's entry; the loser reports hit=true (its
  // sets came from the winner's store).
  EXPECT_EQ((*results[0])->entry.get(), (*results[1])->entry.get());
  EXPECT_EQ(cache.num_entries(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.lost_races(), 1u);
  EXPECT_EQ(cache.hits(), 0u) << "a lost race is not a cache hit";
}

TEST(RrSketchCacheTest, VersionedKeysAreDistinctEntries) {
  RrSketchCache cache;
  const auto graph = TinyGraph(1);
  SketchKey v1 = KeyFor("g", 7);
  v1.graph_version = 1;
  SketchKey v2 = v1;
  v2.graph_version = 2;
  EXPECT_FALSE(v1 == v2);
  EXPECT_NE(v1.ToString(), v2.ToString());

  ASSERT_TRUE(cache.GetOrCreate(v1, graph, SequentialFactory(7)).ok());
  const auto other = cache.GetOrCreate(v2, graph, SequentialFactory(7));
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->hit) << "a new graph version can never hit old sets";
  EXPECT_EQ(cache.num_entries(), 2u);

  // EntriesForGraph filters on (name, version).
  EXPECT_EQ(cache.EntriesForGraph("g", 1).size(), 1u);
  EXPECT_EQ(cache.EntriesForGraph("g", 2).size(), 1u);
  EXPECT_EQ(cache.EntriesForGraph("g", 3).size(), 0u);
  EXPECT_EQ(cache.EntriesForGraph("other", 1).size(), 0u);
}

TEST(RrSketchCacheTest, EraseGraphVersionsBelowRetiresOldVersions) {
  RrSketchCache cache;
  const auto graph = TinyGraph(1);
  for (const std::uint64_t version : {1u, 2u, 3u}) {
    SketchKey key = KeyFor("g", 7);
    key.graph_version = version;
    ASSERT_TRUE(cache.GetOrCreate(key, graph, SequentialFactory(7)).ok());
  }
  SketchKey other = KeyFor("other", 7);
  other.graph_version = 1;
  ASSERT_TRUE(cache.GetOrCreate(other, graph, SequentialFactory(7)).ok());

  EXPECT_EQ(cache.EraseGraphVersionsBelow("g", 3), 2u);
  EXPECT_EQ(cache.num_entries(), 2u);  // g@v3 and other@v1 survive
  SketchKey v3 = KeyFor("g", 7);
  v3.graph_version = 3;
  EXPECT_TRUE(cache.GetOrCreate(v3, graph, SequentialFactory(7))->hit);
  EXPECT_TRUE(cache.GetOrCreate(other, graph, SequentialFactory(7))->hit);
}

TEST(RrSketchCacheTest, PutPublishesAndReplacesEntries) {
  RrSketchCache cache;
  const auto graph = TinyGraph(1);
  const SketchKey key = KeyFor("g", 7);

  const auto make_entry = [&](std::uint64_t sets) {
    auto store = SampleStore::Create(
        *graph, GeneratorKind::kSubsimIc,
        {MakeRngStream(7, 1), MakeRngStream(7, 2)});
    EXPECT_TRUE(store.ok());
    EXPECT_TRUE((*store)->EnsureSets(0, sets).ok());
    auto entry = std::make_shared<RrSketchCache::Entry>();
    entry->graph = graph;
    entry->store = std::move(store).value();
    return entry;
  };

  cache.Put(key, make_entry(32));
  auto lookup = cache.GetOrCreate(key, graph, SequentialFactory(7));
  ASSERT_TRUE(lookup.ok());
  EXPECT_TRUE(lookup->hit);
  EXPECT_EQ(lookup->entry->store->num_sets(0), 32u);

  // Replacement swaps the entry in place (byte accounting must not leak:
  // the budget stays enforceable afterwards).
  cache.Put(key, make_entry(64));
  lookup = cache.GetOrCreate(key, graph, SequentialFactory(7));
  ASSERT_TRUE(lookup.ok());
  EXPECT_TRUE(lookup->hit);
  EXPECT_EQ(lookup->entry->store->num_sets(0), 64u);
  EXPECT_EQ(cache.num_entries(), 1u);
  cache.EnforceBudget();
  EXPECT_EQ(cache.num_entries(), 1u);

  // Put on a zero-budget cache is a no-op.
  RrSketchCache::Options disabled;
  disabled.max_bytes = 0;
  RrSketchCache off(disabled);
  off.Put(key, make_entry(8));
  EXPECT_EQ(off.num_entries(), 0u);
}

TEST(RrSketchCacheTest, BudgetAccountingSurvivesGrowthAndErase) {
  // The running-total bookkeeping (satellite: EnforceBudget is no longer
  // an O(n^2) rescan) must agree with the exact recompute through grows,
  // hits, erases, and evictions.
  RrSketchCache::Options options;
  options.max_bytes = 512ull << 20;  // roomy: nothing evicts yet
  RrSketchCache cache(options);
  const auto graph = TinyGraph(1);

  const auto a = cache.GetOrCreate(KeyFor("g", 1), graph,
                                   SequentialFactory(1));
  const auto b = cache.GetOrCreate(KeyFor("g", 2), graph,
                                   SequentialFactory(2));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a->entry->store->EnsureSets(0, 512).ok());
  ASSERT_TRUE(b->entry->store->EnsureSets(0, 256).ok());
  // Touch both so their slots are marked dirty, then reconcile.
  ASSERT_TRUE(
      cache.GetOrCreate(KeyFor("g", 1), graph, SequentialFactory(1)).ok());
  ASSERT_TRUE(
      cache.GetOrCreate(KeyFor("g", 2), graph, SequentialFactory(2)).ok());
  cache.EnforceBudget();
  EXPECT_EQ(cache.num_entries(), 2u);

  EXPECT_EQ(cache.EraseGraph("g"), 2u);
  EXPECT_EQ(cache.ApproxMemoryBytes(), 0u);
  // An empty cache enforces its budget trivially (no stale total left
  // behind by the erase).
  cache.EnforceBudget();
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(RrSketchCacheTest, MixedEncodingEntriesChargeEncodedBytes) {
  // Two entries over the same graph/seed, one raw and one delta-varint:
  // they must be distinct keys, the delta entry must charge the budget
  // fewer bytes (it holds the same sets in a smaller arena), and a tight
  // budget must evict by those encoded footprints — so a delta entry
  // survives where its raw twin would not.
  //
  // Needs RR sets dense enough for the encoded arena to dominate the
  // per-set metadata, so this graph uses uniform p=0.5 (sets span much
  // of the 200-node giant component) instead of TinyGraph's WC weights.
  const auto dense_graph = [] {
    Result<EdgeList> list = GenerateBarabasiAlbert(200, 3, false, 4);
    EXPECT_TRUE(list.ok());
    WeightModelParams params;
    params.uniform_p = 0.5;
    EXPECT_TRUE(
        AssignWeights(WeightModel::kUniformIc, params, &list.value()).ok());
    Result<Graph> graph = BuildGraph(std::move(list).value());
    EXPECT_TRUE(graph.ok());
    return std::make_shared<const Graph>(std::move(graph).value());
  }();
  const auto delta_factory = [](const Graph& target) {
    SampleStore::Options options;
    options.encoding = RrEncoding::kDeltaVarint;
    return SampleStore::Create(
        target, GeneratorKind::kSubsimIc,
        {MakeRngStream(1, 1), MakeRngStream(1, 2)}, options);
  };
  SketchKey raw_key = KeyFor("g", 1);
  SketchKey delta_key = KeyFor("g", 1);
  delta_key.encoding = RrEncoding::kDeltaVarint;
  EXPECT_FALSE(raw_key == delta_key);
  EXPECT_NE(raw_key.ToString(), delta_key.ToString());

  RrSketchCache::Options roomy;
  roomy.max_bytes = 512ull << 20;
  RrSketchCache cache(roomy);
  const auto& graph = dense_graph;
  const auto raw = cache.GetOrCreate(raw_key, graph, SequentialFactory(1));
  const auto delta = cache.GetOrCreate(delta_key, graph, delta_factory);
  ASSERT_TRUE(raw.ok() && delta.ok());
  EXPECT_EQ(cache.num_entries(), 2u);
  ASSERT_TRUE(raw->entry->store->EnsureSets(0, 2048).ok());
  ASSERT_TRUE(delta->entry->store->EnsureSets(0, 2048).ok());

  const std::uint64_t raw_bytes = raw->entry->store->ApproxMemoryBytes();
  const std::uint64_t delta_bytes = delta->entry->store->ApproxMemoryBytes();
  EXPECT_LT(delta_bytes, raw_bytes)
      << "the budget must see the encoded arena, not a raw-equivalent size";
  cache.EnforceBudget();
  EXPECT_EQ(cache.num_entries(), 2u) << "roomy budget evicts nothing";

  // Budget that fits the delta entry but not raw + delta. Recreate both
  // (delta touched last → raw is the LRU victim); after enforcement only
  // the delta entry remains and the cache is within budget.
  RrSketchCache::Options tight;
  tight.max_bytes = raw_bytes + delta_bytes / 2;
  RrSketchCache tight_cache(tight);
  const auto traw =
      tight_cache.GetOrCreate(raw_key, graph, SequentialFactory(1));
  const auto tdelta = tight_cache.GetOrCreate(delta_key, graph, delta_factory);
  ASSERT_TRUE(traw.ok() && tdelta.ok());
  ASSERT_TRUE(traw->entry->store->EnsureSets(0, 2048).ok());
  ASSERT_TRUE(tdelta->entry->store->EnsureSets(0, 2048).ok());
  ASSERT_TRUE(tight_cache.GetOrCreate(delta_key, graph, delta_factory).ok());
  tight_cache.EnforceBudget();
  EXPECT_EQ(tight_cache.num_entries(), 1u);
  EXPECT_LE(tight_cache.ApproxMemoryBytes(), tight.max_bytes);
  const auto survivor =
      tight_cache.GetOrCreate(delta_key, graph, delta_factory);
  ASSERT_TRUE(survivor.ok());
  EXPECT_TRUE(survivor->hit) << "the smaller, fresher delta entry survives";

  // Both stores hold the same logical sample stream.
  EXPECT_EQ(raw->entry->store->num_sets(0),
            delta->entry->store->num_sets(0));
  EXPECT_EQ(raw->entry->store->encoding(), RrEncoding::kRaw);
  EXPECT_EQ(delta->entry->store->encoding(), RrEncoding::kDeltaVarint);
}

TEST(SketchKeyTest, OrderingAndEquality) {
  const SketchKey a = KeyFor("a", 1);
  SketchKey b = KeyFor("a", 1);
  EXPECT_TRUE(a == b);
  b.rng_seed = 2;
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a < b || b < a);
  EXPECT_NE(a.ToString(), b.ToString());
}

}  // namespace
}  // namespace subsim
