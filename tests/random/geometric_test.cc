#include "subsim/random/geometric.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace subsim {
namespace {

TEST(GeometricTest, PEqualsOneAlwaysReturnsOne) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(SampleGeometric(rng, 1.0), 1u);
  }
}

TEST(GeometricTest, AlwaysAtLeastOne) {
  Rng rng(2);
  for (double p : {0.999, 0.5, 0.1, 0.001}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_GE(SampleGeometric(rng, p), 1u) << "p=" << p;
    }
  }
}

TEST(GeometricTest, MeanMatchesOneOverP) {
  Rng rng(3);
  for (double p : {0.5, 0.2, 0.05}) {
    const int trials = 200000;
    double sum = 0.0;
    for (int i = 0; i < trials; ++i) {
      sum += static_cast<double>(SampleGeometric(rng, p));
    }
    const double mean = sum / trials;
    const double expected = 1.0 / p;
    // Variance (1-p)/p^2; 5-sigma window on the mean.
    const double sigma =
        std::sqrt((1.0 - p) / (p * p) / static_cast<double>(trials));
    EXPECT_NEAR(mean, expected, 5.0 * sigma) << "p=" << p;
  }
}

TEST(GeometricTest, PmfMatchesGeometricLaw) {
  Rng rng(4);
  const double p = 0.3;
  const int trials = 300000;
  std::vector<int> counts(12, 0);
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t x = SampleGeometric(rng, p);
    if (x < counts.size()) {
      ++counts[x];
    }
  }
  for (std::uint64_t i = 1; i <= 8; ++i) {
    const double expected_p = std::pow(1.0 - p, i - 1) * p;
    const double expected = trials * expected_p;
    const double sigma = std::sqrt(expected * (1.0 - expected_p));
    EXPECT_NEAR(counts[i], expected, 5.0 * sigma) << "i=" << i;
  }
}

TEST(GeometricTest, TinyProbabilityDoesNotOverflow) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t x = SampleGeometric(rng, 1e-12);
    EXPECT_GE(x, 1u);
    EXPECT_LE(x, kGeometricCap);
  }
}

TEST(GeometricTest, FastPathAgreesWithSlowPathDistribution) {
  const double p = 0.25;
  const double inv_log_q = GeometricInvLogQ(p);
  Rng rng_fast(6);
  Rng rng_slow(6);  // same seed -> same uniforms -> identical outputs
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(SampleGeometricFast(rng_fast, inv_log_q),
              SampleGeometric(rng_slow, p));
  }
}

TEST(GeometricInvLogQTest, IsNegative) {
  EXPECT_LT(GeometricInvLogQ(0.5), 0.0);
  EXPECT_LT(GeometricInvLogQ(1e-9), 0.0);
  EXPECT_LT(GeometricInvLogQ(0.999999), 0.0);
}

class GeometricMeanSweep : public ::testing::TestWithParam<double> {};

TEST_P(GeometricMeanSweep, MeanWithinFiveSigma) {
  const double p = GetParam();
  Rng rng(1234);
  const int trials = 100000;
  double sum = 0.0;
  for (int i = 0; i < trials; ++i) {
    sum += static_cast<double>(SampleGeometric(rng, p));
  }
  const double sigma =
      std::sqrt((1.0 - p) / (p * p) / static_cast<double>(trials));
  EXPECT_NEAR(sum / trials, 1.0 / p, 5.0 * sigma + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GeometricMeanSweep,
                         ::testing::Values(0.9, 0.7, 0.5, 0.3, 0.1, 0.03,
                                           0.01));

}  // namespace
}  // namespace subsim
