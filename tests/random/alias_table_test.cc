#include "subsim/random/alias_table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace subsim {
namespace {

void ExpectEmpiricalMatches(const AliasTable& table,
                            const std::vector<double>& weights,
                            std::uint64_t seed, int trials = 200000) {
  Rng rng(seed);
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < trials; ++i) {
    const std::uint32_t s = table.Sample(rng);
    ASSERT_LT(s, weights.size());
    ++counts[s];
  }
  double total = 0.0;
  for (double w : weights) {
    total += w;
  }
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double p = weights[i] / total;
    const double expected = trials * p;
    const double sigma = std::sqrt(trials * p * (1.0 - p));
    EXPECT_NEAR(counts[i], expected, 5.0 * sigma + 1.0) << "index " << i;
  }
}

TEST(AliasTableTest, SingleElement) {
  AliasTable table({3.5});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(table.Sample(rng), 0u);
  }
}

TEST(AliasTableTest, UniformWeights) {
  ExpectEmpiricalMatches(AliasTable({1, 1, 1, 1}), {1, 1, 1, 1}, 2);
}

TEST(AliasTableTest, SkewedWeights) {
  const std::vector<double> weights = {0.7, 0.2, 0.05, 0.05};
  ExpectEmpiricalMatches(AliasTable(weights), weights, 3);
}

TEST(AliasTableTest, ExtremeSkew) {
  const std::vector<double> weights = {1000.0, 1.0, 1.0};
  Rng rng(4);
  AliasTable table(weights);
  int heavy = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (table.Sample(rng) == 0) {
      ++heavy;
    }
  }
  EXPECT_GT(heavy, trials * 0.99);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  const std::vector<double> weights = {0.0, 1.0, 0.0, 2.0};
  Rng rng(5);
  AliasTable table(weights);
  for (int i = 0; i < 10000; ++i) {
    const std::uint32_t s = table.Sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasTableTest, TotalWeightPreserved) {
  AliasTable table({0.25, 0.5, 0.25});
  EXPECT_DOUBLE_EQ(table.total_weight(), 1.0);
  EXPECT_EQ(table.size(), 3u);
  EXPECT_FALSE(table.empty());
}

TEST(AliasTableTest, UnnormalizedWeightsWork) {
  const std::vector<double> weights = {5, 10, 25, 60};
  ExpectEmpiricalMatches(AliasTable(weights), weights, 6);
}

TEST(AliasTableTest, ManyElements) {
  std::vector<double> weights(257);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<double>(i % 7 + 1);
  }
  Rng rng(7);
  AliasTable table(weights);
  // Spot-check range validity over many draws.
  for (int i = 0; i < 100000; ++i) {
    EXPECT_LT(table.Sample(rng), weights.size());
  }
}

TEST(AliasTableTest, RebuildReplacesDistribution) {
  AliasTable table({1.0, 0.0});
  table.Build({0.0, 1.0});
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(table.Sample(rng), 1u);
  }
}

}  // namespace
}  // namespace subsim
