#include "subsim/random/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace subsim {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleOpenNeverZeroOrOne) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDoubleOpen();
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(99);
  double sum = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    sum += rng.NextDouble();
  }
  // Std error ~ 1/sqrt(12*trials) ~ 0.0009; allow 5 sigma.
  EXPECT_NEAR(sum / trials, 0.5, 0.005);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(42);
  constexpr std::uint64_t kBound = 10;
  constexpr int kTrials = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kTrials; ++i) {
    ++counts[rng.UniformInt(kBound)];
  }
  const double expected = static_cast<double>(kTrials) / kBound;
  for (std::uint64_t v = 0; v < kBound; ++v) {
    // 5-sigma window around the binomial mean.
    const double sigma = std::sqrt(expected * (1.0 - 1.0 / kBound));
    EXPECT_NEAR(counts[v], expected, 5.0 * sigma) << "value " << v;
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(11);
  constexpr int kTrials = 100000;
  for (double p : {0.1, 0.5, 0.9}) {
    int hits = 0;
    for (int i = 0; i < kTrials; ++i) {
      hits += rng.Bernoulli(p) ? 1 : 0;
    }
    const double sigma = std::sqrt(kTrials * p * (1 - p));
    EXPECT_NEAR(hits, kTrials * p, 5.0 * sigma) << "p=" << p;
  }
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng base(17);
  Rng fork1 = base.Fork(1);
  Rng fork2 = base.Fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (fork1.NextU64() == fork2.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ForkDoesNotAdvanceParent) {
  Rng a(29);
  Rng b(29);
  (void)a.Fork(1);
  (void)a.Fork(2);
  EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(29);
  Rng b(29);
  Rng fa = a.Fork(9);
  Rng fb = b.Fork(9);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(fa.NextU64(), fb.NextU64());
  }
}

TEST(RngTest, SubstreamIsAPureFunctionOfSeedAndIndex) {
  // Unlike Fork, Substream does not depend on any generator state: the
  // same (base_seed, index) pair always yields the same stream. This is
  // the property thread-invariant parallel fills are built on.
  Rng a = Rng::Substream(17, 5);
  Rng b = Rng::Substream(17, 5);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, SubstreamsWithAdjacentIndicesDiverge) {
  // Adjacent set indices are the common case in a fill; the mixing must
  // decorrelate them despite the inputs differing in one counter step.
  for (std::uint64_t base : {0ull, 1ull, 0xDEADBEEFull}) {
    Rng a = Rng::Substream(base, 100);
    Rng b = Rng::Substream(base, 101);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
      if (a.NextU64() == b.NextU64()) {
        ++equal;
      }
    }
    EXPECT_LT(equal, 2) << "base " << base;
  }
}

TEST(RngTest, SubstreamFirstDrawsAreWellDistributed) {
  // The first draw of consecutive substreams is what seeds every RR set;
  // a biased first draw would skew all of them. Check coarse uniformity.
  constexpr int kStreams = 100000;
  constexpr int kBuckets = 16;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kStreams; ++i) {
    Rng rng = Rng::Substream(123, static_cast<std::uint64_t>(i));
    ++counts[rng.NextU64() >> 60];
  }
  const double expected = static_cast<double>(kStreams) / kBuckets;
  const double sigma = std::sqrt(expected * (1.0 - 1.0 / kBuckets));
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], expected, 5.0 * sigma) << "bucket " << b;
  }
}

TEST(RngTest, DeriveStreamSeedSeparatesStreams) {
  EXPECT_EQ(DeriveStreamSeed(7, 1), DeriveStreamSeed(7, 1));
  EXPECT_NE(DeriveStreamSeed(7, 1), DeriveStreamSeed(7, 2));
  EXPECT_NE(DeriveStreamSeed(7, 1), DeriveStreamSeed(8, 1));
}

TEST(RngStreamTest, MakeRngStreamStartsAtIndexZero) {
  const RngStream stream = MakeRngStream(7, 3);
  EXPECT_EQ(stream.next_index, 0u);
  EXPECT_EQ(stream.base_seed, DeriveStreamSeed(7, 3));
}

TEST(SplitMix64Test, KnownSequenceProperties) {
  std::uint64_t state = 0;
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(SplitMix64(&state));
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions in a short run
}

TEST(RngTest, NextU64BatchEqualsRepeatedNextU64) {
  // The batched RR kernels bulk-draw coins with NextU64Batch and replay
  // them through ToUnitDouble; byte-identity with the scalar generators
  // rests on these two being exact restatements of the scalar draws.
  Rng scalar(99);
  Rng batched(99);
  std::uint64_t buf[17];
  batched.NextU64Batch(buf, 17);
  for (std::size_t i = 0; i < 17; ++i) {
    EXPECT_EQ(buf[i], scalar.NextU64()) << i;
  }
  // The engines stay in lockstep after the batch.
  EXPECT_EQ(batched.NextU64(), scalar.NextU64());
}

TEST(RngTest, ToUnitDoubleEqualsNextDouble) {
  Rng scalar(123);
  Rng batched(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(Rng::ToUnitDouble(batched.NextU64()), scalar.NextDouble()) << i;
  }
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~std::uint64_t{0});
  Rng rng(1);
  (void)rng();  // callable
}

}  // namespace
}  // namespace subsim
