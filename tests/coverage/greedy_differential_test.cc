// Differential testing of the CELF lazy greedy against the textbook
// full-scan reference: identical seeds, gains, and prefixes across
// randomized instances and option combinations. The CELF correctness
// argument (a popped entry with an unchanged key dominates all stale keys)
// is exactly what this verifies empirically.

#include <gtest/gtest.h>

#include <tuple>

#include "subsim/coverage/max_coverage.h"
#include "subsim/coverage/reference_greedy.h"
#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"
#include "subsim/rrset/subsim_ic_generator.h"
#include "subsim/rrset/vanilla_ic_generator.h"

namespace subsim {
namespace {

struct DiffCase {
  std::uint64_t seed;
  std::uint32_t k;
  bool tie_break;
  bool exclude_hits;
};

class GreedyDifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, int, bool, bool>> {};

TEST_P(GreedyDifferentialTest, CelfMatchesReference) {
  const auto [seed, k, tie_break, exclude_hits] = GetParam();

  Result<EdgeList> list = GenerateBarabasiAlbert(400, 3, true, seed);
  ASSERT_TRUE(list.ok());
  WeightModelParams params;
  params.wc_variant_theta = 1.5;
  ASSERT_TRUE(
      AssignWeights(WeightModel::kWcVariant, params, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  ASSERT_TRUE(graph.ok());

  SubsimIcGenerator generator(*graph);
  if (exclude_hits) {
    // Install sentinels so some sets carry the hit flag.
    generator.SetSentinels(std::vector<NodeId>{0, 1, 2});
  }
  RrCollection collection(graph->num_nodes());
  Rng rng(seed * 7919 + 13);
  generator.Fill(rng, 800, &collection);

  CoverageGreedyOptions options;
  options.k = k;
  options.tie_break_by_out_degree = tie_break;
  options.graph = tie_break ? &*graph : nullptr;
  options.exclude_sentinel_hit_sets = exclude_hits;
  const std::vector<NodeId> excluded = {5, 6};
  options.excluded_nodes = excluded;

  const CoverageGreedyResult fast = RunCoverageGreedy(collection, options);
  const CoverageGreedyResult reference =
      RunReferenceCoverageGreedy(collection, options);

  EXPECT_EQ(fast.seeds, reference.seeds);
  EXPECT_EQ(fast.gains, reference.gains);
  EXPECT_EQ(fast.coverage_prefix, reference.coverage_prefix);
  EXPECT_EQ(fast.considered_sets, reference.considered_sets);
  EXPECT_EQ(fast.top_k_singleton_sum, reference.top_k_singleton_sum);
}

INSTANTIATE_TEST_SUITE_P(
    Randomized, GreedyDifferentialTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),   // instance seed
                       ::testing::Values(1, 5, 25),        // k
                       ::testing::Bool(),                  // tie-break
                       ::testing::Bool()));                // exclude hits

TEST(GreedyDifferentialTest, VanillaGeneratorInstancesAgreeToo) {
  Result<EdgeList> list = GenerateErdosRenyi(300, 2400, 17);
  ASSERT_TRUE(list.ok());
  ASSERT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  ASSERT_TRUE(graph.ok());

  VanillaIcGenerator generator(*graph);
  RrCollection collection(graph->num_nodes());
  Rng rng(18);
  generator.Fill(rng, 1500, &collection);

  CoverageGreedyOptions options;
  options.k = 40;
  const CoverageGreedyResult fast = RunCoverageGreedy(collection, options);
  const CoverageGreedyResult reference =
      RunReferenceCoverageGreedy(collection, options);
  EXPECT_EQ(fast.seeds, reference.seeds);
  EXPECT_EQ(fast.gains, reference.gains);
}

}  // namespace
}  // namespace subsim
