#include "subsim/coverage/max_coverage.h"

#include <gtest/gtest.h>

#include <vector>

#include "subsim/graph/graph_builder.h"

namespace subsim {
namespace {

RrCollection CollectionFromSets(NodeId n,
                                const std::vector<std::vector<NodeId>>& sets,
                                const std::vector<bool>& hits = {}) {
  RrCollection collection(n);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    collection.Add(sets[i], i < hits.size() && hits[i]);
  }
  return collection;
}

TEST(MaxCoverageTest, SingleSeedPicksMostFrequentNode) {
  const RrCollection collection = CollectionFromSets(
      4, {{0, 1}, {1, 2}, {1, 3}, {2}, {0}});
  CoverageGreedyOptions options;
  options.k = 1;
  const CoverageGreedyResult result = RunCoverageGreedy(collection, options);
  ASSERT_EQ(result.seeds.size(), 1u);
  EXPECT_EQ(result.seeds[0], 1u);  // node 1 covers 3 sets
  EXPECT_EQ(result.total_coverage(), 3u);
  EXPECT_EQ(result.gains[0], 3u);
}

TEST(MaxCoverageTest, GreedySequenceIsCorrectOnKnownInstance) {
  // Classic max-coverage: greedy picks the biggest set, then the best
  // residual.
  const RrCollection collection = CollectionFromSets(
      5, {{0, 1}, {0, 2}, {0, 3}, {4, 1}, {4, 2}, {3}});
  CoverageGreedyOptions options;
  options.k = 2;
  const CoverageGreedyResult result = RunCoverageGreedy(collection, options);
  ASSERT_EQ(result.seeds.size(), 2u);
  EXPECT_EQ(result.seeds[0], 0u);  // covers sets 0,1,2
  EXPECT_EQ(result.seeds[1], 4u);  // covers sets 3,4
  EXPECT_EQ(result.total_coverage(), 5u);
}

TEST(MaxCoverageTest, GainsAreNonIncreasing) {
  const RrCollection collection = CollectionFromSets(
      6, {{0, 1, 2}, {0, 3}, {1, 4}, {2, 5}, {3}, {4}, {5}, {0}});
  CoverageGreedyOptions options;
  options.k = 6;
  const CoverageGreedyResult result = RunCoverageGreedy(collection, options);
  for (std::size_t i = 1; i < result.gains.size(); ++i) {
    EXPECT_LE(result.gains[i], result.gains[i - 1]);
  }
  // coverage_prefix is the running sum of gains.
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < result.gains.size(); ++i) {
    acc += result.gains[i];
    EXPECT_EQ(result.coverage_prefix[i], acc);
  }
}

TEST(MaxCoverageTest, TieBreakByOutDegree) {
  // Nodes 0 and 1 cover the same number of sets; node 1 has larger
  // out-degree and must win under Algorithm 6.
  GraphBuilder builder(4);
  builder.AddEdge(1, 2, 0.5);
  builder.AddEdge(1, 3, 0.5);
  builder.AddEdge(0, 2, 0.5);
  Result<Graph> graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());

  const RrCollection collection =
      CollectionFromSets(4, {{0}, {0}, {1}, {1}});
  CoverageGreedyOptions options;
  options.k = 1;
  options.tie_break_by_out_degree = true;
  options.graph = &*graph;
  const CoverageGreedyResult result = RunCoverageGreedy(collection, options);
  ASSERT_EQ(result.seeds.size(), 1u);
  EXPECT_EQ(result.seeds[0], 1u);

  // Without the tie-break (Algorithm 1), the deterministic id order picks
  // the higher id too... so flip the instance: give node 0 the larger
  // out-degree and check it wins only when tie-breaking is on.
  GraphBuilder builder2(4);
  builder2.AddEdge(0, 2, 0.5);
  builder2.AddEdge(0, 3, 0.5);
  builder2.AddEdge(1, 2, 0.5);
  Result<Graph> graph2 = std::move(builder2).Build();
  ASSERT_TRUE(graph2.ok());
  options.graph = &*graph2;
  const CoverageGreedyResult result2 =
      RunCoverageGreedy(collection, options);
  EXPECT_EQ(result2.seeds[0], 0u);
}

TEST(MaxCoverageTest, ExcludedNodesAreNeverSelected) {
  const RrCollection collection = CollectionFromSets(
      3, {{0}, {0}, {0}, {1}, {2}});
  CoverageGreedyOptions options;
  options.k = 2;
  const std::vector<NodeId> excluded = {0};
  options.excluded_nodes = excluded;
  const CoverageGreedyResult result = RunCoverageGreedy(collection, options);
  ASSERT_EQ(result.seeds.size(), 2u);
  for (NodeId seed : result.seeds) {
    EXPECT_NE(seed, 0u);
  }
}

TEST(MaxCoverageTest, ExcludeSentinelHitSets) {
  const RrCollection collection = CollectionFromSets(
      3, {{0}, {0}, {1}, {1}, {1}},
      {true, true, false, false, false});
  CoverageGreedyOptions options;
  options.k = 1;
  options.exclude_sentinel_hit_sets = true;
  const CoverageGreedyResult result = RunCoverageGreedy(collection, options);
  EXPECT_EQ(result.considered_sets, 3u);
  ASSERT_EQ(result.seeds.size(), 1u);
  EXPECT_EQ(result.seeds[0], 1u);
  EXPECT_EQ(result.total_coverage(), 3u);
}

TEST(MaxCoverageTest, TopKSingletonSumIsExact) {
  const RrCollection collection = CollectionFromSets(
      4, {{0}, {0}, {0}, {1}, {1}, {2}});
  CoverageGreedyOptions options;
  options.k = 2;
  const CoverageGreedyResult result = RunCoverageGreedy(collection, options);
  EXPECT_EQ(result.top_k_singleton_sum, 5u);  // 3 (node 0) + 2 (node 1)
}

TEST(MaxCoverageTest, SingletonTopCountOverridesK) {
  const RrCollection collection = CollectionFromSets(
      4, {{0}, {0}, {0}, {1}, {1}, {2}});
  CoverageGreedyOptions options;
  options.k = 1;
  options.singleton_top_count = 3;
  const CoverageGreedyResult result = RunCoverageGreedy(collection, options);
  EXPECT_EQ(result.top_k_singleton_sum, 6u);  // 3 + 2 + 1
}

TEST(MaxCoverageTest, KLargerThanNodesSelectsAll) {
  const RrCollection collection = CollectionFromSets(3, {{0}, {1}});
  CoverageGreedyOptions options;
  options.k = 10;
  const CoverageGreedyResult result = RunCoverageGreedy(collection, options);
  EXPECT_EQ(result.seeds.size(), 3u);
}

TEST(MaxCoverageTest, EmptyCollectionGivesZeroGains) {
  RrCollection collection(4);
  CoverageGreedyOptions options;
  options.k = 2;
  const CoverageGreedyResult result = RunCoverageGreedy(collection, options);
  EXPECT_EQ(result.seeds.size(), 2u);
  EXPECT_EQ(result.total_coverage(), 0u);
}

TEST(ComputeCoverageTest, CountsDistinctCoveredSets) {
  const RrCollection collection = CollectionFromSets(
      4, {{0, 1}, {1, 2}, {2, 3}, {3}});
  const std::vector<NodeId> seeds = {1, 3};
  // Sets 0,1 contain 1; sets 2,3 contain 3 -> all 4 covered.
  EXPECT_EQ(ComputeCoverage(collection, seeds), 4u);
  const std::vector<NodeId> only0 = {0};
  EXPECT_EQ(ComputeCoverage(collection, only0), 1u);
  const std::vector<NodeId> none = {};
  EXPECT_EQ(ComputeCoverage(collection, none), 0u);
}

TEST(ComputeCoverageTest, OverlappingSeedsNotDoubleCounted) {
  const RrCollection collection = CollectionFromSets(3, {{0, 1}, {0, 1}});
  const std::vector<NodeId> seeds = {0, 1};
  EXPECT_EQ(ComputeCoverage(collection, seeds), 2u);
}

}  // namespace
}  // namespace subsim
