#include "subsim/coverage/bounds.h"

#include <gtest/gtest.h>

#include <cmath>

#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"
#include "subsim/rrset/subsim_ic_generator.h"

namespace subsim {
namespace {

TEST(OpimLowerBoundTest, MatchesEquationOne) {
  // Hand evaluation of Eq (1): Lambda = 100, theta = 1000, n = 10000,
  // delta = 0.01 -> eta = ln(100).
  const double eta = std::log(100.0);
  const double root = std::sqrt(100.0 + 2.0 * eta / 9.0) - std::sqrt(eta / 2.0);
  const double expected = (root * root - eta / 18.0) * 10000.0 / 1000.0;
  EXPECT_NEAR(OpimLowerBound(100, 1000, 10000, 0.01), expected, 1e-9);
}

TEST(OpimUpperBoundTest, MatchesEquationTwo) {
  const double eta = std::log(100.0);
  const double root = std::sqrt(250.0 + eta / 2.0) + std::sqrt(eta / 2.0);
  const double expected = root * root * 10000.0 / 1000.0;
  EXPECT_NEAR(OpimUpperBound(250.0, 1000, 10000, 0.01), expected, 1e-9);
}

TEST(OpimBoundsTest, LowerBelowEstimateBelowUpper) {
  // The unbiased estimate n * Lambda / theta must sit between the bounds.
  const std::uint64_t coverage = 500;
  const std::uint64_t theta = 2000;
  const NodeId n = 50000;
  const double estimate =
      static_cast<double>(coverage) * n / static_cast<double>(theta);
  const double lower = OpimLowerBound(coverage, theta, n, 0.001);
  const double upper = OpimUpperBound(static_cast<double>(coverage), theta,
                                      n, 0.001);
  EXPECT_LT(lower, estimate);
  EXPECT_GT(upper, estimate);
}

TEST(OpimBoundsTest, TightenWithMoreSamples) {
  // Same coverage *rate*, more samples -> tighter interval.
  const NodeId n = 50000;
  const double gap_small =
      OpimUpperBound(50.0, 200, n, 0.01) - OpimLowerBound(50, 200, n, 0.01);
  const double gap_large = OpimUpperBound(5000.0, 20000, n, 0.01) -
                           OpimLowerBound(5000, 20000, n, 0.01);
  EXPECT_LT(gap_large, gap_small);
}

TEST(OpimBoundsTest, SmallerDeltaWidensInterval) {
  const NodeId n = 10000;
  EXPECT_LE(OpimLowerBound(100, 1000, n, 1e-6),
            OpimLowerBound(100, 1000, n, 1e-2));
  EXPECT_GE(OpimUpperBound(100.0, 1000, n, 1e-6),
            OpimUpperBound(100.0, 1000, n, 1e-2));
}

TEST(OpimBoundsTest, ZeroCoverageLowerBoundNonPositive) {
  EXPECT_LE(OpimLowerBound(0, 100, 1000, 0.01), 1e-9);
}

CoverageGreedyResult MakeGreedyResult(std::vector<std::uint64_t> gains,
                                      std::uint64_t top_k_sum,
                                      std::uint64_t considered) {
  CoverageGreedyResult result;
  result.gains = std::move(gains);
  std::uint64_t acc = 0;
  for (std::uint64_t g : result.gains) {
    acc += g;
    result.coverage_prefix.push_back(acc);
    result.seeds.push_back(static_cast<NodeId>(result.seeds.size()));
  }
  result.top_k_singleton_sum = top_k_sum;
  result.considered_sets = considered;
  return result;
}

TEST(CoverageUpperBoundTest, UsesMinOverPrefixTerms) {
  // gains (10, 8, 2), k = 3, top-3 singleton sum = 27.
  // candidates: i=0 exact: 27;
  //             i=1: 10 + 3*8 = 34; i=2: 18 + 3*2 = 24;
  //             i=3 (not exhausted): 20 + 3*2 = 26.
  // min = 24, clamped to >= total coverage (20) -> 24.
  const CoverageGreedyResult greedy =
      MakeGreedyResult({10, 8, 2}, 27, /*considered=*/100);
  EXPECT_DOUBLE_EQ(CoverageUpperBoundFromGreedy(greedy, 3), 24.0);
}

TEST(CoverageUpperBoundTest, ExhaustedCoverageUsesZeroTail) {
  // All 20 considered sets covered: final term is exactly the coverage.
  const CoverageGreedyResult greedy =
      MakeGreedyResult({12, 8}, 30, /*considered=*/20);
  EXPECT_DOUBLE_EQ(CoverageUpperBoundFromGreedy(greedy, 2), 20.0);
}

TEST(CoverageUpperBoundTest, NeverBelowAchievedCoverage) {
  const CoverageGreedyResult greedy =
      MakeGreedyResult({5, 5, 5}, 6, /*considered=*/100);
  EXPECT_GE(CoverageUpperBoundFromGreedy(greedy, 3), 15.0);
}

TEST(CoverageUpperBoundTest, StatisticallyBoundsOptimalCoverage) {
  // On a real instance the bound must dominate the best k-subset coverage
  // found by the greedy itself (which lower-bounds the optimum it proxies).
  Result<EdgeList> list = GenerateErdosRenyi(80, 500, 3);
  ASSERT_TRUE(list.ok());
  ASSERT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  ASSERT_TRUE(graph.ok());

  SubsimIcGenerator generator(*graph);
  RrCollection collection(graph->num_nodes());
  Rng rng(4);
  generator.Fill(rng, 2000, &collection);

  CoverageGreedyOptions options;
  options.k = 5;
  const CoverageGreedyResult greedy = RunCoverageGreedy(collection, options);
  const double upper = CoverageUpperBoundFromGreedy(greedy, 5);
  EXPECT_GE(upper, static_cast<double>(greedy.total_coverage()));
}

}  // namespace
}  // namespace subsim
