// Accuracy and determinism of the HLL count-distinct coverage path:
// sketch primitives stay within the 1.04/√m error model, and the
// approx-coverage greedy commits only exact gains, so its reported
// coverage is trustworthy even when candidate ordering is approximate.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "subsim/coverage/hll_sketch.h"
#include "subsim/coverage/max_coverage.h"
#include "subsim/random/rng.h"
#include "subsim/rrset/rr_collection.h"

namespace subsim {
namespace {

TEST(HllSketchTest, EstimateWithinErrorModelAtKnownCardinalities) {
  constexpr std::uint32_t kPrecision = 12;
  const double rse = HllRelativeStdError(kPrecision);
  EXPECT_NEAR(rse, 1.04 / 64.0, 1e-9);  // 1.04/sqrt(2^12)

  for (const std::uint64_t cardinality :
       {std::uint64_t{100}, std::uint64_t{2000}, std::uint64_t{50000}}) {
    std::vector<std::uint8_t> registers(HllNumRegisters(kPrecision), 0);
    for (std::uint64_t item = 0; item < cardinality; ++item) {
      HllObserve(registers, kPrecision, item);
    }
    const double estimate = HllEstimate(registers);
    // 5 standard errors: loose enough to be deterministic-safe, tight
    // enough to catch a broken estimator or hash.
    EXPECT_NEAR(estimate, static_cast<double>(cardinality),
                5.0 * rse * static_cast<double>(cardinality))
        << "cardinality " << cardinality;
  }
}

TEST(HllSketchTest, ObserveIsIdempotentAndDeterministic) {
  constexpr std::uint32_t kPrecision = 8;
  std::vector<std::uint8_t> once(HllNumRegisters(kPrecision), 0);
  std::vector<std::uint8_t> thrice(HllNumRegisters(kPrecision), 0);
  for (std::uint64_t item = 0; item < 500; ++item) {
    HllObserve(once, kPrecision, item);
    HllObserve(thrice, kPrecision, item);
    HllObserve(thrice, kPrecision, item);
    HllObserve(thrice, kPrecision, item);
  }
  EXPECT_EQ(once, thrice) << "re-observing an item must not move registers";
}

TEST(HllSketchTest, UnionEstimateMatchesMergedSketch) {
  constexpr std::uint32_t kPrecision = 10;
  std::vector<std::uint8_t> a(HllNumRegisters(kPrecision), 0);
  std::vector<std::uint8_t> b(HllNumRegisters(kPrecision), 0);
  // Overlapping ranges: |A|=3000, |B|=3000, |A ∪ B|=4500.
  for (std::uint64_t item = 0; item < 3000; ++item) {
    HllObserve(a, kPrecision, item);
  }
  for (std::uint64_t item = 1500; item < 4500; ++item) {
    HllObserve(b, kPrecision, item);
  }

  const double on_the_fly = HllEstimateUnion(a, b);
  std::vector<std::uint8_t> merged = a;
  HllMerge(merged, b);
  EXPECT_DOUBLE_EQ(on_the_fly, HllEstimate(merged));

  const double rse = HllRelativeStdError(kPrecision);
  EXPECT_NEAR(on_the_fly, 4500.0, 5.0 * rse * 4500.0);
  // Merging is monotone: the union estimate can't fall below either input.
  EXPECT_GE(HllEstimate(merged) * (1.0 + 5.0 * rse), HllEstimate(a));
}

/// A synthetic workload big enough for the sketches to matter: `num_sets`
/// RR-set-like draws with skewed membership (low ids show up more often,
/// mimicking high-degree nodes) over `n` nodes.
RrCollection SkewedCollection(NodeId n, int num_sets, std::uint64_t seed) {
  RrCollection collection(n);
  Rng rng(seed);
  std::vector<NodeId> set;
  for (int i = 0; i < num_sets; ++i) {
    set.clear();
    const std::size_t size = 2 + static_cast<std::size_t>(rng.UniformInt(8));
    while (set.size() < size) {
      // Square the uniform draw to skew toward small ids.
      const double u = rng.NextDouble();
      const NodeId v = static_cast<NodeId>(u * u * static_cast<double>(n));
      if (std::find(set.begin(), set.end(), v) == set.end()) {
        set.push_back(v < n ? v : n - 1);
      }
    }
    collection.Add(set, false);
  }
  return collection;
}

TEST(ApproxCoverageTest, CommittedGainsAndPrefixesAreExact) {
  const RrCollection collection = SkewedCollection(400, 6000, 11);
  CoverageGreedyOptions options;
  options.k = 12;
  options.approx_coverage = true;
  options.hll_precision = 8;
  const CoverageGreedyResult result = RunCoverageGreedy(collection, options);
  ASSERT_EQ(result.seeds.size(), 12u);
  ASSERT_EQ(result.coverage_prefix.size(), 12u);

  // Whatever order the sketches suggested, every committed gain and prefix
  // must be the true set-count — re-derive them with the exact counter.
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < result.seeds.size(); ++i) {
    const std::span<const NodeId> prefix(result.seeds.data(), i + 1);
    const std::uint64_t exact = ComputeCoverage(collection, prefix);
    running += result.gains[i];
    EXPECT_EQ(result.coverage_prefix[i], exact) << "seed prefix " << i + 1;
    EXPECT_EQ(running, exact) << "gains must telescope exactly";
  }
  // No duplicate seeds.
  std::vector<NodeId> sorted = result.seeds;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(ApproxCoverageTest, ApproxRunsAreBitwiseDeterministic) {
  const RrCollection collection = SkewedCollection(300, 4000, 23);
  CoverageGreedyOptions options;
  options.k = 8;
  options.approx_coverage = true;
  options.hll_precision = 6;
  const CoverageGreedyResult first = RunCoverageGreedy(collection, options);
  const CoverageGreedyResult second = RunCoverageGreedy(collection, options);
  EXPECT_EQ(first.seeds, second.seeds);
  EXPECT_EQ(first.gains, second.gains);
  EXPECT_EQ(first.coverage_prefix, second.coverage_prefix);
}

TEST(ApproxCoverageTest, ApproxCoverageNearExactGreedy) {
  // The (1−1/e)-style guarantee degrades gracefully under sketch error:
  // with exact refinement of near-top candidates, total coverage must land
  // within a few percent of the exact greedy on a workload with real
  // overlap structure. 10% is far looser than observed but fails loudly
  // if refinement stops working.
  const RrCollection collection = SkewedCollection(500, 8000, 42);
  CoverageGreedyOptions exact_options;
  exact_options.k = 10;
  const CoverageGreedyResult exact =
      RunCoverageGreedy(collection, exact_options);

  CoverageGreedyOptions approx_options = exact_options;
  approx_options.approx_coverage = true;
  for (const std::uint32_t precision : {6u, 8u, 12u}) {
    approx_options.hll_precision = precision;
    const CoverageGreedyResult approx =
        RunCoverageGreedy(collection, approx_options);
    ASSERT_EQ(approx.seeds.size(), exact.seeds.size());
    // Note: approx can land slightly *above* exact greedy too — greedy is
    // not the optimum, so a perturbed pick order occasionally wins.
    EXPECT_GE(static_cast<double>(approx.total_coverage()),
              0.9 * static_cast<double>(exact.total_coverage()))
        << "precision " << precision;
  }
}

TEST(ApproxCoverageTest, PrecisionIsClampedNotRejected) {
  const RrCollection collection = SkewedCollection(100, 500, 5);
  CoverageGreedyOptions options;
  options.k = 3;
  options.approx_coverage = true;
  options.hll_precision = 99;  // clamped to the [4, 16] band
  const CoverageGreedyResult result = RunCoverageGreedy(collection, options);
  EXPECT_EQ(result.seeds.size(), 3u);
  options.hll_precision = 0;
  const CoverageGreedyResult low = RunCoverageGreedy(collection, options);
  EXPECT_EQ(low.seeds.size(), 3u);
}

}  // namespace
}  // namespace subsim
