#include "subsim/util/string_util.h"

#include <gtest/gtest.h>

namespace subsim {
namespace {

TEST(SplitAndTrimTest, SplitsOnAnyDelimiter) {
  const auto pieces = SplitAndTrim("a b\tc", " \t");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(SplitAndTrimTest, DropsEmptyPieces) {
  const auto pieces = SplitAndTrim("  x   y  ", " ");
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], "x");
  EXPECT_EQ(pieces[1], "y");
}

TEST(SplitAndTrimTest, EmptyInputYieldsNothing) {
  EXPECT_TRUE(SplitAndTrim("", " ").empty());
  EXPECT_TRUE(SplitAndTrim("   ", " ").empty());
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  hello \t\n"), "hello");
  EXPECT_EQ(StripWhitespace("x"), "x");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("--scale=0.5", "--scale"));
  EXPECT_FALSE(StartsWith("--scale", "--scale=0.5"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

TEST(HumanCountTest, PicksUnits) {
  EXPECT_EQ(HumanCount(999), "999");
  EXPECT_EQ(HumanCount(1500), "1.5K");
  EXPECT_EQ(HumanCount(30600000), "30.6M");
  EXPECT_EQ(HumanCount(1500000000ull), "1.5B");
}

TEST(HumanSecondsTest, PicksUnits) {
  EXPECT_EQ(HumanSeconds(0.0000123), "12.3us");
  EXPECT_EQ(HumanSeconds(0.0456), "45.60ms");
  EXPECT_EQ(HumanSeconds(3.5), "3.500s");
}

TEST(ParseUint64Test, ValidInputs) {
  std::uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, ~std::uint64_t{0});
  EXPECT_TRUE(ParseUint64("  42 ", &v));
  EXPECT_EQ(v, 42u);
}

TEST(ParseUint64Test, RejectsMalformed) {
  std::uint64_t v = 0;
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("-3", &v));
  EXPECT_FALSE(ParseUint64("12x", &v));
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // overflow
  EXPECT_FALSE(ParseUint64("1.5", &v));
}

TEST(ParseDoubleTest, ValidInputs) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("0.25", &v));
  EXPECT_DOUBLE_EQ(v, 0.25);
  EXPECT_TRUE(ParseDouble("-1e-3", &v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
}

TEST(ParseDoubleTest, RejectsMalformed) {
  double v = 0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5zz", &v));
}

}  // namespace
}  // namespace subsim
