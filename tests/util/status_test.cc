#include "subsim/util/status.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

namespace subsim {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  const Status invalid = Status::InvalidArgument("bad k");
  EXPECT_FALSE(invalid.ok());
  EXPECT_EQ(invalid.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(invalid.message(), "bad k");
  EXPECT_EQ(invalid.ToString(), "InvalidArgument: bad k");

  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

TEST(StatusTest, CopyAndMovePreserveContents) {
  Status original = Status::Internal("boom");
  Status copy = original;
  EXPECT_EQ(copy.code(), StatusCode::kInternal);
  EXPECT_EQ(copy.message(), "boom");

  Status moved = std::move(original);
  EXPECT_EQ(moved.code(), StatusCode::kInternal);
  EXPECT_EQ(moved.message(), "boom");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.status().message(), "nope");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  ASSERT_TRUE(result.ok());
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

TEST(ResultTest, MutableValueReference) {
  Result<std::string> result(std::string("a"));
  result.value() += "b";
  EXPECT_EQ(*result, "ab");
}

Status FailingStep() { return Status::IoError("disk"); }

Status PipelineUsingReturnIfError() {
  SUBSIM_RETURN_IF_ERROR(Status::Ok());
  SUBSIM_RETURN_IF_ERROR(FailingStep());
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnIfErrorPropagatesFirstFailure) {
  const Status status = PipelineUsingReturnIfError();
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(status.message(), "disk");
}

}  // namespace
}  // namespace subsim
