#include "subsim/util/logging.h"

#include <gtest/gtest.h>

namespace subsim {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kInfo); }
};

TEST_F(LoggingTest, DefaultLevelIsInfo) {
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST_F(LoggingTest, ThresholdFiltersLowerLevels) {
  SetLogLevel(LogLevel::kWarning);
  EXPECT_FALSE(internal_logging::ShouldLog(LogLevel::kDebug));
  EXPECT_FALSE(internal_logging::ShouldLog(LogLevel::kInfo));
  EXPECT_TRUE(internal_logging::ShouldLog(LogLevel::kWarning));
  EXPECT_TRUE(internal_logging::ShouldLog(LogLevel::kError));
}

TEST_F(LoggingTest, MacroCompilesAndRespectsLevel) {
  SetLogLevel(LogLevel::kError);
  // These must not crash; the first two are filtered.
  SUBSIM_LOG(kDebug) << "invisible " << 1;
  SUBSIM_LOG(kInfo) << "invisible " << 2;
  SUBSIM_LOG(kError) << "visible " << 3;
}

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

}  // namespace
}  // namespace subsim
