#include "subsim/util/math.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace subsim {
namespace {

TEST(LogFactorialTest, SmallValuesMatchDirectComputation) {
  EXPECT_NEAR(LogFactorial(0), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(1), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-9);
  EXPECT_NEAR(LogFactorial(10), std::log(3628800.0), 1e-9);
}

TEST(LogNChooseKTest, MatchesExactBinomials) {
  EXPECT_NEAR(LogNChooseK(5, 2), std::log(10.0), 1e-9);
  EXPECT_NEAR(LogNChooseK(10, 5), std::log(252.0), 1e-9);
  EXPECT_NEAR(LogNChooseK(52, 5), std::log(2598960.0), 1e-6);
}

TEST(LogNChooseKTest, BoundaryCasesAreZero) {
  EXPECT_DOUBLE_EQ(LogNChooseK(7, 0), 0.0);
  EXPECT_DOUBLE_EQ(LogNChooseK(7, 7), 0.0);
  EXPECT_DOUBLE_EQ(LogNChooseK(0, 0), 0.0);
}

TEST(LogNChooseKTest, SymmetricInK) {
  EXPECT_NEAR(LogNChooseK(100, 30), LogNChooseK(100, 70), 1e-8);
}

TEST(LogNChooseKTest, LargeArgumentsStayFinite) {
  const double v = LogNChooseK(1000000, 2000);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 0.0);
}

TEST(PowOneMinusInvKTest, KnownValues) {
  EXPECT_DOUBLE_EQ(PowOneMinusInvK(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(PowOneMinusInvK(1, 5), 0.0);  // (1-1)^5
  EXPECT_NEAR(PowOneMinusInvK(2, 3), 0.125, 1e-12);
  EXPECT_NEAR(PowOneMinusInvK(4, 2), 0.5625, 1e-12);
}

TEST(PowOneMinusInvKTest, ApproachesInvEAtBEqualsK) {
  // (1 - 1/k)^k -> 1/e as k grows.
  EXPECT_NEAR(PowOneMinusInvK(1000, 1000), 1.0 / std::exp(1.0), 1e-3);
}

TEST(HistApproxTargetTest, MatchesDefinition) {
  const double target = HistApproxTarget(10, 3, 0.05);
  EXPECT_NEAR(target, 1.0 - std::pow(0.9, 3) - 0.05, 1e-12);
}

TEST(HistApproxTargetTest, FullBudgetApproachesClassicRatio) {
  // b == k and large k: 1 - (1-1/k)^k - eps ~ 1 - 1/e - eps.
  EXPECT_NEAR(HistApproxTarget(100000, 100000, 0.1),
              kOneMinusInvE - 0.1, 1e-4);
}

TEST(NextPowerOfTwoTest, Values) {
  EXPECT_EQ(NextPowerOfTwo(0), 1u);
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1023), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
}

TEST(FloorCeilLog2Test, Values) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(1024), 10);
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(1024), 10);
  EXPECT_EQ(CeilLog2(1025), 11);
}

class PowOneMinusInvKSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 std::uint64_t>> {};

TEST_P(PowOneMinusInvKSweep, AgreesWithStdPow) {
  const auto [k, b] = GetParam();
  const double expected =
      std::pow(1.0 - 1.0 / static_cast<double>(k), static_cast<double>(b));
  EXPECT_NEAR(PowOneMinusInvK(k, b), expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PowOneMinusInvKSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(2, 3, 10, 100, 5000),
                       ::testing::Values<std::uint64_t>(0, 1, 2, 7, 50)));

}  // namespace
}  // namespace subsim
