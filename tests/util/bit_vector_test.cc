#include "subsim/util/bit_vector.h"

#include <gtest/gtest.h>

namespace subsim {
namespace {

TEST(BitVectorTest, StartsAllClear) {
  BitVector bits(130);
  EXPECT_EQ(bits.size(), 130u);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    EXPECT_FALSE(bits.Get(i)) << "bit " << i;
  }
}

TEST(BitVectorTest, SetReturnsTrueOnlyOnTransition) {
  BitVector bits(64);
  EXPECT_TRUE(bits.Set(7));
  EXPECT_TRUE(bits.Get(7));
  EXPECT_FALSE(bits.Set(7));  // already set
  EXPECT_TRUE(bits.Get(7));
}

TEST(BitVectorTest, WorksAcrossWordBoundaries) {
  BitVector bits(200);
  for (std::size_t i : {0u, 63u, 64u, 65u, 127u, 128u, 199u}) {
    EXPECT_TRUE(bits.Set(i));
  }
  for (std::size_t i : {0u, 63u, 64u, 65u, 127u, 128u, 199u}) {
    EXPECT_TRUE(bits.Get(i));
  }
  EXPECT_FALSE(bits.Get(1));
  EXPECT_FALSE(bits.Get(62));
  EXPECT_FALSE(bits.Get(129));
}

TEST(BitVectorTest, ResetTouchedClearsOnlySetBits) {
  BitVector bits(100);
  bits.Set(3);
  bits.Set(99);
  EXPECT_EQ(bits.touched_count(), 2u);
  bits.ResetTouched();
  EXPECT_EQ(bits.touched_count(), 0u);
  EXPECT_FALSE(bits.Get(3));
  EXPECT_FALSE(bits.Get(99));
}

TEST(BitVectorTest, ReusableAcrossManyEpochs) {
  BitVector bits(32);
  for (int epoch = 0; epoch < 100; ++epoch) {
    const std::size_t a = epoch % 32;
    const std::size_t b = (epoch * 7) % 32;
    bits.Set(a);
    bits.Set(b);
    EXPECT_TRUE(bits.Get(a));
    EXPECT_TRUE(bits.Get(b));
    bits.ResetTouched();
    EXPECT_FALSE(bits.Get(a));
    EXPECT_FALSE(bits.Get(b));
  }
}

TEST(BitVectorTest, ResizeClearsState) {
  BitVector bits(10);
  bits.Set(5);
  bits.Resize(20);
  EXPECT_EQ(bits.size(), 20u);
  EXPECT_FALSE(bits.Get(5));
  EXPECT_EQ(bits.touched_count(), 0u);
}

TEST(BitVectorTest, DuplicateSetRecordsOneTouch) {
  BitVector bits(8);
  bits.Set(2);
  bits.Set(2);
  bits.Set(2);
  EXPECT_EQ(bits.touched_count(), 1u);
}

}  // namespace
}  // namespace subsim
