#include "subsim/util/resource.h"

#include <gtest/gtest.h>

#include <vector>

namespace subsim {
namespace {

TEST(ResourceTest, CurrentRssIsPositive) {
  EXPECT_GT(CurrentRssBytes(), 0u);
}

TEST(ResourceTest, PeakRssIsAtLeastCurrent) {
  const std::uint64_t current = CurrentRssBytes();
  const std::uint64_t peak = PeakRssBytes();
  EXPECT_GT(peak, 0u);
  // Peak can lag current by page-accounting granularity; allow 20% slack.
  EXPECT_GE(peak, current / 5 * 4);
}

TEST(ResourceTest, AllocationMovesPeak) {
  const std::uint64_t before = PeakRssBytes();
  // Touch 64 MB so it is actually resident.
  std::vector<char> block(64 * 1024 * 1024, 1);
  for (std::size_t i = 0; i < block.size(); i += 4096) {
    block[i] = static_cast<char>(i);
  }
  const std::uint64_t after = PeakRssBytes();
  EXPECT_GE(after, before + 32 * 1024 * 1024)
      << "peak RSS did not register a 64MB allocation";
  EXPECT_GT(block[123], -128);  // keep the buffer alive
}

}  // namespace
}  // namespace subsim
