// Distributional check for the SUBSIM generator's kTakeAll plan (uniform
// in-weights equal to 1, as produced by the WC variant's min{1, theta/d}
// clamp) and for mixed graphs where clamped and unclamped nodes coexist:
// the SUBSIM generator must agree with the vanilla generator everywhere.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "subsim/eval/exact_spread.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"
#include "subsim/rrset/subsim_ic_generator.h"
#include "subsim/rrset/vanilla_ic_generator.h"

namespace subsim {
namespace {

std::vector<double> Frequencies(RrGenerator& generator, NodeId n, int trials,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> out;
  std::vector<int> counts(n, 0);
  for (int t = 0; t < trials; ++t) {
    generator.Generate(rng, &out);
    for (NodeId v : out) {
      ++counts[v];
    }
  }
  std::vector<double> freq(n);
  for (NodeId v = 0; v < n; ++v) {
    freq[v] = static_cast<double>(counts[v]) / trials;
  }
  return freq;
}

TEST(TakeAllDistributionTest, WeightOneEdgesMatchExactInfluence) {
  // Mixed graph: node 2's in-edges are clamped to 1 (kTakeAll), node 4's
  // are fractional-uniform (kUniformSkip), node 5's are skewed (kGeneral).
  EdgeList list;
  list.num_nodes = 6;
  list.edges = {{0, 2, 1.0}, {1, 2, 1.0}, {2, 4, 0.4}, {3, 4, 0.4},
                {0, 5, 0.7}, {4, 5, 0.2}, {2, 3, 0.5}};
  Result<Graph> graph = BuildGraph(std::move(list));
  ASSERT_TRUE(graph.ok());

  constexpr int kTrials = 200000;
  SubsimIcGenerator subsim(*graph, GeneralIcStrategy::kBucketIndexed,
                           /*naive_fallback_degree=*/0);
  const auto freq = Frequencies(subsim, 6, kTrials, 1);

  for (NodeId u = 0; u < 6; ++u) {
    double expected = 0.0;
    for (NodeId v = 0; v < 6; ++v) {
      const Result<double> p = ExactInfluenceProbabilityIc(*graph, u, v);
      ASSERT_TRUE(p.ok());
      expected += *p;
    }
    expected /= 6.0;
    const double sigma = std::sqrt(expected * (1.0 - expected) / kTrials);
    EXPECT_NEAR(freq[u], expected, 5.0 * sigma + 2.0 / kTrials)
        << "node " << u;
  }
}

TEST(TakeAllDistributionTest, WcVariantClampAgreesAcrossGenerators) {
  // WC-variant with theta = 3 on a small dense graph: low-degree nodes get
  // clamped weight-1 in-edges, high-degree nodes get 3/d < 1 — covering
  // kTakeAll and kUniformSkip together. Compare SUBSIM against vanilla.
  EdgeList list;
  list.num_nodes = 12;
  for (NodeId u = 0; u < 12; ++u) {
    for (NodeId d = 1; d <= 1 + u % 5; ++d) {
      list.edges.push_back(
          Edge{u, static_cast<NodeId>((u + d) % 12), 0.0});
    }
  }
  WeightModelParams params;
  params.wc_variant_theta = 3.0;
  ASSERT_TRUE(AssignWeights(WeightModel::kWcVariant, params, &list).ok());
  Result<Graph> graph = BuildGraph(std::move(list));
  ASSERT_TRUE(graph.ok());

  constexpr int kTrials = 200000;
  VanillaIcGenerator vanilla(*graph);
  SubsimIcGenerator subsim(*graph, GeneralIcStrategy::kAuto,
                           /*naive_fallback_degree=*/0);
  const auto freq_vanilla =
      Frequencies(vanilla, graph->num_nodes(), kTrials, 2);
  const auto freq_subsim =
      Frequencies(subsim, graph->num_nodes(), kTrials, 3);
  for (NodeId v = 0; v < graph->num_nodes(); ++v) {
    const double p = 0.5 * (freq_vanilla[v] + freq_subsim[v]);
    const double sigma = std::sqrt(2.0 * p * (1.0 - p) / kTrials);
    EXPECT_NEAR(freq_vanilla[v], freq_subsim[v], 5.0 * sigma + 3.0 / kTrials)
        << "node " << v;
  }
}

TEST(TakeAllDistributionTest, FallbackThresholdDoesNotChangeDistribution) {
  // The small-degree naive fallback is a pure performance plan: identical
  // distribution with the fallback on and off.
  EdgeList list;
  list.num_nodes = 8;
  list.edges = {{0, 1, 0.5}, {2, 1, 0.3}, {3, 1, 0.2}, {1, 4, 0.6},
                {5, 4, 0.6}, {4, 6, 1.0}, {6, 7, 0.25}};
  Result<Graph> graph = BuildGraph(std::move(list));
  ASSERT_TRUE(graph.ok());

  constexpr int kTrials = 200000;
  SubsimIcGenerator with_fallback(*graph, GeneralIcStrategy::kAuto,
                                  /*naive_fallback_degree=*/16);
  SubsimIcGenerator without_fallback(*graph, GeneralIcStrategy::kAuto,
                                     /*naive_fallback_degree=*/0);
  const auto freq_a = Frequencies(with_fallback, 8, kTrials, 4);
  const auto freq_b = Frequencies(without_fallback, 8, kTrials, 5);
  for (NodeId v = 0; v < 8; ++v) {
    const double p = 0.5 * (freq_a[v] + freq_b[v]);
    const double sigma = std::sqrt(2.0 * p * (1.0 - p) / kTrials);
    EXPECT_NEAR(freq_a[v], freq_b[v], 5.0 * sigma + 3.0 / kTrials)
        << "node " << v;
  }
}

}  // namespace
}  // namespace subsim
