#include "subsim/rrset/parallel_fill.h"

#include <gtest/gtest.h>

#include <cmath>

#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"

namespace subsim {
namespace {

Graph TestGraph() {
  Result<EdgeList> list = GenerateBarabasiAlbert(1000, 4, true, 3);
  EXPECT_TRUE(list.ok());
  EXPECT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

TEST(ParallelFillTest, ProducesRequestedCount) {
  const Graph graph = TestGraph();
  RrCollection collection(graph.num_nodes());
  Rng rng(1);
  ParallelFillOptions options;
  options.num_threads = 4;
  ASSERT_TRUE(ParallelFill(GeneratorKind::kSubsimIc, graph, rng, 1000,
                           options, &collection)
                  .ok());
  EXPECT_EQ(collection.num_sets(), 1000u);
  EXPECT_GE(collection.total_nodes(), 1000u);
}

TEST(ParallelFillTest, DeterministicPerSeedAndThreadCount) {
  const Graph graph = TestGraph();
  auto run = [&](std::uint64_t seed) {
    RrCollection collection(graph.num_nodes());
    Rng rng(seed);
    ParallelFillOptions options;
    options.num_threads = 3;
    EXPECT_TRUE(ParallelFill(GeneratorKind::kVanillaIc, graph, rng, 500,
                             options, &collection)
                    .ok());
    return collection;
  };
  const RrCollection a = run(7);
  const RrCollection b = run(7);
  ASSERT_EQ(a.num_sets(), b.num_sets());
  EXPECT_EQ(a.total_nodes(), b.total_nodes());
  for (RrId id = 0; id < a.num_sets(); ++id) {
    const auto sa = a.Set(id);
    const auto sb = b.Set(id);
    ASSERT_EQ(sa.size(), sb.size()) << "set " << id;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i], sb[i]);
    }
  }
}

TEST(ParallelFillTest, DistributionMatchesSerialFill) {
  // Different RNG stream layout than serial Fill, but the same
  // distribution: compare average set sizes.
  const Graph graph = TestGraph();
  const std::size_t count = 20000;

  RrCollection parallel(graph.num_nodes());
  {
    Rng rng(11);
    ParallelFillOptions options;
    options.num_threads = 8;
    ASSERT_TRUE(ParallelFill(GeneratorKind::kSubsimIc, graph, rng, count,
                             options, &parallel)
                    .ok());
  }
  RrCollection serial(graph.num_nodes());
  {
    Rng rng(12);
    auto generator = MakeRrGenerator(GeneratorKind::kSubsimIc, graph);
    ASSERT_TRUE(generator.ok());
    (*generator)->Fill(rng, count, &serial);
  }
  const double diff =
      std::abs(parallel.average_size() - serial.average_size());
  EXPECT_LT(diff, 0.15 * serial.average_size() + 0.5)
      << parallel.average_size() << " vs " << serial.average_size();
}

TEST(ParallelFillTest, SentinelsApplyInEveryWorker) {
  const Graph graph = TestGraph();
  RrCollection collection(graph.num_nodes());
  Rng rng(13);
  ParallelFillOptions options;
  options.num_threads = 4;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    options.sentinels.push_back(v);  // everything is a sentinel
  }
  ASSERT_TRUE(ParallelFill(GeneratorKind::kSubsimIc, graph, rng, 200,
                           options, &collection)
                  .ok());
  EXPECT_EQ(collection.num_hit_sentinel(), 200u);
  for (RrId id = 0; id < collection.num_sets(); ++id) {
    EXPECT_EQ(collection.Set(id).size(), 1u);  // root-only sets
  }
}

TEST(ParallelFillTest, ZeroCountIsNoop) {
  const Graph graph = TestGraph();
  RrCollection collection(graph.num_nodes());
  Rng rng(14);
  ASSERT_TRUE(ParallelFill(GeneratorKind::kSubsimIc, graph, rng, 0, {},
                           &collection)
                  .ok());
  EXPECT_EQ(collection.num_sets(), 0u);
}

TEST(ParallelFillTest, PropagatesGeneratorConstructionFailure) {
  // LT requires in-weight sums <= 1; violate it.
  GraphBuilder builder(3);
  builder.AddEdge(0, 2, 0.9);
  builder.AddEdge(1, 2, 0.9);
  Result<Graph> graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  RrCollection collection(graph->num_nodes());
  Rng rng(15);
  const Status status =
      ParallelFill(GeneratorKind::kLt, *graph, rng, 10, {}, &collection);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(collection.num_sets(), 0u);
}

TEST(ParallelFillTest, MoreThreadsThanSetsStillWorks) {
  const Graph graph = TestGraph();
  RrCollection collection(graph.num_nodes());
  Rng rng(16);
  ParallelFillOptions options;
  options.num_threads = 64;
  ASSERT_TRUE(ParallelFill(GeneratorKind::kVanillaIc, graph, rng, 5, options,
                           &collection)
                  .ok());
  EXPECT_EQ(collection.num_sets(), 5u);
}

}  // namespace
}  // namespace subsim
