#include "subsim/rrset/parallel_fill.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"

namespace subsim {
namespace {

Graph TestGraph() {
  Result<EdgeList> list = GenerateBarabasiAlbert(1000, 4, true, 3);
  EXPECT_TRUE(list.ok());
  EXPECT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

void ExpectIdentical(const RrCollection& a, const RrCollection& b) {
  ASSERT_EQ(a.num_sets(), b.num_sets());
  ASSERT_EQ(a.total_nodes(), b.total_nodes());
  for (RrId id = 0; id < a.num_sets(); ++id) {
    const auto sa = a.View(id).ToVector();
    const auto sb = b.View(id).ToVector();
    ASSERT_EQ(sa.size(), sb.size()) << "set " << id;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      ASSERT_EQ(sa[i], sb[i]) << "set " << id << " pos " << i;
    }
  }
}

TEST(FillCollectionTest, ProducesRequestedCount) {
  const Graph graph = TestGraph();
  RrCollection collection(graph.num_nodes());
  RngStream rng = MakeRngStream(1, 1);
  FillRequest request;
  request.kind = GeneratorKind::kSubsimIc;
  request.graph = &graph;
  request.rng = &rng;
  request.count = 1000;
  request.num_threads = 4;
  ASSERT_TRUE(FillCollection(request, &collection).ok());
  EXPECT_EQ(collection.num_sets(), 1000u);
  EXPECT_GE(collection.total_nodes(), 1000u);
  EXPECT_EQ(rng.next_index, 1000u);
}

TEST(FillCollectionTest, DeterministicPerSeed) {
  const Graph graph = TestGraph();
  auto run = [&](std::uint64_t seed) {
    RrCollection collection(graph.num_nodes());
    RngStream rng = MakeRngStream(seed, 1);
    FillRequest request;
    request.kind = GeneratorKind::kVanillaIc;
    request.graph = &graph;
    request.rng = &rng;
    request.count = 500;
    request.num_threads = 3;
    EXPECT_TRUE(FillCollection(request, &collection).ok());
    return collection;
  };
  ExpectIdentical(run(7), run(7));
}

TEST(FillCollectionTest, SplitFillsMatchOneFill) {
  // The cursor makes a fill's output depend only on (base_seed, next_index,
  // count): 300 + 700 sets must equal one 1000-set fill byte for byte.
  const Graph graph = TestGraph();
  RrCollection split(graph.num_nodes());
  {
    RngStream rng = MakeRngStream(9, 2);
    FillRequest request;
    request.kind = GeneratorKind::kSubsimIc;
    request.graph = &graph;
    request.rng = &rng;
    request.count = 300;
    ASSERT_TRUE(FillCollection(request, &split).ok());
    EXPECT_EQ(rng.next_index, 300u);
    request.count = 700;
    request.num_threads = 4;
    ASSERT_TRUE(FillCollection(request, &split).ok());
    EXPECT_EQ(rng.next_index, 1000u);
  }
  RrCollection whole(graph.num_nodes());
  {
    RngStream rng = MakeRngStream(9, 2);
    FillRequest request;
    request.kind = GeneratorKind::kSubsimIc;
    request.graph = &graph;
    request.rng = &rng;
    request.count = 1000;
    ASSERT_TRUE(FillCollection(request, &whole).ok());
  }
  ExpectIdentical(split, whole);
}

TEST(FillCollectionTest, StreamSurvivesCollectionReset) {
  // A fresh collection with the same live cursor draws *new* samples —
  // the HIST sentinel phase depends on this.
  const Graph graph = TestGraph();
  RngStream rng = MakeRngStream(21, 1);
  RrCollection first(graph.num_nodes());
  FillRequest request;
  request.kind = GeneratorKind::kSubsimIc;
  request.graph = &graph;
  request.rng = &rng;
  request.count = 200;
  ASSERT_TRUE(FillCollection(request, &first).ok());
  RrCollection second(graph.num_nodes());
  ASSERT_TRUE(FillCollection(request, &second).ok());
  EXPECT_EQ(rng.next_index, 400u);

  ASSERT_EQ(first.num_sets(), second.num_sets());
  bool all_equal = true;
  for (RrId id = 0; id < first.num_sets(); ++id) {
    const auto sa = first.View(id).ToVector();
    const auto sb = second.View(id).ToVector();
    if (sa.size() != sb.size() ||
        !std::equal(sa.begin(), sa.end(), sb.begin())) {
      all_equal = false;
      break;
    }
  }
  EXPECT_FALSE(all_equal);
}

TEST(FillCollectionTest, DistributionMatchesSerialFill) {
  // Different RNG stream layout than serial Fill, but the same
  // distribution: compare average set sizes.
  const Graph graph = TestGraph();
  const std::size_t count = 20000;

  RrCollection parallel(graph.num_nodes());
  {
    RngStream rng = MakeRngStream(11, 1);
    FillRequest request;
    request.kind = GeneratorKind::kSubsimIc;
    request.graph = &graph;
    request.rng = &rng;
    request.count = count;
    request.num_threads = 8;
    ASSERT_TRUE(FillCollection(request, &parallel).ok());
  }
  RrCollection serial(graph.num_nodes());
  {
    Rng rng(12);
    auto generator = MakeRrGenerator(GeneratorKind::kSubsimIc, graph);
    ASSERT_TRUE(generator.ok());
    (*generator)->Fill(rng, count, &serial);
  }
  const double diff =
      std::abs(parallel.average_size() - serial.average_size());
  EXPECT_LT(diff, 0.15 * serial.average_size() + 0.5)
      << parallel.average_size() << " vs " << serial.average_size();
}

TEST(FillCollectionTest, SentinelsApplyInEveryWorker) {
  const Graph graph = TestGraph();
  RrCollection collection(graph.num_nodes());
  RngStream rng = MakeRngStream(13, 1);
  std::vector<NodeId> sentinels;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    sentinels.push_back(v);  // everything is a sentinel
  }
  FillRequest request;
  request.kind = GeneratorKind::kSubsimIc;
  request.graph = &graph;
  request.rng = &rng;
  request.count = 200;
  request.num_threads = 4;
  request.sentinels = sentinels;
  ASSERT_TRUE(FillCollection(request, &collection).ok());
  EXPECT_EQ(collection.num_hit_sentinel(), 200u);
  for (RrId id = 0; id < collection.num_sets(); ++id) {
    EXPECT_EQ(collection.View(id).size(), 1u);  // root-only sets
  }
}

TEST(FillCollectionTest, ZeroCountIsNoop) {
  const Graph graph = TestGraph();
  RrCollection collection(graph.num_nodes());
  RngStream rng = MakeRngStream(14, 1);
  FillRequest request;
  request.kind = GeneratorKind::kSubsimIc;
  request.graph = &graph;
  request.rng = &rng;
  request.count = 0;
  ASSERT_TRUE(FillCollection(request, &collection).ok());
  EXPECT_EQ(collection.num_sets(), 0u);
  EXPECT_EQ(rng.next_index, 0u);
}

TEST(FillCollectionTest, PropagatesGeneratorConstructionFailure) {
  // LT requires in-weight sums <= 1; violate it.
  GraphBuilder builder(3);
  builder.AddEdge(0, 2, 0.9);
  builder.AddEdge(1, 2, 0.9);
  Result<Graph> graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  RrCollection collection(graph->num_nodes());
  RngStream rng = MakeRngStream(15, 1);
  FillRequest request;
  request.kind = GeneratorKind::kLt;
  request.graph = &*graph;
  request.rng = &rng;
  request.count = 10;
  const Status status = FillCollection(request, &collection);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(collection.num_sets(), 0u);
  EXPECT_EQ(rng.next_index, 0u);  // failed fills consume no indices
}

TEST(FillCollectionTest, MoreThreadsThanSetsStillWorks) {
  const Graph graph = TestGraph();
  RrCollection collection(graph.num_nodes());
  RngStream rng = MakeRngStream(16, 1);
  FillRequest request;
  request.kind = GeneratorKind::kVanillaIc;
  request.graph = &graph;
  request.rng = &rng;
  request.count = 5;
  request.num_threads = 64;
  ASSERT_TRUE(FillCollection(request, &collection).ok());
  EXPECT_EQ(collection.num_sets(), 5u);
}

}  // namespace
}  // namespace subsim
