// Golden-checksum regression tests for the ordered RR sample streams.
//
// The FNV-1a checksum of a fill's concatenated (size, nodes...) stream is
// a portable constant: it depends only on the counter-based substreams and
// the generators' draw order, never on thread count, kernel, or platform.
// A change here means the published sample stream changed for everyone —
// goldens, cached sketches, and any recorded benchmark numbers are
// invalidated. Bump the constants only with a deliberate stream-breaking
// change (and say so in the commit message).
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"
#include "subsim/rrset/parallel_fill.h"

namespace subsim {
namespace {

Graph WcGraph() {
  Result<EdgeList> list = GenerateBarabasiAlbert(1200, 4, true, 7);
  EXPECT_TRUE(list.ok());
  EXPECT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

const Graph& SharedGraph() {
  static const Graph* const kGraph = new Graph(WcGraph());
  return *kGraph;
}

/// FNV-1a over the fill's ordered stream: for each set, its size then its
/// nodes in traversal order. Folding the sizes in pins the set boundaries,
/// not just the node concatenation.
std::uint64_t StreamChecksum(const RrCollection& collection) {
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&hash](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (8 * i)) & 0xff;
      hash *= 1099511628211ull;  // FNV-1a prime
    }
  };
  for (RrId id = 0; id < collection.num_sets(); ++id) {
    const RrSetView set = collection.View(id);
    mix(set.size());
    set.ForEachNode([&](NodeId v) { mix(v); });
  }
  return hash;
}

std::uint64_t FillChecksum(GeneratorKind kind, FillKernel kernel) {
  const Graph& graph = SharedGraph();
  RrCollection collection(graph.num_nodes());
  RngStream rng = MakeRngStream(91, 1);
  FillRequest request;
  request.kind = kind;
  request.graph = &graph;
  request.rng = &rng;
  request.count = 2000;
  request.kernel = kernel;
  EXPECT_TRUE(FillCollection(request, &collection).ok());
  return StreamChecksum(collection);
}

struct GoldenCase {
  GeneratorKind kind;
  std::uint64_t checksum;
};

class RrStreamGoldenTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(RrStreamGoldenTest, ScalarStreamMatchesGolden) {
  EXPECT_EQ(FillChecksum(GetParam().kind, FillKernel::kScalar),
            GetParam().checksum);
}

TEST_P(RrStreamGoldenTest, BatchedStreamMatchesGolden) {
  EXPECT_EQ(FillChecksum(GetParam().kind, FillKernel::kBatched),
            GetParam().checksum);
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, RrStreamGoldenTest,
    ::testing::Values(
        GoldenCase{GeneratorKind::kVanillaIc, 12126458736621571501ull},
        GoldenCase{GeneratorKind::kSubsimIc, 13173061486508634654ull},
        GoldenCase{GeneratorKind::kLt, 14175589049819948338ull}),
    [](const auto& info) {
      switch (info.param.kind) {
        case GeneratorKind::kVanillaIc:
          return "vanilla_ic";
        case GeneratorKind::kSubsimIc:
          return "subsim_ic";
        case GeneratorKind::kLt:
          return "lt";
      }
      return "unknown";
    });

}  // namespace
}  // namespace subsim
