#include "subsim/rrset/rr_collection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "subsim/coverage/max_coverage.h"
#include "subsim/random/rng.h"

namespace subsim {
namespace {

TEST(RrCollectionTest, StartsEmpty) {
  RrCollection collection(10);
  EXPECT_EQ(collection.num_sets(), 0u);
  EXPECT_EQ(collection.total_nodes(), 0u);
  EXPECT_DOUBLE_EQ(collection.average_size(), 0.0);
  EXPECT_EQ(collection.num_graph_nodes(), 10u);
}

TEST(RrCollectionTest, AddAndRetrieve) {
  RrCollection collection(5);
  const std::vector<NodeId> a = {0, 2, 4};
  const std::vector<NodeId> b = {1};
  EXPECT_EQ(collection.Add(a, false), 0u);
  EXPECT_EQ(collection.Add(b, true), 1u);

  EXPECT_EQ(collection.num_sets(), 2u);
  EXPECT_EQ(collection.total_nodes(), 4u);
  EXPECT_DOUBLE_EQ(collection.average_size(), 2.0);

  const auto set0 = collection.View(0).ToVector();
  ASSERT_EQ(set0.size(), 3u);
  EXPECT_EQ(set0[0], 0u);
  EXPECT_EQ(set0[2], 4u);
  EXPECT_FALSE(collection.HitSentinel(0));
  EXPECT_TRUE(collection.HitSentinel(1));
  EXPECT_EQ(collection.num_hit_sentinel(), 1u);
}

TEST(RrCollectionTest, InvertedIndexTracksMembership) {
  RrCollection collection(4);
  collection.Add(std::vector<NodeId>{0, 1}, false);
  collection.Add(std::vector<NodeId>{1, 2}, false);
  collection.Add(std::vector<NodeId>{1}, false);

  EXPECT_EQ(collection.SetsContaining(0).size(), 1u);
  EXPECT_EQ(collection.SetsContaining(1).size(), 3u);
  EXPECT_EQ(collection.SetsContaining(2).size(), 1u);
  EXPECT_EQ(collection.SetsContaining(3).size(), 0u);

  const auto containing1 = collection.SetsContaining(1);
  EXPECT_EQ(containing1[0], 0u);
  EXPECT_EQ(containing1[1], 1u);
  EXPECT_EQ(containing1[2], 2u);
}

TEST(RrCollectionTest, EmptySetAllowed) {
  RrCollection collection(3);
  collection.Add(std::vector<NodeId>{}, false);
  EXPECT_EQ(collection.num_sets(), 1u);
  EXPECT_EQ(collection.View(0).size(), 0u);
}

TEST(RrCollectionTest, ClearResetsEverything) {
  RrCollection collection(3);
  collection.Add(std::vector<NodeId>{0, 1}, true);
  collection.Clear();
  EXPECT_EQ(collection.num_sets(), 0u);
  EXPECT_EQ(collection.total_nodes(), 0u);
  EXPECT_EQ(collection.num_hit_sentinel(), 0u);
  EXPECT_EQ(collection.SetsContaining(0).size(), 0u);
  EXPECT_EQ(collection.num_graph_nodes(), 3u);

  collection.Add(std::vector<NodeId>{2}, false);
  EXPECT_EQ(collection.num_sets(), 1u);
  EXPECT_EQ(collection.SetsContaining(2).size(), 1u);
}

TEST(RrCollectionTest, ManySetsKeepOffsetsConsistent) {
  RrCollection collection(100);
  std::uint64_t expected_total = 0;
  for (NodeId i = 0; i < 100; ++i) {
    std::vector<NodeId> set;
    for (NodeId j = 0; j <= i % 5; ++j) {
      set.push_back((i + j) % 100);
    }
    collection.Add(set, i % 7 == 0);
    expected_total += set.size();
  }
  EXPECT_EQ(collection.num_sets(), 100u);
  EXPECT_EQ(collection.total_nodes(), expected_total);
  for (RrId id = 0; id < 100; ++id) {
    EXPECT_EQ(collection.View(id).size(), id % 5 + 1u);
  }
}

// ---- Prefix-view behavior under cache-style growth. ----

TEST(RrCollectionViewTest, ImplicitFullViewMatchesCollection) {
  RrCollection collection(6);
  collection.Add(std::vector<NodeId>{0, 3}, false);
  collection.Add(std::vector<NodeId>{3, 5}, true);

  const RrCollectionView view = collection;  // implicit, full length
  EXPECT_EQ(view.num_sets(), collection.num_sets());
  EXPECT_EQ(view.total_nodes(), collection.total_nodes());
  EXPECT_EQ(view.num_hit_sentinel(), collection.num_hit_sentinel());
  EXPECT_EQ(view.SetsContaining(3).size(), 2u);
}

TEST(RrCollectionViewTest, PrefixViewSurvivesGrowth) {
  // The serving cache hands out prefix views while other queries keep
  // appending; a view taken at length N must keep describing exactly the
  // first N sets no matter how much the parent grows (including across
  // arena/index reallocations).
  RrCollection collection(50);
  collection.Add(std::vector<NodeId>{1, 2}, false);
  collection.Add(std::vector<NodeId>{2, 3}, false);

  const RrCollectionView snapshot = collection.Prefix(2);
  EXPECT_EQ(snapshot.num_sets(), 2u);
  EXPECT_EQ(snapshot.total_nodes(), 4u);
  EXPECT_EQ(snapshot.SetsContaining(2).size(), 2u);

  // Grow far enough to force several reallocations.
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    std::vector<NodeId> set;
    const int size = 1 + static_cast<int>(rng.NextU64() % 4);
    for (int j = 0; j < size; ++j) {
      set.push_back(static_cast<NodeId>(rng.NextU64() % 50));
    }
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    collection.Add(set, false);
  }

  EXPECT_EQ(snapshot.num_sets(), 2u);
  EXPECT_EQ(snapshot.total_nodes(), 4u);
  ASSERT_EQ(snapshot.SetsContaining(2).size(), 2u);
  EXPECT_EQ(snapshot.SetsContaining(2)[0], 0u);
  EXPECT_EQ(snapshot.SetsContaining(2)[1], 1u);
  EXPECT_EQ(snapshot.View(0).size(), 2u);
  EXPECT_EQ(snapshot.View(1).ToVector()[1], 3u);
}

TEST(RrCollectionViewTest, InvertedIndexConsistentAfterLargeAppends) {
  // Every prefix length L must agree with a brute-force recount of the
  // first L sets — the lower_bound trim in SetsContaining has to cut the
  // parent's list exactly at ids < L.
  const NodeId n = 40;
  RrCollection collection(n);
  Rng rng(123);
  std::vector<std::vector<NodeId>> sets;
  for (int i = 0; i < 2000; ++i) {
    std::vector<NodeId> set;
    const int size = 1 + static_cast<int>(rng.NextU64() % 6);
    for (int j = 0; j < size; ++j) {
      set.push_back(static_cast<NodeId>(rng.NextU64() % n));
    }
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    collection.Add(set, false);
    sets.push_back(set);
  }
  for (const std::size_t prefix : {0u, 1u, 7u, 500u, 1999u, 2000u}) {
    const RrCollectionView view = collection.Prefix(prefix);
    std::vector<std::size_t> expected(n, 0);
    std::uint64_t expected_nodes = 0;
    for (std::size_t id = 0; id < prefix; ++id) {
      expected_nodes += sets[id].size();
      for (const NodeId v : sets[id]) {
        ++expected[v];
      }
    }
    EXPECT_EQ(view.total_nodes(), expected_nodes);
    for (NodeId v = 0; v < n; ++v) {
      const auto ids = view.SetsContaining(v);
      ASSERT_EQ(ids.size(), expected[v]) << "node " << v << " prefix "
                                         << prefix;
      for (const RrId id : ids) {
        EXPECT_LT(id, prefix);
      }
    }
  }
}

TEST(RrCollectionViewTest, HitSentinelPrefixCountsAreExact) {
  RrCollection collection(10);
  std::size_t hits = 0;
  std::vector<std::size_t> hits_at;  // hits among first i sets
  hits_at.push_back(0);
  for (int i = 0; i < 300; ++i) {
    const bool hit = i % 3 == 1;
    collection.Add(std::vector<NodeId>{static_cast<NodeId>(i % 10)}, hit);
    hits += hit ? 1 : 0;
    hits_at.push_back(hits);
  }
  for (std::size_t prefix = 0; prefix <= 300; prefix += 37) {
    EXPECT_EQ(collection.Prefix(prefix).num_hit_sentinel(), hits_at[prefix]);
  }
  EXPECT_EQ(collection.num_hit_sentinel(), hits_at[300]);
}

TEST(RrCollectionViewTest, GreedyExcludesSentinelHitSetsInEveryPrefix) {
  // The cache-soundness invariant: sentinel-truncated sets must never count
  // toward another query's coverage. The greedy's exclusion must hold on
  // prefix views exactly as on full collections.
  RrCollection collection(8);
  // Node 7 appears only in sentinel-hit sets; node 1 in plain ones.
  for (int i = 0; i < 20; ++i) {
    collection.Add(std::vector<NodeId>{7}, true);
    collection.Add(std::vector<NodeId>{1, static_cast<NodeId>(i % 5)},
                   false);
  }
  CoverageGreedyOptions options;
  options.k = 1;
  options.exclude_sentinel_hit_sets = true;
  for (const std::size_t prefix : {2u, 10u, 40u}) {
    const CoverageGreedyResult greedy =
        RunCoverageGreedy(collection.Prefix(prefix), options);
    ASSERT_EQ(greedy.seeds.size(), 1u);
    // If hit sets counted, node 7 (in half the sets) would win.
    EXPECT_EQ(greedy.seeds[0], 1u);
    EXPECT_EQ(greedy.considered_sets, prefix / 2);
  }
}

TEST(RrCollectionTest, ApproxMemoryBytesGrowsWithContent) {
  RrCollection collection(100);
  const std::uint64_t empty = collection.ApproxMemoryBytes();
  for (int i = 0; i < 1000; ++i) {
    collection.Add(std::vector<NodeId>{0, 1, 2, 3}, false);
  }
  EXPECT_GT(collection.ApproxMemoryBytes(), empty);
  collection.Clear();
  EXPECT_EQ(collection.num_sets(), 0u);
  EXPECT_EQ(collection.num_hit_sentinel(), 0u);
}

}  // namespace
}  // namespace subsim
