#include "subsim/rrset/rr_collection.h"

#include <gtest/gtest.h>

#include <vector>

namespace subsim {
namespace {

TEST(RrCollectionTest, StartsEmpty) {
  RrCollection collection(10);
  EXPECT_EQ(collection.num_sets(), 0u);
  EXPECT_EQ(collection.total_nodes(), 0u);
  EXPECT_DOUBLE_EQ(collection.average_size(), 0.0);
  EXPECT_EQ(collection.num_graph_nodes(), 10u);
}

TEST(RrCollectionTest, AddAndRetrieve) {
  RrCollection collection(5);
  const std::vector<NodeId> a = {0, 2, 4};
  const std::vector<NodeId> b = {1};
  EXPECT_EQ(collection.Add(a, false), 0u);
  EXPECT_EQ(collection.Add(b, true), 1u);

  EXPECT_EQ(collection.num_sets(), 2u);
  EXPECT_EQ(collection.total_nodes(), 4u);
  EXPECT_DOUBLE_EQ(collection.average_size(), 2.0);

  const auto set0 = collection.Set(0);
  ASSERT_EQ(set0.size(), 3u);
  EXPECT_EQ(set0[0], 0u);
  EXPECT_EQ(set0[2], 4u);
  EXPECT_FALSE(collection.HitSentinel(0));
  EXPECT_TRUE(collection.HitSentinel(1));
  EXPECT_EQ(collection.num_hit_sentinel(), 1u);
}

TEST(RrCollectionTest, InvertedIndexTracksMembership) {
  RrCollection collection(4);
  collection.Add(std::vector<NodeId>{0, 1}, false);
  collection.Add(std::vector<NodeId>{1, 2}, false);
  collection.Add(std::vector<NodeId>{1}, false);

  EXPECT_EQ(collection.SetsContaining(0).size(), 1u);
  EXPECT_EQ(collection.SetsContaining(1).size(), 3u);
  EXPECT_EQ(collection.SetsContaining(2).size(), 1u);
  EXPECT_EQ(collection.SetsContaining(3).size(), 0u);

  const auto containing1 = collection.SetsContaining(1);
  EXPECT_EQ(containing1[0], 0u);
  EXPECT_EQ(containing1[1], 1u);
  EXPECT_EQ(containing1[2], 2u);
}

TEST(RrCollectionTest, EmptySetAllowed) {
  RrCollection collection(3);
  collection.Add(std::vector<NodeId>{}, false);
  EXPECT_EQ(collection.num_sets(), 1u);
  EXPECT_EQ(collection.Set(0).size(), 0u);
}

TEST(RrCollectionTest, ClearResetsEverything) {
  RrCollection collection(3);
  collection.Add(std::vector<NodeId>{0, 1}, true);
  collection.Clear();
  EXPECT_EQ(collection.num_sets(), 0u);
  EXPECT_EQ(collection.total_nodes(), 0u);
  EXPECT_EQ(collection.num_hit_sentinel(), 0u);
  EXPECT_EQ(collection.SetsContaining(0).size(), 0u);
  EXPECT_EQ(collection.num_graph_nodes(), 3u);

  collection.Add(std::vector<NodeId>{2}, false);
  EXPECT_EQ(collection.num_sets(), 1u);
  EXPECT_EQ(collection.SetsContaining(2).size(), 1u);
}

TEST(RrCollectionTest, ManySetsKeepOffsetsConsistent) {
  RrCollection collection(100);
  std::uint64_t expected_total = 0;
  for (NodeId i = 0; i < 100; ++i) {
    std::vector<NodeId> set;
    for (NodeId j = 0; j <= i % 5; ++j) {
      set.push_back((i + j) % 100);
    }
    collection.Add(set, i % 7 == 0);
    expected_total += set.size();
  }
  EXPECT_EQ(collection.num_sets(), 100u);
  EXPECT_EQ(collection.total_nodes(), expected_total);
  for (RrId id = 0; id < 100; ++id) {
    EXPECT_EQ(collection.Set(id).size(), id % 5 + 1u);
  }
}

}  // namespace
}  // namespace subsim
