// Thread-invariance suite: the contract that `num_threads` is a pure
// execution knob. Every RR sample stream — and therefore every selected
// seed set — must be byte-identical for any thread count, including
// 0 (auto-detect). CI runs this binary under SUBSIM_TEST_THREADS=1 and
// =4 to pin the sweep on known counts; the env value is appended to the
// default {1, 2, 5, 0} sweep.
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "subsim/algo/registry.h"
#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"
#include "subsim/rrset/parallel_fill.h"

namespace subsim {
namespace {

Graph WcGraph() {
  Result<EdgeList> list = GenerateBarabasiAlbert(1200, 4, true, 7);
  EXPECT_TRUE(list.ok());
  EXPECT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

std::vector<unsigned> ThreadSweep() {
  std::vector<unsigned> sweep = {1, 2, 5, 0};
  if (const char* env = std::getenv("SUBSIM_TEST_THREADS")) {
    const int extra = std::atoi(env);
    if (extra > 0) {
      sweep.push_back(static_cast<unsigned>(extra));
    }
  }
  return sweep;
}

RrCollection FillWith(const Graph& graph, GeneratorKind kind,
                      unsigned num_threads,
                      std::span<const NodeId> sentinels = {}) {
  RrCollection collection(graph.num_nodes());
  RngStream rng = MakeRngStream(91, 1);
  FillRequest request;
  request.kind = kind;
  request.graph = &graph;
  request.rng = &rng;
  request.count = 3000;
  request.num_threads = num_threads;
  request.sentinels = sentinels;
  EXPECT_TRUE(FillCollection(request, &collection).ok());
  return collection;
}

void ExpectIdentical(const RrCollection& a, const RrCollection& b) {
  ASSERT_EQ(a.num_sets(), b.num_sets());
  ASSERT_EQ(a.total_nodes(), b.total_nodes());
  ASSERT_EQ(a.num_hit_sentinel(), b.num_hit_sentinel());
  for (RrId id = 0; id < a.num_sets(); ++id) {
    const auto sa = a.View(id).ToVector();
    const auto sb = b.View(id).ToVector();
    ASSERT_EQ(sa.size(), sb.size()) << "set " << id;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      ASSERT_EQ(sa[i], sb[i]) << "set " << id << " pos " << i;
    }
  }
}

const Graph& SharedGraph() {
  static const Graph* const kGraph = new Graph(WcGraph());
  return *kGraph;
}

class FillInvarianceTest : public ::testing::TestWithParam<GeneratorKind> {};

TEST_P(FillInvarianceTest, CollectionsIdenticalAcrossThreadCounts) {
  const Graph& graph = SharedGraph();
  const RrCollection reference = FillWith(graph, GetParam(), 1);
  for (unsigned threads : ThreadSweep()) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectIdentical(reference, FillWith(graph, GetParam(), threads));
  }
}

TEST_P(FillInvarianceTest, SentinelFillsIdenticalAcrossThreadCounts) {
  // The HIST sentinel phase fills with hit-and-stop truncation; the
  // truncated streams must be as invariant as the plain ones.
  const Graph& graph = SharedGraph();
  std::vector<NodeId> sentinels;
  for (NodeId v = 0; v < graph.num_nodes(); v += 11) {
    sentinels.push_back(v);
  }
  const RrCollection reference = FillWith(graph, GetParam(), 1, sentinels);
  EXPECT_GT(reference.num_hit_sentinel(), 0u);
  for (unsigned threads : ThreadSweep()) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectIdentical(reference, FillWith(graph, GetParam(), threads, sentinels));
  }
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, FillInvarianceTest,
                         ::testing::Values(GeneratorKind::kVanillaIc,
                                           GeneratorKind::kSubsimIc,
                                           GeneratorKind::kLt),
                         [](const auto& info) {
                           switch (info.param) {
                             case GeneratorKind::kVanillaIc:
                               return "vanilla_ic";
                             case GeneratorKind::kSubsimIc:
                               return "subsim_ic";
                             case GeneratorKind::kLt:
                               return "lt";
                           }
                           return "unknown";
                         });

class AlgorithmInvarianceTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(AlgorithmInvarianceTest, SelectedSeedsIdenticalAcrossThreadCounts) {
  const auto algorithm = MakeImAlgorithm(GetParam());
  ASSERT_TRUE(algorithm.ok());
  const Graph& graph = SharedGraph();

  ImOptions options;
  options.k = 8;
  options.epsilon = 0.3;
  options.rng_seed = 13;

  options.num_threads = 1;
  const Result<ImResult> reference = (*algorithm)->Run(graph, options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (unsigned threads : ThreadSweep()) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    options.num_threads = threads;
    const Result<ImResult> result = (*algorithm)->Run(graph, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(reference->seeds, result->seeds);
    EXPECT_EQ(reference->num_rr_sets, result->num_rr_sets);
    EXPECT_EQ(reference->total_rr_nodes, result->total_rr_nodes);
    EXPECT_DOUBLE_EQ(reference->estimated_spread, result->estimated_spread);
  }
}

INSTANTIATE_TEST_SUITE_P(AllRrAlgorithms, AlgorithmInvarianceTest,
                         ::testing::Values("imm", "tim+", "opim-c", "ssa",
                                           "hist"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace subsim
