// Stress test for ParallelFill aimed at ThreadSanitizer builds
// (-DSUBSIM_SANITIZE=thread): it sweeps thread counts, runs several fills
// concurrently against one shared graph, and checks that the RNG-fork
// scheme keeps results bit-identical regardless of scheduling.
#include "subsim/rrset/parallel_fill.h"

#include <gtest/gtest.h>

#include <algorithm>
// SUBSIM-NOLINT-NEXTLINE(raw-thread): stress test races ParallelFill on purpose
#include <thread>
#include <vector>

#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"

namespace subsim {
namespace {

Graph StressGraph() {
  Result<EdgeList> list = GenerateBarabasiAlbert(2000, 5, true, 17);
  EXPECT_TRUE(list.ok());
  EXPECT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

std::vector<unsigned> ThreadCounts() {
  // SUBSIM-NOLINT-NEXTLINE(raw-thread): probing core count, not spawning
  unsigned hardware = std::thread::hardware_concurrency();
  if (hardware == 0) {
    hardware = 2;
  }
  return {1u, 2u, hardware};
}

RrCollection Fill(const Graph& graph, GeneratorKind kind, std::uint64_t seed,
                  unsigned threads, std::size_t count) {
  RrCollection collection(graph.num_nodes());
  Rng rng(seed);
  ParallelFillOptions options;
  options.num_threads = threads;
  EXPECT_TRUE(
      ParallelFill(kind, graph, rng, count, options, &collection).ok());
  return collection;
}

void ExpectIdentical(const RrCollection& a, const RrCollection& b) {
  ASSERT_EQ(a.num_sets(), b.num_sets());
  ASSERT_EQ(a.total_nodes(), b.total_nodes());
  for (RrId id = 0; id < a.num_sets(); ++id) {
    const auto sa = a.Set(id);
    const auto sb = b.Set(id);
    ASSERT_EQ(sa.size(), sb.size()) << "set " << id;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      ASSERT_EQ(sa[i], sb[i]) << "set " << id << " pos " << i;
    }
  }
}

TEST(ParallelFillStressTest, SizesHoldAcrossThreadCounts) {
  const Graph graph = StressGraph();
  const std::size_t count = 1500;
  for (unsigned threads : ThreadCounts()) {
    for (GeneratorKind kind :
         {GeneratorKind::kVanillaIc, GeneratorKind::kSubsimIc}) {
      const RrCollection c = Fill(graph, kind, 23, threads, count);
      EXPECT_EQ(c.num_sets(), count)
          << "threads=" << threads << " kind=" << static_cast<int>(kind);
      EXPECT_GE(c.total_nodes(), count);  // every set contains its root
    }
  }
}

TEST(ParallelFillStressTest, ForkDeterminismPerThreadCount) {
  // Same seed + same thread count must be bit-identical run to run: each
  // worker draws from Fork(0x9E3779B9 + t), never from a shared stream.
  const Graph graph = StressGraph();
  for (unsigned threads : ThreadCounts()) {
    const RrCollection a =
        Fill(graph, GeneratorKind::kSubsimIc, 31, threads, 1200);
    const RrCollection b =
        Fill(graph, GeneratorKind::kSubsimIc, 31, threads, 1200);
    ExpectIdentical(a, b);
  }
}

TEST(ParallelFillStressTest, DistinctSeedsDiverge) {
  const Graph graph = StressGraph();
  const RrCollection a = Fill(graph, GeneratorKind::kSubsimIc, 41, 2, 1200);
  const RrCollection b = Fill(graph, GeneratorKind::kSubsimIc, 42, 2, 1200);
  ASSERT_EQ(a.num_sets(), b.num_sets());
  std::size_t differing = 0;
  for (RrId id = 0; id < a.num_sets(); ++id) {
    const auto sa = a.Set(id);
    const auto sb = b.Set(id);
    if (sa.size() != sb.size() ||
        !std::equal(sa.begin(), sa.end(), sb.begin())) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0u);
}

TEST(ParallelFillStressTest, ConcurrentFillsShareGraphSafely) {
  // Several ParallelFill invocations race on one shared (read-only) graph.
  // Under TSan this exercises graph reads, generator construction, and the
  // RNG forks from every worker thread at once; determinism must survive.
  const Graph graph = StressGraph();
  const std::size_t count = 800;
  const unsigned kConcurrentFills = 4;

  std::vector<RrCollection> results;
  results.reserve(kConcurrentFills);
  for (unsigned i = 0; i < kConcurrentFills; ++i) {
    results.emplace_back(graph.num_nodes());
  }
  {
    // SUBSIM-NOLINT-NEXTLINE(raw-thread): races whole ParallelFill calls
    std::vector<std::thread> fills;
    fills.reserve(kConcurrentFills);
    for (unsigned i = 0; i < kConcurrentFills; ++i) {
      fills.emplace_back([&graph, &results, count, i] {
        Rng rng(100 + i);
        ParallelFillOptions options;
        options.num_threads = 2;
        const Status status =
            ParallelFill(GeneratorKind::kSubsimIc, graph, rng, count,
                         options, &results[i]);
        EXPECT_TRUE(status.ok()) << status.ToString();
      });
    }
    // SUBSIM-NOLINT-NEXTLINE(raw-thread): joining the racing fills
    for (std::thread& t : fills) {
      t.join();
    }
  }
  for (unsigned i = 0; i < kConcurrentFills; ++i) {
    ASSERT_EQ(results[i].num_sets(), count) << "fill " << i;
    // Each concurrent result must equal the same fill run in isolation.
    const RrCollection isolated =
        Fill(graph, GeneratorKind::kSubsimIc, 100 + i, 2, count);
    ExpectIdentical(results[i], isolated);
  }
}

TEST(ParallelFillStressTest, SentinelHitsStableUnderThreads) {
  const Graph graph = StressGraph();
  ParallelFillOptions base;
  for (NodeId v = 0; v < 50; ++v) {
    base.sentinels.push_back(v);
  }
  std::vector<std::size_t> hits;
  for (unsigned threads : ThreadCounts()) {
    RrCollection collection(graph.num_nodes());
    Rng rng(55);
    ParallelFillOptions options = base;
    options.num_threads = threads;
    ASSERT_TRUE(ParallelFill(GeneratorKind::kSubsimIc, graph, rng, 1000,
                             options, &collection)
                    .ok());
    hits.push_back(collection.num_hit_sentinel());
  }
  // Thread count only changes work partitioning, not the per-worker RNG
  // streams, so sentinel-hit counts agree wherever partitions align.
  for (std::size_t h : hits) {
    EXPECT_GT(h, 0u);
    EXPECT_LE(h, 1000u);
  }
}

}  // namespace
}  // namespace subsim
