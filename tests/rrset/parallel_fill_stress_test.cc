// Stress test for the chunked FillCollection scheduler aimed at
// ThreadSanitizer builds (-DSUBSIM_SANITIZE=thread): it sweeps thread
// counts, races several fills against one shared graph, and checks that
// the counter-based substreams keep every thread count byte-identical.
#include "subsim/rrset/parallel_fill.h"

#include <gtest/gtest.h>

#include <algorithm>
// SUBSIM-NOLINT-NEXTLINE(raw-thread): stress test races FillCollection on purpose
#include <thread>
#include <vector>

#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"

namespace subsim {
namespace {

Graph StressGraph() {
  Result<EdgeList> list = GenerateBarabasiAlbert(2000, 5, true, 17);
  EXPECT_TRUE(list.ok());
  EXPECT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

std::vector<unsigned> ThreadCounts() {
  // SUBSIM-NOLINT-NEXTLINE(raw-thread): probing core count, not spawning
  unsigned hardware = std::thread::hardware_concurrency();
  if (hardware == 0) {
    hardware = 2;
  }
  return {1u, 2u, hardware, 0u};  // 0 = auto-detect, same stream contract
}

RrCollection Fill(const Graph& graph, GeneratorKind kind, std::uint64_t seed,
                  unsigned threads, std::size_t count,
                  std::span<const NodeId> sentinels = {}) {
  RrCollection collection(graph.num_nodes());
  RngStream rng = MakeRngStream(seed, 1);
  FillRequest request;
  request.kind = kind;
  request.graph = &graph;
  request.rng = &rng;
  request.count = count;
  request.num_threads = threads;
  request.sentinels = sentinels;
  EXPECT_TRUE(FillCollection(request, &collection).ok());
  EXPECT_EQ(rng.next_index, count);
  return collection;
}

void ExpectIdentical(const RrCollection& a, const RrCollection& b) {
  ASSERT_EQ(a.num_sets(), b.num_sets());
  ASSERT_EQ(a.total_nodes(), b.total_nodes());
  ASSERT_EQ(a.num_hit_sentinel(), b.num_hit_sentinel());
  for (RrId id = 0; id < a.num_sets(); ++id) {
    const auto sa = a.View(id).ToVector();
    const auto sb = b.View(id).ToVector();
    ASSERT_EQ(sa.size(), sb.size()) << "set " << id;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      ASSERT_EQ(sa[i], sb[i]) << "set " << id << " pos " << i;
    }
  }
}

TEST(ParallelFillStressTest, ByteIdenticalAcrossThreadCounts) {
  // The headline contract: each RR set is a pure function of
  // (base_seed, set_index), so the thread count cannot leak into results.
  const Graph graph = StressGraph();
  for (GeneratorKind kind :
       {GeneratorKind::kVanillaIc, GeneratorKind::kSubsimIc}) {
    const RrCollection reference = Fill(graph, kind, 23, 1, 1500);
    EXPECT_EQ(reference.num_sets(), 1500u);
    EXPECT_GE(reference.total_nodes(), 1500u);  // every set has its root
    for (unsigned threads : ThreadCounts()) {
      SCOPED_TRACE(threads);
      ExpectIdentical(reference, Fill(graph, kind, 23, threads, 1500));
    }
  }
}

TEST(ParallelFillStressTest, DistinctSeedsDiverge) {
  const Graph graph = StressGraph();
  const RrCollection a = Fill(graph, GeneratorKind::kSubsimIc, 41, 2, 1200);
  const RrCollection b = Fill(graph, GeneratorKind::kSubsimIc, 42, 2, 1200);
  ASSERT_EQ(a.num_sets(), b.num_sets());
  std::size_t differing = 0;
  for (RrId id = 0; id < a.num_sets(); ++id) {
    const auto sa = a.View(id).ToVector();
    const auto sb = b.View(id).ToVector();
    if (sa.size() != sb.size() ||
        !std::equal(sa.begin(), sa.end(), sb.begin())) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0u);
}

TEST(ParallelFillStressTest, ConcurrentFillsShareGraphSafely) {
  // Several FillCollection invocations race on one shared (read-only)
  // graph. Under TSan this exercises graph reads, generator construction,
  // chunk claiming, and the substream derivation from every worker thread
  // at once; determinism must survive.
  const Graph graph = StressGraph();
  const std::size_t count = 800;
  const unsigned kConcurrentFills = 4;

  std::vector<RrCollection> results;
  results.reserve(kConcurrentFills);
  for (unsigned i = 0; i < kConcurrentFills; ++i) {
    results.emplace_back(graph.num_nodes());
  }
  {
    // SUBSIM-NOLINT-NEXTLINE(raw-thread): races whole FillCollection calls
    std::vector<std::thread> fills;
    fills.reserve(kConcurrentFills);
    for (unsigned i = 0; i < kConcurrentFills; ++i) {
      fills.emplace_back([&graph, &results, count, i] {
        RngStream rng = MakeRngStream(100 + i, 1);
        FillRequest request;
        request.kind = GeneratorKind::kSubsimIc;
        request.graph = &graph;
        request.rng = &rng;
        request.count = count;
        request.num_threads = 2;
        const Status status = FillCollection(request, &results[i]);
        EXPECT_TRUE(status.ok()) << status.ToString();
      });
    }
    // SUBSIM-NOLINT-NEXTLINE(raw-thread): joining the racing fills
    for (std::thread& t : fills) {
      t.join();
    }
  }
  for (unsigned i = 0; i < kConcurrentFills; ++i) {
    ASSERT_EQ(results[i].num_sets(), count) << "fill " << i;
    // Each concurrent result must equal the same fill run in isolation.
    const RrCollection isolated =
        Fill(graph, GeneratorKind::kSubsimIc, 100 + i, 2, count);
    ExpectIdentical(results[i], isolated);
  }
}

TEST(ParallelFillStressTest, SentinelHitsIdenticalAcrossThreadCounts) {
  // Sentinel truncation interacts with the scheduler (hit sets are short,
  // so chunks finish at very different speeds); the streams must still be
  // exactly invariant, not merely statistically close.
  const Graph graph = StressGraph();
  std::vector<NodeId> sentinels;
  for (NodeId v = 0; v < 50; ++v) {
    sentinels.push_back(v);
  }
  const RrCollection reference =
      Fill(graph, GeneratorKind::kSubsimIc, 55, 1, 1000, sentinels);
  EXPECT_GT(reference.num_hit_sentinel(), 0u);
  EXPECT_LE(reference.num_hit_sentinel(), 1000u);
  for (unsigned threads : ThreadCounts()) {
    SCOPED_TRACE(threads);
    ExpectIdentical(reference, Fill(graph, GeneratorKind::kSubsimIc, 55,
                                    threads, 1000, sentinels));
  }
}

TEST(ParallelFillStressTest, ConcurrentBatchedFillsMatchScalarReference) {
  // The batched kernel keeps mutable per-kernel state (epoch stamps, lane
  // scratch, chunk arena); every worker owns a private kernel, so racing
  // whole batched fills — each itself multi-threaded — on one shared graph
  // must be data-race-free under TSan and byte-identical to the scalar
  // reference computed in isolation.
  const Graph graph = StressGraph();
  const std::size_t count = 700;
  const GeneratorKind kinds[] = {GeneratorKind::kVanillaIc,
                                 GeneratorKind::kSubsimIc, GeneratorKind::kLt,
                                 GeneratorKind::kVanillaIc};
  const unsigned kConcurrentFills = 4;

  std::vector<RrCollection> results;
  results.reserve(kConcurrentFills);
  for (unsigned i = 0; i < kConcurrentFills; ++i) {
    results.emplace_back(graph.num_nodes());
  }
  {
    // SUBSIM-NOLINT-NEXTLINE(raw-thread): races whole batched fills
    std::vector<std::thread> fills;
    fills.reserve(kConcurrentFills);
    for (unsigned i = 0; i < kConcurrentFills; ++i) {
      fills.emplace_back([&graph, &results, &kinds, count, i] {
        RngStream rng = MakeRngStream(200 + i, 1);
        FillRequest request;
        request.kind = kinds[i];
        request.graph = &graph;
        request.rng = &rng;
        request.count = count;
        request.num_threads = 3;
        request.kernel = FillKernel::kBatched;
        const Status status = FillCollection(request, &results[i]);
        EXPECT_TRUE(status.ok()) << status.ToString();
      });
    }
    // SUBSIM-NOLINT-NEXTLINE(raw-thread): joining the racing fills
    for (std::thread& t : fills) {
      t.join();
    }
  }
  for (unsigned i = 0; i < kConcurrentFills; ++i) {
    ASSERT_EQ(results[i].num_sets(), count) << "fill " << i;
    RrCollection isolated(graph.num_nodes());
    RngStream rng = MakeRngStream(200 + i, 1);
    FillRequest request;
    request.kind = kinds[i];
    request.graph = &graph;
    request.rng = &rng;
    request.count = count;
    request.num_threads = 1;
    request.kernel = FillKernel::kScalar;
    ASSERT_TRUE(FillCollection(request, &isolated).ok());
    ExpectIdentical(results[i], isolated);
  }
}

TEST(ParallelFillStressTest, ManySmallFillsKeepCursorConsistent) {
  // Hammer the scheduler with fills smaller than, equal to, and barely
  // above one chunk; the concatenation must equal one big fill.
  const Graph graph = StressGraph();
  const std::size_t pieces[] = {1, 63, 64, 65, 7, 128, 300, 62, 2, 318};
  RrCollection split(graph.num_nodes());
  RngStream rng = MakeRngStream(77, 1);
  std::size_t total = 0;
  for (std::size_t piece : pieces) {
    FillRequest request;
    request.kind = GeneratorKind::kSubsimIc;
    request.graph = &graph;
    request.rng = &rng;
    request.count = piece;
    request.num_threads = 4;
    ASSERT_TRUE(FillCollection(request, &split).ok());
    total += piece;
    ASSERT_EQ(rng.next_index, total);
  }
  ExpectIdentical(split, Fill(graph, GeneratorKind::kSubsimIc, 77, 2, total));
}

}  // namespace
}  // namespace subsim
