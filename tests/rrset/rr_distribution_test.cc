// Distributional correctness of RR-set generation — the properties the
// whole RIS framework rests on:
//  * Lemma 1: Pr[u in random RR set] = I({u}) / n, checked against exact
//    influence probabilities from live-edge enumeration;
//  * the SUBSIM generator (all strategies) produces the same distribution
//    as the vanilla generator;
//  * LT RR sets realize the LT live-edge distribution.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "subsim/eval/exact_spread.h"
#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"
#include "subsim/rrset/lt_generator.h"
#include "subsim/rrset/subsim_ic_generator.h"
#include "subsim/rrset/vanilla_ic_generator.h"

namespace subsim {
namespace {

/// Per-node empirical membership frequency over `trials` RR sets.
std::vector<double> MembershipFrequencies(RrGenerator& generator, NodeId n,
                                          int trials, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> out;
  std::vector<int> counts(n, 0);
  for (int t = 0; t < trials; ++t) {
    generator.Generate(rng, &out);
    for (NodeId v : out) {
      ++counts[v];
    }
  }
  std::vector<double> freq(n);
  for (NodeId v = 0; v < n; ++v) {
    freq[v] = static_cast<double>(counts[v]) / trials;
  }
  return freq;
}

/// Exact Pr[u in random RR set] = (1/n) sum_v Pr[u -> v] under IC.
std::vector<double> ExactMembershipProbabilities(const Graph& graph) {
  const NodeId n = graph.num_nodes();
  std::vector<double> probs(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    double sum = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      const Result<double> p = ExactInfluenceProbabilityIc(graph, u, v);
      EXPECT_TRUE(p.ok());
      sum += *p;
    }
    probs[u] = sum / n;
  }
  return probs;
}

void ExpectFrequenciesMatch(const std::vector<double>& freq,
                            const std::vector<double>& expected, int trials,
                            const std::string& label) {
  ASSERT_EQ(freq.size(), expected.size());
  for (std::size_t v = 0; v < freq.size(); ++v) {
    const double p = expected[v];
    const double sigma = std::sqrt(p * (1.0 - p) / trials);
    EXPECT_NEAR(freq[v], p, 5.0 * sigma + 2.0 / trials)
        << label << " node " << v;
  }
}

Graph SmallSkewedGraph(bool sorted_in_edges) {
  // 6 nodes, 10 edges, assorted weights exercising every sampling plan:
  // uniform rows, skewed rows, a weight-1 edge and a weight-0 edge.
  EdgeList list;
  list.num_nodes = 6;
  list.edges = {{0, 1, 0.8}, {2, 1, 0.8},  {1, 2, 0.5},  {3, 2, 0.2},
                {4, 2, 0.1}, {2, 3, 1.0},  {4, 3, 0.35}, {5, 4, 0.6},
                {0, 5, 0.0}, {3, 5, 0.45}};
  GraphBuildOptions options;
  options.sort_in_edges_by_weight = sorted_in_edges;
  Result<Graph> graph = BuildGraph(std::move(list), options);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

constexpr int kTrials = 300000;

TEST(RrDistributionTest, VanillaMatchesExactInfluence) {
  const Graph graph = SmallSkewedGraph(false);
  VanillaIcGenerator generator(graph);
  const auto freq =
      MembershipFrequencies(generator, graph.num_nodes(), kTrials, 1);
  ExpectFrequenciesMatch(freq, ExactMembershipProbabilities(graph), kTrials,
                         "vanilla");
}

TEST(RrDistributionTest, SubsimBucketMatchesExactInfluence) {
  const Graph graph = SmallSkewedGraph(false);
  SubsimIcGenerator generator(graph, GeneralIcStrategy::kBucketIndexed,
                              /*naive_fallback_degree=*/0);
  const auto freq =
      MembershipFrequencies(generator, graph.num_nodes(), kTrials, 2);
  ExpectFrequenciesMatch(freq, ExactMembershipProbabilities(graph), kTrials,
                         "subsim-bucket");
}

TEST(RrDistributionTest, SubsimSortedMatchesExactInfluence) {
  const Graph graph = SmallSkewedGraph(true);
  SubsimIcGenerator generator(graph, GeneralIcStrategy::kSortedIndexFree,
                              /*naive_fallback_degree=*/0);
  const auto freq =
      MembershipFrequencies(generator, graph.num_nodes(), kTrials, 3);
  ExpectFrequenciesMatch(freq, ExactMembershipProbabilities(graph), kTrials,
                         "subsim-sorted");
}

TEST(RrDistributionTest, UniformWcFastPathMatchesExactInfluence) {
  // WC weights make every in-list uniform, driving the geometric-skip plan.
  EdgeList list = MakeCycle(5);
  for (Edge& e : list.edges) {
    e.weight = 0.0;
  }
  list.edges.push_back(Edge{0, 2, 0.0});
  list.edges.push_back(Edge{3, 1, 0.0});
  ASSERT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list).ok());
  Result<Graph> graph = BuildGraph(std::move(list));
  ASSERT_TRUE(graph.ok());

  SubsimIcGenerator subsim(*graph, GeneralIcStrategy::kAuto,
                           /*naive_fallback_degree=*/0);
  const auto freq =
      MembershipFrequencies(subsim, graph->num_nodes(), kTrials, 4);
  ExpectFrequenciesMatch(freq, ExactMembershipProbabilities(*graph), kTrials,
                         "subsim-wc");
}

TEST(RrDistributionTest, VanillaAndSubsimAgreeOnLargerGraph) {
  // Too large for exact enumeration: compare the two generators against
  // each other instead.
  Result<EdgeList> list = GenerateErdosRenyi(60, 400, 5);
  ASSERT_TRUE(list.ok());
  WeightModelParams params;
  params.seed = 5;
  ASSERT_TRUE(
      AssignWeights(WeightModel::kExponential, params, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  ASSERT_TRUE(graph.ok());

  VanillaIcGenerator vanilla(*graph);
  SubsimIcGenerator subsim(*graph, GeneralIcStrategy::kBucketIndexed,
                           /*naive_fallback_degree=*/0);
  const int trials = 200000;
  const auto freq_vanilla =
      MembershipFrequencies(vanilla, graph->num_nodes(), trials, 6);
  const auto freq_subsim =
      MembershipFrequencies(subsim, graph->num_nodes(), trials, 7);
  for (NodeId v = 0; v < graph->num_nodes(); ++v) {
    const double p = 0.5 * (freq_vanilla[v] + freq_subsim[v]);
    const double sigma = std::sqrt(2.0 * p * (1.0 - p) / trials);
    EXPECT_NEAR(freq_vanilla[v], freq_subsim[v], 5.0 * sigma + 3.0 / trials)
        << "node " << v;
  }
}

TEST(RrDistributionTest, LtPathMatchesHandComputedProbabilities) {
  // Path 0 -> 1 -> 2 with weight 0.6 on each edge. Under LT's live-edge
  // view each node keeps its single in-edge with probability 0.6, so
  //   Pr[0 in RR] = (1 + 0.6 + 0.36) / 3,
  //   Pr[1 in RR] = (0 + 1 + 0.6) / 3,
  //   Pr[2 in RR] = 1/3.
  EdgeList list = MakePath(3);
  for (Edge& e : list.edges) {
    e.weight = 0.6;
  }
  Result<Graph> graph = BuildGraph(std::move(list));
  ASSERT_TRUE(graph.ok());
  auto generator = LtGenerator::Create(*graph);
  ASSERT_TRUE(generator.ok());

  const auto freq = MembershipFrequencies(**generator, 3, kTrials, 8);
  const std::vector<double> expected = {(1.0 + 0.6 + 0.36) / 3.0,
                                        (1.0 + 0.6) / 3.0, 1.0 / 3.0};
  ExpectFrequenciesMatch(freq, expected, kTrials, "lt-path");
}

TEST(RrDistributionTest, LtStarWithSkewedWeightsUsesAliasPath) {
  // Node 3 has in-neighbors {0, 1, 2} with weights {0.5, 0.3, 0.1}; under
  // LT the live in-edge of 3 is u with probability w_u (no edge: 0.1).
  // Pr[u in RR] = (Pr[u in RR(u)] + Pr[u in RR(3)]) / 4 = (1 + w_u) / 4.
  EdgeList list;
  list.num_nodes = 4;
  list.edges = {{0, 3, 0.5}, {1, 3, 0.3}, {2, 3, 0.1}};
  Result<Graph> graph = BuildGraph(std::move(list));
  ASSERT_TRUE(graph.ok());
  auto generator = LtGenerator::Create(*graph);
  ASSERT_TRUE(generator.ok());

  const auto freq = MembershipFrequencies(**generator, 4, kTrials, 9);
  const std::vector<double> expected = {1.5 / 4.0, 1.3 / 4.0, 1.1 / 4.0,
                                        1.0 / 4.0};
  ExpectFrequenciesMatch(freq, expected, kTrials, "lt-star");
}

}  // namespace
}  // namespace subsim
