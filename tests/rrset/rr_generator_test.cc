#include "subsim/rrset/rr_generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"
#include "subsim/rrset/generator_factory.h"
#include "subsim/rrset/lt_generator.h"
#include "subsim/rrset/subsim_ic_generator.h"
#include "subsim/rrset/vanilla_ic_generator.h"

namespace subsim {
namespace {

Graph WeightedGraph(EdgeList list, WeightModel model,
                    WeightModelParams params = {},
                    bool sort_in_edges = false) {
  EXPECT_TRUE(AssignWeights(model, params, &list).ok());
  GraphBuildOptions options;
  options.sort_in_edges_by_weight = sort_in_edges;
  Result<Graph> graph = BuildGraph(std::move(list), options);
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

Graph TestWcGraph() {
  Result<EdgeList> list = GenerateErdosRenyi(200, 1500, 42);
  EXPECT_TRUE(list.ok());
  return WeightedGraph(std::move(list).value(),
                       WeightModel::kWeightedCascade);
}

template <typename Generator>
void ExpectBasicInvariants(Generator& generator, const Graph& graph,
                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> out;
  for (int i = 0; i < 200; ++i) {
    const bool hit = generator.Generate(rng, &out);
    EXPECT_FALSE(hit);  // no sentinels installed
    ASSERT_GE(out.size(), 1u);
    // Root plus unique members, all in range.
    std::set<NodeId> unique(out.begin(), out.end());
    EXPECT_EQ(unique.size(), out.size());
    for (NodeId v : out) {
      EXPECT_LT(v, graph.num_nodes());
    }
  }
  EXPECT_EQ(generator.stats().sets_generated, 200u);
  EXPECT_GE(generator.stats().nodes_added, 200u);
  EXPECT_EQ(generator.stats().sentinel_hits, 0u);
}

TEST(VanillaIcGeneratorTest, BasicInvariants) {
  const Graph graph = TestWcGraph();
  VanillaIcGenerator generator(graph);
  ExpectBasicInvariants(generator, graph, 1);
}

TEST(SubsimIcGeneratorTest, BasicInvariants) {
  const Graph graph = TestWcGraph();
  SubsimIcGenerator generator(graph);
  ExpectBasicInvariants(generator, graph, 2);
}

TEST(LtGeneratorTest, BasicInvariants) {
  const Graph graph = TestWcGraph();  // WC weights sum to exactly 1 per node
  auto generator = LtGenerator::Create(graph);
  ASSERT_TRUE(generator.ok());
  ExpectBasicInvariants(**generator, graph, 3);
}

TEST(LtGeneratorTest, RejectsOverweightedGraph) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 2, 0.8);
  builder.AddEdge(1, 2, 0.8);  // sums to 1.6 > 1
  Result<Graph> graph = std::move(builder).Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_FALSE(LtGenerator::Create(*graph).ok());
}

TEST(LtGeneratorTest, RrSetsArePathsToRoot) {
  // Under LT each node keeps at most one live in-edge, so a reverse
  // traversal can never branch: set size == path length.
  const Graph graph = TestWcGraph();
  auto generator = LtGenerator::Create(graph);
  ASSERT_TRUE(generator.ok());
  Rng rng(4);
  std::vector<NodeId> out;
  for (int i = 0; i < 100; ++i) {
    (*generator)->Generate(rng, &out);
    // No duplicates (checked indirectly: set of members matches size).
    std::set<NodeId> unique(out.begin(), out.end());
    EXPECT_EQ(unique.size(), out.size());
  }
}

TEST(GeneratorTest, ZeroWeightGraphYieldsSingletons) {
  EdgeList list = MakeComplete(10);  // weights default to 0
  Result<Graph> graph = BuildGraph(std::move(list));
  ASSERT_TRUE(graph.ok());
  SubsimIcGenerator subsim(*graph);
  VanillaIcGenerator vanilla(*graph);
  Rng rng(5);
  std::vector<NodeId> out;
  for (int i = 0; i < 50; ++i) {
    subsim.Generate(rng, &out);
    EXPECT_EQ(out.size(), 1u);
    vanilla.Generate(rng, &out);
    EXPECT_EQ(out.size(), 1u);
  }
}

TEST(GeneratorTest, FullWeightPathReachesEverythingUpstream) {
  // Path 0->1->2->3 with weight 1: RR set of root r is {0..r}.
  EdgeList list = MakePath(4);
  for (Edge& e : list.edges) {
    e.weight = 1.0;
  }
  Result<Graph> graph = BuildGraph(std::move(list));
  ASSERT_TRUE(graph.ok());
  SubsimIcGenerator generator(*graph);
  Rng rng(6);
  std::vector<NodeId> out;
  for (int i = 0; i < 100; ++i) {
    generator.Generate(rng, &out);
    const NodeId root = out[0];
    EXPECT_EQ(out.size(), root + 1u);
    std::set<NodeId> unique(out.begin(), out.end());
    for (NodeId v = 0; v <= root; ++v) {
      EXPECT_TRUE(unique.count(v));
    }
  }
}

TEST(SentinelTest, RootInSentinelSetStopsImmediately) {
  const Graph graph = TestWcGraph();
  SubsimIcGenerator generator(graph);
  std::vector<NodeId> sentinels;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    sentinels.push_back(v);  // every node is a sentinel
  }
  generator.SetSentinels(sentinels);
  Rng rng(7);
  std::vector<NodeId> out;
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(generator.Generate(rng, &out));
    EXPECT_EQ(out.size(), 1u);
  }
  EXPECT_EQ(generator.stats().sentinel_hits, 50u);
}

TEST(SentinelTest, HitSetsContainTheSentinel) {
  const Graph graph = TestWcGraph();
  for (GeneratorKind kind : {GeneratorKind::kVanillaIc,
                             GeneratorKind::kSubsimIc, GeneratorKind::kLt}) {
    auto generator = MakeRrGenerator(kind, graph);
    ASSERT_TRUE(generator.ok());
    const std::vector<NodeId> sentinels = {3, 77, 123};
    (*generator)->SetSentinels(sentinels);
    Rng rng(8);
    std::vector<NodeId> out;
    int hits = 0;
    for (int i = 0; i < 500; ++i) {
      const bool hit = (*generator)->Generate(rng, &out);
      const bool contains_sentinel =
          std::any_of(out.begin(), out.end(), [&](NodeId v) {
            return v == 3 || v == 77 || v == 123;
          });
      EXPECT_EQ(hit, contains_sentinel)
          << GeneratorKindName(kind) << " set " << i;
      hits += hit ? 1 : 0;
    }
    EXPECT_GT(hits, 0) << GeneratorKindName(kind);
  }
}

TEST(SentinelTest, ClearingSentinelsRestoresFullGeneration) {
  const Graph graph = TestWcGraph();
  SubsimIcGenerator generator(graph);
  generator.SetSentinels(std::vector<NodeId>{0, 1, 2});
  Rng rng(9);
  std::vector<NodeId> out;
  generator.Generate(rng, &out);
  generator.SetSentinels({});
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(generator.Generate(rng, &out));
  }
}

TEST(SentinelTest, SentinelsShrinkAverageSetSize) {
  // High-influence setting: sentinel truncation must visibly shrink sets.
  // Undirected attachment so the accumulated-degree hubs are reachable in
  // the reverse direction too (a directed-BA hub has huge in-degree but
  // tiny out-degree and would almost never appear in an RR set).
  Result<EdgeList> list = GenerateBarabasiAlbert(2000, 3, true, 10);
  ASSERT_TRUE(list.ok());
  WeightModelParams params;
  params.wc_variant_theta = 3.0;
  const Graph graph = WeightedGraph(std::move(list).value(),
                                    WeightModel::kWcVariant, params);

  SubsimIcGenerator generator(graph);
  Rng rng(11);
  std::vector<NodeId> out;

  auto average_size = [&](int count) {
    std::uint64_t total = 0;
    for (int i = 0; i < count; ++i) {
      generator.Generate(rng, &out);
      total += out.size();
    }
    return static_cast<double>(total) / count;
  };

  const double plain_avg = average_size(600);
  // Sentinels: the seed-clique hubs (high degree, likely hit).
  generator.SetSentinels(std::vector<NodeId>{0, 1, 2, 3});
  const double sentinel_avg = average_size(600);
  EXPECT_LT(sentinel_avg, plain_avg * 0.7)
      << "plain=" << plain_avg << " sentinel=" << sentinel_avg;
}

TEST(GeneratorStatsTest, EdgesExaminedTracksWork) {
  const Graph graph = TestWcGraph();
  VanillaIcGenerator vanilla(graph);
  // Disable the small-degree fallback: this test measures the skip
  // kernels' examination savings on a low-degree graph.
  SubsimIcGenerator subsim(graph, GeneralIcStrategy::kAuto,
                           /*naive_fallback_degree=*/0);
  Rng rng1(12);
  Rng rng2(12);
  std::vector<NodeId> out;
  for (int i = 0; i < 500; ++i) {
    vanilla.Generate(rng1, &out);
    subsim.Generate(rng2, &out);
  }
  // SUBSIM examines only sampled landings; vanilla examines every in-edge
  // of every activated node. Under WC the gap is roughly the average
  // degree.
  EXPECT_LT(subsim.stats().edges_examined,
            vanilla.stats().edges_examined / 2);
  vanilla.ResetStats();
  EXPECT_EQ(vanilla.stats().sets_generated, 0u);
}

TEST(GeneratorFactoryTest, ParseRoundTrip) {
  for (GeneratorKind kind : {GeneratorKind::kVanillaIc,
                             GeneratorKind::kSubsimIc, GeneratorKind::kLt}) {
    const auto parsed = ParseGeneratorKind(GeneratorKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseGeneratorKind("nope").ok());
}

TEST(GeneratorFactoryTest, FillAppendsToCollection) {
  const Graph graph = TestWcGraph();
  auto generator = MakeRrGenerator(GeneratorKind::kSubsimIc, graph);
  ASSERT_TRUE(generator.ok());
  RrCollection collection(graph.num_nodes());
  Rng rng(13);
  (*generator)->Fill(rng, 100, &collection);
  EXPECT_EQ(collection.num_sets(), 100u);
  (*generator)->Fill(rng, 50, &collection);
  EXPECT_EQ(collection.num_sets(), 150u);
}

TEST(SubsimIcGeneratorTest, GeneralStrategySortedRequiresSortedGraph) {
  const Graph graph = TestWcGraph();  // not weight-sorted
  EXPECT_DEATH(
      SubsimIcGenerator(graph, GeneralIcStrategy::kSortedIndexFree),
      "sort_in_edges_by_weight");
}

TEST(SubsimIcGeneratorTest, AutoResolvesPerGraph) {
  Result<EdgeList> list = GenerateErdosRenyi(100, 600, 21);
  ASSERT_TRUE(list.ok());
  WeightModelParams params;
  params.seed = 3;
  {
    EdgeList copy = *list;
    ASSERT_TRUE(
        AssignWeights(WeightModel::kExponential, params, &copy).ok());
    GraphBuildOptions options;
    options.sort_in_edges_by_weight = true;
    Result<Graph> sorted_graph = BuildGraph(std::move(copy), options);
    ASSERT_TRUE(sorted_graph.ok());
    SubsimIcGenerator generator(*sorted_graph);
    EXPECT_EQ(generator.resolved_strategy(),
              GeneralIcStrategy::kSortedIndexFree);
  }
  {
    EdgeList copy = *list;
    ASSERT_TRUE(
        AssignWeights(WeightModel::kExponential, params, &copy).ok());
    Result<Graph> unsorted_graph = BuildGraph(std::move(copy));
    ASSERT_TRUE(unsorted_graph.ok());
    SubsimIcGenerator generator(*unsorted_graph);
    EXPECT_EQ(generator.resolved_strategy(),
              GeneralIcStrategy::kBucketIndexed);
  }
}

}  // namespace
}  // namespace subsim
