// Round-trip coverage for the delta+varint arena encoding: varint
// primitives on their byte boundaries, then a randomized property test
// pitting a kDeltaVarint collection against a kRaw twin built from the
// same sets — every view read must agree with the raw truth.

#include "subsim/rrset/rr_encoding.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "subsim/random/rng.h"
#include "subsim/rrset/rr_collection.h"

namespace subsim {
namespace {

TEST(VarintTest, RoundTripsBoundaryValues) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 0xFFFFFFFFull,
                                 0x100000000ull,
                                 0xFFFFFFFFFFFFFFFFull};
  for (const std::uint64_t value : cases) {
    std::vector<std::uint8_t> buffer;
    AppendVarint(&buffer, value);
    // LEB128: ceil(bits/7) bytes, one byte minimum.
    EXPECT_LE(buffer.size(), 10u);
    std::uint64_t decoded = 0;
    const std::uint8_t* end = DecodeVarint(buffer.data(), &decoded);
    EXPECT_EQ(decoded, value);
    EXPECT_EQ(end, buffer.data() + buffer.size());
  }
}

TEST(VarintTest, OneByteForSmallGaps) {
  std::vector<std::uint8_t> buffer;
  for (std::uint64_t v = 0; v < 128; ++v) {
    AppendVarint(&buffer, v);
  }
  EXPECT_EQ(buffer.size(), 128u) << "values < 128 must take one byte each";
}

TEST(DeltaBlockTest, EncodesFirstAbsoluteThenGaps) {
  std::vector<std::uint8_t> buffer;
  const std::vector<NodeId> sorted = {5, 6, 10, 200};
  AppendDeltaVarintBlock(&buffer, sorted);
  const std::uint8_t* p = buffer.data();
  std::uint64_t value = 0;
  p = DecodeVarint(p, &value);
  EXPECT_EQ(value, 5u);
  p = DecodeVarint(p, &value);
  EXPECT_EQ(value, 1u);
  p = DecodeVarint(p, &value);
  EXPECT_EQ(value, 4u);
  p = DecodeVarint(p, &value);
  EXPECT_EQ(value, 190u);
  EXPECT_EQ(p, buffer.data() + buffer.size());
}

TEST(RrEncodingTest, ParseAndName) {
  ASSERT_TRUE(ParseRrEncoding("raw").ok());
  EXPECT_EQ(*ParseRrEncoding("raw"), RrEncoding::kRaw);
  ASSERT_TRUE(ParseRrEncoding("delta").ok());
  EXPECT_EQ(*ParseRrEncoding("delta"), RrEncoding::kDeltaVarint);
  ASSERT_TRUE(ParseRrEncoding("delta-varint").ok());
  EXPECT_EQ(*ParseRrEncoding("delta-varint"), RrEncoding::kDeltaVarint);
  EXPECT_FALSE(ParseRrEncoding("zstd").ok());
  EXPECT_STREQ(RrEncodingName(RrEncoding::kRaw), "raw");
  EXPECT_STREQ(RrEncodingName(RrEncoding::kDeltaVarint), "delta");
}

/// One random RR-set-like draw: `size` distinct ids < n in a shuffled
/// (discovery-like) order, sometimes empty.
std::vector<NodeId> RandomSet(Rng* rng, NodeId n) {
  const std::size_t size =
      static_cast<std::size_t>(rng->UniformInt(12));  // 0..11 members
  std::set<NodeId> distinct;
  while (distinct.size() < size) {
    distinct.insert(static_cast<NodeId>(rng->UniformInt(n)));
  }
  std::vector<NodeId> nodes(distinct.begin(), distinct.end());
  // Shuffle into a discovery-like order (Fisher-Yates off the test rng).
  for (std::size_t i = nodes.size(); i > 1; --i) {
    std::swap(nodes[i - 1],
              nodes[static_cast<std::size_t>(rng->UniformInt(i))]);
  }
  return nodes;
}

TEST(RrEncodingPropertyTest, DeltaCollectionMatchesRawTwinOnRandomSets) {
  constexpr NodeId kNodes = 500;
  constexpr int kSets = 400;
  Rng rng(2024);

  RrCollection raw(kNodes, RrEncoding::kRaw);
  RrCollection delta(kNodes, RrEncoding::kDeltaVarint);
  for (int i = 0; i < kSets; ++i) {
    const std::vector<NodeId> nodes = RandomSet(&rng, kNodes);
    const bool hit = rng.UniformInt(5) == 0;
    raw.Add(nodes, hit);
    delta.Add(nodes, hit);
  }

  ASSERT_EQ(raw.num_sets(), delta.num_sets());
  EXPECT_EQ(raw.total_nodes(), delta.total_nodes());
  EXPECT_EQ(raw.num_hit_sentinel(), delta.num_hit_sentinel());
  EXPECT_DOUBLE_EQ(raw.average_size(), delta.average_size());

  std::vector<NodeId> scratch;
  for (RrId id = 0; id < raw.num_sets(); ++id) {
    SCOPED_TRACE("set " + std::to_string(id));
    std::vector<NodeId> expected = raw.View(id).ToVector();
    std::sort(expected.begin(), expected.end());

    const RrSetView view = delta.View(id);
    ASSERT_EQ(view.size(), expected.size());
    EXPECT_EQ(view.empty(), expected.empty());
    EXPECT_EQ(view.encoding(), RrEncoding::kDeltaVarint);

    // Streaming read.
    std::vector<NodeId> streamed;
    view.ForEachNode([&streamed](NodeId v) { streamed.push_back(v); });
    EXPECT_EQ(streamed, expected);

    // Bulk decode into a reused scratch.
    const std::span<const NodeId> decoded = view.Decode(&scratch);
    EXPECT_TRUE(std::equal(decoded.begin(), decoded.end(),
                           expected.begin(), expected.end()));

    // Allocating convenience.
    EXPECT_EQ(view.ToVector(), expected);

    EXPECT_EQ(raw.HitSentinel(id), delta.HitSentinel(id));
  }

  // The inverted index — what greedy coverage actually consumes — is
  // byte-identical across encodings, which is why seeds never change.
  for (NodeId v = 0; v < kNodes; ++v) {
    const std::span<const RrId> a = raw.SetsContaining(v);
    const std::span<const RrId> b = delta.SetsContaining(v);
    ASSERT_TRUE(a.size() == b.size() &&
                std::equal(a.begin(), a.end(), b.begin()))
        << "index row " << v;
  }

  // Prefix accounting agrees at every cut.
  for (const std::size_t prefix : {std::size_t{0}, std::size_t{1},
                                   std::size_t{17}, std::size_t{400}}) {
    EXPECT_EQ(raw.total_nodes_in_prefix(prefix),
              delta.total_nodes_in_prefix(prefix));
    EXPECT_EQ(raw.num_hit_sentinel_in_prefix(prefix),
              delta.num_hit_sentinel_in_prefix(prefix));
  }
}

TEST(RrEncodingPropertyTest, RawDecodeIsZeroCopyAndDeltaArenaIsSmaller) {
  constexpr NodeId kNodes = 256;
  Rng rng(7);
  RrCollection raw(kNodes, RrEncoding::kRaw);
  RrCollection delta(kNodes, RrEncoding::kDeltaVarint);
  for (int i = 0; i < 200; ++i) {
    // Dense sets (ids < 256): every delta gap fits one varint byte, so the
    // encoded arena must be strictly smaller than 4 bytes/membership.
    std::vector<NodeId> nodes;
    for (NodeId v = static_cast<NodeId>(rng.UniformInt(8)); v < kNodes;
         v = static_cast<NodeId>(v + 1 + rng.UniformInt(16))) {
      nodes.push_back(v);
    }
    raw.Add(nodes, false);
    delta.Add(nodes, false);
  }

  // kRaw Decode returns the arena itself; scratch stays untouched.
  std::vector<NodeId> scratch;
  const std::span<const NodeId> span = raw.View(3).Decode(&scratch);
  EXPECT_TRUE(scratch.empty());
  EXPECT_EQ(span.size(), raw.View(3).size());

  EXPECT_EQ(raw.arena_bytes(), raw.total_nodes() * sizeof(NodeId));
  EXPECT_LT(delta.arena_bytes(), raw.arena_bytes() / 2)
      << "dense sorted sets must compress at least 2x";
  EXPECT_LT(delta.ApproxMemoryBytes(), raw.ApproxMemoryBytes());

  delta.Clear();
  EXPECT_EQ(delta.num_sets(), 0u);
  EXPECT_EQ(delta.arena_bytes(), 0u);
  EXPECT_EQ(delta.encoding(), RrEncoding::kDeltaVarint);
  delta.Add(std::vector<NodeId>{3, 1, 2}, false);
  EXPECT_EQ(delta.View(0).ToVector(), (std::vector<NodeId>{1, 2, 3}));
}

}  // namespace
}  // namespace subsim
