// Differential kernel-equivalence suite: the scalar per-set generators
// are the reference semantics, and the frontier-batched kernel must
// reproduce their output *byte for byte* — same nodes, same within-set
// order, same sentinel hits — for every generator kind, with and without
// sentinels, at every thread count. This is the contract that makes
// `FillKernel` a pure execution knob (and lets `kAuto` default to the
// batched kernel without changing a single published number). CI runs
// this binary in Release and ASan+UBSan with SUBSIM_TEST_THREADS=1 and
// =4 appended to the default sweep.
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "subsim/algo/registry.h"
#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"
#include "subsim/rrset/parallel_fill.h"

namespace subsim {
namespace {

Graph WcGraph() {
  Result<EdgeList> list = GenerateBarabasiAlbert(1200, 4, true, 7);
  EXPECT_TRUE(list.ok());
  EXPECT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

// Exponential weights (per-node rescaled to sum 1) make most in-rows
// skew-weighted, driving the kSmallNaive / kGeneral plans the WC graph
// never exercises — while staying LT-legal (in-sums are exactly 1).
Graph SkewedGraph() {
  Result<EdgeList> list = GenerateBarabasiAlbert(900, 5, true, 19);
  EXPECT_TRUE(list.ok());
  WeightModelParams params;
  params.seed = 23;
  EXPECT_TRUE(
      AssignWeights(WeightModel::kExponential, params, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

const Graph& SharedWcGraph() {
  static const Graph* const kGraph = new Graph(WcGraph());
  return *kGraph;
}

const Graph& SharedSkewedGraph() {
  static const Graph* const kGraph = new Graph(SkewedGraph());
  return *kGraph;
}

std::vector<unsigned> ThreadSweep() {
  std::vector<unsigned> sweep = {1, 2, 8};
  if (const char* env = std::getenv("SUBSIM_TEST_THREADS")) {
    const int extra = std::atoi(env);
    if (extra > 0) {
      sweep.push_back(static_cast<unsigned>(extra));
    }
  }
  return sweep;
}

RrCollection FillWith(const Graph& graph, GeneratorKind kind,
                      FillKernel kernel, unsigned num_threads,
                      std::span<const NodeId> sentinels = {}) {
  RrCollection collection(graph.num_nodes());
  RngStream rng = MakeRngStream(91, 1);
  FillRequest request;
  request.kind = kind;
  request.graph = &graph;
  request.rng = &rng;
  request.count = 3000;
  request.num_threads = num_threads;
  request.sentinels = sentinels;
  request.kernel = kernel;
  EXPECT_TRUE(FillCollection(request, &collection).ok());
  return collection;
}

void ExpectIdentical(const RrCollection& a, const RrCollection& b) {
  ASSERT_EQ(a.num_sets(), b.num_sets());
  ASSERT_EQ(a.total_nodes(), b.total_nodes());
  ASSERT_EQ(a.num_hit_sentinel(), b.num_hit_sentinel());
  for (RrId id = 0; id < a.num_sets(); ++id) {
    const auto sa = a.View(id).ToVector();
    const auto sb = b.View(id).ToVector();
    ASSERT_EQ(sa.size(), sb.size()) << "set " << id;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      ASSERT_EQ(sa[i], sb[i]) << "set " << id << " pos " << i;
    }
  }
}

std::vector<NodeId> EveryEleventhNode(const Graph& graph) {
  std::vector<NodeId> sentinels;
  for (NodeId v = 0; v < graph.num_nodes(); v += 11) {
    sentinels.push_back(v);
  }
  return sentinels;
}

class KernelEquivalenceTest : public ::testing::TestWithParam<GeneratorKind> {
};

TEST_P(KernelEquivalenceTest, BatchedMatchesScalarOnWcGraph) {
  const Graph& graph = SharedWcGraph();
  const RrCollection reference =
      FillWith(graph, GetParam(), FillKernel::kScalar, 1);
  for (unsigned threads : ThreadSweep()) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectIdentical(reference,
                    FillWith(graph, GetParam(), FillKernel::kBatched, threads));
  }
}

TEST_P(KernelEquivalenceTest, BatchedMatchesScalarOnSkewedGraph) {
  const Graph& graph = SharedSkewedGraph();
  const RrCollection reference =
      FillWith(graph, GetParam(), FillKernel::kScalar, 1);
  for (unsigned threads : ThreadSweep()) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectIdentical(reference,
                    FillWith(graph, GetParam(), FillKernel::kBatched, threads));
  }
}

TEST_P(KernelEquivalenceTest, BatchedMatchesScalarWithSentinels) {
  // Sentinel fills flip the batched kernels onto their inline (stop-aware)
  // expansion paths; truncation must land on the identical node.
  const Graph& graph = SharedWcGraph();
  const std::vector<NodeId> sentinels = EveryEleventhNode(graph);
  const RrCollection reference =
      FillWith(graph, GetParam(), FillKernel::kScalar, 1, sentinels);
  EXPECT_GT(reference.num_hit_sentinel(), 0u);
  for (unsigned threads : ThreadSweep()) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectIdentical(reference, FillWith(graph, GetParam(),
                                        FillKernel::kBatched, threads,
                                        sentinels));
  }
}

TEST_P(KernelEquivalenceTest, BatchedMatchesScalarWithSentinelsSkewed) {
  const Graph& graph = SharedSkewedGraph();
  const std::vector<NodeId> sentinels = EveryEleventhNode(graph);
  const RrCollection reference =
      FillWith(graph, GetParam(), FillKernel::kScalar, 1, sentinels);
  EXPECT_GT(reference.num_hit_sentinel(), 0u);
  for (unsigned threads : ThreadSweep()) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectIdentical(reference, FillWith(graph, GetParam(),
                                        FillKernel::kBatched, threads,
                                        sentinels));
  }
}

TEST_P(KernelEquivalenceTest, AutoResolvesToBatched) {
  EXPECT_EQ(ResolveFillKernel(FillKernel::kAuto), FillKernel::kBatched);
  const Graph& graph = SharedWcGraph();
  ExpectIdentical(FillWith(graph, GetParam(), FillKernel::kAuto, 1),
                  FillWith(graph, GetParam(), FillKernel::kBatched, 1));
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, KernelEquivalenceTest,
                         ::testing::Values(GeneratorKind::kVanillaIc,
                                           GeneratorKind::kSubsimIc,
                                           GeneratorKind::kLt),
                         [](const auto& info) {
                           switch (info.param) {
                             case GeneratorKind::kVanillaIc:
                               return "vanilla_ic";
                             case GeneratorKind::kSubsimIc:
                               return "subsim_ic";
                             case GeneratorKind::kLt:
                               return "lt";
                           }
                           return "unknown";
                         });

// End-to-end: every registered RR-based algorithm must select the same
// seed set (and report the same spread and set counts) whichever kernel
// generated its samples — the kernel can never leak into results.
class AlgorithmKernelEquivalenceTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(AlgorithmKernelEquivalenceTest, SelectedSeedsIdenticalAcrossKernels) {
  const auto algorithm = MakeImAlgorithm(GetParam());
  ASSERT_TRUE(algorithm.ok());
  const Graph& graph = SharedWcGraph();

  ImOptions options;
  options.k = 8;
  options.epsilon = 0.3;
  options.rng_seed = 13;

  options.fill_kernel = FillKernel::kScalar;
  const Result<ImResult> reference = (*algorithm)->Run(graph, options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (FillKernel kernel : {FillKernel::kBatched, FillKernel::kAuto}) {
    SCOPED_TRACE(std::string("kernel=") + FillKernelName(kernel));
    options.fill_kernel = kernel;
    const Result<ImResult> result = (*algorithm)->Run(graph, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(reference->seeds, result->seeds);
    EXPECT_EQ(reference->num_rr_sets, result->num_rr_sets);
    EXPECT_EQ(reference->total_rr_nodes, result->total_rr_nodes);
    EXPECT_DOUBLE_EQ(reference->estimated_spread, result->estimated_spread);
  }
}

INSTANTIATE_TEST_SUITE_P(AllRrAlgorithms, AlgorithmKernelEquivalenceTest,
                         ::testing::Values("imm", "tim+", "opim-c", "ssa",
                                           "hist"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace subsim
