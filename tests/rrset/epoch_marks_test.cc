// Unit tests for EpochMarks, the batched kernel's O(1)-reset visited
// marks. Two things are load-bearing here. First, the single-stamp-per-
// node design makes the stamp a *cache*, not a truth table: when two
// in-flight sets touch one node, the later mark steals the stamp and the
// earlier set's membership can only be recovered from the caller's own
// records — the tests pin that stealing behavior and the Stamp/Overwrite
// accessors the batched kernel's exact fallback is built on. Second, the
// 32-bit epoch wraparound: stale stamps from the previous epoch era must
// never read as marked after the wrap, which is only reachable via the
// test hook (4.3 billion real BeginSet calls would take hours).
#include <cstdint>

#include <gtest/gtest.h>

#include "subsim/rrset/epoch_marks.h"

namespace subsim {
namespace {

TEST(EpochMarksTest, StartsEmptyAndMarksStick) {
  EpochMarks marks(8);
  marks.BeginSet();
  for (std::size_t v = 0; v < 8; ++v) {
    EXPECT_FALSE(marks.Marked(v)) << v;
  }
  EXPECT_TRUE(marks.Mark(3));
  EXPECT_TRUE(marks.Marked(3));
  EXPECT_FALSE(marks.Mark(3)) << "second mark must report already-set";
  EXPECT_FALSE(marks.Marked(4));
}

TEST(EpochMarksTest, BeginSetClearsAllMarksInO1) {
  EpochMarks marks(4);
  marks.BeginSet();
  marks.Mark(0);
  marks.Mark(2);
  marks.BeginSet();
  for (std::size_t v = 0; v < 4; ++v) {
    EXPECT_FALSE(marks.Marked(v)) << v;
  }
  EXPECT_TRUE(marks.Mark(2)) << "a new set must re-admit old members";
}

TEST(EpochMarksTest, BeginSetsReservesDisjointEpochBlock) {
  EpochMarks marks(4);
  const std::uint32_t first = marks.BeginSets(3);
  EXPECT_TRUE(marks.Mark(1, first));
  EXPECT_TRUE(marks.Marked(1, first));
  EXPECT_FALSE(marks.Mark(1, first)) << "per-epoch dedup must hold";
  EXPECT_FALSE(marks.Marked(0, first));

  // The next block must not collide with the previous one.
  const std::uint32_t next = marks.BeginSets(2);
  EXPECT_EQ(next, first + 3);
  EXPECT_FALSE(marks.Marked(1, next));
}

TEST(EpochMarksTest, LaterEpochStealsTheStamp) {
  // The documented cache semantics: one stamp word per node, so a second
  // in-flight set marking the same node overwrites the first set's stamp
  // — Mark returns true for the thief and the victim's Marked goes false.
  // The batched kernel compensates with its exact per-lane fallback; this
  // test pins the primitive behavior that fallback is designed around.
  EpochMarks marks(4);
  const std::uint32_t first = marks.BeginSets(2);
  EXPECT_TRUE(marks.Mark(1, first));
  EXPECT_TRUE(marks.Mark(1, first + 1)) << "foreign stamp must be stolen";
  EXPECT_EQ(marks.Stamp(1), first + 1);
  EXPECT_FALSE(marks.Marked(1, first)) << "the victim's view is stale";
  EXPECT_TRUE(marks.Marked(1, first + 1));
}

TEST(EpochMarksTest, StampAndOverwriteExposeTheRawCache) {
  // The kernel's exact fallback reads the raw stamp to classify it
  // (mine / dead era / live foreigner) and then claims it unconditionally.
  EpochMarks marks(3);
  const std::uint32_t first = marks.BeginSets(2);
  EXPECT_EQ(marks.Stamp(2), 0u) << "never-stamped must read as epoch 0";
  marks.Overwrite(2, first);
  EXPECT_EQ(marks.Stamp(2), first);
  EXPECT_TRUE(marks.Marked(2, first));
  marks.Overwrite(2, first + 1);
  EXPECT_EQ(marks.Stamp(2), first + 1);
  EXPECT_FALSE(marks.Marked(2, first));
}

TEST(EpochMarksTest, ResizeResetsEverything) {
  EpochMarks marks(2);
  marks.BeginSet();
  marks.Mark(1);
  marks.Resize(5);
  EXPECT_EQ(marks.size(), 5u);
  EXPECT_EQ(marks.epoch(), 0u);
  marks.BeginSet();
  EXPECT_FALSE(marks.Marked(1));
}

TEST(EpochMarksTest, WraparoundNeverAliasesStaleStamps) {
  // Stamp a node near the top of the epoch range, then force the counter
  // to the edge. The next BeginSet must re-zero the stamps and restart at
  // epoch 1 — if it instead wrapped the counter through the stamped
  // value, node 0 would leak into a set it was never added to.
  EpochMarks marks(3);
  marks.SetEpochForTesting(EpochMarks::kMaxEpoch - 1);
  ASSERT_TRUE(marks.Mark(0, EpochMarks::kMaxEpoch - 1));

  marks.SetEpochForTesting(EpochMarks::kMaxEpoch);
  marks.BeginSet();
  EXPECT_EQ(marks.epoch(), 1u) << "wrap must restart the epoch era";
  EXPECT_FALSE(marks.Marked(0)) << "stale stamp aliased a live epoch";
  EXPECT_TRUE(marks.Mark(0));
}

TEST(EpochMarksTest, WraparoundTriggersWhenBlockWouldCross) {
  // A BeginSets(count) block that would cross kMaxEpoch must wrap *before*
  // handing out any epoch of the block, so every set's epoch is from the
  // fresh era and every pre-wrap stamp reads as dead.
  EpochMarks marks(2);
  marks.SetEpochForTesting(EpochMarks::kMaxEpoch - 5);
  ASSERT_TRUE(marks.Mark(1, EpochMarks::kMaxEpoch - 5));

  const std::uint32_t first = marks.BeginSets(64);
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(marks.epoch(), 64u);
  EXPECT_EQ(marks.Stamp(1), 0u) << "wrap must re-zero every stamp";
  for (std::uint32_t lane = 0; lane < 64; ++lane) {
    EXPECT_FALSE(marks.Marked(1, first + lane)) << lane;
  }
}

TEST(EpochMarksTest, BlockExactlyReachingMaxDoesNotWrap) {
  // Reserving up to and including kMaxEpoch is legal; only crossing it
  // forces the re-zero.
  EpochMarks marks(2);
  marks.SetEpochForTesting(EpochMarks::kMaxEpoch - 64);
  const std::uint32_t first = marks.BeginSets(64);
  EXPECT_EQ(first, EpochMarks::kMaxEpoch - 63);
  EXPECT_EQ(marks.epoch(), EpochMarks::kMaxEpoch);
}

}  // namespace
}  // namespace subsim
