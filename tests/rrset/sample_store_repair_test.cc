#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "subsim/graph/generators.h"
#include "subsim/graph/graph.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/graph_update.h"
#include "subsim/graph/weight_models.h"
#include "subsim/random/rng.h"
#include "subsim/rrset/generator_factory.h"
#include "subsim/rrset/sample_store.h"

namespace subsim {
namespace {

constexpr std::uint64_t kSeed = 7;
constexpr std::uint64_t kSetsR1 = 400;
constexpr std::uint64_t kSetsR2 = 250;

Graph RepairGraph(std::uint64_t seed) {
  Result<EdgeList> list = GenerateBarabasiAlbert(300, 3, false, seed);
  EXPECT_TRUE(list.ok());
  EXPECT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

std::array<RngStream, SampleStore::kNumStreams> Streams() {
  return {MakeRngStream(kSeed, 1), MakeRngStream(kSeed, 2)};
}

/// A batch safe for every generator kind: weight *decreases* on a few
/// distinct edges plus one delete. Inserts are exercised separately for the
/// IC kinds — an insert can push an LT in-weight sum past 1.
UpdateBatch ShrinkingBatch(const Graph& graph) {
  const EdgeList list = graph.ToEdgeList();
  UpdateBatch batch;
  std::unordered_set<std::uint64_t> used;
  const auto key = [](const Edge& e) {
    return (static_cast<std::uint64_t>(e.src) << 32) | e.dst;
  };
  const std::size_t stride = list.edges.size() / 6 + 1;
  for (std::size_t i = 0; i < list.edges.size() && used.size() < 5;
       i += stride) {
    const Edge& e = list.edges[i];
    if (!used.insert(key(e)).second) {
      continue;
    }
    batch.ops.push_back({EdgeOpKind::kSetWeight, e.src, e.dst,
                         e.weight * 0.5});
  }
  for (const Edge& e : list.edges) {
    if (used.insert(key(e)).second) {
      batch.ops.push_back({EdgeOpKind::kDelete, e.src, e.dst, 0.0});
      break;
    }
  }
  EXPECT_GE(batch.ops.size(), 2u);
  return batch;
}

/// Adds one edge not present in `graph` (IC kinds only).
void AddInsertOp(const Graph& graph, UpdateBatch* batch) {
  std::unordered_set<std::uint64_t> existing;
  for (const Edge& e : graph.ToEdgeList().edges) {
    existing.insert((static_cast<std::uint64_t>(e.src) << 32) | e.dst);
  }
  for (NodeId a = 0; a < graph.num_nodes(); ++a) {
    for (NodeId b = 0; b < graph.num_nodes(); ++b) {
      if (a == b) {
        continue;
      }
      const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
      if (existing.count(key) == 0) {
        batch->ops.push_back({EdgeOpKind::kInsert, a, b, 0.3});
        return;
      }
    }
  }
  FAIL() << "graph is complete; cannot insert";
}

void ExpectStoresIdentical(const SampleStore& a, const SampleStore& b) {
  const SampleStore::ReadGuard read_a = a.Read();
  const SampleStore::ReadGuard read_b = b.Read();
  for (std::size_t s = 0; s < SampleStore::kNumStreams; ++s) {
    SCOPED_TRACE("stream " + std::to_string(s));
    ASSERT_EQ(a.num_sets(s), b.num_sets(s));
    const RrCollectionView va = read_a.View(s, a.num_sets(s));
    const RrCollectionView vb = read_b.View(s, b.num_sets(s));
    for (RrId id = 0; id < va.num_sets(); ++id) {
      const std::vector<NodeId> sa = va.View(id).ToVector();
      const std::vector<NodeId> sb = vb.View(id).ToVector();
      ASSERT_TRUE(sa.size() == sb.size() &&
                  std::equal(sa.begin(), sa.end(), sb.begin()))
          << "set " << id << " differs";
      ASSERT_EQ(va.HitSentinel(id), vb.HitSentinel(id)) << "set " << id;
    }
  }
}

/// Ground truth for `sets_repaired`: count committed sets (across both
/// streams) containing at least one dirty node, via the inverted index.
std::uint64_t CountAffectedSets(const SampleStore& store,
                                const std::vector<NodeId>& dirty_nodes) {
  const SampleStore::ReadGuard read = store.Read();
  std::uint64_t affected = 0;
  for (std::size_t s = 0; s < SampleStore::kNumStreams; ++s) {
    const RrCollectionView view = read.View(s, store.num_sets(s));
    std::vector<std::uint8_t> hit(view.num_sets(), 0);
    for (const NodeId v : dirty_nodes) {
      for (const RrId id : view.SetsContaining(v)) {
        hit[id] = 1;
      }
    }
    for (const std::uint8_t h : hit) {
      affected += h;
    }
  }
  return affected;
}

struct RepairCase {
  GeneratorKind kind;
  unsigned num_threads;
  bool with_insert;
};

void RunRepairCase(const RepairCase& test_case) {
  const Graph base = RepairGraph(kSeed);
  SampleStore::Options options;
  options.num_threads = test_case.num_threads;

  Result<std::unique_ptr<SampleStore>> source =
      SampleStore::Create(base, test_case.kind, Streams(), options);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  ASSERT_TRUE((*source)->EnsureSets(0, kSetsR1).ok());
  ASSERT_TRUE((*source)->EnsureSets(1, kSetsR2).ok());

  UpdateBatch batch = ShrinkingBatch(base);
  if (test_case.with_insert) {
    AddInsertOp(base, &batch);
  }
  Result<EdgeUpdateResult> updated = ApplyEdgeUpdates(base, batch);
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();

  const std::uint64_t expected_repaired =
      CountAffectedSets(**source, updated->dirty_nodes);

  SampleStore::RepairStats stats;
  Result<std::unique_ptr<SampleStore>> repaired = SampleStore::CreateRepaired(
      updated->graph, **source, updated->dirty_nodes, options, &stats);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();

  // The whole point: only the affected sets were regenerated.
  EXPECT_EQ(stats.sets_repaired, expected_repaired);
  EXPECT_EQ(stats.sets_repaired + stats.sets_kept, kSetsR1 + kSetsR2);
  EXPECT_GT(stats.sets_repaired, 0u);
  EXPECT_GT(stats.sets_kept, 0u);

  // Byte-identity against a cold rebuild on the updated graph.
  Result<std::unique_ptr<SampleStore>> cold =
      SampleStore::Create(updated->graph, test_case.kind, Streams(), options);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE((*cold)->EnsureSets(0, kSetsR1).ok());
  ASSERT_TRUE((*cold)->EnsureSets(1, kSetsR2).ok());
  ExpectStoresIdentical(**repaired, **cold);

  // The repaired store's stream cursors continue correctly: growing both
  // stores further must stay identical (and thread-count invariant).
  ASSERT_TRUE((*repaired)->EnsureSets(0, kSetsR1 + 150).ok());
  ASSERT_TRUE((*cold)->EnsureSets(0, kSetsR1 + 150).ok());
  ExpectStoresIdentical(**repaired, **cold);
}

TEST(SampleStoreRepairTest, DifferentialByteIdentity) {
  for (const GeneratorKind kind :
       {GeneratorKind::kVanillaIc, GeneratorKind::kSubsimIc,
        GeneratorKind::kLt}) {
    for (const unsigned num_threads : {1u, 8u}) {
      SCOPED_TRACE("kind=" + std::string(GeneratorKindName(kind)) +
                   " threads=" + std::to_string(num_threads));
      // LT stays delete/weight-decrease only (inserts can break the
      // per-node weight-sum invariant); IC kinds also exercise an insert.
      RunRepairCase({kind, num_threads, kind != GeneratorKind::kLt});
    }
  }
}

TEST(SampleStoreRepairTest, EncodedStoreRepairsIdenticallyToColdRebuild) {
  // Repair on a delta-varint source: kept sets round-trip through the
  // encoded arena, repaired sets re-encode, and the result must equal a
  // cold delta rebuild set for set. Also pins the inheritance rule —
  // CreateRepaired stores under the SOURCE's encoding even when the repair
  // options ask for raw, because kept sets are only byte-stable within one
  // encoding.
  const Graph base = RepairGraph(kSeed);
  SampleStore::Options delta_options;
  delta_options.encoding = RrEncoding::kDeltaVarint;

  Result<std::unique_ptr<SampleStore>> source = SampleStore::Create(
      base, GeneratorKind::kSubsimIc, Streams(), delta_options);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ((*source)->encoding(), RrEncoding::kDeltaVarint);
  ASSERT_TRUE((*source)->EnsureSets(0, kSetsR1).ok());
  ASSERT_TRUE((*source)->EnsureSets(1, kSetsR2).ok());

  UpdateBatch batch = ShrinkingBatch(base);
  Result<EdgeUpdateResult> updated = ApplyEdgeUpdates(base, batch);
  ASSERT_TRUE(updated.ok());

  SampleStore::Options repair_options;
  repair_options.encoding = RrEncoding::kRaw;  // deliberately ignored
  SampleStore::RepairStats stats;
  Result<std::unique_ptr<SampleStore>> repaired = SampleStore::CreateRepaired(
      updated->graph, **source, updated->dirty_nodes, repair_options, &stats);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_EQ((*repaired)->encoding(), RrEncoding::kDeltaVarint);
  EXPECT_GT(stats.sets_kept, 0u);
  EXPECT_GT(stats.sets_repaired, 0u);

  Result<std::unique_ptr<SampleStore>> cold = SampleStore::Create(
      updated->graph, GeneratorKind::kSubsimIc, Streams(), delta_options);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE((*cold)->EnsureSets(0, kSetsR1).ok());
  ASSERT_TRUE((*cold)->EnsureSets(1, kSetsR2).ok());
  ExpectStoresIdentical(**repaired, **cold);

  // Growth after repair keeps decoding/encoding consistently.
  ASSERT_TRUE((*repaired)->EnsureSets(0, kSetsR1 + 100).ok());
  ASSERT_TRUE((*cold)->EnsureSets(0, kSetsR1 + 100).ok());
  ExpectStoresIdentical(**repaired, **cold);

  // And the encoded store holds the same logical sets as a raw rebuild:
  // the delta view is the sorted raw set.
  Result<std::unique_ptr<SampleStore>> raw = SampleStore::Create(
      updated->graph, GeneratorKind::kSubsimIc, Streams(),
      SampleStore::Options());
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE((*raw)->EnsureSets(0, kSetsR1).ok());
  const SampleStore::ReadGuard delta_read = (*repaired)->Read();
  const SampleStore::ReadGuard raw_read = (*raw)->Read();
  const RrCollectionView dv = delta_read.View(0, kSetsR1);
  const RrCollectionView rv = raw_read.View(0, kSetsR1);
  for (RrId id = 0; id < dv.num_sets(); ++id) {
    std::vector<NodeId> expected = rv.View(id).ToVector();
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(dv.View(id).ToVector(), expected) << "set " << id;
  }
}

TEST(SampleStoreRepairTest, EmptyDirtyFrontierKeepsEverything) {
  const Graph base = RepairGraph(kSeed);
  Result<std::unique_ptr<SampleStore>> source = SampleStore::Create(
      base, GeneratorKind::kSubsimIc, Streams(), SampleStore::Options());
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE((*source)->EnsureSets(0, 100).ok());

  SampleStore::RepairStats stats;
  Result<std::unique_ptr<SampleStore>> repaired = SampleStore::CreateRepaired(
      base, **source, {}, SampleStore::Options(), &stats);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(stats.sets_repaired, 0u);
  EXPECT_EQ(stats.sets_kept, 100u);
  ExpectStoresIdentical(**repaired, **source);
}

TEST(SampleStoreRepairTest, RejectsNodeCountMismatch) {
  const Graph base = RepairGraph(kSeed);
  Result<std::unique_ptr<SampleStore>> source = SampleStore::Create(
      base, GeneratorKind::kSubsimIc, Streams(), SampleStore::Options());
  ASSERT_TRUE(source.ok());

  Result<EdgeList> smaller = GenerateBarabasiAlbert(200, 3, false, kSeed);
  ASSERT_TRUE(smaller.ok());
  ASSERT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &smaller.value()).ok());
  Result<Graph> other = BuildGraph(std::move(smaller).value());
  ASSERT_TRUE(other.ok());

  Result<std::unique_ptr<SampleStore>> repaired = SampleStore::CreateRepaired(
      *other, **source, {}, SampleStore::Options(), nullptr);
  EXPECT_FALSE(repaired.ok());
  EXPECT_EQ(repaired.status().code(), StatusCode::kInvalidArgument);
}

TEST(SampleStoreRepairTest, RejectsGraphInvalidForKind) {
  // Push an LT in-weight sum past 1: the repair must fail cleanly (the
  // engine then drops that cache entry instead of serving garbage).
  const Graph base = RepairGraph(kSeed);
  Result<std::unique_ptr<SampleStore>> source = SampleStore::Create(
      base, GeneratorKind::kLt, Streams(), SampleStore::Options());
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE((*source)->EnsureSets(0, 50).ok());

  // Target a node that already has in-edges (its WC in-sum is exactly 1)
  // with a new weight-1 edge, pushing the sum to 2.
  std::unordered_set<std::uint64_t> existing;
  for (const Edge& e : base.ToEdgeList().edges) {
    existing.insert((static_cast<std::uint64_t>(e.src) << 32) | e.dst);
  }
  const NodeId target = base.ToEdgeList().edges.front().dst;
  UpdateBatch batch;
  for (NodeId a = 0; a < base.num_nodes(); ++a) {
    const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | target;
    if (a != target && existing.count(key) == 0) {
      batch.ops.push_back({EdgeOpKind::kInsert, a, target, 1.0});
      break;
    }
  }
  ASSERT_EQ(batch.ops.size(), 1u);
  Result<EdgeUpdateResult> updated = ApplyEdgeUpdates(base, batch);
  ASSERT_TRUE(updated.ok());

  Result<std::unique_ptr<SampleStore>> repaired = SampleStore::CreateRepaired(
      updated->graph, **source, updated->dirty_nodes, SampleStore::Options(),
      nullptr);
  EXPECT_FALSE(repaired.ok());
}

}  // namespace
}  // namespace subsim
