// SampleStore is the reuse substrate of the serving cache: its streams must
// be byte-identical to a one-shot FillCollection with the same stream, no
// matter how the growth was chunked or how many threads filled it, and its
// committed watermarks must expose only fully generated prefixes.

#include "subsim/rrset/sample_store.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>
#include <vector>

#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"
#include "subsim/rrset/parallel_fill.h"

namespace subsim {
namespace {

Graph SmallWcGraph() {
  Result<EdgeList> list = GenerateBarabasiAlbert(300, 3, false, 11);
  EXPECT_TRUE(list.ok());
  EXPECT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

std::array<RngStream, SampleStore::kNumStreams> MakeStreams(
    std::uint64_t seed) {
  return {MakeRngStream(seed, 1), MakeRngStream(seed, 2)};
}

void ExpectViewEquals(const RrCollectionView& view,
                      const RrCollection& expected) {
  ASSERT_EQ(view.num_sets(), expected.num_sets());
  EXPECT_EQ(view.total_nodes(), expected.total_nodes());
  for (RrId id = 0; id < view.num_sets(); ++id) {
    const auto a = view.View(id).ToVector();
    const auto b = expected.View(id).ToVector();
    ASSERT_EQ(a.size(), b.size()) << "set " << id;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "set " << id << " pos " << i;
    }
  }
}

TEST(SampleStoreTest, ChunkedGrowthMatchesOneShotFill) {
  const Graph graph = SmallWcGraph();

  // Grow stream 0 in awkward chunks through the store...
  Result<std::unique_ptr<SampleStore>> store = SampleStore::Create(
      graph, GeneratorKind::kSubsimIc, MakeStreams(42));
  ASSERT_TRUE(store.ok());
  for (const std::uint64_t target : {1u, 5u, 5u, 64u, 65u, 500u}) {
    ASSERT_TRUE((*store)->EnsureSets(0, target).ok());
    EXPECT_GE((*store)->num_sets(0), target);
  }
  EXPECT_EQ((*store)->num_sets(0), 500u);
  EXPECT_EQ((*store)->num_sets(1), 0u);

  // ...and compare with one straight FillCollection from the same stream.
  RrCollection direct(graph.num_nodes());
  RngStream rng = MakeRngStream(42, 1);
  FillRequest request;
  request.kind = GeneratorKind::kSubsimIc;
  request.graph = &graph;
  request.rng = &rng;
  request.count = 500;
  ASSERT_TRUE(FillCollection(request, &direct).ok());

  const SampleStore::ReadGuard read = (*store)->Read();
  ExpectViewEquals(read.View(0, 500), direct);
}

TEST(SampleStoreTest, ParallelStoreMatchesSequentialStore) {
  // The serving cache hands warm sketches across queries regardless of the
  // thread count that generated them, so a store grown with many threads
  // must equal one grown sequentially, prefix for prefix.
  const Graph graph = SmallWcGraph();
  SampleStore::Options parallel_options;
  parallel_options.num_threads = 8;
  Result<std::unique_ptr<SampleStore>> parallel = SampleStore::Create(
      graph, GeneratorKind::kSubsimIc, MakeStreams(9), parallel_options);
  ASSERT_TRUE(parallel.ok());
  Result<std::unique_ptr<SampleStore>> sequential = SampleStore::Create(
      graph, GeneratorKind::kSubsimIc, MakeStreams(9));
  ASSERT_TRUE(sequential.ok());

  ASSERT_TRUE((*parallel)->EnsureSets(0, 400).ok());
  ASSERT_TRUE((*sequential)->EnsureSets(0, 150).ok());
  ASSERT_TRUE((*sequential)->EnsureSets(0, 400).ok());

  const SampleStore::ReadGuard a = (*parallel)->Read();
  const SampleStore::ReadGuard b = (*sequential)->Read();
  const RrCollectionView va = a.View(0, 400);
  const RrCollectionView vb = b.View(0, 400);
  ASSERT_EQ(va.num_sets(), vb.num_sets());
  EXPECT_EQ(va.total_nodes(), vb.total_nodes());
  for (RrId id = 0; id < va.num_sets(); ++id) {
    const auto sa = va.View(id).ToVector();
    const auto sb = vb.View(id).ToVector();
    ASSERT_EQ(sa.size(), sb.size()) << "set " << id;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i], sb[i]) << "set " << id << " pos " << i;
    }
  }
}

TEST(SampleStoreTest, StreamsAreIndependent) {
  const Graph graph = SmallWcGraph();
  Result<std::unique_ptr<SampleStore>> store = SampleStore::Create(
      graph, GeneratorKind::kVanillaIc, MakeStreams(7));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->EnsureSets(0, 50).ok());
  ASSERT_TRUE((*store)->EnsureSets(1, 20).ok());
  EXPECT_EQ((*store)->num_sets(0), 50u);
  EXPECT_EQ((*store)->num_sets(1), 20u);
  EXPECT_EQ((*store)->total_generated(), 70u);

  // Growing stream 1 further must not disturb stream 0's prefix.
  const std::vector<NodeId> before =
      (*store)->Read().View(0, 50).View(10).ToVector();
  ASSERT_TRUE((*store)->EnsureSets(1, 200).ok());
  const SampleStore::ReadGuard read = (*store)->Read();
  const auto after = read.View(0, 50).View(10).ToVector();
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i], before[i]);
  }
}

TEST(SampleStoreTest, EnsureSetsIsMonotoneAndIdempotent) {
  const Graph graph = SmallWcGraph();
  Result<std::unique_ptr<SampleStore>> store = SampleStore::Create(
      graph, GeneratorKind::kSubsimIc, MakeStreams(3));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->EnsureSets(0, 100).ok());
  // Shrinking requests are no-ops; repeated requests generate nothing new.
  ASSERT_TRUE((*store)->EnsureSets(0, 10).ok());
  ASSERT_TRUE((*store)->EnsureSets(0, 100).ok());
  EXPECT_EQ((*store)->num_sets(0), 100u);
}

TEST(SampleStoreTest, ReportsGraphAndGeneratorIdentity) {
  const Graph graph = SmallWcGraph();
  Result<std::unique_ptr<SampleStore>> store = SampleStore::Create(
      graph, GeneratorKind::kSubsimIc, MakeStreams(1));
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->generator_kind(), GeneratorKind::kSubsimIc);
  EXPECT_EQ((*store)->num_graph_nodes(), graph.num_nodes());

  const std::uint64_t empty_bytes = (*store)->ApproxMemoryBytes();
  ASSERT_TRUE((*store)->EnsureSets(0, 2000).ok());
  EXPECT_GT((*store)->ApproxMemoryBytes(), empty_bytes);
}

TEST(SampleStoreTest, StoresNeverContainSentinelHits) {
  // Plain generators never truncate, and the store DCHECKs the invariant;
  // verify through the public API that nothing is flagged.
  const Graph graph = SmallWcGraph();
  Result<std::unique_ptr<SampleStore>> store = SampleStore::Create(
      graph, GeneratorKind::kVanillaIc, MakeStreams(5));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->EnsureSets(0, 300).ok());
  const SampleStore::ReadGuard read = (*store)->Read();
  EXPECT_EQ(read.View(0, 300).num_hit_sentinel(), 0u);
}

}  // namespace
}  // namespace subsim
