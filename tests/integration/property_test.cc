// Property-style parameterized sweeps across the (weight model x generator
// x graph shape) matrix: structural invariants of RR sets, determinism,
// greedy-vs-exhaustive coverage on small instances, and bound ordering on
// randomized inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>

#include "subsim/coverage/bounds.h"
#include "subsim/coverage/max_coverage.h"
#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"
#include "subsim/rrset/generator_factory.h"

namespace subsim {
namespace {

struct SweepCase {
  std::string graph_shape;   // "er" | "ba" | "plc" | "ws"
  WeightModel weight_model;
  GeneratorKind generator;
};

std::string CaseName(const SweepCase& c) {
  std::string name = c.graph_shape;
  name += "_";
  name += WeightModelName(c.weight_model);
  name += "_";
  name += GeneratorKindName(c.generator);
  for (char& ch : name) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) {
      ch = '_';
    }
  }
  return name;
}

std::vector<SweepCase> SweepCases() {
  std::vector<SweepCase> cases;
  const WeightModel models[] = {
      WeightModel::kWeightedCascade, WeightModel::kUniformIc,
      WeightModel::kWcVariant,       WeightModel::kExponential,
      WeightModel::kWeibull,         WeightModel::kTrivalency,
  };
  for (const char* shape : {"er", "ba", "plc", "ws"}) {
    for (WeightModel model : models) {
      cases.push_back({shape, model, GeneratorKind::kVanillaIc});
      cases.push_back({shape, model, GeneratorKind::kSubsimIc});
    }
    // LT requires per-node weight sums <= 1: WC qualifies.
    cases.push_back({shape, WeightModel::kWeightedCascade,
                     GeneratorKind::kLt});
  }
  return cases;
}

Graph BuildSweepGraph(const SweepCase& c, std::uint64_t seed) {
  Result<EdgeList> list = Status::Internal("unset");
  if (c.graph_shape == "er") {
    list = GenerateErdosRenyi(300, 2400, seed);
  } else if (c.graph_shape == "ba") {
    list = GenerateBarabasiAlbert(300, 4, /*undirected=*/true, seed);
  } else if (c.graph_shape == "plc") {
    list = GeneratePowerLawConfiguration(300, 2.1, 60, 8.0, seed);
  } else {
    list = GenerateWattsStrogatz(300, 3, 0.2, seed);
  }
  EXPECT_TRUE(list.ok());
  WeightModelParams params;
  params.seed = seed;
  params.uniform_p = 0.05;
  params.wc_variant_theta = 1.5;
  EXPECT_TRUE(AssignWeights(c.weight_model, params, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

class RrSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RrSweepTest, GenerationInvariants) {
  const Graph graph = BuildSweepGraph(GetParam(), 42);
  auto generator = MakeRrGenerator(GetParam().generator, graph);
  ASSERT_TRUE(generator.ok()) << generator.status().ToString();

  Rng rng(1);
  std::vector<NodeId> out;
  std::uint64_t total = 0;
  for (int i = 0; i < 300; ++i) {
    const bool hit = (*generator)->Generate(rng, &out);
    EXPECT_FALSE(hit);
    ASSERT_GE(out.size(), 1u);
    total += out.size();
    const std::set<NodeId> unique(out.begin(), out.end());
    EXPECT_EQ(unique.size(), out.size()) << "duplicate node in RR set";
    for (NodeId v : out) {
      EXPECT_LT(v, graph.num_nodes());
    }
  }
  EXPECT_EQ((*generator)->stats().sets_generated, 300u);
  EXPECT_EQ((*generator)->stats().nodes_added, total);
}

TEST_P(RrSweepTest, DeterministicGivenSeed) {
  const Graph graph = BuildSweepGraph(GetParam(), 42);
  auto generator_a = MakeRrGenerator(GetParam().generator, graph);
  auto generator_b = MakeRrGenerator(GetParam().generator, graph);
  ASSERT_TRUE(generator_a.ok());
  ASSERT_TRUE(generator_b.ok());
  Rng rng_a(7);
  Rng rng_b(7);
  std::vector<NodeId> out_a;
  std::vector<NodeId> out_b;
  for (int i = 0; i < 100; ++i) {
    (*generator_a)->Generate(rng_a, &out_a);
    (*generator_b)->Generate(rng_b, &out_b);
    EXPECT_EQ(out_a, out_b) << "iteration " << i;
  }
}

TEST_P(RrSweepTest, SentinelTruncationNeverGrowsSets) {
  const Graph graph = BuildSweepGraph(GetParam(), 42);
  auto generator = MakeRrGenerator(GetParam().generator, graph);
  ASSERT_TRUE(generator.ok());

  // Sets generated with sentinels are prefixes of what the same RNG stream
  // would have produced without; statistically their mean size must not
  // exceed the unrestricted mean.
  auto mean_size = [&](bool with_sentinels) {
    if (with_sentinels) {
      std::vector<NodeId> sentinels;
      for (NodeId v = 0; v < graph.num_nodes(); v += 7) {
        sentinels.push_back(v);
      }
      (*generator)->SetSentinels(sentinels);
    } else {
      (*generator)->SetSentinels({});
    }
    Rng rng(11);
    std::vector<NodeId> out;
    std::uint64_t total = 0;
    for (int i = 0; i < 500; ++i) {
      (*generator)->Generate(rng, &out);
      total += out.size();
    }
    return static_cast<double>(total) / 500.0;
  };

  const double plain = mean_size(false);
  const double truncated = mean_size(true);
  EXPECT_LE(truncated, plain + 0.5);
}

TEST_P(RrSweepTest, GreedyMatchesExhaustiveTopPairCoverage) {
  // Greedy coverage with k = 2 must reach >= (1 - 1/e) of the best pair's
  // coverage (it actually achieves >= 3/4 for k = 2, but we assert the
  // theorem's bound). Exhaustive search over all pairs is feasible at
  // n = 300.
  const Graph graph = BuildSweepGraph(GetParam(), 42);
  auto generator = MakeRrGenerator(GetParam().generator, graph);
  ASSERT_TRUE(generator.ok());

  RrCollection collection(graph.num_nodes());
  Rng rng(13);
  (*generator)->Fill(rng, 400, &collection);

  CoverageGreedyOptions options;
  options.k = 2;
  const CoverageGreedyResult greedy = RunCoverageGreedy(collection, options);

  std::uint64_t best_pair = 0;
  const NodeId n = graph.num_nodes();
  // Candidate pruning: only nodes appearing in some RR set matter.
  std::vector<NodeId> candidates;
  for (NodeId v = 0; v < n; ++v) {
    if (!collection.SetsContaining(v).empty()) {
      candidates.push_back(v);
    }
  }
  std::vector<std::uint8_t> covered(collection.num_sets());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (std::size_t j = i + 1; j < candidates.size(); ++j) {
      const NodeId pair[2] = {candidates[i], candidates[j]};
      const std::uint64_t coverage = ComputeCoverage(collection, pair);
      best_pair = std::max(best_pair, coverage);
    }
  }
  (void)covered;
  EXPECT_GE(static_cast<double>(greedy.total_coverage()),
            (1.0 - 1.0 / 2.718281828) * static_cast<double>(best_pair) - 1e-9)
      << "greedy " << greedy.total_coverage() << " vs best pair "
      << best_pair;
}

INSTANTIATE_TEST_SUITE_P(Matrix, RrSweepTest,
                         ::testing::ValuesIn(SweepCases()),
                         [](const auto& info) { return CaseName(info.param); });

class BoundOrderingTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BoundOrderingTest, LowerEstimateUpperAreOrdered) {
  // For any coverage count and sample size, Eq (1) <= unbiased estimate
  // and the Eq (2) value at the same coverage >= the estimate.
  const auto [coverage_scale, theta_scale] = GetParam();
  const std::uint64_t theta = 100ull * theta_scale;
  const std::uint64_t coverage =
      std::min<std::uint64_t>(theta, 7ull * coverage_scale * theta_scale);
  const NodeId n = 100000;
  for (double delta : {0.5, 0.1, 1e-3, 1e-9}) {
    const double estimate = static_cast<double>(coverage) * n /
                            static_cast<double>(theta);
    EXPECT_LE(OpimLowerBound(coverage, theta, n, delta), estimate + 1e-9);
    EXPECT_GE(OpimUpperBound(static_cast<double>(coverage), theta, n, delta),
              estimate - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, BoundOrderingTest,
                         ::testing::Combine(::testing::Values(1, 3, 10),
                                            ::testing::Values(1, 8, 64,
                                                              512)));

}  // namespace
}  // namespace subsim
