// End-to-end guarantees: on tiny graphs where the optimum is computable
// exactly, every algorithm's seed set must achieve the certified
// (1 - 1/e - eps) fraction of OPT; across the full pipeline (generate ->
// weight -> IM -> evaluate) results must be consistent.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "subsim/algo/registry.h"
#include "subsim/eval/exact_spread.h"
#include "subsim/eval/spread_estimator.h"
#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/graph_io.h"
#include "subsim/graph/weight_models.h"
#include "subsim/util/math.h"

namespace subsim {
namespace {

/// A 9-node, 12-edge graph, small enough for exact OPT via enumeration yet
/// with real structure (two hubs, a chain, an isolated pocket).
Graph TinyBenchmarkGraph() {
  EdgeList list;
  list.num_nodes = 9;
  list.edges = {{0, 1, 0.8}, {0, 2, 0.8}, {0, 3, 0.4}, {4, 3, 0.6},
                {4, 5, 0.7}, {4, 6, 0.3}, {1, 7, 0.5}, {5, 7, 0.2},
                {7, 8, 0.9}, {2, 8, 0.1}, {3, 6, 0.5}, {8, 6, 0.2}};
  Result<Graph> graph = BuildGraph(std::move(list));
  EXPECT_TRUE(graph.ok());
  return std::move(graph).value();
}

class ApproximationGuaranteeTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ApproximationGuaranteeTest, SeedsAchieveCertifiedFractionOfOpt) {
  const Graph graph = TinyBenchmarkGraph();
  const std::uint32_t k = 2;
  const double eps = 0.2;

  const Result<ExactOptimum> optimum = ExactOptimalSeedSetIc(graph, k);
  ASSERT_TRUE(optimum.ok());
  ASSERT_GT(optimum->spread, 0.0);

  const auto algorithm = MakeImAlgorithm(GetParam());
  ASSERT_TRUE(algorithm.ok());
  ImOptions options;
  options.k = k;
  options.epsilon = eps;
  options.delta = 0.01;

  // The guarantee is probabilistic (1 - delta); verify across seeds and
  // require every run to clear the bound (failure probability per run is
  // far below 1% on this instance since the sample sizes are conservative).
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    options.rng_seed = seed;
    const Result<ImResult> result = (*algorithm)->Run(graph, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const Result<double> spread = ExactSpreadIc(graph, result->seeds);
    ASSERT_TRUE(spread.ok());
    EXPECT_GE(*spread, (kOneMinusInvE - eps) * optimum->spread - 1e-9)
        << GetParam() << " seed " << seed << ": spread " << *spread
        << " vs OPT " << optimum->spread;
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ApproximationGuaranteeTest,
                         ::testing::Values("imm", "tim+", "opim-c", "ssa", "hist",
                                           "celf-mc"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

TEST(EndToEndTest, FileToSeedsPipeline) {
  // Write an edge list, read it back, weight it, select seeds, evaluate.
  const std::string path = testing::TempDir() + "/pipeline.txt";
  {
    Result<EdgeList> list = GenerateBarabasiAlbert(400, 3, false, 13);
    ASSERT_TRUE(list.ok());
    ASSERT_TRUE(WriteEdgeListText(*list, path).ok());
  }
  Result<EdgeList> loaded = ReadEdgeListText(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &loaded.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(loaded).value());
  ASSERT_TRUE(graph.ok());

  const auto algorithm = MakeImAlgorithm("opim-c");
  ASSERT_TRUE(algorithm.ok());
  ImOptions options;
  options.k = 5;
  options.epsilon = 0.25;
  options.rng_seed = 21;
  const Result<ImResult> result = (*algorithm)->Run(*graph, options);
  ASSERT_TRUE(result.ok());

  SpreadEstimator estimator(*graph, CascadeModel::kIndependentCascade);
  Rng rng(22);
  const double spread = estimator.Estimate(result->seeds, 5000, rng).spread;
  EXPECT_GE(spread, 5.0);  // at least the seeds themselves
  // Estimated spread from RR coverage should agree with forward MC.
  EXPECT_NEAR(result->estimated_spread, spread,
              0.25 * spread + 5.0);
}

TEST(EndToEndTest, GreedyBeatsRandomSeeds) {
  Result<EdgeList> list = GenerateBarabasiAlbert(800, 4, false, 31);
  ASSERT_TRUE(list.ok());
  ASSERT_TRUE(
      AssignWeights(WeightModel::kWeightedCascade, {}, &list.value()).ok());
  Result<Graph> graph = BuildGraph(std::move(list).value());
  ASSERT_TRUE(graph.ok());

  const auto algorithm = MakeImAlgorithm("opim-c");
  ASSERT_TRUE(algorithm.ok());
  ImOptions options;
  options.k = 10;
  options.epsilon = 0.2;
  options.rng_seed = 41;
  const Result<ImResult> result = (*algorithm)->Run(*graph, options);
  ASSERT_TRUE(result.ok());

  std::vector<NodeId> random_seeds;
  Rng pick(77);
  while (random_seeds.size() < 10) {
    const NodeId v = static_cast<NodeId>(pick.UniformInt(graph->num_nodes()));
    if (std::find(random_seeds.begin(), random_seeds.end(), v) ==
        random_seeds.end()) {
      random_seeds.push_back(v);
    }
  }

  SpreadEstimator estimator(*graph, CascadeModel::kIndependentCascade);
  Rng rng(51);
  const double greedy_spread =
      estimator.Estimate(result->seeds, 5000, rng).spread;
  const double random_spread =
      estimator.Estimate(random_seeds, 5000, rng).spread;
  EXPECT_GT(greedy_spread, 1.3 * random_spread);
}

TEST(EndToEndTest, AllAlgorithmsAgreeOnEasyInstance) {
  // On a star-dominated graph every algorithm must find the dominant hub.
  EdgeList list = MakeStar(50);
  for (Edge& e : list.edges) {
    e.weight = 0.9;
  }
  Result<Graph> graph = BuildGraph(std::move(list));
  ASSERT_TRUE(graph.ok());

  for (const char* name : {"imm", "tim+", "opim-c", "ssa", "hist"}) {
    const auto algorithm = MakeImAlgorithm(name);
    ASSERT_TRUE(algorithm.ok());
    ImOptions options;
    options.k = 1;
    options.epsilon = 0.3;
    options.rng_seed = 61;
    const Result<ImResult> result = (*algorithm)->Run(*graph, options);
    ASSERT_TRUE(result.ok()) << name;
    ASSERT_EQ(result->seeds.size(), 1u) << name;
    EXPECT_EQ(result->seeds[0], 0u) << name << " missed the hub";
  }
}

}  // namespace
}  // namespace subsim
