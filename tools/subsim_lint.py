#!/usr/bin/env python3
"""subsim_lint: repo-specific invariant linter for the subsim C++ tree.

Enforces rules that clang-tidy cannot express because they encode *this*
repository's architecture:

  status-discarded     Every call to a function returning Status/Result must
                       consume the result (assign it, test it, return it, or
                       explicitly discard with a (void) cast). A dropped
                       Status is a silently ignored error.
  raw-random           No std::rand / srand / std::random_device outside
                       src/subsim/random/. All randomness must flow through
                       explicitly seeded subsim::Rng instances so every run
                       is reproducible from a single 64-bit seed.
  raw-thread           No std::thread / std::jthread / <thread> outside
                       rrset/parallel_fill.cc and serve/query_engine.cc.
                       Thread management is centralized (the fill fan-out
                       and the serving worker pool) so TSan coverage and
                       determinism arguments stay local to two translation
                       units.
  raw-socket           No raw socket syscalls or socket headers outside
                       src/subsim/net/. The wire lives behind HttpServer /
                       HttpClient so the fuzzable parser is the only path
                       from bytes to requests, IO timeouts and admission
                       control cannot be bypassed, and tests/benches drive
                       the stack through the same doorway production does.
  iostream-logging     No std::cout / std::cerr / printf-family output
                       outside util/logging and util/check.h. Ad-hoc stderr
                       writes bypass the log-level filter and interleave
                       badly under concurrency.
  ad-hoc-timer         No WallTimer inside src/subsim/{algo,rrset,serve}.
                       Timing in instrumented layers flows through
                       PhaseScope (src/subsim/obs/phase_tracer.h) so every
                       measured interval shows up as a traced span; a
                       null-tracer PhaseScope is still a plain stopwatch.
  fill-entry-point     No direct ParallelFill or Rng::Fork calls outside
                       src/subsim/random/ and src/subsim/rrset/. RR-set
                       bulk generation has exactly one entry point —
                       FillCollection(FillRequest) — whose counter-based
                       substreams keep results thread-count invariant;
                       ad-hoc forked streams would silently break that
                       contract.
  rr-span-access       No direct `.Set(` span access on RrCollection /
                       RrCollectionView handles outside src/subsim/rrset/.
                       The arena may be delta-varint encoded, so there is
                       no contiguous NodeId span to hand out; consumers
                       iterate through View(id) and the RrSetView cursor
                       (ForEachNode / Decode), which works for every
                       encoding.
  nolint-needs-reason  A subsim NOLINT suppression must carry a reason:
                       `// SUBSIM-NOLINT(<rule>): <why>`.

Usage:
  tools/subsim_lint.py <path>...        lint files or directories
  tools/subsim_lint.py --self-test      run against tools/lint_fixtures/

Suppression: append `// SUBSIM-NOLINT(<rule>): <reason>` to the offending
line. Suppressions without a reason are themselves findings.

Exit status: 0 when clean, 1 when findings were reported, 2 on usage error.
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import re
import sys

CXX_SUFFIXES = {".cc", ".cpp", ".cxx", ".h", ".hpp"}

# Paths (matched against POSIX-style path suffixes) exempt from each rule.
RAW_RANDOM_ALLOWED = ("src/subsim/random/",)
RAW_THREAD_ALLOWED = (
    "rrset/parallel_fill.cc",
    "serve/query_engine.cc",
    "util/threading.cc",  # the hardware_concurrency fallback helper
    "net/http_server.cc",  # acceptor + worker pool (the serving frontend)
    "net/http_server.h",
)
RAW_SOCKET_ALLOWED = ("src/subsim/net/",)
FILL_ENTRY_ALLOWED = (
    "src/subsim/random/",
    "src/subsim/rrset/",
    "tests/random/",
)
RR_SPAN_ALLOWED = ("src/subsim/rrset/",)
IOSTREAM_ALLOWED = ("util/logging.h", "util/logging.cc", "util/check.h")

# Inverse of the lists above: ad-hoc-timer fires only *inside* these paths
# (instrumented layers where PhaseScope is the sanctioned stopwatch).
AD_HOC_TIMER_FORBIDDEN = (
    "src/subsim/algo/",
    "src/subsim/rrset/",
    "src/subsim/serve/",
    "tools/lint_fixtures/",
)

NOLINT_RE = re.compile(
    r"SUBSIM-NOLINT\((?P<rules>[\w,\- ]+)\)(?::\s*(?P<reason>\S[^\n]*))?")
NOLINT_NEXTLINE_RE = re.compile(
    r"SUBSIM-NOLINT-NEXTLINE\((?P<rules>[\w,\- ]+)\)"
    r"(?::\s*(?P<reason>\S[^\n]*))?")

# Function declarations returning Status or Result<...>, e.g.
#   Status WriteEdgeListText(...)
#   [[nodiscard]] Result<EdgeList> ReadEdgeListText(...)
DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?(?:static\s+|inline\s+|virtual\s+)*"
    r"(?:::)?(?:subsim::)?(?:Status|Result<[\w:<>,\s*&]+>)\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*\(",
    re.MULTILINE,
)

# Same-name declarations with a different return type (e.g. void Build vs
# Result<Graph> Build). Matching is name-based and file-blind, so ambiguous
# names are dropped from enforcement rather than risking false positives.
NON_STATUS_DECL_RE = re.compile(
    r"^\s*(?:static\s+|inline\s+|virtual\s+|constexpr\s+|explicit\s+)*"
    r"(?:void|bool|int|unsigned|float|double|std::size_t|size_t)\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*\(",
    re.MULTILINE,
)

# A discarded call statement: `Foo(...)` or `obj.Foo(...)` / `ptr->Foo(...)`
# / `ns::Foo(...)` appearing at the start of a statement.
CALL_HEAD_RE = re.compile(
    r"^(?:[A-Za-z_]\w*(?:\s*(?:::|\.|->)\s*))*(?P<name>[A-Za-z_]\w*)\s*\("
)

STMT_KEYWORDS = {
    "return", "co_return", "if", "else", "while", "for", "do", "switch",
    "case", "goto", "new", "delete", "throw", "using", "namespace",
    "template", "typedef", "static_assert", "sizeof",
}

RAW_RANDOM_RE = re.compile(r"\b(?:std::)?(?:s?rand|random_device)\b")
RAW_THREAD_RE = re.compile(
    r"\bstd::j?thread\b|^[ \t]*#[ \t]*include[ \t]*<thread>", re.MULTILINE
)
# Socket syscalls and the headers that declare them. bind/send/recv are
# deliberately absent (std::bind and generic Send/Recv method names would
# false-positive); any real socket user needs these headers or the
# distinctive calls below, so confinement still holds.
RAW_SOCKET_RE = re.compile(
    r"^[ \t]*#[ \t]*include[ \t]*<(?:sys/socket\.h|netinet/in\.h"
    r"|netinet/tcp\.h|arpa/inet\.h|sys/un\.h|netdb\.h)>"
    r"|(?:::)?\b(?:socket|accept4?|listen|connect|getsockname|getpeername"
    r"|setsockopt|getsockopt|inet_pton|inet_ntop|recvfrom|sendto)\s*\(",
    re.MULTILINE,
)
IOSTREAM_RE = re.compile(
    r"\bstd::(?:cout|cerr|clog)\b"
    r"|^[ \t]*#[ \t]*include[ \t]*<iostream>"
    r"|\b(?:std::)?(?:printf|fprintf|puts|fputs)\s*\(",
    re.MULTILINE,
)
# Any mention of the type is a use: you cannot time with WallTimer without
# naming it. (The include path itself lives in a string literal and is
# blanked before matching, so the type name is the reliable signal.)
AD_HOC_TIMER_RE = re.compile(r"\bWallTimer\b")
# Direct ParallelFill calls (the pre-FillRequest entry point), forked Rng
# streams, and the batched chunk kernel (`BatchRrKernel::GenerateChunk` is
# the fill's internal engine, not a public sampling API): all bypass the
# counter-based substream scheme FillCollection guarantees.
FILL_ENTRY_RE = re.compile(
    r"\bParallelFill\s*\(|\bParallelFillOptions\b|(?:\.|->|::)\s*Fork\s*\("
    r"|\bBatchRrKernel\b|\bGenerateChunk\s*\(")
# Variables (locals, params, members) declared with an RR-collection type.
# `.Set(` is only flagged on these names, so Gauge::Set / BitVector::Set
# style calls elsewhere in the file never false-positive.
RR_HANDLE_DECL_RE = re.compile(
    r"\bRrCollection(?:View)?\s*[&*]?\s+(?P<name>\w+)\b")
RR_SET_CALL_RE = re.compile(r"\b(?P<name>\w+)\s*(?:\.|->)\s*Set\s*\(")

ALL_RULES = (
    "status-discarded",
    "raw-random",
    "raw-thread",
    "raw-socket",
    "iostream-logging",
    "ad-hoc-timer",
    "fill-entry-point",
    "rr-span-access",
    "nolint-needs-reason",
)


@dataclasses.dataclass(frozen=True)
class Finding:
    path: pathlib.Path
    line: int  # 1-based
    rule: str
    message: str

    def render(self, root: pathlib.Path) -> str:
        try:
            shown = self.path.relative_to(root)
        except ValueError:
            shown = self.path
        return f"{shown}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving layout.

    Newlines inside block comments and raw strings are kept so that offsets
    still map to the original line numbers.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        two = text[i : i + 2]
        if two == "//":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif two == "/*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(c if c == "\n" else " " for c in text[i:j]))
            i = j
        elif ch == '"' and text[max(0, i - 1) : i] == "R":
            # Raw string literal: R"delim( ... )delim"
            m = re.match(r'R"([^(\s]*)\(', text[i - 1 :])
            if m:
                closer = ")" + m.group(1) + '"'
                j = text.find(closer, i + m.end() - 1)
                j = n if j < 0 else j + len(closer)
                out.append("".join(c if c == "\n" else " " for c in text[i:j]))
                i = j
            else:
                out.append(ch)
                i += 1
        elif ch in "\"'":
            j = i + 1
            while j < n and text[j] != ch:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(ch + " " * (j - i - 2) + (ch if j - i >= 2 else ""))
            i = j
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def collect_status_functions(files: list[pathlib.Path]) -> set[str]:
    names: set[str] = set()
    ambiguous: set[str] = set()
    for path in files:
        text = strip_comments_and_strings(read_text(path))
        for m in DECL_RE.finditer(text):
            name = m.group("name")
            if name not in STMT_KEYWORDS and not name.startswith("operator"):
                names.add(name)
        for m in NON_STATUS_DECL_RE.finditer(text):
            ambiguous.add(m.group("name"))
    return names - ambiguous


def read_text(path: pathlib.Path) -> str:
    return path.read_text(encoding="utf-8", errors="replace")


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def allowed(path: pathlib.Path, patterns: tuple[str, ...]) -> bool:
    """True if `path` is exempt: a trailing-slash pattern matches any
    directory component prefix, otherwise the path suffix must match."""
    posix = path.as_posix()
    return any(s in posix if s.endswith("/") else posix.endswith(s)
               for s in patterns)


def iter_statements(code: str):
    """Yields (offset, statement) pairs, splitting on ';' and '{' / '}'.

    Crude but sufficient: statement boundaries inside for(;;) headers and
    initializer lists produce fragments that simply fail the call-head match.
    """
    start = 0
    for i, ch in enumerate(code):
        if ch in ";{}":
            yield start, code[start:i]
            start = i + 1
    yield start, code[start:]


def find_nolint(raw_lines: list[str], lineno: int):
    """Returns (rules, has_reason, marker_line) for a suppression covering
    `lineno`: a SUBSIM-NOLINT on the line itself or a
    SUBSIM-NOLINT-NEXTLINE on the line above."""
    if lineno - 1 < len(raw_lines):
        m = NOLINT_RE.search(raw_lines[lineno - 1])
        # Guard against NOLINT-NEXTLINE also matching the plain-NOLINT regex.
        if m and "SUBSIM-NOLINT-NEXTLINE" not in raw_lines[lineno - 1]:
            rules = {r.strip() for r in m.group("rules").split(",")}
            return rules, m.group("reason") is not None, lineno
    if lineno >= 2:
        m = NOLINT_NEXTLINE_RE.search(raw_lines[lineno - 2])
        if m:
            rules = {r.strip() for r in m.group("rules").split(",")}
            return rules, m.group("reason") is not None, lineno - 1
    return None


def lint_file(
    path: pathlib.Path, status_functions: set[str]
) -> list[Finding]:
    raw = read_text(path)
    raw_lines = raw.splitlines()
    code = strip_comments_and_strings(raw)
    findings: list[Finding] = []

    def report(lineno: int, rule: str, message: str) -> None:
        nolint = find_nolint(raw_lines, lineno)
        if nolint is not None:
            rules, has_reason, marker_line = nolint
            if rule in rules or "*" in rules:
                if not has_reason:
                    findings.append(
                        Finding(path, marker_line, "nolint-needs-reason",
                                "SUBSIM-NOLINT must state a reason: "
                                "`// SUBSIM-NOLINT(rule): <why>`"))
                return
        findings.append(Finding(path, lineno, rule, message))

    # Rule: raw-random.
    if not allowed(path, RAW_RANDOM_ALLOWED):
        for m in RAW_RANDOM_RE.finditer(code):
            report(line_of(code, m.start()), "raw-random",
                   "raw libc/std randomness is forbidden outside "
                   "src/subsim/random/; use an explicitly seeded subsim::Rng")

    # Rule: raw-thread.
    if not allowed(path, RAW_THREAD_ALLOWED):
        for m in RAW_THREAD_RE.finditer(code):
            report(line_of(code, m.start()), "raw-thread",
                   "std::thread is forbidden outside rrset/parallel_fill.cc"
                   " and serve/query_engine.cc; route parallelism through"
                   " FillCollection or the QueryEngine worker pool")

    # Rule: raw-socket.
    if not allowed(path, RAW_SOCKET_ALLOWED):
        for m in RAW_SOCKET_RE.finditer(code):
            report(line_of(code, m.start()), "raw-socket",
                   "raw socket use is forbidden outside src/subsim/net/;"
                   " serve over HttpServer and drive tests/benches through"
                   " HttpClient so the wire stays behind the fuzzable"
                   " parser and the admission layer")

    # Rule: iostream-logging.
    if not allowed(path, IOSTREAM_ALLOWED):
        for m in IOSTREAM_RE.finditer(code):
            report(line_of(code, m.start()), "iostream-logging",
                   "direct console output is forbidden outside util/logging;"
                   " use SUBSIM_LOG(level)")

    # Rule: ad-hoc-timer (note the inverted path logic: the rule applies
    # only inside the instrumented layers).
    if allowed(path, AD_HOC_TIMER_FORBIDDEN):
        for m in AD_HOC_TIMER_RE.finditer(code):
            report(line_of(code, m.start()), "ad-hoc-timer",
                   "WallTimer is forbidden in src/subsim/{algo,rrset,serve};"
                   " time phases with PhaseScope (subsim/obs/phase_tracer.h)"
                   " so the interval is traced as a span")

    # Rule: fill-entry-point.
    if not allowed(path, FILL_ENTRY_ALLOWED):
        for m in FILL_ENTRY_RE.finditer(code):
            report(line_of(code, m.start()), "fill-entry-point",
                   "bulk RR generation must go through FillCollection"
                   "(FillRequest); direct ParallelFill/Rng::Fork use breaks"
                   " the thread-count-invariance contract")

    # Rule: rr-span-access. Only names declared with an RR-collection type
    # in this file are checked, so unrelated Set() methods stay clean.
    if not allowed(path, RR_SPAN_ALLOWED):
        rr_handles = {m.group("name")
                      for m in RR_HANDLE_DECL_RE.finditer(code)}
        if rr_handles:
            for m in RR_SET_CALL_RE.finditer(code):
                if m.group("name") in rr_handles:
                    report(line_of(code, m.start()), "rr-span-access",
                           "direct RR-set span access is forbidden outside"
                           " src/subsim/rrset/ (the arena may be"
                           " delta-varint encoded); iterate via View(id)"
                           " and RrSetView::ForEachNode/Decode")

    # Rule: status-discarded.
    for offset, stmt in iter_statements(code):
        body = stmt.strip()
        if not body or "=" in body.split("(", 1)[0]:
            continue
        m = CALL_HEAD_RE.match(body)
        if not m:
            continue
        first_token = re.match(r"[A-Za-z_]\w*", body)
        if first_token and first_token.group(0) in STMT_KEYWORDS:
            continue
        name = m.group("name")
        if name in status_functions:
            body_start = offset + len(stmt) - len(stmt.lstrip())
            lineno = line_of(code, body_start + m.start("name"))
            report(lineno, "status-discarded",
                   f"result of {name}() (Status/Result) is discarded; "
                   "check it, propagate it, or cast to (void) with a "
                   "SUBSIM-NOLINT reason")

    # A NEXTLINE marker shielding a line with several findings would report
    # nolint-needs-reason once per finding; dedupe, preserving order.
    return list(dict.fromkeys(findings))


def gather_files(paths: list[pathlib.Path]) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for p in paths:
        if p.is_dir():
            files.extend(
                sorted(q for q in p.rglob("*") if q.suffix in CXX_SUFFIXES))
        elif p.suffix in CXX_SUFFIXES:
            files.append(p)
    return files


def run_lint(paths: list[pathlib.Path], root: pathlib.Path) -> int:
    files = gather_files(paths)
    if not files:
        print(f"subsim_lint: no C++ sources under {paths}", file=sys.stderr)
        return 2
    status_functions = collect_status_functions(files)
    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(f, status_functions))
    for finding in findings:
        print(finding.render(root))
    if findings:
        print(f"subsim_lint: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"subsim_lint: OK ({len(files)} files clean)")
    return 0


EXPECT_RE = re.compile(r"LINT-EXPECT:\s*(?P<rules>[\w,\- ]+)")


def run_self_test(fixtures: pathlib.Path, root: pathlib.Path) -> int:
    """Lints the fixture corpus and diffs findings against LINT-EXPECT marks.

    Every line carrying `// LINT-EXPECT: <rule>[, <rule>...]` must produce
    exactly those findings; any unexpected or missing finding fails. Each
    rule must be exercised by at least one fixture so the corpus cannot rot.
    """
    # The analyze/ subtree belongs to subsim_analyze.py (ANALYZE-EXPECT
    # markers, different rule set); its seeded violations would read as
    # false positives here.
    files = [f for f in gather_files([fixtures])
             if "analyze" not in f.parts]
    if not files:
        print(f"subsim_lint: no fixtures under {fixtures}", file=sys.stderr)
        return 2
    status_functions = collect_status_functions(files)

    expected: set[tuple[str, int, str]] = set()
    for f in files:
        for lineno, line in enumerate(read_text(f).splitlines(), start=1):
            m = EXPECT_RE.search(line)
            if m:
                for rule in m.group("rules").split(","):
                    rule = rule.strip()
                    if rule not in ALL_RULES:
                        print(f"{f}:{lineno}: unknown rule in LINT-EXPECT: "
                              f"{rule}", file=sys.stderr)
                        return 2
                    expected.add((f.as_posix(), lineno, rule))

    actual: set[tuple[str, int, str]] = set()
    for f in files:
        for finding in lint_file(f, status_functions):
            actual.add((finding.path.as_posix(), finding.line, finding.rule))

    missing = expected - actual
    unexpected = actual - expected
    for path, lineno, rule in sorted(missing):
        print(f"SELF-TEST MISS {path}:{lineno}: expected [{rule}]")
    for path, lineno, rule in sorted(unexpected):
        print(f"SELF-TEST FALSE-POSITIVE {path}:{lineno}: [{rule}]")

    covered = {rule for _, _, rule in expected}
    uncovered = [r for r in ALL_RULES if r not in covered]
    for rule in uncovered:
        print(f"SELF-TEST GAP: no fixture exercises [{rule}]")

    if missing or unexpected or uncovered:
        return 1
    print(f"subsim_lint self-test: OK ({len(expected)} seeded violations "
          f"across {len(files)} fixtures, all {len(ALL_RULES)} rules)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="subsim_lint.py",
        description="subsim repo-specific invariant linter")
    parser.add_argument("paths", nargs="*", type=pathlib.Path,
                        help="files or directories to lint")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the linter against tools/lint_fixtures/")
    args = parser.parse_args(argv)

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    if args.self_test:
        return run_self_test(repo_root / "tools" / "lint_fixtures", repo_root)
    if not args.paths:
        parser.print_usage(sys.stderr)
        return 2
    return run_lint([p.resolve() for p in args.paths], repo_root)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
