// subsim command-line tool: generate graphs, assign weights, run influence
// maximization, evaluate seed sets, and calibrate influence levels without
// writing any C++.
//
// Subcommands:
//   generate  --type=ba|er|plc|ws --nodes=N [--degree=D] [--undirected]
//             [--seed=S] --out=FILE
//   weight    --in=FILE --model=wc|uniform|wc-variant|exponential|weibull|
//             trivalency|lt [--p=P] [--theta=T] [--seed=S] --out=FILE
//   stats     --in=FILE
//   run       --in=FILE --algo=imm|opim-c|ssa|hist|celf-mc [--k=K]
//             [--eps=E] [--generator=vanilla|subsim|lt] [--seed=S]
//             [--threads=N] [--kernel=auto|scalar|batched]
//             [--rr-encoding=raw|delta] [--approx-coverage]
//             [--evaluate[=SIMS]] [--metrics-json=FILE]
//   calibrate --in=FILE --model=wc-variant|uniform --target=AVG [--seed=S]
//   batch     --graph=NAME=FILE [--graph=...] [--in=QUERIES|-]
//             [--workers=N] [--threads=N] [--cache-mb=M]
//   serve     [--graph=NAME=FILE ...] [--workers=N] [--threads=N]
//             [--cache-mb=M] [--port=P [--bind=ADDR] [--http-workers=N]
//             [--max-pending=N]]
//   update    --port=P [--host=ADDR] --in=BATCH|-
//
// Files are whitespace-separated edge lists ("src dst [weight]"); lines
// starting with '#' or '%' are comments. `weight` writes the third column.
//
// `batch` executes one query per input line concurrently on a worker pool
// (see src/subsim/serve/query.h for the line grammar) and prints one JSON
// result line per query, in input order. `serve` without --port is a
// long-lived REPL over stdin/stdout speaking the same query lines plus
// `load NAME FILE`, `update FILE`, `unload NAME`, `graphs`, `stats`, and
// `quit`; with --port it runs the HTTP/1.1 front end instead
// (POST /v1/select_seeds, POST /v1/update_graph, POST /v1/remove_graph,
// GET /healthz, GET /metricsz — docs/serving.md), printing one
// {"listening":...,"port":N} line to stdout so scripts can discover an
// ephemeral --port=0. Both share RR sketches between queries through the
// serving cache.
//
// `update` posts an edge-update batch file (header `graph=NAME
// [expect_version=V]`, then `insert SRC DST W` / `delete SRC DST` /
// `weight SRC DST W` lines — docs/serving.md) to a running HTTP server;
// the server publishes a new snapshot version and incrementally repairs
// its warm RR sketches.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "subsim/algo/registry.h"
#include "subsim/benchsup/calibration.h"
#include "subsim/net/http_client.h"
#include "subsim/net/http_server.h"
#include "subsim/net/serve_app.h"
#include "subsim/eval/spread_estimator.h"
#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/graph_update.h"
#include "subsim/graph/graph_io.h"
#include "subsim/graph/graph_stats.h"
#include "subsim/graph/weight_models.h"
#include "subsim/obs/metrics.h"
#include "subsim/obs/obs_json.h"
#include "subsim/obs/phase_tracer.h"
#include "subsim/rrset/parallel_fill.h"
#include "subsim/rrset/rr_encoding.h"
#include "subsim/serve/graph_registry.h"
#include "subsim/serve/query.h"
#include "subsim/serve/query_engine.h"
#include "subsim/util/string_util.h"

namespace subsim {
namespace {

/// Parsed "--key=value" flags (value "true" for bare "--key").
class Flags {
 public:
  static Result<Flags> Parse(int argc, char** argv, int first) {
    Flags flags;
    for (int i = first; i < argc; ++i) {
      const std::string_view arg(argv[i]);
      if (!StartsWith(arg, "--")) {
        return Status::InvalidArgument("expected --flag, got " +
                                       std::string(arg));
      }
      const std::size_t eq = arg.find('=');
      if (eq == std::string_view::npos) {
        flags.values_.emplace_back(std::string(arg.substr(2)), "true");
      } else {
        flags.values_.emplace_back(std::string(arg.substr(2, eq - 2)),
                                   std::string(arg.substr(eq + 1)));
      }
    }
    return flags;
  }

  /// Last occurrence wins, matching common CLI conventions; `GetAll` is for
  /// genuinely repeatable flags (--graph).
  std::string Get(const std::string& key, const std::string& fallback) const {
    std::string value = fallback;
    for (const auto& [k, v] : values_) {
      if (k == key) {
        value = v;
      }
    }
    return value;
  }
  std::vector<std::string> GetAll(const std::string& key) const {
    std::vector<std::string> all;
    for (const auto& [k, v] : values_) {
      if (k == key) {
        all.push_back(v);
      }
    }
    return all;
  }
  bool Has(const std::string& key) const {
    for (const auto& [k, v] : values_) {
      if (k == key) {
        return true;
      }
    }
    return false;
  }

  Result<std::uint64_t> GetUint(const std::string& key,
                                std::uint64_t fallback) const {
    if (!Has(key)) {
      return fallback;
    }
    std::uint64_t value = 0;
    if (!ParseUint64(Get(key, ""), &value)) {
      return Status::InvalidArgument("--" + key + " must be an integer");
    }
    return value;
  }

  Result<double> GetDouble(const std::string& key, double fallback) const {
    if (!Has(key)) {
      return fallback;
    }
    double value = 0;
    if (!ParseDouble(Get(key, ""), &value)) {
      return Status::InvalidArgument("--" + key + " must be a number");
    }
    return value;
  }

 private:
  std::vector<std::pair<std::string, std::string>> values_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdGenerate(const Flags& flags) {
  const std::string type = flags.Get("type", "ba");
  const std::string out = flags.Get("out", "");
  if (out.empty()) {
    return Fail(Status::InvalidArgument("generate requires --out=FILE"));
  }
  const auto nodes = flags.GetUint("nodes", 10000);
  const auto degree = flags.GetUint("degree", 8);
  const auto seed = flags.GetUint("seed", 1);
  if (!nodes.ok() || !degree.ok() || !seed.ok()) {
    return Fail(!nodes.ok() ? nodes.status()
                            : !degree.ok() ? degree.status() : seed.status());
  }
  const NodeId n = static_cast<NodeId>(*nodes);
  const bool undirected = flags.Has("undirected");

  Result<EdgeList> list = Status::InvalidArgument(
      "unknown --type (expected ba | er | plc | ws)");
  if (type == "ba") {
    list = GenerateBarabasiAlbert(
        n, static_cast<NodeId>(std::max<std::uint64_t>(1, *degree / 2)),
        undirected, *seed);
  } else if (type == "er") {
    list = GenerateErdosRenyi(n, *degree * static_cast<EdgeIndex>(n), *seed);
  } else if (type == "plc") {
    list = GeneratePowerLawConfiguration(n, 2.1, n / 10,
                                         static_cast<double>(*degree), *seed);
  } else if (type == "ws") {
    list = GenerateWattsStrogatz(
        n, static_cast<NodeId>(std::max<std::uint64_t>(1, *degree / 4)), 0.1,
        *seed);
  }
  if (!list.ok()) {
    return Fail(list.status());
  }
  if (const Status status = WriteEdgeListText(*list, out); !status.ok()) {
    return Fail(status);
  }
  std::printf("wrote %s: %u nodes, %zu edges\n", out.c_str(),
              list->num_nodes, list->edges.size());
  return 0;
}

int CmdWeight(const Flags& flags) {
  const std::string in = flags.Get("in", "");
  const std::string out = flags.Get("out", "");
  if (in.empty() || out.empty()) {
    return Fail(Status::InvalidArgument("weight requires --in and --out"));
  }
  const auto model = ParseWeightModel(flags.Get("model", "wc"));
  if (!model.ok()) {
    return Fail(model.status());
  }
  auto list = ReadEdgeListText(in);
  if (!list.ok()) {
    return Fail(list.status());
  }
  WeightModelParams params;
  const auto p = flags.GetDouble("p", params.uniform_p);
  const auto theta = flags.GetDouble("theta", params.wc_variant_theta);
  const auto seed = flags.GetUint("seed", params.seed);
  if (!p.ok() || !theta.ok() || !seed.ok()) {
    return Fail(!p.ok() ? p.status()
                        : !theta.ok() ? theta.status() : seed.status());
  }
  params.uniform_p = *p;
  params.wc_variant_theta = *theta;
  params.seed = *seed;
  if (const Status status = AssignWeights(*model, params, &list.value());
      !status.ok()) {
    return Fail(status);
  }
  if (const Status status = WriteEdgeListText(*list, out); !status.ok()) {
    return Fail(status);
  }
  std::printf("wrote %s with %s weights\n", out.c_str(),
              WeightModelName(*model));
  return 0;
}

int CmdStats(const Flags& flags) {
  const std::string in = flags.Get("in", "");
  if (in.empty()) {
    return Fail(Status::InvalidArgument("stats requires --in=FILE"));
  }
  auto list = ReadEdgeListText(in);
  if (!list.ok()) {
    return Fail(list.status());
  }
  auto graph = BuildGraph(std::move(list).value());
  if (!graph.ok()) {
    return Fail(graph.status());
  }
  std::printf("%s\n", ComputeGraphStats(*graph).ToString().c_str());
  return 0;
}

int CmdRun(const Flags& flags) {
  const std::string in = flags.Get("in", "");
  if (in.empty()) {
    return Fail(Status::InvalidArgument("run requires --in=FILE"));
  }
  auto list = ReadEdgeListText(in);
  if (!list.ok()) {
    return Fail(list.status());
  }
  auto graph = BuildGraph(std::move(list).value());
  if (!graph.ok()) {
    return Fail(graph.status());
  }

  const auto algorithm = MakeImAlgorithm(flags.Get("algo", "opim-c"));
  if (!algorithm.ok()) {
    return Fail(algorithm.status());
  }
  const auto generator = ParseGeneratorKind(flags.Get("generator", "subsim"));
  if (!generator.ok()) {
    return Fail(generator.status());
  }
  // Kernel choice never changes the selected seeds (streams are
  // byte-identical); the flag exists for A/B timing against the scalar
  // reference path.
  const auto kernel = ParseFillKernel(flags.Get("kernel", "auto"));
  if (!kernel.ok()) {
    return Fail(kernel.status());
  }
  // Storage encoding never changes the selected seeds either — delta just
  // shrinks the resident arena (docs/memory.md).
  const auto encoding = ParseRrEncoding(flags.Get("rr-encoding", "raw"));
  if (!encoding.ok()) {
    return Fail(encoding.status());
  }
  ImOptions options;
  const auto k = flags.GetUint("k", 50);
  const auto eps = flags.GetDouble("eps", 0.1);
  const auto seed = flags.GetUint("seed", 1);
  // 0 = one fill worker per hardware thread. The sample stream is
  // thread-count invariant, so any value selects the same seeds.
  const auto threads = flags.GetUint("threads", 0);
  if (!k.ok() || !eps.ok() || !seed.ok() || !threads.ok()) {
    return Fail(!k.ok() ? k.status()
                        : !eps.ok() ? eps.status()
                                    : !seed.ok() ? seed.status()
                                                 : threads.status());
  }
  options.k = static_cast<std::uint32_t>(*k);
  options.epsilon = *eps;
  options.rng_seed = *seed;
  options.generator = *generator;
  options.num_threads = static_cast<unsigned>(*threads);
  options.fill_kernel = *kernel;
  options.rr_encoding = *encoding;
  options.approx_coverage = flags.Has("approx-coverage");

  // Observability is opt-in: without --metrics-json the run carries no
  // registry and the instrumentation handles stay no-ops.
  const std::string metrics_path = flags.Get("metrics-json", "");
  MetricsRegistry metrics;
  PhaseTracer tracer(/*max_spans=*/4096, &metrics);
  if (!metrics_path.empty()) {
    options.obs = ObsContext{&metrics, &tracer};
  }

  const auto result = (*algorithm)->Run(*graph, options);
  if (!result.ok()) {
    return Fail(result.status());
  }

  if (!metrics_path.empty()) {
    const std::string json = ObsJson(metrics.Snapshot(), &tracer);
    std::FILE* out = std::fopen(metrics_path.c_str(), "w");
    if (out == nullptr) {
      return Fail(Status::IoError("cannot open " + metrics_path));
    }
    std::fputs(json.c_str(), out);
    std::fclose(out);
    std::printf("metrics: %s\n", metrics_path.c_str());
  }

  std::printf("seeds:");
  for (NodeId v : result->seeds) {
    std::printf(" %u", v);
  }
  std::printf("\ntime: %s   rr_sets: %llu   avg_rr_size: %.1f\n",
              HumanSeconds(result->seconds).c_str(),
              static_cast<unsigned long long>(result->num_rr_sets),
              result->average_rr_size());
  if (result->optimal_upper_bound > 0.0) {
    std::printf("certified: I(S) >= %.1f, OPT <= %.1f (ratio %.3f)\n",
                result->influence_lower_bound, result->optimal_upper_bound,
                result->approx_ratio);
  }
  if (result->sentinel_size > 0) {
    std::printf("sentinels: %u (phase1 %llu RR sets, phase2 %llu)\n",
                result->sentinel_size,
                static_cast<unsigned long long>(result->phase1_rr_sets),
                static_cast<unsigned long long>(result->phase2_rr_sets));
  }

  if (flags.Has("evaluate")) {
    const std::string sims_text = flags.Get("evaluate", "10000");
    std::uint64_t sims = 10000;
    if (sims_text != "true" && !ParseUint64(sims_text, &sims)) {
      return Fail(Status::InvalidArgument("--evaluate expects a count"));
    }
    const CascadeModel model = *generator == GeneratorKind::kLt
                                   ? CascadeModel::kLinearThreshold
                                   : CascadeModel::kIndependentCascade;
    SpreadEstimator estimator(*graph, model);
    Rng rng(*seed + 1);
    const SpreadEstimate estimate =
        estimator.Estimate(result->seeds, sims, rng);
    std::printf("monte-carlo spread (%llu sims, %s): %.1f +- %.1f\n",
                static_cast<unsigned long long>(sims),
                CascadeModelName(model), estimate.spread,
                2.0 * estimate.std_error);
  }
  return 0;
}

int CmdCalibrate(const Flags& flags) {
  const std::string in = flags.Get("in", "");
  if (in.empty()) {
    return Fail(Status::InvalidArgument("calibrate requires --in=FILE"));
  }
  const auto list = ReadEdgeListText(in);
  if (!list.ok()) {
    return Fail(list.status());
  }
  const auto target = flags.GetDouble("target", 1000.0);
  const auto seed = flags.GetUint("seed", 1);
  if (!target.ok() || !seed.ok()) {
    return Fail(!target.ok() ? target.status() : seed.status());
  }
  const std::string model = flags.Get("model", "wc-variant");
  Result<CalibrationResult> calibration =
      model == "uniform" ? CalibrateUniformP(*list, *target, *seed)
                         : CalibrateWcVariantTheta(*list, *target, *seed);
  if (!calibration.ok()) {
    return Fail(calibration.status());
  }
  std::printf("%s = %.6f  (achieved avg RR size %.1f%s)\n",
              model == "uniform" ? "p" : "theta", calibration->parameter,
              calibration->achieved_avg_size,
              calibration->saturated ? ", saturated" : "");
  return 0;
}


/// Reads one line (without the trailing newline); false on EOF.
bool ReadLine(std::FILE* stream, std::string* out) {
  out->clear();
  char buffer[4096];
  while (std::fgets(buffer, sizeof(buffer), stream) != nullptr) {
    out->append(buffer);
    if (!out->empty() && out->back() == '\n') {
      out->pop_back();
      if (!out->empty() && out->back() == '\r') {
        out->pop_back();
      }
      return true;
    }
  }
  return !out->empty();
}

/// Loads every repeatable --graph=NAME=FILE flag into the registry.
Status LoadGraphFlags(const Flags& flags, GraphRegistry* registry) {
  for (const std::string& spec : flags.GetAll("graph")) {
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
      return Status::InvalidArgument("--graph expects NAME=FILE, got '" +
                                     spec + "'");
    }
    SUBSIM_RETURN_IF_ERROR(
        registry->LoadFromFile(spec.substr(0, eq), spec.substr(eq + 1)));
  }
  return Status::Ok();
}

Result<QueryEngineOptions> EngineOptionsFromFlags(const Flags& flags) {
  QueryEngineOptions options;
  const auto workers = flags.GetUint("workers", 0);
  // Generation threads per query; results are identical for any value
  // (generation is thread-count invariant), so the default stays at 1 to
  // leave cores to the query-level worker pool.
  const auto threads = flags.GetUint("threads", 1);
  const auto cache_mb = flags.GetUint("cache-mb", 512);
  if (!workers.ok() || !threads.ok() || !cache_mb.ok()) {
    return !workers.ok() ? workers.status()
                         : !threads.ok() ? threads.status()
                                         : cache_mb.status();
  }
  options.num_workers = static_cast<unsigned>(*workers);
  options.num_threads = static_cast<unsigned>(*threads);
  options.cache.max_bytes = *cache_mb << 20;
  return options;
}

std::string CacheStatsJson(const RrSketchCache& cache) {
  return "{\"cache_entries\":" + std::to_string(cache.num_entries()) +
         ",\"cache_hits\":" + std::to_string(cache.hits()) +
         ",\"cache_misses\":" + std::to_string(cache.misses()) +
         ",\"cache_lost_races\":" + std::to_string(cache.lost_races()) +
         ",\"cache_evictions\":" + std::to_string(cache.evictions()) +
         ",\"cache_bytes\":" + std::to_string(cache.ApproxMemoryBytes()) +
         "}";
}

/// Reads a whole file ("-" = stdin) into `out`.
Status ReadWholeFile(const std::string& path, std::string* out) {
  out->clear();
  std::FILE* stream = stdin;
  if (path != "-") {
    stream = std::fopen(path.c_str(), "r");
    if (stream == nullptr) {
      return Status::IoError("cannot open " + path);
    }
  }
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), stream)) > 0) {
    out->append(buffer, got);
  }
  if (stream != stdin) {
    std::fclose(stream);
  }
  return Status::Ok();
}

/// Formats a `GraphUpdateOutcome` the same way the HTTP route does, so the
/// REPL `update` command and `POST /v1/update_graph` read alike.
std::string UpdateOutcomeJson(const std::string& graph,
                              const QueryEngine::GraphUpdateOutcome& o) {
  return "{\"ok\":true,\"graph\":\"" + graph +
         "\",\"version\":" + std::to_string(o.version) +
         ",\"previous_version\":" + std::to_string(o.previous_version) +
         ",\"num_edges\":" + std::to_string(o.num_edges) +
         ",\"entries_repaired\":" + std::to_string(o.entries_repaired) +
         ",\"entries_dropped\":" + std::to_string(o.entries_dropped) +
         ",\"sets_repaired\":" + std::to_string(o.sets_repaired) +
         ",\"sets_kept\":" + std::to_string(o.sets_kept) +
         ",\"repair_ms\":" + std::to_string(o.repair_seconds * 1000.0) + "}";
}

/// `update`: post a batch file to a running HTTP server.
int CmdUpdate(const Flags& flags) {
  const auto port = flags.GetUint("port", 0);
  if (!port.ok() || *port == 0 || *port > 65535) {
    return Fail(Status::InvalidArgument("update requires --port=P"));
  }
  const std::string in = flags.Get("in", "");
  if (in.empty()) {
    return Fail(Status::InvalidArgument("update requires --in=BATCH|-"));
  }
  std::string body;
  if (const Status status = ReadWholeFile(in, &body); !status.ok()) {
    return Fail(status);
  }
  // Parse locally first: a malformed batch fails fast with a line-accurate
  // error instead of a round trip.
  if (const auto parsed = ParseGraphUpdateRequest(body); !parsed.ok()) {
    return Fail(parsed.status());
  }
  HttpClient client(flags.Get("host", "127.0.0.1"),
                    static_cast<std::uint16_t>(*port));
  const Result<HttpClientResponse> response =
      client.Post("/v1/update_graph", body);
  if (!response.ok()) {
    return Fail(response.status());
  }
  std::printf("%s", response->body.c_str());
  if (!response->body.empty() && response->body.back() != '\n') {
    std::printf("\n");
  }
  return response->status_code == 200 ? 0 : 1;
}

int CmdBatch(const Flags& flags) {
  GraphRegistry registry;
  if (const Status status = LoadGraphFlags(flags, &registry); !status.ok()) {
    return Fail(status);
  }
  if (registry.Names().empty()) {
    return Fail(Status::InvalidArgument(
        "batch requires at least one --graph=NAME=FILE"));
  }
  const auto engine_options = EngineOptionsFromFlags(flags);
  if (!engine_options.ok()) {
    return Fail(engine_options.status());
  }
  QueryEngine engine(&registry, *engine_options);

  const std::string in = flags.Get("in", "-");
  std::FILE* stream = stdin;
  if (in != "-") {
    stream = std::fopen(in.c_str(), "r");
    if (stream == nullptr) {
      return Fail(Status::IoError("cannot open " + in));
    }
  }

  // Submit everything up front so queries overlap on the pool, then print
  // responses in input order.
  std::vector<std::future<QueryResponse>> futures;
  std::string line;
  while (ReadLine(stream, &line)) {
    const std::string_view text = StripWhitespace(line);
    if (text.empty() || text.front() == '#') {
      continue;
    }
    Result<SelectSeedsQuery> query = ParseSelectSeedsQuery(text);
    if (!query.ok()) {
      std::promise<QueryResponse> failed;
      QueryResponse response;
      response.status = query.status();
      failed.set_value(std::move(response));
      futures.push_back(failed.get_future());
      continue;
    }
    futures.push_back(engine.Submit(std::move(*query)));
  }
  if (stream != stdin) {
    std::fclose(stream);
  }

  for (std::future<QueryResponse>& future : futures) {
    const QueryResponse response = future.get();
    std::printf("%s\n", FormatQueryResponseJson(response).c_str());
  }
  std::fprintf(stderr, "batch: %zu queries  %s\n", futures.size(),
               CacheStatsJson(engine.cache()).c_str());
  return 0;
}

/// Set by the SIGINT/SIGTERM handler; the HTTP serve loop polls it.
std::atomic<bool> g_serve_stop{false};

extern "C" void ServeSignalHandler(int) { g_serve_stop.store(true); }

/// `serve --port=P`: the HTTP/1.1 front end. Blocks until SIGINT/SIGTERM,
/// then stops the server (draining in-flight requests) before the engine
/// and registry unwind.
int CmdServeHttp(const Flags& flags, QueryEngine* engine) {
  const auto port = flags.GetUint("port", 0);
  const auto http_workers = flags.GetUint("http-workers", 0);
  const auto max_pending = flags.GetUint("max-pending", 128);
  if (!port.ok() || !http_workers.ok() || !max_pending.ok()) {
    return Fail(!port.ok() ? port.status()
                           : !http_workers.ok() ? http_workers.status()
                                                : max_pending.status());
  }
  if (*port > 65535) {
    return Fail(Status::InvalidArgument("--port must be <= 65535"));
  }

  ServeApp app(engine);
  HttpServer::Options options;
  options.bind_address = flags.Get("bind", "127.0.0.1");
  options.port = static_cast<std::uint16_t>(*port);
  options.num_workers = static_cast<unsigned>(*http_workers);
  options.max_pending = static_cast<std::size_t>(*max_pending);
  options.metrics = &engine->metrics();
  HttpServer server(
      [&app](const HttpRequest& request, const HttpRequestContext& context) {
        return app.Handle(request, context);
      },
      options);
  if (const Status status = server.Start(); !status.ok()) {
    return Fail(status);
  }

  // One machine-readable line on stdout so scripts can discover the
  // ephemeral port when started with --port=0.
  std::printf("{\"listening\":true,\"port\":%u}\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  g_serve_stop.store(false);
  std::signal(SIGINT, ServeSignalHandler);
  std::signal(SIGTERM, ServeSignalHandler);
  while (!g_serve_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "subsim serve: shutting down\n");
  server.Stop();
  return 0;
}

int CmdServe(const Flags& flags) {
  GraphRegistry registry;
  if (const Status status = LoadGraphFlags(flags, &registry); !status.ok()) {
    return Fail(status);
  }
  const auto engine_options = EngineOptionsFromFlags(flags);
  if (!engine_options.ok()) {
    return Fail(engine_options.status());
  }
  QueryEngine engine(&registry, *engine_options);

  if (flags.Has("port")) {
    return CmdServeHttp(flags, &engine);
  }

  std::fprintf(stderr,
               "subsim serve: query lines (graph=NAME k=K ...), "
               "load NAME FILE, update FILE, unload NAME, graphs, stats, "
               "quit\n");
  std::string line;
  while (ReadLine(stdin, &line)) {
    const std::string_view text = StripWhitespace(line);
    if (text.empty() || text.front() == '#') {
      continue;
    }
    if (text == "quit" || text == "exit") {
      break;
    }
    if (text == "graphs") {
      std::string out = "{\"graphs\":[";
      bool first = true;
      for (const std::string& name : registry.Names()) {
        if (!first) {
          out += ",";
        }
        first = false;
        out += "\"" + name + "\"";
      }
      out += "]}";
      std::printf("%s\n", out.c_str());
      std::fflush(stdout);
      continue;
    }
    if (text == "stats") {
      // Cache stats plus the engine's metrics snapshot, one JSON object
      // (docs/observability.md documents the schema).
      std::printf("%s\n", engine.StatsJson().c_str());
      std::fflush(stdout);
      continue;
    }
    if (StartsWith(text, "load ")) {
      const auto tokens = SplitAndTrim(text, " \t");
      Status status = tokens.size() == 3
                          ? registry.LoadFromFile(std::string(tokens[1]),
                                                  std::string(tokens[2]))
                          : Status::InvalidArgument("usage: load NAME FILE");
      if (status.ok()) {
        // Sets sampled on a replaced snapshot must not serve new queries.
        const std::size_t dropped =
            engine.InvalidateGraph(std::string(tokens[1]));
        std::printf("{\"ok\":true,\"loaded\":\"%s\","
                    "\"cache_entries_dropped\":%zu}\n",
                    std::string(tokens[1]).c_str(), dropped);
      } else {
        std::printf("{\"ok\":false,\"error\":\"%s\"}\n",
                    status.ToString().c_str());
      }
      std::fflush(stdout);
      continue;
    }
    if (StartsWith(text, "update ")) {
      // `update FILE`: apply an edge-update batch in process — new
      // snapshot version, warm sketches incrementally repaired.
      const auto tokens = SplitAndTrim(text, " \t");
      std::string body;
      Status status = tokens.size() == 2
                          ? ReadWholeFile(std::string(tokens[1]), &body)
                          : Status::InvalidArgument("usage: update FILE");
      if (status.ok()) {
        const auto parsed = ParseGraphUpdateRequest(body);
        if (!parsed.ok()) {
          status = parsed.status();
        } else {
          const auto outcome =
              engine.ApplyGraphUpdates(parsed->graph, parsed->batch);
          if (!outcome.ok()) {
            status = outcome.status();
          } else {
            std::printf("%s\n",
                        UpdateOutcomeJson(parsed->graph, *outcome).c_str());
          }
        }
      }
      if (!status.ok()) {
        std::printf("{\"ok\":false,\"error\":\"%s\"}\n",
                    status.ToString().c_str());
      }
      std::fflush(stdout);
      continue;
    }
    if (StartsWith(text, "unload ")) {
      const auto tokens = SplitAndTrim(text, " \t");
      if (tokens.size() != 2) {
        std::printf("{\"ok\":false,\"error\":\"usage: unload NAME\"}\n");
      } else {
        const auto dropped = engine.RemoveGraph(std::string(tokens[1]));
        if (dropped.ok()) {
          std::printf("{\"ok\":true,\"unloaded\":\"%s\","
                      "\"cache_entries_dropped\":%zu}\n",
                      std::string(tokens[1]).c_str(), *dropped);
        } else {
          std::printf("{\"ok\":false,\"error\":\"%s\"}\n",
                      dropped.status().ToString().c_str());
        }
      }
      std::fflush(stdout);
      continue;
    }
    Result<SelectSeedsQuery> query = ParseSelectSeedsQuery(text);
    QueryResponse response;
    if (!query.ok()) {
      response.status = query.status();
    } else {
      response = engine.Submit(std::move(*query)).get();
    }
    std::printf("%s\n", FormatQueryResponseJson(response).c_str());
    std::fflush(stdout);
  }
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: subsim_cli "
      "<generate|weight|stats|run|calibrate|batch|serve|update> [--flags]\n"
      "       see the header comment of tools/subsim_cli.cc for details\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  const auto flags = Flags::Parse(argc, argv, 2);
  if (!flags.ok()) {
    return Fail(flags.status());
  }
  if (command == "generate") return CmdGenerate(*flags);
  if (command == "weight") return CmdWeight(*flags);
  if (command == "stats") return CmdStats(*flags);
  if (command == "run") return CmdRun(*flags);
  if (command == "calibrate") return CmdCalibrate(*flags);
  if (command == "batch") return CmdBatch(*flags);
  if (command == "serve") return CmdServe(*flags);
  if (command == "update") return CmdUpdate(*flags);
  return Usage();
}

}  // namespace
}  // namespace subsim

int main(int argc, char** argv) { return subsim::Main(argc, argv); }
