// subsim command-line tool: generate graphs, assign weights, run influence
// maximization, evaluate seed sets, and calibrate influence levels without
// writing any C++.
//
// Subcommands:
//   generate  --type=ba|er|plc|ws --nodes=N [--degree=D] [--undirected]
//             [--seed=S] --out=FILE
//   weight    --in=FILE --model=wc|uniform|wc-variant|exponential|weibull|
//             trivalency|lt [--p=P] [--theta=T] [--seed=S] --out=FILE
//   stats     --in=FILE
//   run       --in=FILE --algo=imm|opim-c|ssa|hist|celf-mc [--k=K]
//             [--eps=E] [--generator=vanilla|subsim|lt] [--seed=S]
//             [--evaluate[=SIMS]]
//   calibrate --in=FILE --model=wc-variant|uniform --target=AVG [--seed=S]
//
// Files are whitespace-separated edge lists ("src dst [weight]"); lines
// starting with '#' or '%' are comments. `weight` writes the third column.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "subsim/algo/registry.h"
#include "subsim/benchsup/calibration.h"
#include "subsim/eval/spread_estimator.h"
#include "subsim/graph/generators.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/graph/graph_io.h"
#include "subsim/graph/graph_stats.h"
#include "subsim/graph/weight_models.h"
#include "subsim/util/string_util.h"

namespace subsim {
namespace {

/// Parsed "--key=value" flags (value "true" for bare "--key").
class Flags {
 public:
  static Result<Flags> Parse(int argc, char** argv, int first) {
    Flags flags;
    for (int i = first; i < argc; ++i) {
      const std::string_view arg(argv[i]);
      if (!StartsWith(arg, "--")) {
        return Status::InvalidArgument("expected --flag, got " +
                                       std::string(arg));
      }
      const std::size_t eq = arg.find('=');
      if (eq == std::string_view::npos) {
        flags.values_[std::string(arg.substr(2))] = "true";
      } else {
        flags.values_[std::string(arg.substr(2, eq - 2))] =
            std::string(arg.substr(eq + 1));
      }
    }
    return flags;
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  Result<std::uint64_t> GetUint(const std::string& key,
                                std::uint64_t fallback) const {
    if (!Has(key)) {
      return fallback;
    }
    std::uint64_t value = 0;
    if (!ParseUint64(Get(key, ""), &value)) {
      return Status::InvalidArgument("--" + key + " must be an integer");
    }
    return value;
  }

  Result<double> GetDouble(const std::string& key, double fallback) const {
    if (!Has(key)) {
      return fallback;
    }
    double value = 0;
    if (!ParseDouble(Get(key, ""), &value)) {
      return Status::InvalidArgument("--" + key + " must be a number");
    }
    return value;
  }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdGenerate(const Flags& flags) {
  const std::string type = flags.Get("type", "ba");
  const std::string out = flags.Get("out", "");
  if (out.empty()) {
    return Fail(Status::InvalidArgument("generate requires --out=FILE"));
  }
  const auto nodes = flags.GetUint("nodes", 10000);
  const auto degree = flags.GetUint("degree", 8);
  const auto seed = flags.GetUint("seed", 1);
  if (!nodes.ok() || !degree.ok() || !seed.ok()) {
    return Fail(!nodes.ok() ? nodes.status()
                            : !degree.ok() ? degree.status() : seed.status());
  }
  const NodeId n = static_cast<NodeId>(*nodes);
  const bool undirected = flags.Has("undirected");

  Result<EdgeList> list = Status::InvalidArgument(
      "unknown --type (expected ba | er | plc | ws)");
  if (type == "ba") {
    list = GenerateBarabasiAlbert(
        n, static_cast<NodeId>(std::max<std::uint64_t>(1, *degree / 2)),
        undirected, *seed);
  } else if (type == "er") {
    list = GenerateErdosRenyi(n, *degree * static_cast<EdgeIndex>(n), *seed);
  } else if (type == "plc") {
    list = GeneratePowerLawConfiguration(n, 2.1, n / 10,
                                         static_cast<double>(*degree), *seed);
  } else if (type == "ws") {
    list = GenerateWattsStrogatz(
        n, static_cast<NodeId>(std::max<std::uint64_t>(1, *degree / 4)), 0.1,
        *seed);
  }
  if (!list.ok()) {
    return Fail(list.status());
  }
  if (const Status status = WriteEdgeListText(*list, out); !status.ok()) {
    return Fail(status);
  }
  std::printf("wrote %s: %u nodes, %zu edges\n", out.c_str(),
              list->num_nodes, list->edges.size());
  return 0;
}

int CmdWeight(const Flags& flags) {
  const std::string in = flags.Get("in", "");
  const std::string out = flags.Get("out", "");
  if (in.empty() || out.empty()) {
    return Fail(Status::InvalidArgument("weight requires --in and --out"));
  }
  const auto model = ParseWeightModel(flags.Get("model", "wc"));
  if (!model.ok()) {
    return Fail(model.status());
  }
  auto list = ReadEdgeListText(in);
  if (!list.ok()) {
    return Fail(list.status());
  }
  WeightModelParams params;
  const auto p = flags.GetDouble("p", params.uniform_p);
  const auto theta = flags.GetDouble("theta", params.wc_variant_theta);
  const auto seed = flags.GetUint("seed", params.seed);
  if (!p.ok() || !theta.ok() || !seed.ok()) {
    return Fail(!p.ok() ? p.status()
                        : !theta.ok() ? theta.status() : seed.status());
  }
  params.uniform_p = *p;
  params.wc_variant_theta = *theta;
  params.seed = *seed;
  if (const Status status = AssignWeights(*model, params, &list.value());
      !status.ok()) {
    return Fail(status);
  }
  if (const Status status = WriteEdgeListText(*list, out); !status.ok()) {
    return Fail(status);
  }
  std::printf("wrote %s with %s weights\n", out.c_str(),
              WeightModelName(*model));
  return 0;
}

int CmdStats(const Flags& flags) {
  const std::string in = flags.Get("in", "");
  if (in.empty()) {
    return Fail(Status::InvalidArgument("stats requires --in=FILE"));
  }
  auto list = ReadEdgeListText(in);
  if (!list.ok()) {
    return Fail(list.status());
  }
  auto graph = BuildGraph(std::move(list).value());
  if (!graph.ok()) {
    return Fail(graph.status());
  }
  std::printf("%s\n", ComputeGraphStats(*graph).ToString().c_str());
  return 0;
}

int CmdRun(const Flags& flags) {
  const std::string in = flags.Get("in", "");
  if (in.empty()) {
    return Fail(Status::InvalidArgument("run requires --in=FILE"));
  }
  auto list = ReadEdgeListText(in);
  if (!list.ok()) {
    return Fail(list.status());
  }
  auto graph = BuildGraph(std::move(list).value());
  if (!graph.ok()) {
    return Fail(graph.status());
  }

  const auto algorithm = MakeImAlgorithm(flags.Get("algo", "opim-c"));
  if (!algorithm.ok()) {
    return Fail(algorithm.status());
  }
  const auto generator = ParseGeneratorKind(flags.Get("generator", "subsim"));
  if (!generator.ok()) {
    return Fail(generator.status());
  }
  ImOptions options;
  const auto k = flags.GetUint("k", 50);
  const auto eps = flags.GetDouble("eps", 0.1);
  const auto seed = flags.GetUint("seed", 1);
  if (!k.ok() || !eps.ok() || !seed.ok()) {
    return Fail(!k.ok() ? k.status() : !eps.ok() ? eps.status()
                                                 : seed.status());
  }
  options.k = static_cast<std::uint32_t>(*k);
  options.epsilon = *eps;
  options.rng_seed = *seed;
  options.generator = *generator;

  const auto result = (*algorithm)->Run(*graph, options);
  if (!result.ok()) {
    return Fail(result.status());
  }

  std::printf("seeds:");
  for (NodeId v : result->seeds) {
    std::printf(" %u", v);
  }
  std::printf("\ntime: %s   rr_sets: %llu   avg_rr_size: %.1f\n",
              HumanSeconds(result->seconds).c_str(),
              static_cast<unsigned long long>(result->num_rr_sets),
              result->average_rr_size());
  if (result->optimal_upper_bound > 0.0) {
    std::printf("certified: I(S) >= %.1f, OPT <= %.1f (ratio %.3f)\n",
                result->influence_lower_bound, result->optimal_upper_bound,
                result->approx_ratio);
  }
  if (result->sentinel_size > 0) {
    std::printf("sentinels: %u (phase1 %llu RR sets, phase2 %llu)\n",
                result->sentinel_size,
                static_cast<unsigned long long>(result->phase1_rr_sets),
                static_cast<unsigned long long>(result->phase2_rr_sets));
  }

  if (flags.Has("evaluate")) {
    const std::string sims_text = flags.Get("evaluate", "10000");
    std::uint64_t sims = 10000;
    if (sims_text != "true" && !ParseUint64(sims_text, &sims)) {
      return Fail(Status::InvalidArgument("--evaluate expects a count"));
    }
    const CascadeModel model = *generator == GeneratorKind::kLt
                                   ? CascadeModel::kLinearThreshold
                                   : CascadeModel::kIndependentCascade;
    SpreadEstimator estimator(*graph, model);
    Rng rng(*seed + 1);
    const SpreadEstimate estimate =
        estimator.Estimate(result->seeds, sims, rng);
    std::printf("monte-carlo spread (%llu sims, %s): %.1f +- %.1f\n",
                static_cast<unsigned long long>(sims),
                CascadeModelName(model), estimate.spread,
                2.0 * estimate.std_error);
  }
  return 0;
}

int CmdCalibrate(const Flags& flags) {
  const std::string in = flags.Get("in", "");
  if (in.empty()) {
    return Fail(Status::InvalidArgument("calibrate requires --in=FILE"));
  }
  const auto list = ReadEdgeListText(in);
  if (!list.ok()) {
    return Fail(list.status());
  }
  const auto target = flags.GetDouble("target", 1000.0);
  const auto seed = flags.GetUint("seed", 1);
  if (!target.ok() || !seed.ok()) {
    return Fail(!target.ok() ? target.status() : seed.status());
  }
  const std::string model = flags.Get("model", "wc-variant");
  Result<CalibrationResult> calibration =
      model == "uniform" ? CalibrateUniformP(*list, *target, *seed)
                         : CalibrateWcVariantTheta(*list, *target, *seed);
  if (!calibration.ok()) {
    return Fail(calibration.status());
  }
  std::printf("%s = %.6f  (achieved avg RR size %.1f%s)\n",
              model == "uniform" ? "p" : "theta", calibration->parameter,
              calibration->achieved_avg_size,
              calibration->saturated ? ", saturated" : "");
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: subsim_cli <generate|weight|stats|run|calibrate> [--flags]\n"
      "       see the header comment of tools/subsim_cli.cc for details\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  const auto flags = Flags::Parse(argc, argv, 2);
  if (!flags.ok()) {
    return Fail(flags.status());
  }
  if (command == "generate") return CmdGenerate(*flags);
  if (command == "weight") return CmdWeight(*flags);
  if (command == "stats") return CmdStats(*flags);
  if (command == "run") return CmdRun(*flags);
  if (command == "calibrate") return CmdCalibrate(*flags);
  return Usage();
}

}  // namespace
}  // namespace subsim

int main(int argc, char** argv) { return subsim::Main(argc, argv); }
