#!/usr/bin/env python3
"""subsim_analyze: semantic concurrency & determinism analyzer.

Companion to subsim_lint.py, one level deeper: where the linter pattern-
matches single lines, this tool reasons about declarations, initializers,
statement position, and loop structure. It has two engines:

  ast    libclang over compile_commands.json — full semantic accuracy
         (type-resolved references, real statement boundaries).
  text   a comment/string-stripping lexer with small parsers for paren
         matching, declarations, and range-for headers. No dependencies;
         always available. The CI clang job runs the ast engine; the
         default build runs text.

Engine selection is `--engine=auto` by default: ast when the `clang`
python bindings AND a loadable libclang are present, otherwise text with
a one-line notice. Both engines produce the same (file, line, rule)
findings on the fixture corpus, which the self-test enforces.

Rules (shared suppression vocabulary with subsim_lint.py:
`// SUBSIM-NOLINT(<rule>): <reason>` / `// SUBSIM-NOLINT-NEXTLINE(...)`):

  raw-random           std::random_device / rand / srand / <random> engine
                       types (mt19937 et al.) outside src/subsim/random/.
                       Every random bit must derive from a subsim::Rng so a
                       single 64-bit seed reproduces the run.
  wall-clock           Reading any clock (steady/system/high_resolution
                       ::now, time(nullptr), gettimeofday, clock_gettime)
                       inside src/subsim/{algo,rrset,random}. Those layers
                       compute *results*; a result that depends on the
                       clock is not replayable. Timing belongs to the
                       serve/obs layers (PhaseScope).
  rng-confinement      Direct `Rng rng(seed)` construction inside
                       src/subsim/{algo,rrset,serve,sampling,eval,
                       coverage}. Streams there must come from the
                       counter-based API — Rng::Substream(base, i),
                       MakeRngStream, or a DeriveStreamSeed'd seed — so
                       sample i is the same no matter which thread draws
                       it. A raw seed starts a sequential stream that
                       silently breaks thread-count invariance.
  fill-entry-point     ParallelFill / Rng::Fork outside src/subsim/random/
                       and src/subsim/rrset/: bulk RR generation has
                       exactly one entry point, FillCollection(FillRequest).
  raw-socket           Socket headers (<sys/socket.h> et al.) or qualified
                       socket syscalls (::socket, ::connect, ::listen, ...)
                       outside src/subsim/net/. All wire traffic goes
                       through HttpServer/HttpClient so the fuzzable parser,
                       IO timeouts, and the admission layer cannot be
                       bypassed. The header check is engine-independent
                       (the preprocessor is invisible to the ast engine);
                       the call check matches ::-qualified syscalls, which
                       is the repo convention for libc calls.
  status-discarded     A call whose result is Status/Result used as a bare
                       expression statement. `[[nodiscard]]` catches this
                       at compile time; the analyzer keeps it visible to
                       tooling that only sees sources (and to the ast
                       engine, which resolves the real return type).
  unordered-iteration  Range-for over a std::unordered_{set,map} inside
                       src/subsim/{algo,rrset,random,graph} — the layers
                       whose outputs must be bit-identical across standard
                       libraries. Hash-table iteration order is
                       implementation-defined; feeding it into edges,
                       samples, or seeds makes the "same seed" produce
                       different results on libc++ vs libstdc++. (This rule
                       found a real bug: GenerateBarabasiAlbert emitted
                       attachment targets in unordered_set order.)
  rr-span-access       `.Set(` on an RrCollection / RrCollectionView handle
                       outside src/subsim/rrset/. The arena may be
                       delta-varint encoded, so no contiguous NodeId span
                       exists; consumers iterate through View(id) and the
                       RrSetView cursor (ForEachNode / Decode). The text
                       engine tracks names declared with an RR-collection
                       type; the ast engine resolves the callee's class, so
                       Gauge::Set / BitVector::Set never false-positive.
  nolint-needs-reason  A suppression of any rule above must carry a reason.

Usage:
  tools/subsim_analyze.py <path>...              analyze files/directories
  tools/subsim_analyze.py --engine=ast <path>... require the ast engine
  tools/subsim_analyze.py --self-test            run the fixture corpus

Fixtures live in tools/lint_fixtures/analyze/. Because every rule is
path-scoped, each fixture declares a virtual location on its first lines:
`// ANALYZE-AS: src/subsim/algo/example.cc`. Expected findings are marked
in place with `// ANALYZE-EXPECT: <rule>[, <rule>...]`.

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import re
import sys

CXX_SUFFIXES = {".cc", ".cpp", ".cxx", ".h", ".hpp"}

# ---------------------------------------------------------------------------
# Path policy. Matched against POSIX path suffixes/components, exactly like
# subsim_lint.allowed(); ANALYZE-AS substitutes a virtual path for fixtures.
# ---------------------------------------------------------------------------

RAW_RANDOM_ALLOWED = ("src/subsim/random/",)
WALL_CLOCK_FORBIDDEN = (
    "src/subsim/algo/",
    "src/subsim/rrset/",
    "src/subsim/random/",
)
RNG_CONFINEMENT_FORBIDDEN = (
    "src/subsim/algo/",
    "src/subsim/rrset/",
    "src/subsim/serve/",
    "src/subsim/sampling/",
    "src/subsim/eval/",
    "src/subsim/coverage/",
)
FILL_ENTRY_ALLOWED = (
    "src/subsim/random/",
    "src/subsim/rrset/",
    "tests/random/",
)
RAW_SOCKET_ALLOWED = ("src/subsim/net/",)
UNORDERED_ITER_FORBIDDEN = (
    "src/subsim/algo/",
    "src/subsim/rrset/",
    "src/subsim/random/",
    "src/subsim/graph/",
)
RR_SPAN_ALLOWED = ("src/subsim/rrset/",)

ALL_RULES = (
    "raw-random",
    "wall-clock",
    "rng-confinement",
    "fill-entry-point",
    "raw-socket",
    "status-discarded",
    "unordered-iteration",
    "rr-span-access",
    "nolint-needs-reason",
)

# Functions that mint sanctioned, replayable streams. An Rng initializer
# mentioning one of these is counter-derived, not an ad-hoc sequence.
SANCTIONED_STREAM_RE = re.compile(
    r"\b(?:Substream|MakeRngStream|DeriveStreamSeed|RngStream)\b")

NOLINT_RE = re.compile(
    r"SUBSIM-NOLINT\((?P<rules>[\w,\- ]+)\)(?::\s*(?P<reason>\S[^\n]*))?")
NOLINT_NEXTLINE_RE = re.compile(
    r"SUBSIM-NOLINT-NEXTLINE\((?P<rules>[\w,\- ]+)\)"
    r"(?::\s*(?P<reason>\S[^\n]*))?")
ANALYZE_AS_RE = re.compile(r"ANALYZE-AS:\s*(?P<path>\S+)")

RAW_RANDOM_RE = re.compile(
    r"\b(?:std::)?(?:s?rand|random_device|mt19937(?:_64)?"
    r"|default_random_engine|minstd_rand0?|ranlux(?:24|48)(?:_base)?"
    r"|knuth_b)\b")
WALL_CLOCK_RE = re.compile(
    r"\b(?:std::chrono::)?(?:system_clock|steady_clock"
    r"|high_resolution_clock)\s*::\s*now\b"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\bstd::time\s*\("
    r"|(?<![\w:.>])time\s*\(\s*(?:nullptr|NULL)")
FILL_ENTRY_RE = re.compile(
    r"\bParallelFill\s*\(|\bParallelFillOptions\b|(?:\.|->|::)\s*Fork\s*\("
    r"|\bBatchRrKernel\b|\bGenerateChunk\s*\(")

# Direct Rng construction: `Rng name(init)`, `Rng name{init}`, `= Rng(...)`,
# `return Rng(...)`. `Rng name = Rng::Substream(...)` never matches these
# (the token after `Rng` is `=` / `::`), and matched initializers are still
# screened against SANCTIONED_STREAM_RE before reporting.
RNG_DECL_RE = re.compile(r"\bRng\s+(?P<name>\w+)\s*(?P<open>[({])")
RNG_TEMP_RE = re.compile(r"(?:=|return)\s*Rng\s*(?P<open>[({])")

# Status-returning declarations — same name-based scheme as subsim_lint.
STATUS_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?(?:static\s+|inline\s+|virtual\s+)*"
    r"(?:::)?(?:subsim::)?(?:Status|Result<[\w:<>,\s*&]+>)\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*\(",
    re.MULTILINE,
)
NON_STATUS_DECL_RE = re.compile(
    r"^\s*(?:static\s+|inline\s+|virtual\s+|constexpr\s+|explicit\s+)*"
    r"(?:void|bool|int|unsigned|float|double|std::size_t|size_t)\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*\(",
    re.MULTILINE,
)
CALL_HEAD_RE = re.compile(
    r"^(?:[A-Za-z_]\w*(?:\s*(?:::|\.|->)\s*))*(?P<name>[A-Za-z_]\w*)\s*\(")
STMT_KEYWORDS = {
    "return", "co_return", "if", "else", "while", "for", "do", "switch",
    "case", "goto", "new", "delete", "throw", "using", "namespace",
    "template", "typedef", "static_assert", "sizeof",
}

# Socket confinement. The include check runs outside both engines (clang
# expands the preprocessor before the AST exists, so an engine-level check
# could never agree across engines); the call check matches ::-qualified
# syscalls only — bare bind/send/recv would collide with std::bind and
# generic method names, and real socket code cannot avoid the headers.
SOCKET_HEADER_RE = re.compile(
    r"^[ \t]*#[ \t]*include[ \t]*<(?P<header>sys/socket\.h|netinet/in\.h"
    r"|netinet/tcp\.h|arpa/inet\.h|sys/un\.h|netdb\.h)>",
    re.MULTILINE,
)
SOCKET_SYSCALL_NAMES = {
    "socket", "accept", "accept4", "listen", "connect", "getsockname",
    "getpeername", "setsockopt", "getsockopt", "inet_pton", "inet_ntop",
    "recvfrom", "sendto",
}
SOCKET_CALL_RE = re.compile(
    r"::\s*(?:" + "|".join(sorted(SOCKET_SYSCALL_NAMES)) + r")\s*\(")

UNORDERED_TYPE_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:set|map|multiset|multimap)\s*<")

# rr-span-access (text engine): names declared with an RR-collection type;
# `.Set(` is only flagged on those, so other Set() methods never match. The
# ast engine resolves the callee's semantic parent class instead.
RR_HANDLE_DECL_RE = re.compile(
    r"\bRrCollection(?:View)?\s*[&*]?\s+(?P<name>\w+)\b")
RR_SET_CALL_RE = re.compile(r"\b(?P<name>\w+)\s*(?:\.|->)\s*Set\s*\(")
RR_COLLECTION_CLASSES = {"RrCollection", "RrCollectionView"}


@dataclasses.dataclass(frozen=True)
class Finding:
    path: pathlib.Path
    line: int  # 1-based
    rule: str
    message: str

    def render(self, root: pathlib.Path) -> str:
        try:
            shown = self.path.relative_to(root)
        except ValueError:
            shown = self.path
        return f"{shown}:{self.line}: [{self.rule}] {self.message}"


def read_text(path: pathlib.Path) -> str:
    return path.read_text(encoding="utf-8", errors="replace")


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def path_matches(posix: str, patterns: tuple[str, ...]) -> bool:
    """Trailing-slash patterns match any directory component prefix;
    otherwise the path suffix must match."""
    return any(s in posix if s.endswith("/") else posix.endswith(s)
               for s in patterns)


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line layout."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        two = text[i : i + 2]
        if two == "//":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif two == "/*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(c if c == "\n" else " " for c in text[i:j]))
            i = j
        elif ch == '"' and text[max(0, i - 1) : i] == "R":
            m = re.match(r'R"([^(\s]*)\(', text[i - 1 :])
            if m:
                closer = ")" + m.group(1) + '"'
                j = text.find(closer, i + m.end() - 1)
                j = n if j < 0 else j + len(closer)
                out.append("".join(c if c == "\n" else " " for c in text[i:j]))
                i = j
            else:
                out.append(ch)
                i += 1
        elif ch in "\"'":
            j = i + 1
            while j < n and text[j] != ch:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(ch + " " * (j - i - 2) + (ch if j - i >= 2 else ""))
            i = j
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def matching_close(code: str, open_offset: int) -> int:
    """Offset just past the delimiter matching code[open_offset] ('(' or
    '{'); len(code) when unbalanced."""
    opener = code[open_offset]
    closer = {"(": ")", "{": "}"}[opener]
    depth = 0
    for i in range(open_offset, len(code)):
        if code[i] == opener:
            depth += 1
        elif code[i] == closer:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def find_nolint(raw_lines: list[str], lineno: int):
    """Returns (rules, has_reason, marker_line) for a suppression covering
    `lineno`, or None."""
    if lineno - 1 < len(raw_lines):
        m = NOLINT_RE.search(raw_lines[lineno - 1])
        if m and "SUBSIM-NOLINT-NEXTLINE" not in raw_lines[lineno - 1]:
            rules = {r.strip() for r in m.group("rules").split(",")}
            return rules, m.group("reason") is not None, lineno
    if lineno >= 2:
        m = NOLINT_NEXTLINE_RE.search(raw_lines[lineno - 2])
        if m:
            rules = {r.strip() for r in m.group("rules").split(",")}
            return rules, m.group("reason") is not None, lineno - 1
    return None


def virtual_path(path: pathlib.Path, raw: str) -> str:
    """The POSIX path rules are applied to: the ANALYZE-AS pragma when the
    file carries one (fixtures), the real path otherwise."""
    head = "\n".join(raw.splitlines()[:5])
    m = ANALYZE_AS_RE.search(head)
    return m.group("path") if m else path.as_posix()


def collect_status_functions(files: list[pathlib.Path]) -> set[str]:
    names: set[str] = set()
    ambiguous: set[str] = set()
    for path in files:
        text = strip_comments_and_strings(read_text(path))
        for m in STATUS_DECL_RE.finditer(text):
            name = m.group("name")
            if name not in STMT_KEYWORDS and not name.startswith("operator"):
                names.add(name)
        for m in NON_STATUS_DECL_RE.finditer(text):
            ambiguous.add(m.group("name"))
    return names - ambiguous


# ---------------------------------------------------------------------------
# Textual engine
# ---------------------------------------------------------------------------


def iter_statements(code: str):
    start = 0
    for i, ch in enumerate(code):
        if ch in ";{}":
            yield start, code[start:i]
            start = i + 1
    yield start, code[start:]


def unordered_container_names(code: str) -> set[str]:
    """Names of variables/members declared with a std::unordered_* type."""
    names: set[str] = set()
    for m in UNORDERED_TYPE_RE.finditer(code):
        # Skip the template argument list (depth-matched on <>), then read
        # the declared identifier if one follows.
        depth = 1
        i = m.end()
        while i < len(code) and depth:
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
            i += 1
        rest = code[i:]
        decl = re.match(r"\s*&?\s*(?P<name>\w+)\s*[;,({=)]", rest)
        if decl:
            names.add(decl.group("name"))
    return names


def range_for_headers(code: str):
    """Yields (offset_of_range_expr, range_expr_text) for each range-for.

    The ':' is located at paren depth 1, skipping '::' tokens, so types
    like std::uint64_t in the loop variable don't confuse the split.
    """
    for m in re.finditer(r"\bfor\s*\(", code):
        open_off = m.end() - 1
        close = matching_close(code, open_off) - 1
        header = code[open_off + 1 : close]
        depth = 0
        i = 0
        while i < len(header):
            ch = header[i]
            if ch in "([{<":
                depth += 1
            elif ch in ")]}>":
                depth = max(0, depth - 1)
            elif ch == ":" and depth == 0:
                if header[i + 1 : i + 2] == ":" or header[i - 1 : i] == ":":
                    i += 2
                    continue
                expr = header[i + 1 :]
                yield open_off + 1 + i + 1 + (len(expr) - len(expr.lstrip())
                                              ), expr.strip()
                break
            i += 1


def text_engine_findings(
    path: pathlib.Path,
    raw: str,
    code: str,
    vpath: str,
    status_functions: set[str],
) -> list[tuple[int, str, str]]:
    """Returns (lineno, rule, message) triples; suppression is applied by
    the caller so both engines share it."""
    out: list[tuple[int, str, str]] = []

    if not path_matches(vpath, RAW_RANDOM_ALLOWED):
        for m in RAW_RANDOM_RE.finditer(code):
            out.append((line_of(code, m.start()), "raw-random",
                        "raw libc/<random> randomness outside "
                        "src/subsim/random/; draw from a subsim::Rng so the "
                        "run replays from one seed"))

    if path_matches(vpath, WALL_CLOCK_FORBIDDEN):
        for m in WALL_CLOCK_RE.finditer(code):
            out.append((line_of(code, m.start()), "wall-clock",
                        "clock read in a deterministic layer "
                        "(src/subsim/{algo,rrset,random}); results must not "
                        "depend on time — measure in serve/obs via "
                        "PhaseScope instead"))

    if path_matches(vpath, RNG_CONFINEMENT_FORBIDDEN):
        for m in RNG_DECL_RE.finditer(code):
            init = code[m.start("open") : matching_close(code,
                                                         m.start("open"))]
            if not SANCTIONED_STREAM_RE.search(init):
                out.append((line_of(code, m.start()), "rng-confinement",
                            f"Rng {m.group('name')} constructed from a raw "
                            "seed in a stream-disciplined layer; derive it "
                            "with Rng::Substream / MakeRngStream / "
                            "DeriveStreamSeed so draws stay thread-count "
                            "invariant"))
        for m in RNG_TEMP_RE.finditer(code):
            init = code[m.start("open") : matching_close(code,
                                                         m.start("open"))]
            if not SANCTIONED_STREAM_RE.search(init):
                out.append((line_of(code, m.start()), "rng-confinement",
                            "temporary Rng constructed from a raw seed in a "
                            "stream-disciplined layer; use the Substream/"
                            "RngStream API"))

    if not path_matches(vpath, FILL_ENTRY_ALLOWED):
        for m in FILL_ENTRY_RE.finditer(code):
            out.append((line_of(code, m.start()), "fill-entry-point",
                        "bulk RR generation must go through FillCollection"
                        "(FillRequest); ParallelFill/Rng::Fork here bypasses "
                        "the thread-count-invariance contract"))

    if not path_matches(vpath, RAW_SOCKET_ALLOWED):
        for m in SOCKET_CALL_RE.finditer(code):
            out.append((line_of(code, m.start()), "raw-socket",
                        "socket syscall outside src/subsim/net/; serve over "
                        "HttpServer and drive clients through HttpClient so "
                        "the wire stays behind the parser and the admission "
                        "layer"))

    for offset, stmt in iter_statements(code):
        body = stmt.strip()
        if not body or "=" in body.split("(", 1)[0]:
            continue
        m = CALL_HEAD_RE.match(body)
        if not m:
            continue
        first = re.match(r"[A-Za-z_]\w*", body)
        if first and first.group(0) in STMT_KEYWORDS:
            continue
        if m.group("name") in status_functions:
            body_start = offset + len(stmt) - len(stmt.lstrip())
            out.append((line_of(code, body_start + m.start("name")),
                        "status-discarded",
                        f"result of {m.group('name')}() (Status/Result) is "
                        "discarded; check it, propagate it, or (void)-cast "
                        "with a SUBSIM-NOLINT reason"))

    if path_matches(vpath, UNORDERED_ITER_FORBIDDEN):
        unordered = unordered_container_names(code)
        for offset, expr in range_for_headers(code):
            tail = re.search(r"(\w+)\s*$", expr)
            if tail and tail.group(1) in unordered:
                out.append((line_of(code, offset), "unordered-iteration",
                            f"range-for over unordered container "
                            f"'{tail.group(1)}' in a determinism-critical "
                            "layer; hash iteration order is implementation-"
                            "defined — copy to a sorted vector (or use an "
                            "ordered container) before consuming"))

    if not path_matches(vpath, RR_SPAN_ALLOWED):
        rr_handles = {m.group("name")
                      for m in RR_HANDLE_DECL_RE.finditer(code)}
        for m in RR_SET_CALL_RE.finditer(code):
            if m.group("name") in rr_handles:
                out.append((line_of(code, m.start()), "rr-span-access",
                            f"'{m.group('name')}.Set(' reaches into the RR "
                            "arena, which may be delta-varint encoded; "
                            "iterate via View(id) and "
                            "RrSetView::ForEachNode/Decode"))
    return out


# ---------------------------------------------------------------------------
# AST engine (libclang). Import is lazy and failure-tolerant: this container
# or a contributor machine without clang bindings silently uses the textual
# engine under --engine=auto.
# ---------------------------------------------------------------------------


def load_cindex():
    """Returns a working clang.cindex module or None."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        cindex.Index.create()
        return cindex
    except Exception:  # noqa: BLE001 — any load failure means "unavailable"
        return None


def compile_args_for(path: pathlib.Path, compdb, root: pathlib.Path):
    if compdb is not None:
        for entry in compdb:
            if pathlib.Path(entry.get("file", "")).name == path.name:
                args = entry.get("arguments")
                if not args:
                    args = entry.get("command", "").split()
                # Drop compiler, -c/-o pairs, and the source file itself.
                cleaned = []
                skip = False
                for a in args[1:]:
                    if skip:
                        skip = False
                        continue
                    if a in ("-c", path.name) or a.endswith(path.suffix):
                        continue
                    if a == "-o":
                        skip = True
                        continue
                    cleaned.append(a)
                return cleaned
    return ["-std=c++20", f"-I{root / 'src'}"]


RANDOM_ENTITY_NAMES = {
    "rand", "srand", "random_device", "mt19937", "mt19937_64",
    "default_random_engine", "minstd_rand", "minstd_rand0",
}
CLOCK_PARENTS = {"system_clock", "steady_clock", "high_resolution_clock"}
WALL_CLOCK_FREE_FUNCS = {"time", "clock", "gettimeofday", "clock_gettime"}


def ast_engine_findings(
    cindex,
    path: pathlib.Path,
    vpath: str,
    args: list[str],
) -> list[tuple[int, str, str]]:
    index = cindex.Index.create()
    tu = index.parse(str(path), args=args)
    K = cindex.CursorKind
    out: list[tuple[int, str, str]] = []

    def here(cursor) -> bool:
        return (cursor.location.file is not None
                and pathlib.Path(str(cursor.location.file)) == path)

    def type_spelling(t) -> str:
        try:
            return t.get_canonical().spelling
        except Exception:  # noqa: BLE001
            return t.spelling

    def walk(cursor) -> None:
        for child in cursor.get_children():
            if here(child):
                visit(child)
            walk(child)

    def visit(cursor) -> None:
        line = cursor.location.line
        kind = cursor.kind

        if kind in (K.DECL_REF_EXPR, K.TYPE_REF, K.CALL_EXPR):
            name = cursor.spelling
            if (name in RANDOM_ENTITY_NAMES
                    and not path_matches(vpath, RAW_RANDOM_ALLOWED)):
                out.append((line, "raw-random",
                            f"reference to {name}: raw randomness outside "
                            "src/subsim/random/"))

        if kind == K.CALL_EXPR and path_matches(vpath, WALL_CLOCK_FORBIDDEN):
            name = cursor.spelling
            ref = cursor.referenced
            parent_name = (ref.semantic_parent.spelling
                           if ref is not None and ref.semantic_parent
                           else "")
            if ((name == "now" and parent_name in CLOCK_PARENTS)
                    or name in WALL_CLOCK_FREE_FUNCS):
                out.append((line, "wall-clock",
                            f"call to {parent_name + '::' if parent_name in CLOCK_PARENTS else ''}"
                            f"{name} in a deterministic layer"))

        if (kind == K.VAR_DECL
                and path_matches(vpath, RNG_CONFINEMENT_FORBIDDEN)):
            spelled = type_spelling(cursor.type)
            if spelled.endswith("subsim::Rng") or spelled == "Rng":
                tokens = " ".join(t.spelling
                                  for t in cursor.get_tokens())
                if ("(" in tokens or "{" in tokens) \
                        and not SANCTIONED_STREAM_RE.search(tokens):
                    out.append((line, "rng-confinement",
                                f"Rng {cursor.spelling} constructed from a "
                                "raw seed; use Rng::Substream / "
                                "MakeRngStream / DeriveStreamSeed"))

        if (kind == K.CALL_EXPR
                and not path_matches(vpath, RAW_SOCKET_ALLOWED)
                and cursor.spelling in SOCKET_SYSCALL_NAMES):
            out.append((line, "raw-socket",
                        f"call to ::{cursor.spelling}: socket syscall "
                        "outside src/subsim/net/; go through "
                        "HttpServer/HttpClient"))

        if kind == K.CALL_EXPR and not path_matches(vpath,
                                                    FILL_ENTRY_ALLOWED):
            if cursor.spelling == "ParallelFill":
                out.append((line, "fill-entry-point",
                            "direct ParallelFill call; use FillCollection"
                            "(FillRequest)"))
            elif cursor.spelling == "Fork":
                ref = cursor.referenced
                owner = (ref.semantic_parent.spelling
                         if ref is not None and ref.semantic_parent else "")
                if owner == "Rng":
                    out.append((line, "fill-entry-point",
                                "Rng::Fork outside random/rrset; forked "
                                "streams break thread-count invariance"))
            elif cursor.spelling == "GenerateChunk":
                out.append((line, "fill-entry-point",
                            "BatchRrKernel::GenerateChunk is the fill's "
                            "internal engine; generate samples through "
                            "FillCollection(FillRequest)"))

        if (kind == K.CALL_EXPR and cursor.spelling == "Set"
                and not path_matches(vpath, RR_SPAN_ALLOWED)):
            ref = cursor.referenced
            owner = (ref.semantic_parent.spelling
                     if ref is not None and ref.semantic_parent else "")
            if owner in RR_COLLECTION_CLASSES:
                out.append((line, "rr-span-access",
                            f"{owner}::Set reaches into the RR arena, "
                            "which may be delta-varint encoded; iterate "
                            "via View(id) and "
                            "RrSetView::ForEachNode/Decode"))

        if kind == K.CXX_FOR_RANGE_STMT and path_matches(
                vpath, UNORDERED_ITER_FORBIDDEN):
            children = list(cursor.get_children())
            if len(children) >= 2:
                range_expr = children[-2]
                if "unordered_" in type_spelling(range_expr.type):
                    out.append((line, "unordered-iteration",
                                "range-for over an unordered container in a "
                                "determinism-critical layer"))

        if kind == K.COMPOUND_STMT:
            for stmt in cursor.get_children():
                if stmt.kind == K.CALL_EXPR and here(stmt):
                    spelled = type_spelling(stmt.type)
                    if (spelled.endswith("subsim::Status")
                            or "subsim::Result<" in spelled):
                        out.append((stmt.location.line, "status-discarded",
                                    f"result of {stmt.spelling}() "
                                    f"({spelled}) is discarded"))

    walk(tu.cursor)
    # Findings from macro expansions can repeat per expansion site; dedupe.
    return list(dict.fromkeys(out))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def gather_files(paths: list[pathlib.Path]) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    for p in paths:
        if p.is_dir():
            files.extend(
                sorted(q for q in p.rglob("*") if q.suffix in CXX_SUFFIXES))
        elif p.suffix in CXX_SUFFIXES:
            files.append(p)
    return files


def analyze_file(
    path: pathlib.Path,
    status_functions: set[str],
    engine: str,
    cindex,
    compdb,
    root: pathlib.Path,
) -> list[Finding]:
    raw = read_text(path)
    raw_lines = raw.splitlines()
    code = strip_comments_and_strings(raw)
    vpath = virtual_path(path, raw)

    # Engine-independent pre-pass: include directives vanish before the AST
    # exists, so the socket-header check runs on the stripped text for both
    # engines — guaranteeing they agree on it.
    triples: list[tuple[int, str, str]] = []
    if not path_matches(vpath, RAW_SOCKET_ALLOWED):
        for m in SOCKET_HEADER_RE.finditer(code):
            triples.append(
                (line_of(code, m.start()), "raw-socket",
                 f"#include <{m.group('header')}> outside src/subsim/net/; "
                 "raw sockets are confined to the net layer"))

    if engine == "ast":
        triples += ast_engine_findings(
            cindex, path, vpath, compile_args_for(path, compdb, root))
        # The ast engine resolves status-discarded from real return types;
        # everything it cannot see (headers outside the TU) is accepted.
    else:
        triples += text_engine_findings(path, raw, code, vpath,
                                        status_functions)

    findings: list[Finding] = []
    for lineno, rule, message in triples:
        nolint = find_nolint(raw_lines, lineno)
        if nolint is not None:
            rules, has_reason, marker_line = nolint
            if rule in rules or "*" in rules:
                if not has_reason:
                    findings.append(
                        Finding(path, marker_line, "nolint-needs-reason",
                                "SUBSIM-NOLINT must state a reason: "
                                "`// SUBSIM-NOLINT(rule): <why>`"))
                continue
        findings.append(Finding(path, lineno, rule, message))
    return list(dict.fromkeys(findings))


def pick_engine(requested: str):
    """Returns (engine_name, cindex_module_or_None) or exits with code 2."""
    if requested == "text":
        return "text", None
    cindex = load_cindex()
    if cindex is not None:
        return "ast", cindex
    if requested == "ast":
        print("subsim_analyze: --engine=ast requires the clang python "
              "bindings and a loadable libclang", file=sys.stderr)
        raise SystemExit(2)
    print("subsim_analyze: libclang unavailable; using the textual engine",
          file=sys.stderr)
    return "text", None


def load_compdb(path: pathlib.Path | None):
    if path is None or not path.is_file():
        return None
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def run_analyze(paths: list[pathlib.Path], root: pathlib.Path,
                engine: str, compdb_path: pathlib.Path | None) -> int:
    files = gather_files(paths)
    if not files:
        print(f"subsim_analyze: no C++ sources under {paths}",
              file=sys.stderr)
        return 2
    engine, cindex = pick_engine(engine)
    compdb = load_compdb(compdb_path) if engine == "ast" else None
    status_functions = collect_status_functions(files)
    findings: list[Finding] = []
    for f in files:
        findings.extend(
            analyze_file(f, status_functions, engine, cindex, compdb, root))
    for finding in findings:
        print(finding.render(root))
    if findings:
        print(f"subsim_analyze[{engine}]: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"subsim_analyze[{engine}]: OK ({len(files)} files clean)")
    return 0


EXPECT_RE = re.compile(r"ANALYZE-EXPECT:\s*(?P<rules>[\w,\- ]+)")


def run_self_test(fixtures: pathlib.Path, root: pathlib.Path,
                  engine: str, compdb_path: pathlib.Path | None) -> int:
    """Analyzes the fixture corpus and diffs findings against ANALYZE-EXPECT
    marks. Misses, false positives, uncovered rules, and fixtures without an
    ANALYZE-AS pragma all fail."""
    files = gather_files([fixtures])
    if not files:
        print(f"subsim_analyze: no fixtures under {fixtures}",
              file=sys.stderr)
        return 2
    engine, cindex = pick_engine(engine)
    compdb = load_compdb(compdb_path) if engine == "ast" else None
    status_functions = collect_status_functions(files)

    expected: set[tuple[str, int, str]] = set()
    for f in files:
        raw = read_text(f)
        if not ANALYZE_AS_RE.search("\n".join(raw.splitlines()[:5])):
            print(f"{f}: fixture must declare `// ANALYZE-AS: <virtual "
                  "path>` in its first lines", file=sys.stderr)
            return 2
        for lineno, line in enumerate(raw.splitlines(), start=1):
            m = EXPECT_RE.search(line)
            if m:
                for rule in m.group("rules").split(","):
                    rule = rule.strip()
                    if rule not in ALL_RULES:
                        print(f"{f}:{lineno}: unknown rule in "
                              f"ANALYZE-EXPECT: {rule}", file=sys.stderr)
                        return 2
                    expected.add((f.as_posix(), lineno, rule))

    actual: set[tuple[str, int, str]] = set()
    for f in files:
        for finding in analyze_file(f, status_functions, engine, cindex,
                                    compdb, root):
            actual.add((finding.path.as_posix(), finding.line, finding.rule))

    missing = expected - actual
    unexpected = actual - expected
    for path, lineno, rule in sorted(missing):
        print(f"SELF-TEST MISS {path}:{lineno}: expected [{rule}]")
    for path, lineno, rule in sorted(unexpected):
        print(f"SELF-TEST FALSE-POSITIVE {path}:{lineno}: [{rule}]")

    covered = {rule for _, _, rule in expected}
    uncovered = [r for r in ALL_RULES if r not in covered]
    for rule in uncovered:
        print(f"SELF-TEST GAP: no fixture exercises [{rule}]")

    if missing or unexpected or uncovered:
        return 1
    print(f"subsim_analyze[{engine}] self-test: OK ({len(expected)} seeded "
          f"violations across {len(files)} fixtures, all {len(ALL_RULES)} "
          "rules)")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="subsim_analyze.py",
        description="subsim semantic concurrency & determinism analyzer")
    parser.add_argument("paths", nargs="*", type=pathlib.Path,
                        help="files or directories to analyze")
    parser.add_argument("--engine", choices=("auto", "ast", "text"),
                        default="auto",
                        help="ast = libclang (semantic), text = built-in "
                             "lexer; auto prefers ast when available")
    parser.add_argument("--compile-commands", type=pathlib.Path,
                        default=None,
                        help="compile_commands.json for the ast engine "
                             "(default: build/compile_commands.json)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify against tools/lint_fixtures/analyze/")
    args = parser.parse_args(argv)

    repo_root = pathlib.Path(__file__).resolve().parent.parent
    compdb = args.compile_commands
    if compdb is None:
        candidate = repo_root / "build" / "compile_commands.json"
        compdb = candidate if candidate.is_file() else None

    if args.self_test:
        return run_self_test(
            repo_root / "tools" / "lint_fixtures" / "analyze", repo_root,
            args.engine, compdb)
    if not args.paths:
        parser.print_usage(sys.stderr)
        return 2
    return run_analyze([p.resolve() for p in args.paths], repo_root,
                       args.engine, compdb)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
