#!/bin/sh
# Runs clang-tidy over the subsim sources using the repo's .clang-tidy
# configuration and a compile_commands.json database.
#
# Usage:
#   tools/run_clang_tidy.sh [--changed-only] [build-dir] [file...]
#
#   --changed-only
#              restrict the run to src/ sources that differ from the merge
#              base with origin/main (falling back to HEAD~1, then to a
#              full run when no git history is available). The fast path
#              for local iteration; CI still runs the full sweep.
#   build-dir  directory containing compile_commands.json (default: build/;
#              configured automatically if missing)
#   file...    restrict the run to specific sources (default: all of src/)
#
# Exit status: non-zero iff clang-tidy reports any finding (warnings are
# errors via WarningsAsErrors in .clang-tidy). When no clang-tidy binary is
# installed the script prints a notice and exits 0 so that local machines
# without LLVM are not blocked; CI installs clang-tidy and therefore always
# enforces the zero-warning policy.

set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

changed_only=0
if [ "${1:-}" = "--changed-only" ]; then
  changed_only=1
  shift
fi

build_dir=${1:-"${repo_root}/build"}
[ $# -gt 0 ] && shift

# Locate clang-tidy, accepting versioned binaries (clang-tidy-18 etc).
tidy=${CLANG_TIDY:-}
if [ -z "${tidy}" ]; then
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      tidy=${candidate}
      break
    fi
  done
fi
if [ -z "${tidy}" ]; then
  echo "run_clang_tidy.sh: no clang-tidy binary found; skipping." >&2
  echo "Install clang-tidy (or set CLANG_TIDY=/path/to/clang-tidy)." >&2
  exit 0
fi

# Make sure a compilation database exists; configure one if needed.
if [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "run_clang_tidy.sh: configuring ${build_dir} for compile_commands.json"
  cmake -B "${build_dir}" -S "${repo_root}" >/dev/null
fi
if [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "run_clang_tidy.sh: ${build_dir}/compile_commands.json missing" >&2
  exit 2
fi

if [ $# -gt 0 ]; then
  files=$*
elif [ "${changed_only}" -eq 1 ]; then
  base=$(git -C "${repo_root}" merge-base HEAD origin/main 2>/dev/null ||
         git -C "${repo_root}" rev-parse HEAD~1 2>/dev/null || true)
  if [ -z "${base}" ]; then
    echo "run_clang_tidy.sh: no git base for --changed-only;" \
         "running the full sweep" >&2
    files=$(find "${repo_root}/src" -name '*.cc' | sort)
  else
    # Committed changes since the base plus uncommitted edits, deletions
    # excluded (a removed file has nothing to tidy).
    files=$( (git -C "${repo_root}" diff --name-only --diff-filter=d \
                  "${base}" -- 'src/*.cc' 'src/**/*.cc';
              git -C "${repo_root}" diff --name-only --diff-filter=d \
                  -- 'src/*.cc' 'src/**/*.cc') |
             sort -u | sed "s|^|${repo_root}/|")
    if [ -z "${files}" ]; then
      echo "run_clang_tidy.sh: no changed src/ sources since" \
           "$(git -C "${repo_root}" rev-parse --short "${base}"); clean."
      exit 0
    fi
  fi
else
  files=$(find "${repo_root}/src" -name '*.cc' | sort)
fi

echo "run_clang_tidy.sh: $(${tidy} --version | head -n 1)"
status=0
for f in ${files}; do
  echo "  tidy ${f#"${repo_root}"/}"
  "${tidy}" --quiet -p "${build_dir}" "${f}" || status=1
done

if [ "${status}" -ne 0 ]; then
  echo "run_clang_tidy.sh: findings reported (see above)" >&2
fi
exit "${status}"
