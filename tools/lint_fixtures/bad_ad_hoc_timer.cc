// Fixture: WallTimer inside the instrumented layers (algo/rrset/serve)
// must be flagged — PhaseScope is the sanctioned stopwatch there. Never
// compiled — linted only by subsim_lint.py --self-test.
#include "subsim/util/timer.h"

double TimeAPhaseByHand() {
  subsim::WallTimer timer;  // LINT-EXPECT: ad-hoc-timer
  return timer.ElapsedSeconds();
}

double TimeAPhaseWithAnExcuse() {
  subsim::WallTimer timer;  // SUBSIM-NOLINT(ad-hoc-timer): fixture shows a reasoned suppression passes
  return timer.ElapsedSeconds();
}
