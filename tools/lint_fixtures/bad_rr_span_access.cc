// Fixture: direct span access into an RR collection outside the rrset
// layer. The arena may be delta-varint encoded, so there is no contiguous
// NodeId span to hand out — consumers go through View(id) and the
// RrSetView cursor. Never compiled — linted only by --self-test.
#include "subsim/rrset/rr_collection.h"

namespace subsim {

NodeId FirstNodeTheOldWay(const RrCollection& collection) {
  return collection.Set(0)[0];  // LINT-EXPECT: rr-span-access
}

NodeId FirstNodeFromAView(const RrCollectionView& snapshot) {
  return snapshot.Set(0).front();  // LINT-EXPECT: rr-span-access
}

void UnrelatedSetMethodsStayClean(Gauge gauge, BitVector* covered) {
  gauge.Set(1.0);      // a metrics gauge, not an RR collection
  covered->Set(42);    // a bitmap, not an RR collection
}

NodeId SuppressedWithAReason(const RrCollection& collection) {
  // SUBSIM-NOLINT-NEXTLINE(rr-span-access): fixture shows a reasoned suppression passes
  return collection.Set(0)[0];
}

}  // namespace subsim
