// Fixture: raw libc/std randomness outside src/subsim/random/ must be
// flagged. Never compiled — linted only by subsim_lint.py --self-test.
#include <cstdlib>
#include <random>

int NoisySeed() {
  std::random_device rd;  // LINT-EXPECT: raw-random
  return static_cast<int>(rd());
}

int LibcDraw() {
  srand(42);  // LINT-EXPECT: raw-random
  return std::rand();  // LINT-EXPECT: raw-random
}

// Mentioning rand() in a comment is fine; identifiers merely containing the
// word, like operand_count or rand_index, are fine too.
int operand_count(int rand_index);
