// Fixture: the serve/query_engine.cc allowance is a single-file exemption,
// not a subsystem one — raw threads in any *other* serve-flavored file (a
// hypothetical serve/worker_util.cc, a test, a tool) must still be flagged.
// The path of this fixture deliberately does not end in the allowed
// suffixes. Never compiled — linted only by subsim_lint.py --self-test.
#include <thread>  // LINT-EXPECT: raw-thread

namespace serve_helpers {

void SpawnDetachedPoolWorker() {
  std::thread worker([] {});  // LINT-EXPECT: raw-thread
  worker.detach();
}

unsigned ProbeParallelism() {
  // hardware_concurrency drags in <thread>, so even "read-only" uses of
  // std::thread are findings outside the two allowed translation units.
  return std::thread::hardware_concurrency();  // LINT-EXPECT: raw-thread
}

}  // namespace serve_helpers
