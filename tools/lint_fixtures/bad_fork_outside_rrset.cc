// Fixture: RR-set bulk generation outside the one FillCollection entry
// point must be flagged. Never compiled — linted only by
// subsim_lint.py --self-test.

struct Rng {
  Rng Fork(unsigned long long stream) const;
};

void AdHocFill(Rng& master) {
  Rng worker = master.Fork(1);  // LINT-EXPECT: fill-entry-point
  (void)worker;
  Rng* ptr = &master;
  Rng other = ptr->Fork(2);  // LINT-EXPECT: fill-entry-point
  (void)other;
}

void LegacyEntryPoint() {
  ParallelFill();  // LINT-EXPECT: fill-entry-point
  ParallelFillOptions options;  // LINT-EXPECT: fill-entry-point
  (void)options;
}

// The batched chunk kernel is the fill's internal engine; naming the type
// or calling its chunk entry outside random/rrset bypasses FillCollection.
void DirectBatchKernel(void* kernel_ptr) {
  BatchRrKernel* kernel = nullptr;  // LINT-EXPECT: fill-entry-point
  (void)kernel;
  (void)kernel_ptr;
  GenerateChunk(11, 0, 64);  // LINT-EXPECT: fill-entry-point
}

// A suppression with a reason is honoured.
void Sanctioned(Rng& master) {
  // SUBSIM-NOLINT-NEXTLINE(fill-entry-point): exercising the suppressor
  Rng worker = master.Fork(3);
  (void)worker;
}

// Mentions in comments are fine: ParallelFill, Rng::Fork.
int fill_entry_points_configured();
