// Fixture: socket headers and syscalls outside src/subsim/net/ must be
// flagged. Never compiled — linted only by subsim_lint.py --self-test.
#include <arpa/inet.h>   // LINT-EXPECT: raw-socket
#include <sys/socket.h>  // LINT-EXPECT: raw-socket

int DialDirect(const char* text_addr) {
  int fd = socket(2, 1, 0);  // LINT-EXPECT: raw-socket
  unsigned addr = 0;
  inet_pton(2, text_addr, &addr);  // LINT-EXPECT: raw-socket
  return fd;
}

int AwaitDirect(int fd, void* sa, unsigned* len) {
  listen(fd, 16);  // LINT-EXPECT: raw-socket
  return accept(fd, sa, len);  // LINT-EXPECT: raw-socket
}

// `socket` in a comment is fine, as is Connect()-style method naming below.
int ConnectBudget();
