// Fixture: console output outside util/logging must be flagged. Never
// compiled — linted only by subsim_lint.py --self-test.
#include <iostream>  // LINT-EXPECT: iostream-logging
#include <cstdio>

void Report(int n) {
  std::cout << n << "\n";  // LINT-EXPECT: iostream-logging
  std::cerr << "warning" << "\n";  // LINT-EXPECT: iostream-logging
  printf("%d\n", n);  // LINT-EXPECT: iostream-logging
  std::fprintf(stderr, "%d\n", n);  // LINT-EXPECT: iostream-logging
  fputs("done\n", stderr);  // LINT-EXPECT: iostream-logging
}

// Formatting into a buffer is not logging; snprintf stays legal.
void Format(char* buf, unsigned long size, int n);
