// ANALYZE-AS: src/subsim/algo/example_rr.cc
// Fixture: direct span access into an RR collection outside the rrset
// layer. The arena may be delta-varint encoded, so there is no contiguous
// NodeId span — consumers iterate through View(id) and RrSetView. The
// classes are re-declared locally (instead of including the real header,
// which no longer has Set at all) so the ast engine can resolve the
// member the way it would against a stale checkout.

namespace subsim {

using NodeId = unsigned;

class RrCollection {
 public:
  const NodeId* Set(unsigned id) const;
};

class RrCollectionView {
 public:
  const NodeId* Set(unsigned id) const;
};

class Gauge {
 public:
  void Set(double value);
};

NodeId FirstNodeTheOldWay(const RrCollection& collection) {
  return collection.Set(0)[0];  // ANALYZE-EXPECT: rr-span-access
}

NodeId FirstNodeFromAView(const RrCollectionView& snapshot) {
  return snapshot.Set(1)[0];  // ANALYZE-EXPECT: rr-span-access
}

void UnrelatedSetMethodsStayClean(Gauge& gauge) {
  gauge.Set(1.0);  // a metrics gauge — different class, no finding
}

}  // namespace subsim
