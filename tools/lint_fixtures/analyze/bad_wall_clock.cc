// ANALYZE-AS: src/subsim/rrset/example.cc
// Fixture: clock reads inside a deterministic layer. A result that depends
// on the wall clock cannot be replayed from its seed.
#include <chrono>
#include <ctime>

namespace subsim {

double BadTiming() {
  const auto t0 = std::chrono::steady_clock::now();   // ANALYZE-EXPECT: wall-clock
  const std::time_t stamp = std::time(nullptr);       // ANALYZE-EXPECT: wall-clock
  const auto t1 = std::chrono::system_clock::now();   // ANALYZE-EXPECT: wall-clock
  return static_cast<double>(stamp) +
         std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace subsim
