// ANALYZE-AS: src/subsim/algo/example.cc
// Fixture: raw randomness sources in an algorithm file. Every one of these
// breaks single-seed reproducibility and must be a finding.
#include <cstdlib>
#include <random>

namespace subsim {

unsigned BadEntropy() {
  std::random_device dev;                // ANALYZE-EXPECT: raw-random
  std::mt19937 engine(dev());            // ANALYZE-EXPECT: raw-random
  return engine() + std::rand();         // ANALYZE-EXPECT: raw-random
}

}  // namespace subsim
