// ANALYZE-AS: src/subsim/serve/example.cc
// Fixture: the serving layer measures latency; clocks are its job. No
// findings.
#include <chrono>

namespace subsim {

double QueueSeconds(std::chrono::steady_clock::time_point enqueued) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       enqueued)
      .count();
}

}  // namespace subsim
