// ANALYZE-AS: src/subsim/algo/example.cc
// Fixture: the sanctioned ways to obtain an Rng in a stream-disciplined
// layer — counter-derived substreams and derived per-stream seeds. No
// findings.
#include <cstdint>

#include "subsim/random/rng.h"

namespace subsim {

std::uint64_t GoodStreams(std::uint64_t base_seed, std::uint64_t index) {
  Rng per_set = Rng::Substream(base_seed, index);
  Rng derived(DeriveStreamSeed(base_seed, 1));
  RngStream stream = MakeRngStream(base_seed, 2);
  return per_set.NextU64() + derived.NextU64() + stream.next_index;
}

}  // namespace subsim
