// ANALYZE-AS: src/subsim/algo/example.cc
// Fixture: a suppression without a reason is itself a finding — the why
// is the whole point of the marker.
#include <cstdint>

#include "subsim/random/rng.h"

namespace subsim {

std::uint64_t BadSuppression(std::uint64_t seed) {
  Rng rng(seed);  // SUBSIM-NOLINT(rng-confinement) -- ANALYZE-EXPECT: nolint-needs-reason
  return rng.NextU64();
}

}  // namespace subsim
