// ANALYZE-AS: src/subsim/net/example.cc
// Fixture: the net layer owns the sockets. No findings.
#include <sys/socket.h>

namespace subsim {

int Dial() { return ::socket(AF_INET, SOCK_STREAM, 0); }

}  // namespace subsim
