// ANALYZE-AS: src/subsim/rrset/example.cc
// Fixture: the rrset layer implements the fill machinery, so it may call
// ParallelFill and fork worker streams. No findings.
#include <cstdint>

#include "subsim/random/rng.h"

namespace subsim {

void ImplementFill(Rng& rng) {
  ParallelFill(nullptr, 128);
  Rng worker = rng.Fork(0);
  (void)worker;
}

}  // namespace subsim
