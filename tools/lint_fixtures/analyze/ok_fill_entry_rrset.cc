// ANALYZE-AS: src/subsim/rrset/example.cc
// Fixture: the rrset layer implements the fill machinery, so it may call
// ParallelFill and fork worker streams. No findings.
#include <cstdint>

#include "subsim/random/rng.h"

namespace subsim {

void ImplementFill(Rng& rng) {
  ParallelFill(nullptr, 128);
  Rng worker = rng.Fork(0);
  (void)worker;
}

// The rrset layer also owns the batched chunk kernel; calling it here is
// the implementation, not a bypass.
void ImplementBatchedFill() {
  GenerateChunk(11, 0, 64);
}

}  // namespace subsim
