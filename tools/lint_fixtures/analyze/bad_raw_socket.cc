// ANALYZE-AS: src/subsim/serve/example.cc
// Fixture: raw sockets outside the net layer. Bytes must enter through
// HttpServer (fuzzable parser, IO timeouts, admission control), not
// through a side-channel dial.
#include <netinet/in.h>  // ANALYZE-EXPECT: raw-socket
#include <sys/socket.h>  // ANALYZE-EXPECT: raw-socket

namespace subsim {

int DialDirect() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);  // ANALYZE-EXPECT: raw-socket
  sockaddr_in addr{};
  const sockaddr* sa = reinterpret_cast<const sockaddr*>(&addr);
  const int rc = ::connect(fd, sa, sizeof(addr));  // ANALYZE-EXPECT: raw-socket
  return rc == 0 ? fd : -1;
}

}  // namespace subsim
