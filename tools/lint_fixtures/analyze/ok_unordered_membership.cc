// ANALYZE-AS: src/subsim/graph/example.cc
// Fixture: hash containers are fine for membership tests, and iterating an
// *ordered* container is fine anywhere. No findings.
#include <cstdint>
#include <set>
#include <unordered_set>
#include <vector>

namespace subsim {

std::vector<std::uint32_t> GoodEmit(const std::vector<std::uint32_t>& input) {
  std::unordered_set<std::uint32_t> seen;
  std::set<std::uint32_t> ordered;
  std::vector<std::uint32_t> out;
  for (std::uint32_t v : input) {
    if (seen.insert(v).second) {
      ordered.insert(v);
    }
  }
  for (std::uint32_t v : ordered) {
    out.push_back(v);
  }
  return out;
}

}  // namespace subsim
