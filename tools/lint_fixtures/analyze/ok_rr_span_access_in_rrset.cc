// ANALYZE-AS: src/subsim/rrset/internal_example.cc
// Fixture: inside src/subsim/rrset/ the implementation layer is allowed
// to reach into its own arena — the encoding is its to know. No findings.

namespace subsim {

using NodeId = unsigned;

class RrCollection {
 public:
  const NodeId* Set(unsigned id) const;
};

NodeId ImplementationDetail(const RrCollection& collection) {
  return collection.Set(0)[0];
}

}  // namespace subsim
