// ANALYZE-AS: src/subsim/graph/example.cc
// Fixture: iterating a hash container in a layer whose output must be
// bit-identical across standard libraries. Iteration order is
// implementation-defined, so anything emitted in that order diverges
// between libc++ and libstdc++ even with identical seeds. (This is the
// GenerateBarabasiAlbert bug, reduced.)
#include <cstdint>
#include <unordered_set>
#include <vector>

namespace subsim {

std::vector<std::uint32_t> BadEmit(const std::unordered_set<std::uint32_t>& chosen) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t target : chosen) {  // ANALYZE-EXPECT: unordered-iteration
    out.push_back(target);
  }
  return out;
}

}  // namespace subsim
