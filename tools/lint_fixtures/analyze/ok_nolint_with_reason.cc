// ANALYZE-AS: src/subsim/algo/example.cc
// Fixture: a reasoned suppression silences the rule cleanly. No findings.
#include <cstdint>

#include "subsim/random/rng.h"

namespace subsim {

std::uint64_t ReasonedSuppression(std::uint64_t seed) {
  // SUBSIM-NOLINT-NEXTLINE(rng-confinement): sequential MC stream by design
  Rng rng(seed);
  return rng.NextU64();
}

}  // namespace subsim
