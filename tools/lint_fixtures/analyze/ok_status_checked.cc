// ANALYZE-AS: src/subsim/algo/example.cc
// Fixture: the sanctioned ways to consume a Status — test it, propagate
// it, or explicitly discard with a reasoned suppression. No findings.
#include "subsim/util/status.h"

namespace subsim {

Status FlushCheckedFixture();

Status GoodDiscard() {
  const Status status = FlushCheckedFixture();
  if (!status.ok()) {
    return status;
  }
  SUBSIM_RETURN_IF_ERROR(FlushCheckedFixture());
  return Status::Ok();
}

}  // namespace subsim
