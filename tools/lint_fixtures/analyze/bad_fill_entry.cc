// ANALYZE-AS: src/subsim/serve/example.cc
// Fixture: bypassing FillCollection(FillRequest) from the serving layer.
// Both the legacy ParallelFill entry point and forked Rng streams would
// break thread-count invariance of the generated samples.
#include <cstdint>

#include "subsim/random/rng.h"

namespace subsim {

void BadFill(Rng& rng) {
  ParallelFill(nullptr, 128);            // ANALYZE-EXPECT: fill-entry-point
  Rng forked = rng.Fork(3);              // ANALYZE-EXPECT: fill-entry-point
  (void)forked;
}

void BadBatchKernel() {
  GenerateChunk(11, 0, 64);              // ANALYZE-EXPECT: fill-entry-point
}

}  // namespace subsim
