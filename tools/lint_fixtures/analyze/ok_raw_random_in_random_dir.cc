// ANALYZE-AS: src/subsim/random/example.cc
// Fixture: the random/ layer itself may touch std::random_device (e.g. to
// implement an opt-in nondeterministic seeding helper). No findings.
#include <random>

namespace subsim {

unsigned SanctionedEntropy() {
  std::random_device dev;
  return dev();
}

}  // namespace subsim
