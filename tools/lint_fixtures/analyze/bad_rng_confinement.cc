// ANALYZE-AS: src/subsim/algo/example.cc
// Fixture: ad-hoc Rng streams in a stream-disciplined layer. A raw seed
// starts a sequential stream whose draws depend on who consumed how many —
// exactly what the Substream counter API exists to prevent.
#include <cstdint>

#include "subsim/random/rng.h"

namespace subsim {

std::uint64_t BadStreams(std::uint64_t seed) {
  Rng rng(seed);                         // ANALYZE-EXPECT: rng-confinement
  Rng braced{seed};                      // ANALYZE-EXPECT: rng-confinement
  const auto value = rng.NextU64() + braced.NextU64();
  Rng temp = Rng(seed + 1);              // ANALYZE-EXPECT: rng-confinement
  return value + temp.NextU64();
}

}  // namespace subsim
