// ANALYZE-AS: src/subsim/algo/example.cc
// Fixture: a Status-returning call used as a bare expression statement —
// the error vanishes. ([[nodiscard]] catches this at compile time; the
// analyzer keeps it visible to source-only tooling.)
#include "subsim/util/status.h"

namespace subsim {

Status FlushDiscardFixture();

void BadDiscard() {
  FlushDiscardFixture();                 // ANALYZE-EXPECT: status-discarded
}

}  // namespace subsim
