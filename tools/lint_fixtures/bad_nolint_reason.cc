// Fixture: SUBSIM-NOLINT without a reason is itself a violation; with a
// reason it suppresses. Never compiled — linted by --self-test only.
#include <cstdio>

void Emit(int n) {
  printf("%d\n", n);  // SUBSIM-NOLINT(iostream-logging) LINT-EXPECT: nolint-needs-reason
  printf("%d\n", n);  // SUBSIM-NOLINT(iostream-logging): CLI result rows go to stdout by design
}

void EmitNextline(int n) {
  // SUBSIM-NOLINT-NEXTLINE(iostream-logging) LINT-EXPECT: nolint-needs-reason
  printf("%d\n", n);
  // SUBSIM-NOLINT-NEXTLINE(iostream-logging): progress bar writes straight to the terminal
  printf("%d\n", n);
}
