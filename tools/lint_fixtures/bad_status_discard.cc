// Fixture: dropped Status/Result returns must be flagged; consumed ones
// must not. Never compiled — linted only by subsim_lint.py --self-test.
#include <string>

struct Status {
  bool ok() const;
};

template <typename T>
struct Result {
  bool ok() const;
};

Status SaveCheckpoint(const std::string& path);
Status Flush();
Result<int> CountEdges(const std::string& path);

namespace writer {
Status Sync();
}  // namespace writer

void Caller(const std::string& path) {
  SaveCheckpoint(path);  // LINT-EXPECT: status-discarded
  Flush();  // LINT-EXPECT: status-discarded
  CountEdges(path);  // LINT-EXPECT: status-discarded
  writer::Sync();  // LINT-EXPECT: status-discarded

  // All consumed: no findings.
  Status s = SaveCheckpoint(path);
  (void)s;
  (void)Flush();
  if (!writer::Sync().ok()) {
    return;
  }
  const Status again = Flush();
  (void)again;
}
