// Fixture: thread management outside rrset/parallel_fill.cc must be
// flagged. Never compiled — linted only by subsim_lint.py --self-test.
#include <thread>  // LINT-EXPECT: raw-thread

void SpawnWorker() {
  std::thread t([] {});  // LINT-EXPECT: raw-thread
  t.join();
}

void SpawnJWorker() {
  std::jthread u([] {});  // LINT-EXPECT: raw-thread
}

// std::thread in a comment is fine, as is this_thread-free code below.
int threads_configured();
