# Sanitizer preset plumbing for every subsim target.
#
# Usage:
#   cmake -B build-asan -S . -DSUBSIM_SANITIZE="address;undefined"
#   cmake -B build-tsan -S . -DSUBSIM_SANITIZE=thread
#   cmake -B build-msan -S . -DSUBSIM_SANITIZE=memory   (clang only)
#
# Each subdirectory CMakeLists calls subsim_apply_sanitizers(<target>) on
# every target it defines, so the whole tree — library, tests, benches,
# examples, tools — is instrumented consistently. Mixing instrumented and
# uninstrumented translation units is a link error at best and a silent
# false-negative at worst, which is why this is a per-target function rather
# than a directory-scoped add_compile_options: a target that forgets the
# call fails to link against the instrumented library instead of quietly
# skipping instrumentation.

set(SUBSIM_SANITIZE "" CACHE STRING
    "Semicolon- or comma-separated sanitizers: address, undefined, thread, leak, memory")

# Accept comma separators so `-DSUBSIM_SANITIZE=address,undefined` works
# without shell quoting gymnastics.
string(REPLACE "," ";" _subsim_sanitize_list "${SUBSIM_SANITIZE}")

set(_subsim_san_flags "")
set(_subsim_san_has_thread OFF)
set(_subsim_san_has_addr_or_leak OFF)
set(_subsim_san_has_memory OFF)

foreach(_san IN LISTS _subsim_sanitize_list)
  string(STRIP "${_san}" _san)
  string(TOLOWER "${_san}" _san)
  if(_san STREQUAL "")
    continue()
  elseif(_san STREQUAL "address")
    list(APPEND _subsim_san_flags -fsanitize=address)
    set(_subsim_san_has_addr_or_leak ON)
  elseif(_san STREQUAL "undefined")
    # Abort on any UB report instead of recovering, so ctest runs fail loudly.
    list(APPEND _subsim_san_flags -fsanitize=undefined
         -fno-sanitize-recover=all)
  elseif(_san STREQUAL "thread")
    list(APPEND _subsim_san_flags -fsanitize=thread)
    set(_subsim_san_has_thread ON)
  elseif(_san STREQUAL "leak")
    list(APPEND _subsim_san_flags -fsanitize=leak)
    set(_subsim_san_has_addr_or_leak ON)
  elseif(_san STREQUAL "memory")
    if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
      message(FATAL_ERROR
              "SUBSIM_SANITIZE=memory requires clang (current compiler: "
              "${CMAKE_CXX_COMPILER_ID}). Reconfigure with "
              "-DCMAKE_CXX_COMPILER=clang++.")
    endif()
    list(APPEND _subsim_san_flags -fsanitize=memory
         -fsanitize-memory-track-origins)
    set(_subsim_san_has_memory ON)
  else()
    message(FATAL_ERROR "Unknown SUBSIM_SANITIZE entry '${_san}' "
            "(expected address, undefined, thread, leak, or memory)")
  endif()
endforeach()

if(_subsim_san_has_thread AND _subsim_san_has_addr_or_leak)
  message(FATAL_ERROR
          "SUBSIM_SANITIZE: thread cannot be combined with address/leak")
endif()
if(_subsim_san_has_memory AND (_subsim_san_has_thread OR
                               _subsim_san_has_addr_or_leak))
  message(FATAL_ERROR
          "SUBSIM_SANITIZE: memory cannot be combined with other sanitizers")
endif()

if(_subsim_san_flags)
  list(REMOVE_DUPLICATES _subsim_san_flags)
  # Frame pointers keep sanitizer stack traces usable under optimization.
  list(APPEND _subsim_san_flags -fno-omit-frame-pointer -g)
  message(STATUS "subsim: sanitizers enabled: ${SUBSIM_SANITIZE}")
endif()

# Applies the configured sanitizer flags to `target` (compile and link).
# A no-op when SUBSIM_SANITIZE is empty, so every CMakeLists can call it
# unconditionally.
function(subsim_apply_sanitizers target)
  if(_subsim_san_flags)
    target_compile_options(${target} PRIVATE ${_subsim_san_flags})
    target_link_options(${target} PRIVATE ${_subsim_san_flags})
  endif()
endfunction()
