# Empty compiler generated dependencies file for bench_fig5_influence_vary_k.
# This may be replaced when dependencies are built.
