# Empty dependencies file for bench_fig3_rrset_stats.
# This may be replaced when dependencies are built.
