file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_skewed_rrgen.dir/bench_fig2_skewed_rrgen.cc.o"
  "CMakeFiles/bench_fig2_skewed_rrgen.dir/bench_fig2_skewed_rrgen.cc.o.d"
  "bench_fig2_skewed_rrgen"
  "bench_fig2_skewed_rrgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_skewed_rrgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
