# Empty compiler generated dependencies file for bench_fig2_skewed_rrgen.
# This may be replaced when dependencies are built.
