# Empty dependencies file for bench_fig1_wc_runtime.
# This may be replaced when dependencies are built.
