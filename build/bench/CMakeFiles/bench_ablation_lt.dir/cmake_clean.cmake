file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lt.dir/bench_ablation_lt.cc.o"
  "CMakeFiles/bench_ablation_lt.dir/bench_ablation_lt.cc.o.d"
  "bench_ablation_lt"
  "bench_ablation_lt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
