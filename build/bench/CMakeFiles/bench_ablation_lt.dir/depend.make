# Empty dependencies file for bench_ablation_lt.
# This may be replaced when dependencies are built.
