file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_wc_variant_vary_theta.dir/bench_fig6_wc_variant_vary_theta.cc.o"
  "CMakeFiles/bench_fig6_wc_variant_vary_theta.dir/bench_fig6_wc_variant_vary_theta.cc.o.d"
  "bench_fig6_wc_variant_vary_theta"
  "bench_fig6_wc_variant_vary_theta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_wc_variant_vary_theta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
