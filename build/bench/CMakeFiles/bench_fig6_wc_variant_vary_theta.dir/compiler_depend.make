# Empty compiler generated dependencies file for bench_fig6_wc_variant_vary_theta.
# This may be replaced when dependencies are built.
