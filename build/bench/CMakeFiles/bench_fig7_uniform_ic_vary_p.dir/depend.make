# Empty dependencies file for bench_fig7_uniform_ic_vary_p.
# This may be replaced when dependencies are built.
