file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_uniform_ic_vary_p.dir/bench_fig7_uniform_ic_vary_p.cc.o"
  "CMakeFiles/bench_fig7_uniform_ic_vary_p.dir/bench_fig7_uniform_ic_vary_p.cc.o.d"
  "bench_fig7_uniform_ic_vary_p"
  "bench_fig7_uniform_ic_vary_p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_uniform_ic_vary_p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
