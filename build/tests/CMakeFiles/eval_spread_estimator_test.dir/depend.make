# Empty dependencies file for eval_spread_estimator_test.
# This may be replaced when dependencies are built.
