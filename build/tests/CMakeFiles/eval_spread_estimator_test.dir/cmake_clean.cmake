file(REMOVE_RECURSE
  "CMakeFiles/eval_spread_estimator_test.dir/eval/spread_estimator_test.cc.o"
  "CMakeFiles/eval_spread_estimator_test.dir/eval/spread_estimator_test.cc.o.d"
  "eval_spread_estimator_test"
  "eval_spread_estimator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_spread_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
