# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for eval_exact_spread_test.
