# Empty compiler generated dependencies file for eval_exact_spread_test.
# This may be replaced when dependencies are built.
