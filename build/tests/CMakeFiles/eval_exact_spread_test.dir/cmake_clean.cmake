file(REMOVE_RECURSE
  "CMakeFiles/eval_exact_spread_test.dir/eval/exact_spread_test.cc.o"
  "CMakeFiles/eval_exact_spread_test.dir/eval/exact_spread_test.cc.o.d"
  "eval_exact_spread_test"
  "eval_exact_spread_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_exact_spread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
