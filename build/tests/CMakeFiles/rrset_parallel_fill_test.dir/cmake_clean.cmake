file(REMOVE_RECURSE
  "CMakeFiles/rrset_parallel_fill_test.dir/rrset/parallel_fill_test.cc.o"
  "CMakeFiles/rrset_parallel_fill_test.dir/rrset/parallel_fill_test.cc.o.d"
  "rrset_parallel_fill_test"
  "rrset_parallel_fill_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrset_parallel_fill_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
