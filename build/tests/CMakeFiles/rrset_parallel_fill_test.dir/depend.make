# Empty dependencies file for rrset_parallel_fill_test.
# This may be replaced when dependencies are built.
