file(REMOVE_RECURSE
  "CMakeFiles/sampling_subset_sampler_test.dir/sampling/subset_sampler_test.cc.o"
  "CMakeFiles/sampling_subset_sampler_test.dir/sampling/subset_sampler_test.cc.o.d"
  "sampling_subset_sampler_test"
  "sampling_subset_sampler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_subset_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
