# Empty compiler generated dependencies file for sampling_subset_sampler_test.
# This may be replaced when dependencies are built.
