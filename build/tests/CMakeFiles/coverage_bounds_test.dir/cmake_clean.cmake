file(REMOVE_RECURSE
  "CMakeFiles/coverage_bounds_test.dir/coverage/bounds_test.cc.o"
  "CMakeFiles/coverage_bounds_test.dir/coverage/bounds_test.cc.o.d"
  "coverage_bounds_test"
  "coverage_bounds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
