# Empty dependencies file for coverage_bounds_test.
# This may be replaced when dependencies are built.
