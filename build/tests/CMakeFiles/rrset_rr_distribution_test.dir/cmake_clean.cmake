file(REMOVE_RECURSE
  "CMakeFiles/rrset_rr_distribution_test.dir/rrset/rr_distribution_test.cc.o"
  "CMakeFiles/rrset_rr_distribution_test.dir/rrset/rr_distribution_test.cc.o.d"
  "rrset_rr_distribution_test"
  "rrset_rr_distribution_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrset_rr_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
