# Empty dependencies file for rrset_rr_distribution_test.
# This may be replaced when dependencies are built.
