file(REMOVE_RECURSE
  "CMakeFiles/algo_degree_heuristics_test.dir/algo/degree_heuristics_test.cc.o"
  "CMakeFiles/algo_degree_heuristics_test.dir/algo/degree_heuristics_test.cc.o.d"
  "algo_degree_heuristics_test"
  "algo_degree_heuristics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_degree_heuristics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
