# Empty dependencies file for algo_degree_heuristics_test.
# This may be replaced when dependencies are built.
