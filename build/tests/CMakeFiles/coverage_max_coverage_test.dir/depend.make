# Empty dependencies file for coverage_max_coverage_test.
# This may be replaced when dependencies are built.
