file(REMOVE_RECURSE
  "CMakeFiles/coverage_max_coverage_test.dir/coverage/max_coverage_test.cc.o"
  "CMakeFiles/coverage_max_coverage_test.dir/coverage/max_coverage_test.cc.o.d"
  "coverage_max_coverage_test"
  "coverage_max_coverage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_max_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
