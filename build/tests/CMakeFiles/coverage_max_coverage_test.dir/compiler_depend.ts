# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for coverage_max_coverage_test.
