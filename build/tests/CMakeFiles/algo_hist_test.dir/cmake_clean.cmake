file(REMOVE_RECURSE
  "CMakeFiles/algo_hist_test.dir/algo/hist_test.cc.o"
  "CMakeFiles/algo_hist_test.dir/algo/hist_test.cc.o.d"
  "algo_hist_test"
  "algo_hist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_hist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
