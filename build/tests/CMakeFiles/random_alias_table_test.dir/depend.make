# Empty dependencies file for random_alias_table_test.
# This may be replaced when dependencies are built.
