file(REMOVE_RECURSE
  "CMakeFiles/random_alias_table_test.dir/random/alias_table_test.cc.o"
  "CMakeFiles/random_alias_table_test.dir/random/alias_table_test.cc.o.d"
  "random_alias_table_test"
  "random_alias_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_alias_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
