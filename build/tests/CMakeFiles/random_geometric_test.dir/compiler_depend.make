# Empty compiler generated dependencies file for random_geometric_test.
# This may be replaced when dependencies are built.
