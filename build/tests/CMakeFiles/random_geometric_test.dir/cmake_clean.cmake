file(REMOVE_RECURSE
  "CMakeFiles/random_geometric_test.dir/random/geometric_test.cc.o"
  "CMakeFiles/random_geometric_test.dir/random/geometric_test.cc.o.d"
  "random_geometric_test"
  "random_geometric_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_geometric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
