# Empty dependencies file for algo_im_algorithms_test.
# This may be replaced when dependencies are built.
