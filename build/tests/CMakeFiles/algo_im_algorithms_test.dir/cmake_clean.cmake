file(REMOVE_RECURSE
  "CMakeFiles/algo_im_algorithms_test.dir/algo/im_algorithms_test.cc.o"
  "CMakeFiles/algo_im_algorithms_test.dir/algo/im_algorithms_test.cc.o.d"
  "algo_im_algorithms_test"
  "algo_im_algorithms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_im_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
