# Empty compiler generated dependencies file for rrset_rr_generator_test.
# This may be replaced when dependencies are built.
