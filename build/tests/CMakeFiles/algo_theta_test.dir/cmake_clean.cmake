file(REMOVE_RECURSE
  "CMakeFiles/algo_theta_test.dir/algo/theta_test.cc.o"
  "CMakeFiles/algo_theta_test.dir/algo/theta_test.cc.o.d"
  "algo_theta_test"
  "algo_theta_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_theta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
