# Empty dependencies file for algo_theta_test.
# This may be replaced when dependencies are built.
