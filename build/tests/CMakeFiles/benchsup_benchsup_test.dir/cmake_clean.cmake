file(REMOVE_RECURSE
  "CMakeFiles/benchsup_benchsup_test.dir/benchsup/benchsup_test.cc.o"
  "CMakeFiles/benchsup_benchsup_test.dir/benchsup/benchsup_test.cc.o.d"
  "benchsup_benchsup_test"
  "benchsup_benchsup_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchsup_benchsup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
