# Empty compiler generated dependencies file for benchsup_benchsup_test.
# This may be replaced when dependencies are built.
