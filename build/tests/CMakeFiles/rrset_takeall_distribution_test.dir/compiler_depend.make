# Empty compiler generated dependencies file for rrset_takeall_distribution_test.
# This may be replaced when dependencies are built.
