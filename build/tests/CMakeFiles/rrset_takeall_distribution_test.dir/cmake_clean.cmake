file(REMOVE_RECURSE
  "CMakeFiles/rrset_takeall_distribution_test.dir/rrset/takeall_distribution_test.cc.o"
  "CMakeFiles/rrset_takeall_distribution_test.dir/rrset/takeall_distribution_test.cc.o.d"
  "rrset_takeall_distribution_test"
  "rrset_takeall_distribution_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrset_takeall_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
