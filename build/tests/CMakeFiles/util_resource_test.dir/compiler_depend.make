# Empty compiler generated dependencies file for util_resource_test.
# This may be replaced when dependencies are built.
