file(REMOVE_RECURSE
  "CMakeFiles/util_resource_test.dir/util/resource_test.cc.o"
  "CMakeFiles/util_resource_test.dir/util/resource_test.cc.o.d"
  "util_resource_test"
  "util_resource_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_resource_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
