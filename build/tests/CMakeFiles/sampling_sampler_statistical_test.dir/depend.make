# Empty dependencies file for sampling_sampler_statistical_test.
# This may be replaced when dependencies are built.
