file(REMOVE_RECURSE
  "CMakeFiles/sampling_sampler_statistical_test.dir/sampling/sampler_statistical_test.cc.o"
  "CMakeFiles/sampling_sampler_statistical_test.dir/sampling/sampler_statistical_test.cc.o.d"
  "sampling_sampler_statistical_test"
  "sampling_sampler_statistical_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_sampler_statistical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
