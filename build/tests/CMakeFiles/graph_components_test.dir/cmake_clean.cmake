file(REMOVE_RECURSE
  "CMakeFiles/graph_components_test.dir/graph/components_test.cc.o"
  "CMakeFiles/graph_components_test.dir/graph/components_test.cc.o.d"
  "graph_components_test"
  "graph_components_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
