# Empty dependencies file for random_rng_test.
# This may be replaced when dependencies are built.
