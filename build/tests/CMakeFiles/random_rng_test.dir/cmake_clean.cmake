file(REMOVE_RECURSE
  "CMakeFiles/random_rng_test.dir/random/rng_test.cc.o"
  "CMakeFiles/random_rng_test.dir/random/rng_test.cc.o.d"
  "random_rng_test"
  "random_rng_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_rng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
