file(REMOVE_RECURSE
  "CMakeFiles/graph_weight_models_test.dir/graph/weight_models_test.cc.o"
  "CMakeFiles/graph_weight_models_test.dir/graph/weight_models_test.cc.o.d"
  "graph_weight_models_test"
  "graph_weight_models_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_weight_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
