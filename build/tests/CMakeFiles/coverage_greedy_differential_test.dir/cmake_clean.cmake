file(REMOVE_RECURSE
  "CMakeFiles/coverage_greedy_differential_test.dir/coverage/greedy_differential_test.cc.o"
  "CMakeFiles/coverage_greedy_differential_test.dir/coverage/greedy_differential_test.cc.o.d"
  "coverage_greedy_differential_test"
  "coverage_greedy_differential_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_greedy_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
