# Empty compiler generated dependencies file for coverage_greedy_differential_test.
# This may be replaced when dependencies are built.
