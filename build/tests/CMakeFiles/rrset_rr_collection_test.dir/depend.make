# Empty dependencies file for rrset_rr_collection_test.
# This may be replaced when dependencies are built.
