# Empty dependencies file for example_high_influence.
# This may be replaced when dependencies are built.
