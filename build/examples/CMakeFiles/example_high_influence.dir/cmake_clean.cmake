file(REMOVE_RECURSE
  "CMakeFiles/example_high_influence.dir/high_influence.cpp.o"
  "CMakeFiles/example_high_influence.dir/high_influence.cpp.o.d"
  "example_high_influence"
  "example_high_influence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_high_influence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
