file(REMOVE_RECURSE
  "CMakeFiles/example_viral_marketing.dir/viral_marketing.cpp.o"
  "CMakeFiles/example_viral_marketing.dir/viral_marketing.cpp.o.d"
  "example_viral_marketing"
  "example_viral_marketing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_viral_marketing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
