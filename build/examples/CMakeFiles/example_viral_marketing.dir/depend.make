# Empty dependencies file for example_viral_marketing.
# This may be replaced when dependencies are built.
