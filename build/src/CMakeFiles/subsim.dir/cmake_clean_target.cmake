file(REMOVE_RECURSE
  "libsubsim.a"
)
