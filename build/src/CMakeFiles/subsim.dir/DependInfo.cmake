
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/subsim/algo/celf_greedy.cc" "src/CMakeFiles/subsim.dir/subsim/algo/celf_greedy.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/algo/celf_greedy.cc.o.d"
  "/root/repo/src/subsim/algo/degree_heuristics.cc" "src/CMakeFiles/subsim.dir/subsim/algo/degree_heuristics.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/algo/degree_heuristics.cc.o.d"
  "/root/repo/src/subsim/algo/hist.cc" "src/CMakeFiles/subsim.dir/subsim/algo/hist.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/algo/hist.cc.o.d"
  "/root/repo/src/subsim/algo/im_algorithm.cc" "src/CMakeFiles/subsim.dir/subsim/algo/im_algorithm.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/algo/im_algorithm.cc.o.d"
  "/root/repo/src/subsim/algo/imm.cc" "src/CMakeFiles/subsim.dir/subsim/algo/imm.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/algo/imm.cc.o.d"
  "/root/repo/src/subsim/algo/opim_c.cc" "src/CMakeFiles/subsim.dir/subsim/algo/opim_c.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/algo/opim_c.cc.o.d"
  "/root/repo/src/subsim/algo/registry.cc" "src/CMakeFiles/subsim.dir/subsim/algo/registry.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/algo/registry.cc.o.d"
  "/root/repo/src/subsim/algo/ssa.cc" "src/CMakeFiles/subsim.dir/subsim/algo/ssa.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/algo/ssa.cc.o.d"
  "/root/repo/src/subsim/algo/theta.cc" "src/CMakeFiles/subsim.dir/subsim/algo/theta.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/algo/theta.cc.o.d"
  "/root/repo/src/subsim/algo/tim_plus.cc" "src/CMakeFiles/subsim.dir/subsim/algo/tim_plus.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/algo/tim_plus.cc.o.d"
  "/root/repo/src/subsim/benchsup/calibration.cc" "src/CMakeFiles/subsim.dir/subsim/benchsup/calibration.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/benchsup/calibration.cc.o.d"
  "/root/repo/src/subsim/benchsup/datasets.cc" "src/CMakeFiles/subsim.dir/subsim/benchsup/datasets.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/benchsup/datasets.cc.o.d"
  "/root/repo/src/subsim/benchsup/experiment.cc" "src/CMakeFiles/subsim.dir/subsim/benchsup/experiment.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/benchsup/experiment.cc.o.d"
  "/root/repo/src/subsim/benchsup/reporting.cc" "src/CMakeFiles/subsim.dir/subsim/benchsup/reporting.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/benchsup/reporting.cc.o.d"
  "/root/repo/src/subsim/coverage/bounds.cc" "src/CMakeFiles/subsim.dir/subsim/coverage/bounds.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/coverage/bounds.cc.o.d"
  "/root/repo/src/subsim/coverage/max_coverage.cc" "src/CMakeFiles/subsim.dir/subsim/coverage/max_coverage.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/coverage/max_coverage.cc.o.d"
  "/root/repo/src/subsim/coverage/reference_greedy.cc" "src/CMakeFiles/subsim.dir/subsim/coverage/reference_greedy.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/coverage/reference_greedy.cc.o.d"
  "/root/repo/src/subsim/eval/exact_spread.cc" "src/CMakeFiles/subsim.dir/subsim/eval/exact_spread.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/eval/exact_spread.cc.o.d"
  "/root/repo/src/subsim/eval/exact_spread_lt.cc" "src/CMakeFiles/subsim.dir/subsim/eval/exact_spread_lt.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/eval/exact_spread_lt.cc.o.d"
  "/root/repo/src/subsim/eval/spread_estimator.cc" "src/CMakeFiles/subsim.dir/subsim/eval/spread_estimator.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/eval/spread_estimator.cc.o.d"
  "/root/repo/src/subsim/graph/components.cc" "src/CMakeFiles/subsim.dir/subsim/graph/components.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/graph/components.cc.o.d"
  "/root/repo/src/subsim/graph/generators.cc" "src/CMakeFiles/subsim.dir/subsim/graph/generators.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/graph/generators.cc.o.d"
  "/root/repo/src/subsim/graph/graph.cc" "src/CMakeFiles/subsim.dir/subsim/graph/graph.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/graph/graph.cc.o.d"
  "/root/repo/src/subsim/graph/graph_builder.cc" "src/CMakeFiles/subsim.dir/subsim/graph/graph_builder.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/graph/graph_builder.cc.o.d"
  "/root/repo/src/subsim/graph/graph_io.cc" "src/CMakeFiles/subsim.dir/subsim/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/graph/graph_io.cc.o.d"
  "/root/repo/src/subsim/graph/graph_stats.cc" "src/CMakeFiles/subsim.dir/subsim/graph/graph_stats.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/graph/graph_stats.cc.o.d"
  "/root/repo/src/subsim/graph/weight_models.cc" "src/CMakeFiles/subsim.dir/subsim/graph/weight_models.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/graph/weight_models.cc.o.d"
  "/root/repo/src/subsim/random/alias_table.cc" "src/CMakeFiles/subsim.dir/subsim/random/alias_table.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/random/alias_table.cc.o.d"
  "/root/repo/src/subsim/random/geometric.cc" "src/CMakeFiles/subsim.dir/subsim/random/geometric.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/random/geometric.cc.o.d"
  "/root/repo/src/subsim/random/rng.cc" "src/CMakeFiles/subsim.dir/subsim/random/rng.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/random/rng.cc.o.d"
  "/root/repo/src/subsim/rrset/generator_factory.cc" "src/CMakeFiles/subsim.dir/subsim/rrset/generator_factory.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/rrset/generator_factory.cc.o.d"
  "/root/repo/src/subsim/rrset/lt_generator.cc" "src/CMakeFiles/subsim.dir/subsim/rrset/lt_generator.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/rrset/lt_generator.cc.o.d"
  "/root/repo/src/subsim/rrset/parallel_fill.cc" "src/CMakeFiles/subsim.dir/subsim/rrset/parallel_fill.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/rrset/parallel_fill.cc.o.d"
  "/root/repo/src/subsim/rrset/rr_collection.cc" "src/CMakeFiles/subsim.dir/subsim/rrset/rr_collection.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/rrset/rr_collection.cc.o.d"
  "/root/repo/src/subsim/rrset/subsim_ic_generator.cc" "src/CMakeFiles/subsim.dir/subsim/rrset/subsim_ic_generator.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/rrset/subsim_ic_generator.cc.o.d"
  "/root/repo/src/subsim/rrset/vanilla_ic_generator.cc" "src/CMakeFiles/subsim.dir/subsim/rrset/vanilla_ic_generator.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/rrset/vanilla_ic_generator.cc.o.d"
  "/root/repo/src/subsim/sampling/bucket_sampler.cc" "src/CMakeFiles/subsim.dir/subsim/sampling/bucket_sampler.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/sampling/bucket_sampler.cc.o.d"
  "/root/repo/src/subsim/sampling/geometric_sampler.cc" "src/CMakeFiles/subsim.dir/subsim/sampling/geometric_sampler.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/sampling/geometric_sampler.cc.o.d"
  "/root/repo/src/subsim/sampling/naive_sampler.cc" "src/CMakeFiles/subsim.dir/subsim/sampling/naive_sampler.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/sampling/naive_sampler.cc.o.d"
  "/root/repo/src/subsim/sampling/sampler_factory.cc" "src/CMakeFiles/subsim.dir/subsim/sampling/sampler_factory.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/sampling/sampler_factory.cc.o.d"
  "/root/repo/src/subsim/sampling/sorted_sampler.cc" "src/CMakeFiles/subsim.dir/subsim/sampling/sorted_sampler.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/sampling/sorted_sampler.cc.o.d"
  "/root/repo/src/subsim/util/logging.cc" "src/CMakeFiles/subsim.dir/subsim/util/logging.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/util/logging.cc.o.d"
  "/root/repo/src/subsim/util/math.cc" "src/CMakeFiles/subsim.dir/subsim/util/math.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/util/math.cc.o.d"
  "/root/repo/src/subsim/util/resource.cc" "src/CMakeFiles/subsim.dir/subsim/util/resource.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/util/resource.cc.o.d"
  "/root/repo/src/subsim/util/status.cc" "src/CMakeFiles/subsim.dir/subsim/util/status.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/util/status.cc.o.d"
  "/root/repo/src/subsim/util/string_util.cc" "src/CMakeFiles/subsim.dir/subsim/util/string_util.cc.o" "gcc" "src/CMakeFiles/subsim.dir/subsim/util/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
