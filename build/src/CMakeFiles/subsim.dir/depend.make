# Empty dependencies file for subsim.
# This may be replaced when dependencies are built.
