# Empty dependencies file for subsim_cli.
# This may be replaced when dependencies are built.
