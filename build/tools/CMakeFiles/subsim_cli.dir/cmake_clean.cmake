file(REMOVE_RECURSE
  "CMakeFiles/subsim_cli.dir/subsim_cli.cc.o"
  "CMakeFiles/subsim_cli.dir/subsim_cli.cc.o.d"
  "subsim_cli"
  "subsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
