#ifndef SUBSIM_EVAL_EXACT_SPREAD_H_
#define SUBSIM_EVAL_EXACT_SPREAD_H_

#include <cstdint>
#include <span>
#include <vector>

#include "subsim/graph/graph.h"
#include "subsim/util/status.h"

namespace subsim {

/// Exact expected influence under IC by enumerating all 2^m live-edge
/// worlds. Only feasible for tiny graphs; fails with InvalidArgument when
/// m exceeds `max_edges` (default 24). Tests use this as ground truth for
/// Lemma 1 (RR membership probability == influence probability) and for
/// approximation-guarantee checks.
Result<double> ExactSpreadIc(const Graph& graph,
                             std::span<const NodeId> seeds,
                             std::uint32_t max_edges = 24);

/// Exact Pr[u activates v] under IC (probability v is reachable from u in
/// the live-edge world). Same enumeration cost caveat.
Result<double> ExactInfluenceProbabilityIc(const Graph& graph, NodeId u,
                                           NodeId v,
                                           std::uint32_t max_edges = 24);

/// Exact optimum: the size-k seed set maximizing exact IC spread, found by
/// exhaustive search over all C(n, k) subsets. Feasible for n <= ~14.
struct ExactOptimum {
  std::vector<NodeId> seeds;
  double spread = 0.0;
};
Result<ExactOptimum> ExactOptimalSeedSetIc(const Graph& graph,
                                           std::uint32_t k,
                                           std::uint32_t max_edges = 24);

}  // namespace subsim

#endif  // SUBSIM_EVAL_EXACT_SPREAD_H_
