#include "subsim/eval/exact_spread.h"

#include <string>

namespace subsim {

namespace {

/// Enumerates all live-edge worlds, invoking `visit(world_probability,
/// live_edge_mask)` for each. Edges are indexed in `edges` order.
template <typename Visit>
void ForEachWorld(const std::vector<Edge>& edges, Visit&& visit) {
  const std::uint32_t m = static_cast<std::uint32_t>(edges.size());
  const std::uint64_t worlds = std::uint64_t{1} << m;
  for (std::uint64_t mask = 0; mask < worlds; ++mask) {
    double prob = 1.0;
    for (std::uint32_t e = 0; e < m; ++e) {
      const double p = edges[e].weight;
      prob *= (mask >> e) & 1 ? p : (1.0 - p);
      if (prob == 0.0) {
        break;
      }
    }
    if (prob > 0.0) {
      visit(prob, mask);
    }
  }
}

/// Nodes reachable from `seeds` using only edges in `mask`. Returns count,
/// and optionally reports whether `target` was reached.
std::uint64_t CountReachable(const Graph& graph,
                             const std::vector<Edge>& edges,
                             std::uint64_t mask,
                             std::span<const NodeId> seeds,
                             NodeId target, bool* target_reached) {
  // Tiny graphs: plain vectors are fine.
  std::vector<std::uint8_t> active(graph.num_nodes(), 0);
  std::vector<NodeId> queue;
  for (NodeId s : seeds) {
    if (!active[s]) {
      active[s] = 1;
      queue.push_back(s);
    }
  }
  std::size_t head = 0;
  while (head < queue.size()) {
    const NodeId u = queue[head++];
    for (std::uint32_t e = 0; e < edges.size(); ++e) {
      if (!((mask >> e) & 1) || edges[e].src != u) {
        continue;
      }
      const NodeId v = edges[e].dst;
      if (!active[v]) {
        active[v] = 1;
        queue.push_back(v);
      }
    }
  }
  if (target_reached != nullptr) {
    *target_reached = target < graph.num_nodes() && active[target] != 0;
  }
  return queue.size();
}

Status CheckSize(const Graph& graph, std::uint32_t max_edges) {
  if (graph.num_edges() > max_edges) {
    return Status::InvalidArgument(
        "exact spread enumeration limited to " + std::to_string(max_edges) +
        " edges; graph has " + std::to_string(graph.num_edges()));
  }
  return Status::Ok();
}

}  // namespace

Result<double> ExactSpreadIc(const Graph& graph,
                             std::span<const NodeId> seeds,
                             std::uint32_t max_edges) {
  SUBSIM_RETURN_IF_ERROR(CheckSize(graph, max_edges));
  const std::vector<Edge> edges = graph.ToEdgeList().edges;
  double expected = 0.0;
  ForEachWorld(edges, [&](double prob, std::uint64_t mask) {
    expected += prob * static_cast<double>(CountReachable(
                           graph, edges, mask, seeds, kInvalidNode, nullptr));
  });
  return expected;
}

Result<double> ExactInfluenceProbabilityIc(const Graph& graph, NodeId u,
                                           NodeId v,
                                           std::uint32_t max_edges) {
  SUBSIM_RETURN_IF_ERROR(CheckSize(graph, max_edges));
  const std::vector<Edge> edges = graph.ToEdgeList().edges;
  const NodeId seeds[1] = {u};
  double probability = 0.0;
  ForEachWorld(edges, [&](double prob, std::uint64_t mask) {
    bool reached = false;
    CountReachable(graph, edges, mask, seeds, v, &reached);
    if (reached) {
      probability += prob;
    }
  });
  return probability;
}

Result<ExactOptimum> ExactOptimalSeedSetIc(const Graph& graph,
                                           std::uint32_t k,
                                           std::uint32_t max_edges) {
  SUBSIM_RETURN_IF_ERROR(CheckSize(graph, max_edges));
  const NodeId n = graph.num_nodes();
  if (k == 0 || k > n) {
    return Status::InvalidArgument("k must be in [1, n]");
  }
  if (n > 20) {
    return Status::InvalidArgument("exhaustive seed search limited to n<=20");
  }

  ExactOptimum best;
  std::vector<NodeId> current;
  // Enumerate k-subsets via bitmask popcount (n <= 20 keeps this small).
  const std::uint32_t limit = 1u << n;
  for (std::uint32_t mask = 0; mask < limit; ++mask) {
    if (static_cast<std::uint32_t>(__builtin_popcount(mask)) != k) {
      continue;
    }
    current.clear();
    for (NodeId v = 0; v < n; ++v) {
      if ((mask >> v) & 1) {
        current.push_back(v);
      }
    }
    const Result<double> spread = ExactSpreadIc(graph, current, max_edges);
    if (!spread.ok()) {
      return spread.status();
    }
    if (*spread > best.spread) {
      best.spread = *spread;
      best.seeds = current;
    }
  }
  return best;
}

}  // namespace subsim
