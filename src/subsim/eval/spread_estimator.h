#ifndef SUBSIM_EVAL_SPREAD_ESTIMATOR_H_
#define SUBSIM_EVAL_SPREAD_ESTIMATOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "subsim/graph/graph.h"
#include "subsim/random/rng.h"
#include "subsim/util/bit_vector.h"

namespace subsim {

/// Cascade models (Section 2.1).
enum class CascadeModel {
  kIndependentCascade,
  kLinearThreshold,
};

const char* CascadeModelName(CascadeModel model);

/// Forward Monte-Carlo estimate of expected influence.
struct SpreadEstimate {
  double spread = 0.0;           // mean activated nodes per simulation
  double std_error = 0.0;        // standard error of the mean
  std::uint64_t simulations = 0;
};

/// Estimates the expected influence I(S) by simulating the cascade forward
/// from the seed set. This is the ground-truth oracle used to validate seed
/// quality in tests, examples, and Figure 5.
///
/// IC: each newly activated node gets one chance per out-edge, succeeding
/// with the edge probability. LT: each inactive node v draws a threshold
/// lambda_v ~ U[0,1] once per simulation and activates when the weight of
/// its activated in-neighbors reaches it.
///
/// Not thread-safe (per-instance scratch); use one estimator per thread.
class SpreadEstimator {
 public:
  /// `graph` must outlive the estimator.
  SpreadEstimator(const Graph& graph, CascadeModel model);

  /// Runs `num_simulations` cascades and returns the estimate.
  SpreadEstimate Estimate(std::span<const NodeId> seeds,
                          std::uint64_t num_simulations, Rng& rng);

  /// One cascade; returns the number of activated nodes.
  std::uint64_t SimulateOnce(std::span<const NodeId> seeds, Rng& rng);

 private:
  std::uint64_t SimulateIc(std::span<const NodeId> seeds, Rng& rng);
  std::uint64_t SimulateLt(std::span<const NodeId> seeds, Rng& rng);

  const Graph& graph_;
  CascadeModel model_;
  BitVector activated_;
  std::vector<NodeId> frontier_;
  std::vector<NodeId> next_frontier_;
  // LT scratch: lazily drawn thresholds and accumulated in-weight, with a
  // touched list for O(cascade size) reset.
  std::vector<double> threshold_;
  std::vector<double> accumulated_;
  std::vector<NodeId> touched_lt_;
  BitVector lt_touched_mark_;
};

}  // namespace subsim

#endif  // SUBSIM_EVAL_SPREAD_ESTIMATOR_H_
