#include "subsim/eval/spread_estimator.h"

#include <cmath>

namespace subsim {

const char* CascadeModelName(CascadeModel model) {
  switch (model) {
    case CascadeModel::kIndependentCascade:
      return "IC";
    case CascadeModel::kLinearThreshold:
      return "LT";
  }
  return "?";
}

SpreadEstimator::SpreadEstimator(const Graph& graph, CascadeModel model)
    : graph_(graph), model_(model) {
  activated_.Resize(graph.num_nodes());
  if (model_ == CascadeModel::kLinearThreshold) {
    threshold_.assign(graph.num_nodes(), 0.0);
    accumulated_.assign(graph.num_nodes(), 0.0);
    lt_touched_mark_.Resize(graph.num_nodes());
  }
}

std::uint64_t SpreadEstimator::SimulateOnce(std::span<const NodeId> seeds,
                                            Rng& rng) {
  return model_ == CascadeModel::kIndependentCascade ? SimulateIc(seeds, rng)
                                                     : SimulateLt(seeds, rng);
}

std::uint64_t SpreadEstimator::SimulateIc(std::span<const NodeId> seeds,
                                          Rng& rng) {
  frontier_.clear();
  std::uint64_t activated_count = 0;
  for (NodeId s : seeds) {
    if (activated_.Set(s)) {
      frontier_.push_back(s);
      ++activated_count;
    }
  }
  std::size_t head = 0;
  while (head < frontier_.size()) {
    const NodeId u = frontier_[head++];
    const auto targets = graph_.OutNeighbors(u);
    const auto weights = graph_.OutWeights(u);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      if (!rng.Bernoulli(weights[i])) {
        continue;
      }
      if (activated_.Set(targets[i])) {
        frontier_.push_back(targets[i]);
        ++activated_count;
      }
    }
  }
  activated_.ResetTouched();
  return activated_count;
}

std::uint64_t SpreadEstimator::SimulateLt(std::span<const NodeId> seeds,
                                          Rng& rng) {
  frontier_.clear();
  touched_lt_.clear();
  std::uint64_t activated_count = 0;
  for (NodeId s : seeds) {
    if (activated_.Set(s)) {
      frontier_.push_back(s);
      ++activated_count;
    }
  }

  // Round-based propagation: each round, newly activated nodes add their
  // edge weight to each out-neighbor's accumulator; a neighbor activates
  // when the accumulator reaches its (lazily drawn) threshold.
  std::size_t head = 0;
  while (head < frontier_.size()) {
    const std::size_t round_end = frontier_.size();
    while (head < round_end) {
      const NodeId u = frontier_[head++];
      const auto targets = graph_.OutNeighbors(u);
      const auto weights = graph_.OutWeights(u);
      for (std::size_t i = 0; i < targets.size(); ++i) {
        const NodeId v = targets[i];
        if (activated_.Get(v)) {
          continue;
        }
        if (lt_touched_mark_.Set(v)) {
          // First touch this simulation: draw the threshold. U in (0,1) so
          // zero accumulated weight can never activate.
          threshold_[v] = rng.NextDoubleOpen();
          accumulated_[v] = 0.0;
          touched_lt_.push_back(v);
        }
        accumulated_[v] += weights[i];
        if (accumulated_[v] >= threshold_[v] && activated_.Set(v)) {
          frontier_.push_back(v);
          ++activated_count;
        }
      }
    }
  }

  activated_.ResetTouched();
  lt_touched_mark_.ResetTouched();
  return activated_count;
}

SpreadEstimate SpreadEstimator::Estimate(std::span<const NodeId> seeds,
                                         std::uint64_t num_simulations,
                                         Rng& rng) {
  SpreadEstimate estimate;
  estimate.simulations = num_simulations;
  if (num_simulations == 0) {
    return estimate;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::uint64_t i = 0; i < num_simulations; ++i) {
    const double x = static_cast<double>(SimulateOnce(seeds, rng));
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / static_cast<double>(num_simulations);
  estimate.spread = mean;
  if (num_simulations > 1) {
    const double var =
        (sum_sq - sum * mean) / static_cast<double>(num_simulations - 1);
    estimate.std_error =
        std::sqrt(std::max(0.0, var) / static_cast<double>(num_simulations));
  }
  return estimate;
}

}  // namespace subsim
