#include "subsim/eval/exact_spread_lt.h"

#include <string>
#include <vector>

namespace subsim {

namespace {

/// Enumerates LT live-edge worlds. `choice[v]` ranges over
/// 0..d_in(v): index i < d_in picks in-neighbor i as v's live edge (with
/// probability p(in_i, v)); index d_in means "no live edge" (probability
/// 1 - sum). Invokes `visit(prob, choice)` per world with positive
/// probability.
template <typename Visit>
void ForEachLtWorld(const Graph& graph, Visit&& visit) {
  const NodeId n = graph.num_nodes();
  std::vector<std::uint32_t> choice(n, 0);

  // Odometer-style enumeration.
  while (true) {
    double prob = 1.0;
    for (NodeId v = 0; v < n && prob > 0.0; ++v) {
      const auto weights = graph.InWeights(v);
      if (choice[v] < weights.size()) {
        prob *= weights[choice[v]];
      } else {
        prob *= 1.0 - graph.InWeightSum(v);
      }
    }
    if (prob > 0.0) {
      visit(prob, choice);
    }
    // Increment the odometer.
    NodeId v = 0;
    while (v < n) {
      if (choice[v] < graph.InDegree(v)) {
        ++choice[v];
        break;
      }
      choice[v] = 0;
      ++v;
    }
    if (v == n) {
      break;
    }
  }
}

/// Reachability from seeds over the live edges chosen by `choice`.
std::uint64_t CountReachableLt(const Graph& graph,
                               const std::vector<std::uint32_t>& choice,
                               std::span<const NodeId> seeds, NodeId target,
                               bool* target_reached) {
  const NodeId n = graph.num_nodes();
  std::vector<std::uint8_t> active(n, 0);
  std::vector<NodeId> queue;
  for (NodeId s : seeds) {
    if (s < n && !active[s]) {
      active[s] = 1;
      queue.push_back(s);
    }
  }
  // Propagate until fixpoint: v activates if its live in-neighbor is
  // active. (A node has at most one live in-edge, so one forward sweep per
  // round suffices; rounds <= n.)
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId v = 0; v < n; ++v) {
      if (active[v] || choice[v] >= graph.InDegree(v)) {
        continue;
      }
      const NodeId live_source = graph.InNeighbors(v)[choice[v]];
      if (active[live_source]) {
        active[v] = 1;
        changed = true;
      }
    }
  }
  std::uint64_t count = 0;
  for (NodeId v = 0; v < n; ++v) {
    count += active[v];
  }
  if (target_reached != nullptr) {
    *target_reached = target < n && active[target] != 0;
  }
  return count;
}

Status CheckWorldCount(const Graph& graph, std::uint64_t max_worlds) {
  double worlds = 1.0;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    worlds *= static_cast<double>(graph.InDegree(v)) + 1.0;
    if (worlds > static_cast<double>(max_worlds)) {
      return Status::InvalidArgument(
          "LT world count exceeds limit of " + std::to_string(max_worlds));
    }
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (graph.InWeightSum(v) > 1.0 + 1e-9) {
      return Status::InvalidArgument(
          "LT requires per-node incoming weights summing to <= 1");
    }
  }
  return Status::Ok();
}

}  // namespace

Result<double> ExactSpreadLt(const Graph& graph,
                             std::span<const NodeId> seeds,
                             std::uint64_t max_worlds) {
  SUBSIM_RETURN_IF_ERROR(CheckWorldCount(graph, max_worlds));
  double expected = 0.0;
  ForEachLtWorld(graph, [&](double prob,
                            const std::vector<std::uint32_t>& choice) {
    expected += prob * static_cast<double>(CountReachableLt(
                           graph, choice, seeds, kInvalidNode, nullptr));
  });
  return expected;
}

Result<double> ExactInfluenceProbabilityLt(const Graph& graph, NodeId u,
                                           NodeId v,
                                           std::uint64_t max_worlds) {
  SUBSIM_RETURN_IF_ERROR(CheckWorldCount(graph, max_worlds));
  const NodeId seeds[1] = {u};
  double probability = 0.0;
  ForEachLtWorld(graph, [&](double prob,
                            const std::vector<std::uint32_t>& choice) {
    bool reached = false;
    CountReachableLt(graph, choice, seeds, v, &reached);
    if (reached) {
      probability += prob;
    }
  });
  return probability;
}

}  // namespace subsim
