#ifndef SUBSIM_EVAL_EXACT_SPREAD_LT_H_
#define SUBSIM_EVAL_EXACT_SPREAD_LT_H_

#include <span>

#include "subsim/graph/graph.h"
#include "subsim/util/status.h"

namespace subsim {

/// Exact expected influence under the Linear Threshold model via
/// enumeration of LT live-edge worlds: each node independently keeps at
/// most one incoming edge — in-neighbor u with probability p(u, v), none
/// with probability 1 - sum (Kempe et al.'s equivalence). The world count
/// is prod_v (d_in(v) + 1); enumeration is refused when it exceeds
/// `max_worlds`. Tests use this as LT ground truth alongside the IC
/// enumeration in exact_spread.h.
Result<double> ExactSpreadLt(const Graph& graph,
                             std::span<const NodeId> seeds,
                             std::uint64_t max_worlds = 1u << 22);

/// Exact Pr[u activates v] under LT.
Result<double> ExactInfluenceProbabilityLt(const Graph& graph, NodeId u,
                                           NodeId v,
                                           std::uint64_t max_worlds = 1u
                                                                      << 22);

}  // namespace subsim

#endif  // SUBSIM_EVAL_EXACT_SPREAD_LT_H_
