#ifndef SUBSIM_ALGO_SSA_H_
#define SUBSIM_ALGO_SSA_H_

#include "subsim/algo/im_algorithm.h"

namespace subsim {

/// SSA — Stop-and-Stare (Nguyen et al., SIGMOD 2016), in the repaired
/// SSA-Fix formulation of Huang et al. (PVLDB 2017).
///
/// The optimistic doubling loop generates a collection R1, greedily selects
/// a candidate seed set, and then *stares*: it validates the candidate on
/// an independent collection R2 of equal size. The run stops when the
/// validated estimate is close enough to the selection-time estimate
/// (within the epsilon split) and the coverage has passed the
/// concentration floor Lambda1; otherwise samples are doubled. A theta_max
/// cap (as in OPIM's analysis, with certified Equation (1)/(2) bounds
/// evaluated at the cap) restores the worst-case guarantee that the
/// original SSA analysis lost.
class Ssa final : public ImAlgorithm {
 public:
  Result<ImResult> Run(const Graph& graph,
                       const ImOptions& options) const override;
  const char* name() const override { return "ssa"; }
};

}  // namespace subsim

#endif  // SUBSIM_ALGO_SSA_H_
