#include "subsim/algo/degree_heuristics.h"

#include <queue>
#include <vector>

#include "subsim/obs/phase_tracer.h"

namespace subsim {

namespace {

struct ScoredNode {
  double score;
  NodeId node;

  bool operator<(const ScoredNode& other) const {
    if (score != other.score) return score < other.score;
    return node < other.node;
  }
};

}  // namespace

const char* DegreeHeuristic::name() const {
  switch (kind_) {
    case DegreeHeuristicKind::kMaxDegree:
      return "max-degree";
    case DegreeHeuristicKind::kSingleDiscount:
      return "single-discount";
    case DegreeHeuristicKind::kDegreeDiscount:
      return "degree-discount";
  }
  return "?";
}

Result<ImResult> DegreeHeuristic::Run(const Graph& graph,
                                      const ImOptions& options) const {
  SUBSIM_RETURN_IF_ERROR(ValidateImOptions(graph, options));
  PhaseScope run_span(options.obs.tracer, "degree_heuristic.run");

  const NodeId n = graph.num_nodes();
  const std::uint32_t k = options.k;

  // Mean edge probability: the p in DegreeDiscount's ddv formula. The
  // heuristic assumes Uniform IC; for other models this is the natural
  // surrogate.
  double mean_p = 0.0;
  if (graph.num_edges() > 0) {
    double total = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      total += graph.InWeightSum(v);
    }
    mean_p = total / static_cast<double>(graph.num_edges());
  }

  // seeded_in_neighbors[v] = t in the ddv formula.
  std::vector<std::uint32_t> seeded_in_neighbors(n, 0);
  std::vector<std::uint8_t> selected(n, 0);

  auto score_of = [&](NodeId v) -> double {
    const double d = graph.OutDegree(v);
    const double t = seeded_in_neighbors[v];
    switch (kind_) {
      case DegreeHeuristicKind::kMaxDegree:
        return d;
      case DegreeHeuristicKind::kSingleDiscount:
        return d - t;
      case DegreeHeuristicKind::kDegreeDiscount:
        return d - 2.0 * t - (d - t) * t * mean_p;
    }
    return d;
  };

  // Lazy max-heap over (score, node): scores only decrease as neighbors
  // get seeded, so the usual stale-entry revalidation applies.
  std::priority_queue<ScoredNode> heap;
  for (NodeId v = 0; v < n; ++v) {
    heap.push(ScoredNode{score_of(v), v});
  }

  ImResult result;
  result.seeds.reserve(k);
  while (result.seeds.size() < k && !heap.empty()) {
    ScoredNode top = heap.top();
    heap.pop();
    if (selected[top.node]) {
      continue;
    }
    const double fresh = score_of(top.node);
    if (fresh != top.score) {
      top.score = fresh;
      heap.push(top);
      continue;
    }
    selected[top.node] = 1;
    result.seeds.push_back(top.node);
    // Seeding `top` raises t for each of its out-neighbors.
    for (NodeId w : graph.OutNeighbors(top.node)) {
      if (!selected[w]) {
        ++seeded_in_neighbors[w];
      }
    }
  }

  result.seconds = run_span.ElapsedSeconds();
  return result;
}

}  // namespace subsim
