#include "subsim/algo/tim_plus.h"

#include <algorithm>
#include <cmath>

#include "subsim/coverage/max_coverage.h"
#include "subsim/obs/phase_tracer.h"
#include "subsim/rrset/parallel_fill.h"
#include "subsim/util/math.h"

namespace subsim {

Result<ImResult> TimPlus::Run(const Graph& graph,
                              const ImOptions& options) const {
  SUBSIM_RETURN_IF_ERROR(ValidateImOptions(graph, options));
  PhaseScope run_span(options.obs.tracer, "tim_plus.run");

  const NodeId n = graph.num_nodes();
  const std::uint32_t k = options.k;
  const double eps = options.epsilon;
  const double delta = options.EffectiveDelta(n);
  const double ln_n = std::log(std::max<double>(n, 2));
  const double l = std::log(1.0 / delta) / ln_n;
  const double m = std::max<double>(1, graph.num_edges());

  Result<std::unique_ptr<RrGenerator>> generator =
      MakeRrGenerator(options.generator, graph);
  if (!generator.ok()) {
    return generator.status();
  }

  // The KPT* probe loop below draws sets one at a time (it inspects each
  // set before deciding whether to stop), so it keeps a plain sequential
  // Rng; the bulk fills use counter-based streams 2 and 3.
  Rng gen_rng(DeriveStreamSeed(options.rng_seed, 1));
  RrCollection collection(n, options.rr_encoding);
  std::vector<NodeId> scratch;

  // ---- Phase 1a: KPT* estimation (TIM Algorithm 2). ----
  // kappa(R) = 1 - (1 - w(R)/m)^k where w(R) sums the in-degrees of R's
  // members; E[kappa] = KPT / n for a random RR set.
  auto kappa = [&](std::span<const NodeId> rr_set) {
    double width = 0.0;
    for (NodeId v : rr_set) {
      width += graph.InDegree(v);
    }
    const double fraction = std::min(1.0, width / m);
    return 1.0 - std::pow(1.0 - fraction, static_cast<double>(k));
  };

  double kpt_star = 1.0;
  const int max_rounds = std::max(1, static_cast<int>(std::log2(n)) - 1);
  const double log_log = std::log(std::max(2.0, std::log2(n)));
  const RrGenStats probe_before = (*generator)->stats();
  for (int i = 1; i <= max_rounds; ++i) {
    const std::uint64_t batch = static_cast<std::uint64_t>(
        std::ceil((6.0 * l * ln_n + 6.0 * log_log) * std::pow(2.0, i)));
    double sum = 0.0;
    for (std::uint64_t j = 0; j < batch; ++j) {
      (*generator)->Generate(gen_rng, &scratch);
      collection.Add(scratch, false);
      sum += kappa(scratch);
    }
    if (sum / static_cast<double>(batch) > std::pow(2.0, -i)) {
      kpt_star = static_cast<double>(n) * sum /
                 (2.0 * static_cast<double>(batch));
      break;
    }
  }
  kpt_star = std::max(kpt_star, static_cast<double>(k));
  // The probe loop above bypasses Fill, so flush its stats delta here.
  FlushRrGenStatsDelta(probe_before, (*generator)->stats(),
                       options.obs.metrics);

  CoverageGreedyOptions greedy_options;
  greedy_options.k = k;
  greedy_options.approx_coverage = options.approx_coverage;
  greedy_options.metrics = options.obs.metrics;

  // ---- Phase 1b: TIM+ refinement. ----
  // Greedy on the probe sets yields a candidate whose influence is
  // re-estimated on a fresh batch; its (deflated) estimate is a valid lower
  // bound on OPT and is often much tighter than KPT*.
  std::uint64_t refine_sets = 0;
  std::uint64_t refine_nodes = 0;
  {
    const double eps_prime = 5.0 * std::cbrt(l * eps * eps / (k + l));
    const CoverageGreedyResult candidate =
        RunCoverageGreedy(collection, greedy_options);
    const std::uint64_t refine_batch = static_cast<std::uint64_t>(
        std::ceil((2.0 + eps_prime) * l * ln_n * static_cast<double>(n) /
                  (eps_prime * eps_prime * kpt_star)));
    RrCollection refine(n, options.rr_encoding);
    RngStream refine_rng = MakeRngStream(options.rng_seed, 2);
    // Cap the refinement effort; it is a heuristic tightener.
    const std::uint64_t capped =
        std::min<std::uint64_t>(refine_batch, 1u << 18);
    SUBSIM_RETURN_IF_ERROR(FillCollection(
        {.kind = options.generator, .graph = &graph, .rng = &refine_rng,
         .count = capped, .num_threads = options.num_threads,
         .sentinels = {}, .obs = options.obs,
         .kernel = options.fill_kernel},
        &refine));
    const std::uint64_t cov = ComputeCoverage(refine, candidate.seeds);
    const double estimate = static_cast<double>(cov) * n /
                            static_cast<double>(refine.num_sets());
    const double kpt_prime = estimate / (1.0 + eps_prime);
    kpt_star = std::max(kpt_star, kpt_prime);
    refine_sets = refine.num_sets();
    refine_nodes = refine.total_nodes();
  }

  // ---- Phase 2: theta = lambda / KPT+, fresh collection, greedy. ----
  const double lambda = (8.0 + 2.0 * eps) * static_cast<double>(n) *
                        (l * ln_n + LogNChooseK(n, k) + std::log(2.0)) /
                        (eps * eps);
  const std::uint64_t theta = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(lambda / kpt_star)));

  // TIM+ regenerates its RR sets for the selection phase (unlike IMM, its
  // analysis needs independence from the estimation phase).
  RrCollection selection(n, options.rr_encoding);
  RngStream selection_rng = MakeRngStream(options.rng_seed, 3);
  SUBSIM_RETURN_IF_ERROR(FillCollection(
      {.kind = options.generator, .graph = &graph, .rng = &selection_rng,
       .count = theta, .num_threads = options.num_threads,
       .sentinels = {}, .obs = options.obs,
       .kernel = options.fill_kernel},
      &selection));
  const CoverageGreedyResult greedy =
      RunCoverageGreedy(selection, greedy_options);

  ImResult result;
  result.seeds = greedy.seeds;
  result.estimated_spread = static_cast<double>(n) *
                            static_cast<double>(greedy.total_coverage()) /
                            static_cast<double>(selection.num_sets());
  result.num_rr_sets =
      collection.num_sets() + refine_sets + selection.num_sets();
  result.total_rr_nodes =
      collection.total_nodes() + refine_nodes + selection.total_nodes();
  result.seconds = run_span.ElapsedSeconds();
  return result;
}

}  // namespace subsim
