#ifndef SUBSIM_ALGO_TIM_PLUS_H_
#define SUBSIM_ALGO_TIM_PLUS_H_

#include "subsim/algo/im_algorithm.h"

namespace subsim {

/// TIM+ (Tang et al., SIGMOD 2014) — the first practical RIS algorithm and
/// IMM's predecessor; included as a baseline extension.
///
/// Phase 1 (KPT estimation) probes geometrically growing RR-set batches,
/// scoring each set R by kappa(R) = 1 - (1 - w(R)/m)^k (w = total
/// in-degree of R's members) until the batch average certifies a lower
/// bound KPT* on OPT. The TIM+ refinement then greedily selects a candidate
/// on the probe sets and re-estimates its influence on a fresh batch,
/// keeping the better bound. Phase 2 generates theta = lambda / KPT+ sets
/// and runs the greedy. Guarantees (1 - 1/e - eps) with probability
/// 1 - n^-l; needs more RR sets than IMM/OPIM-C in practice, which is
/// exactly the gap the later papers (and this one) close.
class TimPlus final : public ImAlgorithm {
 public:
  Result<ImResult> Run(const Graph& graph,
                       const ImOptions& options) const override;
  const char* name() const override { return "tim+"; }
};

}  // namespace subsim

#endif  // SUBSIM_ALGO_TIM_PLUS_H_
