#include "subsim/algo/hist.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "subsim/algo/theta.h"
#include "subsim/coverage/bounds.h"
#include "subsim/coverage/max_coverage.h"
#include "subsim/obs/phase_tracer.h"
#include "subsim/rrset/parallel_fill.h"
#include "subsim/util/math.h"

namespace subsim {

namespace {

/// Bookkeeping shared by both phases.
struct PhaseStats {
  std::uint64_t rr_sets = 0;
  std::uint64_t rr_nodes = 0;

  void Absorb(const RrCollection& collection) {
    rr_sets += collection.num_sets();
    rr_nodes += collection.total_nodes();
  }
};

/// Adds the growth of `collection` across one fill to the
/// `hist.{truncated,untruncated}_{sets,nodes}` counters (plus
/// `hist.sentinel_hit_sets` for truncated fills), so the truncation
/// savings the paper claims for Algorithm 5 are observable: the metrics
/// regression test asserts truncated mean size < untruncated mean size.
/// Call with the pre-fill watermarks.
void MeterHistFill(MetricsRegistry* metrics, bool truncated,
                   const RrCollection& collection, std::uint64_t sets_before,
                   std::uint64_t nodes_before, std::uint64_t hits_before) {
  if (metrics == nullptr) {
    return;
  }
  metrics
      ->Counter(truncated ? "hist.truncated_sets" : "hist.untruncated_sets")
      .Add(collection.num_sets() - sets_before);
  metrics
      ->Counter(truncated ? "hist.truncated_nodes" : "hist.untruncated_nodes")
      .Add(collection.total_nodes() - nodes_before);
  if (truncated) {
    metrics->Counter("hist.sentinel_hit_sets")
        .Add(collection.num_hit_sentinel() - hits_before);
  }
}

/// Output of Algorithm 7.
struct SentinelPhase {
  std::vector<NodeId> sentinels;
  PhaseStats stats;
};

/// Algorithm 7: SentinelSet(G, k, eps1, delta1).
Result<SentinelPhase> RunSentinelSet(const Graph& graph,
                                     const ImOptions& options, double eps1,
                                     double delta1, RngStream& rng1,
                                     RngStream& rng2) {
  const NodeId n = graph.num_nodes();
  const std::uint32_t k = options.k;

  const std::uint64_t theta0 = InitialTheta(delta1);
  const std::uint64_t theta_max = HistPhase1ThetaMax(n, k, eps1, delta1);
  const std::uint32_t i_max = DoublingIterations(theta0, theta_max);
  const double delta_u = delta1 / (3.0 * i_max);
  const double delta_l = delta1 / (6.0 * i_max);

  MetricsRegistry* const metrics = options.obs.metrics;
  PhaseScope phase_span(options.obs.tracer, "hist.sentinel_phase");

  SentinelPhase phase;
  RrCollection r1(n, options.rr_encoding);
  SUBSIM_RETURN_IF_ERROR(FillCollection(
      {.kind = options.generator, .graph = &graph, .rng = &rng1,
       .count = theta0, .num_threads = options.num_threads,
       .sentinels = {}, .obs = options.obs,
       .kernel = options.fill_kernel},
      &r1));
  MeterHistFill(metrics, /*truncated=*/false, r1, 0, 0, 0);

  CoverageGreedyOptions greedy_options;
  greedy_options.k = k;
  greedy_options.tie_break_by_out_degree = true;
  greedy_options.graph = &graph;
  greedy_options.approx_coverage = options.approx_coverage;
  greedy_options.metrics = metrics;

  std::vector<NodeId> fallback;  // last greedy prefix, in case nothing passes

  for (std::uint32_t i = 1; i <= i_max; ++i) {
    // Line 5: revised greedy (Algorithm 6) on R1.
    const CoverageGreedyResult greedy = RunCoverageGreedy(r1, greedy_options);
    fallback = greedy.seeds;

    // Line 7: Equation (2) upper bound of the optimum.
    const double lambda_upper = CoverageUpperBoundFromGreedy(greedy, k);
    const double upper =
        OpimUpperBound(lambda_upper, r1.num_sets(), n, delta_u);

    // Lines 6/8: estimated lower bound per greedy prefix (treating R1 as
    // if independent of the selection), then b = the largest qualifying a.
    std::uint32_t b = 0;
    for (std::uint32_t a = 1; a <= greedy.seeds.size(); ++a) {
      const double est_lower = OpimLowerBound(greedy.coverage_prefix[a - 1],
                                              r1.num_sets(), n, delta_l);
      const double target = HistApproxTarget(k, a, eps1);
      if (upper > 0.0 && est_lower / upper > target) {
        b = a;
      }
    }

    if (b > 0) {
      std::vector<NodeId> candidate(greedy.seeds.begin(),
                                    greedy.seeds.begin() + b);
      const double target = HistApproxTarget(k, b, eps1);

      // Lines 9-12: verify on an independent sentinel-truncated R2. The
      // rng2 cursor persists across iterations even though r2 is rebuilt,
      // so every iteration verifies on fresh samples.
      RrCollection r2(n, options.rr_encoding);
      SUBSIM_RETURN_IF_ERROR(FillCollection(
          {.kind = options.generator, .graph = &graph, .rng = &rng2,
           .count = r1.num_sets(), .num_threads = options.num_threads,
           .sentinels = candidate, .obs = options.obs,
           .kernel = options.fill_kernel},
          &r2));
      MeterHistFill(metrics, /*truncated=*/true, r2, 0, 0, 0);
      std::uint64_t cov = ComputeCoverage(r2, candidate);
      double lower = OpimLowerBound(cov, r2.num_sets(), n, delta_l);
      if (upper > 0.0 && lower / upper > target) {
        phase.stats.Absorb(r2);
        phase.stats.Absorb(r1);
        phase.sentinels = std::move(candidate);
        return phase;
      }

      // Lines 13-15: tighten the lower bound once with |R2| = 4 |R1|.
      const std::uint64_t r2_sets = r2.num_sets();
      const std::uint64_t r2_nodes = r2.total_nodes();
      const std::uint64_t r2_hits = r2.num_hit_sentinel();
      SUBSIM_RETURN_IF_ERROR(FillCollection(
          {.kind = options.generator, .graph = &graph, .rng = &rng2,
           .count = 3 * r1.num_sets(), .num_threads = options.num_threads,
           .sentinels = candidate, .obs = options.obs,
           .kernel = options.fill_kernel},
          &r2));
      MeterHistFill(metrics, /*truncated=*/true, r2, r2_sets, r2_nodes,
                    r2_hits);
      cov = ComputeCoverage(r2, candidate);
      lower = OpimLowerBound(cov, r2.num_sets(), n, delta_l);
      phase.stats.Absorb(r2);
      if (upper > 0.0 && lower / upper > target) {
        phase.stats.Absorb(r1);
        phase.sentinels = std::move(candidate);
        return phase;
      }
      fallback = std::move(candidate);
    }

    // Line 16: double R1 and retry.
    if (i < i_max) {
      const std::uint64_t r1_sets = r1.num_sets();
      const std::uint64_t r1_nodes = r1.total_nodes();
      SUBSIM_RETURN_IF_ERROR(FillCollection(
          {.kind = options.generator, .graph = &graph, .rng = &rng1,
           .count = r1.num_sets(), .num_threads = options.num_threads,
           .sentinels = {}, .obs = options.obs,
           .kernel = options.fill_kernel},
          &r1));
      MeterHistFill(metrics, /*truncated=*/false, r1, r1_sets, r1_nodes, 0);
    }
  }

  // Line 17: after i_max iterations theta_max samples back the guarantee;
  // return the last candidate (or, degenerately, the full greedy prefix).
  phase.stats.Absorb(r1);
  phase.sentinels = std::move(fallback);
  return phase;
}

}  // namespace

Result<ImResult> Hist::Run(const Graph& graph,
                           const ImOptions& options) const {
  SUBSIM_RETURN_IF_ERROR(ValidateImOptions(graph, options));
  PhaseScope run_span(options.obs.tracer, "hist.run");
  MetricsRegistry* const metrics = options.obs.metrics;

  const NodeId n = graph.num_nodes();
  const std::uint32_t k = options.k;
  const double eps = options.epsilon;
  const double delta = options.EffectiveDelta(n);
  // Line 1 of Algorithm 4: split the budgets evenly across the phases.
  const double eps1 = eps / 2.0;
  const double eps2 = eps / 2.0;
  const double delta1 = delta / 2.0;
  const double delta2 = delta / 2.0;

  // Four independent counter-based sample streams; fills construct their
  // own generators, and each stream's cursor makes its samples a pure
  // function of (rng_seed, stream, index) — invariant to thread count.
  RngStream rng1 = MakeRngStream(options.rng_seed, 1);
  RngStream rng2 = MakeRngStream(options.rng_seed, 2);
  RngStream rng3 = MakeRngStream(options.rng_seed, 3);
  RngStream rng4 = MakeRngStream(options.rng_seed, 4);

  // ---- Phase 1: sentinel selection (Algorithm 7). ----
  // Guard: the sentinel phase only pays off when its relaxed target
  // 1 - (1-1/k)^b - eps1 is *looser* than the final 1 - 1/e - eps for some
  // b >= 1. At k = 1 (and tiny k with small eps) even b = 1 demands a
  // near-exact certificate — strictly harder than the original problem —
  // so HIST degenerates to the sentinel-free phase 2 (i.e. OPIM-C-style
  // selection under the Equation (4) schedule with b = 0).
  const bool sentinel_phase_useful =
      HistApproxTarget(options.k, 1, eps1) < kOneMinusInvE - eps;

  SentinelPhase phase1;
  if (sentinel_phase_useful) {
    Result<SentinelPhase> sentinel_result =
        RunSentinelSet(graph, options, eps1, delta1, rng1, rng2);
    if (!sentinel_result.ok()) {
      return sentinel_result.status();
    }
    phase1 = std::move(*sentinel_result);
  }
  std::vector<NodeId>& sentinels = phase1.sentinels;
  const std::uint32_t b = static_cast<std::uint32_t>(sentinels.size());

  ImResult result;
  result.sentinel_size = b;
  result.phase1_rr_sets = phase1.stats.rr_sets;
  if (metrics != nullptr) {
    metrics->Gauge("hist.sentinel_size").Set(static_cast<double>(b));
  }

  if (b >= k) {
    // Degenerate: phase 1 already produced k seeds with the full target.
    result.seeds = sentinels;
    result.num_rr_sets = phase1.stats.rr_sets;
    result.total_rr_nodes = phase1.stats.rr_nodes;
    result.seconds = run_span.ElapsedSeconds();
    return result;
  }

  // ---- Phase 2: IM-Sentinel (Algorithm 8). ----
  PhaseScope phase2_span(options.obs.tracer, "hist.phase2");
  // With an empty sentinel set (b == 0) phase 2 degenerates to plain
  // OPIM-C-style sampling, so its sets are metered as untruncated.
  const bool phase2_truncated = b > 0;
  const std::uint64_t theta0 = InitialTheta(delta2);
  const std::uint64_t theta_max = HistPhase2ThetaMax(n, k, b, eps2, delta2);
  const std::uint32_t i_max = DoublingIterations(theta0, theta_max);
  const double delta_iter = delta2 / (3.0 * i_max);
  const double target_ratio = kOneMinusInvE - eps;

  RrCollection r1(n, options.rr_encoding);
  RrCollection r2(n, options.rr_encoding);
  SUBSIM_RETURN_IF_ERROR(FillCollection(
      {.kind = options.generator, .graph = &graph, .rng = &rng3,
       .count = theta0, .num_threads = options.num_threads,
       .sentinels = sentinels, .obs = options.obs,
       .kernel = options.fill_kernel},
      &r1));
  MeterHistFill(metrics, phase2_truncated, r1, 0, 0, 0);
  SUBSIM_RETURN_IF_ERROR(FillCollection(
      {.kind = options.generator, .graph = &graph, .rng = &rng4,
       .count = theta0, .num_threads = options.num_threads,
       .sentinels = sentinels, .obs = options.obs,
       .kernel = options.fill_kernel},
      &r2));
  MeterHistFill(metrics, phase2_truncated, r2, 0, 0, 0);

  CoverageGreedyOptions greedy_options;
  greedy_options.k = k - b;
  greedy_options.tie_break_by_out_degree = true;
  greedy_options.graph = &graph;
  greedy_options.exclude_sentinel_hit_sets = true;  // line 5
  greedy_options.excluded_nodes = sentinels;
  greedy_options.singleton_top_count = k;  // maxMC ranges over k nodes
  greedy_options.approx_coverage = options.approx_coverage;
  greedy_options.metrics = metrics;

  for (std::uint32_t i = 1; i <= i_max; ++i) {
    // Line 6: residual greedy on the unhit sets.
    const CoverageGreedyResult greedy = RunCoverageGreedy(r1, greedy_options);

    // Line 7: assemble the full seed set.
    std::vector<NodeId> seeds = sentinels;
    seeds.insert(seeds.end(), greedy.seeds.begin(), greedy.seeds.end());

    // Line 8: Equation (2) on R1. Coverage of any set containing the
    // sentinels includes every truncated (hit) set.
    const double lambda_upper =
        static_cast<double>(r1.num_hit_sentinel()) +
        CoverageUpperBoundFromGreedy(greedy, k);
    const double upper =
        OpimUpperBound(lambda_upper, r1.num_sets(), n, delta_iter);

    // Line 9: Equation (1) on R2.
    const std::uint64_t cov2 = ComputeCoverage(r2, seeds);
    const double lower =
        std::max(static_cast<double>(seeds.size()),
                 OpimLowerBound(cov2, r2.num_sets(), n, delta_iter));

    result.seeds = std::move(seeds);
    result.influence_lower_bound = lower;
    result.optimal_upper_bound = upper;
    result.approx_ratio = upper > 0.0 ? lower / upper : 0.0;
    result.estimated_spread = static_cast<double>(cov2) *
                              static_cast<double>(n) /
                              static_cast<double>(r2.num_sets());

    if (metrics != nullptr) {
      metrics->Gauge("hist.upper_bound").Set(upper);
      metrics->Gauge("hist.lower_bound").Set(lower);
      metrics->Gauge("hist.approx_ratio").Set(result.approx_ratio);
    }

    // Lines 10-12.
    if (result.approx_ratio > target_ratio || i == i_max) {
      break;
    }
    const std::uint64_t r1_marks[3] = {r1.num_sets(), r1.total_nodes(),
                                       r1.num_hit_sentinel()};
    SUBSIM_RETURN_IF_ERROR(FillCollection(
        {.kind = options.generator, .graph = &graph, .rng = &rng3,
         .count = r1.num_sets(), .num_threads = options.num_threads,
         .sentinels = sentinels, .obs = options.obs,
         .kernel = options.fill_kernel},
        &r1));
    MeterHistFill(metrics, phase2_truncated, r1, r1_marks[0], r1_marks[1],
                  r1_marks[2]);
    const std::uint64_t r2_marks[3] = {r2.num_sets(), r2.total_nodes(),
                                       r2.num_hit_sentinel()};
    SUBSIM_RETURN_IF_ERROR(FillCollection(
        {.kind = options.generator, .graph = &graph, .rng = &rng4,
         .count = r2.num_sets(), .num_threads = options.num_threads,
         .sentinels = sentinels, .obs = options.obs,
         .kernel = options.fill_kernel},
        &r2));
    MeterHistFill(metrics, phase2_truncated, r2, r2_marks[0], r2_marks[1],
                  r2_marks[2]);
  }

  result.phase2_rr_sets = r1.num_sets() + r2.num_sets();
  result.num_rr_sets = phase1.stats.rr_sets + result.phase2_rr_sets;
  result.total_rr_nodes =
      phase1.stats.rr_nodes + r1.total_nodes() + r2.total_nodes();
  result.seconds = run_span.ElapsedSeconds();
  return result;
}

}  // namespace subsim
