#include "subsim/algo/opim_c.h"

#include <algorithm>

#include "subsim/algo/theta.h"
#include "subsim/coverage/bounds.h"
#include "subsim/coverage/max_coverage.h"
#include "subsim/util/math.h"
#include "subsim/util/timer.h"

namespace subsim {

Result<ImResult> OpimC::Run(const Graph& graph,
                            const ImOptions& options) const {
  SUBSIM_RETURN_IF_ERROR(ValidateImOptions(graph, options));
  WallTimer timer;

  const NodeId n = graph.num_nodes();
  const std::uint32_t k = options.k;
  const double eps = options.epsilon;
  const double delta = options.EffectiveDelta(n);

  Result<std::unique_ptr<RrGenerator>> generator =
      MakeRrGenerator(options.generator, graph);
  if (!generator.ok()) {
    return generator.status();
  }

  const std::uint64_t theta0 = InitialTheta(delta);
  const std::uint64_t theta_max = OpimThetaMax(n, k, eps, delta);
  const std::uint32_t i_max = DoublingIterations(theta0, theta_max);
  const double delta_iter = delta / (3.0 * i_max);

  Rng master(options.rng_seed);
  Rng rng1 = master.Fork(1);
  Rng rng2 = master.Fork(2);
  RrCollection r1(n);
  RrCollection r2(n);

  ImResult result;
  const double target_ratio = kOneMinusInvE - eps;

  for (std::uint32_t i = 1; i <= i_max; ++i) {
    const std::uint64_t target = theta0 << (i - 1);
    (*generator)->Fill(rng1, target - r1.num_sets(), &r1);
    (*generator)->Fill(rng2, target - r2.num_sets(), &r2);

    CoverageGreedyOptions greedy_options;
    greedy_options.k = k;
    const CoverageGreedyResult greedy = RunCoverageGreedy(r1, greedy_options);

    const double lambda_upper = CoverageUpperBoundFromGreedy(greedy, k);
    const double upper =
        OpimUpperBound(lambda_upper, r1.num_sets(), n, delta_iter);

    const std::uint64_t cov2 = ComputeCoverage(r2, greedy.seeds);
    // A seed set always influences at least its own members.
    const double lower =
        std::max(static_cast<double>(greedy.seeds.size()),
                 OpimLowerBound(cov2, r2.num_sets(), n, delta_iter));

    result.seeds = greedy.seeds;
    result.influence_lower_bound = lower;
    result.optimal_upper_bound = upper;
    result.approx_ratio = upper > 0.0 ? lower / upper : 0.0;
    result.estimated_spread = static_cast<double>(cov2) *
                              static_cast<double>(n) /
                              static_cast<double>(r2.num_sets());
    if (result.approx_ratio >= target_ratio || i == i_max) {
      break;
    }
  }

  result.num_rr_sets = r1.num_sets() + r2.num_sets();
  result.total_rr_nodes = r1.total_nodes() + r2.total_nodes();
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace subsim
