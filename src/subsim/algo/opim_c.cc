#include "subsim/algo/opim_c.h"

#include <algorithm>
#include <utility>

#include "subsim/algo/theta.h"
#include "subsim/coverage/bounds.h"
#include "subsim/coverage/max_coverage.h"
#include "subsim/obs/phase_tracer.h"
#include "subsim/util/math.h"

namespace subsim {

Result<std::unique_ptr<SampleStore>> OpimC::MakeSampleStore(
    const Graph& graph, const ImOptions& options) const {
  // Same stream lineage as the original cold run: R1 and R2 are fed by
  // independent logical streams 1 and 2 of the master seed.
  SampleStore::Options store_options;
  store_options.num_threads = options.num_threads;
  store_options.obs = options.obs;
  store_options.kernel = options.fill_kernel;
  store_options.encoding = options.rr_encoding;
  return SampleStore::Create(graph, options.generator,
                             {MakeRngStream(options.rng_seed, 1),
                              MakeRngStream(options.rng_seed, 2)},
                             store_options);
}

Result<ImResult> OpimC::Run(const Graph& graph,
                            const ImOptions& options) const {
  SUBSIM_RETURN_IF_ERROR(ValidateImOptions(graph, options));
  Result<std::unique_ptr<SampleStore>> store =
      MakeSampleStore(graph, options);
  if (!store.ok()) {
    return store.status();
  }
  return RunWithStore(graph, options, store->get());
}

Result<ImResult> OpimC::RunWithStore(const Graph& graph,
                                     const ImOptions& options,
                                     SampleStore* store) const {
  SUBSIM_RETURN_IF_ERROR(ValidateImOptions(graph, options));
  SUBSIM_RETURN_IF_ERROR(ValidateSampleStore(graph, options, *store));
  PhaseScope run_span(options.obs.tracer, "opim_c.run");
  MetricsRegistry::GaugeHandle upper_gauge, lower_gauge, ratio_gauge;
  if (options.obs.metrics != nullptr) {
    upper_gauge = options.obs.metrics->Gauge("opim_c.upper_bound");
    lower_gauge = options.obs.metrics->Gauge("opim_c.lower_bound");
    ratio_gauge = options.obs.metrics->Gauge("opim_c.approx_ratio");
  }

  const NodeId n = graph.num_nodes();
  const std::uint32_t k = options.k;
  const double eps = options.epsilon;
  const double delta = options.EffectiveDelta(n);

  const std::uint64_t theta0 = InitialTheta(delta);
  const std::uint64_t theta_max = OpimThetaMax(n, k, eps, delta);
  const std::uint32_t i_max = DoublingIterations(theta0, theta_max);
  const double delta_iter = delta / (3.0 * i_max);

  ImResult result;
  const double target_ratio = kOneMinusInvE - eps;

  for (std::uint32_t i = 1; i <= i_max; ++i) {
    PhaseScope round_span(options.obs.tracer, "opim_c.round");
    const std::uint64_t target = theta0 << (i - 1);
    SUBSIM_RETURN_IF_ERROR(store->EnsureSets(0, target));
    SUBSIM_RETURN_IF_ERROR(store->EnsureSets(1, target));

    // Evaluate on prefixes of exactly `target` sets — with a warm store the
    // streams may be longer, and using more would diverge from a cold run.
    const SampleStore::ReadGuard read = store->Read();
    const RrCollectionView r1 = read.View(0, target);
    const RrCollectionView r2 = read.View(1, target);

    CoverageGreedyOptions greedy_options;
    greedy_options.k = k;
    greedy_options.approx_coverage = options.approx_coverage;
    greedy_options.metrics = options.obs.metrics;
    const CoverageGreedyResult greedy = RunCoverageGreedy(r1, greedy_options);

    const double lambda_upper = CoverageUpperBoundFromGreedy(greedy, k);
    const double upper =
        OpimUpperBound(lambda_upper, r1.num_sets(), n, delta_iter);

    const std::uint64_t cov2 = ComputeCoverage(r2, greedy.seeds);
    // A seed set always influences at least its own members.
    const double lower =
        std::max(static_cast<double>(greedy.seeds.size()),
                 OpimLowerBound(cov2, r2.num_sets(), n, delta_iter));

    result.seeds = greedy.seeds;
    result.influence_lower_bound = lower;
    result.optimal_upper_bound = upper;
    result.approx_ratio = upper > 0.0 ? lower / upper : 0.0;
    // The slack this round certifies. Valid to report even when the run
    // stops before `target_ratio`: each round's bounds hold with failure
    // probability delta / (3 * i_max) budgeted for *all* i_max rounds up
    // front, so truncating the schedule early never spends more than the
    // requested delta.
    result.achieved_epsilon =
        std::max(0.0, kOneMinusInvE - result.approx_ratio);
    result.estimated_spread = static_cast<double>(cov2) *
                              static_cast<double>(n) /
                              static_cast<double>(r2.num_sets());
    result.num_rr_sets = r1.num_sets() + r2.num_sets();
    result.total_rr_nodes = r1.total_nodes() + r2.total_nodes();
    upper_gauge.Set(upper);
    lower_gauge.Set(lower);
    ratio_gauge.Set(result.approx_ratio);
    if (result.approx_ratio >= target_ratio || i == i_max) {
      break;
    }
    // Deadline checks happen only at round boundaries (round 1 always
    // completes), so a degraded run evaluated an exact prefix of the
    // un-budgeted run's streams and its seeds/bounds are reproducible.
    if (options.deadline.Expired()) {
      result.deadline_hit = true;
      break;
    }
  }

  result.seconds = run_span.ElapsedSeconds();
  return result;
}

}  // namespace subsim
