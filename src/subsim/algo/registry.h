#ifndef SUBSIM_ALGO_REGISTRY_H_
#define SUBSIM_ALGO_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "subsim/algo/im_algorithm.h"
#include "subsim/util/status.h"

namespace subsim {

/// Instantiates an IM algorithm by name: "imm", "opim-c", "ssa", "hist",
/// or "celf-mc". ("subsim" and "hist+subsim" are "opim-c" / "hist" with
/// `ImOptions::generator = kSubsimIc` — the generator is an option, not an
/// algorithm.)
Result<std::unique_ptr<ImAlgorithm>> MakeImAlgorithm(const std::string& name);

/// Names accepted by `MakeImAlgorithm`.
std::vector<std::string> ImAlgorithmNames();

}  // namespace subsim

#endif  // SUBSIM_ALGO_REGISTRY_H_
