#ifndef SUBSIM_ALGO_IMM_H_
#define SUBSIM_ALGO_IMM_H_

#include "subsim/algo/im_algorithm.h"

namespace subsim {

/// IMM (Tang et al., SIGMOD 2015): martingale-based two-phase algorithm.
///
/// Phase 1 (sampling) geometrically lowers a guess x of OPT, each round
/// generating lambda'/x RR sets and testing whether the greedy coverage
/// certifies OPT >= x/(1+eps'); the surviving guess yields a lower bound
/// LB on OPT. Phase 2 tops the collection up to lambda*/LB sets and runs
/// the greedy for the final seeds. Guarantees (1 - 1/e - eps) with
/// probability 1 - delta (delta = n^-l).
///
/// IMM reuses phase-1 RR sets in phase 2 — the weak dependence the
/// martingale bounds (Lemma 2 of the reproduced paper) are there to absorb.
///
/// The single RR stream lives in a `SampleStore` (stream 0; stream 1 is
/// left untouched), so a run can resume sampling done by earlier queries.
/// `RunWithStore` replays the cold schedule against prefix views of exactly
/// the sizes a cold run would have reached — including phase 2's quirk that
/// the final greedy runs over max(theta, the phase-1 watermark) sets — so
/// warm results are bit-identical to cold ones for a fixed rng seed.
class Imm final : public ImAlgorithm {
 public:
  Result<ImResult> Run(const Graph& graph,
                       const ImOptions& options) const override;
  bool SupportsSampleReuse() const override { return true; }
  Result<std::unique_ptr<SampleStore>> MakeSampleStore(
      const Graph& graph, const ImOptions& options) const override;
  Result<ImResult> RunWithStore(const Graph& graph, const ImOptions& options,
                                SampleStore* store) const override;
  const char* name() const override { return "imm"; }
};

}  // namespace subsim

#endif  // SUBSIM_ALGO_IMM_H_
