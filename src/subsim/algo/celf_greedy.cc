#include "subsim/algo/celf_greedy.h"

#include <queue>

#include "subsim/obs/phase_tracer.h"

namespace subsim {

namespace {

struct CelfEntry {
  double marginal;
  NodeId node;
  std::uint32_t round;  // seed-set size when `marginal` was computed

  bool operator<(const CelfEntry& other) const {
    if (marginal != other.marginal) return marginal < other.marginal;
    return node < other.node;
  }
};

}  // namespace

Result<ImResult> CelfGreedy::Run(const Graph& graph,
                                 const ImOptions& options) const {
  SUBSIM_RETURN_IF_ERROR(ValidateImOptions(graph, options));
  PhaseScope run_span(options.obs.tracer, "celf.run");

  SpreadEstimator estimator(graph, model_);
  // CELF is single-threaded by construction; its Monte-Carlo estimates
  // consume one sequential stream, and counter-based substreams would
  // change every published spread value for no invariance gain.
  // SUBSIM-NOLINT-NEXTLINE(rng-confinement): sequential MC stream by design
  Rng rng(options.rng_seed);

  ImResult result;
  std::vector<NodeId> seeds;
  double current_spread = 0.0;

  std::priority_queue<CelfEntry> heap;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    const NodeId single[1] = {v};
    const double spread =
        estimator.Estimate(single, simulations_, rng).spread;
    heap.push(CelfEntry{spread, v, 0});
  }

  while (seeds.size() < options.k && !heap.empty()) {
    CelfEntry top = heap.top();
    heap.pop();
    if (top.round == seeds.size()) {
      seeds.push_back(top.node);
      current_spread += top.marginal;
      continue;
    }
    // Stale: re-estimate the marginal against the current seed set.
    std::vector<NodeId> with_candidate = seeds;
    with_candidate.push_back(top.node);
    const double spread =
        estimator.Estimate(with_candidate, simulations_, rng).spread;
    top.marginal = spread - current_spread;
    top.round = static_cast<std::uint32_t>(seeds.size());
    heap.push(top);
  }

  result.seeds = std::move(seeds);
  result.estimated_spread =
      estimator.Estimate(result.seeds, simulations_, rng).spread;
  result.seconds = run_span.ElapsedSeconds();
  return result;
}

}  // namespace subsim
