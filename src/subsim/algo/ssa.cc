#include "subsim/algo/ssa.h"

#include <algorithm>
#include <cmath>

#include "subsim/algo/theta.h"
#include "subsim/coverage/bounds.h"
#include "subsim/coverage/max_coverage.h"
#include "subsim/obs/phase_tracer.h"
#include "subsim/rrset/parallel_fill.h"
#include "subsim/util/math.h"

namespace subsim {

Result<ImResult> Ssa::Run(const Graph& graph,
                          const ImOptions& options) const {
  SUBSIM_RETURN_IF_ERROR(ValidateImOptions(graph, options));
  PhaseScope run_span(options.obs.tracer, "ssa.run");

  const NodeId n = graph.num_nodes();
  const std::uint32_t k = options.k;
  const double eps = options.epsilon;
  const double delta = options.EffectiveDelta(n);

  // Epsilon split: eps1 guards the stare test (validated estimate vs
  // selection estimate), eps3 the concentration floor.
  const double eps1 = eps / 2.0;
  const double eps3 = eps / 2.0;

  // Concentration floor on coverage: below Lambda1 covered sets, the
  // estimate for the candidate cannot have converged (Chernoff with
  // relative error eps3). Deliberately *no* ln C(n,k) union-bound term —
  // being optimistic about the one selected set instead of all C(n,k)
  // candidates is SSA's whole advantage over IMM; the worst case is
  // covered by the theta_max cap below.
  const double lambda1 = (1.0 + eps1) * (1.0 + eps1) *
                         (2.0 + 2.0 / 3.0 * eps3) *
                         std::log(3.0 / delta) / (eps3 * eps3);

  const std::uint64_t theta0 = InitialTheta(delta);
  const std::uint64_t theta_max = OpimThetaMax(n, k, eps, delta);
  const std::uint32_t i_max = DoublingIterations(theta0, theta_max);
  const double delta_iter = delta / (3.0 * i_max);

  RngStream rng1 = MakeRngStream(options.rng_seed, 1);
  RngStream rng2 = MakeRngStream(options.rng_seed, 2);
  RrCollection r1(n, options.rr_encoding);
  RrCollection r2(n, options.rr_encoding);

  CoverageGreedyOptions greedy_options;
  greedy_options.k = k;
  greedy_options.approx_coverage = options.approx_coverage;
  greedy_options.metrics = options.obs.metrics;

  ImResult result;
  for (std::uint32_t i = 1; i <= i_max; ++i) {
    PhaseScope round_span(options.obs.tracer, "ssa.round");
    const std::uint64_t target = theta0 << (i - 1);
    SUBSIM_RETURN_IF_ERROR(FillCollection(
        {.kind = options.generator, .graph = &graph, .rng = &rng1,
         .count = target - r1.num_sets(), .num_threads = options.num_threads,
         .sentinels = {}, .obs = options.obs,
         .kernel = options.fill_kernel},
        &r1));

    const CoverageGreedyResult greedy = RunCoverageGreedy(r1, greedy_options);
    const double selection_estimate =
        static_cast<double>(n) *
        static_cast<double>(greedy.total_coverage()) /
        static_cast<double>(r1.num_sets());

    // Stare: validate on the independent collection.
    SUBSIM_RETURN_IF_ERROR(FillCollection(
        {.kind = options.generator, .graph = &graph, .rng = &rng2,
         .count = target - r2.num_sets(), .num_threads = options.num_threads,
         .sentinels = {}, .obs = options.obs,
         .kernel = options.fill_kernel},
        &r2));
    const std::uint64_t cov2 = ComputeCoverage(r2, greedy.seeds);
    const double validated_estimate = static_cast<double>(n) *
                                      static_cast<double>(cov2) /
                                      static_cast<double>(r2.num_sets());

    result.seeds = greedy.seeds;
    result.estimated_spread = validated_estimate;
    result.influence_lower_bound =
        std::max(static_cast<double>(greedy.seeds.size()),
                 OpimLowerBound(cov2, r2.num_sets(), n, delta_iter));
    if (options.obs.metrics != nullptr) {
      options.obs.metrics->Gauge("ssa.validated_estimate")
          .Set(validated_estimate);
      options.obs.metrics->Gauge("ssa.lower_bound")
          .Set(result.influence_lower_bound);
    }

    const bool coverage_floor =
        static_cast<double>(greedy.total_coverage()) >= lambda1;
    const bool stare_ok =
        validated_estimate >= selection_estimate / (1.0 + eps1);
    if ((coverage_floor && stare_ok) || i == i_max) {
      // At the cap, certify via the Equation (1)/(2) bounds so the final
      // answer carries the worst-case guarantee (the SSA-Fix repair).
      const double lambda_upper = CoverageUpperBoundFromGreedy(greedy, k);
      result.optimal_upper_bound =
          OpimUpperBound(lambda_upper, r1.num_sets(), n, delta_iter);
      result.approx_ratio =
          result.optimal_upper_bound > 0.0
              ? result.influence_lower_bound / result.optimal_upper_bound
              : 0.0;
      break;
    }
  }

  result.num_rr_sets = r1.num_sets() + r2.num_sets();
  result.total_rr_nodes = r1.total_nodes() + r2.total_nodes();
  result.seconds = run_span.ElapsedSeconds();
  return result;
}

}  // namespace subsim
