#ifndef SUBSIM_ALGO_OPIM_C_H_
#define SUBSIM_ALGO_OPIM_C_H_

#include "subsim/algo/im_algorithm.h"

namespace subsim {

/// OPIM-C (Tang et al., SIGMOD 2018) — the strongest baseline in the paper
/// and the chassis of its "SUBSIM" algorithm (OPIM-C + the SUBSIM RR-set
/// generator, selected via `ImOptions::generator`).
///
/// Doubling schedule over two equal-size independent collections R1 / R2:
/// R1 selects a seed set greedily and yields the Equation (2) upper bound
/// on the optimum; R2, independent of the selection, yields the
/// Equation (1) lower bound on the selected set. The run stops as soon as
/// lower / upper exceeds 1 - 1/e - epsilon, or after i_max doublings
/// (theta_max per the OPIM analysis, with OPT conservatively >= k).
///
/// Both collections live in a `SampleStore` (streams 0 = R1, 1 = R2), so a
/// run can resume someone else's sampling: `RunWithStore` against a warm
/// store reuses its committed sets and evaluates every round on a prefix
/// view of exactly the size a cold run would have had — which is why warm
/// results are bit-identical to cold ones for a fixed rng seed.
class OpimC final : public ImAlgorithm {
 public:
  Result<ImResult> Run(const Graph& graph,
                       const ImOptions& options) const override;
  bool SupportsSampleReuse() const override { return true; }
  Result<std::unique_ptr<SampleStore>> MakeSampleStore(
      const Graph& graph, const ImOptions& options) const override;
  Result<ImResult> RunWithStore(const Graph& graph, const ImOptions& options,
                                SampleStore* store) const override;
  const char* name() const override { return "opim-c"; }
};

}  // namespace subsim

#endif  // SUBSIM_ALGO_OPIM_C_H_
