#include "subsim/algo/im_algorithm.h"

#include <string>

#include "subsim/util/math.h"

namespace subsim {

Status ValidateImOptions(const Graph& graph, const ImOptions& options) {
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("graph has no nodes");
  }
  if (options.k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (options.k > graph.num_nodes()) {
    return Status::InvalidArgument(
        "k (" + std::to_string(options.k) + ") exceeds node count (" +
        std::to_string(graph.num_nodes()) + ")");
  }
  if (options.epsilon <= 0.0 || options.epsilon >= kOneMinusInvE) {
    return Status::InvalidArgument(
        "epsilon must be in (0, 1 - 1/e); got " +
        std::to_string(options.epsilon));
  }
  if (options.delta < 0.0 || options.delta >= 1.0) {
    return Status::InvalidArgument("delta must be in [0, 1)");
  }
  return Status::Ok();
}

}  // namespace subsim
