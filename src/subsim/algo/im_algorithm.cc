#include "subsim/algo/im_algorithm.h"

#include <string>

#include "subsim/util/math.h"

namespace subsim {

Result<std::unique_ptr<SampleStore>> ImAlgorithm::MakeSampleStore(
    const Graph& /*graph*/, const ImOptions& /*options*/) const {
  return Status::FailedPrecondition(std::string(name()) +
                                    " does not support sample reuse");
}

Result<ImResult> ImAlgorithm::RunWithStore(const Graph& /*graph*/,
                                           const ImOptions& /*options*/,
                                           SampleStore* /*store*/) const {
  return Status::FailedPrecondition(std::string(name()) +
                                    " does not support sample reuse");
}

Status ValidateImOptions(const Graph& graph, const ImOptions& options) {
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("graph has no nodes");
  }
  if (options.k == 0) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (options.k > graph.num_nodes()) {
    return Status::InvalidArgument(
        "k (" + std::to_string(options.k) + ") exceeds node count (" +
        std::to_string(graph.num_nodes()) + ")");
  }
  if (options.epsilon <= 0.0 || options.epsilon >= kOneMinusInvE) {
    return Status::InvalidArgument(
        "epsilon must be in (0, 1 - 1/e); got " +
        std::to_string(options.epsilon));
  }
  if (options.delta < 0.0 || options.delta >= 1.0) {
    return Status::InvalidArgument("delta must be in [0, 1)");
  }
  return Status::Ok();
}

Status ValidateSampleStore(const Graph& graph, const ImOptions& options,
                           const SampleStore& store) {
  if (store.num_graph_nodes() != graph.num_nodes()) {
    return Status::FailedPrecondition(
        "sample store was built over a different graph (" +
        std::to_string(store.num_graph_nodes()) + " vs " +
        std::to_string(graph.num_nodes()) + " nodes)");
  }
  if (store.generator_kind() != options.generator) {
    return Status::FailedPrecondition(
        "sample store generator does not match the query's generator");
  }
  return Status::Ok();
}

}  // namespace subsim
