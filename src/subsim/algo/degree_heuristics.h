#ifndef SUBSIM_ALGO_DEGREE_HEURISTICS_H_
#define SUBSIM_ALGO_DEGREE_HEURISTICS_H_

#include "subsim/algo/im_algorithm.h"

namespace subsim {

/// Degree-based heuristics (Chen, Wang, Yang — KDD 2009). These are the
/// "fast but no approximation guarantee" baselines the paper's introduction
/// contrasts the RIS family against: they ignore cascade dynamics beyond
/// one hop, so their seed quality degrades on graphs where influence is not
/// degree-aligned — but they run in O(m + n log n) and make a useful
/// quality yardstick in examples and ablations.
enum class DegreeHeuristicKind {
  /// Top-k nodes by out-degree.
  kMaxDegree,
  /// SingleDiscount: picking a seed discounts each out-neighbor's degree
  /// by one (a neighbor's edge into the seed set is wasted).
  kSingleDiscount,
  /// DegreeDiscount: the IC-aware discount 2t + (d - t) t p for a node
  /// with t already-seeded in-neighbors, degree d, and uniform probability
  /// p (Chen et al.'s ddv formula). Falls back to SingleDiscount's rule
  /// when edge probabilities are not uniform (p is then the graph's mean
  /// edge weight).
  kDegreeDiscount,
};

/// Degree-heuristic seed selection behind the common `ImAlgorithm`
/// interface. `ImOptions::epsilon` / `generator` are ignored; results carry
/// no certified bounds (there is no guarantee to certify).
class DegreeHeuristic final : public ImAlgorithm {
 public:
  explicit DegreeHeuristic(DegreeHeuristicKind kind) : kind_(kind) {}

  Result<ImResult> Run(const Graph& graph,
                       const ImOptions& options) const override;
  const char* name() const override;

 private:
  DegreeHeuristicKind kind_;
};

}  // namespace subsim

#endif  // SUBSIM_ALGO_DEGREE_HEURISTICS_H_
