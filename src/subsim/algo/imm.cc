#include "subsim/algo/imm.h"

#include <algorithm>
#include <cmath>

#include "subsim/coverage/max_coverage.h"
#include "subsim/obs/phase_tracer.h"
#include "subsim/util/math.h"

namespace subsim {

Result<std::unique_ptr<SampleStore>> Imm::MakeSampleStore(
    const Graph& graph, const ImOptions& options) const {
  // Stream 0 carries the single IMM collection (logical stream 1, matching
  // the cold run); stream 1 (logical stream 2) exists for the store's fixed
  // shape and stays empty.
  SampleStore::Options store_options;
  store_options.num_threads = options.num_threads;
  store_options.obs = options.obs;
  store_options.kernel = options.fill_kernel;
  store_options.encoding = options.rr_encoding;
  return SampleStore::Create(graph, options.generator,
                             {MakeRngStream(options.rng_seed, 1),
                              MakeRngStream(options.rng_seed, 2)},
                             store_options);
}

Result<ImResult> Imm::Run(const Graph& graph,
                          const ImOptions& options) const {
  SUBSIM_RETURN_IF_ERROR(ValidateImOptions(graph, options));
  Result<std::unique_ptr<SampleStore>> store =
      MakeSampleStore(graph, options);
  if (!store.ok()) {
    return store.status();
  }
  return RunWithStore(graph, options, store->get());
}

Result<ImResult> Imm::RunWithStore(const Graph& graph,
                                   const ImOptions& options,
                                   SampleStore* store) const {
  SUBSIM_RETURN_IF_ERROR(ValidateImOptions(graph, options));
  SUBSIM_RETURN_IF_ERROR(ValidateSampleStore(graph, options, *store));
  PhaseScope run_span(options.obs.tracer, "imm.run");

  const NodeId n = graph.num_nodes();
  const std::uint32_t k = options.k;
  const double eps = options.epsilon;
  const double delta = options.EffectiveDelta(n);
  const double ln_n = std::log(std::max<double>(n, 2));

  // delta = n^-l  =>  l = ln(1/delta)/ln(n); bumped by ln2/ln n so the
  // union bound over both phases still lands at n^-l (IMM Section 4.3).
  double l = std::log(1.0 / delta) / ln_n;
  l *= 1.0 + std::log(2.0) / ln_n;

  const double log_nk = LogNChooseK(n, k);

  CoverageGreedyOptions greedy_options;
  greedy_options.k = k;
  greedy_options.approx_coverage = options.approx_coverage;
  greedy_options.metrics = options.obs.metrics;

  // `cold_sets` tracks how many sets a cold run's collection would hold at
  // each point; the store may be longer (warmed by other queries), so every
  // evaluation happens on a prefix view of exactly this size.
  std::uint64_t cold_sets = 0;

  // ---- Phase 1: estimate a lower bound LB of OPT. ----
  PhaseScope estimate_span(options.obs.tracer, "imm.estimate_opt");
  const double eps_prime = std::sqrt(2.0) * eps;
  const double lambda_prime =
      (2.0 + 2.0 / 3.0 * eps_prime) *
      (log_nk + l * ln_n + std::log(std::max(1.0, std::log2(n)))) *
      static_cast<double>(n) / (eps_prime * eps_prime);

  double lower_bound_opt = 1.0;
  bool deadline_hit = false;
  const int max_rounds = std::max(1, static_cast<int>(std::log2(n)) - 1);
  for (int i = 1; i <= max_rounds; ++i) {
    const double x = static_cast<double>(n) / std::pow(2.0, i);
    const std::uint64_t theta_i =
        static_cast<std::uint64_t>(std::ceil(lambda_prime / x));
    cold_sets = std::max(cold_sets, theta_i);
    SUBSIM_RETURN_IF_ERROR(store->EnsureSets(0, cold_sets));
    const SampleStore::ReadGuard read = store->Read();
    const RrCollectionView view = read.View(0, cold_sets);
    const CoverageGreedyResult greedy =
        RunCoverageGreedy(view, greedy_options);
    const double estimated =
        static_cast<double>(n) *
        static_cast<double>(greedy.total_coverage()) /
        static_cast<double>(view.num_sets());
    if (estimated >= (1.0 + eps_prime) * x) {
      lower_bound_opt = estimated / (1.0 + eps_prime);
      break;
    }
    // Round boundaries are the only deadline checkpoints (round 1 always
    // completes). Stopping here leaves `lower_bound_opt` at the k floor
    // applied below — k is unconditionally a lower bound of OPT, so the
    // degraded run's guarantee stays sound, just looser.
    if (options.deadline.Expired()) {
      deadline_hit = true;
      break;
    }
  }
  lower_bound_opt = std::max(lower_bound_opt, static_cast<double>(k));
  estimate_span.Close();
  if (options.obs.metrics != nullptr) {
    options.obs.metrics->Gauge("imm.lower_bound_opt").Set(lower_bound_opt);
  }

  // ---- Phase 2: theta = lambda* / LB, then final greedy. ----
  PhaseScope select_span(options.obs.tracer, "imm.select");
  // The final greedy runs over max(theta, phase-1 watermark) sets — a cold
  // run never discards phase-1 sets even when theta is smaller.
  const double alpha = std::sqrt(l * ln_n + std::log(2.0));
  const double beta =
      std::sqrt(kOneMinusInvE * (log_nk + l * ln_n + std::log(2.0)));
  // theta(eps') = lambda_base / (eps'^2 * LB); kept un-divided so a
  // deadline-truncated run can invert it at the sets actually evaluated.
  const double lambda_base = 2.0 * static_cast<double>(n) *
                             (kOneMinusInvE * alpha + beta) *
                             (kOneMinusInvE * alpha + beta);
  const double lambda_star = lambda_base / (eps * eps);
  const std::uint64_t theta =
      static_cast<std::uint64_t>(std::ceil(lambda_star / lower_bound_opt));
  if (options.obs.metrics != nullptr) {
    options.obs.metrics->Gauge("imm.theta").Set(static_cast<double>(theta));
  }
  if (!deadline_hit && cold_sets < theta && options.deadline.Expired()) {
    deadline_hit = true;
  }
  if (!deadline_hit) {
    cold_sets = std::max(cold_sets, theta);
    SUBSIM_RETURN_IF_ERROR(store->EnsureSets(0, cold_sets));
  }
  // On deadline: select over the phase-1 prefix already committed — the
  // same sets a cold run would have drawn first, so the degraded result is
  // reproducible and prefix-consistent with the full-budget run.

  const SampleStore::ReadGuard read = store->Read();
  const RrCollectionView view = read.View(0, cold_sets);
  const CoverageGreedyResult greedy = RunCoverageGreedy(view, greedy_options);

  ImResult result;
  result.seeds = greedy.seeds;
  result.estimated_spread = static_cast<double>(n) *
                            static_cast<double>(greedy.total_coverage()) /
                            static_cast<double>(view.num_sets());
  result.num_rr_sets = view.num_sets();
  result.total_rr_nodes = view.total_nodes();
  result.deadline_hit = deadline_hit;
  // Invert the phase-2 sample-size formula at the evaluated set count:
  // the epsilon this many sets certify against the LB actually used.
  result.achieved_epsilon = std::sqrt(
      lambda_base /
      (static_cast<double>(view.num_sets()) * lower_bound_opt));
  select_span.Close();
  result.seconds = run_span.ElapsedSeconds();
  return result;
}

}  // namespace subsim
