#include "subsim/algo/registry.h"

#include "subsim/algo/celf_greedy.h"
#include "subsim/algo/hist.h"
#include "subsim/algo/imm.h"
#include "subsim/algo/opim_c.h"
#include "subsim/algo/ssa.h"
#include "subsim/algo/degree_heuristics.h"
#include "subsim/algo/tim_plus.h"

namespace subsim {

Result<std::unique_ptr<ImAlgorithm>> MakeImAlgorithm(
    const std::string& name) {
  if (name == "imm") {
    return std::unique_ptr<ImAlgorithm>(new Imm());
  }
  if (name == "opim-c") {
    return std::unique_ptr<ImAlgorithm>(new OpimC());
  }
  if (name == "ssa") {
    return std::unique_ptr<ImAlgorithm>(new Ssa());
  }
  if (name == "tim+") {
    return std::unique_ptr<ImAlgorithm>(new TimPlus());
  }
  if (name == "hist") {
    return std::unique_ptr<ImAlgorithm>(new Hist());
  }
  if (name == "celf-mc") {
    return std::unique_ptr<ImAlgorithm>(new CelfGreedy());
  }
  if (name == "max-degree") {
    return std::unique_ptr<ImAlgorithm>(
        new DegreeHeuristic(DegreeHeuristicKind::kMaxDegree));
  }
  if (name == "single-discount") {
    return std::unique_ptr<ImAlgorithm>(
        new DegreeHeuristic(DegreeHeuristicKind::kSingleDiscount));
  }
  if (name == "degree-discount") {
    return std::unique_ptr<ImAlgorithm>(
        new DegreeHeuristic(DegreeHeuristicKind::kDegreeDiscount));
  }
  return Status::InvalidArgument("unknown IM algorithm: " + name);
}

std::vector<std::string> ImAlgorithmNames() {
  return {"imm",     "tim+",            "opim-c",
          "ssa",     "hist",            "celf-mc",
          "max-degree", "single-discount", "degree-discount"};
}

}  // namespace subsim
