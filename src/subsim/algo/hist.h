#ifndef SUBSIM_ALGO_HIST_H_
#define SUBSIM_ALGO_HIST_H_

#include "subsim/algo/im_algorithm.h"

namespace subsim {

/// HIST — Hit-and-Stop (Algorithm 4): the paper's algorithm for
/// high-influence networks.
///
/// Phase 1, `SentinelSet` (Algorithm 7), finds a small sentinel set S*_b
/// with the relaxed guarantee I(S*_b) >= (1 - (1-1/k)^b - eps/2) * OPT:
/// a doubling loop selects seeds with the out-degree tie-breaking greedy
/// (Algorithm 6), picks b as the largest greedy prefix whose *estimated*
/// lower bound clears the relaxed target against the Equation (2) upper
/// bound, and verifies the pick on an independent sentinel-truncated
/// collection (growing it to 4x before giving up on the candidate).
///
/// Phase 2, `IM-Sentinel` (Algorithm 8), selects the remaining k - b seeds.
/// Every RR set is generated with hit-and-stop semantics (Algorithm 5):
/// the traversal ends the moment any sentinel is activated, which is what
/// collapses the average RR-set size (up to ~700x in the paper's Figure 3)
/// and with it the running time. The union of both phases carries the
/// usual (1 - 1/e - eps) guarantee with probability 1 - delta
/// (eps and delta split evenly across phases).
///
/// Combine with `ImOptions::generator = kSubsimIc` for the paper's
/// HIST+SUBSIM variant.
class Hist final : public ImAlgorithm {
 public:
  Result<ImResult> Run(const Graph& graph,
                       const ImOptions& options) const override;
  const char* name() const override { return "hist"; }
};

}  // namespace subsim

#endif  // SUBSIM_ALGO_HIST_H_
