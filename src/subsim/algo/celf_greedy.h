#ifndef SUBSIM_ALGO_CELF_GREEDY_H_
#define SUBSIM_ALGO_CELF_GREEDY_H_

#include "subsim/algo/im_algorithm.h"
#include "subsim/eval/spread_estimator.h"

namespace subsim {

/// The classic simulation-based greedy (Kempe et al. 2003) with CELF lazy
/// evaluation (Leskovec et al. 2007). Spread is estimated by forward
/// Monte-Carlo simulation, so the cost is Omega(k * n * simulations) — this
/// is the slow pre-RIS reference the paper's introduction contrasts
/// against. Included for small-graph validation and the quickstart, not
/// for benchmarks at scale.
///
/// CELF's lazy bound is only statistically valid here (estimates are
/// noisy), so results can deviate slightly from exhaustive greedy; tests
/// use generous simulation counts.
class CelfGreedy final : public ImAlgorithm {
 public:
  /// `simulations_per_estimate` controls estimation accuracy.
  explicit CelfGreedy(std::uint64_t simulations_per_estimate = 2000,
                      CascadeModel model = CascadeModel::kIndependentCascade)
      : simulations_(simulations_per_estimate), model_(model) {}

  Result<ImResult> Run(const Graph& graph,
                       const ImOptions& options) const override;
  const char* name() const override { return "celf-mc"; }

 private:
  std::uint64_t simulations_;
  CascadeModel model_;
};

}  // namespace subsim

#endif  // SUBSIM_ALGO_CELF_GREEDY_H_
