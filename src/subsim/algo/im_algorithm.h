#ifndef SUBSIM_ALGO_IM_ALGORITHM_H_
#define SUBSIM_ALGO_IM_ALGORITHM_H_

#include <cstdint>
#include <string>
#include <vector>

#include <memory>

#include "subsim/graph/graph.h"
#include "subsim/rrset/generator_factory.h"
#include "subsim/rrset/sample_store.h"
#include "subsim/util/deadline.h"
#include "subsim/util/status.h"

namespace subsim {

/// Common knobs for every RR-set-based IM algorithm.
struct ImOptions {
  /// Seed-set budget.
  std::uint32_t k = 50;

  /// Approximation slack: algorithms certify (1 - 1/e - epsilon)-approximate
  /// solutions. The paper's experiments use 0.1.
  double epsilon = 0.1;

  /// Failure probability. 0 means "use 1/n" (the paper's default).
  double delta = 0.0;

  /// RNG seed; everything downstream is deterministic given it.
  std::uint64_t rng_seed = 1;

  /// Which RR-set generator to use — the axis the paper varies:
  /// OPIM-C + kSubsimIc is the paper's "SUBSIM" algorithm, HIST + kSubsimIc
  /// its "HIST+SUBSIM".
  GeneratorKind generator = GeneratorKind::kVanillaIc;

  /// Worker threads for RR-set generation (`FillCollection`): 1 (default)
  /// runs fills inline; 0 = hardware concurrency; N = N workers. Every RR
  /// set is drawn from a counter-based substream of `rng_seed`, so the
  /// sample stream — and therefore the selected seeds — is byte-identical
  /// for every value; the thread count changes wall-clock time only.
  unsigned num_threads = 1;

  /// RR-generation kernel for fills (`FillKernel`): `kAuto` (default)
  /// resolves to the frontier-batched kernel, `kScalar` forces the
  /// per-set reference path. The sample stream — and therefore the
  /// selected seeds — is byte-identical for every value; the knob changes
  /// wall-clock time only (see docs/rr_generation.md).
  FillKernel fill_kernel = FillKernel::kAuto;

  /// Arena storage encoding for every RR collection the run builds (local
  /// collections and `MakeSampleStore` stores alike). A pure storage knob:
  /// the sample stream, the inverted index, and therefore the selected
  /// seeds are identical for every value — kDeltaVarint just spends ~3-4x
  /// fewer arena bytes (see docs/memory.md).
  RrEncoding rr_encoding = RrEncoding::kRaw;

  /// Approximate the greedy max-coverage marginals with per-candidate
  /// HyperLogLog count-distinct sketches instead of exact inverted-index
  /// recounts, with an error-adaptive exact refinement when the estimated
  /// best is within the sketch error bar of the runner-up (docs/memory.md).
  /// Selected gains and every reported bound stay exact (they are
  /// recomputed from the exact covered bitmap); only *which* node wins a
  /// near-tie may differ from exact greedy, within the sketch (ε, δ).
  bool approx_coverage = false;

  /// Optional observability sinks (must outlive the run). Attaching them
  /// never changes the RNG streams or the selected seeds — metrics are
  /// flushed outside the sampling loops and spans only read the clock.
  ObsContext obs;

  /// Optional execution budget (serving deadline). Unset (the default)
  /// costs nothing and changes nothing. When set, the doubling algorithms
  /// (OPIM-C, IMM) check it at round boundaries only: the first round
  /// always completes, so a degraded run still returns seeds, and the sets
  /// evaluated are always an exact prefix of the un-budgeted run's sample
  /// stream — the response is annotated with the achieved `(epsilon,
  /// delta)` instead of failing. See `ImResult::deadline_hit`.
  Deadline deadline;

  /// Resolves delta == 0 to 1/n.
  double EffectiveDelta(NodeId num_nodes) const {
    return delta > 0.0 ? delta
                       : 1.0 / static_cast<double>(
                                   num_nodes > 1 ? num_nodes : 2);
  }
};

/// What an IM run produced, plus the accounting the paper's figures report.
struct ImResult {
  std::vector<NodeId> seeds;

  /// Certified influence bounds when the algorithm computes them (OPIM-C,
  /// HIST); zero otherwise. `approx_ratio` = lower / upper.
  double influence_lower_bound = 0.0;
  double optimal_upper_bound = 0.0;
  double approx_ratio = 0.0;

  /// Unbiased coverage-based estimate of the selected set's influence.
  double estimated_spread = 0.0;

  /// Total RR sets generated across all collections and phases — the
  /// quantity Figure 3(a) compares.
  std::uint64_t num_rr_sets = 0;
  /// Total nodes stored across those sets; avg = total / num — Fig. 3(b).
  std::uint64_t total_rr_nodes = 0;

  /// Wall-clock seconds for the full run.
  double seconds = 0.0;

  /// True when `ImOptions::deadline` expired and the run stopped at a
  /// round boundary before reaching its requested epsilon. The seeds are
  /// still a valid greedy solution over the committed sample prefix, and
  /// `achieved_epsilon` reports the certified slack actually reached.
  bool deadline_hit = false;
  /// The epsilon actually certified at the run's delta: for OPIM-C,
  /// `(1 - 1/e) - approx_ratio` from the last completed round's bounds;
  /// for IMM, the epsilon the phase-2 sample-size formula yields when
  /// inverted at the number of sets actually evaluated. Equals at most the
  /// requested epsilon on a full-budget run; larger on a degraded one.
  double achieved_epsilon = 0.0;

  /// HIST only: sentinel-set size b and per-phase RR counts.
  std::uint32_t sentinel_size = 0;
  std::uint64_t phase1_rr_sets = 0;
  std::uint64_t phase2_rr_sets = 0;

  double average_rr_size() const {
    return num_rr_sets == 0
               ? 0.0
               : static_cast<double>(total_rr_nodes) / num_rr_sets;
  }
};

/// Interface implemented by IMM, OPIM-C, SSA, and HIST.
class ImAlgorithm {
 public:
  virtual ~ImAlgorithm() = default;

  /// Selects a seed set on `graph` under IC semantics (or LT when the
  /// options name the LT generator). Fails on invalid options (k == 0,
  /// k > n, epsilon outside (0, 1 - 1/e), or generator preconditions).
  virtual Result<ImResult> Run(const Graph& graph,
                               const ImOptions& options) const = 0;

  /// True when the algorithm can run against a shared `SampleStore` whose
  /// RR streams persist across queries (see `RunWithStore`). False for
  /// algorithms whose samples are not reusable — notably HIST, whose
  /// sentinel-truncated sets must never be served to another query.
  virtual bool SupportsSampleReuse() const { return false; }

  /// Creates a store whose rng stream lineage matches this algorithm's
  /// cold run over `graph`, suitable for `RunWithStore`. Only the
  /// generator kind, rng seed, and num_threads fields of `options` shape
  /// the store — k/epsilon/delta may differ between the queries it serves.
  virtual Result<std::unique_ptr<SampleStore>> MakeSampleStore(
      const Graph& graph, const ImOptions& options) const;

  /// Runs against a pre-seeded store created by `MakeSampleStore` over the
  /// same (graph, generator, rng seed): committed sets are reused and only
  /// what the schedule still misses is generated. For sequential stores
  /// the result is identical to a cold `Run` with the same options, no
  /// matter what other queries the store served before.
  virtual Result<ImResult> RunWithStore(const Graph& graph,
                                        const ImOptions& options,
                                        SampleStore* store) const;

  virtual const char* name() const = 0;
};

/// Validates the option invariants shared by all algorithms.
Status ValidateImOptions(const Graph& graph, const ImOptions& options);

/// Validates that `store` matches (graph, options.generator) before a
/// `RunWithStore`. The rng seed lineage is not recoverable from a store;
/// callers must key stores by seed (the serving cache does).
Status ValidateSampleStore(const Graph& graph, const ImOptions& options,
                           const SampleStore& store);

}  // namespace subsim

#endif  // SUBSIM_ALGO_IM_ALGORITHM_H_
