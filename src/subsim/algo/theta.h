#ifndef SUBSIM_ALGO_THETA_H_
#define SUBSIM_ALGO_THETA_H_

#include <cstdint>

#include "subsim/graph/types.h"

namespace subsim {

/// Sample-size formulas used by the doubling algorithms. All return a
/// number of RR sets (at least 1), computed with OPT_k conservatively
/// replaced by k (the k seeds alone always influence >= k nodes).

/// The initial sample size used by OPIM-C-style doubling schedules and by
/// both HIST phases (Algorithms 7/8 line 1): theta_0 = 3 ln(1/delta),
/// the Monte-Carlo floor of Dagum et al. for relative-error estimation.
std::uint64_t InitialTheta(double delta);

/// Equation (3): theta_max for HIST's sentinel-selection phase —
///   2n ( sqrt(ln(6/d1)) + sqrt(ln C(n,k) + ln(6/d1)) )^2 / (eps1^2 k).
std::uint64_t HistPhase1ThetaMax(NodeId n, std::uint32_t k, double eps1,
                                 double delta1);

/// Equation (4): theta_max for HIST's IM-Sentinel phase —
///   2n ( sqrt(ln(9/d2)) + sqrt((1-1/e)(ln C(n-b,k-b) + ln(9/d2))) )^2
///     / (eps2^2 k).
std::uint64_t HistPhase2ThetaMax(NodeId n, std::uint32_t k, std::uint32_t b,
                                 double eps2, double delta2);

/// OPIM-C's theta_max (Tang et al. 2018), same shape with the classic
/// (1 - 1/e) factors:
///   2n ( (1-1/e) sqrt(ln(6/d)) + sqrt((1-1/e)(ln C(n,k) + ln(6/d))) )^2
///     / (eps^2 k).
std::uint64_t OpimThetaMax(NodeId n, std::uint32_t k, double eps,
                           double delta);

/// Number of doubling iterations: ceil(log2(theta_max / theta_0)),
/// at least 1.
std::uint32_t DoublingIterations(std::uint64_t theta0,
                                 std::uint64_t theta_max);

}  // namespace subsim

#endif  // SUBSIM_ALGO_THETA_H_
