#include "subsim/algo/theta.h"

#include <algorithm>
#include <cmath>

#include "subsim/util/check.h"
#include "subsim/util/math.h"

namespace subsim {

namespace {

std::uint64_t CeilToCount(double x) {
  if (x < 1.0) {
    return 1;
  }
  // Cap defensively; doubling schedules stop at theta_max anyway.
  constexpr double kCap = 1e15;
  return static_cast<std::uint64_t>(std::ceil(std::min(x, kCap)));
}

}  // namespace

std::uint64_t InitialTheta(double delta) {
  SUBSIM_CHECK(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
  return CeilToCount(3.0 * std::log(1.0 / delta));
}

std::uint64_t HistPhase1ThetaMax(NodeId n, std::uint32_t k, double eps1,
                                 double delta1) {
  SUBSIM_CHECK(k >= 1 && k <= n, "k out of range");
  SUBSIM_CHECK(eps1 > 0.0, "eps1 must be positive");
  const double ln6d = std::log(6.0 / delta1);
  const double lnck = LogNChooseK(n, k);
  const double root = std::sqrt(ln6d) + std::sqrt(lnck + ln6d);
  return CeilToCount(2.0 * static_cast<double>(n) * root * root /
                     (eps1 * eps1 * static_cast<double>(k)));
}

std::uint64_t HistPhase2ThetaMax(NodeId n, std::uint32_t k, std::uint32_t b,
                                 double eps2, double delta2) {
  SUBSIM_CHECK(k >= 1 && k <= n, "k out of range");
  SUBSIM_CHECK(b <= k, "b must not exceed k");
  SUBSIM_CHECK(eps2 > 0.0, "eps2 must be positive");
  const double ln9d = std::log(9.0 / delta2);
  const double lnck = LogNChooseK(n - b, k - b);
  const double root =
      std::sqrt(ln9d) + std::sqrt(kOneMinusInvE * (lnck + ln9d));
  return CeilToCount(2.0 * static_cast<double>(n) * root * root /
                     (eps2 * eps2 * static_cast<double>(k)));
}

std::uint64_t OpimThetaMax(NodeId n, std::uint32_t k, double eps,
                           double delta) {
  SUBSIM_CHECK(k >= 1 && k <= n, "k out of range");
  SUBSIM_CHECK(eps > 0.0, "eps must be positive");
  const double ln6d = std::log(6.0 / delta);
  const double lnck = LogNChooseK(n, k);
  const double root = kOneMinusInvE * std::sqrt(ln6d) +
                      std::sqrt(kOneMinusInvE * (lnck + ln6d));
  return CeilToCount(2.0 * static_cast<double>(n) * root * root /
                     (eps * eps * static_cast<double>(k)));
}

std::uint32_t DoublingIterations(std::uint64_t theta0,
                                 std::uint64_t theta_max) {
  SUBSIM_CHECK(theta0 >= 1, "theta0 must be >= 1");
  std::uint32_t iterations = 1;
  std::uint64_t theta = theta0;
  while (theta < theta_max && iterations < 63) {
    theta <<= 1;
    ++iterations;
  }
  return iterations;
}

}  // namespace subsim
