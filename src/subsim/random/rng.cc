#include "subsim/random/rng.h"

#include "subsim/util/check.h"

namespace subsim {

namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = SplitMix64(&sm);
  }
  // xoshiro must not start from the all-zero state; SplitMix64 of any seed
  // cannot produce four zero words, but keep the guard explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 0x9e3779b97f4a7c15ull;
  }
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDoubleOpen() {
  // (u >> 11) is in [0, 2^53); +0.5 shifts to (0, 2^53), then scale.
  return (static_cast<double>(NextU64() >> 11) + 0.5) * 0x1.0p-53;
}

std::uint64_t Rng::UniformInt(std::uint64_t bound) {
  SUBSIM_DCHECK(bound >= 1, "UniformInt requires bound >= 1");
  // Lemire's multiply-then-reject method: unbiased, one division in the
  // rare rejection path only.
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

Rng Rng::Fork(std::uint64_t stream) const {
  // Mix the current state with the stream id through SplitMix64 so forks
  // differ even for consecutive stream ids.
  std::uint64_t mix = s_[0] ^ Rotl(s_[2], 29) ^ (stream * 0xd1342543de82ef95ull);
  std::uint64_t seed = SplitMix64(&mix);
  return Rng(seed ^ stream);
}

Rng Rng::Substream(std::uint64_t base_seed, std::uint64_t set_index) {
  // Same mixing recipe as Fork, but keyed on a plain seed instead of live
  // engine state so the result is a pure function of its two arguments.
  std::uint64_t mix =
      base_seed ^ Rotl(base_seed, 29) ^ (set_index * 0xd1342543de82ef95ull);
  std::uint64_t seed = SplitMix64(&mix);
  return Rng(seed ^ set_index);
}

std::uint64_t DeriveStreamSeed(std::uint64_t master_seed,
                               std::uint64_t stream) {
  std::uint64_t mix = master_seed ^ (stream * 0x94d049bb133111ebull);
  return SplitMix64(&mix) ^ stream;
}

}  // namespace subsim
