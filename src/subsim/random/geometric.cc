#include "subsim/random/geometric.h"

#include <cmath>

#include "subsim/util/check.h"

namespace subsim {

std::uint64_t SampleGeometric(Rng& rng, double p) {
  SUBSIM_DCHECK(p > 0.0 && p <= 1.0, "SampleGeometric requires 0 < p <= 1");
  if (p >= 1.0) {
    return 1;
  }
  return SampleGeometricFast(rng, GeometricInvLogQ(p));
}

double GeometricInvLogQ(double p) {
  SUBSIM_DCHECK(p > 0.0 && p < 1.0, "GeometricInvLogQ requires 0 < p < 1");
  // log1p(-p) = log(1-p), accurate for small p.
  return 1.0 / std::log1p(-p);
}

std::uint64_t SampleGeometricFast(Rng& rng, double inv_log_q) {
  const double u = rng.NextDoubleOpen();
  const double x = std::ceil(std::log(u) * inv_log_q);
  // x >= 1 always (log(u) < 0, inv_log_q < 0). Guard against the double
  // exceeding the integer range for microscopic p.
  if (!(x < static_cast<double>(kGeometricCap))) {
    return kGeometricCap;
  }
  const std::uint64_t i = static_cast<std::uint64_t>(x);
  return i == 0 ? 1 : i;  // ceil may give 0 if u rounds to 1.0 exactly.
}

}  // namespace subsim
