#ifndef SUBSIM_RANDOM_RNG_H_
#define SUBSIM_RANDOM_RNG_H_

#include <cstddef>
#include <cstdint>

namespace subsim {

/// SplitMix64 step; used to expand user seeds into full engine state and to
/// derive independent substreams. Public for tests.
std::uint64_t SplitMix64(std::uint64_t* state);

/// Deterministic pseudo-random generator (xoshiro256++).
///
/// All randomness in the library flows through explicitly seeded `Rng`
/// instances — there is no global RNG — so every sampling routine, RR-set
/// generator, and IM algorithm is reproducible from a single 64-bit seed.
///
/// Satisfies the uniform_random_bit_generator concept (operator(), min, max),
/// so it can also drive <random> distributions when convenient.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next 64 uniform random bits.
  std::uint64_t NextU64();

  /// Writes the next `n` values of the stream into `out` — exactly the
  /// values `n` successive `NextU64()` calls would return, and the engine
  /// is left in the same state. Defined inline so bulk consumers (the
  /// batched RR kernel's vectorized Bernoulli loops) keep the whole engine
  /// state in registers instead of paying a call per draw; byte-for-byte
  /// stream equality with the scalar API is pinned by `rng_test`.
  void NextU64Batch(std::uint64_t* out, std::size_t n) {
    std::uint64_t s0 = s_[0];
    std::uint64_t s1 = s_[1];
    std::uint64_t s2 = s_[2];
    std::uint64_t s3 = s_[3];
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t sum = s0 + s3;
      out[i] = ((sum << 23) | (sum >> 41)) + s0;
      const std::uint64_t t = s1 << 17;
      s2 ^= s0;
      s3 ^= s1;
      s1 ^= s2;
      s0 ^= s3;
      s2 ^= t;
      s3 = (s3 << 45) | (s3 >> 19);
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
  }

  /// The exact value `NextDouble()` derives from one `NextU64()` draw.
  /// Exposed so bulk consumers of `NextU64Batch` reproduce the scalar
  /// Bernoulli comparison bit-for-bit.
  static double ToUnitDouble(std::uint64_t bits) {
    return static_cast<double>(bits >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [0, 1). 53-bit resolution.
  double NextDouble();

  /// Uniform double in (0, 1); never returns 0, safe for log().
  double NextDoubleOpen();

  /// Uniform integer in [0, bound). Requires bound >= 1. Unbiased
  /// (Lemire's rejection method).
  std::uint64_t UniformInt(std::uint64_t bound);

  /// True with probability p (p clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Derives an independent generator for substream `stream`. Two forks of
  /// the same Rng state with different stream ids are statistically
  /// independent; forking does not advance this generator.
  Rng Fork(std::uint64_t stream) const;

  /// Counter-based substream: an independent generator that is a pure
  /// function of `(base_seed, set_index)` — no parent state involved. This
  /// is the thread-invariance primitive: when every RR set at index `i` is
  /// generated from `Substream(base_seed, i)`, the ordered sample stream is
  /// byte-identical regardless of how indices are scheduled across worker
  /// threads. Uses the same SplitMix-style mixing as `Fork`.
  static Rng Substream(std::uint64_t base_seed, std::uint64_t set_index);

  using result_type = std::uint64_t;
  result_type operator()() { return NextU64(); }
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

 private:
  std::uint64_t s_[4];
};

/// Derives the base seed of logical stream `stream` from a master seed.
/// This is how algorithms split one `rng_seed` into independent sample
/// streams (R1/R2, sentinel stream, ...) without holding a parent `Rng`:
/// the result feeds `RngStream::base_seed`, and individual sets come from
/// `Rng::Substream(base_seed, index)`.
std::uint64_t DeriveStreamSeed(std::uint64_t master_seed,
                               std::uint64_t stream);

/// Cursor over a counter-based sample stream. Element `i` of the stream is
/// `Rng::Substream(base_seed, i)`; fills consume indices starting at
/// `next_index` and advance it. The cursor is owned by the caller (not by
/// any collection), so a logical stream survives collection resets — e.g.
/// HIST regenerates a fresh sentinel collection every iteration while
/// continuing the same stream — and a fill's output depends only on
/// `(base_seed, next_index, count)`, never on thread count or on how the
/// same total was split across calls.
struct RngStream {
  std::uint64_t base_seed = 0;
  std::uint64_t next_index = 0;
};

/// Stream `stream` of master seed `master_seed`, positioned at index 0.
inline RngStream MakeRngStream(std::uint64_t master_seed,
                               std::uint64_t stream) {
  return RngStream{DeriveStreamSeed(master_seed, stream), 0};
}

}  // namespace subsim

#endif  // SUBSIM_RANDOM_RNG_H_
