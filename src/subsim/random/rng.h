#ifndef SUBSIM_RANDOM_RNG_H_
#define SUBSIM_RANDOM_RNG_H_

#include <cstdint>

namespace subsim {

/// SplitMix64 step; used to expand user seeds into full engine state and to
/// derive independent substreams. Public for tests.
std::uint64_t SplitMix64(std::uint64_t* state);

/// Deterministic pseudo-random generator (xoshiro256++).
///
/// All randomness in the library flows through explicitly seeded `Rng`
/// instances — there is no global RNG — so every sampling routine, RR-set
/// generator, and IM algorithm is reproducible from a single 64-bit seed.
///
/// Satisfies the uniform_random_bit_generator concept (operator(), min, max),
/// so it can also drive <random> distributions when convenient.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next 64 uniform random bits.
  std::uint64_t NextU64();

  /// Uniform double in [0, 1). 53-bit resolution.
  double NextDouble();

  /// Uniform double in (0, 1); never returns 0, safe for log().
  double NextDoubleOpen();

  /// Uniform integer in [0, bound). Requires bound >= 1. Unbiased
  /// (Lemire's rejection method).
  std::uint64_t UniformInt(std::uint64_t bound);

  /// True with probability p (p clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Derives an independent generator for substream `stream`. Two forks of
  /// the same Rng state with different stream ids are statistically
  /// independent; forking does not advance this generator.
  Rng Fork(std::uint64_t stream) const;

  using result_type = std::uint64_t;
  result_type operator()() { return NextU64(); }
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

 private:
  std::uint64_t s_[4];
};

}  // namespace subsim

#endif  // SUBSIM_RANDOM_RNG_H_
