#ifndef SUBSIM_RANDOM_GEOMETRIC_H_
#define SUBSIM_RANDOM_GEOMETRIC_H_

#include <cstdint>

#include "subsim/random/rng.h"

namespace subsim {

/// Samples from the geometric distribution G(p) on {1, 2, 3, ...}:
/// Pr[X = i] = (1-p)^{i-1} p — the index of the first success in a sequence
/// of independent Bernoulli(p) trials.
///
/// This is the skip length used by SUBSIM (Algorithm 3, lines 7/13):
/// `ceil(log U / log(1-p))` for U uniform in (0,1), which is O(1) per draw
/// [Knuth Vol. 3]. Returns a value > `kGeometricCap` as-is; callers compare
/// against their remaining-element count, so overflow beyond the set size is
/// handled naturally.
///
/// Requires 0 < p <= 1. For p == 1 always returns 1.
std::uint64_t SampleGeometric(Rng& rng, double p);

/// Upper cap used internally to avoid converting +inf/NaN to integers when
/// p is tiny and U is close to 1. Anything at or above this value means
/// "beyond any realistic set size".
inline constexpr std::uint64_t kGeometricCap = std::uint64_t{1} << 62;

/// Log-space skip sampling with a precomputed 1/log(1-p): saves the log()
/// in the denominator on repeated draws with the same p. `inv_log_q` must be
/// 1.0 / log(1 - p) (a negative number). Used on the RR-generation hot path
/// where a node's in-neighbor probability p is fixed.
std::uint64_t SampleGeometricFast(Rng& rng, double inv_log_q);

/// Precomputes the `inv_log_q` argument for `SampleGeometricFast`.
/// Requires 0 < p < 1.
double GeometricInvLogQ(double p);

}  // namespace subsim

#endif  // SUBSIM_RANDOM_GEOMETRIC_H_
