#include "subsim/random/alias_table.h"

#include "subsim/util/check.h"

namespace subsim {

void AliasTable::Build(const std::vector<double>& weights) {
  const std::size_t n = weights.size();
  SUBSIM_CHECK(n > 0, "AliasTable requires at least one weight");

  total_weight_ = 0.0;
  for (double w : weights) {
    SUBSIM_CHECK(w >= 0.0, "AliasTable weights must be non-negative");
    total_weight_ += w;
  }
  SUBSIM_CHECK(total_weight_ > 0.0, "AliasTable needs a positive weight");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled probabilities: mean 1. Partition into under/over-full columns and
  // repeatedly pair one of each.
  std::vector<double> scaled(n);
  const double scale = static_cast<double>(n) / total_weight_;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * scale;
  }

  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers: all remaining columns are (within rounding) full.
  for (std::uint32_t i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (std::uint32_t i : small) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
}

std::uint32_t AliasTable::Sample(Rng& rng) const {
  SUBSIM_DCHECK(!prob_.empty(), "Sample from empty AliasTable");
  const std::uint64_t column = rng.UniformInt(prob_.size());
  const double u = rng.NextDouble();
  return u < prob_[column] ? static_cast<std::uint32_t>(column)
                           : alias_[column];
}

}  // namespace subsim
