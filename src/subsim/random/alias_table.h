#ifndef SUBSIM_RANDOM_ALIAS_TABLE_H_
#define SUBSIM_RANDOM_ALIAS_TABLE_H_

#include <cstdint>
#include <vector>

#include "subsim/random/rng.h"

namespace subsim {

/// Walker's alias method [Walker 1977]: O(n) construction, O(1) sampling
/// from an arbitrary discrete distribution.
///
/// Used by the general-IC bucket sampler (Section 3.3 of the paper) to hop
/// between probability buckets in O(1), and by the LT RR-set generator and
/// graph generators for weighted node picks.
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds the table from non-negative weights (not necessarily
  /// normalized). At least one weight must be positive.
  explicit AliasTable(const std::vector<double>& weights) { Build(weights); }

  void Build(const std::vector<double>& weights);

  /// Samples an index in [0, size()) with probability weight[i] / sum.
  std::uint32_t Sample(Rng& rng) const;

  std::size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

  /// Sum of the input weights (normalization constant).
  double total_weight() const { return total_weight_; }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
  double total_weight_ = 0.0;
};

}  // namespace subsim

#endif  // SUBSIM_RANDOM_ALIAS_TABLE_H_
