#ifndef SUBSIM_UTIL_MUTEX_H_
#define SUBSIM_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "subsim/util/thread_annotations.h"

namespace subsim {

/// Annotated wrappers around the standard mutexes.
///
/// libstdc++'s `std::mutex` carries no capability attributes, so Clang's
/// Thread Safety Analysis cannot see a `std::lock_guard` acquire anything —
/// every `SUBSIM_GUARDED_BY` member would falsely warn. These wrappers
/// re-export the standard primitives with the capability annotations
/// attached; they are zero-cost (one inline call per operation) and are the
/// only lock types the library's shared-state classes use.
///
/// Lock ordering in the library (declared here so new code has one place to
/// check): `RrSketchCache::mu_` is acquired before `SampleStore::mu_`
/// (budget enforcement walks cached stores); nothing acquires them in the
/// other order. `MetricsRegistry::mu_` and `PhaseTracer::mu_` are leaf
/// locks: no code path acquires another lock while holding them.

class SUBSIM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SUBSIM_ACQUIRE() { mu_.lock(); }
  void Unlock() SUBSIM_RELEASE() { mu_.unlock(); }
  bool TryLock() SUBSIM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Reader/writer lock with the same wrapping rationale as `Mutex`.
class SUBSIM_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() SUBSIM_ACQUIRE() { mu_.lock(); }
  void Unlock() SUBSIM_RELEASE() { mu_.unlock(); }
  void LockShared() SUBSIM_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() SUBSIM_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over `Mutex` (the annotated `std::lock_guard`).
class SUBSIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SUBSIM_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() SUBSIM_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive (writer) lock over `SharedMutex`.
class SUBSIM_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) SUBSIM_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() SUBSIM_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over `SharedMutex`.
class SUBSIM_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) SUBSIM_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() SUBSIM_RELEASE() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to `Mutex`.
///
/// `Wait` borrows the caller's held lock through an adopt/release
/// `std::unique_lock`, so the underlying wait is the plain futex-backed
/// `std::condition_variable` — no `condition_variable_any` overhead — and
/// the annotation contract stays exact: the caller holds `mu` before,
/// during (logically), and after the call.
///
/// Deliberately no predicate overload: evaluate the predicate in the
/// calling function (`while (!pred()) cv.Wait(mu);`) so the guarded reads
/// it makes are visible to the analysis in a context that provably holds
/// the lock — a lambda handed into `wait()` would be analyzed as a separate
/// function with no capability context and falsely warn.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) SUBSIM_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's scoped lock
  }

  /// Timed wait with the same borrowed-lock contract as `Wait`. Returns
  /// false on timeout. As with `Wait`, re-evaluate the predicate in the
  /// caller — spurious wakeups are possible either way.
  bool WaitFor(Mutex& mu, std::chrono::nanoseconds timeout)
      SUBSIM_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace subsim

#endif  // SUBSIM_UTIL_MUTEX_H_
