#ifndef SUBSIM_UTIL_THREADING_H_
#define SUBSIM_UTIL_THREADING_H_

namespace subsim {

/// Resolves a user-facing thread-count knob to a concrete worker count:
/// 0 means "one worker per hardware thread" (falling back to 1 when
/// `hardware_concurrency()` is unknown); any other value passes through.
/// Always returns >= 1.
unsigned ResolveNumThreads(unsigned requested);

}  // namespace subsim

#endif  // SUBSIM_UTIL_THREADING_H_
