#ifndef SUBSIM_UTIL_STATUS_H_
#define SUBSIM_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "subsim/util/check.h"

namespace subsim {

/// Error category for a failed operation.
///
/// The library does not use C++ exceptions; fallible operations return
/// `Status` (or `Result<T>` when they produce a value). Programmer errors
/// (contract violations) use `SUBSIM_CHECK` and abort instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for `code`, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// Value-semantic success/error indicator with a message.
///
/// `[[nodiscard]]` on the class makes ignoring any Status-returning call a
/// compile error under `-Werror` (`-Wunused-result`), in every TU, for
/// every current and future API — the compiler-enforced half of the
/// `status-discarded` lint rule. Intentional discards must say so with
/// `(void)` plus a `SUBSIM-NOLINT(status-discarded): <why>` marker.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// The service cannot take the request right now (shutting down, or shed
  /// under overload) — the caller may retry later.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// The request's time budget ran out before any useful work could start.
  /// (Budgets that expire *mid-run* degrade instead: the algorithms stop at
  /// a round boundary and return seeds with the achieved bound.)
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a `T` or an error `Status`. Accessing the value of an
/// error result is a checked fatal error. `[[nodiscard]]` for the same
/// reason as `Status`: a dropped `Result` is a silently ignored error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit so functions can `return value;`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit so functions can `return Status::...;`. Must not be OK.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    SUBSIM_CHECK(!std::get<Status>(data_).ok(),
                 "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  const T& value() const& {
    SUBSIM_CHECK(ok(), "Result::value() on error: %s",
                 std::get<Status>(data_).ToString().c_str());
    return std::get<T>(data_);
  }
  T& value() & {
    SUBSIM_CHECK(ok(), "Result::value() on error: %s",
                 std::get<Status>(data_).ToString().c_str());
    return std::get<T>(data_);
  }
  T&& value() && {
    SUBSIM_CHECK(ok(), "Result::value() on error: %s",
                 std::get<Status>(data_).ToString().c_str());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK status out of the enclosing function.
#define SUBSIM_RETURN_IF_ERROR(expr)             \
  do {                                           \
    ::subsim::Status subsim_status__ = (expr);   \
    if (!subsim_status__.ok()) {                 \
      return subsim_status__;                    \
    }                                            \
  } while (false)

}  // namespace subsim

#endif  // SUBSIM_UTIL_STATUS_H_
