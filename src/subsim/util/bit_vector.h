#ifndef SUBSIM_UTIL_BIT_VECTOR_H_
#define SUBSIM_UTIL_BIT_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "subsim/util/check.h"

namespace subsim {

/// Fixed-size bit set with an O(#set-bits) reset path.
///
/// RR-set generation marks nodes "activated" and must clear those marks
/// between samples. Clearing the whole bitmap would cost O(n) per RR set,
/// dwarfing the O(size-of-RR-set) work SUBSIM is designed to achieve, so
/// `ResetTouched` clears only the positions set since the last reset.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t size) { Resize(size); }

  void Resize(std::size_t size) {
    size_ = size;
    words_.assign((size + 63) / 64, 0);
    touched_.clear();
  }

  std::size_t size() const { return size_; }

  bool Get(std::size_t i) const {
    SUBSIM_DCHECK(i < size_, "BitVector index out of range");
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Sets bit `i` and records it for `ResetTouched`. Returns true if the bit
  /// was previously clear (i.e., this call changed it).
  bool Set(std::size_t i) {
    SUBSIM_DCHECK(i < size_, "BitVector index out of range");
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    std::uint64_t& w = words_[i >> 6];
    if (w & mask) {
      return false;
    }
    w |= mask;
    touched_.push_back(i);
    return true;
  }

  /// Clears every bit set since the previous reset, in O(#set-bits).
  void ResetTouched() {
    for (std::size_t i : touched_) {
      words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
    }
    touched_.clear();
  }

  /// Number of bits set since the last reset.
  std::size_t touched_count() const { return touched_.size(); }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
  std::vector<std::size_t> touched_;
};

}  // namespace subsim

#endif  // SUBSIM_UTIL_BIT_VECTOR_H_
