#include "subsim/util/threading.h"

#include <thread>

namespace subsim {

unsigned ResolveNumThreads(unsigned requested) {
  if (requested != 0) {
    return requested;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

}  // namespace subsim
