// Must precede every libc header: exposes lgamma_r, the reentrant lgamma.
// std::lgamma writes the process-global `signgam`, which is a data race as
// soon as two queries compute thetas concurrently.
#if !defined(_WIN32)
#define _DEFAULT_SOURCE 1
#endif

#include "subsim/util/math.h"

#include <cmath>
#include <math.h>

#include "subsim/util/check.h"

namespace subsim {

double LogFactorial(std::uint64_t n) {
#if defined(_WIN32)
  // MSVC's lgamma has no signgam global and is thread-safe as-is.
  return std::lgamma(static_cast<double>(n) + 1.0);
#else
  int sign = 0;
  return ::lgamma_r(static_cast<double>(n) + 1.0, &sign);
#endif
}

double LogNChooseK(std::uint64_t n, std::uint64_t k) {
  SUBSIM_CHECK(k <= n, "LogNChooseK requires k <= n (k=%llu n=%llu)",
               static_cast<unsigned long long>(k),
               static_cast<unsigned long long>(n));
  if (k == 0 || k == n) {
    return 0.0;
  }
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double PowOneMinusInvK(std::uint64_t k, std::uint64_t b) {
  SUBSIM_CHECK(k >= 1, "PowOneMinusInvK requires k >= 1");
  if (k == 1) {
    return b == 0 ? 1.0 : 0.0;
  }
  const double x = 1.0 - 1.0 / static_cast<double>(k);
  return std::pow(x, static_cast<double>(b));
}

double HistApproxTarget(std::uint64_t k, std::uint64_t b, double eps) {
  return 1.0 - PowOneMinusInvK(k, b) - eps;
}

std::uint64_t NextPowerOfTwo(std::uint64_t x) {
  if (x <= 1) {
    return 1;
  }
  std::uint64_t p = 1;
  while (p < x) {
    p <<= 1;
  }
  return p;
}

int FloorLog2(std::uint64_t x) {
  SUBSIM_CHECK(x >= 1, "FloorLog2 requires x >= 1");
  int r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

int CeilLog2(std::uint64_t x) {
  SUBSIM_CHECK(x >= 1, "CeilLog2 requires x >= 1");
  const int f = FloorLog2(x);
  return (std::uint64_t{1} << f) == x ? f : f + 1;
}

}  // namespace subsim
