#include "subsim/util/math.h"

#include <cmath>

#include "subsim/util/check.h"

namespace subsim {

double LogFactorial(std::uint64_t n) {
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double LogNChooseK(std::uint64_t n, std::uint64_t k) {
  SUBSIM_CHECK(k <= n, "LogNChooseK requires k <= n (k=%llu n=%llu)",
               static_cast<unsigned long long>(k),
               static_cast<unsigned long long>(n));
  if (k == 0 || k == n) {
    return 0.0;
  }
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double PowOneMinusInvK(std::uint64_t k, std::uint64_t b) {
  SUBSIM_CHECK(k >= 1, "PowOneMinusInvK requires k >= 1");
  if (k == 1) {
    return b == 0 ? 1.0 : 0.0;
  }
  const double x = 1.0 - 1.0 / static_cast<double>(k);
  return std::pow(x, static_cast<double>(b));
}

double HistApproxTarget(std::uint64_t k, std::uint64_t b, double eps) {
  return 1.0 - PowOneMinusInvK(k, b) - eps;
}

std::uint64_t NextPowerOfTwo(std::uint64_t x) {
  if (x <= 1) {
    return 1;
  }
  std::uint64_t p = 1;
  while (p < x) {
    p <<= 1;
  }
  return p;
}

int FloorLog2(std::uint64_t x) {
  SUBSIM_CHECK(x >= 1, "FloorLog2 requires x >= 1");
  int r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

int CeilLog2(std::uint64_t x) {
  SUBSIM_CHECK(x >= 1, "CeilLog2 requires x >= 1");
  const int f = FloorLog2(x);
  return (std::uint64_t{1} << f) == x ? f : f + 1;
}

}  // namespace subsim
