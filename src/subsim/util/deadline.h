#ifndef SUBSIM_UTIL_DEADLINE_H_
#define SUBSIM_UTIL_DEADLINE_H_

#include <chrono>
#include <cstdint>
#include <limits>

namespace subsim {

/// A wall-clock execution budget, passed by value through option structs.
///
/// A default-constructed `Deadline` is *unset*: `Expired()` is `false` and
/// `RemainingSeconds()` is +inf without ever reading the clock, so code
/// paths that never receive a deadline stay bit-for-bit identical to code
/// written before deadlines existed. This is also why the algorithm layer
/// may call `Expired()` despite the repo-wide wall-clock confinement rule
/// (`subsim_analyze.py` forbids direct `steady_clock::now` reads in
/// src/subsim/{algo,rrset,random}): the clock read lives here in util/,
/// happens only when a serving deadline was explicitly set, and its result
/// only ever *truncates* a doubling schedule at a round boundary — it can
/// reorder no RNG stream and change no committed sample.
class Deadline {
 public:
  /// Unset — never expires.
  Deadline() = default;

  /// A deadline `seconds` from now. Negative budgets expire immediately.
  static Deadline AfterSeconds(double seconds) {
    Deadline d;
    d.when_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(seconds));
    return d;
  }

  /// A deadline `ms` milliseconds from now.
  static Deadline AfterMillis(std::int64_t ms) {
    return AfterSeconds(static_cast<double>(ms) / 1000.0);
  }

  /// An already-expired deadline (no clock read). Useful in tests that
  /// need deterministic "budget exhausted" behaviour with no timing race.
  static Deadline AlreadyExpired() {
    Deadline d;
    d.when_ = std::chrono::steady_clock::time_point::min();
    return d;
  }

  bool is_set() const {
    return when_ != std::chrono::steady_clock::time_point::max();
  }

  /// True when the budget is exhausted. Never reads the clock when unset
  /// or when forced via `AlreadyExpired()`.
  bool Expired() const {
    if (!is_set()) {
      return false;
    }
    if (when_ == std::chrono::steady_clock::time_point::min()) {
      return true;
    }
    return std::chrono::steady_clock::now() >= when_;
  }

  /// Seconds until expiry: +inf when unset, <= 0 when expired.
  double RemainingSeconds() const {
    if (!is_set()) {
      return std::numeric_limits<double>::infinity();
    }
    if (when_ == std::chrono::steady_clock::time_point::min()) {
      return 0.0;
    }
    return std::chrono::duration<double>(when_ -
                                         std::chrono::steady_clock::now())
        .count();
  }

 private:
  std::chrono::steady_clock::time_point when_ =
      std::chrono::steady_clock::time_point::max();
};

}  // namespace subsim

#endif  // SUBSIM_UTIL_DEADLINE_H_
