#ifndef SUBSIM_UTIL_PREFETCH_H_
#define SUBSIM_UTIL_PREFETCH_H_

#include <cstddef>

namespace subsim {

/// Cache-line size assumed by the software-prefetch helpers. 64 bytes is
/// correct for every x86-64 and most AArch64 parts; a wrong guess only
/// changes how many prefetch instructions are issued, never correctness.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Read-prefetch of the cache line containing `addr`. Compiles to a single
/// prefetch instruction where the builtin exists and to nothing elsewhere,
/// so callers can sprinkle it on hot paths unconditionally.
inline void PrefetchRead(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
  (void)addr;
#endif
}

/// Read-prefetches the `bytes`-long range starting at `addr`, capped at
/// `max_lines` cache lines (streaming more rarely pays). Returns the number
/// of prefetch instructions issued so callers can feed the
/// `rr.prefetch_lines` counter without re-deriving the line math.
inline unsigned PrefetchReadRange(const void* addr, std::size_t bytes,
                                  unsigned max_lines) {
  if (bytes == 0 || max_lines == 0) {
    return 0;
  }
  const char* p = static_cast<const char*>(addr);
  unsigned lines = static_cast<unsigned>(
      (bytes + kCacheLineBytes - 1) / kCacheLineBytes);
  if (lines > max_lines) {
    lines = max_lines;
  }
  for (unsigned i = 0; i < lines; ++i) {
    PrefetchRead(p + static_cast<std::size_t>(i) * kCacheLineBytes);
  }
  return lines;
}

}  // namespace subsim

#endif  // SUBSIM_UTIL_PREFETCH_H_
