#ifndef SUBSIM_UTIL_LOGGING_H_
#define SUBSIM_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace subsim {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level emitted by SUBSIM_LOG. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log message; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Sink used when the message level is below the configured threshold.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

bool ShouldLog(LogLevel level);

}  // namespace internal_logging

/// Usage: SUBSIM_LOG(kInfo) << "generated " << count << " RR sets";
#define SUBSIM_LOG(severity)                                             \
  if (!::subsim::internal_logging::ShouldLog(                            \
          ::subsim::LogLevel::severity)) {                               \
  } else                                                                 \
    ::subsim::internal_logging::LogMessage(::subsim::LogLevel::severity, \
                                           __FILE__, __LINE__)           \
        .stream()

}  // namespace subsim

#endif  // SUBSIM_UTIL_LOGGING_H_
