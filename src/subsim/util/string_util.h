#ifndef SUBSIM_UTIL_STRING_UTIL_H_
#define SUBSIM_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace subsim {

/// Splits `text` on any character in `delims`, dropping empty pieces.
std::vector<std::string_view> SplitAndTrim(std::string_view text,
                                           std::string_view delims);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Renders n with metric suffixes, e.g. 1500000 -> "1.5M", 2100 -> "2.1K".
std::string HumanCount(std::uint64_t n);

/// Renders seconds with an adaptive unit, e.g. "12.3ms", "4.56s".
std::string HumanSeconds(double seconds);

/// Parses a non-negative integer. Returns false on malformed input or
/// overflow; on success stores the value in `*out`.
bool ParseUint64(std::string_view text, std::uint64_t* out);

/// Parses a double. Returns false on malformed input.
bool ParseDouble(std::string_view text, double* out);

}  // namespace subsim

#endif  // SUBSIM_UTIL_STRING_UTIL_H_
