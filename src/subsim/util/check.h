#ifndef SUBSIM_UTIL_CHECK_H_
#define SUBSIM_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace subsim::internal_check {

[[noreturn]] inline void CheckFailed() { std::abort(); }

}  // namespace subsim::internal_check

/// Fatal contract check. Evaluates `cond` in all build modes; on failure
/// prints the condition, location, and a printf-style message, then aborts.
/// Use for programmer errors only; recoverable errors return `Status`.
#define SUBSIM_CHECK(cond, ...)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "SUBSIM_CHECK failed: %s at %s:%d: ", #cond,    \
                   __FILE__, __LINE__);                                    \
      std::fprintf(stderr, __VA_ARGS__);                                   \
      std::fprintf(stderr, "\n");                                          \
      ::subsim::internal_check::CheckFailed();                             \
    }                                                                      \
  } while (false)

/// Like SUBSIM_CHECK but compiled out of release (NDEBUG) builds. Use on
/// hot paths where the check would be measurable.
#ifdef NDEBUG
#define SUBSIM_DCHECK(cond, ...) \
  do {                           \
  } while (false)
#else
#define SUBSIM_DCHECK(cond, ...) SUBSIM_CHECK(cond, __VA_ARGS__)
#endif

#endif  // SUBSIM_UTIL_CHECK_H_
