#include "subsim/util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace subsim {

std::vector<std::string_view> SplitAndTrim(std::string_view text,
                                           std::string_view delims) {
  std::vector<std::string_view> pieces;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find_first_of(delims, start);
    const std::size_t stop = (end == std::string_view::npos) ? text.size() : end;
    if (stop > start) {
      pieces.push_back(text.substr(start, stop - start));
    }
    if (end == std::string_view::npos) {
      break;
    }
    start = end + 1;
  }
  return pieces;
}

std::string_view StripWhitespace(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  std::size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string HumanCount(std::uint64_t n) {
  char buf[32];
  if (n >= 1000000000ull) {
    std::snprintf(buf, sizeof(buf), "%.1fB", static_cast<double>(n) / 1e9);
  } else if (n >= 1000000ull) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(n) / 1e6);
  } else if (n >= 1000ull) {
    std::snprintf(buf, sizeof(buf), "%.1fK", static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(n));
  }
  return buf;
}

std::string HumanSeconds(double seconds) {
  char buf[32];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  }
  return buf;
}

bool ParseUint64(std::string_view text, std::uint64_t* out) {
  text = StripWhitespace(text);
  if (text.empty() || text[0] == '-') {
    return false;
  }
  std::string owned(text);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(owned.c_str(), &end, 10);
  if (errno != 0 || end != owned.c_str() + owned.size()) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  text = StripWhitespace(text);
  if (text.empty()) {
    return false;
  }
  std::string owned(text);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(owned.c_str(), &end);
  if (errno != 0 || end != owned.c_str() + owned.size()) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace subsim
