#ifndef SUBSIM_UTIL_TIMER_H_
#define SUBSIM_UTIL_TIMER_H_

#include <chrono>

namespace subsim {

/// Monotonic wall-clock stopwatch.
///
/// Starts running on construction. `ElapsedSeconds` may be called repeatedly;
/// `Restart` resets the origin.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace subsim

#endif  // SUBSIM_UTIL_TIMER_H_
