#ifndef SUBSIM_UTIL_MATH_H_
#define SUBSIM_UTIL_MATH_H_

#include <cstdint>

namespace subsim {

/// Natural log of n! via lgamma. Exact enough for bound computations.
double LogFactorial(std::uint64_t n);

/// Natural log of the binomial coefficient C(n, k). Returns 0 for k == 0 or
/// k == n; requires k <= n.
double LogNChooseK(std::uint64_t n, std::uint64_t k);

/// (1 - 1/k)^b, the coverage factor used by HIST's relaxed approximation
/// target `1 - (1 - 1/k)^b - eps`. Requires k >= 1; b >= 0.
double PowOneMinusInvK(std::uint64_t k, std::uint64_t b);

/// The relaxed HIST approximation ratio `1 - (1 - 1/k)^b - eps`.
double HistApproxTarget(std::uint64_t k, std::uint64_t b, double eps);

/// `1 - 1/e`, the classic greedy approximation factor.
constexpr double kOneMinusInvE = 0.6321205588285577;

/// Rounds `x` up to the next power of two (x >= 1). Returns 1 for x == 0.
std::uint64_t NextPowerOfTwo(std::uint64_t x);

/// floor(log2(x)) for x >= 1.
int FloorLog2(std::uint64_t x);

/// Ceil of log2(x) for x >= 1.
int CeilLog2(std::uint64_t x);

}  // namespace subsim

#endif  // SUBSIM_UTIL_MATH_H_
