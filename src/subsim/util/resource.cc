#include "subsim/util/resource.h"

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>

namespace subsim {

std::uint64_t CurrentRssBytes() {
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) {
    return 0;
  }
  unsigned long long size_pages = 0;
  unsigned long long resident_pages = 0;
  const int fields = std::fscanf(statm, "%llu %llu", &size_pages,
                                 &resident_pages);
  std::fclose(statm);
  if (fields != 2) {
    return 0;
  }
  const long page_size = sysconf(_SC_PAGESIZE);
  return resident_pages * static_cast<std::uint64_t>(
                              page_size > 0 ? page_size : 4096);
}

std::uint64_t PeakRssBytes() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
  // ru_maxrss is in kilobytes on Linux.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
}

}  // namespace subsim
