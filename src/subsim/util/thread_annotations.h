#ifndef SUBSIM_UTIL_THREAD_ANNOTATIONS_H_
#define SUBSIM_UTIL_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations, compiled away everywhere else.
///
/// These macros attach compile-time locking contracts to classes, members,
/// and functions: which mutex guards which field, which capability a method
/// requires, and which calls acquire or release one. Under
/// `clang++ -Wthread-safety` (enabled by `-DSUBSIM_THREAD_SAFETY=ON`, see
/// the top-level CMakeLists) every violation — an unprotected read of a
/// `SUBSIM_GUARDED_BY` member, a `SUBSIM_REQUIRES` method called without
/// its lock, a double-acquire — is a hard compile error. Under GCC and
/// MSVC the macros expand to nothing, so the contracts cost nothing and
/// break nothing.
///
/// The std::mutex / std::shared_mutex in libstdc++ carry no capability
/// attributes, so the analysis cannot see through `std::lock_guard` on a
/// raw standard mutex. Lock state therefore flows through the annotated
/// wrappers in `subsim/util/mutex.h` (`Mutex`, `SharedMutex`, `MutexLock`,
/// ...), which every mutex-protected class in the library uses.
///
/// Naming follows the Clang documentation's modern capability vocabulary
/// (ACQUIRE/RELEASE rather than the legacy EXCLUSIVE_LOCK_FUNCTION forms).

#if defined(__clang__) && (!defined(SWIG))
#define SUBSIM_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define SUBSIM_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

/// Declares that a type is a capability ("mutex", "shared_mutex", ...).
#define SUBSIM_CAPABILITY(x) \
  SUBSIM_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability.
#define SUBSIM_SCOPED_CAPABILITY \
  SUBSIM_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Member is readable/writable only while holding `x`.
#define SUBSIM_GUARDED_BY(x) \
  SUBSIM_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define SUBSIM_PT_GUARDED_BY(x) \
  SUBSIM_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Caller must hold `...` exclusively for the duration of the call.
#define SUBSIM_REQUIRES(...) \
  SUBSIM_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Caller must hold `...` at least shared.
#define SUBSIM_REQUIRES_SHARED(...) \
  SUBSIM_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function acquires `...` exclusively and does not release it.
#define SUBSIM_ACQUIRE(...) \
  SUBSIM_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// Function acquires `...` shared.
#define SUBSIM_ACQUIRE_SHARED(...) \
  SUBSIM_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// Function releases `...` (exclusive or shared).
#define SUBSIM_RELEASE(...) \
  SUBSIM_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// Function releases a shared hold of `...`.
#define SUBSIM_RELEASE_SHARED(...) \
  SUBSIM_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// Function tries to acquire `...`; first argument is the success value.
#define SUBSIM_TRY_ACQUIRE(...) \
  SUBSIM_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold `...` (deadlock prevention for self-locking APIs).
#define SUBSIM_EXCLUDES(...) \
  SUBSIM_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations, checked under -Wthread-safety-beta.
#define SUBSIM_ACQUIRED_BEFORE(...) \
  SUBSIM_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define SUBSIM_ACQUIRED_AFTER(...) \
  SUBSIM_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// Function returns a reference to the mutex guarding its result.
#define SUBSIM_RETURN_CAPABILITY(x) \
  SUBSIM_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: the function's locking is deliberately invisible to the
/// analysis (e.g. guard handles whose acquisition site is another object's
/// constructor). Every use must carry a comment saying why.
#define SUBSIM_NO_THREAD_SAFETY_ANALYSIS \
  SUBSIM_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // SUBSIM_UTIL_THREAD_ANNOTATIONS_H_
