#ifndef SUBSIM_UTIL_RESOURCE_H_
#define SUBSIM_UTIL_RESOURCE_H_

#include <cstdint>

namespace subsim {

/// Current resident set size of this process in bytes (Linux
/// /proc/self/statm). Returns 0 when unavailable. The paper's evaluation
/// drops configurations exceeding 200 GB — RR-set storage is the dominant
/// term, and benches report it alongside wall time.
std::uint64_t CurrentRssBytes();

/// Peak resident set size in bytes (getrusage). Monotone over the process
/// lifetime. Returns 0 when unavailable.
std::uint64_t PeakRssBytes();

}  // namespace subsim

#endif  // SUBSIM_UTIL_RESOURCE_H_
