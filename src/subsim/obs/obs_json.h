#ifndef SUBSIM_OBS_OBS_JSON_H_
#define SUBSIM_OBS_OBS_JSON_H_

#include <string>

#include "subsim/obs/metrics.h"
#include "subsim/obs/phase_tracer.h"

namespace subsim {

/// Renders a metrics snapshot (and optionally the tracer's spans) as the
/// repo-wide observability JSON document:
///
/// ```json
/// {
///   "schema_version": 1,
///   "counters": {"name": 123, ...},
///   "gauges": {"name": 1.5, ...},
///   "histograms": {
///     "name": {"count": N, "sum": S, "mean": S/N,
///              "buckets": [...34 counts...]},
///     ...
///   },
///   "spans": [
///     {"name": "...", "depth": 0, "seconds": 0.12,
///      "counter_deltas": {"name": 7, ...}},
///     ...
///   ]
/// }
/// ```
///
/// Maps are emitted in sorted key order and spans in completion order, so
/// equal inputs render byte-identically. `spans` is omitted (not empty)
/// when `tracer` is null. See docs/observability.md for the metric-name
/// contract.
std::string ObsJson(const MetricsSnapshot& snapshot,
                    const PhaseTracer* tracer = nullptr);

/// Like ObsJson but without the enclosing braces, for splicing into a
/// larger JSON object (the serve REPL `stats` response does this).
std::string ObsJsonFields(const MetricsSnapshot& snapshot,
                          const PhaseTracer* tracer = nullptr);

}  // namespace subsim

#endif  // SUBSIM_OBS_OBS_JSON_H_
