#ifndef SUBSIM_OBS_PHASE_TRACER_H_
#define SUBSIM_OBS_PHASE_TRACER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "subsim/obs/metrics.h"
#include "subsim/util/mutex.h"
#include "subsim/util/thread_annotations.h"

namespace subsim {

/// One completed timed span. Spans nest: `depth` is the nesting level at
/// the time the span was opened (0 = top level), and spans are stored in
/// completion order, so a parent always appears after its children.
struct PhaseSpan {
  std::string name;
  double seconds = 0.0;
  int depth = 0;
  /// Counter increments attributed to this span: registry counter deltas
  /// between open and close. Empty when the tracer has no registry
  /// attached or nothing changed.
  std::map<std::string, std::uint64_t> counter_deltas;
};

/// Records nested timed spans (theta estimation, fill rounds, sentinel
/// selection, coverage...) with per-span metric deltas.
///
/// A tracer is cheap but not free: opening a span with an attached
/// registry takes a metrics snapshot. Use it to bracket *phases* (tens
/// per run), never per-RR-set work — per-set counts belong in the
/// registry, which the span then attributes via its delta.
///
/// Span retention is bounded (`max_spans`); once full, further spans are
/// timed but dropped, and `dropped_spans()` reports how many. All methods
/// are thread-safe, but nesting depth is tracked per thread, so spans
/// opened on different threads interleave at their own depths.
class PhaseTracer {
 public:
  explicit PhaseTracer(std::size_t max_spans = 4096,
                       MetricsRegistry* registry = nullptr)
      : max_spans_(max_spans), registry_(registry) {}

  PhaseTracer(const PhaseTracer&) = delete;
  PhaseTracer& operator=(const PhaseTracer&) = delete;

  MetricsRegistry* registry() const { return registry_; }

  std::vector<PhaseSpan> Spans() const SUBSIM_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return spans_;
  }

  std::uint64_t dropped_spans() const SUBSIM_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return dropped_;
  }

  void Clear() SUBSIM_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    spans_.clear();
    dropped_ = 0;
  }

 private:
  friend class PhaseScope;

  void Record(PhaseSpan span) SUBSIM_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    if (spans_.size() >= max_spans_) {
      ++dropped_;
      return;
    }
    spans_.push_back(std::move(span));
  }

  const std::size_t max_spans_;
  MetricsRegistry* const registry_;
  /// Leaf lock; span recording never acquires anything else while held.
  mutable Mutex mu_;
  std::vector<PhaseSpan> spans_ SUBSIM_GUARDED_BY(mu_);
  std::uint64_t dropped_ SUBSIM_GUARDED_BY(mu_) = 0;
};

/// RAII span. Tolerates a null tracer — it then degrades to a plain
/// stopwatch, so instrumented code paths need no `if (obs)` branching and
/// `ElapsedSeconds()` keeps working for results reporting (this is the
/// sanctioned replacement for ad-hoc WallTimer use in algo/rrset/serve).
class PhaseScope {
 public:
  PhaseScope(PhaseTracer* tracer, std::string name)
      : tracer_(tracer), name_(std::move(name)), start_(Clock::now()) {
    if (tracer_ != nullptr) {
      depth_ = ThreadDepth()++;
      if (tracer_->registry_ != nullptr) {
        open_snapshot_ = tracer_->registry_->Snapshot();
      }
    }
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  ~PhaseScope() { Close(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Ends the span early (idempotent); the destructor then does nothing.
  void Close() {
    if (closed_) {
      return;
    }
    closed_ = true;
    if (tracer_ == nullptr) {
      return;
    }
    --ThreadDepth();
    PhaseSpan span;
    span.name = std::move(name_);
    span.seconds = ElapsedSeconds();
    span.depth = depth_;
    if (tracer_->registry_ != nullptr) {
      span.counter_deltas =
          tracer_->registry_->Snapshot().CounterDeltaSince(open_snapshot_);
    }
    tracer_->Record(std::move(span));
  }

 private:
  using Clock = std::chrono::steady_clock;

  static int& ThreadDepth() {
    thread_local int depth = 0;
    return depth;
  }

  PhaseTracer* tracer_;
  std::string name_;
  Clock::time_point start_;
  MetricsSnapshot open_snapshot_;
  int depth_ = 0;
  bool closed_ = false;
};

}  // namespace subsim

#endif  // SUBSIM_OBS_PHASE_TRACER_H_
