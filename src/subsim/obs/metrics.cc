#include "subsim/obs/metrics.h"

#include <cmath>
#include <limits>

#include "subsim/util/check.h"

namespace subsim {

double HistogramSnapshot::BucketUpperEdge(std::size_t i) {
  SUBSIM_DCHECK(i < kNumBuckets, "bucket index %zu out of range", i);
  if (i == 0) {
    return 0.0;
  }
  // Bucket i covers [2^(i-1), 2^i); the overflow bucket has no finite edge.
  if (i == kNumBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return std::ldexp(1.0, static_cast<int>(i));
}

double HistogramSnapshot::ApproxQuantile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (static_cast<double>(seen) >= rank) {
      return BucketUpperEdge(i);
    }
  }
  return BucketUpperEdge(kNumBuckets - 1);
}

std::map<std::string, std::uint64_t> MetricsSnapshot::CounterDeltaSince(
    const MetricsSnapshot& earlier) const {
  std::map<std::string, std::uint64_t> delta;
  for (const auto& [name, value] : counters) {
    std::uint64_t before = 0;
    auto it = earlier.counters.find(name);
    if (it != earlier.counters.end()) {
      before = it->second;
    }
    if (value > before) {
      delta[name] = value - before;
    }
  }
  return delta;
}

MetricsRegistry::Metric& MetricsRegistry::FindOrCreate(std::string_view name,
                                                       Kind kind) {
  const MutexLock lock(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    SUBSIM_CHECK(it->second.kind == kind,
                 "metric '%.*s' re-registered with a different kind",
                 static_cast<int>(name.size()), name.data());
    return it->second;
  }
  Metric metric;
  metric.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      metric.counter = std::make_unique<CounterCells>();
      break;
    case Kind::kGauge:
      metric.gauge = std::make_unique<GaugeCell>();
      break;
    case Kind::kHistogram:
      metric.histogram = std::make_unique<HistogramCells>();
      break;
  }
  return metrics_.emplace(std::string(name), std::move(metric)).first->second;
}

MetricsRegistry::CounterHandle MetricsRegistry::Counter(std::string_view name) {
  return CounterHandle(FindOrCreate(name, Kind::kCounter).counter.get());
}

MetricsRegistry::GaugeHandle MetricsRegistry::Gauge(std::string_view name) {
  return GaugeHandle(FindOrCreate(name, Kind::kGauge).gauge.get());
}

MetricsRegistry::HistogramHandle MetricsRegistry::Histogram(
    std::string_view name) {
  return HistogramHandle(FindOrCreate(name, Kind::kHistogram).histogram.get());
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  const MutexLock lock(mu_);
  for (const auto& [name, metric] : metrics_) {
    switch (metric.kind) {
      case Kind::kCounter:
        snap.counters[name] = metric.counter->Sum();
        break;
      case Kind::kGauge:
        snap.gauges[name] = std::bit_cast<double>(
            metric.gauge->bits.load(std::memory_order_acquire));
        break;
      case Kind::kHistogram: {
        HistogramSnapshot h;
        for (const HistogramCells::ShardRow& row : metric.histogram->shards) {
          for (std::size_t i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
            h.buckets[i] += row.buckets[i].load(std::memory_order_acquire);
          }
          h.count += row.count.load(std::memory_order_acquire);
          h.sum += row.sum.load(std::memory_order_acquire);
        }
        snap.histograms[name] = h;
        break;
      }
    }
  }
  return snap;
}

std::size_t MetricsRegistry::ThisThreadShard() {
  static std::atomic<std::size_t> next_shard{0};
  thread_local const std::size_t shard =
      next_shard.fetch_add(1, std::memory_order_relaxed) % kNumShards;
  return shard;
}

}  // namespace subsim
