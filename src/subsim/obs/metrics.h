#ifndef SUBSIM_OBS_METRICS_H_
#define SUBSIM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "subsim/util/mutex.h"
#include "subsim/util/thread_annotations.h"

namespace subsim {

/// Snapshot of one histogram: fixed log2 buckets over non-negative integer
/// observations. Bucket 0 holds the value 0, bucket i (1 <= i <= 32) holds
/// values in [2^(i-1), 2^i), and the last bucket holds everything >= 2^32.
struct HistogramSnapshot {
  static constexpr std::size_t kNumBuckets = 34;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kNumBuckets> buckets{};

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Upper edge (exclusive) of bucket `i`; used for quantile interpolation.
  static double BucketUpperEdge(std::size_t i);

  /// Bucket-resolution quantile estimate (q in [0, 1]): the upper edge of
  /// the bucket containing the q-th observation. Coarse by design — the
  /// buckets are the stored resolution.
  double ApproxQuantile(double q) const;
};

/// Point-in-time copy of every metric in a registry. Keys are metric names;
/// maps keep them sorted so rendered output is deterministic.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counter-wise difference `this - earlier` (missing keys in `earlier`
  /// count as zero; zero deltas are omitted). Gauges and histograms are not
  /// diffed — spans only attribute monotonic counts.
  std::map<std::string, std::uint64_t> CounterDeltaSince(
      const MetricsSnapshot& earlier) const;
};

/// Lock-cheap metrics registry: counters, gauges, and log2-bucket
/// histograms.
///
/// Hot-path writes go through handles (`CounterHandle` etc.) acquired once
/// outside the loop; each write is a single relaxed atomic add into one of
/// a small number of cache-line-padded shards, selected per thread so
/// concurrent writers do not share lines. `Snapshot` merges the shards
/// with acquire loads — readers never block writers and vice versa.
///
/// Metric registration (`Counter`/`Gauge`/`Histogram`) takes a mutex and
/// may be called from any thread at any time; cells are allocated with
/// stable addresses, so handles stay valid for the registry's lifetime.
/// Handles are trivially copyable; a default-constructed (or null-registry)
/// handle is a no-op sink, which lets instrumented code run unconditionally
/// with zero branches beyond one null test.
class MetricsRegistry {
 public:
  static constexpr std::size_t kNumShards = 16;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  class CounterHandle;
  class GaugeHandle;
  class HistogramHandle;

  /// Find-or-create by name. Mixing kinds under one name is a programmer
  /// error and aborts.
  CounterHandle Counter(std::string_view name) SUBSIM_EXCLUDES(mu_);
  GaugeHandle Gauge(std::string_view name) SUBSIM_EXCLUDES(mu_);
  HistogramHandle Histogram(std::string_view name) SUBSIM_EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const SUBSIM_EXCLUDES(mu_);

 private:
  friend class CounterHandle;
  friend class GaugeHandle;
  friend class HistogramHandle;

  /// One cache line per shard so concurrent writers on different shards
  /// never false-share.
  struct alignas(64) PaddedCell {
    std::atomic<std::uint64_t> value{0};
  };

  struct CounterCells {
    std::array<PaddedCell, kNumShards> shards;

    std::uint64_t Sum() const {
      std::uint64_t total = 0;
      for (const PaddedCell& cell : shards) {
        total += cell.value.load(std::memory_order_acquire);
      }
      return total;
    }
  };

  /// Gauges are last-write-wins and written rarely; one atomic double
  /// (bit-cast through uint64) suffices.
  struct GaugeCell {
    std::atomic<std::uint64_t> bits{0};
  };

  struct HistogramCells {
    /// Per shard: bucket counts plus trailing count and sum cells, all on
    /// the shard's own cache lines (the row is 64-byte aligned and padded
    /// to a line multiple).
    struct alignas(64) ShardRow {
      std::array<std::atomic<std::uint64_t>, HistogramSnapshot::kNumBuckets>
          buckets{};
      std::atomic<std::uint64_t> count{0};
      std::atomic<std::uint64_t> sum{0};
    };
    std::array<ShardRow, kNumShards> shards;
  };

  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Metric {
    Kind kind;
    std::unique_ptr<CounterCells> counter;
    std::unique_ptr<GaugeCell> gauge;
    std::unique_ptr<HistogramCells> histogram;
  };

  Metric& FindOrCreate(std::string_view name, Kind kind) SUBSIM_EXCLUDES(mu_);

  /// Shard index for the calling thread: assigned round-robin on first use
  /// so long-lived worker threads spread across shards.
  static std::size_t ThisThreadShard();

  /// Leaf lock: nothing else is acquired while holding it. It guards only
  /// the name→cell map; the cells themselves are written lock-free through
  /// handles (relaxed atomics) and read with acquire loads by `Snapshot`.
  mutable Mutex mu_;
  std::map<std::string, Metric, std::less<>> metrics_ SUBSIM_GUARDED_BY(mu_);
};

/// Adds to a counter. Copyable, no-op when default-constructed.
class MetricsRegistry::CounterHandle {
 public:
  CounterHandle() = default;

  void Add(std::uint64_t n) {
    if (cells_ != nullptr) {
      cells_->shards[ThisThreadShard()].value.fetch_add(
          n, std::memory_order_relaxed);
    }
  }
  void Increment() { Add(1); }

 private:
  friend class MetricsRegistry;
  explicit CounterHandle(CounterCells* cells) : cells_(cells) {}
  CounterCells* cells_ = nullptr;
};

/// Sets a gauge (last write wins). Copyable, no-op when default-constructed.
class MetricsRegistry::GaugeHandle {
 public:
  GaugeHandle() = default;

  void Set(double value) {
    if (cell_ != nullptr) {
      cell_->bits.store(std::bit_cast<std::uint64_t>(value),
                        std::memory_order_relaxed);
    }
  }

 private:
  friend class MetricsRegistry;
  explicit GaugeHandle(GaugeCell* cell) : cell_(cell) {}
  GaugeCell* cell_ = nullptr;
};

/// Records observations into log2 buckets. Copyable, no-op when
/// default-constructed.
class MetricsRegistry::HistogramHandle {
 public:
  HistogramHandle() = default;

  void Observe(std::uint64_t value) {
    if (cells_ == nullptr) {
      return;
    }
    HistogramCells::ShardRow& row = cells_->shards[ThisThreadShard()];
    row.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    row.count.fetch_add(1, std::memory_order_relaxed);
    row.sum.fetch_add(value, std::memory_order_relaxed);
  }

  /// Bucket index for `value` under the log2 scheme documented on
  /// `HistogramSnapshot`.
  static std::size_t BucketIndex(std::uint64_t value) {
    if (value == 0) {
      return 0;
    }
    const std::size_t width = std::bit_width(value);  // value in [2^(w-1), 2^w)
    return width <= 32 ? width : HistogramSnapshot::kNumBuckets - 1;
  }

 private:
  friend class MetricsRegistry;
  explicit HistogramHandle(HistogramCells* cells) : cells_(cells) {}
  HistogramCells* cells_ = nullptr;
};

}  // namespace subsim

#endif  // SUBSIM_OBS_METRICS_H_
