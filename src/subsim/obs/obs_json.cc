#include "subsim/obs/obs_json.h"

#include <cstdio>

namespace subsim {

namespace {

/// Metric and span names are chosen by this codebase (dotted identifiers),
/// so only quote/backslash escaping is required to keep the output valid.
std::string JsonName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 2);
  out += '"';
  for (const char c : name) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  out += '"';
  return out;
}

std::string JsonDouble(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

void AppendCounterMap(const std::map<std::string, std::uint64_t>& counters,
                      std::string* out) {
  *out += '{';
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) {
      *out += ',';
    }
    first = false;
    *out += JsonName(name) + ':' + std::to_string(value);
  }
  *out += '}';
}

}  // namespace

std::string ObsJsonFields(const MetricsSnapshot& snapshot,
                          const PhaseTracer* tracer) {
  std::string out = "\"schema_version\":1";

  out += ",\"counters\":";
  AppendCounterMap(snapshot.counters, &out);

  out += ",\"gauges\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += JsonName(name) + ':' + JsonDouble(value);
  }
  out += '}';

  out += ",\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += JsonName(name);
    out += ":{\"count\":" + std::to_string(hist.count);
    out += ",\"sum\":" + std::to_string(hist.sum);
    out += ",\"mean\":" + JsonDouble(hist.Mean());
    out += ",\"buckets\":[";
    for (std::size_t i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
      if (i > 0) {
        out += ',';
      }
      out += std::to_string(hist.buckets[i]);
    }
    out += "]}";
  }
  out += '}';

  if (tracer != nullptr) {
    out += ",\"spans\":[";
    first = true;
    for (const PhaseSpan& span : tracer->Spans()) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += "{\"name\":" + JsonName(span.name);
      out += ",\"depth\":" + std::to_string(span.depth);
      out += ",\"seconds\":" + JsonDouble(span.seconds);
      out += ",\"counter_deltas\":";
      AppendCounterMap(span.counter_deltas, &out);
      out += '}';
    }
    out += ']';
    if (const std::uint64_t dropped = tracer->dropped_spans(); dropped > 0) {
      out += ",\"dropped_spans\":" + std::to_string(dropped);
    }
  }
  return out;
}

std::string ObsJson(const MetricsSnapshot& snapshot,
                    const PhaseTracer* tracer) {
  return '{' + ObsJsonFields(snapshot, tracer) + "}\n";
}

}  // namespace subsim
