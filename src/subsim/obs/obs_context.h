#ifndef SUBSIM_OBS_OBS_CONTEXT_H_
#define SUBSIM_OBS_OBS_CONTEXT_H_

#include "subsim/obs/metrics.h"
#include "subsim/obs/phase_tracer.h"

namespace subsim {

/// Observability hooks threaded through options structs. Both pointers are
/// optional and non-owning; a default-constructed context disables all
/// instrumentation at the cost of one pointer test per handle acquisition.
struct ObsContext {
  MetricsRegistry* metrics = nullptr;
  PhaseTracer* tracer = nullptr;

  bool enabled() const { return metrics != nullptr || tracer != nullptr; }
};

}  // namespace subsim

#endif  // SUBSIM_OBS_OBS_CONTEXT_H_
