#ifndef SUBSIM_SAMPLING_SAMPLER_FACTORY_H_
#define SUBSIM_SAMPLING_SAMPLER_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "subsim/sampling/subset_sampler.h"
#include "subsim/util/status.h"

namespace subsim {

/// Subset-sampling strategies selectable by name.
enum class SamplerKind {
  kNaive,
  kGeometric,  // requires all probabilities equal
  kBucket,
  kSorted,  // requires non-increasing probabilities
  /// Picks the cheapest valid strategy for the given probabilities:
  /// geometric if uniform, sorted if already non-increasing, else bucket.
  kAuto,
};

/// Builds a sampler of the requested kind over `probs`. Fails with
/// FailedPrecondition if the kind's structural requirement does not hold
/// (e.g. kGeometric with non-uniform probabilities).
Result<std::unique_ptr<SubsetSampler>> MakeSubsetSampler(
    SamplerKind kind, std::vector<double> probs);

/// Parses "naive" | "geometric" | "bucket" | "sorted" | "auto".
Result<SamplerKind> ParseSamplerKind(const std::string& name);

const char* SamplerKindName(SamplerKind kind);

}  // namespace subsim

#endif  // SUBSIM_SAMPLING_SAMPLER_FACTORY_H_
