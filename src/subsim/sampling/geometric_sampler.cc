#include "subsim/sampling/geometric_sampler.h"

#include "subsim/random/geometric.h"
#include "subsim/sampling/inline_sampling.h"
#include "subsim/util/check.h"

namespace subsim {

GeometricSubsetSampler::GeometricSubsetSampler(std::size_t h, double p)
    : h_(h), p_(p) {
  SUBSIM_CHECK(p >= 0.0 && p <= 1.0, "probability out of [0,1]: %f", p);
  if (p_ > 0.0 && p_ < 1.0) {
    inv_log_q_ = GeometricInvLogQ(p_);
  }
}

void GeometricSubsetSampler::Sample(Rng& rng,
                                    std::vector<std::uint32_t>* out) const {
  if (p_ <= 0.0 || h_ == 0) {
    return;
  }
  if (p_ >= 1.0) {
    SampleAllElements(h_, [out](std::uint32_t i) { out->push_back(i); });
    return;
  }
  SampleUniformSubsetSkips(h_, inv_log_q_, rng,
                           [out](std::uint32_t i) { out->push_back(i); });
}

}  // namespace subsim
