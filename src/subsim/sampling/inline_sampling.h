#ifndef SUBSIM_SAMPLING_INLINE_SAMPLING_H_
#define SUBSIM_SAMPLING_INLINE_SAMPLING_H_

#include <cstdint>
#include <span>

#include "subsim/random/geometric.h"
#include "subsim/random/rng.h"

namespace subsim {

/// Allocation-free subset-sampling kernels used directly on the RR-set
/// generation hot path. The class-based `SubsetSampler` hierarchy wraps
/// these same routines for standalone use and testing.
///
/// Each kernel invokes `emit(i)` for every sampled index i (in increasing
/// order). `Emit` may return void.

/// Equal-probability subset sampling via geometric skips (Algorithm 3
/// lines 7-13). `inv_log_q` must be `GeometricInvLogQ(p)` for the shared
/// probability p in (0, 1). Expected cost O(1 + h*p).
///
/// `geometric_draws`, when non-null, accumulates the number of geometric
/// samples taken. One invariant the metrics tests lean on: every call
/// draws exactly `emits + 1` times (each emitted index consumed one draw,
/// plus the final draw that overshot the list).
template <typename Emit>
void SampleUniformSubsetSkips(std::uint64_t h, double inv_log_q, Rng& rng,
                              Emit&& emit,
                              std::uint64_t* geometric_draws = nullptr) {
  std::uint64_t draws = 1;
  std::uint64_t pos = SampleGeometricFast(rng, inv_log_q);
  while (pos <= h) {
    emit(static_cast<std::uint32_t>(pos - 1));
    const std::uint64_t skip = SampleGeometricFast(rng, inv_log_q);
    ++draws;
    if (skip > h - pos) {
      break;  // jumped past the end; avoids overflow of pos + skip
    }
    pos += skip;
  }
  if (geometric_draws != nullptr) {
    *geometric_draws += draws;
  }
}

/// Degenerate p == 1 case: every element is sampled.
template <typename Emit>
void SampleAllElements(std::uint64_t h, Emit&& emit) {
  for (std::uint64_t i = 0; i < h; ++i) {
    emit(static_cast<std::uint32_t>(i));
  }
}

/// Naive per-element Bernoulli sampling — the vanilla baseline
/// (Algorithm 2's inner loop). Cost O(h).
template <typename Emit>
void SampleSubsetNaive(std::span<const double> probs, Rng& rng, Emit&& emit) {
  for (std::size_t i = 0; i < probs.size(); ++i) {
    if (rng.Bernoulli(probs[i])) {
      emit(static_cast<std::uint32_t>(i));
    }
  }
}

/// Index-free subset sampling for probabilities sorted in descending order
/// (paper Section 3.3): position-bucket [2^k, 2^{k+1}) uses the bucket's
/// first (maximal) probability for geometric skipping, then accepts element
/// at position pos with probability probs[pos] / bucket_max. Expected cost
/// O(1 + mu + log h).
///
/// Requires probs to be non-increasing; the graph builder's
/// `sort_in_edges_by_weight` option establishes this.
///
/// `geometric_draws` and `rejection_accepts`, when non-null, accumulate the
/// kernel's geometric samples and accepted rejection trials.
template <typename Emit>
void SampleSortedSubset(std::span<const double> probs, Rng& rng, Emit&& emit,
                        std::uint64_t* geometric_draws = nullptr,
                        std::uint64_t* rejection_accepts = nullptr) {
  const std::uint64_t h = probs.size();
  std::uint64_t bucket_begin = 0;  // inclusive, position indices from 0
  std::uint64_t bucket_size = 1;
  while (bucket_begin < h) {
    const std::uint64_t end =
        bucket_begin + bucket_size < h ? bucket_begin + bucket_size : h;
    const double p_max = probs[bucket_begin];
    if (p_max <= 0.0) {
      break;  // sorted: everything after is zero too
    }
    if (p_max >= 1.0) {
      // Geometric skipping breaks down at p == 1; test each element
      // directly (all have probability <= 1 but the first is 1).
      for (std::uint64_t pos = bucket_begin; pos < end; ++pos) {
        if (rng.Bernoulli(probs[pos])) {
          emit(static_cast<std::uint32_t>(pos));
        }
      }
    } else {
      const double inv_log_q = GeometricInvLogQ(p_max);
      std::uint64_t pos = bucket_begin;
      while (true) {
        const std::uint64_t skip = SampleGeometricFast(rng, inv_log_q);
        if (geometric_draws != nullptr) {
          ++*geometric_draws;
        }
        if (skip > end - pos) {
          break;
        }
        pos += skip;
        const std::uint64_t index = pos - 1;
        // Rejection: accept with probs[index] / p_max so the element's
        // overall inclusion probability is exactly probs[index].
        if (rng.NextDouble() * p_max < probs[index]) {
          if (rejection_accepts != nullptr) {
            ++*rejection_accepts;
          }
          emit(static_cast<std::uint32_t>(index));
        }
      }
    }
    bucket_begin = end;
    bucket_size <<= 1;
  }
}

}  // namespace subsim

#endif  // SUBSIM_SAMPLING_INLINE_SAMPLING_H_
