#ifndef SUBSIM_SAMPLING_BUCKET_SAMPLER_H_
#define SUBSIM_SAMPLING_BUCKET_SAMPLER_H_

#include <vector>

#include "subsim/random/alias_table.h"
#include "subsim/sampling/subset_sampler.h"

namespace subsim {

/// General-probability subset sampling in O(1 + mu) expected time with O(h)
/// preprocessing — Lemma 5 of the paper (after Bringmann–Panagiotou), with
/// the alias-table bucket-hopping refinement of Section 3.3.
///
/// Construction groups elements into power-of-two probability buckets
/// (bucket k holds p in (2^-(k-1), 2^-k]); within a bucket, geometric skips
/// at the bucket cap 2^-k plus rejection p_i / 2^-k realize exact
/// per-element probabilities. Whether bucket k receives at least one
/// geometric hit is an independent event with probability
/// p'_k = 1 - (1 - 2^-k)^{|B_k|}, so the set of "entered" buckets is itself
/// an independent subset-sampling instance over <= ~64 buckets; it is drawn
/// in O(1 + #entered) via per-bucket alias tables over "which bucket is
/// entered next" (the paper's T[i][j] table). Within an entered bucket, the
/// first hit is drawn from the geometric distribution conditioned on
/// landing inside the bucket.
class BucketSubsetSampler final : public SubsetSampler {
 public:
  explicit BucketSubsetSampler(std::vector<double> probs);

  void Sample(Rng& rng, std::vector<std::uint32_t>* out) const override;

  /// Like `Sample`, additionally accumulating the number of geometric
  /// draws and accepted rejection trials into the non-null counters. The
  /// RNG stream is identical to `Sample`'s (the singleton and cap==1
  /// shortcuts take no geometric draws, so they count nothing).
  void SampleCounted(Rng& rng, std::vector<std::uint32_t>* out,
                     std::uint64_t* geometric_draws,
                     std::uint64_t* rejection_accepts) const;

  std::size_t size() const override { return num_elements_; }
  double expected_count() const override { return mu_; }
  const char* name() const override { return "bucket"; }

  /// Number of non-empty probability buckets (exposed for tests).
  std::size_t num_buckets() const { return buckets_.size(); }

 private:
  struct Bucket {
    /// Original element indices, ascending.
    std::vector<std::uint32_t> elements;
    /// Element probabilities aligned with `elements`.
    std::vector<double> probs;
    /// Bucket probability cap 2^-k (>= every element probability).
    double cap = 1.0;
    /// 1 / log(1 - cap); only valid when cap < 1.
    double inv_log_q = 0.0;
    /// q^size = (1 - cap)^{|B|}, the miss probability of the whole bucket.
    double miss_all = 0.0;
    /// Entry probability p' = 1 - miss_all.
    double entry_prob = 1.0;
  };

  void SampleWithinBucket(const Bucket& bucket, Rng& rng,
                          std::vector<std::uint32_t>* out,
                          std::uint64_t* geometric_draws,
                          std::uint64_t* rejection_accepts) const;

  std::size_t num_elements_ = 0;
  double mu_ = 0.0;
  std::vector<Bucket> buckets_;
  /// next_hop_[i] samples which bucket (> i-1) is entered next when the
  /// current bucket is i-1 (next_hop_[0] is the initial table). Outcome
  /// value b < buckets_.size() means "bucket b"; value == buckets_.size()
  /// means "no further bucket".
  std::vector<AliasTable> next_hop_;
  /// Map from alias outcome to bucket id, per hop table.
  std::vector<std::vector<std::uint32_t>> hop_outcomes_;
};

}  // namespace subsim

#endif  // SUBSIM_SAMPLING_BUCKET_SAMPLER_H_
