#include "subsim/sampling/sorted_sampler.h"

#include "subsim/sampling/inline_sampling.h"
#include "subsim/util/check.h"

namespace subsim {

SortedSubsetSampler::SortedSubsetSampler(std::vector<double> probs)
    : probs_(std::move(probs)) {
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    SUBSIM_CHECK(probs_[i] >= 0.0 && probs_[i] <= 1.0,
                 "probability out of [0,1]: %f", probs_[i]);
    SUBSIM_CHECK(i == 0 || probs_[i] <= probs_[i - 1],
                 "SortedSubsetSampler requires non-increasing probabilities");
    mu_ += probs_[i];
  }
}

void SortedSubsetSampler::Sample(Rng& rng,
                                 std::vector<std::uint32_t>* out) const {
  SampleSortedSubset(probs_, rng,
                     [out](std::uint32_t i) { out->push_back(i); });
}

}  // namespace subsim
