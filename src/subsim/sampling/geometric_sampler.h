#ifndef SUBSIM_SAMPLING_GEOMETRIC_SAMPLER_H_
#define SUBSIM_SAMPLING_GEOMETRIC_SAMPLER_H_

#include "subsim/sampling/subset_sampler.h"

namespace subsim {

/// Equal-probability subset sampling with geometric skips — the SUBSIM
/// kernel for WC and Uniform IC (Algorithm 3). Expected O(1 + h*p) per
/// sample, independent of h when p ~ 1/h.
class GeometricSubsetSampler final : public SubsetSampler {
 public:
  /// All h elements share inclusion probability p in [0, 1].
  GeometricSubsetSampler(std::size_t h, double p);

  void Sample(Rng& rng, std::vector<std::uint32_t>* out) const override;
  std::size_t size() const override { return h_; }
  double expected_count() const override { return h_ * p_; }
  const char* name() const override { return "geometric"; }

 private:
  std::size_t h_;
  double p_;
  double inv_log_q_ = 0.0;  // valid iff 0 < p < 1
};

}  // namespace subsim

#endif  // SUBSIM_SAMPLING_GEOMETRIC_SAMPLER_H_
