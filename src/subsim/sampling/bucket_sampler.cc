#include "subsim/sampling/bucket_sampler.h"

#include <cmath>
#include <map>

#include "subsim/random/geometric.h"
#include "subsim/util/check.h"

namespace subsim {

namespace {

/// Maximum bucket exponent: probabilities below 2^-kMaxBucketExp are lumped
/// into the final bucket (its cap still dominates them, so the rejection
/// step stays correct; only the acceptance ratio degrades, and mu there is
/// negligible by construction).
constexpr int kMaxBucketExp = 64;

/// Bucket exponent k for probability p in (0, 1]: the k with
/// p in (2^-(k+1), 2^-k], i.e. floor(-log2(p)), clamped to
/// [0, kMaxBucketExp].
int BucketExponent(double p) {
  SUBSIM_DCHECK(p > 0.0 && p <= 1.0, "bucket exponent needs p in (0,1]");
  if (p >= 1.0) {
    return 0;
  }
  int exp = 0;
  // frexp: p = f * 2^e with f in [0.5, 1). Then p in [2^{e-1}, 2^e).
  const double f = std::frexp(p, &exp);
  // p in (2^-(k+1), 2^-k]  <=>  -log2(p) in [k, k+1). For f == 0.5 exactly,
  // p == 2^{e-1} is the *closed* upper end of bucket k = 1-e.
  int k = (f == 0.5) ? (1 - exp) : -exp;
  if (k < 0) {
    k = 0;
  }
  if (k > kMaxBucketExp) {
    k = kMaxBucketExp;
  }
  return k;
}

}  // namespace

BucketSubsetSampler::BucketSubsetSampler(std::vector<double> probs) {
  num_elements_ = probs.size();

  // Group elements by bucket exponent; std::map keeps exponents sorted so
  // bucket order matches decreasing probability caps.
  std::map<int, Bucket> by_exp;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    const double p = probs[i];
    SUBSIM_CHECK(p >= 0.0 && p <= 1.0, "probability out of [0,1]: %f", p);
    if (p <= 0.0) {
      continue;
    }
    mu_ += p;
    const int k = BucketExponent(p);
    Bucket& bucket = by_exp[k];
    bucket.elements.push_back(static_cast<std::uint32_t>(i));
    bucket.probs.push_back(p);
    bucket.cap = std::ldexp(1.0, -k);  // 2^-k
  }

  buckets_.reserve(by_exp.size());
  for (auto& [k, bucket] : by_exp) {
    if (bucket.elements.size() == 1) {
      // Singleton shortcut: let the hop table carry the element's exact
      // probability, so entering the bucket *is* sampling the element —
      // no geometric draw, no rejection.
      bucket.entry_prob = bucket.probs[0];
      bucket.miss_all = 1.0 - bucket.entry_prob;
    } else if (bucket.cap < 1.0) {
      bucket.inv_log_q = GeometricInvLogQ(bucket.cap);
      bucket.miss_all = std::pow(1.0 - bucket.cap,
                                 static_cast<double>(bucket.elements.size()));
      bucket.entry_prob = 1.0 - bucket.miss_all;
    } else {
      bucket.miss_all = 0.0;  // cap == 1: always entered
      bucket.entry_prob = 1.0;
    }
    buckets_.push_back(std::move(bucket));
  }

  // Hop tables: hop i is used when the current bucket is i-1 (i == 0 for
  // the start). Outcome weights: entering bucket j next has probability
  // p'_j * prod_{i <= t < j} (1 - p'_t); stopping has the full-miss tail.
  const std::size_t num_buckets = buckets_.size();
  next_hop_.resize(num_buckets + 1);
  hop_outcomes_.resize(num_buckets + 1);
  for (std::size_t i = 0; i <= num_buckets; ++i) {
    std::vector<double> weights;
    std::vector<std::uint32_t> outcomes;
    double survive = 1.0;  // prod of (1 - p'_t) for buckets skipped so far
    for (std::size_t j = i; j < num_buckets; ++j) {
      weights.push_back(survive * buckets_[j].entry_prob);
      outcomes.push_back(static_cast<std::uint32_t>(j));
      survive *= 1.0 - buckets_[j].entry_prob;
    }
    weights.push_back(survive);  // terminate
    outcomes.push_back(static_cast<std::uint32_t>(num_buckets));
    next_hop_[i].Build(weights);
    hop_outcomes_[i] = std::move(outcomes);
  }
}

void BucketSubsetSampler::SampleWithinBucket(
    const Bucket& bucket, Rng& rng, std::vector<std::uint32_t>* out,
    std::uint64_t* geometric_draws, std::uint64_t* rejection_accepts) const {
  const std::uint64_t h = bucket.elements.size();
  if (h == 1) {
    // Singleton shortcut: entry probability already equals the element's
    // probability, so entry implies inclusion.
    out->push_back(bucket.elements[0]);
    return;
  }
  if (bucket.cap >= 1.0) {
    // Every element has p in (0.5, 1]; direct Bernoulli costs <= 2*mu here.
    for (std::uint64_t i = 0; i < h; ++i) {
      if (rng.Bernoulli(bucket.probs[i])) {
        out->push_back(bucket.elements[i]);
      }
    }
    return;
  }

  // This bucket was chosen by the hop table, i.e. conditioned on receiving
  // at least one geometric hit. Draw the first hit from the geometric
  // distribution truncated to [1, h]:
  //   Pr[X = x | X <= h] = (1-c)^{x-1} c / (1 - (1-c)^h).
  // Inverse CDF: X = ceil( log(1 - U * (1 - q^h)) / log q ).
  const double u = rng.NextDouble();
  const double truncated = 1.0 - u * (1.0 - bucket.miss_all);
  double x = std::ceil(std::log(truncated) * bucket.inv_log_q);
  if (x < 1.0) {
    x = 1.0;
  }
  if (x > static_cast<double>(h)) {
    x = static_cast<double>(h);  // numerical edge of the truncation
  }
  std::uint64_t pos = static_cast<std::uint64_t>(x);
  if (geometric_draws != nullptr) {
    ++*geometric_draws;  // the truncated first-hit draw above
  }

  while (true) {
    const std::uint64_t index = pos - 1;
    // Rejection: overall inclusion probability cap * (p/cap) = p.
    if (rng.NextDouble() * bucket.cap < bucket.probs[index]) {
      if (rejection_accepts != nullptr) {
        ++*rejection_accepts;
      }
      out->push_back(bucket.elements[index]);
    }
    const std::uint64_t skip = SampleGeometricFast(rng, bucket.inv_log_q);
    if (geometric_draws != nullptr) {
      ++*geometric_draws;
    }
    if (skip > h - pos) {
      break;
    }
    pos += skip;
  }
}

void BucketSubsetSampler::Sample(Rng& rng,
                                 std::vector<std::uint32_t>* out) const {
  SampleCounted(rng, out, nullptr, nullptr);
}

void BucketSubsetSampler::SampleCounted(
    Rng& rng, std::vector<std::uint32_t>* out, std::uint64_t* geometric_draws,
    std::uint64_t* rejection_accepts) const {
  if (buckets_.empty()) {
    return;
  }
  std::size_t hop = 0;  // start table
  while (true) {
    const std::uint32_t outcome_index = next_hop_[hop].Sample(rng);
    const std::uint32_t bucket_id = hop_outcomes_[hop][outcome_index];
    if (bucket_id >= buckets_.size()) {
      return;  // terminal outcome
    }
    SampleWithinBucket(buckets_[bucket_id], rng, out, geometric_draws,
                       rejection_accepts);
    hop = bucket_id + 1;
  }
}

}  // namespace subsim
