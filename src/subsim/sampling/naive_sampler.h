#ifndef SUBSIM_SAMPLING_NAIVE_SAMPLER_H_
#define SUBSIM_SAMPLING_NAIVE_SAMPLER_H_

#include <vector>

#include "subsim/sampling/subset_sampler.h"

namespace subsim {

/// Per-element Bernoulli subset sampling: one random number per element,
/// O(h) per sample. This is exactly what the vanilla RR-set generator
/// (Algorithm 2) does for each activated node, and serves as the baseline
/// and as the correctness reference in tests.
class NaiveSubsetSampler final : public SubsetSampler {
 public:
  /// `probs` are inclusion probabilities in [0, 1].
  explicit NaiveSubsetSampler(std::vector<double> probs);

  void Sample(Rng& rng, std::vector<std::uint32_t>* out) const override;
  std::size_t size() const override { return probs_.size(); }
  double expected_count() const override { return mu_; }
  const char* name() const override { return "naive"; }

 private:
  std::vector<double> probs_;
  double mu_ = 0.0;
};

}  // namespace subsim

#endif  // SUBSIM_SAMPLING_NAIVE_SAMPLER_H_
