#ifndef SUBSIM_SAMPLING_SORTED_SAMPLER_H_
#define SUBSIM_SAMPLING_SORTED_SAMPLER_H_

#include <vector>

#include "subsim/sampling/subset_sampler.h"

namespace subsim {

/// Index-free subset sampling for descending-sorted probabilities (paper
/// Section 3.3): position buckets [2^k, 2^{k+1}) use geometric skips at the
/// bucket's leading probability plus rejection. O(1 + mu + log h) per
/// sample with zero preprocessing beyond the sort.
///
/// Because p_x <= p_ceil(x/2), the leading probability of each bucket is at
/// most twice any member, so the acceptance ratio stays >= 1/2 and total
/// expected work is O(1 + mu) plus one geometric draw per bucket.
class SortedSubsetSampler final : public SubsetSampler {
 public:
  /// `probs` must be non-increasing (checked).
  explicit SortedSubsetSampler(std::vector<double> probs);

  void Sample(Rng& rng, std::vector<std::uint32_t>* out) const override;
  std::size_t size() const override { return probs_.size(); }
  double expected_count() const override { return mu_; }
  const char* name() const override { return "sorted"; }

 private:
  std::vector<double> probs_;
  double mu_ = 0.0;
};

}  // namespace subsim

#endif  // SUBSIM_SAMPLING_SORTED_SAMPLER_H_
