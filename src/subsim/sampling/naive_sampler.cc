#include "subsim/sampling/naive_sampler.h"

#include "subsim/sampling/inline_sampling.h"
#include "subsim/util/check.h"

namespace subsim {

NaiveSubsetSampler::NaiveSubsetSampler(std::vector<double> probs)
    : probs_(std::move(probs)) {
  for (double p : probs_) {
    SUBSIM_CHECK(p >= 0.0 && p <= 1.0, "probability out of [0,1]: %f", p);
    mu_ += p;
  }
}

void NaiveSubsetSampler::Sample(Rng& rng,
                                std::vector<std::uint32_t>* out) const {
  SampleSubsetNaive(probs_, rng,
                    [out](std::uint32_t i) { out->push_back(i); });
}

}  // namespace subsim
