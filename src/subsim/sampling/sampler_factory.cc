#include "subsim/sampling/sampler_factory.h"

#include <algorithm>

#include "subsim/sampling/bucket_sampler.h"
#include "subsim/sampling/geometric_sampler.h"
#include "subsim/sampling/naive_sampler.h"
#include "subsim/sampling/sorted_sampler.h"

namespace subsim {

namespace {

bool AllEqual(const std::vector<double>& probs) {
  return std::all_of(probs.begin(), probs.end(),
                     [&](double p) { return p == probs.front(); });
}

bool NonIncreasing(const std::vector<double>& probs) {
  for (std::size_t i = 1; i < probs.size(); ++i) {
    if (probs[i] > probs[i - 1]) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<SubsetSampler>> MakeSubsetSampler(
    SamplerKind kind, std::vector<double> probs) {
  if (kind == SamplerKind::kAuto) {
    if (probs.empty() || AllEqual(probs)) {
      kind = SamplerKind::kGeometric;
    } else if (NonIncreasing(probs)) {
      kind = SamplerKind::kSorted;
    } else {
      kind = SamplerKind::kBucket;
    }
  }
  switch (kind) {
    case SamplerKind::kNaive:
      return std::unique_ptr<SubsetSampler>(
          new NaiveSubsetSampler(std::move(probs)));
    case SamplerKind::kGeometric: {
      if (!probs.empty() && !AllEqual(probs)) {
        return Status::FailedPrecondition(
            "geometric sampler requires uniform probabilities");
      }
      const double p = probs.empty() ? 0.0 : probs.front();
      return std::unique_ptr<SubsetSampler>(
          new GeometricSubsetSampler(probs.size(), p));
    }
    case SamplerKind::kBucket:
      return std::unique_ptr<SubsetSampler>(
          new BucketSubsetSampler(std::move(probs)));
    case SamplerKind::kSorted:
      if (!NonIncreasing(probs)) {
        return Status::FailedPrecondition(
            "sorted sampler requires non-increasing probabilities");
      }
      return std::unique_ptr<SubsetSampler>(
          new SortedSubsetSampler(std::move(probs)));
    case SamplerKind::kAuto:
      break;  // resolved above
  }
  return Status::Internal("unreachable sampler kind");
}

Result<SamplerKind> ParseSamplerKind(const std::string& name) {
  if (name == "naive") return SamplerKind::kNaive;
  if (name == "geometric") return SamplerKind::kGeometric;
  if (name == "bucket") return SamplerKind::kBucket;
  if (name == "sorted") return SamplerKind::kSorted;
  if (name == "auto") return SamplerKind::kAuto;
  return Status::InvalidArgument("unknown sampler kind: " + name);
}

const char* SamplerKindName(SamplerKind kind) {
  switch (kind) {
    case SamplerKind::kNaive:
      return "naive";
    case SamplerKind::kGeometric:
      return "geometric";
    case SamplerKind::kBucket:
      return "bucket";
    case SamplerKind::kSorted:
      return "sorted";
    case SamplerKind::kAuto:
      return "auto";
  }
  return "?";
}

}  // namespace subsim
