#ifndef SUBSIM_SAMPLING_SUBSET_SAMPLER_H_
#define SUBSIM_SAMPLING_SUBSET_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "subsim/random/rng.h"

namespace subsim {

/// Independent subset sampling (paper Section 3.1): given h elements with
/// inclusion probabilities p_0..p_{h-1}, draw a random subset where element
/// i appears independently with probability p_i.
///
/// Implementations trade preprocessing for per-sample cost:
///  * `NaiveSubsetSampler`      — no preprocessing, O(h) per sample
///                                 (the vanilla RR-generation behaviour);
///  * `GeometricSubsetSampler`  — equal probabilities only, O(1 + mu);
///  * `BucketSubsetSampler`     — arbitrary probabilities, O(h) build,
///                                 O(1 + mu) per sample (Lemma 5,
///                                 Bringmann–Panagiotou);
///  * `SortedSubsetSampler`     — probabilities sorted descending,
///                                 index-free, O(1 + mu + log h) per sample
///                                 (paper Section 3.3).
/// where mu = sum of the probabilities.
class SubsetSampler {
 public:
  virtual ~SubsetSampler() = default;

  /// Appends the sampled element indices to `*out` (not cleared). Emission
  /// order is implementation-defined (the bucket sampler groups by
  /// probability bucket); callers needing sorted output must sort.
  virtual void Sample(Rng& rng, std::vector<std::uint32_t>* out) const = 0;

  /// Number of elements h.
  virtual std::size_t size() const = 0;

  /// mu = sum of inclusion probabilities (expected sample size).
  virtual double expected_count() const = 0;

  /// Implementation name for reports.
  virtual const char* name() const = 0;
};

}  // namespace subsim

#endif  // SUBSIM_SAMPLING_SUBSET_SAMPLER_H_
