#ifndef SUBSIM_BENCHSUP_CALIBRATION_H_
#define SUBSIM_BENCHSUP_CALIBRATION_H_

#include <cstdint>

#include "subsim/graph/types.h"
#include "subsim/util/status.h"

namespace subsim {

/// Result of calibrating an influence-level parameter so random RR sets
/// reach a target average size — the paper's theta_50 ... theta_32K and
/// p_50 ... p_32K settings (Section 7, Figures 6 and 7).
struct CalibrationResult {
  /// The calibrated parameter (WC-variant theta, or Uniform-IC p).
  double parameter = 0.0;
  /// The average RR-set size the parameter actually achieves.
  double achieved_avg_size = 0.0;
  /// True when the target could not be reached even at the parameter's
  /// upper limit (the graph's reachable mass saturates below the target).
  bool saturated = false;
};

/// Binary-searches theta in the WC-variant model p(u,v) = min{1,
/// theta/d_in(v)} until `probe_sets` SUBSIM-generated RR sets average
/// `target_avg_size` nodes (within ~5%). Deterministic per seed.
Result<CalibrationResult> CalibrateWcVariantTheta(const EdgeList& edges,
                                                  double target_avg_size,
                                                  std::uint64_t seed,
                                                  std::uint32_t probe_sets =
                                                      400);

/// Same, for the Uniform IC probability p.
Result<CalibrationResult> CalibrateUniformP(const EdgeList& edges,
                                            double target_avg_size,
                                            std::uint64_t seed,
                                            std::uint32_t probe_sets = 400);

}  // namespace subsim

#endif  // SUBSIM_BENCHSUP_CALIBRATION_H_
