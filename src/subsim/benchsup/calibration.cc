#include "subsim/benchsup/calibration.h"

#include <cmath>

#include "subsim/graph/graph_builder.h"
#include "subsim/graph/weight_models.h"
#include "subsim/rrset/subsim_ic_generator.h"

namespace subsim {

namespace {

/// Average RR-set size on `edges` weighted by `model` at `parameter`.
Result<double> ProbeAvgRrSize(const EdgeList& edges, WeightModel model,
                              double parameter, std::uint64_t seed,
                              std::uint32_t probe_sets) {
  EdgeList weighted = edges;
  WeightModelParams params;
  if (model == WeightModel::kWcVariant) {
    params.wc_variant_theta = parameter;
  } else {
    params.uniform_p = parameter;
  }
  SUBSIM_RETURN_IF_ERROR(AssignWeights(model, params, &weighted));

  Result<Graph> graph = BuildGraph(std::move(weighted));
  if (!graph.ok()) {
    return graph.status();
  }

  SubsimIcGenerator generator(*graph);
  Rng rng(seed);
  std::vector<NodeId> scratch;
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < probe_sets; ++i) {
    generator.Generate(rng, &scratch);
    total += scratch.size();
  }
  return static_cast<double>(total) / probe_sets;
}

Result<CalibrationResult> Calibrate(const EdgeList& edges, WeightModel model,
                                    double lo, double hi,
                                    double target_avg_size,
                                    std::uint64_t seed,
                                    std::uint32_t probe_sets) {
  if (target_avg_size < 1.0) {
    return Status::InvalidArgument("target average size must be >= 1");
  }

  CalibrationResult result;

  // Saturation check at the upper limit.
  Result<double> at_hi = ProbeAvgRrSize(edges, model, hi, seed, probe_sets);
  if (!at_hi.ok()) {
    return at_hi.status();
  }
  if (*at_hi < target_avg_size) {
    result.parameter = hi;
    result.achieved_avg_size = *at_hi;
    result.saturated = true;
    return result;
  }

  double achieved = *at_hi;
  for (int iter = 0; iter < 24; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const Result<double> avg =
        ProbeAvgRrSize(edges, model, mid, seed, probe_sets);
    if (!avg.ok()) {
      return avg.status();
    }
    achieved = *avg;
    if (std::abs(achieved - target_avg_size) / target_avg_size < 0.05) {
      result.parameter = mid;
      result.achieved_avg_size = achieved;
      return result;
    }
    if (achieved < target_avg_size) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  result.parameter = 0.5 * (lo + hi);
  result.achieved_avg_size = achieved;
  return result;
}

}  // namespace

Result<CalibrationResult> CalibrateWcVariantTheta(const EdgeList& edges,
                                                  double target_avg_size,
                                                  std::uint64_t seed,
                                                  std::uint32_t probe_sets) {
  // theta = 1 is plain WC; beyond ~64 every moderate-degree node copies its
  // whole in-neighborhood, which saturates any connected graph.
  return Calibrate(edges, WeightModel::kWcVariant, /*lo=*/0.0, /*hi=*/64.0,
                   target_avg_size, seed, probe_sets);
}

Result<CalibrationResult> CalibrateUniformP(const EdgeList& edges,
                                            double target_avg_size,
                                            std::uint64_t seed,
                                            std::uint32_t probe_sets) {
  return Calibrate(edges, WeightModel::kUniformIc, /*lo=*/0.0, /*hi=*/1.0,
                   target_avg_size, seed, probe_sets);
}

}  // namespace subsim
