#ifndef SUBSIM_BENCHSUP_REPORTING_H_
#define SUBSIM_BENCHSUP_REPORTING_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace subsim {

/// Minimal aligned-column table for bench output. Every experiment binary
/// prints its figure/table as one of these so EXPERIMENTS.md rows can be
/// pasted directly.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with a header rule and right-aligned numeric-looking cells.
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals.
std::string FormatDouble(double value, int digits = 3);

/// "12.5x" style speedup string ("-" when the baseline is 0).
std::string FormatSpeedup(double baseline_seconds, double seconds);

}  // namespace subsim

#endif  // SUBSIM_BENCHSUP_REPORTING_H_
