#include "subsim/benchsup/experiment.h"

#include <string_view>

#include "subsim/benchsup/datasets.h"
#include "subsim/graph/graph_builder.h"
#include "subsim/util/string_util.h"

namespace subsim {

Result<ExperimentArgs> ExperimentArgs::Parse(int argc, char** argv,
                                             double default_scale) {
  ExperimentArgs args;
  args.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--quick") {
      args.quick = true;
      continue;
    }
    const std::size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("unrecognized argument: " +
                                     std::string(arg));
    }
    const std::string_view key = arg.substr(0, eq);
    const std::string_view value = arg.substr(eq + 1);
    if (key == "--scale") {
      double v = 0.0;
      if (!ParseDouble(value, &v) || v <= 0.0 || v > 1.0) {
        return Status::InvalidArgument("--scale must be in (0,1]");
      }
      args.scale = v;
    } else if (key == "--seed") {
      std::uint64_t v = 0;
      if (!ParseUint64(value, &v)) {
        return Status::InvalidArgument("--seed must be a non-negative int");
      }
      args.seed = v;
    } else if (key == "--datasets") {
      args.datasets.clear();
      for (std::string_view piece : SplitAndTrim(value, ",")) {
        args.datasets.emplace_back(piece);
      }
      for (const std::string& name : args.datasets) {
        const Result<DatasetSpec> spec = FindDataset(name);
        if (!spec.ok()) {
          return spec.status();
        }
      }
    } else if (key == "--metrics-json") {
      args.metrics_json = std::string(value);
    } else {
      return Status::InvalidArgument("unrecognized flag: " +
                                     std::string(key));
    }
  }
  return args;
}

Result<Graph> BuildDatasetGraph(const std::string& dataset, double scale,
                                std::uint64_t seed, WeightModel model,
                                const WeightModelParams& params,
                                bool sort_in_edges) {
  Result<DatasetSpec> spec = FindDataset(dataset);
  if (!spec.ok()) {
    return spec.status();
  }
  Result<EdgeList> edges = MakeDataset(*spec, scale, seed);
  if (!edges.ok()) {
    return edges.status();
  }
  SUBSIM_RETURN_IF_ERROR(AssignWeights(model, params, &edges.value()));
  GraphBuildOptions build_options;
  build_options.sort_in_edges_by_weight = sort_in_edges;
  return BuildGraph(std::move(edges).value(), build_options);
}

std::vector<std::string> SelectDatasets(const ExperimentArgs& args) {
  if (!args.datasets.empty()) {
    return args.datasets;
  }
  std::vector<std::string> names;
  for (const DatasetSpec& spec : StandardDatasets()) {
    names.push_back(spec.name);
  }
  return names;
}

}  // namespace subsim
