#include "subsim/benchsup/reporting.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "subsim/util/check.h"

namespace subsim {

namespace {

bool LooksNumeric(const std::string& cell) {
  if (cell.empty()) {
    return false;
  }
  for (char c : cell) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != '-' && c != '+' && c != 'e' && c != 'x' && c != '%') {
      return false;
    }
  }
  return true;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  SUBSIM_CHECK(cells.size() == headers_.size(),
               "row has %zu cells, table has %zu columns", cells.size(),
               headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t pad = widths[c] - cells[c].size();
      out << (c == 0 ? "" : "  ");
      if (LooksNumeric(cells[c])) {
        out << std::string(pad, ' ') << cells[c];
      } else {
        out << cells[c] << std::string(pad, ' ');
      }
    }
    out << "\n";
  };

  print_row(headers_);
  std::size_t total = headers_.empty() ? 0 : 2 * (headers_.size() - 1);
  for (std::size_t w : widths) {
    total += w;
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatSpeedup(double baseline_seconds, double seconds) {
  if (seconds <= 0.0) {
    return "-";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1fx", baseline_seconds / seconds);
  return buf;
}

}  // namespace subsim
