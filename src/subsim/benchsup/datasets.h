#ifndef SUBSIM_BENCHSUP_DATASETS_H_
#define SUBSIM_BENCHSUP_DATASETS_H_

#include <string>
#include <vector>

#include "subsim/graph/types.h"
#include "subsim/util/status.h"

namespace subsim {

/// Synthetic stand-ins for the paper's Table 2 datasets.
///
/// The SNAP/KONECT graphs (Pokec, Orkut, Twitter, Friendster) are not
/// shipped offline; each stand-in reproduces the structural features the
/// paper's claims depend on — directedness, heavy-tailed degrees, and the
/// m/n density of the directed representation — at laptop scale. See
/// DESIGN.md Section 3 for the substitution argument.
struct DatasetSpec {
  std::string name;
  /// Name of the dataset it stands in for.
  std::string stands_in_for;
  bool undirected = false;
  /// Node count at scale = 1.
  NodeId base_nodes = 0;
  /// Directed average degree target (m/n after symmetrization).
  double avg_degree = 0.0;
  /// Generator family: "ba" (preferential attachment) or "plc" (power-law
  /// configuration model).
  std::string family;
  /// plc only: degree exponent.
  double exponent = 2.1;
};

/// The four standard stand-ins, in Table 2 order.
const std::vector<DatasetSpec>& StandardDatasets();

/// Looks up a spec by name ("pokec-s", "orkut-s", "twitter-s",
/// "friendster-s").
Result<DatasetSpec> FindDataset(const std::string& name);

/// Instantiates a dataset at `scale` in (0, 1]: node count becomes
/// max(2000, base_nodes * scale); density is preserved. Weights are 0 —
/// apply a WeightModel. Deterministic per (name, scale, seed).
Result<EdgeList> MakeDataset(const DatasetSpec& spec, double scale,
                             std::uint64_t seed);

}  // namespace subsim

#endif  // SUBSIM_BENCHSUP_DATASETS_H_
