#include "subsim/benchsup/datasets.h"

#include <algorithm>
#include <cmath>

#include "subsim/graph/generators.h"

namespace subsim {

const std::vector<DatasetSpec>& StandardDatasets() {
  static const std::vector<DatasetSpec>* const kDatasets =
      new std::vector<DatasetSpec>{
          // Pokec: directed friendship graph, m/n ~ 19.
          {"pokec-s", "Pokec (1.6M/30.6M)", /*undirected=*/false,
           /*base_nodes=*/100000, /*avg_degree=*/19.0, "plc",
           /*exponent=*/2.2},
          // Orkut: undirected community graph, dense: directed m/n ~ 76.
          {"orkut-s", "Orkut (3.1M/117.2M)", /*undirected=*/true,
           /*base_nodes=*/60000, /*avg_degree=*/76.0, "ba",
           /*exponent=*/0.0},
          // Twitter: directed follower graph with extreme hubs, m/n ~ 36.
          {"twitter-s", "Twitter (41.7M/1.5B)", /*undirected=*/false,
           /*base_nodes=*/100000, /*avg_degree=*/36.0, "plc",
           /*exponent=*/2.0},
          // Friendster: undirected, directed m/n ~ 55.
          {"friendster-s", "Friendster (65.6M/1.8B)", /*undirected=*/true,
           /*base_nodes=*/80000, /*avg_degree=*/55.0, "ba",
           /*exponent=*/0.0},
      };
  return *kDatasets;
}

Result<DatasetSpec> FindDataset(const std::string& name) {
  for (const DatasetSpec& spec : StandardDatasets()) {
    if (spec.name == name) {
      return spec;
    }
  }
  return Status::NotFound("unknown dataset: " + name +
                          " (expected pokec-s | orkut-s | twitter-s | "
                          "friendster-s)");
}

Result<EdgeList> MakeDataset(const DatasetSpec& spec, double scale,
                             std::uint64_t seed) {
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  const NodeId n = std::max<NodeId>(
      2000, static_cast<NodeId>(spec.base_nodes * scale));

  if (spec.family == "ba") {
    // Undirected BA: each attachment contributes 2 directed edges, so
    // edges_per_node = avg_degree / 2 hits the directed density target.
    const NodeId epn = std::max<NodeId>(
        1, static_cast<NodeId>(std::lround(spec.avg_degree / 2.0)));
    return GenerateBarabasiAlbert(n, epn, spec.undirected, seed);
  }
  if (spec.family == "plc") {
    // Each directed edge pairs one out-stub with one in-stub, and both stub
    // pools are drawn with the same mean, so the per-side draw mean equals
    // the directed m/n target.
    const NodeId max_degree = std::max<NodeId>(64, n / 10);
    return GeneratePowerLawConfiguration(n, spec.exponent, max_degree,
                                         spec.avg_degree, seed);
  }
  return Status::InvalidArgument("unknown generator family: " + spec.family);
}

}  // namespace subsim
