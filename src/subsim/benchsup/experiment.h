#ifndef SUBSIM_BENCHSUP_EXPERIMENT_H_
#define SUBSIM_BENCHSUP_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "subsim/graph/graph.h"
#include "subsim/graph/weight_models.h"
#include "subsim/util/status.h"

namespace subsim {

/// Shared command-line arguments for the experiment binaries. Every bench
/// accepts:
///   --scale=<f>          dataset scale in (0,1] (default per binary)
///   --seed=<u64>         RNG seed (default 7)
///   --datasets=a,b       comma-separated subset of the Table 2 stand-ins
///   --quick              shrink parameter sweeps for a fast smoke run
///   --metrics-json=FILE  dump an observability snapshot ("-" = stdout)
///                        in the `subsim_cli run --metrics-json` schema
struct ExperimentArgs {
  double scale = 0.25;
  std::uint64_t seed = 7;
  std::vector<std::string> datasets;  // empty = all standard datasets
  bool quick = false;
  std::string metrics_json;  // empty = observability disabled

  /// Parses argv; unrecognized flags fail with InvalidArgument so typos
  /// don't silently run the default experiment.
  static Result<ExperimentArgs> Parse(int argc, char** argv,
                                      double default_scale);
};

/// Builds a weighted graph for `dataset` at the experiment scale.
/// `sort_in_edges` enables the index-free general-IC sampler.
Result<Graph> BuildDatasetGraph(const std::string& dataset, double scale,
                                std::uint64_t seed, WeightModel model,
                                const WeightModelParams& params,
                                bool sort_in_edges = false);

/// The dataset list this run covers (args.datasets or the standard four).
std::vector<std::string> SelectDatasets(const ExperimentArgs& args);

}  // namespace subsim

#endif  // SUBSIM_BENCHSUP_EXPERIMENT_H_
