#include "subsim/rrset/subsim_ic_generator.h"

namespace subsim {

SubsimExpandCore::SubsimExpandCore(const Graph& graph,
                                   GeneralIcStrategy strategy,
                                   NodeId naive_fallback_degree)
    : graph_(graph), strategy_(strategy) {
  if (strategy_ == GeneralIcStrategy::kAuto) {
    strategy_ = graph.in_sorted_by_weight()
                    ? GeneralIcStrategy::kSortedIndexFree
                    : GeneralIcStrategy::kBucketIndexed;
  }
  SUBSIM_CHECK(strategy_ != GeneralIcStrategy::kSortedIndexFree ||
                   graph.in_sorted_by_weight(),
               "sorted index-free strategy requires a graph built with "
               "sort_in_edges_by_weight");

  const NodeId n = graph.num_nodes();
  meta_.assign(n, PlanMeta{});
  if (strategy_ == GeneralIcStrategy::kBucketIndexed) {
    bucket_samplers_.resize(n);
  }

  for (NodeId v = 0; v < n; ++v) {
    const InRowMeta& row = graph.InMeta(v);
    PlanMeta& pm = meta_[v];
    pm.begin = row.begin;
    SUBSIM_CHECK(row.degree < (1u << 29), "in-degree overflows PlanMeta");
    pm.degree = row.degree;
    const auto set_plan = [&pm](NodePlan plan) {
      pm.plan = static_cast<std::uint32_t>(plan);
    };
    const auto weights = graph.InWeights(v);
    if (weights.empty() || graph.InWeightSum(v) <= 0.0) {
      set_plan(NodePlan::kNoInEdges);
      continue;
    }
    if (weights.size() < naive_fallback_degree) {
      if (row.uniform()) {
        set_plan(NodePlan::kSmallNaiveUniform);
        pm.param = row.uniform_weight;
      } else {
        set_plan(NodePlan::kSmallNaive);
      }
      continue;
    }
    if (row.uniform()) {
      const double p = row.uniform_weight;
      if (p >= 1.0) {
        set_plan(NodePlan::kTakeAll);
      } else if (p <= 0.0) {
        set_plan(NodePlan::kNoInEdges);
      } else {
        set_plan(NodePlan::kUniformSkip);
        pm.param = GeometricInvLogQ(p);
      }
      continue;
    }
    set_plan(NodePlan::kGeneral);
    if (strategy_ == GeneralIcStrategy::kBucketIndexed) {
      bucket_samplers_[v] = std::make_unique<BucketSubsetSampler>(
          std::vector<double>(weights.begin(), weights.end()));
    }
  }
}

SubsimIcGenerator::SubsimIcGenerator(const Graph& graph,
                                     GeneralIcStrategy strategy,
                                     NodeId naive_fallback_degree)
    : graph_(graph), core_(graph, strategy, naive_fallback_degree) {
  activated_.Resize(graph.num_nodes());
  sentinel_.Resize(graph.num_nodes());
}

void SubsimIcGenerator::SetSentinels(std::span<const NodeId> sentinels) {
  sentinel_.ResetTouched();
  has_sentinels_ = !sentinels.empty();
  for (NodeId v : sentinels) {
    sentinel_.Set(v);
  }
}

void SubsimIcGenerator::Activate(NodeId w, std::vector<NodeId>* out) {
  if (stop_ || !activated_.Set(w)) {
    return;
  }
  out->push_back(w);
  if (has_sentinels_ && sentinel_.Get(w)) {
    stop_ = true;
    return;
  }
  queue_.push_back(w);
}

bool SubsimIcGenerator::Generate(Rng& rng, std::vector<NodeId>* out) {
  out->clear();
  SUBSIM_CHECK(graph_.num_nodes() > 0, "cannot sample from empty graph");

  stop_ = false;
  queue_.clear();
  const NodeId root = static_cast<NodeId>(rng.UniformInt(graph_.num_nodes()));
  out->push_back(root);
  activated_.Set(root);
  bool hit = has_sentinels_ && sentinel_.Get(root);

  if (!hit) {
    queue_.push_back(root);
    std::size_t head = 0;
    ScalarSink sink{this, out};
    SubsimExpandCore::ScalarNaivePolicy naive;
    while (head < queue_.size()) {
      if (core_.ExpandNode(queue_[head++], rng, &stats_, sink, naive)) {
        hit = true;
        break;
      }
    }
  }

  activated_.ResetTouched();
  ++stats_.sets_generated;
  stats_.nodes_added += out->size();
  if (hit) {
    ++stats_.sentinel_hits;
  }
  return hit;
}

}  // namespace subsim
