#include "subsim/rrset/subsim_ic_generator.h"

#include "subsim/random/geometric.h"
#include "subsim/sampling/inline_sampling.h"

namespace subsim {

SubsimIcGenerator::SubsimIcGenerator(const Graph& graph,
                                     GeneralIcStrategy strategy,
                                     NodeId naive_fallback_degree)
    : graph_(graph), strategy_(strategy) {
  if (strategy_ == GeneralIcStrategy::kAuto) {
    strategy_ = graph.in_sorted_by_weight()
                    ? GeneralIcStrategy::kSortedIndexFree
                    : GeneralIcStrategy::kBucketIndexed;
  }
  SUBSIM_CHECK(strategy_ != GeneralIcStrategy::kSortedIndexFree ||
                   graph.in_sorted_by_weight(),
               "sorted index-free strategy requires a graph built with "
               "sort_in_edges_by_weight");

  const NodeId n = graph.num_nodes();
  plans_.resize(n);
  inv_log_q_.assign(n, 0.0);
  if (strategy_ == GeneralIcStrategy::kBucketIndexed) {
    bucket_samplers_.resize(n);
  }

  for (NodeId v = 0; v < n; ++v) {
    const auto weights = graph.InWeights(v);
    if (weights.empty() || graph.InWeightSum(v) <= 0.0) {
      plans_[v] = NodePlan::kNoInEdges;
      continue;
    }
    if (weights.size() < naive_fallback_degree) {
      plans_[v] = NodePlan::kSmallNaive;
      continue;
    }
    if (graph.HasUniformInWeights(v)) {
      const double p = weights[0];
      if (p >= 1.0) {
        plans_[v] = NodePlan::kTakeAll;
      } else if (p <= 0.0) {
        plans_[v] = NodePlan::kNoInEdges;
      } else {
        plans_[v] = NodePlan::kUniformSkip;
        inv_log_q_[v] = GeometricInvLogQ(p);
      }
      continue;
    }
    plans_[v] = NodePlan::kGeneral;
    if (strategy_ == GeneralIcStrategy::kBucketIndexed) {
      bucket_samplers_[v] = std::make_unique<BucketSubsetSampler>(
          std::vector<double>(weights.begin(), weights.end()));
    }
  }

  activated_.Resize(n);
  sentinel_.Resize(n);
}

void SubsimIcGenerator::SetSentinels(std::span<const NodeId> sentinels) {
  sentinel_.ResetTouched();
  has_sentinels_ = !sentinels.empty();
  for (NodeId v : sentinels) {
    sentinel_.Set(v);
  }
}

bool SubsimIcGenerator::Activate(NodeId w, std::vector<NodeId>* out) {
  if (stop_ || !activated_.Set(w)) {
    return false;
  }
  out->push_back(w);
  if (has_sentinels_ && sentinel_.Get(w)) {
    stop_ = true;
    return true;
  }
  queue_.push_back(w);
  return false;
}

bool SubsimIcGenerator::ExpandNode(NodeId u, Rng& rng,
                                   std::vector<NodeId>* out) {
  const auto sources = graph_.InNeighbors(u);
  switch (plans_[u]) {
    case NodePlan::kNoInEdges:
      return false;
    case NodePlan::kSmallNaive:
      // Every in-edge gets a coin flip here, so count them all.
      stats_.edges_examined += sources.size();
      SampleSubsetNaive(graph_.InWeights(u), rng, [&](std::uint32_t i) {
        Activate(sources[i], out);
      });
      return stop_;
    case NodePlan::kTakeAll:
      for (NodeId w : sources) {
        ++stats_.edges_examined;
        Activate(w, out);
        if (stop_) {
          return true;
        }
      }
      return false;
    case NodePlan::kUniformSkip:
      SampleUniformSubsetSkips(
          sources.size(), inv_log_q_[u], rng,
          [&](std::uint32_t i) {
            ++stats_.edges_examined;
            Activate(sources[i], out);
          },
          &stats_.geometric_skips);
      return stop_;
    case NodePlan::kGeneral:
      break;
  }

  if (strategy_ == GeneralIcStrategy::kSortedIndexFree) {
    SampleSortedSubset(
        graph_.InWeights(u), rng,
        [&](std::uint32_t i) {
          ++stats_.edges_examined;
          Activate(sources[i], out);
        },
        &stats_.geometric_skips, &stats_.rejection_accepts);
    return stop_;
  }

  // Bucket strategy: the sampler emits into scratch, then we activate.
  scratch_indices_.clear();
  bucket_samplers_[u]->SampleCounted(rng, &scratch_indices_,
                                     &stats_.geometric_skips,
                                     &stats_.rejection_accepts);
  for (std::uint32_t i : scratch_indices_) {
    ++stats_.edges_examined;
    Activate(sources[i], out);
    if (stop_) {
      return true;
    }
  }
  return false;
}

bool SubsimIcGenerator::Generate(Rng& rng, std::vector<NodeId>* out) {
  out->clear();
  SUBSIM_CHECK(graph_.num_nodes() > 0, "cannot sample from empty graph");

  stop_ = false;
  queue_.clear();
  const NodeId root = static_cast<NodeId>(rng.UniformInt(graph_.num_nodes()));
  out->push_back(root);
  activated_.Set(root);
  bool hit = has_sentinels_ && sentinel_.Get(root);

  if (!hit) {
    queue_.push_back(root);
    std::size_t head = 0;
    while (head < queue_.size()) {
      if (ExpandNode(queue_[head++], rng, out)) {
        hit = true;
        break;
      }
    }
  }

  activated_.ResetTouched();
  ++stats_.sets_generated;
  stats_.nodes_added += out->size();
  if (hit) {
    ++stats_.sentinel_hits;
  }
  return hit;
}

}  // namespace subsim
