#include "subsim/rrset/parallel_fill.h"

#include <thread>
#include <vector>

namespace subsim {

namespace {

/// One worker's output: flattened sets plus their boundaries and flags.
struct WorkerBuffer {
  std::vector<NodeId> nodes;
  std::vector<std::uint32_t> sizes;
  std::vector<std::uint8_t> hits;
  /// Final generator stats; flushed to metrics after the join.
  RrGenStats stats;
};

}  // namespace

Status ParallelFill(GeneratorKind kind, const Graph& graph, Rng& rng,
                    std::size_t count, const ParallelFillOptions& options,
                    RrCollection* collection) {
  unsigned num_threads = options.num_threads;
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) {
      num_threads = 1;
    }
  }
  if (num_threads > count) {
    num_threads = count > 0 ? static_cast<unsigned>(count) : 1;
  }

  // Validate generator construction once up front (e.g. LT weight sums) so
  // workers cannot fail after threads have started.
  {
    Result<std::unique_ptr<RrGenerator>> probe = MakeRrGenerator(kind, graph);
    if (!probe.ok()) {
      return probe.status();
    }
  }
  if (count == 0) {
    return Status::Ok();
  }

  std::vector<WorkerBuffer> buffers(num_threads);
  std::vector<Rng> worker_rngs;
  worker_rngs.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    worker_rngs.push_back(rng.Fork(0x9E3779B9ull + t));
  }
  rng.NextU64();  // advance the parent so the next call forks new streams

  auto worker = [&](unsigned t) {
    const std::size_t begin = count * t / num_threads;
    const std::size_t end = count * (t + 1) / num_threads;
    Result<std::unique_ptr<RrGenerator>> generator =
        MakeRrGenerator(kind, graph);
    // Construction succeeded on the probe above; a failure here would mean
    // non-deterministic construction, which the factories do not do.
    SUBSIM_CHECK(generator.ok(), "generator construction raced");
    (*generator)->SetSentinels(options.sentinels);

    WorkerBuffer& buffer = buffers[t];
    std::vector<NodeId> scratch;
    for (std::size_t i = begin; i < end; ++i) {
      const bool hit = (*generator)->Generate(worker_rngs[t], &scratch);
      buffer.nodes.insert(buffer.nodes.end(), scratch.begin(),
                          scratch.end());
      buffer.sizes.push_back(static_cast<std::uint32_t>(scratch.size()));
      buffer.hits.push_back(hit ? 1 : 0);
    }
    buffer.stats = (*generator)->stats();
  };

  if (num_threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
      threads.emplace_back(worker, t);
    }
    for (std::thread& thread : threads) {
      thread.join();
    }
  }

  MetricsRegistry::HistogramHandle set_size;
  if (options.obs.metrics != nullptr) {
    set_size = options.obs.metrics->Histogram("rr.set_size");
    options.obs.metrics->Counter("fill.parallel_rounds").Increment();
  }

  // Deterministic merge: worker order, generation order within worker.
  for (const WorkerBuffer& buffer : buffers) {
    std::size_t offset = 0;
    for (std::size_t i = 0; i < buffer.sizes.size(); ++i) {
      collection->Add(
          std::span<const NodeId>(buffer.nodes.data() + offset,
                                  buffer.sizes[i]),
          buffer.hits[i] != 0);
      set_size.Observe(buffer.sizes[i]);
      offset += buffer.sizes[i];
    }
    FlushRrGenStatsDelta(RrGenStats(), buffer.stats, options.obs.metrics);
  }
  return Status::Ok();
}

Status FillCollection(GeneratorKind kind, const Graph& graph,
                      RrGenerator& sequential, Rng& rng, std::size_t count,
                      unsigned num_threads,
                      std::span<const NodeId> sentinels,
                      RrCollection* collection, const ObsContext& obs) {
  if (num_threads == 1) {
    if (obs.metrics != nullptr) {
      obs.metrics->Counter("fill.sequential_rounds").Increment();
    }
    sequential.Fill(rng, count, collection, obs);
    return Status::Ok();
  }
  ParallelFillOptions options;
  options.num_threads = num_threads;
  options.sentinels.assign(sentinels.begin(), sentinels.end());
  options.obs = obs;
  return ParallelFill(kind, graph, rng, count, options, collection);
}

}  // namespace subsim
