#include "subsim/rrset/parallel_fill.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "subsim/rrset/batch_kernel.h"
#include "subsim/util/check.h"
#include "subsim/util/threading.h"

namespace subsim {

namespace {

/// Sets per scheduler chunk. Small enough to load-balance heavy-tailed set
/// sizes across workers, large enough that the atomic claim is noise.
constexpr std::size_t kChunkSize = 64;

/// Scheduler chunks per batched-kernel claim. The batched kernel keeps a
/// pool of in-flight lanes and reseeds a lane the moment its set finishes,
/// so it wants long runs of consecutive set indices — with 64-set claims
/// the lane pool would drain at every chunk boundary and the heavy tail of
/// the set-size distribution would run with no memory-level parallelism.
/// Claim granularity only affects scheduling: the chunk table still maps
/// every 64-set chunk for the index-order merge, so the output bytes are
/// unchanged (and still thread-count invariant).
constexpr std::size_t kBatchedChunksPerClaim = 16;

/// One worker's output: flattened sets plus their boundaries and flags.
struct WorkerBuffer {
  std::vector<NodeId> nodes;
  std::vector<std::uint32_t> sizes;
  std::vector<std::uint8_t> hits;
  /// Final generator stats; flushed to metrics after the join.
  RrGenStats stats;
  std::uint64_t chunks_claimed = 0;
};

/// Where a chunk's sets landed. Written once by the claiming worker, read
/// by the merge after the join.
struct ChunkRef {
  unsigned worker = 0;
  std::size_t set_begin = 0;   // index into the worker's sizes/hits
  std::size_t node_begin = 0;  // index into the worker's nodes
  std::size_t count = 0;
};

}  // namespace

FillKernel ResolveFillKernel(FillKernel kernel) {
  return kernel == FillKernel::kAuto ? FillKernel::kBatched : kernel;
}

Result<FillKernel> ParseFillKernel(const std::string& name) {
  if (name == "auto") return FillKernel::kAuto;
  if (name == "scalar") return FillKernel::kScalar;
  if (name == "batched") return FillKernel::kBatched;
  return Status::InvalidArgument("unknown fill kernel: " + name);
}

const char* FillKernelName(FillKernel kernel) {
  switch (kernel) {
    case FillKernel::kAuto:
      return "auto";
    case FillKernel::kScalar:
      return "scalar";
    case FillKernel::kBatched:
      return "batched";
  }
  return "?";
}

Status FillCollection(const FillRequest& request, RrCollection* collection) {
  SUBSIM_CHECK(request.graph != nullptr, "FillRequest.graph must be set");
  SUBSIM_CHECK(request.rng != nullptr, "FillRequest.rng must be set");
  SUBSIM_CHECK(collection != nullptr, "FillCollection needs a collection");

  const FillKernel kernel = ResolveFillKernel(request.kernel);

  // Validate generator construction up front (e.g. LT weight sums) so
  // workers cannot fail after threads have started; the probe then serves
  // as worker 0's generator so index-building generators are built once.
  Result<std::unique_ptr<RrGenerator>> scalar_probe = Status::Internal("");
  Result<std::unique_ptr<BatchRrKernel>> batch_probe = Status::Internal("");
  if (kernel == FillKernel::kScalar) {
    scalar_probe = MakeRrGenerator(request.kind, *request.graph);
    if (!scalar_probe.ok()) {
      return scalar_probe.status();
    }
  } else {
    batch_probe = BatchRrKernel::Create(request.kind, *request.graph);
    if (!batch_probe.ok()) {
      return batch_probe.status();
    }
  }
  const std::size_t count = request.count;
  if (count == 0) {
    return Status::Ok();
  }

  unsigned num_threads = ResolveNumThreads(request.num_threads);
  if (num_threads > count) {
    num_threads = static_cast<unsigned>(count);
  }

  const std::uint64_t base_seed = request.rng->base_seed;
  const std::uint64_t first_index = request.rng->next_index;
  const std::size_t num_chunks = (count + kChunkSize - 1) / kChunkSize;

  std::vector<ChunkRef> chunks(num_chunks);
  std::vector<WorkerBuffer> buffers(num_threads);
  std::atomic<std::size_t> next_chunk{0};

  // Workers claim chunks of consecutive set indices off the shared counter.
  // Set `first_index + i` is a pure function of `(base_seed, first_index +
  // i)` — no worker-local RNG state — so which worker generates it is
  // irrelevant to its bytes, and the chunk table lets the merge restore
  // index order exactly. The batched worker hands whole chunks to the
  // kernel, which writes the SoA buffer directly; the scalar worker copies
  // each set out of its scratch vector. Both append the same bytes.
  const auto claim = [&](unsigned t, std::size_t* begin, std::size_t* end) {
    const std::size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= num_chunks) {
      return false;
    }
    WorkerBuffer& buffer = buffers[t];
    ++buffer.chunks_claimed;
    *begin = chunk * kChunkSize;
    *end = std::min(*begin + kChunkSize, count);
    ChunkRef& ref = chunks[chunk];
    ref.worker = t;
    ref.set_begin = buffer.sizes.size();
    ref.node_begin = buffer.nodes.size();
    ref.count = *end - *begin;
    return true;
  };

  const auto scalar_worker = [&](unsigned t, RrGenerator* generator) {
    generator->SetSentinels(request.sentinels);
    WorkerBuffer& buffer = buffers[t];
    std::vector<NodeId> scratch;
    std::size_t begin = 0;
    std::size_t end = 0;
    while (claim(t, &begin, &end)) {
      for (std::size_t i = begin; i < end; ++i) {
        Rng set_rng = Rng::Substream(base_seed, first_index + i);
        const bool hit = generator->Generate(set_rng, &scratch);
        buffer.nodes.insert(buffer.nodes.end(), scratch.begin(),
                            scratch.end());
        buffer.sizes.push_back(static_cast<std::uint32_t>(scratch.size()));
        buffer.hits.push_back(hit ? 1 : 0);
      }
    }
    buffer.stats = generator->stats();
  };

  // The batched worker claims several consecutive chunks at once (see
  // kBatchedChunksPerClaim) and hands the kernel the whole run, so its
  // lane pool stays full across what would otherwise be chunk boundaries.
  // The per-chunk table entries are back-filled from the sizes the kernel
  // appended, restoring exactly the mapping the merge expects.
  const auto batched_worker = [&](unsigned t, BatchRrKernel* batch) {
    batch->SetSentinels(request.sentinels);
    WorkerBuffer& buffer = buffers[t];
    const BatchChunkSink sink{&buffer.nodes, &buffer.sizes, &buffer.hits};
    while (true) {
      const std::size_t chunk_begin =
          next_chunk.fetch_add(kBatchedChunksPerClaim,
                               std::memory_order_relaxed);
      if (chunk_begin >= num_chunks) {
        break;
      }
      const std::size_t chunk_end =
          std::min(chunk_begin + kBatchedChunksPerClaim, num_chunks);
      buffer.chunks_claimed += chunk_end - chunk_begin;
      const std::size_t begin = chunk_begin * kChunkSize;
      const std::size_t end =
          std::min(chunk_end * kChunkSize, count);
      std::size_t set_cursor = buffer.sizes.size();
      std::size_t node_cursor = buffer.nodes.size();
      batch->GenerateChunk(base_seed, first_index + begin, end - begin, sink);
      for (std::size_t c = chunk_begin; c < chunk_end; ++c) {
        ChunkRef& ref = chunks[c];
        ref.worker = t;
        ref.set_begin = set_cursor;
        ref.node_begin = node_cursor;
        ref.count = std::min(kChunkSize, count - c * kChunkSize);
        for (std::size_t i = 0; i < ref.count; ++i) {
          node_cursor += buffer.sizes[set_cursor++];
        }
      }
    }
    buffer.stats = batch->stats();
  };

  const auto run_worker = [&](unsigned t, bool probe_owner) {
    if (kernel == FillKernel::kScalar) {
      if (probe_owner) {
        scalar_worker(t, scalar_probe->get());
        return;
      }
      Result<std::unique_ptr<RrGenerator>> generator =
          MakeRrGenerator(request.kind, *request.graph);
      // Construction succeeded on the probe above; a failure here would
      // mean non-deterministic construction, which the factories do not do.
      SUBSIM_CHECK(generator.ok(), "generator construction raced");
      scalar_worker(t, generator->get());
      return;
    }
    if (probe_owner) {
      batched_worker(t, batch_probe->get());
      return;
    }
    Result<std::unique_ptr<BatchRrKernel>> batch =
        BatchRrKernel::Create(request.kind, *request.graph);
    SUBSIM_CHECK(batch.ok(), "kernel construction raced");
    batched_worker(t, batch->get());
  };

  if (num_threads == 1) {
    run_worker(0, /*probe_owner=*/true);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads - 1);
    for (unsigned t = 1; t < num_threads; ++t) {
      threads.emplace_back([&, t] { run_worker(t, /*probe_owner=*/false); });
    }
    run_worker(0, /*probe_owner=*/true);
    for (std::thread& thread : threads) {
      thread.join();
    }
  }

  MetricsRegistry::HistogramHandle set_size;
  if (request.obs.metrics != nullptr) {
    set_size = request.obs.metrics->Histogram("rr.set_size");
    request.obs.metrics->Counter("fill.chunks_claimed")
        .Add(static_cast<std::uint64_t>(num_chunks));
    request.obs.metrics->Counter("fill.substream_forks")
        .Add(static_cast<std::uint64_t>(count));
  }

  // Index-order merge: chunk c holds sets [c*kChunkSize, ...), so walking
  // the chunk table front to back appends the stream in index order no
  // matter which worker produced each chunk.
  for (const ChunkRef& ref : chunks) {
    const WorkerBuffer& buffer = buffers[ref.worker];
    std::size_t offset = ref.node_begin;
    for (std::size_t i = 0; i < ref.count; ++i) {
      const std::uint32_t size = buffer.sizes[ref.set_begin + i];
      collection->Add(
          std::span<const NodeId>(buffer.nodes.data() + offset, size),
          buffer.hits[ref.set_begin + i] != 0);
      set_size.Observe(size);
      offset += size;
    }
  }
  for (const WorkerBuffer& buffer : buffers) {
    FlushRrGenStatsDelta(RrGenStats(), buffer.stats, request.obs.metrics);
  }
  if (request.obs.metrics != nullptr) {
    // Encoded footprint of the set arena just extended — alongside
    // `rr.set_size` this is what the compression-ratio bench and the
    // serving byte budget observe (see RrEncoding).
    request.obs.metrics->Gauge("rr.arena_bytes")
        .Set(static_cast<double>(collection->arena_bytes()));
  }

  request.rng->next_index = first_index + count;
  return Status::Ok();
}

}  // namespace subsim
