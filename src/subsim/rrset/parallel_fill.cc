#include "subsim/rrset/parallel_fill.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "subsim/util/check.h"
#include "subsim/util/threading.h"

namespace subsim {

namespace {

/// Sets per scheduler chunk. Small enough to load-balance heavy-tailed set
/// sizes across workers, large enough that the atomic claim is noise.
constexpr std::size_t kChunkSize = 64;

/// One worker's output: flattened sets plus their boundaries and flags.
struct WorkerBuffer {
  std::vector<NodeId> nodes;
  std::vector<std::uint32_t> sizes;
  std::vector<std::uint8_t> hits;
  /// Final generator stats; flushed to metrics after the join.
  RrGenStats stats;
  std::uint64_t chunks_claimed = 0;
};

/// Where a chunk's sets landed. Written once by the claiming worker, read
/// by the merge after the join.
struct ChunkRef {
  unsigned worker = 0;
  std::size_t set_begin = 0;   // index into the worker's sizes/hits
  std::size_t node_begin = 0;  // index into the worker's nodes
  std::size_t count = 0;
};

}  // namespace

Status FillCollection(const FillRequest& request, RrCollection* collection) {
  SUBSIM_CHECK(request.graph != nullptr, "FillRequest.graph must be set");
  SUBSIM_CHECK(request.rng != nullptr, "FillRequest.rng must be set");
  SUBSIM_CHECK(collection != nullptr, "FillCollection needs a collection");

  // Validate generator construction up front (e.g. LT weight sums) so
  // workers cannot fail after threads have started; the probe then serves
  // as worker 0's generator so index-building generators are built once.
  Result<std::unique_ptr<RrGenerator>> probe =
      MakeRrGenerator(request.kind, *request.graph);
  if (!probe.ok()) {
    return probe.status();
  }
  const std::size_t count = request.count;
  if (count == 0) {
    return Status::Ok();
  }

  unsigned num_threads = ResolveNumThreads(request.num_threads);
  if (num_threads > count) {
    num_threads = static_cast<unsigned>(count);
  }

  const std::uint64_t base_seed = request.rng->base_seed;
  const std::uint64_t first_index = request.rng->next_index;
  const std::size_t num_chunks = (count + kChunkSize - 1) / kChunkSize;

  std::vector<ChunkRef> chunks(num_chunks);
  std::vector<WorkerBuffer> buffers(num_threads);
  std::atomic<std::size_t> next_chunk{0};

  // Workers claim chunks of consecutive set indices off the shared counter.
  // Set `first_index + i` is a pure function of `(base_seed, first_index +
  // i)` — no worker-local RNG state — so which worker generates it is
  // irrelevant to its bytes, and the chunk table lets the merge restore
  // index order exactly.
  auto worker = [&](unsigned t, RrGenerator* generator) {
    generator->SetSentinels(request.sentinels);
    WorkerBuffer& buffer = buffers[t];
    std::vector<NodeId> scratch;
    for (;;) {
      const std::size_t chunk =
          next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) {
        break;
      }
      ++buffer.chunks_claimed;
      const std::size_t begin = chunk * kChunkSize;
      const std::size_t end = std::min(begin + kChunkSize, count);
      ChunkRef& ref = chunks[chunk];
      ref.worker = t;
      ref.set_begin = buffer.sizes.size();
      ref.node_begin = buffer.nodes.size();
      ref.count = end - begin;
      for (std::size_t i = begin; i < end; ++i) {
        Rng set_rng = Rng::Substream(base_seed, first_index + i);
        const bool hit = generator->Generate(set_rng, &scratch);
        buffer.nodes.insert(buffer.nodes.end(), scratch.begin(),
                            scratch.end());
        buffer.sizes.push_back(static_cast<std::uint32_t>(scratch.size()));
        buffer.hits.push_back(hit ? 1 : 0);
      }
    }
    buffer.stats = generator->stats();
  };

  if (num_threads == 1) {
    worker(0, probe->get());
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads - 1);
    for (unsigned t = 1; t < num_threads; ++t) {
      threads.emplace_back([&, t] {
        Result<std::unique_ptr<RrGenerator>> generator =
            MakeRrGenerator(request.kind, *request.graph);
        // Construction succeeded on the probe above; a failure here would
        // mean non-deterministic construction, which the factories do not
        // do.
        SUBSIM_CHECK(generator.ok(), "generator construction raced");
        worker(t, generator->get());
      });
    }
    worker(0, probe->get());
    for (std::thread& thread : threads) {
      thread.join();
    }
  }

  MetricsRegistry::HistogramHandle set_size;
  if (request.obs.metrics != nullptr) {
    set_size = request.obs.metrics->Histogram("rr.set_size");
    request.obs.metrics->Counter("fill.chunks_claimed")
        .Add(static_cast<std::uint64_t>(num_chunks));
    request.obs.metrics->Counter("fill.substream_forks")
        .Add(static_cast<std::uint64_t>(count));
  }

  // Index-order merge: chunk c holds sets [c*kChunkSize, ...), so walking
  // the chunk table front to back appends the stream in index order no
  // matter which worker produced each chunk.
  for (const ChunkRef& ref : chunks) {
    const WorkerBuffer& buffer = buffers[ref.worker];
    std::size_t offset = ref.node_begin;
    for (std::size_t i = 0; i < ref.count; ++i) {
      const std::uint32_t size = buffer.sizes[ref.set_begin + i];
      collection->Add(
          std::span<const NodeId>(buffer.nodes.data() + offset, size),
          buffer.hits[ref.set_begin + i] != 0);
      set_size.Observe(size);
      offset += size;
    }
  }
  for (const WorkerBuffer& buffer : buffers) {
    FlushRrGenStatsDelta(RrGenStats(), buffer.stats, request.obs.metrics);
  }

  request.rng->next_index = first_index + count;
  return Status::Ok();
}

}  // namespace subsim
