#ifndef SUBSIM_RRSET_PARALLEL_FILL_H_
#define SUBSIM_RRSET_PARALLEL_FILL_H_

#include <cstddef>

#include "subsim/graph/graph.h"
#include "subsim/obs/obs_context.h"
#include "subsim/random/rng.h"
#include "subsim/rrset/generator_factory.h"
#include "subsim/rrset/rr_collection.h"
#include "subsim/util/status.h"

namespace subsim {

/// Options for multi-threaded RR-set generation.
struct ParallelFillOptions {
  /// Worker count; 0 means std::thread::hardware_concurrency() (min 1).
  unsigned num_threads = 0;
  /// Sentinel set installed in every worker's generator (Algorithm 5).
  std::vector<NodeId> sentinels;
  /// Optional metrics sinks. Worker stats are merged and flushed once per
  /// fill (after the join), so attaching a registry never perturbs the
  /// workers' RNG streams or scheduling.
  ObsContext obs;
};

/// Generates `count` RR sets with `options.num_threads` workers and appends
/// them to `collection`.
///
/// Each worker owns a private generator (the `RrGenerator` interface is
/// stateful and not thread-safe) seeded from an independent fork of `rng`,
/// and writes into a private buffer; buffers are appended in worker order
/// after the join, so the resulting collection is deterministic for a given
/// (seed, num_threads) regardless of scheduling. `rng` is advanced once so
/// consecutive calls draw fresh streams.
///
/// This is an extension beyond the paper (which is single-threaded); RR-set
/// generation is embarrassingly parallel and this routine exists so
/// downstream users are not stuck at one core.
Status ParallelFill(GeneratorKind kind, const Graph& graph, Rng& rng,
                    std::size_t count, const ParallelFillOptions& options,
                    RrCollection* collection);

/// Routes a fill through `sequential` when `num_threads == 1` (the
/// byte-reproducible single-stream reference path — `rng` is consumed in
/// place exactly as a plain `Fill`) or through `ParallelFill` otherwise
/// (0 = hardware concurrency). `sentinels` configures the parallel workers;
/// the sequential generator keeps whatever sentinels it already has, so
/// pass the same set the caller installed on it.
///
/// This is how `ImOptions::num_threads` reaches the algorithms' sampling
/// loops without disturbing the sequential behavior existing tests pin.
Status FillCollection(GeneratorKind kind, const Graph& graph,
                      RrGenerator& sequential, Rng& rng, std::size_t count,
                      unsigned num_threads,
                      std::span<const NodeId> sentinels,
                      RrCollection* collection,
                      const ObsContext& obs = ObsContext());

}  // namespace subsim

#endif  // SUBSIM_RRSET_PARALLEL_FILL_H_
