#ifndef SUBSIM_RRSET_PARALLEL_FILL_H_
#define SUBSIM_RRSET_PARALLEL_FILL_H_

#include <cstddef>
#include <span>
#include <string>

#include "subsim/graph/graph.h"
#include "subsim/obs/obs_context.h"
#include "subsim/random/rng.h"
#include "subsim/rrset/generator_factory.h"
#include "subsim/rrset/rr_collection.h"
#include "subsim/util/status.h"

namespace subsim {

/// Which RR-generation kernel a fill runs. Both produce byte-identical
/// ordered streams (pinned by `kernel_equivalence_test`); the knob trades
/// nothing but implementation — it exists so the scalar path stays
/// available as the differential-testing reference and for A/B
/// benchmarking (`bench_micro_kernels --smoke` asserts batched is not
/// slower).
enum class FillKernel {
  /// Let the library pick; currently always the batched kernel.
  kAuto,
  /// One scalar `RrGenerator::Generate` call per set (the reference).
  kScalar,
  /// Frontier-batched chunk kernel (`BatchRrKernel`): epoch-stamped
  /// visited marks, SoA slice-as-queue output, bulk RNG draws, CSR
  /// prefetch. See docs/rr_generation.md.
  kBatched,
};

/// The kernel `kAuto` resolves to (identity on the other values).
FillKernel ResolveFillKernel(FillKernel kernel);

/// Parses "auto" | "scalar" | "batched".
Result<FillKernel> ParseFillKernel(const std::string& name);

const char* FillKernelName(FillKernel kernel);

/// One RR-set fill, fully described. Designated-initializer friendly:
///
///   RngStream stream = MakeRngStream(seed, 1);
///   SUBSIM_RETURN_IF_ERROR(FillCollection(
///       {.kind = GeneratorKind::kSubsimIc, .graph = &graph, .rng = &stream,
///        .count = theta, .num_threads = options.num_threads},
///       &collection));
struct FillRequest {
  /// RR-set generation strategy; generators are constructed internally
  /// (one per worker), so construction failures (e.g. LT weight-sum
  /// violations) surface as the fill's Status.
  GeneratorKind kind = GeneratorKind::kVanillaIc;
  const Graph* graph = nullptr;
  /// Stream cursor. Set `i` of the fill is generated from
  /// `Rng::Substream(rng->base_seed, rng->next_index + i)`; the fill
  /// advances `rng->next_index` by `count` on success.
  RngStream* rng = nullptr;
  std::size_t count = 0;
  /// Worker threads: 1 (default) runs inline, 0 = hardware concurrency,
  /// N = N workers. The output stream is byte-identical for every value.
  unsigned num_threads = 1;
  /// Sentinel set installed in every worker's generator (Algorithm 5).
  std::span<const NodeId> sentinels;
  /// Optional metrics sinks. Worker stats are merged and flushed once per
  /// fill (after the join), so attaching a registry never perturbs the
  /// workers' RNG streams or scheduling.
  ObsContext obs;
  /// Which generation kernel runs the fill; the output stream is
  /// byte-identical for every value.
  FillKernel kernel = FillKernel::kAuto;
};

/// Generates `request.count` RR sets and appends them to `collection` in
/// stream-index order. The single fill entry point for the whole library.
///
/// Thread-count invariant: every set is generated from its own counter-based
/// substream (`Rng::Substream`), and workers claim fixed-size index chunks
/// off an atomic counter, with the merge reassembling chunks in index order.
/// The appended sets are therefore byte-identical for any `num_threads` —
/// parallelism changes only wall-clock time, never the sample stream. Each
/// worker owns a private generator (the `RrGenerator` interface is stateful
/// and not thread-safe); the up-front validation probe is reused as worker
/// 0's generator so index-building generators pay construction once.
///
/// Parallelism is an extension beyond the paper (which is single-threaded);
/// generation is embarrassingly parallel and the counter-based streams make
/// the speedup free of reproducibility cost.
Status FillCollection(const FillRequest& request, RrCollection* collection);

}  // namespace subsim

#endif  // SUBSIM_RRSET_PARALLEL_FILL_H_
