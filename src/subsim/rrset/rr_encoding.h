#ifndef SUBSIM_RRSET_RR_ENCODING_H_
#define SUBSIM_RRSET_RR_ENCODING_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "subsim/graph/types.h"
#include "subsim/util/check.h"
#include "subsim/util/status.h"

namespace subsim {

/// How an `RrCollection` stores its node arena.
///
///  - kRaw: one `NodeId` (4 bytes) per membership, sets kept in generator
///    discovery order — byte-identical to the historical layout, and what
///    the golden-stream tests pin.
///  - kDeltaVarint: each set is stored sorted ascending as a varint block:
///    the first id absolute, every later id as the (strictly positive) gap
///    to its predecessor. Sorted RR sets are locally dense on real graphs,
///    so most gaps fit one varint byte — the compression the serving
///    cache's byte budget is spent on (see docs/memory.md).
///
/// The encoding is a pure storage detail: both layouts index the same
/// memberships, so greedy max-coverage — which reads only the inverted
/// index — selects identical seeds either way.
enum class RrEncoding : std::uint8_t {
  kRaw = 0,
  kDeltaVarint = 1,
};

/// Parses "raw" | "delta" (alias "delta-varint").
Result<RrEncoding> ParseRrEncoding(const std::string& name);

const char* RrEncodingName(RrEncoding encoding);

/// Appends `value` to `out` as a LEB128 varint (7 bits per byte, high bit
/// = continuation).
inline void AppendVarint(std::vector<std::uint8_t>* out,
                         std::uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<std::uint8_t>(value));
}

/// Decodes one varint starting at `p`; returns the first byte past it.
/// The caller owns bounds: `p` must point into a buffer produced by
/// `AppendVarint` with the value still ahead.
inline const std::uint8_t* DecodeVarint(const std::uint8_t* p,
                                        std::uint64_t* value) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  while (*p & 0x80) {
    v |= static_cast<std::uint64_t>(*p & 0x7F) << shift;
    shift += 7;
    ++p;
  }
  v |= static_cast<std::uint64_t>(*p) << shift;
  *value = v;
  return p + 1;
}

/// Appends the delta+varint block for `sorted` (strictly ascending node
/// ids) to `out`: first id absolute, then successive gaps. Empty sets
/// append nothing.
inline void AppendDeltaVarintBlock(std::vector<std::uint8_t>* out,
                                   std::span<const NodeId> sorted) {
  NodeId prev = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const NodeId v = sorted[i];
    if (i == 0) {
      AppendVarint(out, v);
    } else {
      SUBSIM_DCHECK(v > prev, "delta block requires strictly ascending ids");
      AppendVarint(out, static_cast<std::uint64_t>(v) - prev);
    }
    prev = v;
  }
}

}  // namespace subsim

#endif  // SUBSIM_RRSET_RR_ENCODING_H_
