#ifndef SUBSIM_RRSET_EPOCH_MARKS_H_
#define SUBSIM_RRSET_EPOCH_MARKS_H_

#include <cstdint>
#include <cstdlib>
#include <memory>

#include "subsim/util/check.h"
#include "subsim/util/prefetch.h"

namespace subsim {

/// Epoch-stamped membership marks: the batched RR kernel's replacement for
/// a per-set visited bitmap.
///
/// One `uint32_t` stamp per node is shared across every RR set a kernel
/// ever generates; a node is marked for a set iff its stamp equals that
/// set's epoch. `BeginSet` bumps the epoch, which "clears" all marks in
/// O(1) — no per-set `ResetTouched` walk, no touched-list maintenance on
/// the hot path, and a mark is a single load/compare/store.
///
/// **One stamp is a cache, not a truth table.** `BeginSets` reserves a
/// block of epochs so a batch of interleaved traversals can share the
/// array, but when two in-flight sets touch the same node the later mark
/// overwrites the earlier set's stamp — the stamp then answers "marked?"
/// with a false negative for the earlier set. Callers that interleave sets
/// must treat `Stamp() == my epoch` as a definite yes, `Stamp()` outside
/// the live block as a definite no, and a foreign live stamp as "check
/// your own records" (the batched kernel scans its per-lane node list —
/// exact, and cheap because RR sets are small). `kernel_equivalence_test`
/// pins the end-to-end result against the scalar generators.
///
/// Epoch 0 is reserved as "never stamped" so a freshly zeroed stamp array
/// is empty under every live epoch. When the 32-bit epoch would wrap past
/// its maximum (after ~4.3 billion virtual resets), the stamp array is
/// swapped for a fresh zeroed allocation — amortized over 2^32 - 1 sets —
/// and the epoch restarts at 1, so stale stamps from the previous epoch
/// era can never alias a live epoch. `epoch_marks_test` forces the wrap.
///
/// The stamps are calloc-backed rather than a value-initialized vector on
/// purpose: a large calloc is satisfied with zero pages the OS materializes
/// lazily, so building the marks for an N-node graph costs O(1) page
/// touches instead of an N-word memset — a fill only ever faults in the
/// stamp pages of nodes its traversals actually reach, which keeps
/// short fills on huge graphs from paying tens of milliseconds of setup.
class EpochMarks {
 public:
  EpochMarks() = default;
  explicit EpochMarks(std::size_t num_nodes) { Resize(num_nodes); }

  void Resize(std::size_t num_nodes) {
    stamps_.reset(num_nodes == 0
                      ? nullptr
                      : static_cast<std::uint32_t*>(
                            std::calloc(num_nodes, sizeof(std::uint32_t))));
    SUBSIM_CHECK(num_nodes == 0 || stamps_ != nullptr,
                 "EpochMarks: stamp allocation failed");
    size_ = num_nodes;
    epoch_ = 0;
  }

  std::size_t size() const { return size_; }
  std::uint32_t epoch() const { return epoch_; }

  /// Starts a new set: every node becomes unmarked. O(1) except once per
  /// 2^32 - 1 calls, when the wraparound re-zero runs.
  void BeginSet() { epoch_ = BeginSets(1); }

  /// Reserves `count` consecutive epochs — one per in-flight set — and
  /// returns the first. Set `i` of the batch marks with epoch `first + i`.
  /// Every stamp below `first` is from an earlier batch and therefore
  /// dead; stamps at or above `first` belong to this batch's sets. If the
  /// block would cross the 32-bit maximum, the stamps are replaced with a
  /// fresh zeroed allocation and the block restarts at 1, so stale stamps
  /// from the previous era can never alias a reserved epoch.
  std::uint32_t BeginSets(std::uint32_t count) {
    SUBSIM_DCHECK(count > 0, "BeginSets needs at least one epoch");
    if (epoch_ > kMaxEpoch - count) {
      Resize(size_);
    }
    const std::uint32_t first = epoch_ + 1;
    epoch_ += count;
    return first;
  }

  /// Marks `v` in the current set. Returns true if the mark was newly set
  /// (same contract as `BitVector::Set`).
  bool Mark(std::size_t v) { return Mark(v, epoch_); }

  /// Marks `v` under an explicit epoch from `BeginSets`. Overwrites a
  /// foreign stamp — see the class comment for what that means to
  /// interleaved callers.
  bool Mark(std::size_t v, std::uint32_t epoch) {
    SUBSIM_DCHECK(v < size_, "EpochMarks index out of range");
    SUBSIM_DCHECK(epoch != 0, "Mark before the first BeginSet");
    if (stamps_[v] == epoch) {
      return false;
    }
    stamps_[v] = epoch;
    return true;
  }

  /// Reads `v`'s raw stamp so an interleaved caller can run the
  /// definite-yes / definite-no / check-your-records decision itself.
  std::uint32_t Stamp(std::size_t v) const {
    SUBSIM_DCHECK(v < size_, "EpochMarks index out of range");
    return stamps_[v];
  }

  /// Unconditionally claims `v`'s stamp for `epoch`.
  void Overwrite(std::size_t v, std::uint32_t epoch) {
    SUBSIM_DCHECK(v < size_, "EpochMarks index out of range");
    SUBSIM_DCHECK(epoch != 0, "Overwrite before the first BeginSet");
    stamps_[v] = epoch;
  }

  bool Marked(std::size_t v) const { return Marked(v, epoch_); }

  bool Marked(std::size_t v, std::uint32_t epoch) const {
    SUBSIM_DCHECK(v < size_, "EpochMarks index out of range");
    return stamps_[v] == epoch;
  }

  /// Prefetches the stamp for `v` (helps batched kernels overlap the
  /// stamp-array miss with other lanes' work).
  void Prefetch(std::size_t v) const { PrefetchRead(stamps_.get() + v); }

  /// Test hook: jump the epoch counter to `epoch` so the wraparound path
  /// is reachable without 2^32 real `BeginSet` calls. Stale stamps are left
  /// in place on purpose — that is exactly the aliasing hazard the wrap
  /// logic must defuse.
  void SetEpochForTesting(std::uint32_t epoch) { epoch_ = epoch; }

  static constexpr std::uint32_t kMaxEpoch = 0xffffffffu;

 private:
  struct FreeDeleter {
    void operator()(std::uint32_t* p) const { std::free(p); }
  };

  std::unique_ptr<std::uint32_t[], FreeDeleter> stamps_;
  std::size_t size_ = 0;
  std::uint32_t epoch_ = 0;
};

}  // namespace subsim

#endif  // SUBSIM_RRSET_EPOCH_MARKS_H_
