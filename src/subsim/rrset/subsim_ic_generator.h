#ifndef SUBSIM_RRSET_SUBSIM_IC_GENERATOR_H_
#define SUBSIM_RRSET_SUBSIM_IC_GENERATOR_H_

#include <memory>
#include <utility>
#include <vector>

#include "subsim/graph/graph.h"
#include "subsim/random/geometric.h"
#include "subsim/rrset/rr_generator.h"
#include "subsim/sampling/bucket_sampler.h"
#include "subsim/sampling/inline_sampling.h"
#include "subsim/util/bit_vector.h"
#include "subsim/util/prefetch.h"

namespace subsim {

/// How the SUBSIM generator samples the in-neighbors of nodes whose
/// incoming weights are *not* all equal (general IC, paper Section 3.3).
enum class GeneralIcStrategy {
  /// Index-free sorted-position bucketing; requires the graph to be built
  /// with `sort_in_edges_by_weight`. O(1 + mu + log d) per activated node,
  /// zero preprocessing.
  kSortedIndexFree,
  /// Per-node `BucketSubsetSampler` built once at generator construction.
  /// O(1 + mu) per activated node after O(m) preprocessing (Lemma 5).
  kBucketIndexed,
  /// Pick automatically: sorted when the graph is weight-sorted, else
  /// bucket.
  kAuto,
};

/// The per-node sampling plans and per-step draw primitives of Algorithm 3
/// (+ Section 3.3), factored out of the scalar generator so the batched
/// kernel runs the *same* code on the same precomputed plans — byte
/// identity between the two kernels is structural, not coincidental.
///
/// `ExpandNode` samples the in-neighbors of one dequeued node, invoking
/// `sink.Activate(w)` for every sampled in-neighbor in the plan's emission
/// order. The sink owns the visited/sentinel bookkeeping:
///   * `void Activate(NodeId w)` — activation attempt; must be a no-op
///     once the traversal has stopped;
///   * `bool stopped() const` — true after a sentinel activation.
/// Draw-order contract (what makes kernels interchangeable): the naive and
/// skip plans keep drawing to their natural end even after a stop (their
/// draw counts are data-independent of activation outcomes), while the
/// take-all and bucket emission loops break on stop without further draws
/// — exactly the scalar generator's historical behavior.
///
/// `NaivePolicy` lets a kernel substitute how the small-degree Bernoulli
/// plan realizes its coin flips. Two hooks, both of which must consume
/// the identical RNG stream as `SampleSubsetNaive` and emit indices in
/// increasing order:
///   * `naive(u, probs, rng, emit)` — skew-weighted short rows;
///   * `naive.UniformRow(degree, p, rng, emit)` — uniform short rows,
///     where every edge shares probability `p` so the O(m) weights row is
///     never read (the batched kernel additionally bulk-draws the coins).
class SubsimExpandCore {
 public:
  /// `graph` must outlive the core. Construction cost: O(n) for the
  /// uniform fast path, plus O(m) over skew-weighted nodes when the bucket
  /// strategy is selected. `naive_fallback_degree` = 0 disables the
  /// small-degree fallback (tests use this to force the skip kernels).
  SubsimExpandCore(const Graph& graph, GeneralIcStrategy strategy,
                   NodeId naive_fallback_degree);

  GeneralIcStrategy resolved_strategy() const { return strategy_; }
  const Graph& graph() const { return graph_; }

  /// Prefetches the packed per-node plan descriptor for an upcoming
  /// `ExpandNode(u)` — the batched kernel issues this as soon as `u` is
  /// discovered so the plan lookup doesn't stall the expansion. One cache
  /// line covers the plan, the CSR position, and the sampling parameter.
  void PrefetchPlan(NodeId u) const { PrefetchRead(meta_.data() + u); }

  /// Prefetches the leading lines of the adjacency data `ExpandNode(u)`
  /// will read (sources; weights only for plans that read them). Reads
  /// `meta_[u]` — expected warm after `PrefetchPlan(u)`. Returns the
  /// number of prefetch instructions issued.
  unsigned PrefetchRow(NodeId u, unsigned max_lines = 2) const {
    const PlanMeta& pm = meta_[u];
    if (pm.degree == 0) {
      return 0;
    }
    unsigned lines = PrefetchReadRange(
        graph_.InSourcesAt(pm.begin, pm.degree).data(),
        pm.degree * sizeof(NodeId), max_lines);
    const auto plan = static_cast<NodePlan>(pm.plan);
    if (plan == NodePlan::kSmallNaive || plan == NodePlan::kGeneral) {
      lines += PrefetchReadRange(
          graph_.InWeightsAt(pm.begin, pm.degree).data(),
          pm.degree * sizeof(double), max_lines);
    }
    return lines;
  }

  template <class Sink, class NaivePolicy>
  bool ExpandNode(NodeId u, Rng& rng, RrGenStats* stats, Sink& sink,
                  NaivePolicy&& naive) {
    const PlanMeta& pm = meta_[u];
    const auto sources = graph_.InSourcesAt(pm.begin, pm.degree);
    switch (static_cast<NodePlan>(pm.plan)) {
      case NodePlan::kNoInEdges:
        return false;
      case NodePlan::kSmallNaiveUniform:
        // Every in-edge gets a coin flip here, so count them all. The
        // shared probability rides in the descriptor (see PlanMeta).
        stats->edges_examined += sources.size();
        naive.UniformRow(
            pm.degree, pm.param, rng,
            [&](std::uint32_t i) { sink.Activate(sources[i]); });
        return sink.stopped();
      case NodePlan::kSmallNaive:
        stats->edges_examined += sources.size();
        naive(u, graph_.InWeightsAt(pm.begin, pm.degree), rng,
              [&](std::uint32_t i) { sink.Activate(sources[i]); });
        return sink.stopped();
      case NodePlan::kTakeAll:
        for (NodeId w : sources) {
          ++stats->edges_examined;
          sink.Activate(w);
          if (sink.stopped()) {
            return true;
          }
        }
        return false;
      case NodePlan::kUniformSkip:
        SampleUniformSubsetSkips(
            sources.size(), pm.param, rng,
            [&](std::uint32_t i) {
              ++stats->edges_examined;
              sink.Activate(sources[i]);
            },
            &stats->geometric_skips);
        return sink.stopped();
      case NodePlan::kGeneral:
        break;
    }

    if (strategy_ == GeneralIcStrategy::kSortedIndexFree) {
      SampleSortedSubset(
          graph_.InWeightsAt(pm.begin, pm.degree), rng,
          [&](std::uint32_t i) {
            ++stats->edges_examined;
            sink.Activate(sources[i]);
          },
          &stats->geometric_skips, &stats->rejection_accepts);
      return sink.stopped();
    }

    // Bucket strategy: the sampler emits into scratch, then we activate.
    scratch_indices_.clear();
    bucket_samplers_[u]->SampleCounted(rng, &scratch_indices_,
                                       &stats->geometric_skips,
                                       &stats->rejection_accepts);
    for (std::uint32_t i : scratch_indices_) {
      ++stats->edges_examined;
      sink.Activate(sources[i]);
      if (sink.stopped()) {
        return true;
      }
    }
    return false;
  }

  /// The reference naive policy: `SampleSubsetNaive` semantics, one
  /// out-of-line Bernoulli per in-edge.
  struct ScalarNaivePolicy {
    template <class Emit>
    void operator()(NodeId /*u*/, std::span<const double> probs, Rng& rng,
                    Emit&& emit) const {
      SampleSubsetNaive(probs, rng, std::forward<Emit>(emit));
    }
    /// Identical stream to `SampleSubsetNaive` on a row whose weights all
    /// equal `p`, without reading the row.
    template <class Emit>
    void UniformRow(std::uint32_t degree, double p, Rng& rng,
                    Emit&& emit) const {
      for (std::uint32_t i = 0; i < degree; ++i) {
        if (rng.Bernoulli(p)) {
          emit(i);
        }
      }
    }
  };

 private:
  /// Per-node sampling plan resolved at construction.
  enum class NodePlan : std::uint8_t {
    kNoInEdges,          // d_in == 0 or all-zero weights
    kSmallNaive,         // short skew-weighted in-list: per-edge coins
    kSmallNaiveUniform,  // short uniform in-list: per-edge coins, shared p
    kUniformSkip,        // equal weights in (0, 1): geometric skips
    kTakeAll,            // equal weights >= 1: every in-neighbor activates
    kGeneral,            // skewed weights: strategy_ decides
  };

  /// Packed per-node plan descriptor: plan tag, CSR position, and the
  /// sampling parameter — `GeometricInvLogQ(p)` for kUniformSkip, the
  /// shared edge probability for kSmallNaiveUniform — in one 16-byte
  /// record, four to a cache line. The expansion hot path reads exactly
  /// one metadata line per node instead of separate plan / parameter /
  /// offset arrays; on DRAM-resident graphs those scattered lookups were
  /// a dominant stall source.
  struct PlanMeta {
    double param = 0.0;
    std::uint32_t begin = 0;
    std::uint32_t degree : 29 = 0;
    std::uint32_t plan : 3 = 0;
  };
  static_assert(sizeof(PlanMeta) == 16, "PlanMeta must pack 4 per line");

  const Graph& graph_;
  GeneralIcStrategy strategy_;
  std::vector<PlanMeta> meta_;
  /// Bucket samplers for kGeneral nodes (empty unless bucket strategy).
  std::vector<std::unique_ptr<BucketSubsetSampler>> bucket_samplers_;
  std::vector<std::uint32_t> scratch_indices_;
};

/// Algorithm 3 (+ Section 3.3): the SUBSIM RR-set generator.
///
/// For a dequeued node whose in-edges share one probability p (WC, Uniform
/// IC, and WC-variant below the min{} clamp), in-neighbors are selected by
/// geometric skips — expected cost O(1 + d_in * p) instead of the vanilla
/// O(d_in). Nodes with skewed in-weights fall back to the configured
/// general-IC subset-sampling strategy. Per-node `1/log(1-p)` constants are
/// precomputed so the hot loop performs one log() per geometric draw.
class SubsimIcGenerator final : public RrGenerator {
 public:
  /// Below this in-degree a node is expanded by plain per-edge coin flips:
  /// a geometric skip costs one log() (~10 Bernoulli draws), so subset
  /// sampling only pays for itself on wider in-lists. Lemma 3's asymptotics
  /// are unaffected — the fallback work is O(threshold) = O(1).
  static constexpr NodeId kDefaultNaiveFallbackDegree = 16;

  /// `graph` must outlive the generator (see `SubsimExpandCore`).
  explicit SubsimIcGenerator(
      const Graph& graph,
      GeneralIcStrategy strategy = GeneralIcStrategy::kAuto,
      NodeId naive_fallback_degree = kDefaultNaiveFallbackDegree);

  bool Generate(Rng& rng, std::vector<NodeId>* out) override;
  void SetSentinels(std::span<const NodeId> sentinels) override;
  const RrGenStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = RrGenStats{}; }
  const char* name() const override { return "subsim-ic"; }

  GeneralIcStrategy resolved_strategy() const {
    return core_.resolved_strategy();
  }

 private:
  /// Scalar activation sink: visited bitmap + explicit BFS queue.
  struct ScalarSink {
    SubsimIcGenerator* generator;
    std::vector<NodeId>* out;
    void Activate(NodeId w) { generator->Activate(w, out); }
    bool stopped() const { return generator->stop_; }
  };

  /// Activation step shared by all plans; sets `stop_` on sentinel hit.
  void Activate(NodeId w, std::vector<NodeId>* out);

  const Graph& graph_;
  SubsimExpandCore core_;
  RrGenStats stats_;

  BitVector activated_;
  BitVector sentinel_;
  bool has_sentinels_ = false;
  bool stop_ = false;  // set when a sentinel activates mid-expansion
  std::vector<NodeId> queue_;
};

}  // namespace subsim

#endif  // SUBSIM_RRSET_SUBSIM_IC_GENERATOR_H_
