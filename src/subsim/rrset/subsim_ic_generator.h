#ifndef SUBSIM_RRSET_SUBSIM_IC_GENERATOR_H_
#define SUBSIM_RRSET_SUBSIM_IC_GENERATOR_H_

#include <memory>
#include <vector>

#include "subsim/graph/graph.h"
#include "subsim/rrset/rr_generator.h"
#include "subsim/sampling/bucket_sampler.h"
#include "subsim/util/bit_vector.h"

namespace subsim {

/// How the SUBSIM generator samples the in-neighbors of nodes whose
/// incoming weights are *not* all equal (general IC, paper Section 3.3).
enum class GeneralIcStrategy {
  /// Index-free sorted-position bucketing; requires the graph to be built
  /// with `sort_in_edges_by_weight`. O(1 + mu + log d) per activated node,
  /// zero preprocessing.
  kSortedIndexFree,
  /// Per-node `BucketSubsetSampler` built once at generator construction.
  /// O(1 + mu) per activated node after O(m) preprocessing (Lemma 5).
  kBucketIndexed,
  /// Pick automatically: sorted when the graph is weight-sorted, else
  /// bucket.
  kAuto,
};

/// Algorithm 3 (+ Section 3.3): the SUBSIM RR-set generator.
///
/// For a dequeued node whose in-edges share one probability p (WC, Uniform
/// IC, and WC-variant below the min{} clamp), in-neighbors are selected by
/// geometric skips — expected cost O(1 + d_in * p) instead of the vanilla
/// O(d_in). Nodes with skewed in-weights fall back to the configured
/// general-IC subset-sampling strategy. Per-node `1/log(1-p)` constants are
/// precomputed so the hot loop performs one log() per geometric draw.
class SubsimIcGenerator final : public RrGenerator {
 public:
  /// Below this in-degree a node is expanded by plain per-edge coin flips:
  /// a geometric skip costs one log() (~10 Bernoulli draws), so subset
  /// sampling only pays for itself on wider in-lists. Lemma 3's asymptotics
  /// are unaffected — the fallback work is O(threshold) = O(1).
  static constexpr NodeId kDefaultNaiveFallbackDegree = 16;

  /// `graph` must outlive the generator. Construction cost: O(n) for the
  /// uniform fast path, plus O(m) over skew-weighted nodes when the bucket
  /// strategy is selected. `naive_fallback_degree` = 0 disables the
  /// small-degree fallback (tests use this to force the skip kernels).
  explicit SubsimIcGenerator(
      const Graph& graph,
      GeneralIcStrategy strategy = GeneralIcStrategy::kAuto,
      NodeId naive_fallback_degree = kDefaultNaiveFallbackDegree);

  bool Generate(Rng& rng, std::vector<NodeId>* out) override;
  void SetSentinels(std::span<const NodeId> sentinels) override;
  const RrGenStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = RrGenStats{}; }
  const char* name() const override { return "subsim-ic"; }

  GeneralIcStrategy resolved_strategy() const { return strategy_; }

 private:
  /// Per-node sampling plan resolved at construction.
  enum class NodePlan : std::uint8_t {
    kNoInEdges,     // d_in == 0 or all-zero weights
    kSmallNaive,    // short in-list: per-edge coin flips are cheapest
    kUniformSkip,   // equal weights in (0, 1): geometric skips
    kTakeAll,       // equal weights >= 1: every in-neighbor activates
    kGeneral,       // skewed weights: strategy_ decides
  };

  /// Samples the in-neighbors of `u`, invoking the activation logic.
  /// Returns true if a sentinel was activated.
  bool ExpandNode(NodeId u, Rng& rng, std::vector<NodeId>* out);

  /// Activation step shared by all plans. Returns true on sentinel hit.
  bool Activate(NodeId w, std::vector<NodeId>* out);

  const Graph& graph_;
  GeneralIcStrategy strategy_;
  RrGenStats stats_;

  std::vector<NodePlan> plans_;
  std::vector<double> inv_log_q_;  // valid for kUniformSkip nodes
  /// Bucket samplers for kGeneral nodes (empty unless bucket strategy).
  std::vector<std::unique_ptr<BucketSubsetSampler>> bucket_samplers_;

  BitVector activated_;
  BitVector sentinel_;
  bool has_sentinels_ = false;
  bool stop_ = false;  // set when a sentinel activates mid-expansion
  std::vector<NodeId> queue_;
  std::vector<std::uint32_t> scratch_indices_;
};

}  // namespace subsim

#endif  // SUBSIM_RRSET_SUBSIM_IC_GENERATOR_H_
